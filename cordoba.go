// Package cordoba is a from-scratch Go implementation of CORDOBA, the
// carbon-efficient optimization framework for computing systems (Elgamal et
// al., HPCA 2025).
//
// CORDOBA quantifies carbon efficiency with the total Carbon Delay Product
// (tCDP = total lifetime carbon × task execution time) and optimizes it
// across large hardware design spaces while handling uncertainty in carbon
// accounting. This package is the public facade; it re-exports the stable
// surface of the internal packages:
//
//   - Metrics (tC, CCI, EDP, tCDP, ...) and objective selection (§III).
//   - ACT-style carbon accounting: per-node fab characterization, yield
//     models, die placement, packaging (§IV-A, eq. IV.5).
//   - The task/kernel workload formulation (eq. IV.2/IV.4) with the paper's
//     fifteen AI/XR kernels.
//   - The analytical ML-accelerator simulator and its 121-configuration
//     design space plus the 3D-stacked variants (§V, §VI-B, §VI-E).
//   - Design-space exploration across operational time, elimination of
//     never-optimal designs, and the Lagrange-multiplier machinery for
//     unknown CI_use(t) (§IV-B, §VI-B/C).
//   - The VR-SoC provisioning case study (§VI-D).
//   - Reproduction harnesses for every table and figure in the paper.
//
// # Quick start
//
//	task, _ := cordoba.PaperTask(cordoba.TaskAI5)
//	space, _ := cordoba.Explore(task, cordoba.Grid())
//	best := space.Points[space.OptimalAt(1e8)]
//	fmt.Printf("tCDP-optimal after 1e8 inferences: %s\n", best.Config.ID)
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory and per-experiment index.
package cordoba

import (
	"context"
	"io"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/dse"
	"cordoba/internal/experiments"
	"cordoba/internal/grid"
	"cordoba/internal/lifecycle"
	"cordoba/internal/metrics"
	"cordoba/internal/nn"
	"cordoba/internal/sched"
	"cordoba/internal/soc"
	"cordoba/internal/uncertainty"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// ---- units ----

// Physical quantity types (see internal/units for constructors and methods).
type (
	// Time is a duration in seconds.
	Time = units.Time
	// Energy is an amount of energy in joules.
	Energy = units.Energy
	// Power is a power draw in watts.
	Power = units.Power
	// Carbon is a mass of CO2-equivalent in grams.
	Carbon = units.Carbon
	// CarbonIntensity is gCO2e per kWh.
	CarbonIntensity = units.CarbonIntensity
	// Area is a silicon area in cm².
	Area = units.Area
	// Frequency is a clock rate in Hz.
	Frequency = units.Frequency
	// Bytes is a memory capacity.
	Bytes = units.Bytes
	// Bandwidth is bytes per second.
	Bandwidth = units.Bandwidth
)

// Hours constructs a Time from hours.
func Hours(h float64) Time { return units.Hours(h) }

// Years constructs a Time from 365-day years.
func Years(y float64) Time { return units.Years(y) }

// KWh constructs an Energy from kilowatt-hours.
func KWh(k float64) Energy { return units.KWh(k) }

// MB constructs a Bytes from mebibytes.
func MB(m float64) Bytes { return units.MB(m) }

// ---- metrics (§III) ----

// Report is the evaluated (energy, delay, embodied, operational) tuple of a
// design; all carbon-efficiency metrics derive from it.
type Report = metrics.Report

// Objective selects the optimization target (§III-C).
type Objective = metrics.Objective

// Objectives.
const (
	MinEnergy = metrics.MinEnergy
	MinEDP    = metrics.MinEDP
	MinDelay  = metrics.MinDelay
	MinTC     = metrics.MinTC
	MinCCI    = metrics.MinCCI
	MinTCDP   = metrics.MinTCDP
)

// ---- carbon accounting (§IV-A) ----

// Process is a technology node's fab characterization (EPA, GPA, MPA).
type Process = carbon.Process

// Fab is a fabrication facility (grid carbon intensity, defect density).
type Fab = carbon.Fab

// Process7nm returns the paper's 7 nm anchor node (Table III values).
func Process7nm() Process { return carbon.Process7nm() }

// Processes returns all supported nodes, 28 nm to 3 nm.
func Processes() []Process { return carbon.Processes() }

// ProcessByName returns the fab characterization for a named node ("7nm").
func ProcessByName(name string) (Process, error) { return carbon.ProcessByName(name) }

// Reference fabs.
var (
	FabCoal      = carbon.FabCoal
	FabTaiwan    = carbon.FabTaiwan
	FabRenewable = carbon.FabRenewable
)

// Fabs returns the reference fabs, dirtiest grid first.
func Fabs() []Fab { return carbon.Fabs() }

// FabByName returns a reference fab by name ("coal-heavy", "taiwan", ...).
func FabByName(name string) (Fab, error) { return carbon.FabByName(name) }

// EmbodiedDie computes eq. IV.5: (CI_fab·EPA + MPA + GPA)·A/Y.
func EmbodiedDie(p Process, fab Fab, area Area, yield float64) (Carbon, error) {
	return p.EmbodiedDie(fab, area, yield)
}

// Operational computes eq. IV.6: use-phase carbon of energy e at intensity ci.
func Operational(ci CarbonIntensity, e Energy) Carbon {
	return carbon.Operational(ci, e)
}

// ---- embodied-carbon backends (carbon.Model) ----

// CarbonModel prices a backend-neutral design description; implementations
// are ACT (monolithic eq. IV.5), chiplet disaggregation, and 3D stacking.
type CarbonModel = carbon.Model

// DesignSpec is the backend-neutral die/bond/package description every
// CarbonModel prices.
type DesignSpec = carbon.DesignSpec

// DieSpec is one die population inside a DesignSpec.
type DieSpec = carbon.DieSpec

// CarbonBreakdown is a priced design: silicon, packaging and bonding
// components plus the per-die detail.
type CarbonBreakdown = carbon.Breakdown

// CarbonModelInfo describes a registered backend for discovery surfaces.
type CarbonModelInfo = carbon.ModelInfo

// YieldModel predicts fabrication yield from die area and defect density.
type YieldModel = carbon.YieldModel

// DefaultCarbonModel returns the ACT backend — the pipeline's historical
// accounting, bit-identical to the pre-interface implementation.
func DefaultCarbonModel() CarbonModel { return carbon.DefaultModel() }

// CarbonModels returns every registered backend.
func CarbonModels() []CarbonModel { return carbon.Models() }

// CarbonModelByName resolves a backend by registry name ("act", "chiplet",
// "stacked-3d"); the empty string selects ACT.
func CarbonModelByName(name string) (CarbonModel, error) { return carbon.ModelByName(name) }

// CarbonModelInfos returns name/description pairs for every backend.
func CarbonModelInfos() []CarbonModelInfo { return carbon.ModelInfos() }

// YieldModels returns the supported yield models (Murphy, Poisson, Seeds,
// Bose–Einstein).
func YieldModels() []YieldModel { return carbon.YieldModels() }

// YieldModelNames lists the registry names YieldModelByName accepts.
func YieldModelNames() []string { return carbon.YieldModelNames() }

// YieldModelByName resolves a yield model by registry name; the empty string
// selects Murphy.
func YieldModelByName(name string) (YieldModel, error) { return carbon.YieldByName(name) }

// CITrace is a time-varying use-phase carbon intensity CI_use(t) (§IV-B).
type CITrace = grid.Trace

// ---- workloads (§V, Table IV) ----

// KernelID names one of the fifteen AI/XR kernels.
type KernelID = nn.KernelID

// Task is a set of kernels with call counts N_{T,K}.
type Task = workload.Task

// Paper task names.
const (
	TaskAllKernels = workload.TaskAllKernels
	TaskXR10       = workload.TaskXR10
	TaskAI10       = workload.TaskAI10
	TaskXR5        = workload.TaskXR5
	TaskAI5        = workload.TaskAI5
)

// PaperTasks returns the five Table IV tasks.
func PaperTasks() []Task { return workload.PaperTasks() }

// PaperTask returns a Table IV task by name.
func PaperTask(name string) (Task, error) { return workload.PaperTask(name) }

// Kernels returns all fifteen kernel IDs.
func Kernels() []KernelID { return nn.AllKernels() }

// The fifteen AI/XR kernels of Table IV.
const (
	KernelRN18   = nn.RN18
	KernelRN50   = nn.RN50
	KernelRN152  = nn.RN152
	KernelGN     = nn.GN
	KernelMN2    = nn.MN2
	KernelET     = nn.ET
	Kernel3DAgg  = nn.Agg3D
	KernelHRN    = nn.HRN
	KernelEFAN   = nn.EFAN
	KernelJLP    = nn.JLP
	KernelUNet   = nn.UNet
	KernelDN     = nn.DN
	KernelSR256  = nn.SR256
	KernelSR512  = nn.SR512
	KernelSR1024 = nn.SR1024
)

// ---- accelerators (§V, §VI-B, §VI-E) ----

// AcceleratorConfig is one accelerator design point (MAC arrays + SRAM,
// optionally 3D-stacked or explicitly partitioned into chiplets/tiers).
type AcceleratorConfig = accel.Config

// AccelPartition describes how a configuration's silicon is split into dies:
// the integration style ("monolithic", "2.5d", "3d"), the chiplet/tier count,
// the (possibly older) node of the partitioned memory die, and the 2.5d
// carrier. The zero value is monolithic — the historical behavior.
type AccelPartition = accel.Partition

// Partition integration styles.
const (
	IntegrationMonolithic = accel.IntegrationMonolithic
	Integration25D        = accel.Integration25D
	Integration3D         = accel.Integration3D
)

// Integrations lists the supported partition integration styles.
func Integrations() []string { return accel.Integrations() }

// CarrierNames lists the 2.5d carrier technologies the chiplet backend
// prices ("rdl-fanout", "silicon-interposer", "emib").
func CarrierNames() []string { return carbon.CarrierNames() }

// NewAccelerator returns a 2D configuration with calibrated 7 nm parameters.
func NewAccelerator(id string, macArrays int, sram Bytes) AcceleratorConfig {
	return accel.New(id, macArrays, sram)
}

// Grid returns the 121-configuration Fig. 8 design space (a1…a121).
func Grid() []AcceleratorConfig { return accel.Grid() }

// AcceleratorByID returns a grid configuration such as "a48".
func AcceleratorByID(id string) (AcceleratorConfig, error) { return accel.ByID(id) }

// Stacked3D returns the seven §VI-E configurations (2D baseline + six
// 3D-stacked designs).
func Stacked3D() []AcceleratorConfig { return accel.Stacked3D() }

// ---- design-space exploration (§VI-B/C) ----

// DesignSpace is an evaluated set of accelerator configurations on a task.
type DesignSpace = dse.Space

// DesignPoint is one evaluated design.
type DesignPoint = dse.Point

// Explore evaluates configurations on a task at the paper's anchor
// parameters (7 nm, coal-heavy fab, CI_use = 380 g/kWh).
func Explore(task Task, configs []AcceleratorConfig) (*DesignSpace, error) {
	return dse.EvaluateDefault(task, configs)
}

// ExploreAt evaluates with explicit carbon-accounting parameters.
func ExploreAt(task Task, configs []AcceleratorConfig, p Process, fab Fab, ci CarbonIntensity) (*DesignSpace, error) {
	return dse.Evaluate(task, configs, p, fab, ci)
}

// ExploreParallel is Explore with the per-configuration simulations fanned
// out across workers goroutines (workers < 1 selects GOMAXPROCS). Results
// are identical to Explore; this is the entry point cordobad serves.
func ExploreParallel(task Task, configs []AcceleratorConfig, workers int) (*DesignSpace, error) {
	return dse.EvaluateParallel(task, configs, carbon.Process7nm(), carbon.FabCoal, 380, workers)
}

// ExploreParallelAt is ExploreAt with a bounded worker fan-out.
func ExploreParallelAt(task Task, configs []AcceleratorConfig, p Process, fab Fab, ci CarbonIntensity, workers int) (*DesignSpace, error) {
	return dse.EvaluateParallel(task, configs, p, fab, ci, workers)
}

// ExploreAccounting selects the embodied-carbon backend and yield model of an
// exploration; the zero value is the historical ACT/Murphy pipeline.
type ExploreAccounting = dse.Accounting

// ExploreParallelWith is ExploreParallelAt under an explicit embodied-carbon
// accounting — the entry point for pricing the same design space through the
// chiplet or 3D-stacking backends, or an alternative yield model.
func ExploreParallelWith(task Task, configs []AcceleratorConfig, p Process, fab Fab, ci CarbonIntensity, workers int, acct ExploreAccounting) (*DesignSpace, error) {
	return dse.EvaluateParallelWith(task, configs, p, fab, ci, workers, acct)
}

// LogSpace returns k log-spaced operational times over [lo, hi].
func LogSpace(lo, hi float64, k int) []float64 { return dse.LogSpace(lo, hi, k) }

// ---- streaming exploration (DSE engine v2) ----

// KnobGrid describes a design space as cartesian knob ranges — MAC-array
// count, SRAM capacity, DVFS supply scaling, technology node, embodied-carbon
// backend, and die partitioning (integration style, chiplet count, chiplet
// node) — enumerated lazily instead of materialized.
type KnobGrid = dse.Grid

// StreamResult is a streaming exploration's outcome: the surviving
// ever-optimal set plus grid-wide aggregates.
type StreamResult = dse.StreamResult

// StreamOptions tunes the streaming engine (worker fan-out, shared memo).
type StreamOptions = dse.StreamOptions

// MemoCache is the shared (kernel, config-signature) → shape-profile cache
// of the streaming engine; pass one cache across calls to reuse kernel
// evaluations between requests.
type MemoCache = dse.MemoCache

// NewMemoCache returns a bounded memo cache (max < 1 selects the default).
func NewMemoCache(max int) *MemoCache { return dse.NewMemoCache(max) }

// ExploreStream explores a knob grid with the v2 streaming engine at the
// paper's anchor parameters, keeping only the ever-optimal envelope in
// memory. Results match materializing the grid and calling EverOptimal.
func ExploreStream(ctx context.Context, task Task, g KnobGrid, opt StreamOptions) (*StreamResult, error) {
	return dse.EvaluateStream(ctx, task, g, carbon.FabCoal, 380, opt)
}

// ExploreStreamAt is ExploreStream with explicit fab and use-phase carbon
// intensity (the grid's node axis selects the embodied process per point).
func ExploreStreamAt(ctx context.Context, task Task, g KnobGrid, fab Fab, ci CarbonIntensity, opt StreamOptions) (*StreamResult, error) {
	return dse.EvaluateStream(ctx, task, g, fab, ci, opt)
}

// ExploreStreamTasks streams several tasks over one grid in a single pass,
// sharing every kernel evaluation between them.
func ExploreStreamTasks(ctx context.Context, tasks []Task, g KnobGrid, fab Fab, ci CarbonIntensity, opt StreamOptions) ([]*StreamResult, error) {
	return dse.EvaluateStreamTasks(ctx, tasks, g, fab, ci, opt)
}

// ---- checkpointed streaming exploration ----

// StreamCheckpoint is a serializable snapshot of a streaming exploration:
// resuming from it converges to bit-identical results versus an
// uninterrupted run, and a fingerprint rejects resumption under changed
// parameters.
type StreamCheckpoint = dse.StreamCheckpoint

// CheckpointOptions extends StreamOptions with resume, periodic-checkpoint,
// and progress callbacks.
type CheckpointOptions = dse.CheckpointOptions

// StreamProgress is the live counter set a checkpointed exploration reports
// after each completed shape.
type StreamProgress = dse.StreamProgress

// StreamShard restricts a checkpointed exploration to a contiguous range of
// grid shapes — the unit of work cordobad's cluster coordinator fans out.
// Shard results keep whole-grid point identity, so MergeStreamResults folds
// them back into the exact single-node result.
type StreamShard = dse.ShardRange

// MergeStreamResults merges disjoint shard results into the whole-grid
// result. The survivor envelope, its IDs, and all integer counters equal a
// single-node run exactly; the floating-point aggregate sums match to within
// re-association.
func MergeStreamResults(results []*StreamResult) (*StreamResult, error) {
	return dse.MergeShardResults(results)
}

// ExploreStreamCheckpointed is ExploreStreamAt with checkpoint/resume and
// progress reporting — the engine behind cordobad's async job API.
func ExploreStreamCheckpointed(ctx context.Context, task Task, g KnobGrid, fab Fab, ci CarbonIntensity, opt CheckpointOptions) (*StreamResult, error) {
	return dse.EvaluateStreamCheckpointed(ctx, task, g, fab, ci, opt)
}

// ExploreGridNaive materializes a knob grid and evaluates it through the v1
// engine — the reference baseline for the streaming engine.
func ExploreGridNaive(task Task, g KnobGrid, fab Fab, ci CarbonIntensity) (*DesignSpace, error) {
	return dse.EvaluateGrid(task, g, fab, ci)
}

// ---- surrogate-guided Pareto search ----

// SurrogateOptions tunes ExploreSurrogate: seed, evaluation budget,
// population/generation limits, plus the usual stream options and
// checkpoint/resume hooks.
type SurrogateOptions = dse.SurrogateOptions

// SurrogateResult is a surrogate run's outcome: the recovered envelope as a
// StreamResult plus budget accounting and the exact set of evaluated grid
// ids.
type SurrogateResult = dse.SurrogateResult

// SurrogateCheckpoint is a serializable snapshot of a surrogate search;
// resuming from it is byte-identical to an uninterrupted run under the same
// seed.
type SurrogateCheckpoint = dse.SurrogateCheckpoint

// SurrogateProgress is the live counter set a surrogate search reports after
// each generation.
type SurrogateProgress = dse.SurrogateProgress

// EnvelopeQuality compares a candidate envelope against an exhaustive oracle:
// hypervolume ratio, additive epsilon, and coverage.
type EnvelopeQuality = dse.Quality

// ExploreSurrogate runs the budgeted surrogate-guided Pareto search over a
// knob grid: NSGA-II-style selection over the lattice, RBF-ranked offspring,
// and true evaluations only for the candidates that survive ranking. For a
// fixed seed the result is byte-identical across runs, worker counts, and
// checkpoint/resume. With a budget >= the grid size it degrades to the exact
// exhaustive envelope.
func ExploreSurrogate(ctx context.Context, task Task, g KnobGrid, fab Fab, ci CarbonIntensity, opt SurrogateOptions) (*SurrogateResult, error) {
	return dse.EvaluateSurrogate(ctx, task, g, fab, ci, opt)
}

// MeasureEnvelopeQuality scores a candidate envelope against the exhaustive
// oracle's on the shared (E·D, C_emb·D) plane.
func MeasureEnvelopeQuality(candidate, oracle *StreamResult) EnvelopeQuality {
	return dse.MeasureQuality(candidate, oracle)
}

// DefaultSurrogateBudget returns the evaluation budget a surrogate run uses
// when none is given: 2% of the grid, clamped to [256, 8192] and never above
// the grid size.
func DefaultSurrogateBudget(gridPoints int64, population int) int64 {
	return dse.DefaultSurrogateBudget(gridPoints, population)
}

// ---- uncertainty (§IV-B) ----

// UncertainDesign is a candidate reduced to (E, D, C_emb) for unknown-CI
// analysis.
type UncertainDesign = uncertainty.Design

// Survivors returns the designs that can be tCDP-optimal for some CI_use(t)
// under the fixed-work analysis (same inference count for every design, the
// Fig. 12 setting); all others are safely eliminated even without carbon
// transparency.
func Survivors(designs []UncertainDesign) []int { return uncertainty.Survivors(designs) }

// SurvivorsFixedTime is the fixed-time variant (eq. IV.7: every design runs
// at its fixed power for the same lifetime); OptimalUnderTrace winners are
// always members of this set.
func SurvivorsFixedTime(designs []UncertainDesign) []int {
	return uncertainty.SurvivorsFixedTime(designs)
}

// DesignsFromSpace converts an explored space for unknown-CI analysis.
func DesignsFromSpace(s *DesignSpace) []UncertainDesign { return uncertainty.FromDSE(s) }

// ConstantCI is a flat grid trace.
func ConstantCI(ci CarbonIntensity) CITrace { return grid.Constant{Intensity: ci} }

// DiurnalCI is a solar-driven daily swing around a mean intensity.
func DiurnalCI(mean, swing CarbonIntensity) CITrace { return grid.Diurnal{Mean: mean, Swing: swing} }

// DecarbonizationRamp moves linearly from start to end over span.
func DecarbonizationRamp(start, end CarbonIntensity, span Time) CITrace {
	return grid.Ramp{Start: start, End: end, Span: span}
}

// CaliforniaDuckCI is the stylized duck-curve daily trace: clean midday
// solar, dirty evening ramp.
func CaliforniaDuckCI() CITrace { return grid.CaliforniaDuck() }

// NamedCITraces returns the reference CI_use(t) traces cordobad serves,
// keyed by Name().
func NamedCITraces() []CITrace { return grid.NamedTraces() }

// CITraceByName resolves a reference trace by its registry name
// ("california-duck", "decarb-ramp", ...).
func CITraceByName(name string) (CITrace, error) { return grid.TraceByName(name) }

// ---- cumulative-trace engine ----

// CumulativeCI is a precomputed prefix integral F(t) = ∫₀ᵗ CI(u)du of a
// trace: window integrals, averages, and operational carbon in O(log n) per
// query, exact for the closed-form trace shapes.
type CumulativeCI = grid.Cumulative

// NewCumulativeCI builds the prefix integral of a trace. The horizon bounds
// the precomputed table for traces without a closed form (zero selects a
// default of three years); queries beyond it stay correct but slower.
func NewCumulativeCI(tr CITrace, horizon Time) (*CumulativeCI, error) {
	return grid.NewCumulative(tr, horizon)
}

// AverageCIOver returns the exact time-average carbon intensity of a trace
// over [0, life].
func AverageCIOver(tr CITrace, life Time) (CarbonIntensity, error) {
	return grid.AverageCI(tr, life, 1)
}

// ---- carbon-aware launch windows ----

// WindowRequest describes a deferrable job: duration, power draw, deadline,
// and candidate start-time granularity.
type WindowRequest = sched.WindowRequest

// WindowPlan is a launch-window search outcome: best, worst, and run-now
// windows plus the savings fraction.
type WindowPlan = sched.WindowPlan

// ExecutionWindow is one candidate execution slot with its operational
// carbon and average CI.
type ExecutionWindow = sched.Window

// FindLaunchWindow returns the lowest-carbon execution window for a job on a
// cumulative trace, searching candidate starts up to the deadline.
func FindLaunchWindow(cum *CumulativeCI, req WindowRequest) (WindowPlan, error) {
	return sched.FindWindow(cum, req)
}

// TCDPUnderTrace evaluates a design's tCDP when the grid follows a
// time-varying CI_use(t) trace over the hardware lifetime (eq. IV.8).
func TCDPUnderTrace(d UncertainDesign, tr CITrace, life Time) (float64, error) {
	return uncertainty.TCDPUnderTrace(d, tr, life, 1000)
}

// OptimalUnderTrace returns the index of the tCDP-optimal design under a CI
// trace; by the §IV-B theorem it is always a member of Survivors.
func OptimalUnderTrace(designs []UncertainDesign, tr CITrace, life Time) (int, error) {
	return uncertainty.OptimalUnderTrace(designs, tr, life, 1000)
}

// ---- VR SoC case study (§VI-D) ----

// VRPlatform is a Quest 2-class SoC model.
type VRPlatform = soc.SoC

// VRTask is a profiled VR task with its TLP occupancy histogram.
type VRTask = soc.VRTask

// Quest2 returns the platform calibrated to Table V.
func Quest2() VRPlatform { return soc.Quest2() }

// PaperVRTasks returns the §VI-D tasks (G-2, M-1, B-1, SG-1, All Tasks).
func PaperVRTasks() []VRTask { return soc.PaperVRTasks() }

// ---- hardware lifetime (§VII) ----

// RefreshService models a deployment whose hardware-refresh cadence is
// being optimized: frequent refresh rides node efficiency gains but pays
// embodied carbon per chip.
type RefreshService = lifecycle.Service

// RefreshPolicy pairs a refresh period with its lifetime outcome.
type RefreshPolicy = lifecycle.PolicyResult

// DefaultRefreshService returns a 10-year datacenter service starting at
// 14 nm with nodes advancing every 2.5 years.
func DefaultRefreshService() RefreshService { return lifecycle.DefaultService() }

// RefreshPeriods returns the conventional 1–10-year candidate cadences.
func RefreshPeriods() []Time { return lifecycle.DefaultPeriods() }

// ---- multicore scheduling substrate (§VI-D) ----

// ThreadWorkload is a set of threads for the discrete-event scheduler that
// stands in for the paper's Perfetto traces.
type ThreadWorkload = sched.Workload

// SimulateScheduler runs a workload on n cores and reports makespan, TLP
// and occupancy histograms.
func SimulateScheduler(w *ThreadWorkload, cores int) (sched.Result, error) {
	return sched.Simulate(w, cores)
}

// SyntheticVRWorkload generates a VR-style thread workload targeting a TLP.
func SyntheticVRWorkload(name string, targetTLP float64, frames int, seed int64) *ThreadWorkload {
	return sched.SyntheticVR(name, targetTLP, frames, seed)
}

// ---- experiment harness ----

// Experiments lists the reproducible paper tables and figures.
func Experiments() []experiments.Experiment { return experiments.All() }

// RunExperiment renders the experiment with the given key (e.g. "table2",
// "fig8") to w.
func RunExperiment(key string, w io.Writer) error {
	e, err := experiments.ByKey(key)
	if err != nil {
		return err
	}
	return e.Render(w)
}

// ExperimentKeys lists all experiment keys in paper order.
func ExperimentKeys() []string { return experiments.Keys() }

// ExperimentResult returns the experiment's typed result structure for
// programmatic consumption (the same data the renderers format).
func ExperimentResult(key string) (any, error) { return experiments.Result(key) }

// ExportExperimentJSON streams the experiment's typed result as indented
// JSON to w.
func ExportExperimentJSON(key string, w io.Writer) error { return experiments.ExportJSON(key, w) }

// ExportExperimentCSV streams the experiment's plottable series as CSV to w;
// keys without a tabular form return an error suggesting JSON.
func ExportExperimentCSV(key string, w io.Writer) error { return experiments.ExportCSV(key, w) }

// XRGamingTask returns the §IV-A motivating XR gaming session with
// per-kernel call rates (camera-rate tracking, display-rate upscaling).
func XRGamingTask() Task { return workload.XRGamingSession() }
