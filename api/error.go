package api

import "fmt"

// Error codes carried in ErrorBody.Code: stable, machine-readable
// identifiers clients can branch on without parsing messages.
const (
	// CodeInvalidRequest marks malformed or semantically invalid requests
	// (HTTP 400).
	CodeInvalidRequest = "invalid_request"
	// CodeInvalidKnobs marks knob-range (dse "knobs") requests whose axes
	// fail up-front validation — empty or duplicate axis values, unknown
	// node/model/integration/carrier names, or unsupported
	// model-integration pairings (400).
	CodeInvalidKnobs = "invalid_knobs"
	// CodeNotFound marks unknown routes and unknown resource IDs (404).
	CodeNotFound = "not_found"
	// CodePayloadTooLarge marks bodies beyond the server's limit (413).
	CodePayloadTooLarge = "payload_too_large"
	// CodeTimeout marks requests that exceeded the server's deadline (504).
	CodeTimeout = "timeout"
	// CodeClientClosed marks requests the client abandoned (499).
	CodeClientClosed = "client_closed"
	// CodeQueueFull marks job submissions rejected by admission control
	// (429); the response carries a Retry-After header.
	CodeQueueFull = "queue_full"
	// CodeUnauthorized marks requests with a missing or unknown API key when
	// the daemon runs with a tenant registry (401).
	CodeUnauthorized = "unauthorized"
	// CodeQuotaExceeded marks requests rejected by a per-tenant quota — the
	// request token bucket, the queued-jobs cap, or the grid-points-in-flight
	// cap (429); the response carries a Retry-After header.
	CodeQuotaExceeded = "quota_exceeded"
	// CodePriorityInvalid marks job submissions naming an unknown priority
	// class (400); valid classes are interactive, batch, and deferrable.
	CodePriorityInvalid = "priority_invalid"
	// CodeNotReady marks result fetches for jobs that have not finished
	// (409).
	CodeNotReady = "not_ready"
	// CodeJobFailed marks result fetches for jobs that ended in failure
	// (409); the message carries the job's error.
	CodeJobFailed = "job_failed"
	// CodeJobCanceled marks result fetches for canceled jobs (409).
	CodeJobCanceled = "job_canceled"
	// CodeInternal marks server-side faults (500).
	CodeInternal = "internal"
)

// ErrorEnvelope is the JSON body every endpoint returns on failure.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody pairs the HTTP status with a machine-readable code and a human
// message.
type ErrorBody struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Err converts the envelope into an error value (used by the client).
func (e ErrorEnvelope) Err() error {
	return &Error{Status: e.Error.Status, Code: e.Error.Code, Message: e.Error.Message}
}

// Error is the typed error the client package returns for non-2xx
// responses.
type Error struct {
	Status int
	Code   string
	// Message is the server's human-readable explanation.
	Message string
	// RetryAfterS is the parsed Retry-After hint in seconds, when the
	// response carried one (429 queue_full does).
	RetryAfterS float64
}

func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("api: %d %s: %s", e.Status, e.Code, e.Message)
	}
	return fmt.Sprintf("api: %d: %s", e.Status, e.Message)
}
