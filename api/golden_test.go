package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite the golden wire-format files")

// goldenCases marshals one fully-populated value of every wire type. Changing
// a field name, tag, or omitempty behavior changes the rendered JSON and
// fails the comparison below — run with -update only when a format change is
// deliberate, and treat the diff as an API-compatibility review.
func goldenCases() map[string]any {
	t0 := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	t1 := t0.Add(3 * time.Second)
	t2 := t0.Add(90 * time.Second)
	return map[string]any{
		"accounting_request": AccountingRequest{
			Process: "7nm", Fab: "coal-heavy", AreaCM2: 1.5,
			Yield: YieldSpec{Model: "murphy"}, Model: "act",
			Accelerator: &AccelSpec{ID: "a64", MACArrays: 64, SRAMMB: 16, Is3D: true, MemDies: 2},
		},
		"accounting_request_numeric_yield": AccountingRequest{
			AreaCM2: 1.5, Yield: YieldSpec{Value: 0.875},
		},
		"accounting_response": AccountingResponse{
			Process: "7nm", Fab: "coal-heavy", FabCI: 820, AreaCM2: 1.5,
			Yield: 0.875, YieldModel: "murphy", Model: "act", ConfigID: "a64",
			EmbodiedG: 1234.5, EmbodiedKG: 1.2345, SiliconG: 1000, PackagingG: 200,
			BondingG: 34.5, PerAreaG: 823, Description: "ACT-style embodied model",
		},
		"dse_request": DSERequest{
			Task: "All kernels", Process: "7nm", Fab: "coal-heavy", CIUse: 380,
			Model: "act", Yield: "murphy", CITrace: "solar-heavy", TraceLifeS: 3.1536e7,
			Knobs: &KnobRangeSpec{
				MACArrays: []int{16, 32}, SRAMMB: []float64{4, 8},
				VDDScales: []float64{1, 0.9}, Nodes: []string{"7nm", "5nm"},
				Models: []string{"act", "chiplet"},
				Partition: &PartitionSpec{
					Integrations: []string{"monolithic", "2.5d"},
					Chiplets:     []int{2, 4},
					ChipletNodes: []string{"14nm"},
					Carrier:      "rdl-fanout",
				},
			},
			Sweep: &SweepSpec{Lo: 1, Hi: 1e12, Points: 13},
		},
		"dse_response": DSEResponse{
			Task: "All kernels", Process: "7nm", Fab: "coal-heavy", Model: "act",
			Yield: "murphy", CIUse: 380, CITrace: "solar-heavy", TraceLifeS: 3.1536e7,
			Points: []DSEPoint{{
				ID: "a64", MACArrays: 64, SRAMMB: 16, Is3D: true, Model: "act",
				Integration: "2.5d", Chiplets: 4, ChipletNode: "14nm", Carrier: "rdl-fanout",
				DelayS: 0.25, EnergyJ: 1.5, EmbodiedG: 900, AreaCM2: 1.2,
				EDPJS: 0.375, EmbodiedDelayG: 225,
			}},
			EverOptimal: []string{"a64"}, EliminatedFraction: 0.9917,
			PointsStreamed: 480, PointsPruned: 479,
			Sweep: []SweepEntry{{Inferences: 1e6, OptimalID: "a64", TCDPGS: 42.5, MeanTCDPGS: 61.25}},
		},
		"schedule_request": ScheduleRequest{
			Trace: "solar-heavy", DurationS: 3600, PowerW: 350, DeadlineS: 86400, StepS: 900,
		},
		"schedule_response": ScheduleResponse{
			Trace: "solar-heavy",
			Best:  ScheduleWindow{StartS: 43200, EndS: 46800, CarbonG: 10.5, AvgCIG: 30, StartHour: 12},
			Worst: ScheduleWindow{StartS: 0, EndS: 3600, CarbonG: 287, AvgCIG: 820, StartHour: 0},
			Immediate: ScheduleWindow{
				StartS: 0, EndS: 3600, CarbonG: 287, AvgCIG: 820, StartHour: 0,
			},
			Candidates: 93, SavingsFraction: 0.9634,
		},
		"trace_info": TraceInfo{
			Name: "solar-heavy", MeanDayG: 410, MeanYearG: 405, MinDayG: 30, MaxDayG: 820,
		},
		"experiment_info": ExperimentInfo{Key: "fig8", Title: "Fig. 8 sweep", Formats: []string{"json", "csv"}},
		"task_info": TaskInfo{
			Name: "All kernels", Kernels: map[string]float64{"conv1": 3, "fc2": 1}, TotalCalls: 4,
		},
		"config_info": ConfigInfo{
			ID: "s3", MACArrays: 64, TotalMACs: 16384, SRAMMB: 16, Is3D: true, MemDies: 2, AreaCM2: 1.9,
		},
		"models_response": ModelsResponse{
			Models: []ModelInfo{{
				Name: "act", Description: "ACT-style model",
				Integrations: []string{"monolithic", "3d"},
			}},
			YieldModels: []string{"murphy", "poisson"},
		},
		"error_envelope": ErrorEnvelope{Error: ErrorBody{
			Status: 429, Code: CodeQueueFull, Message: "job queue is full (depth 16)",
		}},
		"job_status": JobStatus{
			ID: "j0123456789ab", Kind: "dse", State: JobRunning,
			Progress: JobProgress{
				GridPoints: 480, Streamed: 240, Pruned: 236, Kept: 4,
				ShapesDone: 60, ShapesTotal: 120, ElapsedS: 3.5, ETAS: 3.5,
			},
			CreatedAt: t0, StartedAt: &t1, Resumes: 1, Checkpointed: true,
		},
		"job_status_terminal": JobStatus{
			ID: "jfedcba987654", Kind: "dse", State: JobFailed,
			Error:     `unknown task "bogus" (see GET /v1/tasks)`,
			CreatedAt: t0, StartedAt: &t1, FinishedAt: &t2,
		},
		"job_list": JobList{Jobs: []JobStatus{{
			ID: "j0123456789ab", Kind: "dse", State: JobQueued, CreatedAt: t0,
		}}},
		"dse_request_shard": DSERequest{
			Task: "All kernels", CIUse: 380,
			Knobs: &KnobRangeSpec{MACArrays: []int{16, 32}, SRAMMB: []float64{4, 8}},
			Shard: &ShardSpec{First: 4, Count: 3, Resume: json.RawMessage(`{"fingerprint":"ab12"}`)},
		},
		"dse_request_cluster": DSERequest{
			Task: "All kernels", CIUse: 380,
			Knobs:  &KnobRangeSpec{MACArrays: []int{16, 32}, SRAMMB: []float64{4, 8}},
			Shards: 4,
		},
		"shard_envelope": ShardEnvelope{
			Task: "All kernels", First: 4, Count: 3, CIUse: 380,
			PointsStreamed: 120, PrePruned: 98, Offered: 22,
			SumEDP: 1.0625, SumEmbD: 212.5,
			Survivors: []ShardPoint{{
				Index:  17,
				Config: json.RawMessage(`{"ID":"k18","MACArrays":32,"SRAM":8388608}`),
				Model:  "act",
				DelayS: 0.25, EnergyJ: 1.5, EmbodiedG: 900, AreaCM2: 1.2,
			}},
		},
		"cluster_status": ClusterStatus{
			Role: "coordinator",
			Workers: []ClusterWorker{
				{URL: "http://127.0.0.1:8081", State: "up", LastHeartbeat: &t1, ShardsDone: 7, AvgShardS: 1.25},
				{URL: "http://127.0.0.1:8082", State: "down", ShardsDone: 3, ShardsFailed: 1},
			},
			ShardsDispatched: 11, ShardsRetried: 1, ShardsMerged: 10,
		},
		"tenant_status": TenantStatus{
			Tenant: TenantInfo{
				Name: "acme", Weight: 4,
				MaxQueuedJobs: 8, MaxGridPoints: 1 << 20,
				RatePerSec: 50, Burst: 100,
			},
			Quota: QuotaStatus{
				QueuedJobs: 3, MaxQueuedJobs: 8,
				GridPointsInFlight: 262144, MaxGridPoints: 1 << 20,
				RateRemaining: 87.5,
			},
		},
		"job_event": JobEvent{
			Seq: 7, Type: EventProgress,
			Job: JobStatus{
				ID: "j0123456789ab", Kind: "dse", State: JobRunning,
				Tenant: "acme", Priority: PriorityBatch,
				Progress: JobProgress{
					GridPoints: 480, Streamed: 240, Pruned: 236, Kept: 4,
					ShapesDone: 60, ShapesTotal: 120, ElapsedS: 3.5, ETAS: 3.5,
				},
				CreatedAt: t0, StartedAt: &t1,
			},
		},
		"job_status_deferred": JobStatus{
			ID: "jdef012345678", Kind: "dse", State: JobQueued,
			Tenant: "acme", Priority: PriorityDeferrable,
			CreatedAt: t0, NotBefore: &t2, CO2AvoidedG: 12.75,
		},
		"job_list_page": JobList{
			Jobs: []JobStatus{{
				ID: "j0123456789ab", Kind: "dse", State: JobQueued,
				Tenant: "acme", Priority: PriorityInteractive, CreatedAt: t0,
			}},
			NextCursor: "MTc3MDI5MjgwMDAwMDAwMDAwMHxqMDEyMzQ1Njc4OWFi",
		},
		"dse_request_deferrable": DSERequest{
			Task: "All kernels", CIUse: 380,
			Knobs:    &KnobRangeSpec{MACArrays: []int{16, 32}, SRAMMB: []float64{4, 8}},
			Priority: PriorityDeferrable, DeferDeadlineS: 86400,
		},
		"error_envelope_quota": ErrorEnvelope{Error: ErrorBody{
			Status: 429, Code: CodeQuotaExceeded,
			Message: `tenant "acme" has 8 queued jobs (max 8); retry after the queue drains`,
		}},
		"job_status_cluster": JobStatus{
			ID: "jc0ffee123456", Kind: "dse-cluster", State: JobRunning,
			Progress: JobProgress{
				GridPoints: 1048576, Streamed: 524288, Pruned: 524200, Kept: 88,
				ShardsDone: 2, ShardsTotal: 4, ElapsedS: 7.5, ETAS: 7.5,
			},
			CreatedAt: t0, StartedAt: &t1, Checkpointed: true,
		},
	}
}

// TestGoldenWireFormat locks the exact rendered JSON of every wire type.
func TestGoldenWireFormat(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			got, err := json.MarshalIndent(v, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run: go test ./api -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestGoldenRoundTrip re-decodes each golden file into its Go type and
// re-marshals, proving decode(encode(x)) is lossless for the wire contract.
func TestGoldenRoundTrip(t *testing.T) {
	for name, v := range goldenCases() {
		t.Run(name, func(t *testing.T) {
			first, err := json.Marshal(v)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			fresh := newSameType(v)
			if err := json.Unmarshal(first, fresh); err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			second, err := json.Marshal(fresh)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("round trip not lossless\nfirst:  %s\nsecond: %s", first, second)
			}
		})
	}
}

// newSameType returns a pointer to a fresh zero value of v's dynamic type.
func newSameType(v any) any {
	switch v.(type) {
	case AccountingRequest:
		return new(AccountingRequest)
	case AccountingResponse:
		return new(AccountingResponse)
	case DSERequest:
		return new(DSERequest)
	case DSEResponse:
		return new(DSEResponse)
	case ScheduleRequest:
		return new(ScheduleRequest)
	case ScheduleResponse:
		return new(ScheduleResponse)
	case TraceInfo:
		return new(TraceInfo)
	case ExperimentInfo:
		return new(ExperimentInfo)
	case TaskInfo:
		return new(TaskInfo)
	case ConfigInfo:
		return new(ConfigInfo)
	case ModelsResponse:
		return new(ModelsResponse)
	case ErrorEnvelope:
		return new(ErrorEnvelope)
	case JobStatus:
		return new(JobStatus)
	case JobList:
		return new(JobList)
	case ShardEnvelope:
		return new(ShardEnvelope)
	case ClusterStatus:
		return new(ClusterStatus)
	case TenantStatus:
		return new(TenantStatus)
	case JobEvent:
		return new(JobEvent)
	default:
		panic("add the type to newSameType")
	}
}

// TestYieldSpecForms pins the polymorphic yield field's accepted inputs.
func TestYieldSpecForms(t *testing.T) {
	var y YieldSpec
	if err := json.Unmarshal([]byte(`0.9`), &y); err != nil || y.Value != 0.9 || y.Model != "" {
		t.Fatalf("number form: %+v, err %v", y, err)
	}
	if err := json.Unmarshal([]byte(`"poisson"`), &y); err != nil || y.Model != "poisson" {
		t.Fatalf("string form: %+v, err %v", y, err)
	}
	if err := json.Unmarshal([]byte(`null`), &y); err != nil || !y.IsZero() {
		t.Fatalf("null form: %+v, err %v", y, err)
	}
	if err := json.Unmarshal([]byte(`[1]`), &y); err == nil {
		t.Fatal("array form should be rejected")
	}
}
