// Package api holds cordobad's public wire types: every request and response
// body the daemon speaks, plus the error envelope and machine-readable error
// codes. The server aliases these types internally and the client package
// builds on them, so the JSON contract lives in exactly one place; the
// golden-marshal tests in this package lock the rendered format against
// accidental breakage.
//
// The package depends only on the standard library and is importable by any
// Go consumer of the service.
package api

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ---- POST /v1/accounting ----

// AccelSpec selects an accelerator either by grid/3D ID or by explicit
// (MAC arrays, SRAM) knobs.
type AccelSpec struct {
	ID        string  `json:"id,omitempty"`
	MACArrays int     `json:"mac_arrays,omitempty"`
	SRAMMB    float64 `json:"sram_mb,omitempty"`
	Is3D      bool    `json:"is_3d,omitempty"`
	MemDies   int     `json:"mem_dies,omitempty"`
}

// YieldSpec is the polymorphic "yield" field: a JSON number fixes the die
// yield directly (the historical form); a JSON string names a yield model —
// murphy, poisson, seeds, or bose-einstein — that derives yield from die area
// and the fab's defect density.
type YieldSpec struct {
	Value float64 // set when the request gave a number
	Model string  // set when the request gave a model name
}

// UnmarshalJSON accepts a number or a string.
func (y *YieldSpec) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if s == "null" {
		*y = YieldSpec{}
		return nil
	}
	if strings.HasPrefix(s, `"`) {
		var name string
		if err := json.Unmarshal(b, &name); err != nil {
			return err
		}
		*y = YieldSpec{Model: name}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("yield must be a number or a yield-model name: %v", err)
	}
	*y = YieldSpec{Value: v}
	return nil
}

// MarshalJSON renders the form the request used — needed for the server's
// canonical cache key.
func (y YieldSpec) MarshalJSON() ([]byte, error) {
	if y.Model != "" {
		return json.Marshal(y.Model)
	}
	return json.Marshal(y.Value)
}

// IsZero reports whether the field was absent from the request.
func (y YieldSpec) IsZero() bool { return y.Model == "" && y.Value == 0 }

// AccountingRequest asks for the embodied carbon (eq. IV.5) of either a bare
// die (area + yield) or an accelerator configuration (full model with die
// placement and packaging). Model selects the pricing backend ("act" default,
// "chiplet", "stacked-3d"); Yield is either a fixed fraction or a yield-model
// name.
type AccountingRequest struct {
	Process string    `json:"process,omitempty"` // node name, default "7nm"
	Fab     string    `json:"fab,omitempty"`     // fab name, default "coal-heavy"
	AreaCM2 float64   `json:"area_cm2,omitempty"`
	Yield   YieldSpec `json:"yield,omitempty"` // number or model name; default 1.0 (die mode only)
	Model   string    `json:"model,omitempty"` // embodied-carbon backend, default "act"

	Accelerator *AccelSpec `json:"accelerator,omitempty"`
}

// AccountingResponse reports the embodied footprint and echoes the resolved
// accounting parameters.
type AccountingResponse struct {
	Process     string  `json:"process"`
	Fab         string  `json:"fab"`
	FabCI       float64 `json:"fab_ci_g_per_kwh"`
	AreaCM2     float64 `json:"area_cm2"`
	Yield       float64 `json:"yield,omitempty"`       // die mode only (resolved)
	YieldModel  string  `json:"yield_model,omitempty"` // when yield named a model
	Model       string  `json:"model,omitempty"`       // when a backend was selected
	ConfigID    string  `json:"config_id,omitempty"`
	EmbodiedG   float64 `json:"embodied_gco2e"`
	EmbodiedKG  float64 `json:"embodied_kgco2e"`
	SiliconG    float64 `json:"silicon_gco2e,omitempty"`   // backend breakdown
	PackagingG  float64 `json:"packaging_gco2e,omitempty"` // backend breakdown
	BondingG    float64 `json:"bonding_gco2e,omitempty"`   // backend breakdown
	PerAreaG    float64 `json:"gco2e_per_cm2"`             // before yield derating
	Description string  `json:"description"`
}

// ---- POST /v1/dse ----

// SweepSpec selects the operational-time sweep: points log-spaced
// inference counts over [lo, hi].
type SweepSpec struct {
	Lo     float64 `json:"lo"`
	Hi     float64 `json:"hi"`
	Points int     `json:"points"`
}

// KnobRangeSpec describes a design space as cartesian knob ranges for the
// streaming DSE engine: the product of every listed MAC-array count, SRAM
// capacity, V_DD scale, and technology node is enumerated lazily, so grids
// far larger than the materialized sets stay servable. vdd_scales defaults
// to {1.0}; nodes defaults to the request's process.
type KnobRangeSpec struct {
	MACArrays []int     `json:"mac_arrays"`
	SRAMMB    []float64 `json:"sram_mb"`
	VDDScales []float64 `json:"vdd_scales,omitempty"`
	Nodes     []string  `json:"nodes,omitempty"`
	// Models turns the embodied-carbon backend into a sweep axis: every
	// listed backend prices every cell. Defaults to the request's model.
	Models []string `json:"models,omitempty"`
	// Partition turns die partitioning into sweep axes: integration style,
	// chiplet count, and chiplet node are crossed with every other knob.
	// Absent, every design is priced monolithic — exactly the historical
	// behavior.
	Partition *PartitionSpec `json:"partition,omitempty"`
}

// PartitionSpec adds die-partitioning axes to a knob-range exploration.
// Each listed integration style is crossed with every chiplet count and
// chiplet node; "monolithic" entries ignore the other partition knobs, so a
// single request can sweep monolithic-vs-2.5d-vs-3d head to head.
type PartitionSpec struct {
	// Integrations lists the integration styles to sweep: "monolithic",
	// "2.5d" (chiplets beside a memory die on a carrier), "3d" (stacked
	// memory tiers).
	Integrations []string `json:"integrations"`
	// Chiplets lists compute-chiplet (2.5d) or memory-tier (3d) counts;
	// empty sweeps the default split.
	Chiplets []int `json:"chiplets,omitempty"`
	// ChipletNodes lists technology nodes for the partitioned memory die —
	// the mixed-node reuse lever; empty keeps memory on the cell's node.
	ChipletNodes []string `json:"chiplet_nodes,omitempty"`
	// Carrier names the 2.5d carrier technology ("rdl-fanout" default,
	// "silicon-interposer", "emib").
	Carrier string `json:"carrier,omitempty"`
}

// SurrogateSpec tunes the surrogate-guided Pareto search (search:
// "surrogate"): a budgeted NSGA-II-style lattice search that recovers the
// knob grid's tCDP envelope from a small fraction of the evaluations the
// exhaustive engine pays. Every field is optional; the zero value selects
// the documented defaults. Results are deterministic for a fixed seed.
type SurrogateSpec struct {
	// Seed drives every stochastic choice; equal seeds give byte-identical
	// results. 0 selects seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Budget caps true evaluations; 0 selects the server default (2 % of the
	// grid, clamped to [256, 8192]).
	Budget int64 `json:"budget,omitempty"`
	// Population is the NSGA parent-pool size (default 48).
	Population int `json:"population,omitempty"`
	// Generations caps the adaptive rounds; 0 runs until the budget is spent.
	Generations int `json:"generations,omitempty"`
	// Oracle additionally runs the exhaustive engine on the same grid and
	// reports quality metrics (hypervolume_ratio, additive_epsilon,
	// coverage) against it. Validation only — it pays the full grid, so the
	// grid must fit the server's exhaustive cap.
	Oracle bool `json:"oracle,omitempty"`
}

// SurrogateInfo reports how a surrogate-served exploration ran, including
// the oracle-equivalence metrics when the request asked for them.
type SurrogateInfo struct {
	Seed            uint64  `json:"seed"`
	Budget          int64   `json:"budget"`
	Generations     int     `json:"generations"`
	GridPoints      int64   `json:"grid_points"`
	EvaluationsUsed int64   `json:"evaluations_used"`
	EvalFraction    float64 `json:"eval_fraction"`
	Skipped         int64   `json:"skipped"`

	// Quality metrics versus the exhaustive oracle; present only when the
	// request set surrogate.oracle.
	HypervolumeRatio *float64 `json:"hypervolume_ratio,omitempty"`
	AdditiveEpsilon  *float64 `json:"additive_epsilon,omitempty"`
	Coverage         *float64 `json:"coverage,omitempty"`
}

// DSERequest asks for a design-space exploration of a task over a set of
// accelerator configurations. The same body drives both the synchronous
// POST /v1/dse and asynchronous POST /v1/jobs forms.
type DSERequest struct {
	Task    string  `json:"task"`
	Process string  `json:"process,omitempty"` // default "7nm"
	Fab     string  `json:"fab,omitempty"`     // default "coal-heavy"
	CIUse   float64 `json:"ci_use,omitempty"`  // g/kWh, default 380 (Table III)

	// Model selects the embodied-carbon backend pricing every design ("act"
	// default, "chiplet", "stacked-3d"); Yield selects the yield model
	// ("murphy" default, "poisson", "seeds", "bose-einstein").
	Model string `json:"model,omitempty"`
	Yield string `json:"yield,omitempty"`

	// CITrace names a registry trace (see GET /v1/traces) to derive the
	// use-phase intensity from instead of the scalar ci_use: operational
	// carbon is charged at the trace's exact time-average over trace_life_s
	// (default one year). Mutually exclusive with ci_use.
	CITrace    string  `json:"ci_trace,omitempty"`
	TraceLifeS float64 `json:"trace_life_s,omitempty"`

	// Set selects a predefined space: "grid" (121 Fig. 8 configs, the
	// default) or "3d" (the seven §VI-E designs). Configs, when non-empty,
	// restricts the space to the named IDs instead. Knobs switches to the
	// streaming engine over lazily enumerated knob ranges. The three fields
	// are mutually exclusive; the response to a knobs request carries only
	// the surviving ever-optimal points plus points_streamed /
	// points_pruned totals.
	Set     string         `json:"set,omitempty"`
	Configs []string       `json:"configs,omitempty"`
	Knobs   *KnobRangeSpec `json:"knobs,omitempty"`
	Sweep   *SweepSpec     `json:"sweep,omitempty"`

	// Shards, on an async knobs job against a coordinator, fans the grid out
	// across the cluster's workers as that many contiguous shape shards
	// (0 = run locally). Shard is the worker-facing counterpart: it restricts
	// the run to one shard and switches the job's result to a ShardEnvelope.
	// The two fields are mutually exclusive, and both require knobs.
	Shards int        `json:"shards,omitempty"`
	Shard  *ShardSpec `json:"shard,omitempty"`

	// Search selects the knob-grid engine: "exhaustive" evaluates every
	// point, "surrogate" runs the budgeted Pareto search, and ""/"auto"
	// picks exhaustive for grids within the server's -max-grid-points cap
	// and surrogate above it. Requires knobs; "surrogate" is mutually
	// exclusive with shard and shards. Surrogate, when present, tunes the
	// search and implies search: "surrogate".
	Search    string         `json:"search,omitempty"`
	Surrogate *SurrogateSpec `json:"surrogate,omitempty"`

	// Priority, on async submissions (POST /v1/jobs), selects the job's
	// scheduling class: "interactive" dequeues before "batch" (the default),
	// and "deferrable" is additionally routed through the launch-window
	// search over the server's region CI trace and held until its
	// lowest-carbon start. Ignored by the synchronous endpoint.
	Priority Priority `json:"priority,omitempty"`
	// DeferDeadlineS bounds a deferrable job's delay: the job finishes no
	// later than this many seconds from submission (0 selects the server's
	// default horizon). Ignored unless priority is "deferrable".
	DeferDeadlineS float64 `json:"defer_deadline_s,omitempty"`
}

// DSEPoint is one evaluated design in the response.
type DSEPoint struct {
	ID        string  `json:"id"`
	MACArrays int     `json:"mac_arrays"`
	SRAMMB    float64 `json:"sram_mb"`
	Is3D      bool    `json:"is_3d,omitempty"`
	Model     string  `json:"model,omitempty"` // backend that priced the point
	// Partition provenance (knob-range requests with partition axes only):
	// the integration style, chiplet/tier count, memory-die node, and
	// carrier that produced this design. Absent for monolithic points.
	Integration    string  `json:"integration,omitempty"`
	Chiplets       int     `json:"chiplets,omitempty"`
	ChipletNode    string  `json:"chiplet_node,omitempty"`
	Carrier        string  `json:"carrier,omitempty"`
	DelayS         float64 `json:"delay_s"`
	EnergyJ        float64 `json:"energy_j"`
	EmbodiedG      float64 `json:"embodied_gco2e"`
	AreaCM2        float64 `json:"area_cm2"`
	EDPJS          float64 `json:"edp_js"`
	EmbodiedDelayG float64 `json:"embodied_delay_gs"`
}

// SweepEntry is the tCDP optimum at one operational time.
type SweepEntry struct {
	Inferences float64 `json:"inferences"`
	OptimalID  string  `json:"optimal_id"`
	TCDPGS     float64 `json:"tcdp_gs"`
	MeanTCDPGS float64 `json:"mean_tcdp_gs"`
}

// DSEResponse is the full exploration result: every evaluated point, the
// ever-optimal set with its elimination fraction (§VI-B), and the
// tCDP-optimal sweep across operational time (the Fig. 8 x-axis).
//
// For knob-range (streaming) requests, Points holds only the surviving
// ever-optimal designs — the engine discards the rest of the grid as it
// streams — and PointsStreamed / PointsPruned report the totals.
type DSEResponse struct {
	Task               string       `json:"task"`
	Process            string       `json:"process"`
	Fab                string       `json:"fab"`
	Model              string       `json:"model,omitempty"` // requested backend
	Yield              string       `json:"yield,omitempty"` // requested yield model
	CIUse              float64      `json:"ci_use_g_per_kwh"`
	CITrace            string       `json:"ci_trace,omitempty"`
	TraceLifeS         float64      `json:"trace_life_s,omitempty"`
	Points             []DSEPoint   `json:"points"`
	EverOptimal        []string     `json:"ever_optimal"`
	EliminatedFraction float64      `json:"eliminated_fraction"`
	PointsStreamed     int64        `json:"points_streamed,omitempty"`
	PointsPruned       int64        `json:"points_pruned,omitempty"`
	Sweep              []SweepEntry `json:"sweep"`

	// Search names the engine that served a knob-range request when it was
	// not the exhaustive default ("surrogate"); Surrogate carries that run's
	// budget accounting and optional oracle-equivalence metrics. For
	// surrogate runs PointsStreamed counts true evaluations, and the
	// envelope covers the evaluated subset of the grid.
	Search    string         `json:"search,omitempty"`
	Surrogate *SurrogateInfo `json:"surrogate,omitempty"`
}

// ---- GET /v1/traces ----

// TraceInfo is one row of the trace-registry listing. The daily and annual
// statistics come from the exact cumulative engine, so clients can pick a
// grid without integrating anything themselves.
type TraceInfo struct {
	Name      string  `json:"name"`
	MeanDayG  float64 `json:"mean_ci_24h_g_per_kwh"`
	MeanYearG float64 `json:"mean_ci_1y_g_per_kwh"`
	MinDayG   float64 `json:"min_ci_24h_g_per_kwh"`
	MaxDayG   float64 `json:"max_ci_24h_g_per_kwh"`
}

// ---- POST /v1/schedule ----

// ScheduleRequest asks for the lowest-carbon execution window for a
// deferrable job on a named CI_use(t) trace. Times are seconds from now.
type ScheduleRequest struct {
	Trace     string  `json:"trace"`
	DurationS float64 `json:"duration_s"`
	PowerW    float64 `json:"power_w"`
	DeadlineS float64 `json:"deadline_s"`
	StepS     float64 `json:"step_s,omitempty"` // candidate granularity, default 900
}

// ScheduleWindow is one execution slot in the response.
type ScheduleWindow struct {
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	CarbonG   float64 `json:"carbon_gco2e"`
	AvgCIG    float64 `json:"avg_ci_g_per_kwh"`
	StartHour float64 `json:"start_hour"` // convenience: start_s / 3600
}

// ScheduleResponse reports the search outcome.
type ScheduleResponse struct {
	Trace      string         `json:"trace"`
	Best       ScheduleWindow `json:"best"`
	Worst      ScheduleWindow `json:"worst"`
	Immediate  ScheduleWindow `json:"immediate"`
	Candidates int            `json:"candidates"`
	// SavingsFraction is 1 − best/immediate carbon: what deferring saves.
	SavingsFraction float64 `json:"savings_fraction"`
}

// ---- discovery endpoints ----

// ExperimentInfo is one row of the GET /v1/experiments listing.
type ExperimentInfo struct {
	Key     string   `json:"key"`
	Title   string   `json:"title"`
	Formats []string `json:"formats"`
}

// TaskInfo describes one servable task (GET /v1/tasks).
type TaskInfo struct {
	Name       string             `json:"name"`
	Kernels    map[string]float64 `json:"kernels"`
	TotalCalls float64            `json:"total_calls"`
}

// ConfigInfo describes one accelerator configuration (GET /v1/configs).
type ConfigInfo struct {
	ID        string  `json:"id"`
	MACArrays int     `json:"mac_arrays"`
	TotalMACs int     `json:"total_macs"`
	SRAMMB    float64 `json:"sram_mb"`
	Is3D      bool    `json:"is_3d,omitempty"`
	MemDies   int     `json:"mem_dies,omitempty"`
	AreaCM2   float64 `json:"area_cm2"`
}

// ModelInfo describes one embodied-carbon backend (GET /v1/models).
type ModelInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Integrations lists the partition integration styles the backend can
	// price ("monolithic", "2.5d", "3d").
	Integrations []string `json:"integrations,omitempty"`
}

// ModelsResponse lists the selectable accounting backends and yield models.
type ModelsResponse struct {
	Models      []ModelInfo `json:"models"`
	YieldModels []string    `json:"yield_models"`
}
