package api

import "time"

// JobState is a job's lifecycle state as rendered on the wire.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobSucceeded JobState = "succeeded"
	JobFailed    JobState = "failed"
	JobCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobSucceeded || s == JobFailed || s == JobCanceled
}

// JobProgress is the live view of a running exploration.
type JobProgress struct {
	// GridPoints is the total number of configurations the job will
	// evaluate, when known up front (knob-range explorations know it).
	GridPoints int64 `json:"grid_points,omitempty"`
	// Streamed, Pruned and Kept mirror the streaming engine's counters:
	// points evaluated, points eliminated, and current survivors.
	Streamed int64 `json:"streamed"`
	Pruned   int64 `json:"pruned"`
	Kept     int   `json:"kept"`
	// ShapesDone / ShapesTotal is the engine's coarse work cursor; the
	// ratio is the job's completion fraction.
	ShapesDone  int `json:"shapes_done"`
	ShapesTotal int `json:"shapes_total"`
	// ShardsDone / ShardsTotal track a distributed (sharded) job's fan-out;
	// zero for single-node jobs.
	ShardsDone  int `json:"shards_done,omitempty"`
	ShardsTotal int `json:"shards_total,omitempty"`
	// Generation, EvalsUsed and EvalsBudget track a surrogate search: the
	// NSGA generation counter and the true-evaluation budget cursor. Zero
	// for exhaustive jobs.
	Generation  int   `json:"generation,omitempty"`
	EvalsUsed   int64 `json:"evals_used,omitempty"`
	EvalsBudget int64 `json:"evals_budget,omitempty"`
	// ElapsedS is seconds since the job started running (0 while queued).
	ElapsedS float64 `json:"elapsed_s"`
	// ETAS extrapolates the remaining seconds from progress so far; 0 when
	// unknown (not started, or nothing measured yet).
	ETAS float64 `json:"eta_s,omitempty"`
}

// JobStatus is the wire form of one job (GET /v1/jobs/{id} and the
// submission response).
type JobStatus struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	// Tenant names the owning tenant; empty for the anonymous tenant, so a
	// daemon without a tenant registry renders exactly the historical form.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the job's scheduling class; empty means batch.
	Priority Priority `json:"priority,omitempty"`
	// Error carries the failure message for failed jobs.
	Error    string      `json:"error,omitempty"`
	Progress JobProgress `json:"progress"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// NotBefore, on deferrable jobs, is the launch-window start the
	// scheduler holds the job for; CO2AvoidedG is the operational carbon the
	// deferral avoids versus running immediately (grams, from the region CI
	// trace).
	NotBefore   *time.Time `json:"not_before,omitempty"`
	CO2AvoidedG float64    `json:"co2_avoided_g,omitempty"`

	// Resumes counts checkpoint restarts (crash recovery / redeploys).
	Resumes int `json:"resumes"`
	// Checkpointed reports whether a resumable checkpoint exists.
	Checkpointed bool `json:"checkpointed"`
	// HasResult reports whether GET /v1/jobs/{id}/result will succeed.
	HasResult bool `json:"has_result"`
}

// JobList is the GET /v1/jobs response, newest first. The listing is
// paginated: when a page fills, NextCursor carries an opaque token the
// client passes back as ?cursor= to continue exactly where the page ended,
// stable under concurrent submissions.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
	// NextCursor is empty on the final page.
	NextCursor string `json:"next_cursor,omitempty"`
}
