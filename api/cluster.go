package api

import (
	"encoding/json"
	"time"
)

// ---- distributed DSE (coordinator / worker) ----

// ShardSpec restricts a knob-range DSE job to a contiguous run of grid
// shapes: shapes [first, first+count) of the shape-major enumeration.
// Coordinators attach it to the worker-facing job body; survivor IDs stay
// global, so the worker's envelope merges losslessly into the whole-grid
// result. Resume, when present, carries the shard's last checkpoint (the
// opaque engine checkpoint JSON) so a requeued shard continues instead of
// restarting.
type ShardSpec struct {
	First  int             `json:"first"`
	Count  int             `json:"count"`
	Resume json.RawMessage `json:"resume,omitempty"`
}

// ShardPoint is one surviving design in a worker's shard envelope. Index is
// the point's global grid index — the coordinate the merge tie-breaks on.
// Config is the evaluated accelerator configuration marshaled verbatim
// (including the per-point knob scalings baked into its parameters); it and
// the float64 metrics round-trip bit-exactly through JSON, so a merged
// result is identical to a single-node run.
type ShardPoint struct {
	Index     int64           `json:"index"`
	Config    json.RawMessage `json:"config"`
	Model     string          `json:"model,omitempty"`
	DelayS    float64         `json:"delay_s"`
	EnergyJ   float64         `json:"energy_j"`
	EmbodiedG float64         `json:"embodied_gco2e"`
	AreaCM2   float64         `json:"area_cm2"`
}

// ShardEnvelope is a worker's result for one shard: the surviving
// lower-convex-envelope vertices plus the counters and sufficient statistics
// the coordinator folds into the merged exploration.
type ShardEnvelope struct {
	Task           string       `json:"task"`
	First          int          `json:"first"`
	Count          int          `json:"count"`
	CIUse          float64      `json:"ci_use_g_per_kwh"`
	PointsStreamed int64        `json:"points_streamed"`
	PrePruned      int64        `json:"pre_pruned"`
	Offered        int64        `json:"offered"`
	SumEDP         float64      `json:"sum_edp"`
	SumEmbD        float64      `json:"sum_embd"`
	Survivors      []ShardPoint `json:"survivors"`
}

// ClusterWorker is one worker's row in the GET /v1/cluster listing.
type ClusterWorker struct {
	URL           string     `json:"url"`
	State         string     `json:"state"` // "up" or "down"
	LastHeartbeat *time.Time `json:"last_heartbeat,omitempty"`
	ShardsDone    int64      `json:"shards_done"`
	ShardsFailed  int64      `json:"shards_failed"`
	AvgShardS     float64    `json:"avg_shard_s,omitempty"`
}

// ClusterStatus is the GET /v1/cluster response: the daemon's role and, for
// coordinators, the worker membership and lifetime shard counters.
type ClusterStatus struct {
	Role             string          `json:"role"`
	Workers          []ClusterWorker `json:"workers,omitempty"`
	ShardsDispatched int64           `json:"shards_dispatched"`
	ShardsRetried    int64           `json:"shards_retried"`
	ShardsMerged     int64           `json:"shards_merged"`
}
