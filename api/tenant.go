package api

// ---- multi-tenant serving (PR 11) ----

// Priority is a job's scheduling class. Interactive jobs dequeue before
// batch ones within a tenant; deferrable jobs are additionally routed
// through the launch-window search over the server's region CI trace and
// held until their lowest-carbon start. An empty priority means batch.
type Priority string

const (
	PriorityInteractive Priority = "interactive"
	PriorityBatch       Priority = "batch"
	PriorityDeferrable  Priority = "deferrable"
)

// Priorities lists the valid classes in dequeue order.
func Priorities() []Priority {
	return []Priority{PriorityInteractive, PriorityBatch, PriorityDeferrable}
}

// Valid reports whether p names a known class; the empty string is valid
// and means PriorityBatch.
func (p Priority) Valid() bool {
	switch p {
	case "", PriorityInteractive, PriorityBatch, PriorityDeferrable:
		return true
	}
	return false
}

// OrDefault resolves the empty priority to the batch default.
func (p Priority) OrDefault() Priority {
	if p == "" {
		return PriorityBatch
	}
	return p
}

// TenantInfo describes one tenant's identity and configured limits
// (GET /v1/tenant). Zero limits mean unlimited.
type TenantInfo struct {
	Name string `json:"name"`
	// Weight is the tenant's fair-share weight: a weight-2 tenant dequeues
	// twice as often as a weight-1 tenant under contention.
	Weight float64 `json:"weight"`
	// MaxQueuedJobs caps the tenant's jobs waiting in the queue.
	MaxQueuedJobs int `json:"max_queued_jobs,omitempty"`
	// MaxGridPoints caps the sum of grid points across the tenant's queued
	// and running jobs.
	MaxGridPoints int64 `json:"max_grid_points,omitempty"`
	// RatePerSec and Burst shape the tenant's request token bucket.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
}

// QuotaStatus is the tenant's live usage against its limits.
type QuotaStatus struct {
	QueuedJobs    int `json:"queued_jobs"`
	MaxQueuedJobs int `json:"max_queued_jobs,omitempty"`
	// GridPointsInFlight sums grid points over queued + running jobs.
	GridPointsInFlight int64 `json:"grid_points_in_flight"`
	MaxGridPoints      int64 `json:"max_grid_points,omitempty"`
	// RateRemaining is the token-bucket balance at sampling time.
	RateRemaining float64 `json:"rate_remaining,omitempty"`
}

// TenantStatus is the GET /v1/tenant response: who the key authenticated
// as, and where that tenant stands against its quotas.
type TenantStatus struct {
	Tenant TenantInfo  `json:"tenant"`
	Quota  QuotaStatus `json:"quota"`
}

// Job event types carried by GET /v1/jobs/{id}/events (SSE).
const (
	// EventState announces a lifecycle transition (and the initial snapshot).
	EventState = "state"
	// EventProgress carries a live progress update from the runner.
	EventProgress = "progress"
	// EventCheckpoint announces a durably saved checkpoint.
	EventCheckpoint = "checkpoint"
	// EventDone is the terminal event; the stream ends after it.
	EventDone = "done"
)

// JobEvent is one server-sent event on a job's event stream. Seq increases
// monotonically per job; clients reconnecting after a drop can discard
// events at or below the last seq they processed.
type JobEvent struct {
	Seq  int64     `json:"seq"`
	Type string    `json:"type"`
	Job  JobStatus `json:"job"`
}
