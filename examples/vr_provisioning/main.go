// VR hardware provisioning (paper §VI-D): sweep the CPU core count of a
// Quest 2-class SoC for the profiled production tasks and find the
// tCDP-optimal provisioning per task.
package main

import (
	"fmt"
	"log"

	"cordoba"
)

func main() {
	platform := cordoba.Quest2()
	for _, task := range cordoba.PaperVRTasks() {
		sweep, err := platform.Sweep(task)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := platform.OptimalCores(task)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s (TLP %.2f, %s)\n", task.Name, task.Profile.TLP(), task.Category)
		for _, r := range sweep {
			mark := " "
			if r.Cores == opt {
				mark = "★"
			}
			fmt.Printf("  %s %d cores: tCDP gain %.3f×, relative FPS %.3f, tC %s\n",
				mark, r.Cores, r.TCDPGain, r.RelativeFPS, r.Report.TotalCarbon())
		}
	}

	// The Table V headline: 8 → 4 cores for the media task.
	m1 := cordoba.PaperVRTasks()[1]
	before, err := platform.Evaluate(m1, 8)
	if err != nil {
		log.Fatal(err)
	}
	after, err := platform.Evaluate(m1, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nM-1, 8→4 cores: embodied %s → %s, tCDP improves %.2f×\n",
		before.EmbodiedCarbon, after.EmbodiedCarbon, before.TCDP()/after.TCDP())
}
