// Quickstart: account the carbon of a chip, evaluate two accelerator designs
// on a workload, and pick the carbon-efficient one by tCDP.
package main

import (
	"fmt"
	"log"

	"cordoba"
)

func main() {
	// 1. Carbon accounting (eq. IV.5): a 100 mm² die at 7 nm in a
	//    coal-powered fab with 95 % yield.
	die, err := cordoba.EmbodiedDie(cordoba.Process7nm(), cordoba.FabCoal, 1.0, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embodied carbon of a 1 cm² 7 nm die: %s\n", die)

	// 2. Operational carbon (eq. IV.6): 5 W for 2 hours a day over 3 years
	//    on a 380 g/kWh grid.
	use := cordoba.Power(5).Over(cordoba.Hours(2 * 365 * 3))
	op := cordoba.Operational(380, use)
	fmt.Printf("operational carbon over 3 years of daily use: %s\n", op)

	// 3. Compare a small and a large accelerator on an XR task: at short
	//    operational times the small design's low embodied carbon wins; at
	//    long times the big design's speed and avoided DRAM spills win.
	task, err := cordoba.PaperTask(cordoba.TaskXR5)
	if err != nil {
		log.Fatal(err)
	}
	small := cordoba.NewAccelerator("small", 2, cordoba.MB(1))
	large := cordoba.NewAccelerator("large", 16, cordoba.MB(32))
	space, err := cordoba.Explore(task, []cordoba.AcceleratorConfig{small, large})
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []float64{1e4, 1e10} {
		best := space.Points[space.OptimalAt(n)]
		r := best.Report(space.CIUse, n)
		fmt.Printf("after %.0e inferences: %-5s wins (tCDP %.3g gCO2e·s, tC %s)\n",
			n, best.Config.ID, r.TCDP(), r.TotalCarbon())
	}
}
