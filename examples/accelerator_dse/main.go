// Accelerator design-space exploration (paper §VI-B): sweep the
// 121-configuration MAC/SRAM grid on an XR workload, find the designs that
// can ever be tCDP-optimal, and show how the optimum moves with operational
// time.
package main

import (
	"fmt"
	"log"

	"cordoba"
)

func main() {
	task, err := cordoba.PaperTask(cordoba.TaskXR10)
	if err != nil {
		log.Fatal(err)
	}
	space, err := cordoba.Explore(task, cordoba.Grid())
	if err != nil {
		log.Fatal(err)
	}

	env := space.EverOptimal()
	fmt.Printf("task %q: %d of %d designs can ever be tCDP-optimal (%.1f%% eliminated)\n",
		task.Name, len(env), len(space.Points), 100*space.EliminatedFraction())
	fmt.Println("\never-optimal designs (long-operational-time end first):")
	for _, i := range env {
		p := space.Points[i]
		fmt.Printf("  %-5s %3d MAC arrays, %-7s SRAM — delay %v, embodied %s\n",
			p.Config.ID, p.Config.MACArrays, p.Config.SRAM, p.Delay, p.Embodied)
	}

	fmt.Println("\noptimal design across operational time:")
	for _, n := range cordoba.LogSpace(1e4, 1e11, 8) {
		p := space.Points[space.OptimalAt(n)]
		fmt.Printf("  %.1e inferences → %-5s (tCDP %.3g gCO2e·s)\n",
			n, p.Config.ID, p.TCDP(space.CIUse, n))
	}

	// Robustness (§VI-C): if the usage is uncertain, pick the design with
	// the best average normalized tCDP instead of a point optimum.
	sweep := cordoba.LogSpace(1e4, 1e11, 30)
	robust := space.Points[space.BestAverage(sweep)]
	fmt.Printf("\nrobust choice across usage uncertainty: %s\n", robust.Config.ID)
}
