// Hardware lifetime as a carbon design knob (paper §VII): how often should a
// datacenter service refresh its hardware? Frequent refresh rides technology
// node efficiency gains but manufactures more chips; tCDP finds the balance.
package main

import (
	"fmt"
	"log"

	"cordoba"
)

func main() {
	svc := cordoba.DefaultRefreshService()
	periods := cordoba.RefreshPeriods()
	results, err := svc.Sweep(periods)
	if err != nil {
		log.Fatal(err)
	}
	best, err := svc.Optimal(periods)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("10-year service, nodes advancing every %.1f years:\n\n", svc.NodeCadence.InYears())
	for _, r := range results {
		mark := " "
		if r.Period == best.Period {
			mark = "★"
		}
		o := r.Outcome
		fmt.Printf("%s refresh every %2.0f y: %d chips, energy %v, embodied %v, tCDP %.3g\n",
			mark, r.Period.InYears(), o.Refreshes, o.Energy, o.Embodied, o.TCDP())
	}

	// The §VII trade-off in one line: frequent refresh vs keep-forever.
	eRatio, cRatio, err := svc.EnergyVersusEmbodied(cordoba.Years(2), cordoba.Years(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrefreshing every 2 years vs never: %.2f× the energy, %.2f× the embodied carbon\n",
		eRatio, cRatio)

	// On a very clean grid, operational carbon stops mattering and longer
	// lifetimes win.
	clean := svc
	clean.CIUse = 20
	cleanBest, err := clean.Optimal(periods)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on a 20 g/kWh grid the optimal cadence moves from %.0f to %.0f years\n",
		best.Period.InYears(), cleanBest.Period.InYears())
}
