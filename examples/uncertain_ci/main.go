// Optimizing under unknown carbon intensity (paper §IV-B): even when
// CI_use(t) is unknown or changing over time, designs off the lower convex
// envelope of (E·D, C_emb·D) can never be tCDP-optimal and are safely
// eliminated. This example builds a design space, eliminates, and then
// stress-tests the theorem against several concrete grid futures.
package main

import (
	"fmt"
	"log"

	"cordoba"
)

func main() {
	task, err := cordoba.PaperTask(cordoba.TaskXR5)
	if err != nil {
		log.Fatal(err)
	}
	space, err := cordoba.Explore(task, cordoba.Grid())
	if err != nil {
		log.Fatal(err)
	}
	designs := cordoba.DesignsFromSpace(space)

	// Fixed-work analysis (each design executes the same number of
	// inferences — the Fig. 12 setting).
	surv := cordoba.Survivors(designs)
	fmt.Printf("of %d designs, only %d can be tCDP-optimal for *any* CI_use (fixed-work):\n  ", len(designs), len(surv))
	for _, i := range surv {
		fmt.Printf("%s ", designs[i].Name)
	}
	fmt.Println()

	// Fixed-time analysis (eq. IV.7: each design runs at its fixed power
	// for the same lifetime) — the setting the trace theorem applies to.
	survTime := cordoba.SurvivorsFixedTime(designs)
	survivorSet := map[int]bool{}
	fmt.Printf("\nsurvivors for a fixed hardware lifetime under any CI_use(t):\n  ")
	for _, i := range survTime {
		survivorSet[i] = true
		fmt.Printf("%s ", designs[i].Name)
	}
	fmt.Println("\n\nall other designs are eliminated without knowing the future grid mix.")

	// Stress-test against concrete futures: a dirty constant grid, a clean
	// constant grid, a solar-heavy diurnal grid, and a decade-long
	// decarbonization ramp.
	traces := []cordoba.CITrace{
		cordoba.ConstantCI(820),
		cordoba.ConstantCI(40),
		cordoba.DiurnalCI(400, 250),
		cordoba.DecarbonizationRamp(475, 50, cordoba.Years(10)),
	}
	life := cordoba.Years(5)
	fmt.Printf("\ntCDP-optimal design over a %v lifetime under concrete grid futures:\n", life)
	for _, tr := range traces {
		opt, err := cordoba.OptimalUnderTrace(designs, tr, life)
		if err != nil {
			log.Fatal(err)
		}
		inSet := "✓ predicted by the envelope"
		if !survivorSet[opt] {
			inSet = "✗ THEOREM VIOLATED"
		}
		fmt.Printf("  %-35s → %-5s %s\n", tr.Name(), designs[opt].Name, inSet)
	}
}
