// 3D integration study (paper §VI-E): compare a conventional 2D accelerator
// against 3D-stacked logic+memory configurations on a super-resolution
// kernel, in both an embodied-carbon-dominant and an operational-carbon-
// dominant regime.
package main

import (
	"fmt"
	"log"

	"cordoba"
)

func main() {
	// One SR 512×512 inference per task execution (the §VI-E workload).
	task := cordoba.Task{Name: "SR 512x512", Calls: map[cordoba.KernelID]float64{cordoba.KernelSR512: 1}}
	space, err := cordoba.Explore(task, cordoba.Stacked3D())
	if err != nil {
		log.Fatal(err)
	}

	base := space.Points[0] // Baseline_1K_1M is first
	fmt.Printf("baseline %s: delay %v, energy %v, embodied %s\n\n",
		base.Config.ID, base.Delay, base.Energy, base.Embodied)

	for _, c := range []struct {
		label string
		n     float64
	}{
		{"embodied-dominant (short lifetime)", 1e7},
		{"operational-dominant (long lifetime)", 1e9},
	} {
		fmt.Printf("%s — %.0e inferences:\n", c.label, c.n)
		baseTCDP := base.TCDP(space.CIUse, c.n)
		for _, p := range space.Points {
			fmt.Printf("  %-15s tCDP %10.3g gCO2e·s  (%.2f× vs baseline)\n",
				p.Config.ID, p.TCDP(space.CIUse, c.n), baseTCDP/p.TCDP(space.CIUse, c.n))
		}
		best := space.Points[space.OptimalAt(c.n)]
		fmt.Printf("  → optimal: %s\n\n", best.Config.ID)
	}

	// §IV-B: even without knowing CI_use(t), most configurations can be
	// eliminated from consideration.
	designs := cordoba.DesignsFromSpace(space)
	fmt.Print("can be tCDP-optimal for some CI_use(t): ")
	for _, i := range cordoba.Survivors(designs) {
		fmt.Printf("%s ", designs[i].Name)
	}
	fmt.Println()
}
