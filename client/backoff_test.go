package client

import (
	"testing"
	"time"
)

// TestExpBackoffSaturates pins the overflow fix: retryBase << attempt went
// negative around attempt 37 with the 100 ms default, and the old "d <= 0 →
// retryBase" repair then collapsed a long-retrying client back to the base
// delay — the opposite of backing off. The saturating doubler must clamp at
// the cap for every attempt count, however large.
func TestExpBackoffSaturates(t *testing.T) {
	base := 100 * time.Millisecond
	cap := 2 * time.Second
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{0, 100 * time.Millisecond},
		{1, 200 * time.Millisecond},
		{2, 400 * time.Millisecond},
		{4, 1600 * time.Millisecond},
		{5, cap}, // 3200 ms > cap
		{36, cap},
		{37, cap}, // 100ms << 37 overflows int64 negative
		{63, cap},
		{64, cap},
		{100, cap},
		{1000, cap},
	}
	for _, tc := range cases {
		if got := expBackoff(base, cap, tc.attempt); got != tc.want {
			t.Errorf("expBackoff(%v, %v, %d) = %v, want %v", base, cap, tc.attempt, got, tc.want)
		}
	}

	// Monotone non-decreasing and never non-positive across the full range.
	prev := time.Duration(0)
	for attempt := 0; attempt <= 200; attempt++ {
		d := expBackoff(base, cap, attempt)
		if d <= 0 {
			t.Fatalf("expBackoff(%d) = %v, non-positive", attempt, d)
		}
		if d < prev {
			t.Fatalf("expBackoff(%d) = %v < previous %v", attempt, d, prev)
		}
		prev = d
	}
}

// TestBackoffLargeAttempts drives the client method itself through the
// attempt counts that used to overflow.
func TestBackoffLargeAttempts(t *testing.T) {
	c := New("http://example", WithRetry(1000, 100*time.Millisecond, 2*time.Second))
	for _, attempt := range []int{37, 62, 63, 64, 100, 1 << 20} {
		if d := c.backoff(attempt, 0); d != 2*time.Second {
			t.Errorf("backoff(attempt=%d) = %v, want cap %v", attempt, d, 2*time.Second)
		}
	}
	// Retry-After still wins over the computed delay, capped as before.
	if d := c.backoff(50, 0.5); d != 500*time.Millisecond {
		t.Errorf("backoff with Retry-After = %v, want 500ms", d)
	}
	if d := c.backoff(50, 30); d != 2*time.Second {
		t.Errorf("backoff with huge Retry-After = %v, want cap", d)
	}
}
