package client_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"cordoba/api"
	"cordoba/client"
	"cordoba/internal/server"
)

// newPair spins up a real cordobad handler behind httptest and a client
// pointed at it — the full client↔server round-trip surface.
func newPair(t *testing.T, cfg server.Config, opts ...client.Option) (*client.Client, *server.Server) {
	t.Helper()
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	return client.New(ts.URL, opts...), srv
}

func TestAccountingRoundTrip(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	resp, err := c.Accounting(context.Background(), api.AccountingRequest{
		AreaCM2: 1.2, Yield: api.YieldSpec{Model: "murphy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.EmbodiedG <= 0 || resp.YieldModel != "murphy" {
		t.Fatalf("accounting response = %+v", resp)
	}
}

func TestDSERoundTrip(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	req := api.DSERequest{
		Task:  "All kernels",
		Knobs: &api.KnobRangeSpec{MACArrays: []int{1, 2}, SRAMMB: []float64{1, 2}},
	}
	resp, err := c.DSE(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.PointsStreamed != 4 || len(resp.EverOptimal) == 0 {
		t.Fatalf("dse response = %+v", resp)
	}
}

// TestPartitionDSERoundTrip drives a partition-axis knob request through the
// typed client: the grid crosses integration styles with every other knob,
// axis validation surfaces the machine-readable invalid_knobs code, and the
// models listing reports each backend's integration styles.
func TestPartitionDSERoundTrip(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	ctx := context.Background()
	resp, err := c.DSE(ctx, api.DSERequest{
		Task: "All kernels",
		Knobs: &api.KnobRangeSpec{
			MACArrays: []int{1, 2}, SRAMMB: []float64{1, 2},
			Partition: &api.PartitionSpec{
				Integrations: []string{"monolithic", "2.5d"},
				Chiplets:     []int{4},
				ChipletNodes: []string{"14nm"},
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.PointsStreamed != 8 {
		t.Fatalf("points streamed = %d, want 8 (4 shapes x 2 integrations)", resp.PointsStreamed)
	}

	_, err = c.DSE(ctx, api.DSERequest{
		Task: "All kernels",
		Knobs: &api.KnobRangeSpec{
			MACArrays: []int{1, 2}, SRAMMB: []float64{1, 2},
			Partition: &api.PartitionSpec{Integrations: []string{"2.5d", "2.5d"}},
		},
	})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidKnobs {
		t.Fatalf("duplicate integration axis: err = %v, want code %q", err, api.CodeInvalidKnobs)
	}

	models, err := c.Models(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range models.Models {
		if len(m.Integrations) == 0 {
			t.Fatalf("model %q reports no integration styles: %+v", m.Name, m)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	resp, err := c.Schedule(context.Background(), api.ScheduleRequest{
		Trace: "solar-diurnal", DurationS: 3600, PowerW: 300, DeadlineS: 86400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Best.CarbonG <= 0 || resp.Best.CarbonG > resp.Worst.CarbonG {
		t.Fatalf("schedule response = %+v", resp)
	}
}

func TestDiscoveryRoundTrip(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	tasks, err := c.Tasks(context.Background())
	if err != nil || len(tasks) == 0 {
		t.Fatalf("tasks = %v, err %v", tasks, err)
	}
	models, err := c.Models(context.Background())
	if err != nil || len(models.Models) == 0 || len(models.YieldModels) == 0 {
		t.Fatalf("models = %+v, err %v", models, err)
	}
}

// TestJobRoundTrip drives the full async lifecycle through the typed client
// and checks the result matches the synchronous endpoint structurally.
func TestJobRoundTrip(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	ctx := context.Background()
	req := api.DSERequest{
		Task:  "All kernels",
		Knobs: &api.KnobRangeSpec{MACArrays: []int{1, 2}, SRAMMB: []float64{1, 2}},
	}

	res, st, err := c.RunJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.JobSucceeded || !st.HasResult {
		t.Fatalf("terminal status = %+v", st)
	}

	sync, err := c.DSE(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, sync) {
		t.Fatalf("async result differs from sync:\nasync: %+v\nsync:  %+v", res, sync)
	}

	jobs, err := c.ListJobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("list = %+v, err %v", jobs, err)
	}
}

// TestTypedErrors: non-2xx responses decode into *api.Error with the
// machine-readable code.
func TestTypedErrors(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	ctx := context.Background()

	_, err := c.DSE(ctx, api.DSERequest{Task: "bogus"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest || apiErr.Code != api.CodeInvalidRequest {
		t.Fatalf("bad-task error = %v", err)
	}

	_, err = c.JobStatus(ctx, "nope")
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != api.CodeNotFound {
		t.Fatalf("unknown-job error = %v", err)
	}
}

// TestBackoffOn429: the client retries queue_full with the Retry-After hint
// and succeeds once capacity frees up.
func TestBackoffOn429(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"status":429,"code":"queue_full","message":"job queue is full"}}`))
			return
		}
		w.Write([]byte(`{"id":"j1","kind":"dse","state":"queued","progress":{"streamed":0,"pruned":0,"kept":0,"shapes_done":0,"shapes_total":0,"elapsed_s":0},"created_at":"2026-08-05T00:00:00Z","resumes":0,"checkpointed":false,"has_result":false}`))
	}))
	defer ts.Close()

	// Cap far below the 1s hint so the test stays fast while proving the
	// hint is read and clamped.
	c := client.New(ts.URL, client.WithRetry(4, time.Millisecond, 5*time.Millisecond))
	st, err := c.SubmitJob(context.Background(), api.DSERequest{Task: "All kernels"})
	if err != nil {
		t.Fatal(err)
	}
	if hits != 3 || st.ID != "j1" {
		t.Fatalf("hits = %d, status = %+v", hits, st)
	}
}

// TestBackoffExhausted: after max retries the typed queue_full error is
// returned with the parsed Retry-After hint.
func TestBackoffExhausted(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"status":429,"code":"queue_full","message":"job queue is full"}}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetry(2, time.Millisecond, 2*time.Millisecond))
	_, err := c.SubmitJob(context.Background(), api.DSERequest{Task: "All kernels"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeQueueFull || apiErr.RetryAfterS != 1 {
		t.Fatalf("err = %v", err)
	}
	if hits != 3 { // initial try + 2 retries
		t.Fatalf("hits = %d, want 3", hits)
	}
}

// TestBackoffRespectsContext: a canceled context interrupts the wait between
// retries rather than sleeping it out.
func TestBackoffRespectsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":{"status":429,"code":"queue_full","message":"full"}}`))
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetry(4, time.Second, time.Hour))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SubmitJob(ctx, api.DSERequest{Task: "All kernels"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored the context for %v", elapsed)
	}
}
