// Package client is the typed Go client for cordobad's JSON API. It builds
// on the wire types in cordoba/api, so requests and responses are exactly
// the structures the server marshals, and non-2xx responses surface as
// *api.Error values with the machine-readable code preserved.
//
// Every call takes a context and respects its deadline. Submissions rejected
// by admission control (429 queue_full) and transient 503s are retried with
// capped exponential backoff, honoring the server's Retry-After hint.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cordoba/api"
)

// Client talks to one cordobad instance.
type Client struct {
	baseURL string
	hc      *http.Client
	apiKey  string

	maxRetries int
	retryBase  time.Duration
	retryCap   time.Duration
	poll       time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry tunes the backoff on 429/503: up to max retries, delays growing
// from base and capped at cap. max = 0 disables retrying.
func WithRetry(max int, base, cap time.Duration) Option {
	return func(c *Client) { c.maxRetries, c.retryBase, c.retryCap = max, base, cap }
}

// WithPollInterval sets how often WaitJob samples job status.
func WithPollInterval(d time.Duration) Option { return func(c *Client) { c.poll = d } }

// WithAPIKey attaches a tenant API key to every request as a bearer token.
// Daemons running without a key file ignore it.
func WithAPIKey(key string) Option { return func(c *Client) { c.apiKey = key } }

// New returns a client for the daemon at baseURL (e.g. "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		baseURL:    strings.TrimRight(baseURL, "/"),
		hc:         http.DefaultClient,
		maxRetries: 4,
		retryBase:  100 * time.Millisecond,
		retryCap:   2 * time.Second,
		poll:       25 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// ---- synchronous endpoints ----

// Accounting prices a die or accelerator (POST /v1/accounting).
func (c *Client) Accounting(ctx context.Context, req api.AccountingRequest) (*api.AccountingResponse, error) {
	var out api.AccountingResponse
	if err := c.do(ctx, http.MethodPost, "/v1/accounting", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DSE runs a synchronous design-space exploration (POST /v1/dse). For large
// knob grids prefer SubmitJob, which survives restarts via checkpoints.
func (c *Client) DSE(ctx context.Context, req api.DSERequest) (*api.DSEResponse, error) {
	var out api.DSEResponse
	if err := c.do(ctx, http.MethodPost, "/v1/dse", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SurrogateDSE runs a knob-range exploration through the surrogate-guided
// Pareto search (POST /v1/dse with search: "surrogate"). A nil spec accepts
// the server defaults; pass one to pin the seed for reproducible envelopes
// or to trade budget for fidelity. The response's Surrogate field carries
// the evaluation accounting (and quality metrics when spec.Oracle is set).
func (c *Client) SurrogateDSE(ctx context.Context, req api.DSERequest, spec *api.SurrogateSpec) (*api.DSEResponse, error) {
	req.Search = "surrogate"
	req.Surrogate = spec
	return c.DSE(ctx, req)
}

// Schedule finds the lowest-carbon launch window (POST /v1/schedule).
func (c *Client) Schedule(ctx context.Context, req api.ScheduleRequest) (*api.ScheduleResponse, error) {
	var out api.ScheduleResponse
	if err := c.do(ctx, http.MethodPost, "/v1/schedule", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tasks lists the servable workloads (GET /v1/tasks).
func (c *Client) Tasks(ctx context.Context) ([]api.TaskInfo, error) {
	var out []api.TaskInfo
	if err := c.do(ctx, http.MethodGet, "/v1/tasks", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Models lists the embodied-carbon backends and yield models (GET /v1/models).
func (c *Client) Models(ctx context.Context) (*api.ModelsResponse, error) {
	var out api.ModelsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/models", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz probes the daemon's liveness endpoint (GET /healthz). Cluster
// coordinators heartbeat workers through it.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Tenant reports who this client's API key authenticates as, and where that
// tenant stands against its quotas right now (GET /v1/tenant).
func (c *Client) Tenant(ctx context.Context) (*api.TenantStatus, error) {
	var out api.TenantStatus
	if err := c.do(ctx, http.MethodGet, "/v1/tenant", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- async jobs ----

// SubmitJob queues a DSE request for asynchronous execution (POST /v1/jobs).
// A full queue is retried with backoff; after the retries are exhausted the
// *api.Error carries code queue_full and the parsed Retry-After hint.
func (c *Client) SubmitJob(ctx context.Context, req api.DSERequest) (api.JobStatus, error) {
	var out api.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &out)
	return out, err
}

// JobStatus fetches one job's live status (GET /v1/jobs/{id}).
func (c *Client) JobStatus(ctx context.Context, id string) (api.JobStatus, error) {
	var out api.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// ListJobs lists jobs newest first (GET /v1/jobs).
func (c *Client) ListJobs(ctx context.Context) ([]api.JobStatus, error) {
	var out api.JobList
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob cancels a queued or running job (DELETE /v1/jobs/{id}).
func (c *Client) CancelJob(ctx context.Context, id string) (api.JobStatus, error) {
	var out api.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out)
	return out, err
}

// JobResult fetches a succeeded job's exploration result
// (GET /v1/jobs/{id}/result). Unfinished, failed, or canceled jobs return an
// *api.Error with code not_ready, job_failed, or job_canceled.
func (c *Client) JobResult(ctx context.Context, id string) (*api.DSEResponse, error) {
	var out api.DSEResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardResult fetches a succeeded shard job's envelope
// (GET /v1/jobs/{id}/result for kind dse-shard jobs). Coordinators use it to
// collect worker envelopes for the merge.
func (c *Client) ShardResult(ctx context.Context, id string) (*api.ShardEnvelope, error) {
	var out api.ShardEnvelope
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobCheckpoint fetches a job's last saved checkpoint
// (GET /v1/jobs/{id}/checkpoint); jobs that never checkpointed return an
// *api.Error with code not_ready. Coordinators use it to salvage a stalled
// worker's partial shard progress before requeueing the shard elsewhere.
func (c *Client) JobCheckpoint(ctx context.Context, id string) (json.RawMessage, error) {
	var out json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/checkpoint", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ClusterStatus fetches the daemon's role and, on coordinators, the worker
// membership and shard counters (GET /v1/cluster).
func (c *Client) ClusterStatus(ctx context.Context) (*api.ClusterStatus, error) {
	var out api.ClusterStatus
	if err := c.do(ctx, http.MethodGet, "/v1/cluster", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamJobEvents consumes a job's live event stream
// (GET /v1/jobs/{id}/events, Server-Sent Events), invoking onEvent for every
// frame: the initial status snapshot, then state transitions, progress
// reports, and checkpoint saves, ending with the terminal done event. A
// positive after suppresses server-side frames at or below that sequence
// number (resume after a drop). The call blocks until the stream closes —
// clean close returns nil; a non-200 response returns the decoded *api.Error.
func (c *Client) StreamJobEvents(ctx context.Context, id string, after int64, onEvent func(api.JobEvent)) error {
	path := "/v1/jobs/" + id + "/events"
	if after > 0 {
		path += "?after=" + strconv.FormatInt(after, 10)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	c.setAuth(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return decodeError(resp, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("job events: unexpected content type %q", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) == 0 {
				continue
			}
			var ev api.JobEvent
			if err := json.Unmarshal(data, &ev); err != nil {
				return fmt.Errorf("job events: malformed frame %q: %w", data, err)
			}
			data = data[:0]
			onEvent(ev)
		case strings.HasPrefix(line, "data: "):
			data = append(data, line[len("data: "):]...)
		}
	}
	return sc.Err()
}

// WaitJob waits until the job reaches a terminal state or ctx expires. The
// returned status may be failed or canceled — inspect State; transport and
// context errors are the only non-nil error cases.
func (c *Client) WaitJob(ctx context.Context, id string) (api.JobStatus, error) {
	return c.WaitJobProgress(ctx, id, nil)
}

// WaitJobProgress is WaitJob with a live status feed: onUpdate (when
// non-nil) observes every status update before the terminal one is returned,
// including cluster jobs' shards_done / shards_total fan-out progress.
//
// The wait prefers the SSE event stream — updates arrive as they happen
// instead of at a poll cadence. When the stream is unavailable or drops
// (a proxy without SSE, a daemon restart mid-job), it falls back to status
// polls under capped exponential backoff and keeps re-trying the stream, so
// a job that survives a restart via its checkpoint store is picked back up
// live. Every frame carries the job's full status, so each reconnect takes
// the fresh snapshot rather than trusting sequence numbers across restarts.
func (c *Client) WaitJobProgress(ctx context.Context, id string, onUpdate func(api.JobStatus)) (api.JobStatus, error) {
	var last api.JobStatus
	for drops := 0; ; drops++ {
		var done bool
		err := c.StreamJobEvents(ctx, id, 0, func(ev api.JobEvent) {
			last = ev.Job
			if onUpdate != nil {
				onUpdate(ev.Job)
			}
			if ev.Type == api.EventDone {
				done = true
			}
		})
		if done {
			return last, nil
		}
		if ctx.Err() != nil {
			return last, ctx.Err()
		}
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.Status == http.StatusNotFound {
			return last, err // the job is unknown; polling would 404 the same way
		}

		// The stream is down. Poll once — the job may have finished while we
		// were disconnected, or the daemon may not serve SSE at all — then
		// back off before re-attempting the stream.
		st, perr := c.JobStatus(ctx, id)
		if perr == nil {
			last = st
			if onUpdate != nil {
				onUpdate(st)
			}
			if st.State.Terminal() {
				return st, nil
			}
		} else if errors.As(perr, &apiErr) && apiErr.Status == http.StatusNotFound {
			return st, perr
		}
		if serr := sleepContext(ctx, expBackoff(c.poll, c.retryCap, drops)); serr != nil {
			return last, serr
		}
	}
}

// RunJob is the convenience composition submit → wait → result. A job that
// ends failed or canceled returns the terminal status with an *api.Error
// from the result endpoint.
func (c *Client) RunJob(ctx context.Context, req api.DSERequest) (*api.DSEResponse, api.JobStatus, error) {
	st, err := c.SubmitJob(ctx, req)
	if err != nil {
		return nil, st, err
	}
	if st, err = c.WaitJob(ctx, st.ID); err != nil {
		return nil, st, err
	}
	res, err := c.JobResult(ctx, st.ID)
	return res, st, err
}

// ---- transport ----

// do executes one API call with marshaling, typed error decoding, and
// backoff on 429/503.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	for attempt := 0; ; attempt++ {
		var rdr io.Reader
		if in != nil {
			rdr = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rdr)
		if err != nil {
			return err
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.setAuth(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			return json.Unmarshal(b, out)
		}

		apiErr := decodeError(resp, b)
		if !retryable(resp.StatusCode) || attempt >= c.maxRetries {
			return apiErr
		}
		if err := sleepContext(ctx, c.backoff(attempt, apiErr.RetryAfterS)); err != nil {
			return err
		}
	}
}

// setAuth attaches the configured API key as a bearer token.
func (c *Client) setAuth(req *http.Request) {
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
}

// sleepContext waits d or until ctx is done, returning ctx's error in the
// latter case — a canceled context cuts a pending backoff short instead of
// waiting it out.
func sleepContext(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryable: queue_full admissions and transient unavailability. Everything
// else (4xx validation, 404s, 409s) is the caller's to handle.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// backoff picks the next delay: the server's Retry-After hint when it gave
// one, else retryBase doubled per attempt; both capped at retryCap.
func (c *Client) backoff(attempt int, retryAfterS float64) time.Duration {
	d := expBackoff(c.retryBase, c.retryCap, attempt)
	if retryAfterS > 0 {
		d = time.Duration(retryAfterS * float64(time.Second))
	}
	if d > c.retryCap {
		d = c.retryCap
	}
	if d <= 0 {
		d = c.retryBase
	}
	return d
}

// expBackoff returns base·2^attempt saturated at cap. Doubling step by step
// (instead of `base << attempt`) keeps large attempt counts from shifting
// the duration negative — with a 100 ms base the shift went negative at
// attempt 37, collapsing the backoff to the base and hammering an already
// overloaded server.
func expBackoff(base, cap time.Duration, attempt int) time.Duration {
	d := base
	for ; attempt > 0; attempt-- {
		d *= 2
		if d >= cap || d <= 0 {
			return cap
		}
	}
	if d > cap {
		return cap
	}
	return d
}

// decodeError turns a non-2xx response into a *api.Error, falling back to
// the raw body when it isn't a JSON envelope.
func decodeError(resp *http.Response, body []byte) *api.Error {
	out := &api.Error{Status: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if s, err := strconv.ParseFloat(ra, 64); err == nil && s > 0 {
			out.RetryAfterS = s
		}
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Status != 0 {
		out.Code = env.Error.Code
		out.Message = env.Error.Message
		return out
	}
	out.Message = fmt.Sprintf("%s (%s)", http.StatusText(resp.StatusCode), bytes.TrimSpace(body))
	return out
}
