package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cordoba/api"
	"cordoba/client"
	"cordoba/internal/job"
	"cordoba/internal/server"
)

var jobReq = api.DSERequest{
	Task:  "All kernels",
	Knobs: &api.KnobRangeSpec{MACArrays: []int{1, 2, 4}, SRAMMB: []float64{1, 2}, VDDScales: []float64{1.0, 0.9}},
}

// TestWaitJobSSE: WaitJobProgress rides the event stream — with polling
// effectively disabled, the runner's progress report still reaches onUpdate
// and the terminal status returns promptly.
func TestWaitJobSSE(t *testing.T) {
	c, srv := newPair(t, server.Config{}, client.WithPollInterval(time.Hour))
	gate := make(chan struct{})
	var once sync.Once
	srv.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if err := rc.SaveCheckpoint(json.RawMessage(`{"cursor":1}`)); err != nil {
			return nil, err
		}
		rc.ReportProgress(job.Progress{GridPoints: 12, Streamed: 7})
		return json.RawMessage("{}\n"), nil
	})

	ctx := context.Background()
	st, err := c.SubmitJob(ctx, jobReq)
	if err != nil {
		t.Fatal(err)
	}

	var sawProgress bool
	// The first update proves the stream is attached; only then may the
	// runner produce the frames the assertion needs.
	fin, err := c.WaitJobProgress(ctx, st.ID, func(u api.JobStatus) {
		once.Do(func() { close(gate) })
		if u.Progress.Streamed == 7 {
			sawProgress = true
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobSucceeded {
		t.Fatalf("terminal = %+v", fin)
	}
	if !sawProgress {
		t.Fatal("the progress report never reached onUpdate over the stream")
	}
}

// TestWaitJobPollFallback: when the daemon (or a proxy in front of it)
// doesn't serve the event stream, WaitJob degrades to status polling and
// still lands on the terminal status.
func TestWaitJobPollFallback(t *testing.T) {
	srv := server.New(server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	t.Cleanup(func() { _ = srv.Close() })
	var streamHits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			streamHits++
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":{"status":503,"code":"internal","message":"no streaming here"}}`)
			return
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := client.New(ts.URL, client.WithPollInterval(2*time.Millisecond))
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, jobReq)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobSucceeded {
		t.Fatalf("terminal = %+v", fin)
	}
	if streamHits == 0 {
		t.Fatal("the client never tried the event stream")
	}
}

// listenAt binds addr, retrying briefly — re-binding the port a just-closed
// server held can momentarily race the kernel's release of it.
func listenAt(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := net.Listen("tcp", addr)
		if err == nil {
			return l
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stepRunner is a deterministic six-step job: one checkpoint per step, a
// progress report per step, and a result derived only from the request — so
// an interrupted-and-resumed run must produce bytes identical to an
// uninterrupted one.
func stepRunner(stepDelay time.Duration) func(context.Context, job.RunContext) (json.RawMessage, error) {
	return func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		start := 0
		if cp := rc.Checkpoint(); len(cp) > 0 {
			if err := json.Unmarshal(cp, &start); err != nil {
				return nil, err
			}
		}
		for i := start; i < 6; i++ {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(stepDelay):
			}
			rc.ReportProgress(job.Progress{GridPoints: 12, Streamed: int64(i+1) * 2, ShapesDone: i + 1, ShapesTotal: 6})
			if err := rc.SaveCheckpoint(json.RawMessage(fmt.Sprintf("%d", i+1))); err != nil {
				return nil, err
			}
		}
		return json.RawMessage(fmt.Sprintf("{\n  \"shapes\": 6,\n  \"request_bytes\": %d\n}\n", len(rc.Request()))), nil
	}
}

// TestStreamSurvivesServerRestart is the fleet-grade resilience regression:
// a client watches a job over SSE, the daemon is killed mid-run, a new
// daemon over the same content-addressed checkpoint store adopts the job,
// and the client — reconnecting on its own — observes the resumed run live
// through to a result byte-identical to an uninterrupted one.
func TestStreamSurvivesServerRestart(t *testing.T) {
	dir := t.TempDir()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := server.Config{JobDir: dir, JobStore: "cas", JobWorkers: 1, Logger: quiet}

	srv1 := server.New(cfg)
	srv1.Jobs().SetRunner("dse", stepRunner(25*time.Millisecond))
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l1.Addr().String()
	hs1 := &http.Server{Handler: srv1.Handler()}
	go hs1.Serve(l1)

	c := client.New("http://"+addr, client.WithPollInterval(5*time.Millisecond))
	ctx := context.Background()
	st, err := c.SubmitJob(ctx, jobReq)
	if err != nil {
		t.Fatal(err)
	}

	// Watch the raw stream until the job has checkpointed at least twice,
	// then kill the daemon mid-run.
	events := make(chan api.JobEvent, 64)
	streamDead := make(chan error, 1)
	go func() {
		streamDead <- c.StreamJobEvents(ctx, st.ID, 0, func(ev api.JobEvent) { events <- ev })
	}()
	deadline := time.After(10 * time.Second)
	checkpoints := 0
	for checkpoints < 2 {
		select {
		case ev := <-events:
			if ev.Type == api.EventCheckpoint {
				checkpoints++
			}
			if ev.Type == api.EventDone {
				t.Fatalf("job finished before the kill: %+v", ev.Job)
			}
		case <-deadline:
			t.Fatal("job never reached its second checkpoint")
		}
	}
	hs1.Close() // severs the SSE connection mid-stream
	if err := srv1.Close(); err != nil {
		t.Fatalf("stopping first server: %v", err)
	}
	if err := <-streamDead; err == nil {
		t.Fatal("stream reported a clean close despite the kill")
	}

	// Restart: a new daemon over the same CAS store and address recovers the
	// job and resumes it from the last checkpoint.
	srv2 := server.New(cfg)
	srv2.Jobs().SetRunner("dse", stepRunner(25*time.Millisecond))
	t.Cleanup(func() { _ = srv2.Close() })
	hs2 := &http.Server{Handler: srv2.Handler()}
	go hs2.Serve(listenAt(t, addr))
	t.Cleanup(func() { hs2.Close() })

	// The client reconnects on its own and sees the resumed run live.
	var (
		updates []api.JobStatus
		mu      sync.Mutex
	)
	fin, err := c.WaitJobProgress(ctx, st.ID, func(u api.JobStatus) {
		mu.Lock()
		updates = append(updates, u)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobSucceeded || fin.Resumes < 1 {
		t.Fatalf("terminal = %+v, want succeeded with >= 1 resume", fin)
	}
	mu.Lock()
	var resumedLive bool
	for _, u := range updates {
		// Live mid-run frames from the second incarnation: past the kill
		// point but not yet finished.
		if u.State == api.JobRunning && u.Progress.ShapesDone > checkpoints && u.Progress.ShapesDone < 6 {
			resumedLive = true
		}
	}
	mu.Unlock()
	if !resumedLive {
		t.Fatalf("no live mid-run frame from the resumed job; updates = %+v", updates)
	}

	// The result is byte-identical to an uninterrupted run of the same
	// request on a fresh daemon.
	got, err := http.Get("http://" + addr + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := io.ReadAll(got.Body)
	got.Body.Close()
	if err != nil || got.StatusCode != http.StatusOK {
		t.Fatalf("result = %d (%v): %s", got.StatusCode, err, gotBytes)
	}

	ctrl := server.New(server.Config{JobWorkers: 1, Logger: quiet})
	ctrl.Jobs().SetRunner("dse", stepRunner(time.Millisecond))
	t.Cleanup(func() { _ = ctrl.Close() })
	cts := httptest.NewServer(ctrl.Handler())
	defer cts.Close()
	cc := client.New(cts.URL, client.WithPollInterval(5*time.Millisecond))
	cst, err := cc.SubmitJob(ctx, jobReq)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cc.WaitJob(ctx, cst.ID); err != nil {
		t.Fatal(err)
	}
	ctrlResp, err := http.Get(cts.URL + "/v1/jobs/" + cst.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	ctrlBytes, err := io.ReadAll(ctrlResp.Body)
	ctrlResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotBytes) != string(ctrlBytes) {
		t.Fatalf("resumed result differs from uninterrupted run:\nresumed: %s\ncontrol: %s", gotBytes, ctrlBytes)
	}
}

// TestWaitJobUnknown: waiting on an unknown job surfaces the 404 instead of
// polling forever.
func TestWaitJobUnknown(t *testing.T) {
	c, _ := newPair(t, server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := c.WaitJob(ctx, "nope")
	var apiErr *api.Error
	if err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("err = %v, want unknown-job 404", err)
	}
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want *api.Error 404", err)
	}
}
