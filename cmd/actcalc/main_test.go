package main

import (
	"io"
	"testing"

	"cordoba/internal/carbon"
)

func TestRunFlags(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr bool
	}{
		{nil, false}, // defaults
		{[]string{"-node", "5nm", "-area-mm2", "120", "-fab", "taiwan", "-yield", "poisson"}, false},
		{[]string{"-yield", "seeds"}, false},
		{[]string{"-yield", "bose-einstein"}, false},
		{[]string{"-dram-gb", "8", "-nand-gb", "128"}, false},
		{[]string{"-model", "chiplet"}, false},
		{[]string{"-model", "stacked-3d", "-area-mm2", "300"}, false},
		{[]string{"-node", "6nm"}, true},
		{[]string{"-fab", "mars"}, true},
		{[]string{"-yield", "magic"}, true},
		{[]string{"-model", "magic"}, true},
		{[]string{"-dram-gb", "-1"}, true},
		{[]string{"-badflag"}, true},
	}
	for _, c := range cases {
		err := run(io.Discard, c.args)
		if (err != nil) != c.wantErr {
			t.Errorf("run(%v) error = %v, wantErr %v", c.args, err, c.wantErr)
		}
	}
}

func TestHelpers(t *testing.T) {
	for _, name := range []string{"coal", "taiwan", "korea", "renewable"} {
		if _, err := fabByName(name); err != nil {
			t.Errorf("fabByName(%s): %v", name, err)
		}
	}
	for _, name := range []string{"murphy", "poisson", "seeds", "bose-einstein"} {
		if _, err := carbon.YieldByName(name); err != nil {
			t.Errorf("YieldByName(%s): %v", name, err)
		}
	}
	for _, name := range []string{"act", "chiplet", "stacked-3d"} {
		if _, err := carbon.ModelByName(name); err != nil {
			t.Errorf("ModelByName(%s): %v", name, err)
		}
	}
}
