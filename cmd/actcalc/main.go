// Command actcalc is a stand-alone embodied-carbon calculator in the spirit
// of ACT [22]: given a technology node, die area, fab and yield model, it
// prints the eq. IV.5 breakdown, optional wafer die-placement effects, and
// memory/storage footprints.
//
// Example:
//
//	actcalc -node 7nm -area-mm2 225 -fab coal -yield murphy -dram-gb 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cordoba/internal/carbon"
	"cordoba/internal/table"
	"cordoba/internal/units"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "actcalc:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("actcalc", flag.ContinueOnError)
	fs.SetOutput(w)
	node := fs.String("node", "7nm", "technology node (28nm..3nm)")
	areaMM2 := fs.Float64("area-mm2", 100, "die area in mm²")
	fabName := fs.String("fab", "coal", "fab grid: coal, taiwan, korea, renewable")
	yieldName := fs.String("yield", "murphy", "yield model: murphy, poisson, seeds, bose-einstein")
	modelName := fs.String("model", "act", "embodied-carbon backend: act, chiplet, stacked-3d")
	defect := fs.Float64("defect", 0.1, "defect density (per cm²)")
	dramGB := fs.Float64("dram-gb", 0, "optional DRAM capacity (GB)")
	nandGB := fs.Float64("nand-gb", 0, "optional NAND capacity (GB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dramGB < 0 || *nandGB < 0 {
		return fmt.Errorf("memory capacities must be non-negative")
	}

	proc, err := carbon.ProcessByName(*node)
	if err != nil {
		return err
	}
	fab, err := fabByName(*fabName)
	if err != nil {
		return err
	}
	fab.DefectDensity = *defect
	model, err := carbon.YieldByName(*yieldName)
	if err != nil {
		return err
	}
	backend, err := carbon.ModelByName(*modelName)
	if err != nil {
		return err
	}
	area := units.MM2(*areaMM2)
	y := model.Yield(area, fab.DefectDensity)
	bd, err := backend.EmbodiedDesign(carbon.DesignSpec{
		Name:  "die",
		Fab:   fab,
		Dies:  []carbon.DieSpec{{Name: "die", Area: area, Process: proc}},
		Yield: model,
	})
	if err != nil {
		return err
	}
	die := bd.Total

	t := table.New(fmt.Sprintf("Embodied carbon — %s die of %s in a %s fab", *node, area, fab.Name),
		"component", "value")
	t.AddRow("EPA (fab energy)", fmt.Sprintf("%.3g kWh/cm²", proc.EPA))
	t.AddRow("CI_fab", fab.CI.String())
	t.AddRow("GPA (direct gases)", proc.GPA.String()+"/cm²")
	t.AddRow("MPA (materials)", proc.MPA.String()+"/cm²")
	t.AddRow("carbon per area", proc.CarbonPerArea(fab).String()+"/cm²")
	t.AddRow(fmt.Sprintf("yield (%s, D0=%.2g/cm²)", model.Name(), fab.DefectDensity), table.F(y))
	if *modelName != "act" {
		t.AddRow("backend", backend.Name())
		t.AddRow("silicon", bd.Silicon.String())
		t.AddRow("packaging", bd.Packaging.String())
		t.AddRow("bonding/assembly scrap", bd.Bonding.String())
	}
	t.AddRow("die embodied (eq. IV.5)", die.String())

	if gross, err := carbon.Wafer300mm.GrossDies(area); err == nil && gross >= 1 {
		perGood, err := carbon.Wafer300mm.EmbodiedPerGoodDie(proc, fab, area, model)
		if err == nil {
			t.AddRow("gross dies per 300 mm wafer", table.F(gross))
			t.AddRow("embodied per good die (wafer-amortized)", perGood.String())
		}
	}
	total := die
	if *dramGB > 0 {
		d, err := carbon.EmbodiedMemory(carbon.DRAM, *dramGB)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("DRAM %g GB", *dramGB), d.String())
		total += d
	}
	if *nandGB > 0 {
		n, err := carbon.EmbodiedMemory(carbon.NANDFlash, *nandGB)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("NAND %g GB", *nandGB), n.String())
		total += n
	}
	t.AddRow("total", total.String())
	return t.Render(w)
}

func fabByName(name string) (carbon.Fab, error) {
	switch name {
	case "coal":
		return carbon.FabCoal, nil
	case "taiwan":
		return carbon.FabTaiwan, nil
	case "korea":
		return carbon.FabKorea, nil
	case "renewable":
		return carbon.FabRenewable, nil
	default:
		return carbon.Fab{}, fmt.Errorf("unknown fab %q", name)
	}
}
