// Command dse runs a parameterized accelerator design-space exploration: it
// evaluates the 121-configuration grid (or the 3D-stacked set) on a chosen
// task, prints the ever-optimal set, the elimination fraction, and the
// tCDP-optimal design across a sweep of operational times.
//
// Example:
//
//	dse -task "XR (5 kernels)" -from 1e4 -to 1e11 -points 8
//	dse -task "All kernels" -stacked
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/dse"
	"cordoba/internal/table"
	"cordoba/internal/uncertainty"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dse:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	fs.SetOutput(w)
	taskName := fs.String("task", workload.TaskAllKernels, "paper task name (see Table IV)")
	from := fs.Float64("from", 1e3, "sweep start (inferences)")
	to := fs.Float64("to", 1e12, "sweep end (inferences)")
	points := fs.Int("points", 10, "sweep points")
	ciUse := fs.Float64("ci", 380, "use-phase carbon intensity (gCO2e/kWh)")
	stacked := fs.Bool("stacked", false, "explore the 7 §VI-E 3D configurations instead of the 121-grid")
	if err := fs.Parse(args); err != nil {
		return err
	}

	task, err := workload.PaperTask(*taskName)
	if err != nil {
		return err
	}
	configs := accel.Grid()
	if *stacked {
		configs = accel.Stacked3D()
	}
	s, err := dse.Evaluate(task, configs, carbon.Process7nm(), carbon.FabCoal, units.CarbonIntensity(*ciUse))
	if err != nil {
		return err
	}

	env := s.EverOptimal()
	fmt.Fprintf(w, "task: %s — %d configurations evaluated\n", task.Name, len(s.Points))
	fmt.Fprintf(w, "ever-optimal set (long-operational-time end first): %v\n", s.IDs(env))
	fmt.Fprintf(w, "eliminated as never tCDP-optimal: %.1f%%\n\n", 100*s.EliminatedFraction())

	t := table.New("tCDP-optimal design across operational time",
		"inferences", "optimal", "MAC arrays", "SRAM", "tCDP (gCO2e·s)", "embodied", "delay")
	for _, n := range dse.LogSpace(*from, *to, *points) {
		p := s.Points[s.OptimalAt(n)]
		t.AddRow(fmt.Sprintf("%.1e", n), p.Config.ID,
			fmt.Sprint(p.Config.MACArrays), p.Config.SRAM.String(),
			table.F(p.TCDP(s.CIUse, n)), p.Embodied.String(), p.Delay.String())
	}
	if err := t.Render(w); err != nil {
		return err
	}

	designs := uncertainty.FromDSE(s)
	surv := uncertainty.Survivors(designs)
	names := make([]string, len(surv))
	for i, idx := range surv {
		names[i] = designs[idx].Name
	}
	fmt.Fprintf(w, "\nsurvivors under unknown CI_use(t) (§IV-B): %v\n", names)
	return nil
}
