package main

import (
	"io"
	"testing"
)

func TestRunFlags(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr bool
	}{
		{[]string{"-task", "AI (5 kernels)", "-points", "3"}, false},
		{[]string{"-task", "bogus task"}, true},
		{[]string{"-task", "All kernels", "-stacked", "-points", "2"}, false},
		{[]string{"-badflag"}, true},
		{[]string{"-task", "AI (5 kernels)", "-ci", "40", "-points", "2"}, false},
	}
	for _, c := range cases {
		err := run(io.Discard, c.args)
		if (err != nil) != c.wantErr {
			t.Errorf("run(%v) error = %v, wantErr %v", c.args, err, c.wantErr)
		}
	}
}
