package main

import (
	"context"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestRunStartsAndDrains boots the daemon on an ephemeral port and cancels
// its context: run must return nil after a clean graceful shutdown.
func TestRunStartsAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, io.Discard, []string{
			"-addr", "127.0.0.1:0",
			"-shutdown-grace", "2s",
		})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run(context.Background(), io.Discard, []string{"-no-such-flag"}); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	if err := run(context.Background(), io.Discard, []string{"-addr", "not-an-addr:nope"}); err == nil {
		t.Fatal("run accepted an unusable listen address")
	}
}

// TestRunValidatesClusterFlags pins the role/workers flag contract: bad
// roles and inconsistent worker lists fail before the daemon binds a port.
func TestRunValidatesClusterFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown role":             {"-role", "manager"},
		"coordinator sans workers": {"-role", "coordinator"},
		"workers on standalone":    {"-workers", "http://w1:8081"},
		"workers on worker role":   {"-role", "worker", "-workers", "http://w1:8081"},
		"empty worker list":        {"-role", "coordinator", "-workers", " , "},
	} {
		if err := run(context.Background(), io.Discard, args); err == nil {
			t.Errorf("%s: run accepted %v", name, args)
		}
	}
}

// TestRunValidatesTenancyFlags pins the new serving-surface flags: bad
// checkpoint-store layouts, malformed tenant key files, and a worker API key
// on a non-coordinator all fail before the daemon binds a port.
func TestRunValidatesTenancyFlags(t *testing.T) {
	badTenants := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(badTenants, []byte(`{"tenants":[{"name":"a"}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	for name, args := range map[string][]string{
		"unknown checkpoint store":  {"-checkpoint-store", "s3"},
		"missing tenants file":      {"-tenants", filepath.Join(t.TempDir(), "nope.json")},
		"tenant without key":        {"-tenants", badTenants},
		"worker key on standalone":  {"-worker-api-key", "k"},
		"worker key on worker role": {"-role", "worker", "-worker-api-key", "k"},
	} {
		if err := run(context.Background(), io.Discard, args); err == nil {
			t.Errorf("%s: run accepted %v", name, args)
		}
	}
}

// TestRunStartsWithTenants boots a daemon with a valid tenant key file and a
// CAS checkpoint store, then drains it.
func TestRunStartsWithTenants(t *testing.T) {
	dir := t.TempDir()
	keys := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(keys, []byte(`{"tenants":[{"name":"acme","key":"k-acme","weight":4}]}`), 0o600); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, io.Discard, []string{
			"-addr", "127.0.0.1:0",
			"-tenants", keys,
			"-job-dir", filepath.Join(dir, "jobs"),
			"-checkpoint-store", "cas",
			"-region-trace", "decarb-ramp",
			"-shutdown-grace", "2s",
		})
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after context cancellation")
	}
}

// TestRunStartsCoordinator boots a coordinator (with an unreachable worker —
// membership is async, so startup must not depend on it) and drains it.
func TestRunStartsCoordinator(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, io.Discard, []string{
			"-addr", "127.0.0.1:0",
			"-role", "coordinator",
			"-workers", "http://127.0.0.1:1",
			"-heartbeat-every", "50ms",
			"-shutdown-grace", "2s",
		})
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator did not drain after context cancellation")
	}
}
