// Command cordobad serves CORDOBA's carbon accounting, design-space
// exploration, and experiment registry as a long-lived JSON API.
//
// Usage:
//
//	cordobad -addr :8080
//	cordobad -addr :8081 -role worker
//	cordobad -addr :8080 -role coordinator -workers http://w1:8081,http://w2:8081
//
// Endpoints (see internal/server and the README's "Running as a service"):
//
//	POST /v1/accounting   POST /v1/dse   GET /v1/experiments[/{key}]
//	POST /v1/jobs         GET  /v1/jobs[/{id}[/result|/checkpoint|/events]]   DELETE /v1/jobs/{id}
//	GET  /v1/tenant       GET  /v1/cluster
//	GET  /v1/traces       POST /v1/schedule
//	GET  /v1/tasks        GET /v1/configs
//	GET  /healthz         GET /metrics
//
// The daemon drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cordoba/internal/server"
	"cordoba/internal/tenant"
)

func main() {
	if err := run(context.Background(), os.Stderr, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cordobad:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, logw io.Writer, args []string) error {
	fs := flag.NewFlagSet("cordobad", flag.ContinueOnError)
	fs.SetOutput(logw)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		cacheSize   = fs.Int("cache-size", 256, "response-cache entries (negative disables)")
		maxBody     = fs.Int64("max-body-bytes", 1<<20, "request-body size limit")
		timeout     = fs.Duration("request-timeout", 60*time.Second, "per-request deadline")
		poolSize    = fs.Int("pool-size", 0, "concurrent grid evaluations (0 = GOMAXPROCS-derived)")
		evalWorkers = fs.Int("eval-workers", 0, "goroutines per evaluation (0 = default)")
		maxGrid     = fs.Int64("max-grid-points", 0, "knob-grid size cap per DSE request (0 = default 1<<20)")
		surrBudget  = fs.Int64("surrogate-budget", 0, "default true-evaluation budget per surrogate DSE run (0 = 2% of grid, clamped to [256, 8192])")
		surrPop     = fs.Int("surrogate-population", 0, "default surrogate NSGA population (0 = default 48)")
		memoSize    = fs.Int("memo-size", 0, "shape-profile memo entries for streaming DSE (0 = default)")
		grace       = fs.Duration("shutdown-grace", 15*time.Second, "drain window on SIGTERM")
		logJSON     = fs.Bool("log-json", false, "emit structured logs as JSON")

		jobWorkers = fs.Int("job-workers", 0, "concurrent async jobs (0 = default)")
		jobQueue   = fs.Int("job-queue", 0, "async job queue depth before 429s (0 = default)")
		jobDir     = fs.String("job-dir", "", "job state/checkpoint directory; empty keeps jobs in memory only")
		jobStore   = fs.String("checkpoint-store", "dir", "checkpoint store layout under -job-dir: dir (one file per job) or cas (content-addressed; any daemon sharing the directory adopts orphaned checkpoints)")
		ckptEvery  = fs.Int("checkpoint-every", 0, "shapes between job checkpoints (0 = default 8, negative disables)")

		tenants     = fs.String("tenants", "", "tenant API-key file (JSON; see internal/tenant); empty serves a single open tenant")
		regionTrace = fs.String("region-trace", "", "CI trace deferrable jobs schedule against (empty = decarb-ramp)")

		role          = fs.String("role", "standalone", "cluster role: standalone, worker, or coordinator")
		workers       = fs.String("workers", "", "comma-separated worker base URLs (coordinator only)")
		heartbeat     = fs.Duration("heartbeat-every", 0, "worker liveness probe cadence (coordinator only, 0 = default)")
		shardTimeout  = fs.Duration("shard-timeout", 0, "no-progress bound before a shard is requeued (0 = default)")
		shardAttempts = fs.Int("shard-attempts", 0, "attempts per shard before a cluster run fails (0 = default)")
		workerKey     = fs.String("worker-api-key", "", "API key presented to workers running with -tenants (coordinator only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *role {
	case "standalone", "worker", "coordinator":
	default:
		return fmt.Errorf("unknown -role %q (want standalone, worker, or coordinator)", *role)
	}
	var workerURLs []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workerURLs = append(workerURLs, u)
		}
	}
	if *role == "coordinator" && len(workerURLs) == 0 {
		return fmt.Errorf("-role coordinator needs at least one worker URL via -workers")
	}
	if *role != "coordinator" && len(workerURLs) > 0 {
		return fmt.Errorf("-workers only applies to -role coordinator (got role %q)", *role)
	}
	if *role != "coordinator" && *workerKey != "" {
		return fmt.Errorf("-worker-api-key only applies to -role coordinator (got role %q)", *role)
	}
	switch *jobStore {
	case "dir", "cas":
	default:
		return fmt.Errorf("unknown -checkpoint-store %q (want dir or cas)", *jobStore)
	}
	if *tenants != "" {
		// Surface a malformed key file as a flag error, not a startup panic.
		if _, err := tenant.Load(*tenants); err != nil {
			return err
		}
	}

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(logw, nil)
	} else {
		handler = slog.NewTextHandler(logw, nil)
	}
	log := slog.New(handler)

	srv := server.New(server.Config{
		Addr:           *addr,
		CacheSize:      *cacheSize,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		PoolSize:       *poolSize,
		EvalWorkers:    *evalWorkers,
		MaxGridPoints:  *maxGrid,
		MemoEntries:    *memoSize,
		Logger:         log,

		SurrogateBudget:     *surrBudget,
		SurrogatePopulation: *surrPop,

		JobWorkers:      *jobWorkers,
		JobQueue:        *jobQueue,
		JobDir:          *jobDir,
		JobStore:        *jobStore,
		CheckpointEvery: *ckptEvery,

		TenantFile:  *tenants,
		RegionTrace: *regionTrace,

		Role:           *role,
		ClusterWorkers: workerURLs,
		WorkerAPIKey:   *workerKey,
		HeartbeatEvery: *heartbeat,
		ShardTimeout:   *shardTimeout,
		ShardAttempts:  *shardAttempts,
	})

	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Info("cordobad listening",
		"addr", *addr,
		"role", *role,
		"tenants", len(srv.Tenants().Tenants()),
		"enforced_auth", srv.Tenants().Enforced(),
		"cluster_workers", len(workerURLs),
		"pool_size", srv.Pool().Size(),
		"eval_workers", srv.Pool().Workers(),
		"cache_size", *cacheSize,
		"request_timeout", *timeout,
	)
	return srv.ListenAndServe(ctx, *grace)
}
