package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunCommands(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr bool
	}{
		{nil, true},
		{[]string{"list"}, false},
		{[]string{"run"}, true},
		{[]string{"run", "table1"}, false},
		{[]string{"run", "bogus"}, true},
		{[]string{"kernels"}, false},
		{[]string{"help"}, false},
		{[]string{"unknown-cmd"}, true},
	}
	for _, c := range cases {
		err := run(io.Discard, c.args)
		if (err != nil) != c.wantErr {
			t.Errorf("run(%v) error = %v, wantErr %v", c.args, err, c.wantErr)
		}
	}
}

func TestRenderKernelsTable(t *testing.T) {
	var b strings.Builder
	if err := renderKernels(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"RN-50", "SR-1024x1024", "GMACs", "peak activation"} {
		if !strings.Contains(out, want) {
			t.Errorf("kernel table missing %q:\n%s", want, out)
		}
	}
	// 15 kernels + title + header + rule.
	if lines := strings.Count(out, "\n"); lines != 18 {
		t.Errorf("expected 18 lines, got %d", lines)
	}
}

func TestExportCommand(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr bool
	}{
		{[]string{"export"}, true},
		{[]string{"export", "table2"}, false},
		{[]string{"export", "fig12", "csv"}, false},
		{[]string{"export", "table2", "xml"}, true},
		{[]string{"export", "nope"}, true},
	}
	for _, c := range cases {
		err := run(io.Discard, c.args)
		if (err != nil) != c.wantErr {
			t.Errorf("run(%v) error = %v, wantErr %v", c.args, err, c.wantErr)
		}
	}
}

func TestKernelDescribeCommand(t *testing.T) {
	if err := run(io.Discard, []string{"kernel", "RN-18"}); err != nil {
		t.Errorf("kernel RN-18: %v", err)
	}
	if err := run(io.Discard, []string{"kernel"}); err == nil {
		t.Error("missing kernel id should error")
	}
	if err := run(io.Discard, []string{"kernel", "bogus"}); err == nil {
		t.Error("unknown kernel should error")
	}
}
