// Command cordoba reproduces the paper's tables and figures.
//
// Usage:
//
//	cordoba list             list experiment keys
//	cordoba run <key>...     run specific experiments (e.g. table2 fig8)
//	cordoba all              run every experiment in paper order
package main

import (
	"fmt"
	"io"
	"os"

	"cordoba/internal/experiments"
	"cordoba/internal/nn"
	"cordoba/internal/table"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cordoba:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing command")
	}
	switch args[0] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-8s %s\n", e.Key, e.Title)
		}
		return nil
	case "run":
		if len(args) < 2 {
			return fmt.Errorf("run needs at least one experiment key (see `cordoba list`)")
		}
		for _, key := range args[1:] {
			if err := renderOne(w, key); err != nil {
				return err
			}
		}
		return nil
	case "all":
		for _, e := range experiments.All() {
			if err := renderOne(w, e.Key); err != nil {
				return err
			}
		}
		return nil
	case "kernels":
		return renderKernels(w)
	case "kernel":
		if len(args) < 2 {
			return fmt.Errorf("kernel needs a kernel ID (e.g. RN-50; see `cordoba kernels`)")
		}
		net, err := nn.Kernel(nn.KernelID(args[1]))
		if err != nil {
			return err
		}
		return net.Describe(w)
	case "export":
		if len(args) < 2 {
			return fmt.Errorf("export needs an experiment key (and optionally a format: json, csv)")
		}
		format := "json"
		if len(args) >= 3 {
			format = args[2]
		}
		switch format {
		case "json":
			return experiments.ExportJSON(args[1], w)
		case "csv":
			return experiments.ExportCSV(args[1], w)
		default:
			return fmt.Errorf("unknown export format %q (json or csv)", format)
		}
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// renderKernels prints the §V workload characterization: compute and memory
// demands of the fifteen AI/XR kernels.
func renderKernels(w io.Writer) error {
	t := table.New("The fifteen AI/XR kernels (§V, Table IV)",
		"kernel", "input", "layers", "GMACs", "params (M)", "peak activation", "weights")
	for _, id := range nn.AllKernels() {
		net, err := nn.Kernel(id)
		if err != nil {
			return err
		}
		s := net.Stats()
		t.AddRow(string(id),
			fmt.Sprintf("%dx%dx%d", net.InputC, net.InputH, net.InputW),
			fmt.Sprint(s.Layers),
			fmt.Sprintf("%.2f", s.MACs/1e9),
			fmt.Sprintf("%.2f", s.Params/1e6),
			s.PeakActivation.String(),
			s.WeightBytes.String())
	}
	return t.Render(w)
}

func renderOne(w io.Writer, key string) error {
	e, err := experiments.ByKey(key)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n======== %s — %s ========\n\n", e.Key, e.Title)
	return e.Render(w)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  cordoba list           list experiment keys
  cordoba run <key>...   run specific experiments
  cordoba all            run every experiment
  cordoba kernels        print the workload characterization table
  cordoba kernel <id>    per-layer profile of one kernel
  cordoba export <key> [json|csv]   dump an experiment's data`)
}
