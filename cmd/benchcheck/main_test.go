package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cordoba
BenchmarkStreamingDSE/naive-8         	       1	7613378000 ns/op	93437848 B/op	  316410 allocs/op
BenchmarkStreamingDSE/streaming-8     	       2	 536123456 ns/op	210000000 B/op	  794000 allocs/op
BenchmarkEvaluateParallel 	      10	 123456789 ns/op
PASS
ok  	cordoba	10.123s
`

func TestParseBenchStripsSuffix(t *testing.T) {
	results, err := parseBench(strings.NewReader(sampleOutput), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]benchResult{
		"BenchmarkStreamingDSE/naive":     {NsOp: 7613378000, BOp: 93437848, AllocsOp: 316410},
		"BenchmarkStreamingDSE/streaming": {NsOp: 536123456, BOp: 210000000, AllocsOp: 794000},
		"BenchmarkEvaluateParallel":       {NsOp: 123456789, BOp: -1, AllocsOp: -1},
	}
	if len(results) != len(want) {
		t.Fatalf("parsed %v, want %v", results, want)
	}
	for name, res := range want {
		if results[name] != res {
			t.Errorf("%s = %v, want %v", name, results[name], res)
		}
	}
}

func TestCheckFlagsRegressionsAndMissing(t *testing.T) {
	results := map[string]benchResult{
		"BenchmarkA": {NsOp: 900, BOp: -1, AllocsOp: -1},
		"BenchmarkB": {NsOp: 2100, BOp: -1, AllocsOp: -1},
		"BenchmarkC": {NsOp: 5, BOp: -1, AllocsOp: -1},
	}
	baseline := map[string]benchResult{
		"BenchmarkA": {NsOp: 1000},
		"BenchmarkB": {NsOp: 1000},
	}
	got := check(results, baseline, 2.0, 1.3)
	if len(got) != 2 {
		t.Fatalf("violations = %v, want a regression and a missing entry", got)
	}
	if !strings.Contains(got[0], "BenchmarkB") || !strings.Contains(got[0], "2.10x") {
		t.Errorf("regression line = %q", got[0])
	}
	if !strings.Contains(got[1], "BenchmarkC") || !strings.Contains(got[1], "no baseline") {
		t.Errorf("missing-baseline line = %q", got[1])
	}
}

func TestCheckGatesAllocations(t *testing.T) {
	baseline := map[string]benchResult{
		"BenchmarkA": {NsOp: 1000, BOp: 1000, AllocsOp: 100},
	}

	// Within time budget but 2x the allocations: both memory axes fire.
	results := map[string]benchResult{
		"BenchmarkA": {NsOp: 1000, BOp: 2000, AllocsOp: 200},
	}
	got := check(results, baseline, 2.0, 1.3)
	if len(got) != 2 {
		t.Fatalf("violations = %v, want B/op and allocs/op regressions", got)
	}
	if !strings.Contains(got[0], "B/op") || !strings.Contains(got[1], "allocs/op") {
		t.Errorf("violations = %v", got)
	}

	// A run without memory columns never trips the memory gate.
	results = map[string]benchResult{
		"BenchmarkA": {NsOp: 1000, BOp: -1, AllocsOp: -1},
	}
	if got := check(results, baseline, 2.0, 1.3); len(got) != 0 {
		t.Fatalf("violations = %v, want none for a time-only run", got)
	}

	// A baseline without memory data never gates a memory-reporting run.
	results = map[string]benchResult{
		"BenchmarkA": {NsOp: 1000, BOp: 99999, AllocsOp: 99999},
	}
	if got := check(results, map[string]benchResult{"BenchmarkA": {NsOp: 1000, BOp: -1, AllocsOp: -1}}, 2.0, 1.3); len(got) != 0 {
		t.Fatalf("violations = %v, want none against a time-only baseline", got)
	}
}

func TestBaselineLegacyFormat(t *testing.T) {
	// Pre-existing baselines are bare ns/op numbers; they must keep gating
	// time and never gate memory.
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	legacy := `{"BenchmarkStreamingDSE/naive": 7613378000, "BenchmarkStreamingDSE/streaming": 536123456, "BenchmarkEvaluateParallel": 123456789}`
	if err := os.WriteFile(base, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", base},
		strings.NewReader(sampleOutput), io.Discard, io.Discard); code != 0 {
		t.Fatalf("legacy-baseline compare exited %d", code)
	}
	slow := strings.Replace(sampleOutput, "7613378000 ns/op", "22840134000 ns/op", 1)
	if code := run([]string{"-baseline", base},
		strings.NewReader(slow), io.Discard, io.Discard); code != 1 {
		t.Fatalf("legacy-baseline regression exited %d, want 1", code)
	}
}

func TestRunUpdateThenPass(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")

	if code := run([]string{"-baseline", base, "-update"},
		strings.NewReader(sampleOutput), io.Discard, io.Discard); code != 0 {
		t.Fatalf("-update exited %d", code)
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-baseline", base},
		strings.NewReader(sampleOutput), io.Discard, io.Discard); code != 0 {
		t.Fatalf("clean compare exited %d", code)
	}

	// 3x slower on one benchmark: must fail.
	slow := strings.Replace(sampleOutput, "7613378000 ns/op", "22840134000 ns/op", 1)
	var errOut strings.Builder
	if code := run([]string{"-baseline", base},
		strings.NewReader(slow), io.Discard, &errOut); code != 1 {
		t.Fatalf("regression exited %d, want 1\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "BenchmarkStreamingDSE/naive") {
		t.Fatalf("regression output missing benchmark name:\n%s", errOut.String())
	}

	// 2x the allocations at unchanged speed: must also fail.
	hungry := strings.Replace(sampleOutput, "316410 allocs/op", "632820 allocs/op", 1)
	errOut.Reset()
	if code := run([]string{"-baseline", base},
		strings.NewReader(hungry), io.Discard, &errOut); code != 1 {
		t.Fatalf("alloc regression exited %d, want 1\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "allocs/op") {
		t.Fatalf("alloc regression output missing axis:\n%s", errOut.String())
	}

	// Empty input is an operator error, not a pass.
	if code := run([]string{"-baseline", base},
		strings.NewReader("PASS\n"), io.Discard, io.Discard); code != 2 {
		t.Fatalf("empty input exited %d, want 2", code)
	}
}

func TestRunUpdateMergesAcrossPackages(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")

	if code := run([]string{"-baseline", base, "-update"},
		strings.NewReader(sampleOutput), io.Discard, io.Discard); code != 0 {
		t.Fatalf("first -update exited %d", code)
	}

	// A second package's bench run must extend the baseline, not replace it.
	other := "BenchmarkScheduleWindow/cumulative-8 \t 100 \t 11708 ns/op\n"
	if code := run([]string{"-baseline", base, "-update"},
		strings.NewReader(other), io.Discard, io.Discard); code != 0 {
		t.Fatalf("second -update exited %d", code)
	}

	raw, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"BenchmarkStreamingDSE/naive",
		"BenchmarkScheduleWindow/cumulative",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("merged baseline missing %q:\n%s", want, raw)
		}
	}

	// Re-running a benchmark overwrites its own entry in place.
	faster := strings.Replace(other, "11708 ns/op", "9000 ns/op", 1)
	if code := run([]string{"-baseline", base, "-update"},
		strings.NewReader(faster), io.Discard, io.Discard); code != 0 {
		t.Fatalf("third -update exited %d", code)
	}
	raw, err = os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "9000") || strings.Contains(string(raw), "11708") {
		t.Errorf("entry not refreshed in place:\n%s", raw)
	}
}
