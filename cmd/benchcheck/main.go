// Command benchcheck guards against performance regressions: it parses
// `go test -bench` output on stdin, compares each benchmark's ns/op — and,
// when present, B/op and allocs/op — against a checked-in baseline, and
// exits non-zero when any result regresses past its budget (-max-ratio for
// time, -max-alloc-ratio for memory). Regenerate the baseline after an
// intentional change with -update.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkStreamingDSE -benchtime 1x . | benchcheck -baseline testdata/bench_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result row, e.g.
//
//	BenchmarkStreamingDSE/naive-8   1  7613378000 ns/op  93437848 B/op  1234 allocs/op
//
// The trailing -N on the name is the GOMAXPROCS suffix and is stripped so
// baselines recorded on one machine compare on another. The memory columns
// only appear under -benchmem or b.ReportAllocs() and are optional.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:\s+([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

// benchResult is one benchmark's measurements; BOp and AllocsOp are negative
// when the run did not report memory.
type benchResult struct {
	NsOp     float64 `json:"ns_op"`
	BOp      float64 `json:"b_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
}

// UnmarshalJSON accepts both the current object form and the legacy baseline
// format — a bare ns/op number — so pre-existing baselines keep gating time
// until regenerated.
func (b *benchResult) UnmarshalJSON(data []byte) error {
	var ns float64
	if err := json.Unmarshal(data, &ns); err == nil {
		*b = benchResult{NsOp: ns, BOp: -1, AllocsOp: -1}
		return nil
	}
	type alias benchResult
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	*b = benchResult(a)
	if b.BOp == 0 && b.AllocsOp == 0 {
		b.BOp, b.AllocsOp = -1, -1
	}
	return nil
}

// MarshalJSON drops absent memory columns (negative sentinels) instead of
// serializing them, keeping baselines clean for time-only benchmarks.
func (b benchResult) MarshalJSON() ([]byte, error) {
	type alias benchResult
	a := alias(b)
	if a.BOp < 0 {
		a.BOp = 0
	}
	if a.AllocsOp < 0 {
		a.AllocsOp = 0
	}
	return json.Marshal(a)
}

// parseBench extracts name → result from go test -bench output, echoing the
// input through to w so the pipeline stays readable.
func parseBench(r io.Reader, w io.Writer) (map[string]benchResult, error) {
	results := map[string]benchResult{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		res := benchResult{NsOp: ns, BOp: -1, AllocsOp: -1}
		if m[3] != "" {
			if res.BOp, err = strconv.ParseFloat(m[3], 64); err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			if res.AllocsOp, err = strconv.ParseFloat(m[4], 64); err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
		}
		results[m[1]] = res
	}
	return results, sc.Err()
}

// check compares results against the baseline and returns one line per
// violation: a benchmark slower than maxRatio times its baseline ns/op,
// one allocating more than maxAllocRatio times its baseline B/op or
// allocs/op (gated only when both the run and the baseline carry memory
// columns), or one missing from the baseline entirely.
func check(results, baseline map[string]benchResult, maxRatio, maxAllocRatio float64) []string {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		got := results[name]
		base, ok := baseline[name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: no baseline entry (rerun with -update)", name))
			continue
		}
		if base.NsOp > 0 && got.NsOp > maxRatio*base.NsOp {
			violations = append(violations,
				fmt.Sprintf("%s: %.3gms vs baseline %.3gms (%.2fx > %.2gx budget)",
					name, got.NsOp/1e6, base.NsOp/1e6, got.NsOp/base.NsOp, maxRatio))
		}
		if got.BOp >= 0 && base.BOp > 0 && got.BOp > maxAllocRatio*base.BOp {
			violations = append(violations,
				fmt.Sprintf("%s: %.4g B/op vs baseline %.4g (%.2fx > %.2gx budget)",
					name, got.BOp, base.BOp, got.BOp/base.BOp, maxAllocRatio))
		}
		if got.AllocsOp >= 0 && base.AllocsOp > 0 && got.AllocsOp > maxAllocRatio*base.AllocsOp {
			violations = append(violations,
				fmt.Sprintf("%s: %.4g allocs/op vs baseline %.4g (%.2fx > %.2gx budget)",
					name, got.AllocsOp, base.AllocsOp, got.AllocsOp/base.AllocsOp, maxAllocRatio))
		}
	}
	return violations
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath  = fs.String("baseline", "testdata/bench_baseline.json", "baseline JSON path")
		update        = fs.Bool("update", false, "rewrite the baseline from this run")
		maxRatio      = fs.Float64("max-ratio", 2.0, "fail when ns/op exceeds baseline by this factor")
		maxAllocRatio = fs.Float64("max-alloc-ratio", 1.3, "fail when B/op or allocs/op exceeds baseline by this factor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	results, err := parseBench(stdin, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchcheck: no benchmark results on stdin")
		return 2
	}

	if *update {
		// Merge into the existing baseline rather than overwriting it, so
		// per-package bench runs (root DSE, sched window search) can each
		// refresh their own entries without clobbering the others'.
		merged := map[string]benchResult{}
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			if err := json.Unmarshal(raw, &merged); err != nil {
				fmt.Fprintln(stderr, "benchcheck: existing baseline:", err)
				return 2
			}
		}
		for name, res := range results {
			merged[name] = res
		}
		b, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchcheck:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchcheck:", err)
			return 2
		}
		fmt.Fprintf(stderr, "benchcheck: wrote %d entries (%d updated) to %s\n",
			len(merged), len(results), *baselinePath)
		return 0
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck: reading baseline (rerun with -update):", err)
		return 2
	}
	baseline := map[string]benchResult{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintln(stderr, "benchcheck: baseline:", err)
		return 2
	}

	violations := check(results, baseline, *maxRatio, *maxAllocRatio)
	for _, v := range violations {
		fmt.Fprintln(stderr, "benchcheck: FAIL", v)
	}
	if len(violations) > 0 {
		return 1
	}
	fmt.Fprintf(stderr, "benchcheck: %d benchmarks within budget (%.2gx time, %.2gx memory)\n", len(results), *maxRatio, *maxAllocRatio)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
