// Command benchcheck guards against performance regressions: it parses
// `go test -bench` output on stdin, compares each benchmark's ns/op against
// a checked-in baseline, and exits non-zero when any result is more than
// -max-ratio times slower. Regenerate the baseline after an intentional
// change with -update.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkStreamingDSE -benchtime 1x . | benchcheck -baseline testdata/bench_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result row, e.g.
//
//	BenchmarkStreamingDSE/naive-8   1  7613378000 ns/op  93437848 B/op ...
//
// The trailing -N on the name is the GOMAXPROCS suffix and is stripped so
// baselines recorded on one machine compare on another.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// parseBench extracts name → ns/op from go test -bench output, echoing the
// input through to w so the pipeline stays readable.
func parseBench(r io.Reader, w io.Writer) (map[string]float64, error) {
	results := map[string]float64{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", line, err)
		}
		results[m[1]] = ns
	}
	return results, sc.Err()
}

// check compares results against the baseline and returns one line per
// violation: a benchmark slower than maxRatio times its baseline, or one
// missing from the baseline entirely.
func check(results, baseline map[string]float64, maxRatio float64) []string {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		ns := results[name]
		base, ok := baseline[name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: no baseline entry (rerun with -update)", name))
			continue
		}
		if base > 0 && ns > maxRatio*base {
			violations = append(violations,
				fmt.Sprintf("%s: %.3gms vs baseline %.3gms (%.2fx > %.2gx budget)",
					name, ns/1e6, base/1e6, ns/base, maxRatio))
		}
	}
	return violations
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		baselinePath = fs.String("baseline", "testdata/bench_baseline.json", "baseline JSON path")
		update       = fs.Bool("update", false, "rewrite the baseline from this run")
		maxRatio     = fs.Float64("max-ratio", 2.0, "fail when ns/op exceeds baseline by this factor")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	results, err := parseBench(stdin, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck:", err)
		return 2
	}
	if len(results) == 0 {
		fmt.Fprintln(stderr, "benchcheck: no benchmark results on stdin")
		return 2
	}

	if *update {
		// Merge into the existing baseline rather than overwriting it, so
		// per-package bench runs (root DSE, sched window search) can each
		// refresh their own entries without clobbering the others'.
		merged := map[string]float64{}
		if raw, err := os.ReadFile(*baselinePath); err == nil {
			if err := json.Unmarshal(raw, &merged); err != nil {
				fmt.Fprintln(stderr, "benchcheck: existing baseline:", err)
				return 2
			}
		}
		for name, ns := range results {
			merged[name] = ns
		}
		b, err := json.MarshalIndent(merged, "", "  ")
		if err != nil {
			fmt.Fprintln(stderr, "benchcheck:", err)
			return 2
		}
		if err := os.WriteFile(*baselinePath, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(stderr, "benchcheck:", err)
			return 2
		}
		fmt.Fprintf(stderr, "benchcheck: wrote %d entries (%d updated) to %s\n",
			len(merged), len(results), *baselinePath)
		return 0
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchcheck: reading baseline (rerun with -update):", err)
		return 2
	}
	baseline := map[string]float64{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintln(stderr, "benchcheck: baseline:", err)
		return 2
	}

	violations := check(results, baseline, *maxRatio)
	for _, v := range violations {
		fmt.Fprintln(stderr, "benchcheck: FAIL", v)
	}
	if len(violations) > 0 {
		return 1
	}
	fmt.Fprintf(stderr, "benchcheck: %d benchmarks within %.2gx of baseline\n", len(results), *maxRatio)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}
