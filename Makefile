# CORDOBA build/test entry points. `make ci` is the full PR gate: the
# tier-1 verify (build + all tests), go vet, and a race-detector pass over
# the concurrent paths (the cordobad service layer, the parallel/streaming
# DSE engine, and the envelope accumulator it locks around).

GO ?= go

.PHONY: build test vet fmt-check race ci bench bench-server bench-check bench-cluster bench-surrogate bench-partition bench-queue bench-baseline fuzz-smoke run-daemon

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fail if any file is not gofmt-clean (gofmt -l prints offenders; grep .
# turns any output into a non-zero exit).
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

race:
	$(GO) test -race -short . ./internal/server/... ./internal/job/... ./internal/tenant/... ./internal/cluster/... ./internal/dse/... ./internal/pareto/... ./internal/grid/... ./internal/sched/... ./internal/carbon/... ./internal/accel/... ./client/... ./api/...

ci: build vet fmt-check test race

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The pool-sizing and cache benchmarks behind cordobad's defaults.
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluateParallel|BenchmarkServerDSE' -benchmem .

# Guard the streaming-engine and window-search speedups: fail on a >2x ns/op
# regression — or a >1.3x B/op or allocs/op regression — against the
# checked-in baseline. Regenerate after an intentional perf change with
# `make bench-baseline` and review the diff (-update merges per-package runs
# into the shared baseline).
bench-check:
	$(GO) test -run '^$$' -bench BenchmarkStreamingDSE -benchtime 1x -benchmem . | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json
	$(GO) test -run '^$$' -bench BenchmarkScheduleWindow -benchtime 1x -benchmem ./internal/sched | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json

# Guard the surrogate search's reason to exist: on the 105k-point reference
# grid it must stay several times faster than exhaustive streaming (the
# quality floor is pinned separately by internal/dse's golden tests).
bench-surrogate:
	$(GO) test -run '^$$' -bench BenchmarkSurrogateDSE -benchtime 1x -benchmem . | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json

# Guard the distributed-DSE paths: the single-node walk of the 2^20-point
# acceptance grid, the same grid fanned out across three in-process workers
# (the delta over `single` is the coordinator's whole fan-out overhead —
# dispatch, polling, envelope decode, merge), and the isolated merge path.
bench-cluster:
	$(GO) test -run '^$$' -bench BenchmarkClusterDSE -benchtime 1x -benchmem ./internal/cluster | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json
	$(GO) test -run '^$$' -bench BenchmarkClusterMerge -benchtime 100x -benchmem ./internal/cluster | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json

# Guard the partition axis: widening a grid with the chiplet knobs (12x the
# cells of its flat projection) must keep pricing through the shared
# per-(shape, embodied-class) path, so time, B/op, and allocs/op on both the
# flat and partitioned runs are gated against the checked-in baseline.
bench-partition:
	$(GO) test -run '^$$' -bench BenchmarkPartitionDSE -benchtime 1x -benchmem . | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json

# Guard the fair-share scheduler's hot path: one weighted pick + requeue
# over a populated 32-tenant queue must stay fast and allocation-light —
# it runs between every job the fleet serves.
bench-queue:
	$(GO) test -run '^$$' -bench BenchmarkFairShareDequeue -benchtime 100x -benchmem ./internal/job | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json

bench-baseline:
	$(GO) test -run '^$$' -bench BenchmarkStreamingDSE -benchtime 1x -benchmem . | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json -update
	$(GO) test -run '^$$' -bench BenchmarkSurrogateDSE -benchtime 1x -benchmem . | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json -update
	$(GO) test -run '^$$' -bench BenchmarkPartitionDSE -benchtime 1x -benchmem . | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json -update
	$(GO) test -run '^$$' -bench BenchmarkScheduleWindow -benchtime 1x -benchmem ./internal/sched | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json -update
	$(GO) test -run '^$$' -bench BenchmarkClusterDSE -benchtime 1x -benchmem ./internal/cluster | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json -update
	$(GO) test -run '^$$' -bench BenchmarkClusterMerge -benchtime 100x -benchmem ./internal/cluster | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json -update
	$(GO) test -run '^$$' -bench BenchmarkFairShareDequeue -benchtime 100x -benchmem ./internal/job | $(GO) run ./cmd/benchcheck -baseline testdata/bench_baseline.json -update

# Ten seconds of coverage-guided fuzzing per target (one -fuzz per
# invocation is a `go test` restriction). Seed corpora live under each
# package's testdata/fuzz/ and also run as regular tests in `make test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParetoEnvelope -fuzztime 10s ./internal/pareto
	$(GO) test -run '^$$' -fuzz FuzzDSERequest -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzSurrogateRequest -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzAccountingRequest -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzPartitionSpec -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzJobListQuery -fuzztime 10s ./internal/server
	$(GO) test -run '^$$' -fuzz FuzzTraceIntegrate -fuzztime 10s ./internal/grid
	$(GO) test -run '^$$' -fuzz FuzzAccountingModel -fuzztime 10s ./internal/carbon

run-daemon:
	$(GO) run ./cmd/cordobad -addr :8080
