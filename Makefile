# CORDOBA build/test entry points. `make ci` is the full PR gate: the
# tier-1 verify (build + all tests), go vet, and a race-detector pass over
# the concurrent paths (the cordobad service layer and the parallel DSE
# engine).

GO ?= go

.PHONY: build test vet race ci bench bench-server run-daemon

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/server/... ./internal/dse/...

ci: build vet test race

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# The pool-sizing and cache benchmarks behind cordobad's defaults.
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluateParallel|BenchmarkServerDSE' -benchmem .

run-daemon:
	$(GO) run ./cmd/cordobad -addr :8080
