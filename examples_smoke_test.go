package cordoba_test

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestExamplesSmoke builds every example program and runs it to completion:
// each must exit 0 within the deadline and say something on stdout. The
// examples double as executable documentation, so a facade change that
// breaks one fails the ordinary `go test ./...` run, not just a reader.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("examples build and run full explorations; skipped with -short")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	bindir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building example: %v\n%s", err, out)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			var stdout, stderr bytes.Buffer
			cmd := exec.CommandContext(ctx, bin)
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("running example: %v\nstderr:\n%s", err, stderr.String())
			}
			if stdout.Len() == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
