package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"cordoba/internal/job"
)

// fuzzServer is the process-wide server the fuzz targets drive: response
// cache off so memory stays flat across millions of executions, a small
// knob-grid cap so a lucky mutation cannot make one execution explore a
// million-point space.
var (
	fuzzSrvOnce sync.Once
	fuzzSrv     *Server
)

func fuzzServer() *Server {
	fuzzSrvOnce.Do(func() {
		fuzzSrv = New(Config{CacheSize: -1, MaxGridPoints: 64, Logger: quietLogger()})
	})
	return fuzzSrv
}

// fuzzPost drives one fuzzer-supplied body through the full middleware stack
// and checks the contract every response must honor, valid or not: no panic
// (a panic would surface as the recovery middleware's 500), a JSON body, and
// on error the uniform envelope with a matching status code.
func fuzzPost(t *testing.T, path string, body []byte) {
	req := httptest.NewRequest("POST", path, strings.NewReader(string(body)))
	w := httptest.NewRecorder()
	fuzzServer().Handler().ServeHTTP(w, req)

	if w.Code >= 500 {
		t.Fatalf("%s returned %d for body %q:\n%s", path, w.Code, body, w.Body)
	}
	if !json.Valid(w.Body.Bytes()) {
		t.Fatalf("%s returned invalid JSON for body %q:\n%s", path, body, w.Body)
	}
	if w.Code != http.StatusOK {
		var env errEnvelope
		if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s error response is not the envelope: %s", path, w.Body)
		}
		if env.Error.Status != w.Code || env.Error.Message == "" {
			t.Fatalf("%s envelope %+v does not match status %d", path, env, w.Code)
		}
	}
}

func FuzzDSERequest(f *testing.F) {
	f.Add([]byte(`{"task":"All kernels","configs":["a1","a12"]}`))
	f.Add([]byte(`{"task":"AI (5 kernels)","set":"3d","ci_use":200,"sweep":{"lo":1,"hi":1e10,"points":5}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{"mac_arrays":[1,8],"sram_mb":[2],"vdd_scales":[0.9],"nodes":["7nm","5nm"]}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{"mac_arrays":[-1],"sram_mb":[1e308]}}`))
	f.Add([]byte(`{"task":`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"task":"All kernels"} trailing`))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/v1/dse", body)
	})
}

// FuzzSurrogateRequest drives the surrogate-search fields through the full
// stack. Malformed knobs, seeds, budgets, and search values must answer 400
// with the uniform envelope — never a 500, a panic, or unbounded work (the
// fuzz server's 64-point cap bounds both the grid walk and the clamped
// budget of any execution).
func FuzzSurrogateRequest(f *testing.F) {
	knobs := `"knobs":{"mac_arrays":[1,4],"sram_mb":[2,8]}`
	f.Add([]byte(`{"task":"All kernels","search":"surrogate",` + knobs + `,"surrogate":{"seed":7,"budget":8,"population":4}}`))
	f.Add([]byte(`{"task":"All kernels","search":"auto",` + knobs + `}`))
	f.Add([]byte(`{"task":"All kernels","search":"genetic",` + knobs + `}`))
	f.Add([]byte(`{"task":"All kernels","search":"surrogate","configs":["a1"]}`))
	f.Add([]byte(`{"task":"All kernels",` + knobs + `,"surrogate":{"budget":-1}}`))
	f.Add([]byte(`{"task":"All kernels",` + knobs + `,"surrogate":{"budget":9223372036854775807}}`))
	f.Add([]byte(`{"task":"All kernels",` + knobs + `,"surrogate":{"seed":-1}}`))
	f.Add([]byte(`{"task":"All kernels",` + knobs + `,"surrogate":{"population":65536,"generations":-3}}`))
	f.Add([]byte(`{"task":"All kernels",` + knobs + `,"surrogate":{"oracle":true},"shards":2}`))
	f.Add([]byte(`{"task":"All kernels","search":"surrogate",` + knobs + `,"surrogate":{`))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/v1/dse", body)
	})
}

// FuzzPartitionSpec drives the partition knob axes through the full stack.
// Every malformed spec — duplicate axis values, unknown integration styles,
// chiplet nodes, or carriers, chiplet counts without an integration axis,
// negative or overflowing counts — must answer 400 with the uniform envelope
// and the invalid_knobs code path, never a 500 or a panic; valid specs are
// bounded by the fuzz server's 64-point grid cap. Seed corpus lives in
// testdata/fuzz/FuzzPartitionSpec.
func FuzzPartitionSpec(f *testing.F) {
	knobs := `"mac_arrays":[1,2],"sram_mb":[1,2]`
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":["monolithic","2.5d"],"chiplets":[2,4],"chiplet_nodes":["14nm"],"carrier":"rdl-fanout"}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":["3d"],"chiplets":[64],"carrier":"emib"}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":["2.5d","2.5d"]}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":["5d"]}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":["3d"],"chiplet_nodes":["6nm"]}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":["2.5d"],"carrier":"glass"}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"chiplets":[4]}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":["3d"],"chiplets":[-1,9223372036854775807]}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"models":["act"],"partition":{"integrations":["2.5d"]}}}`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":{"integrations":[`))
	f.Add([]byte(`{"task":"All kernels","knobs":{` + knobs + `,"partition":null}}`))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/v1/dse", body)
	})
}

// FuzzJobListQuery drives fuzzer-supplied query strings through the
// paginated GET /v1/jobs listing. Malformed states, priorities, limits, and
// cursors must answer 400 with the uniform envelope — never a 500 or a
// panic — and any cursor the parser accepts must re-mint to the same
// position (the pagination walk depends on that round-trip). Seed corpus
// lives in testdata/fuzz/FuzzJobListQuery.
func FuzzJobListQuery(f *testing.F) {
	f.Add("state=queued&priority=interactive&limit=2")
	f.Add("state=succeeded&priority=batch&limit=500")
	f.Add("priority=deferrable&limit=1")
	f.Add("limit=0")
	f.Add("limit=99999999999999999999")
	f.Add("cursor=%21%21")
	f.Add("cursor=Z29vZA==")
	f.Add("cursor=" + jobListCursor(job.Status{ID: "j0ff00", Created: time.Unix(0, 1700000000000000000).UTC()}))
	f.Add("state=bogus&priority=&cursor=")
	f.Add(";=;&&=%zz")
	f.Fuzz(func(t *testing.T, raw string) {
		req := httptest.NewRequest("GET", "/v1/jobs", nil)
		req.URL.RawQuery = raw
		w := httptest.NewRecorder()
		fuzzServer().Handler().ServeHTTP(w, req)

		if w.Code >= 500 {
			t.Fatalf("/v1/jobs?%s returned %d:\n%s", raw, w.Code, w.Body)
		}
		if !json.Valid(w.Body.Bytes()) {
			t.Fatalf("/v1/jobs?%s returned invalid JSON:\n%s", raw, w.Body)
		}
		if w.Code != http.StatusOK {
			var env errEnvelope
			if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
				t.Fatalf("/v1/jobs?%s error response is not the envelope: %s", raw, w.Body)
			}
			if env.Error.Status != w.Code || env.Error.Message == "" {
				t.Fatalf("/v1/jobs?%s envelope %+v does not match status %d", raw, env, w.Code)
			}
		}

		// Cursor round-trip: a position the parser accepts survives re-minting.
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := parseJobListQuery(vals)
		if err != nil || q.cursorID == "" {
			return
		}
		again, err := parseJobListQuery(url.Values{
			"cursor": {jobListCursor(job.Status{ID: q.cursorID, Created: q.cursorCreated})},
		})
		if err != nil || !again.cursorCreated.Equal(q.cursorCreated) || again.cursorID != q.cursorID {
			t.Fatalf("cursor does not round-trip: %+v vs %+v (%v)", q, again, err)
		}
	})
}

func FuzzAccountingRequest(f *testing.F) {
	f.Add([]byte(`{"process":"7nm","fab":"coal-heavy","area_cm2":1.0,"yield":0.95}`))
	f.Add([]byte(`{"accelerator":{"id":"a48"}}`))
	f.Add([]byte(`{"accelerator":{"mac_arrays":16,"sram_mb":8,"is_3d":true,"mem_dies":4}}`))
	f.Add([]byte(`{"area_cm2":-1}`))
	f.Add([]byte(`{"area_cm2":1e308,"yield":1e-308}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, body []byte) {
		fuzzPost(t, "/v1/accounting", body)
	})
}
