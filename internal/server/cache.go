package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
)

// cachedResponse is a fully rendered HTTP response body. DSE and accounting
// results are deterministic functions of the request, so a hit can be
// replayed byte-for-byte without re-running the evaluation.
type cachedResponse struct {
	Status      int
	ContentType string
	Body        []byte
}

// Cache is a thread-safe LRU of rendered responses keyed by the canonical
// request hash (see canonicalKey). A zero/nil capacity disables caching.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp cachedResponse
}

// NewCache returns an LRU holding up to capacity responses.
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:     capacity,
		order:   list.New(),
		entries: map[string]*list.Element{},
	}
}

// Get returns the cached response for key, marking it most recently used.
func (c *Cache) Get(key string) (cachedResponse, bool) {
	if c == nil || c.cap <= 0 {
		return cachedResponse{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return cachedResponse{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// Put stores a response, evicting the least recently used entry when full.
func (c *Cache) Put(key string, resp cachedResponse) {
	if c == nil || c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of cached responses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// canonicalKey hashes a route plus the decoded-and-defaulted request
// structure. Hashing after decoding (rather than the raw body) makes
// requests that differ only in JSON whitespace, field order, or omitted
// defaults share one cache entry; Go structs marshal with deterministic
// field order, so the digest is stable.
func canonicalKey(route string, req any) (string, error) {
	b, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(append([]byte(route+"\x00"), b...))
	return hex.EncodeToString(sum[:]), nil
}
