// Package server is cordobad's service layer: it exposes CORDOBA's carbon
// accounting (eq. IV.5), design-space exploration (§VI-B/C), and experiment
// registry as a long-lived, concurrent JSON API over net/http — stdlib only.
//
// Production plumbing around the handlers:
//
//   - a bounded worker pool sized from GOMAXPROCS admits grid evaluations
//     (dse.EvaluateParallel) so request bursts queue instead of thrashing;
//   - an in-memory LRU caches rendered responses keyed by a canonical hash
//     of the decoded request — DSE results are deterministic, so a hit
//     skips the whole evaluation and replays byte-identical JSON;
//   - per-request timeouts, request-size limits, panic recovery, and a
//     uniform JSON error envelope;
//   - optional multi-tenant serving: an API-key registry (-tenants) mapping
//     keys to fair-share weights, job quotas, and request-rate token
//     buckets; without a registry every caller is one unlimited anonymous
//     tenant and behavior is byte-identical to the single-tenant daemon;
//   - GET /healthz, Prometheus-format GET /metrics (request counts, latency
//     histograms, cache hit/miss, in-flight and pool gauges, all
//     sync/atomic), and structured request logging via log/slog.
//
// Routes:
//
//	POST /v1/accounting          ACT embodied carbon for a die or accelerator
//	POST /v1/dse                 task + design space → ever-optimal set, sweep
//	POST /v1/jobs                submit a DSE body for async execution (202)
//	GET  /v1/jobs                list jobs, newest first (paginated, filterable)
//	GET  /v1/jobs/{id}           job status with live progress and ETA
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET  /v1/jobs/{id}/result    fetch a finished job's DSE response
//	GET  /v1/jobs/{id}/checkpoint  fetch a job's last saved checkpoint
//	GET  /v1/jobs/{id}/events    live job event stream (SSE)
//	GET  /v1/tenant              authenticated tenant, limits, quota usage
//	GET  /v1/cluster             cluster role, worker membership, shard counters
//	GET  /v1/experiments         experiment discovery
//	GET  /v1/experiments/{key}   stream one experiment (json, csv, or text)
//	GET  /v1/traces              named CI_use(t) trace registry with exact stats
//	POST /v1/schedule            lowest-carbon launch window for a job + deadline
//	GET  /v1/tasks               servable tasks
//	GET  /v1/configs             accelerator design spaces
//	GET  /v1/models              embodied-carbon backends and yield models
//	GET  /healthz                liveness
//	GET  /metrics                Prometheus text exposition
package server

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"net/http"
	"time"

	"cordoba"
	"cordoba/internal/cluster"
	"cordoba/internal/job"
	"cordoba/internal/tenant"
)

// Config tunes the daemon; zero values select production defaults.
type Config struct {
	Addr           string        // listen address, default ":8080"
	CacheSize      int           // LRU entries, default 256; negative disables
	MaxBodyBytes   int64         // request-body cap, default 1 MiB
	RequestTimeout time.Duration // per-request deadline, default 60 s
	PoolSize       int           // concurrent evaluations, default DefaultPoolSize
	EvalWorkers    int           // goroutines per evaluation, default DefaultEvalWorkers
	MaxGridPoints  int64         // knob-grid size cap per request, default 1<<20
	MemoEntries    int           // shape-profile memo entries, default cordoba.DefaultMemoEntries
	Logger         *slog.Logger  // default slog.Default()

	// Surrogate search defaults, used when a request's surrogate spec leaves
	// the field unset. Zero selects the engine defaults (budget 2% of the
	// grid clamped to [256, 8192]; population 48).
	SurrogateBudget     int64 // true-evaluation budget per surrogate run
	SurrogatePopulation int   // NSGA parent-pool size

	// Async job subsystem (POST /v1/jobs). Zero values select the job
	// package defaults; JobDir empty keeps jobs in memory only (no
	// crash-resume across restarts).
	JobWorkers      int    // concurrent job executions, default job.DefaultWorkers
	JobQueue        int    // admission-control queue depth, default job.DefaultQueueDepth
	JobDir          string // checkpoint/state directory; empty = memory only
	CheckpointEvery int    // shapes between streaming checkpoints, default 8; <0 disables
	// JobStore selects the checkpoint store layout under JobDir: "dir"
	// (default, one file per job ID) or "cas" (content-addressed by
	// sha256(kind ‖ request), letting any daemon sharing the directory adopt
	// another's orphaned checkpoint).
	JobStore string

	// Multi-tenant serving. TenantFile names the API-key registry (see
	// internal/tenant for the schema); empty runs the daemon in open
	// single-tenant mode, byte-identical to historical behavior. RegionTrace
	// names the CI_use(t) trace deferrable jobs schedule their launch window
	// against, default "decarb-ramp".
	TenantFile  string
	RegionTrace string

	// Distributed DSE (internal/cluster). Role selects the daemon's cluster
	// role: "standalone" (default) serves everything locally and rejects
	// fan-out requests, "worker" additionally advertises itself as shard
	// capacity, and "coordinator" fans knob grids out to ClusterWorkers and
	// merges the envelopes. Any role runs shard jobs — "worker" is an
	// advertisement, not a capability gate.
	Role           string        // "standalone" (default), "worker", or "coordinator"
	ClusterWorkers []string      // worker base URLs; required for role coordinator
	WorkerAPIKey   string        // API key the coordinator presents to keyed workers
	HeartbeatEvery time.Duration // worker liveness probe cadence, default cluster.DefaultHeartbeatEvery
	ShardTimeout   time.Duration // no-progress bound before a shard is requeued, default cluster.DefaultShardTimeout
	ShardAttempts  int           // attempts per shard before the run fails, default cluster.DefaultMaxAttempts
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxGridPoints <= 0 {
		c.MaxGridPoints = 1 << 20
	}
	if c.SurrogateBudget < 0 {
		c.SurrogateBudget = 0
	}
	if c.SurrogatePopulation < 0 {
		c.SurrogatePopulation = 0
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8
	} else if c.CheckpointEvery < 0 {
		c.CheckpointEvery = 0
	}
	if c.Role == "" {
		c.Role = "standalone"
	}
	if c.JobStore == "" {
		c.JobStore = "dir"
	}
	if c.RegionTrace == "" {
		c.RegionTrace = "decarb-ramp"
	}
	return c
}

// Server is the assembled service: router, cache, metrics, and pool.
type Server struct {
	cfg     Config
	log     *slog.Logger
	mux     *http.ServeMux
	metrics *Metrics
	cache   *Cache
	pool    *Pool

	// memo is the shared shape-profile cache of the streaming DSE engine:
	// knob-grid requests reuse each (kernel, shape) evaluation across calls.
	memo *cordoba.MemoCache

	// configs indexes every known accelerator ID (grid + 3D) for request
	// resolution without re-enumerating the design space per request.
	configs map[string]cordoba.AcceleratorConfig

	// traces holds the named CI_use(t) registry with each trace's prefix
	// integral prebuilt, so /v1/schedule and trace-aware /v1/dse evaluate
	// in O(log n) per window with no per-request quadrature.
	traces map[string]*cordoba.CumulativeCI

	// jobs is the async exploration queue behind POST /v1/jobs: bounded
	// admission, per-job cancellation, and checkpointed crash-resume.
	jobs *job.Manager

	// cluster is the shard fan-out coordinator, non-nil only when cfg.Role
	// is "coordinator". It owns the worker membership heartbeat and the
	// envelope merge behind shards > 0 job submissions.
	cluster *cluster.Coordinator

	// tenants resolves API keys to tenants: the open single-tenant registry
	// without a TenantFile, the enforced key registry with one.
	tenants *tenant.Registry
}

// New assembles a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		mux:     http.NewServeMux(),
		configs: map[string]cordoba.AcceleratorConfig{},
		traces:  map[string]*cordoba.CumulativeCI{},
	}
	for _, c := range cordoba.Grid() {
		s.configs[c.ID] = c
	}
	for _, c := range cordoba.Stacked3D() {
		s.configs[c.ID] = c
	}
	for _, tr := range cordoba.NamedCITraces() {
		cum, err := cordoba.NewCumulativeCI(tr, 0) // default horizon
		if err != nil {
			// Registry traces are static and validated by their constructors.
			panic(err)
		}
		s.traces[tr.Name()] = cum
	}

	pm := NewMetrics(0)
	s.pool = NewPool(cfg.PoolSize, cfg.EvalWorkers, pm)
	pm.poolSize = s.pool.Size()
	s.metrics = pm
	s.cache = NewCache(cfg.CacheSize)
	s.memo = cordoba.NewMemoCache(cfg.MemoEntries)
	pm.SetMemoStats(func() (hits, misses, evictions int64, entries int) {
		hits, misses = s.memo.Stats()
		return hits, misses, s.memo.Evictions(), s.memo.Len()
	})

	s.initTenants()
	s.initJobs()
	s.initCluster()

	s.mux.Handle("POST /v1/accounting", s.instrument("/v1/accounting", s.handleAccounting))
	s.mux.Handle("POST /v1/dse", s.instrument("/v1/dse", s.handleDSE))
	s.mux.Handle("POST /v1/jobs", s.instrument("/v1/jobs", s.handleJobSubmit))
	s.mux.Handle("GET /v1/jobs", s.instrument("/v1/jobs", s.handleJobList))
	s.mux.Handle("GET /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobGet))
	s.mux.Handle("DELETE /v1/jobs/{id}", s.instrument("/v1/jobs/{id}", s.handleJobCancel))
	s.mux.Handle("GET /v1/jobs/{id}/result", s.instrument("/v1/jobs/{id}/result", s.handleJobResult))
	s.mux.Handle("GET /v1/jobs/{id}/checkpoint", s.instrument("/v1/jobs/{id}/checkpoint", s.handleJobCheckpoint))
	s.mux.Handle("GET /v1/jobs/{id}/events", s.instrumentStream("/v1/jobs/{id}/events", s.handleJobEvents))
	s.mux.Handle("GET /v1/tenant", s.instrument("/v1/tenant", s.handleTenant))
	s.mux.Handle("GET /v1/cluster", s.instrument("/v1/cluster", s.handleCluster))
	s.mux.Handle("GET /v1/experiments", s.instrument("/v1/experiments", s.handleExperimentsList))
	s.mux.Handle("GET /v1/experiments/{key}", s.instrument("/v1/experiments/{key}", s.handleExperiment))
	s.mux.Handle("GET /v1/traces", s.instrument("/v1/traces", s.handleTraces))
	s.mux.Handle("POST /v1/schedule", s.instrument("/v1/schedule", s.handleSchedule))
	s.mux.Handle("GET /v1/tasks", s.instrument("/v1/tasks", s.handleTasks))
	s.mux.Handle("GET /v1/configs", s.instrument("/v1/configs", s.handleConfigs))
	s.mux.Handle("GET /v1/models", s.instrument("/v1/models", s.handleModels))
	s.mux.Handle("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	return s
}

// Handler returns the fully instrumented route tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the observability registry (tests and the daemon banner).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Cache exposes the response cache.
func (s *Server) Cache() *Cache { return s.cache }

// Pool exposes the evaluation worker pool.
func (s *Server) Pool() *Pool { return s.pool }

// Memo exposes the shared shape-profile cache of the streaming DSE engine.
func (s *Server) Memo() *cordoba.MemoCache { return s.memo }

// ListenAndServe serves until ctx is canceled, then shuts down gracefully:
// the listener closes immediately, in-flight requests get grace to drain,
// and only then does the call return.
func (s *Server) ListenAndServe(ctx context.Context, grace time.Duration) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ctx, ln, grace)
}

// Serve is ListenAndServe on an existing listener (tests bind an ephemeral
// port first to learn the address).
func (s *Server) Serve(ctx context.Context, ln net.Listener, grace time.Duration) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	log := s.log

	select {
	case err := <-errc:
		return err // listener failed before shutdown was requested
	case <-ctx.Done():
	}

	log.Info("shutting down, draining in-flight requests", "grace", grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	// Stop the job workers after the HTTP side drains: running jobs
	// checkpoint and requeue so the next start resumes them.
	if err := s.jobs.Stop(shutdownCtx); err != nil {
		log.Warn("job manager shutdown", "err", err)
	}
	if s.cluster != nil {
		s.cluster.Stop()
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
