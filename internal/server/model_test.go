package server

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"cordoba"
)

func TestModelsEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "GET", "/v1/models", "")
	if w.Code != http.StatusOK {
		t.Fatalf("models = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[modelsResponse](t, w)
	if len(resp.Models) < 3 {
		t.Fatalf("listed %d backends, want >= 3", len(resp.Models))
	}
	names := map[string]bool{}
	for _, m := range resp.Models {
		names[m.Name] = true
		if m.Description == "" {
			t.Errorf("%s: empty description", m.Name)
		}
	}
	for _, want := range []string{"act", "chiplet", "stacked-3d"} {
		if !names[want] {
			t.Errorf("backend %q missing from %v", want, resp.Models)
		}
	}
	if fmt.Sprint(resp.YieldModels) != fmt.Sprint(cordoba.YieldModelNames()) {
		t.Errorf("yield_models = %v, want %v", resp.YieldModels, cordoba.YieldModelNames())
	}
}

// A string-valued yield selects a yield model in die mode: the area-derived
// Murphy yield must reproduce the same request with the resolved number.
func TestAccountingNamedYield(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/accounting",
		`{"process":"7nm","fab":"coal-heavy","area_cm2":2.0,"yield":"murphy"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("accounting = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[AccountingResponse](t, w)
	if resp.YieldModel != "murphy" {
		t.Fatalf("yield_model = %q, want murphy", resp.YieldModel)
	}
	ym, err := cordoba.YieldModelByName("murphy")
	if err != nil {
		t.Fatal(err)
	}
	y := ym.Yield(2.0, cordoba.FabCoal.DefectDensity)
	if math.Abs(resp.Yield-y) > 1e-12 {
		t.Fatalf("resolved yield = %g, want %g", resp.Yield, y)
	}
	want, err := cordoba.EmbodiedDie(cordoba.Process7nm(), cordoba.FabCoal, 2.0, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.EmbodiedG-want.Grams()) > 1e-9 {
		t.Fatalf("embodied = %g, want %g", resp.EmbodiedG, want.Grams())
	}
}

// Selecting a backend on an accelerator request prices it through that
// backend and surfaces the component breakdown.
func TestAccountingModelBackend(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/accounting", `{"accelerator":{"id":"a121"},"model":"chiplet"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("accounting = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[AccountingResponse](t, w)
	if resp.Model != "chiplet" {
		t.Fatalf("model = %q, want chiplet", resp.Model)
	}

	cfg, err := cordoba.AcceleratorByID("a121")
	if err != nil {
		t.Fatal(err)
	}
	m, err := cordoba.CarbonModelByName("chiplet")
	if err != nil {
		t.Fatal(err)
	}
	bd, err := cfg.EmbodiedBreakdown(m, nil, cordoba.Process7nm(), cordoba.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.EmbodiedG-bd.Total.Grams()) > 1e-9 {
		t.Fatalf("embodied = %g, want %g", resp.EmbodiedG, bd.Total.Grams())
	}
	if math.Abs(resp.SiliconG-bd.Silicon.Grams()) > 1e-9 ||
		math.Abs(resp.PackagingG-bd.Packaging.Grams()) > 1e-9 ||
		math.Abs(resp.BondingG-bd.Bonding.Grams()) > 1e-9 {
		t.Fatalf("breakdown = %g/%g/%g, want %g/%g/%g", resp.SiliconG, resp.PackagingG, resp.BondingG,
			bd.Silicon.Grams(), bd.Packaging.Grams(), bd.Bonding.Grams())
	}
	if sum := resp.SiliconG + resp.PackagingG + resp.BondingG; math.Abs(sum-resp.EmbodiedG) > 1e-9 {
		t.Fatalf("components sum to %g, total %g", sum, resp.EmbodiedG)
	}

	// The default request is unchanged by the feature: no model, no breakdown.
	w2 := do(t, s, "POST", "/v1/accounting", `{"accelerator":{"id":"a121"}}`)
	plain := decodeBody[AccountingResponse](t, w2)
	if plain.Model != "" || plain.SiliconG != 0 {
		t.Fatalf("default accounting grew backend fields: %+v", plain)
	}
}

func TestModelErrorPaths(t *testing.T) {
	s := newTestServer(t, Config{})
	tests := []struct {
		name    string
		path    string
		body    string
		wantMsg string
	}{
		{"unknown model", "/v1/accounting", `{"area_cm2":1,"yield":0.9,"model":"magic"}`, `unknown embodied-carbon model "magic"`},
		{"unknown yield model", "/v1/accounting", `{"area_cm2":1,"yield":"optimism"}`, `unknown yield model "optimism"`},
		{"bad yield type", "/v1/accounting", `{"area_cm2":1,"yield":[1]}`, "yield"},
		{"dse unknown model", "/v1/dse", `{"task":"All kernels","model":"magic"}`, `unknown embodied-carbon model "magic"`},
		{"dse unknown yield", "/v1/dse", `{"task":"All kernels","yield":"optimism"}`, `unknown yield model "optimism"`},
		{"dse model and models axis", "/v1/dse",
			`{"task":"All kernels","model":"act","knobs":{"mac_arrays":[1],"sram_mb":[2],"models":["chiplet"]}}`,
			"not both"},
		{"dse unknown models axis entry", "/v1/dse",
			`{"task":"All kernels","knobs":{"mac_arrays":[1],"sram_mb":[2],"models":["magic"]}}`,
			`unknown embodied-carbon model "magic"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := do(t, s, "POST", tt.path, tt.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", w.Code, w.Body)
			}
			env := decodeBody[errEnvelope](t, w)
			if env.Error.Status != http.StatusBadRequest {
				t.Fatalf("envelope status = %d", env.Error.Status)
			}
			if !strings.Contains(env.Error.Message, tt.wantMsg) {
				t.Fatalf("message %q does not contain %q", env.Error.Message, tt.wantMsg)
			}
		})
	}
}

// The same design space priced under two backends yields distinct Pareto
// fronts — the acceptance bar for the model knob actually reaching the DSE.
func TestDSEDistinctFrontsAcrossBackends(t *testing.T) {
	s := newTestServer(t, Config{})
	body := func(model string) string {
		return `{"task":"AI (5 kernels)","set":"grid","model":"` + model + `"}`
	}
	wACT := do(t, s, "POST", "/v1/dse", body("act"))
	wCh := do(t, s, "POST", "/v1/dse", body("chiplet"))
	if wACT.Code != http.StatusOK || wCh.Code != http.StatusOK {
		t.Fatalf("dse = %d / %d: %s %s", wACT.Code, wCh.Code, wACT.Body, wCh.Body)
	}
	act := decodeBody[DSEResponse](t, wACT)
	ch := decodeBody[DSEResponse](t, wCh)
	if act.Model != "act" || ch.Model != "chiplet" {
		t.Fatalf("model echo = %q / %q", act.Model, ch.Model)
	}
	for _, p := range ch.Points {
		if p.Model != "chiplet" {
			t.Fatalf("point %s labelled %q, want chiplet", p.ID, p.Model)
		}
	}

	// Embodied carbon must move between backends…
	embodied := func(resp DSEResponse) map[string]float64 {
		m := map[string]float64{}
		for _, p := range resp.Points {
			m[p.ID] = p.EmbodiedG
		}
		return m
	}
	ea, ec := embodied(act), embodied(ch)
	moved := 0
	for id, g := range ea {
		if ec[id] != g {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("chiplet backend left every embodied value unchanged")
	}
	// …and with it the front: the ever-optimal set or its coordinates differ.
	if fmt.Sprint(act.EverOptimal) == fmt.Sprint(ch.EverOptimal) {
		distinct := false
		for _, id := range act.EverOptimal {
			if ea[id] != ec[id] {
				distinct = true
				break
			}
		}
		if !distinct {
			t.Fatal("fronts identical under both backends")
		}
	}
}

// The knob-grid models axis streams one front across backends, and the
// per-backend evaluation counter lands in /metrics.
func TestDSEModelsAxisAndMetrics(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"task":"AI (5 kernels)",` +
		`"knobs":{"mac_arrays":[16,256],"sram_mb":[8,192],"models":["act","chiplet"]}}`
	w := do(t, s, "POST", "/v1/dse", body)
	if w.Code != http.StatusOK {
		t.Fatalf("dse = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[DSEResponse](t, w)
	if resp.PointsStreamed != 8 {
		t.Fatalf("points_streamed = %d, want 2*2*2 = 8", resp.PointsStreamed)
	}
	for _, p := range resp.Points {
		if p.Model != "act" && p.Model != "chiplet" {
			t.Fatalf("survivor %s labelled %q", p.ID, p.Model)
		}
	}

	mw := do(t, s, "GET", "/metrics", "")
	metrics := mw.Body.String()
	for _, want := range []string{
		`cordobad_model_evaluations_total{model="act"} 4`,
		`cordobad_model_evaluations_total{model="chiplet"} 4`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}
