package server

import (
	"bytes"
	"fmt"
	"testing"
)

func resp(s string) cachedResponse {
	return cachedResponse{Status: 200, ContentType: "application/json", Body: []byte(s)}
}

func TestCachePutGet(t *testing.T) {
	c := NewCache(2)
	c.Put("a", resp("A"))
	got, ok := c.Get("a")
	if !ok || !bytes.Equal(got.Body, []byte("A")) {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get(missing) reported a hit")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", resp("A"))
	c.Put("b", resp("B"))
	c.Get("a") // refresh a → b is now the LRU entry
	c.Put("c", resp("C"))

	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order is wrong")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was evicted despite a recent hit")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing after insert")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := NewCache(2)
	c.Put("a", resp("old"))
	c.Put("a", resp("new"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, _ := c.Get("a")
	if string(got.Body) != "new" {
		t.Fatalf("Body = %q, want new", got.Body)
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, c := range []*Cache{NewCache(0), NewCache(-1), nil} {
		c.Put("a", resp("A"))
		if _, ok := c.Get("a"); ok {
			t.Fatal("disabled cache stored an entry")
		}
	}
}

func TestCanonicalKeyStability(t *testing.T) {
	type req struct {
		Task  string  `json:"task"`
		CIUse float64 `json:"ci_use"`
	}
	k1, err := canonicalKey("/v1/dse", req{Task: "All kernels", CIUse: 380})
	if err != nil {
		t.Fatal(err)
	}
	k2, err := canonicalKey("/v1/dse", req{Task: "All kernels", CIUse: 380})
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical requests hash differently")
	}
	k3, _ := canonicalKey("/v1/dse", req{Task: "All kernels", CIUse: 381})
	if k1 == k3 {
		t.Fatal("different requests share a hash")
	}
	k4, _ := canonicalKey("/v1/accounting", req{Task: "All kernels", CIUse: 380})
	if k1 == k4 {
		t.Fatal("different routes share a hash")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(8)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%16)
				c.Put(key, resp(key))
				c.Get(key)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Fatalf("Len = %d exceeds capacity 8", c.Len())
	}
}
