package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"cordoba/api"
	"cordoba/internal/job"
)

// surrBody is a 144-point knob grid (24 shapes × 6 cells) with a pinned seed
// and budget: large enough for several NSGA generations, small enough to run
// in milliseconds.
const surrBody = `{"task":"All kernels","search":"surrogate",` +
	`"knobs":{"mac_arrays":[1,2,4,8,16,32],"sram_mb":[1,2,4,8],"vdd_scales":[1.0,0.9,0.8],"nodes":["7nm","10nm"]},` +
	`"surrogate":{"seed":7,"budget":96,"population":8}}`

// TestDSESurrogateSync: the synchronous surrogate path answers with the
// engine's budget accounting and is deterministic across servers under the
// pinned seed.
func TestDSESurrogateSync(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: -1})
	w := do(t, s, "POST", "/v1/dse", surrBody)
	if w.Code != http.StatusOK {
		t.Fatalf("surrogate dse = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[DSEResponse](t, w)
	if resp.Search != "surrogate" || resp.Surrogate == nil {
		t.Fatalf("response not marked surrogate: search=%q surrogate=%+v", resp.Search, resp.Surrogate)
	}
	info := resp.Surrogate
	if info.Seed != 7 || info.Budget != 96 || info.GridPoints != 144 {
		t.Fatalf("info = %+v, want seed 7 budget 96 grid 144", info)
	}
	if info.EvaluationsUsed <= 0 || info.EvaluationsUsed > info.Budget {
		t.Fatalf("evaluations_used = %d, want within (0, %d]", info.EvaluationsUsed, info.Budget)
	}
	if want := float64(info.EvaluationsUsed) / 144; math.Abs(info.EvalFraction-want) > 1e-12 {
		t.Fatalf("eval_fraction = %g, want %g", info.EvalFraction, want)
	}
	if resp.PointsStreamed != info.EvaluationsUsed {
		t.Fatalf("points_streamed = %d, want the %d true evaluations", resp.PointsStreamed, info.EvaluationsUsed)
	}
	if info.Generations <= 0 {
		t.Fatalf("generations = %d, want > 0", info.Generations)
	}
	if info.HypervolumeRatio != nil {
		t.Fatal("quality metrics present without surrogate.oracle")
	}
	if len(resp.Points) == 0 || len(resp.EverOptimal) != len(resp.Points) {
		t.Fatalf("envelope: %d points, %d ids", len(resp.Points), len(resp.EverOptimal))
	}

	// A fresh server (cold memo, no cache) answers byte-identically: the
	// fixed seed pins every stochastic choice.
	s2 := newTestServer(t, Config{CacheSize: -1})
	w2 := do(t, s2, "POST", "/v1/dse", surrBody)
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatalf("same seed, different bytes:\n%s\nvs\n%s", w.Body, w2.Body)
	}
}

// TestDSESurrogateOracle: surrogate.oracle runs the exhaustive engine too
// and reports quality; with the budget covering the whole grid the search
// degrades to the exact envelope, so every metric is perfect.
func TestDSESurrogateOracle(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"task":"All kernels","search":"surrogate",` +
		`"knobs":{"mac_arrays":[1,4,16],"sram_mb":[2,8],"vdd_scales":[1.0,0.9],"nodes":["7nm","10nm"]},` +
		`"surrogate":{"seed":3,"budget":24,"oracle":true}}`
	w := do(t, s, "POST", "/v1/dse", body)
	if w.Code != http.StatusOK {
		t.Fatalf("oracle dse = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[DSEResponse](t, w)
	info := resp.Surrogate
	if info == nil || info.HypervolumeRatio == nil || info.AdditiveEpsilon == nil || info.Coverage == nil {
		t.Fatalf("oracle metrics missing: %+v", info)
	}
	if *info.HypervolumeRatio != 1 || *info.Coverage != 1 || *info.AdditiveEpsilon > 1e-12 {
		t.Fatalf("budget=grid should be exact: hv=%g eps=%g cov=%g",
			*info.HypervolumeRatio, *info.AdditiveEpsilon, *info.Coverage)
	}
	if info.EvaluationsUsed != 24 {
		t.Fatalf("evaluations_used = %d, want the whole 24-point grid", info.EvaluationsUsed)
	}
}

// TestDSESurrogateAutoAboveCap: with no explicit search, a grid above
// -max-grid-points is served by the surrogate engine with the budget clamped
// to the cap — where it used to be a 400.
func TestDSESurrogateAutoAboveCap(t *testing.T) {
	s := newTestServer(t, Config{MaxGridPoints: 16})
	body := `{"task":"All kernels","knobs":{"mac_arrays":[1,2,4,8,16],"sram_mb":[1,2,4,8]}}`
	w := do(t, s, "POST", "/v1/dse", body)
	if w.Code != http.StatusOK {
		t.Fatalf("auto dse above cap = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[DSEResponse](t, w)
	if resp.Search != "surrogate" || resp.Surrogate == nil {
		t.Fatalf("expected auto surrogate, got search=%q", resp.Search)
	}
	if resp.Surrogate.Budget != 16 || resp.Surrogate.EvaluationsUsed > 16 {
		t.Fatalf("budget not clamped to cap: %+v", resp.Surrogate)
	}
}

// TestDSESurrogateValidation pins the 400s for the new fields.
func TestDSESurrogateValidation(t *testing.T) {
	s := newTestServer(t, Config{MaxGridPoints: 64})
	knobs := `"knobs":{"mac_arrays":[1,4],"sram_mb":[2,8]}`
	tests := []struct {
		name, body, wantMsg string
	}{
		{"unknown search",
			`{"task":"All kernels","search":"genetic",` + knobs + `}`,
			"unknown search"},
		{"search without knobs",
			`{"task":"All kernels","search":"surrogate","configs":["a1"]}`,
			"search applies to knob-range requests"},
		{"surrogate without knobs",
			`{"task":"All kernels","surrogate":{"seed":1},"configs":["a1"]}`,
			"surrogate applies to knob-range requests"},
		{"surrogate with exhaustive",
			`{"task":"All kernels","search":"exhaustive","surrogate":{"seed":1},` + knobs + `}`,
			"drop it for exhaustive runs"},
		{"negative budget",
			`{"task":"All kernels","surrogate":{"budget":-1},` + knobs + `}`,
			"surrogate.budget must be non-negative"},
		{"oversized population",
			`{"task":"All kernels","surrogate":{"population":4096},` + knobs + `}`,
			"surrogate.population must be in [0, 1024]"},
		{"negative generations",
			`{"task":"All kernels","surrogate":{"generations":-2},` + knobs + `}`,
			"surrogate.generations must be non-negative"},
		{"surrogate with shard",
			`{"task":"All kernels","search":"surrogate","shard":{"first":0,"count":1},` + knobs + `}`,
			"mutually exclusive"},
		{"surrogate with shards",
			`{"task":"All kernels","surrogate":{"seed":1},"shards":2,` + knobs + `}`,
			"mutually exclusive"},
		{"budget above cap",
			`{"task":"All kernels","surrogate":{"budget":65},` + knobs + `}`,
			"above this server's cap of 64 evaluations"},
		{"oracle above cap",
			`{"task":"All kernels","search":"surrogate","surrogate":{"oracle":true,"budget":8},` +
				`"knobs":{"mac_arrays":[1,2,4,8,16],"sram_mb":[1,2,4,8],"vdd_scales":[1.0,0.9,0.8],"nodes":["7nm","10nm"]}}`,
			"surrogate.oracle also runs the exhaustive engine"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/dse", tt.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", w.Code, w.Body)
			}
			env := decodeBody[errEnvelope](t, w)
			if !strings.Contains(env.Error.Message, tt.wantMsg) {
				t.Fatalf("message %q does not contain %q", env.Error.Message, tt.wantMsg)
			}
		})
	}
}

// TestSurrogateJobLifecycle: the async form routes to the dse-surrogate job
// kind, reports budget-based progress, exposes the surrogate counters, and
// its result is byte-identical to the synchronous endpoint.
func TestSurrogateJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	st := submitJob(t, s, surrBody)
	if st.Kind != "dse-surrogate" {
		t.Fatalf("kind = %q, want dse-surrogate", st.Kind)
	}
	fin := waitJobState(t, s, st.ID, api.JobSucceeded)
	if fin.Progress.EvalsBudget != 96 || fin.Progress.EvalsUsed <= 0 || fin.Progress.EvalsUsed > 96 {
		t.Fatalf("progress = %+v, want evals within (0, 96]", fin.Progress)
	}
	if fin.Progress.Generation <= 0 || fin.Progress.GridPoints != 144 {
		t.Fatalf("progress = %+v, want a generation counter over the 144-point grid", fin.Progress)
	}

	res := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result = %d (body %s)", res.Code, res.Body)
	}
	sync := do(t, s, "POST", "/v1/dse", surrBody)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync dse = %d (body %s)", sync.Code, sync.Body)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatalf("job result differs from the synchronous response:\njob:  %s\nsync: %s", res.Body, sync.Body)
	}

	m := do(t, s, "GET", "/metrics", "")
	for _, want := range []string{
		"cordobad_dse_surrogate_runs_total 2", // the job + the sync run
		"cordobad_dse_surrogate_evaluations_total",
		"cordobad_dse_surrogate_skipped_total",
		"cordobad_dse_surrogate_generations_total",
	} {
		if !strings.Contains(m.Body.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, m.Body)
		}
	}
}

// TestSurrogateJobCrashResume: a surrogate job killed after its second
// per-generation checkpoint resumes on a fresh server and finishes
// byte-identical to an uninterrupted run — the engine's determinism
// guarantee surviving the full job-persistence round trip.
func TestSurrogateJobCrashResume(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestServer(t, Config{JobDir: dir, JobWorkers: 1, CheckpointEvery: 1})
	hit := make(chan struct{})
	s1.Jobs().SetRunner("dse-surrogate", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		return s1.runSurrogateDSEJob(ctx, &interruptAfterRC{RunContext: rc, ctx: ctx, after: 2, hit: hit})
	})

	st := submitJob(t, s1, surrBody)
	select {
	case <-hit:
	case <-time.After(10 * time.Second):
		t.Fatal("surrogate job never reached its second checkpoint")
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("stopping first server: %v", err)
	}

	s2 := newTestServer(t, Config{JobDir: dir, JobWorkers: 1, CheckpointEvery: 1})
	fin := waitJobState(t, s2, st.ID, api.JobSucceeded)
	if fin.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", fin.Resumes)
	}

	res := do(t, s2, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result = %d (body %s)", res.Code, res.Body)
	}
	sync := do(t, s2, "POST", "/v1/dse", surrBody)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync dse = %d", sync.Code)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatalf("resumed surrogate result is not byte-identical to the uninterrupted run:\njob:  %s\nsync: %s",
			res.Body, sync.Body)
	}
}
