package server

import (
	"context"
	"runtime"
)

// Pool bounds the number of design-space evaluations running at once. Each
// admitted evaluation internally fans its per-configuration simulations out
// across EvalWorkers goroutines (dse.EvaluateParallel), so the pool caps
// total evaluation goroutines at roughly Size × EvalWorkers; defaults keep
// that near GOMAXPROCS so a burst of /v1/dse requests queues instead of
// thrashing the scheduler. Waiters are admitted context-aware, so a caller
// that gives up (timeout, disconnect) leaves the queue immediately.
type Pool struct {
	sem     chan struct{}
	workers int
	metrics *Metrics
}

// DefaultPoolSize is the default number of concurrently admitted
// evaluations. The BenchmarkEvaluateParallel sweep (bench_test.go) shows
// per-evaluation speedup flattening past ~4 workers on the 121-point grid,
// so the default splits GOMAXPROCS into a few moderately parallel
// evaluations rather than one maximally parallel one.
func DefaultPoolSize() int {
	n := runtime.GOMAXPROCS(0) / defaultEvalWorkers
	if n < 1 {
		n = 1
	}
	return n
}

const defaultEvalWorkers = 4

// DefaultEvalWorkers is the per-evaluation fan-out used when the daemon is
// started without an explicit -eval-workers.
func DefaultEvalWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n > defaultEvalWorkers {
		n = defaultEvalWorkers
	}
	return n
}

// NewPool returns a pool admitting size concurrent evaluations of workers
// goroutines each; non-positive arguments select the defaults.
func NewPool(size, workers int, m *Metrics) *Pool {
	if size < 1 {
		size = DefaultPoolSize()
	}
	if workers < 1 {
		workers = DefaultEvalWorkers()
	}
	return &Pool{sem: make(chan struct{}, size), workers: workers, metrics: m}
}

// Size returns the pool capacity.
func (p *Pool) Size() int { return cap(p.sem) }

// Workers returns the per-evaluation goroutine fan-out.
func (p *Pool) Workers() int { return p.workers }

// Acquire blocks until an evaluation slot is free or ctx is done.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		p.metrics.evalInflight.Add(1)
		return nil
	default:
	}
	p.metrics.evalWaiting.Add(1)
	defer p.metrics.evalWaiting.Add(-1)
	select {
	case p.sem <- struct{}{}:
		p.metrics.evalInflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired with Acquire.
func (p *Pool) Release() {
	p.metrics.evalInflight.Add(-1)
	<-p.sem
}
