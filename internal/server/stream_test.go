package server

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"cordoba"
)

// knobBody is a small but non-trivial knob grid: 3×2×2×2 = 24 points across
// two technology nodes and two DVFS points.
const knobBody = `{"task":"All kernels","fab":"taiwan","ci_use":200,` +
	`"knobs":{"mac_arrays":[1,8,32],"sram_mb":[2,16],"vdd_scales":[0.8,1.0],"nodes":["7nm","10nm"]},` +
	`"sweep":{"lo":1,"hi":1e10,"points":7}}`

// TestDSEKnobsMatchesNaiveGrid holds the knob-range streaming path of
// POST /v1/dse equal to materializing the same grid through the v1 engine.
func TestDSEKnobsMatchesNaiveGrid(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/dse", knobBody)
	if w.Code != http.StatusOK {
		t.Fatalf("dse knobs = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[DSEResponse](t, w)

	task, err := cordoba.PaperTask(cordoba.TaskAllKernels)
	if err != nil {
		t.Fatal(err)
	}
	g := cordoba.KnobGrid{
		MACArrays: []int{1, 8, 32},
		SRAMMB:    []float64{2, 16},
		VDDScales: []float64{0.8, 1.0},
		Nodes:     []string{"7nm", "10nm"},
	}
	space, err := cordoba.ExploreGridNaive(task, g, cordoba.FabTaiwan, 200)
	if err != nil {
		t.Fatal(err)
	}
	env := space.EverOptimal()

	if resp.PointsStreamed != g.Size() {
		t.Fatalf("points_streamed = %d, want %d", resp.PointsStreamed, g.Size())
	}
	if want := g.Size() - int64(len(env)); resp.PointsPruned != want {
		t.Fatalf("points_pruned = %d, want %d", resp.PointsPruned, want)
	}
	if want := 1 - float64(len(env))/float64(g.Size()); resp.EliminatedFraction != want {
		t.Fatalf("eliminated_fraction = %g, want %g", resp.EliminatedFraction, want)
	}

	// Points carries only the survivors, in envelope order (ascending E·D).
	if len(resp.Points) != len(env) {
		t.Fatalf("got %d points, want the %d survivors", len(resp.Points), len(env))
	}
	wantIDs := space.IDs(env)
	if fmt.Sprint(resp.EverOptimal) != fmt.Sprint(wantIDs) {
		t.Fatalf("ever_optimal = %v, want %v", resp.EverOptimal, wantIDs)
	}
	for i, idx := range env {
		p, got := space.Points[idx], resp.Points[i]
		if got.ID != p.Config.ID ||
			math.Abs(got.DelayS-p.Delay.Seconds()) > 1e-12 ||
			math.Abs(got.EnergyJ-p.Energy.Joules()) > 1e-12 ||
			math.Abs(got.EmbodiedG-p.Embodied.Grams()) > 1e-9 {
			t.Fatalf("survivor %d = %+v, want %+v", i, got, p)
		}
	}

	// The sweep optima agree with the brute force over the full grid, and
	// the mean covers the whole grid, not just the survivors.
	if len(resp.Sweep) != 7 {
		t.Fatalf("sweep has %d entries, want 7", len(resp.Sweep))
	}
	for _, e := range resp.Sweep {
		opt := space.OptimalAt(e.Inferences)
		if e.OptimalID != space.Points[opt].Config.ID {
			t.Fatalf("sweep at N=%g optimal = %q, want %q",
				e.Inferences, e.OptimalID, space.Points[opt].Config.ID)
		}
		if want := space.MeanTCDPAt(e.Inferences); math.Abs(e.MeanTCDPGS-want) > 1e-9*want {
			t.Fatalf("sweep at N=%g mean tCDP = %g, want %g", e.Inferences, e.MeanTCDPGS, want)
		}
	}

	// Process echoes the explored node axis.
	if resp.Process != "7nm,10nm" {
		t.Fatalf("process = %q, want the node list", resp.Process)
	}
}

// TestDSEKnobsCachedAndMetered: a repeated knob request is a byte-identical
// cache hit, and the streaming counters and memo gauges surface in /metrics.
func TestDSEKnobsCachedAndMetered(t *testing.T) {
	s := newTestServer(t, Config{})
	w1 := do(t, s, "POST", "/v1/dse", knobBody)
	if w1.Code != http.StatusOK {
		t.Fatalf("first dse knobs = %d: %s", w1.Code, w1.Body)
	}
	w2 := do(t, s, "POST", "/v1/dse", knobBody)
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if w1.Body.String() != w2.Body.String() {
		t.Fatal("cache hit is not byte-identical")
	}

	streamed, pruned := s.Metrics().DSEStreamCounts()
	if streamed != 24 {
		t.Fatalf("streamed counter = %d, want 24", streamed)
	}
	if pruned <= 0 || pruned >= streamed {
		t.Fatalf("pruned counter = %d, want within (0, %d)", pruned, streamed)
	}
	if s.Memo().Len() == 0 {
		t.Fatal("shared memo cache is empty after a knob-grid request")
	}

	m := do(t, s, "GET", "/metrics", "")
	for _, want := range []string{
		"cordobad_dse_points_streamed_total 24",
		fmt.Sprintf("cordobad_dse_points_pruned_total %d", pruned),
		"cordobad_memo_hits_total",
		"cordobad_memo_misses_total",
		fmt.Sprintf("cordobad_memo_entries %d", s.Memo().Len()),
	} {
		if !strings.Contains(m.Body.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, m.Body)
		}
	}
}

func TestDSEKnobsErrors(t *testing.T) {
	s := newTestServer(t, Config{MaxGridPoints: 16})
	tests := []struct {
		name    string
		body    string
		wantMsg string
	}{
		{"knobs and set",
			`{"task":"All kernels","set":"grid","knobs":{"mac_arrays":[1],"sram_mb":[2]}}`,
			"fields set, knobs are mutually exclusive"},
		{"knobs and configs",
			`{"task":"All kernels","configs":["a1"],"knobs":{"mac_arrays":[1],"sram_mb":[2]}}`,
			"fields configs, knobs are mutually exclusive"},
		{"empty axes",
			`{"task":"All kernels","knobs":{"mac_arrays":[],"sram_mb":[2]}}`,
			"non-empty mac_arrays and sram_mb"},
		{"over the grid cap",
			`{"task":"All kernels","search":"exhaustive","knobs":{"mac_arrays":[1,2,4,8,16],"sram_mb":[1,2,4,8]}}`,
			"above this server's cap of 16"},
		{"unknown node",
			`{"task":"All kernels","knobs":{"mac_arrays":[1],"sram_mb":[2],"nodes":["1nm"]}}`,
			"unknown technology node"},
		{"vdd below threshold",
			`{"task":"All kernels","knobs":{"mac_arrays":[1],"sram_mb":[2],"vdd_scales":[0.1]}}`,
			""},
		{"negative knob",
			`{"task":"All kernels","knobs":{"mac_arrays":[-4],"sram_mb":[2]}}`,
			""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := do(t, s, "POST", "/v1/dse", tt.body)
			if w.Code != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body %s)", w.Code, w.Body)
			}
			env := decodeBody[errEnvelope](t, w)
			if env.Error.Status != http.StatusBadRequest || env.Error.Message == "" {
				t.Fatalf("bad error envelope: %s", w.Body)
			}
			if tt.wantMsg != "" && !strings.Contains(env.Error.Message, tt.wantMsg) {
				t.Fatalf("message %q does not contain %q", env.Error.Message, tt.wantMsg)
			}
		})
	}
}

// TestDSEKnobsDefaultNodeFollowsProcess: with no nodes axis, the grid
// explores the request's scalar process.
func TestDSEKnobsDefaultNodeFollowsProcess(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/dse",
		`{"task":"All kernels","process":"5nm","knobs":{"mac_arrays":[1,8],"sram_mb":[2]}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("dse knobs = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[DSEResponse](t, w)
	if resp.Process != "5nm" {
		t.Fatalf("process = %q, want 5nm", resp.Process)
	}
	if resp.PointsStreamed != 2 {
		t.Fatalf("points_streamed = %d, want 2", resp.PointsStreamed)
	}
}
