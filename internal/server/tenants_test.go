package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cordoba"
	"cordoba/api"
	"cordoba/internal/job"
)

// writeTenantFile drops a key file into a temp dir and returns its path.
func writeTenantFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// doAuth is do with an API key attached as a bearer token.
func doAuth(t *testing.T, s *Server, method, path, body, key string) *httptest.ResponseRecorder {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// TestAuthEnforced: with a key file that does not admit anonymous callers,
// missing and unknown keys are clean 401s with the unauthorized code, valid
// keys resolve to their tenant, and /healthz + /metrics stay public.
func TestAuthEnforced(t *testing.T) {
	file := writeTenantFile(t, `{"tenants":[
		{"name":"acme","key":"acme-key","weight":4,"max_queued_jobs":7,"max_grid_points":100}
	]}`)
	s := newTestServer(t, Config{TenantFile: file})

	for _, key := range []string{"", "wrong-key"} {
		w := doAuth(t, s, "GET", "/v1/tenant", "", key)
		if w.Code != http.StatusUnauthorized {
			t.Fatalf("key %q = %d, want 401 (body %s)", key, w.Code, w.Body)
		}
		if env := decodeBody[errEnvelope](t, w); env.Error.Code != "unauthorized" {
			t.Fatalf("code = %q, want unauthorized", env.Error.Code)
		}
	}

	w := doAuth(t, s, "GET", "/v1/tenant", "", "acme-key")
	if w.Code != http.StatusOK {
		t.Fatalf("valid key = %d (body %s)", w.Code, w.Body)
	}
	ts := decodeBody[TenantStatus](t, w)
	if ts.Tenant.Name != "acme" || ts.Tenant.Weight != 4 || ts.Tenant.MaxQueuedJobs != 7 {
		t.Fatalf("tenant = %+v", ts.Tenant)
	}
	if ts.Quota.QueuedJobs != 0 || ts.Quota.MaxGridPoints != 100 {
		t.Fatalf("quota = %+v", ts.Quota)
	}

	// X-API-Key is the fallback header for clients that can't set a bearer.
	req := httptest.NewRequest("GET", "/v1/tenant", nil)
	req.Header.Set("X-API-Key", "acme-key")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("X-API-Key = %d, want 200", rec.Code)
	}

	// Probes and scrapers carry no keys; those routes bypass auth.
	for _, path := range []string{"/healthz", "/metrics"} {
		if w := do(t, s, "GET", path, ""); w.Code != http.StatusOK {
			t.Fatalf("GET %s unauthenticated = %d, want 200", path, w.Code)
		}
	}
}

// TestAuthAnonymousAdmitted: allow_anonymous serves keyless requests as the
// anonymous tenant under its configured limits.
func TestAuthAnonymousAdmitted(t *testing.T) {
	file := writeTenantFile(t, `{"allow_anonymous":true,
		"anonymous":{"max_grid_points":5},
		"tenants":[{"name":"acme","key":"acme-key"}]}`)
	s := newTestServer(t, Config{TenantFile: file})

	w := do(t, s, "GET", "/v1/tenant", "")
	if w.Code != http.StatusOK {
		t.Fatalf("anonymous = %d (body %s)", w.Code, w.Body)
	}
	ts := decodeBody[TenantStatus](t, w)
	if ts.Tenant.Name != "anonymous" || ts.Tenant.MaxGridPoints != 5 {
		t.Fatalf("tenant = %+v", ts.Tenant)
	}
}

// TestTenantOpenMode: with no key file, every caller is the unlimited
// anonymous tenant — the single-tenant daemon's behavior.
func TestTenantOpenMode(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := decodeBody[TenantStatus](t, do(t, s, "GET", "/v1/tenant", ""))
	if ts.Tenant.Name != "anonymous" || ts.Tenant.Weight != 1 {
		t.Fatalf("tenant = %+v", ts.Tenant)
	}
	if ts.Tenant.MaxQueuedJobs != 0 || ts.Tenant.MaxGridPoints != 0 || ts.Tenant.RatePerSec != 0 {
		t.Fatalf("open-mode tenant has limits: %+v", ts.Tenant)
	}
}

// TestRateLimit429: a tenant with burst 1 gets its second immediate request
// rejected with 429, the quota_exceeded code, and a Retry-After hint.
func TestRateLimit429(t *testing.T) {
	file := writeTenantFile(t, `{"tenants":[
		{"name":"zeta","key":"zeta-key","rate_per_sec":0.5,"burst":1}
	]}`)
	s := newTestServer(t, Config{TenantFile: file})

	if w := doAuth(t, s, "GET", "/v1/tenant", "", "zeta-key"); w.Code != http.StatusOK {
		t.Fatalf("first request = %d (body %s)", w.Code, w.Body)
	}
	w := doAuth(t, s, "GET", "/v1/tenant", "", "zeta-key")
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429 (body %s)", w.Code, w.Body)
	}
	if env := decodeBody[errEnvelope](t, w); env.Error.Code != "quota_exceeded" {
		t.Fatalf("code = %q, want quota_exceeded", env.Error.Code)
	}
	ra, err := strconv.Atoi(w.Header().Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive whole-second hint", w.Header().Get("Retry-After"))
	}
}

// TestQuotaGridPoints: a submission whose grid would push the tenant past
// max_grid_points is rejected synchronously with 429 quota_exceeded.
func TestQuotaGridPoints(t *testing.T) {
	file := writeTenantFile(t, `{"allow_anonymous":true,
		"anonymous":{"max_grid_points":5},
		"tenants":[{"name":"acme","key":"acme-key"}]}`)
	s := newTestServer(t, Config{TenantFile: file})

	// jobsBody is a 12-point grid; anonymous is capped at 5.
	w := do(t, s, "POST", "/v1/jobs", jobsBody)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit = %d, want 429 (body %s)", w.Code, w.Body)
	}
	env := decodeBody[errEnvelope](t, w)
	if env.Error.Code != "quota_exceeded" || !strings.Contains(env.Error.Message, "grid points") {
		t.Fatalf("envelope = %+v", env.Error)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("missing Retry-After on quota rejection")
	}

	// The uncapped keyed tenant submits the same grid fine.
	if w := doAuth(t, s, "POST", "/v1/jobs", jobsBody, "acme-key"); w.Code != http.StatusAccepted {
		t.Fatalf("acme submit = %d, want 202 (body %s)", w.Code, w.Body)
	}
	if !strings.Contains(do(t, s, "GET", "/metrics", "").Body.String(), "cordobad_jobs_quota_rejected_total 1") {
		t.Fatal("/metrics missing the quota rejection count")
	}
}

// TestJobSubmitPriorityInvalid: an unknown priority is a synchronous 400
// with the priority_invalid code, never a queued job.
func TestJobSubmitPriorityInvalid(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/jobs",
		`{"task":"All kernels","knobs":{"mac_arrays":[1]},"priority":"urgent"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("submit = %d, want 400 (body %s)", w.Code, w.Body)
	}
	if env := decodeBody[errEnvelope](t, w); env.Error.Code != "priority_invalid" {
		t.Fatalf("code = %q, want priority_invalid", env.Error.Code)
	}
	if list := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs", "")); len(list.Jobs) != 0 {
		t.Fatalf("invalid submission created a job: %+v", list)
	}
}

// TestTenantMetricsGauges: a keyed tenant's running job shows up in the
// per-tenant population and grid-point gauges.
func TestTenantMetricsGauges(t *testing.T) {
	file := writeTenantFile(t, `{"allow_anonymous":true,
		"tenants":[{"name":"acme","key":"acme-key"}]}`)
	s := newTestServer(t, Config{TenantFile: file, JobWorkers: 1})
	gate := make(chan struct{})
	s.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return json.RawMessage("{}\n"), nil
	})
	defer close(gate)

	w := doAuth(t, s, "POST", "/v1/jobs", jobsBody, "acme-key")
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d (body %s)", w.Code, w.Body)
	}
	st := decodeBody[api.JobStatus](t, w)
	if st.Tenant != "acme" {
		t.Fatalf("job tenant = %q, want acme", st.Tenant)
	}
	waitJobState(t, s, st.ID, api.JobRunning)

	m := do(t, s, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		`cordobad_tenant_jobs{tenant="acme",state="running"} 1`,
		`cordobad_tenant_grid_points_in_flight{tenant="acme"} 12`,
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, m)
		}
	}
}

// TestDeferrableSubmission pins the server's launch-window deferral to the
// library: a deferrable job against the monotonically declining decarb-ramp
// trace is held for the window FindLaunchWindow picks, and reports exactly
// the carbon that deferral avoids.
func TestDeferrableSubmission(t *testing.T) {
	s := newTestServer(t, Config{})
	const deadline = 3600.0
	before := time.Now().UTC()
	st := submitJob(t, s,
		`{"task":"All kernels","knobs":{"mac_arrays":[1,2,4],"sram_mb":[1,2],"vdd_scales":[1.0,0.9]},`+
			`"priority":"deferrable","defer_deadline_s":3600}`)
	after := time.Now().UTC()

	if st.Priority != api.PriorityDeferrable || st.State != api.JobQueued {
		t.Fatalf("status = %+v, want queued deferrable", st)
	}
	if st.NotBefore == nil {
		t.Fatal("deferrable job has no launch window")
	}
	if st.CO2AvoidedG <= 0 {
		t.Fatalf("co2_avoided_g = %g, want > 0 against a declining trace", st.CO2AvoidedG)
	}

	// The same window search, run directly against the daemon's region trace.
	plan, err := cordoba.FindLaunchWindow(s.traces[s.cfg.RegionTrace], cordoba.WindowRequest{
		Duration: cordoba.Time(deferDurationS),
		Power:    cordoba.Power(deferPowerW),
		Deadline: cordoba.Time(deadline),
	})
	if err != nil {
		t.Fatal(err)
	}
	wantAvoided := plan.Immediate.Carbon.Grams() - plan.Best.Carbon.Grams()
	if math.Abs(st.CO2AvoidedG-wantAvoided) > 1e-9 {
		t.Fatalf("co2_avoided_g = %g, want %g (the direct window search)", st.CO2AvoidedG, wantAvoided)
	}
	startOffset := time.Duration(plan.Best.Start.Seconds() * float64(time.Second))
	lo, hi := before.Add(startOffset), after.Add(startOffset).Add(time.Second)
	if st.NotBefore.Before(lo) || st.NotBefore.After(hi) {
		t.Fatalf("not_before = %v, want within [%v, %v]", st.NotBefore, lo, hi)
	}

	// The held job is visible under its priority filter and in /metrics.
	list := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs?priority=deferrable", ""))
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("priority=deferrable list = %+v", list)
	}
	if list := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs?priority=interactive", "")); len(list.Jobs) != 0 {
		t.Fatalf("priority=interactive list = %+v", list)
	}
	m := do(t, s, "GET", "/metrics", "").Body.String()
	if !strings.Contains(m, "cordobad_jobs_deferred_total 1") {
		t.Fatalf("/metrics missing the deferral count:\n%s", m)
	}
	var avoided float64
	for _, line := range strings.Split(m, "\n") {
		if rest, ok := strings.CutPrefix(line, "cordobad_jobs_co2_avoided_grams "); ok {
			avoided, _ = strconv.ParseFloat(rest, 64)
		}
	}
	if math.Abs(avoided-wantAvoided) > 1e-6 {
		t.Fatalf("metrics co2 avoided = %g, want %g", avoided, wantAvoided)
	}

	if w := do(t, s, "DELETE", "/v1/jobs/"+st.ID, ""); w.Code != http.StatusOK {
		t.Fatalf("cancel = %d", w.Code)
	}
}

// TestJobListPagination walks a five-job listing in pages of two and checks
// the filters: stable cursors, no overlap or loss, newest-first order.
func TestJobListPagination(t *testing.T) {
	s := newTestServer(t, Config{})
	ids := make(map[string]bool)
	for i := 0; i < 5; i++ {
		st := submitJob(t, s, jobsBody)
		ids[st.ID] = true
		waitJobState(t, s, st.ID, api.JobSucceeded)
	}

	var (
		seen   = make(map[string]bool)
		cursor string
		pages  int
	)
	var prev api.JobStatus
	for {
		path := "/v1/jobs?limit=2"
		if cursor != "" {
			path += "&cursor=" + cursor
		}
		w := do(t, s, "GET", path, "")
		if w.Code != http.StatusOK {
			t.Fatalf("page %d = %d (body %s)", pages, w.Code, w.Body)
		}
		page := decodeBody[api.JobList](t, w)
		pages++
		for _, j := range page.Jobs {
			if seen[j.ID] {
				t.Fatalf("job %s appeared on two pages", j.ID)
			}
			seen[j.ID] = true
			if prev.ID != "" && j.CreatedAt.After(prev.CreatedAt) {
				t.Fatalf("listing out of order: %s (%v) after %s (%v)", j.ID, j.CreatedAt, prev.ID, prev.CreatedAt)
			}
			prev = j
		}
		if page.NextCursor == "" {
			if len(page.Jobs) > 2 {
				t.Fatalf("final page has %d jobs, limit was 2", len(page.Jobs))
			}
			break
		}
		cursor = page.NextCursor
	}
	if pages != 3 || len(seen) != 5 {
		t.Fatalf("walked %d pages, %d jobs; want 3 pages over 5 jobs", pages, len(seen))
	}
	for id := range ids {
		if !seen[id] {
			t.Fatalf("job %s lost between pages", id)
		}
	}

	// Filters: all five succeeded; none queued; the empty priority counts as
	// batch on both sides of the filter.
	if l := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs?state=succeeded", "")); len(l.Jobs) != 5 {
		t.Fatalf("state=succeeded = %d jobs, want 5", len(l.Jobs))
	}
	if l := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs?state=queued", "")); len(l.Jobs) != 0 {
		t.Fatalf("state=queued = %d jobs, want 0", len(l.Jobs))
	}
	if l := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs?priority=batch", "")); len(l.Jobs) != 5 {
		t.Fatalf("priority=batch = %d jobs, want 5", len(l.Jobs))
	}

	// Bad queries are clean 400s.
	for path, code := range map[string]string{
		"/v1/jobs?state=bogus":     "invalid_request",
		"/v1/jobs?priority=bogus":  "priority_invalid",
		"/v1/jobs?limit=0":         "invalid_request",
		"/v1/jobs?limit=x":         "invalid_request",
		"/v1/jobs?cursor=%21%21":   "invalid_request", // not base64
		"/v1/jobs?cursor=Z29vZA==": "invalid_request", // base64 but no separator
	} {
		w := do(t, s, "GET", path, "")
		if w.Code != http.StatusBadRequest {
			t.Fatalf("GET %s = %d, want 400 (body %s)", path, w.Code, w.Body)
		}
		if env := decodeBody[errEnvelope](t, w); env.Error.Code != code {
			t.Fatalf("GET %s code = %q, want %q", path, env.Error.Code, code)
		}
	}
}

// parseSSE splits an SSE body into events, checking each frame's id and
// event fields agree with the decoded JSON payload.
func parseSSE(t *testing.T, body string) []api.JobEvent {
	t.Helper()
	var evs []api.JobEvent
	for _, block := range strings.Split(body, "\n\n") {
		if strings.TrimSpace(block) == "" {
			continue
		}
		var id, typ, data string
		for _, line := range strings.Split(block, "\n") {
			if rest, ok := strings.CutPrefix(line, "id: "); ok {
				id = rest
			} else if rest, ok := strings.CutPrefix(line, "event: "); ok {
				typ = rest
			} else if rest, ok := strings.CutPrefix(line, "data: "); ok {
				data = rest
			}
		}
		var ev api.JobEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			t.Fatalf("bad SSE data %q: %v", data, err)
		}
		if id != strconv.FormatInt(ev.Seq, 10) || typ != ev.Type {
			t.Fatalf("frame fields (id %s, event %s) disagree with payload %+v", id, typ, ev)
		}
		evs = append(evs, ev)
	}
	return evs
}

// TestJobEventsLive streams a job's lifecycle over a real HTTP connection:
// snapshot first, progress and checkpoint frames while it runs, the done
// frame last, sequence numbers strictly increasing throughout. The runner
// holds at a gate until the stream is attached, so every frame after the
// snapshot is observed live, not replayed.
func TestJobEventsLive(t *testing.T) {
	s := newTestServer(t, Config{})
	gate := make(chan struct{})
	s.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if err := rc.SaveCheckpoint(json.RawMessage(`{"cursor":1}`)); err != nil {
			return nil, err
		}
		rc.ReportProgress(job.Progress{GridPoints: 12, Streamed: 6})
		return json.RawMessage("{}\n"), nil
	})
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	st := submitJob(t, s, jobsBody)
	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// Headers received means Watch is registered; release the runner.
	close(gate)

	type result struct {
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		b, err := io.ReadAll(bufio.NewReader(resp.Body))
		done <- result{b, err}
	}()
	var body []byte
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		body = r.body
	case <-time.After(10 * time.Second):
		t.Fatal("event stream never closed")
	}

	evs := parseSSE(t, string(body))
	if len(evs) < 3 {
		t.Fatalf("got %d events, want at least snapshot + progress + done:\n%s", len(evs), body)
	}
	if evs[0].Type != api.EventState {
		t.Fatalf("first event = %q, want the state snapshot", evs[0].Type)
	}
	last := evs[len(evs)-1]
	if last.Type != api.EventDone || last.Job.State != api.JobSucceeded {
		t.Fatalf("last event = %+v, want done/succeeded", last)
	}
	types := make(map[string]bool)
	for i, ev := range evs {
		types[ev.Type] = true
		if i > 0 && ev.Seq <= evs[i-1].Seq {
			t.Fatalf("seq not increasing: %d after %d", ev.Seq, evs[i-1].Seq)
		}
	}
	if !types[api.EventProgress] || !types[api.EventCheckpoint] {
		t.Fatalf("event types seen = %v, want progress and checkpoint frames", types)
	}

	// Resuming past the terminal seq replays nothing: the stream closes clean
	// with an empty body.
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/events?after=" + strconv.FormatInt(last.Seq, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	b2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK || strings.Contains(string(b2), "data:") {
		t.Fatalf("resume past terminal = %d %q, want 200 with no frames", resp2.StatusCode, b2)
	}
}

// TestJobEventsTerminal: watching an already-finished job yields exactly one
// done frame through the plain recorder path.
func TestJobEventsTerminal(t *testing.T) {
	s := newTestServer(t, Config{})
	st := submitJob(t, s, jobsBody)
	waitJobState(t, s, st.ID, api.JobSucceeded)

	w := do(t, s, "GET", "/v1/jobs/"+st.ID+"/events", "")
	if w.Code != http.StatusOK {
		t.Fatalf("events = %d (body %s)", w.Code, w.Body)
	}
	evs := parseSSE(t, w.Body.String())
	if len(evs) != 1 || evs[0].Type != api.EventDone || evs[0].Job.State != api.JobSucceeded {
		t.Fatalf("terminal watch = %+v, want one done/succeeded frame", evs)
	}
}

// TestJobEventsErrors: unknown jobs 404, malformed resume positions 400.
func TestJobEventsErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(t, s, "GET", "/v1/jobs/nope/events", ""); w.Code != http.StatusNotFound {
		t.Fatalf("unknown job events = %d, want 404", w.Code)
	}
	st := submitJob(t, s, jobsBody)
	for _, q := range []string{"?after=-1", "?after=abc"} {
		if w := do(t, s, "GET", "/v1/jobs/"+st.ID+"/events"+q, ""); w.Code != http.StatusBadRequest {
			t.Fatalf("events%s = %d, want 400", q, w.Code)
		}
	}
}
