package server

import (
	"strings"
	"testing"
)

func TestMetricsHistogramBuckets(t *testing.T) {
	m := NewMetrics(4)
	m.ObserveRequest("/x", 200, 0.0001) // first bucket
	m.ObserveRequest("/x", 200, 0.03)   // mid bucket
	m.ObserveRequest("/x", 500, 42)     // +Inf bucket

	var sb strings.Builder
	if err := m.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`cordobad_requests_total{route="/x",code="200"} 2`,
		`cordobad_requests_total{route="/x",code="500"} 1`,
		`cordobad_request_duration_seconds_bucket{route="/x",le="0.0005"} 1`,
		`cordobad_request_duration_seconds_bucket{route="/x",le="0.05"} 2`,
		`cordobad_request_duration_seconds_bucket{route="/x",le="10"} 2`,
		`cordobad_request_duration_seconds_bucket{route="/x",le="+Inf"} 3`,
		`cordobad_request_duration_seconds_count{route="/x"} 3`,
		"cordobad_pool_size 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestMetricsBucketsAreCumulative(t *testing.T) {
	m := NewMetrics(1)
	for i := 0; i < 50; i++ {
		m.ObserveRequest("/y", 200, 0.002) // all land in the le=0.005 bucket
	}
	var sb strings.Builder
	if err := m.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Every bucket at or above 0.005 must report the full count.
	for _, le := range []string{"0.005", "0.5", "10", "+Inf"} {
		want := `cordobad_request_duration_seconds_bucket{route="/y",le="` + le + `"} 50`
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, `le="0.001"} 50`) {
		t.Error("lower bucket wrongly includes slower observations")
	}
}

func TestMetricsConcurrentObserve(t *testing.T) {
	m := NewMetrics(1)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				m.ObserveRequest("/z", 200, 0.01)
				m.CacheHit()
				m.CacheMiss()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	var sb strings.Builder
	if err := m.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `cordobad_requests_total{route="/z",code="200"} 4000`) {
		t.Fatalf("lost observations under concurrency:\n%s", sb.String())
	}
	hits, misses := m.CacheCounts()
	if hits != 4000 || misses != 4000 {
		t.Fatalf("cache counts = (%d, %d), want (4000, 4000)", hits, misses)
	}
}
