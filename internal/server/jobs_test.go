package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"cordoba/api"
	"cordoba/internal/job"
)

// jobsBody is a small knob-range request: 6 shapes × 2 cells, enough for
// several per-shape checkpoints while staying fast.
const jobsBody = `{"task":"All kernels","knobs":{"mac_arrays":[1,2,4],"sram_mb":[1,2],"vdd_scales":[1.0,0.9]}}`

func submitJob(t *testing.T, s *Server, body string) api.JobStatus {
	t.Helper()
	w := do(t, s, "POST", "/v1/jobs", body)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202 (body %s)", w.Code, w.Body)
	}
	return decodeBody[api.JobStatus](t, w)
}

func waitJobState(t *testing.T, s *Server, id string, want api.JobState) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		w := do(t, s, "GET", "/v1/jobs/"+id, "")
		if w.Code != http.StatusOK {
			t.Fatalf("status fetch = %d (body %s)", w.Code, w.Body)
		}
		st := decodeBody[api.JobStatus](t, w)
		if st.State == want {
			return st
		}
		if st.State.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.State, st.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestJobLifecycle submits an async DSE job and checks the full happy path:
// 202 on submit, succeeded status with sane progress, a result byte-identical
// to the synchronous endpoint, and the listing knowing the job.
func TestJobLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	st := submitJob(t, s, jobsBody)
	if st.Kind != "dse" || st.ID == "" {
		t.Fatalf("submit status = %+v", st)
	}

	fin := waitJobState(t, s, st.ID, api.JobSucceeded)
	if !fin.HasResult {
		t.Fatalf("succeeded job has no result: %+v", fin)
	}
	if fin.Progress.Streamed != 12 || fin.Progress.ShapesDone != 6 || fin.Progress.ShapesTotal != 6 {
		t.Fatalf("progress = %+v, want 12 streamed over 6/6 shapes", fin.Progress)
	}
	if fin.Progress.GridPoints != 12 {
		t.Fatalf("grid points = %d, want 12", fin.Progress.GridPoints)
	}

	res := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result = %d (body %s)", res.Code, res.Body)
	}
	sync := do(t, s, "POST", "/v1/dse", jobsBody)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync dse = %d (body %s)", sync.Code, sync.Body)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatalf("job result differs from the synchronous response:\njob:  %s\nsync: %s", res.Body, sync.Body)
	}

	list := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs", ""))
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("job list = %+v", list)
	}

	m := do(t, s, "GET", "/metrics", "")
	for _, want := range []string{
		"cordobad_jobs_submitted_total 1",
		`cordobad_jobs_finished_total{state="succeeded"} 1`,
		"cordobad_jobs_checkpoints_total",
	} {
		if !strings.Contains(m.Body.String(), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, m.Body)
		}
	}
}

// TestJobSubmitInvalid: validation runs at submission, so a bad body is a
// synchronous 400, never a failed job.
func TestJobSubmitInvalid(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/jobs", `{"task":"bogus"}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("submit bad task = %d, want 400 (body %s)", w.Code, w.Body)
	}
	env := decodeBody[errEnvelope](t, w)
	if env.Error.Code != "invalid_request" {
		t.Fatalf("code = %q, want invalid_request", env.Error.Code)
	}
	if list := decodeBody[api.JobList](t, do(t, s, "GET", "/v1/jobs", "")); len(list.Jobs) != 0 {
		t.Fatalf("invalid submission created a job: %+v", list)
	}
}

// TestJobQueueFull: with one worker busy and the queue at depth, the next
// submission is rejected with 429, a queue_full code, and a Retry-After hint.
func TestJobQueueFull(t *testing.T) {
	s := newTestServer(t, Config{JobWorkers: 1, JobQueue: 1})
	gate := make(chan struct{})
	s.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return json.RawMessage("{}\n"), nil
	})
	defer close(gate)

	running := submitJob(t, s, jobsBody)
	waitJobState(t, s, running.ID, api.JobRunning)
	submitJob(t, s, jobsBody) // fills the queue

	w := do(t, s, "POST", "/v1/jobs", jobsBody)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429 (body %s)", w.Code, w.Body)
	}
	env := decodeBody[errEnvelope](t, w)
	if env.Error.Code != "queue_full" {
		t.Fatalf("code = %q, want queue_full", env.Error.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("Retry-After = %q, want a positive hint", ra)
	}
	if !strings.Contains(do(t, s, "GET", "/metrics", "").Body.String(), "cordobad_jobs_rejected_total 1") {
		t.Fatal("/metrics missing the rejection count")
	}
}

// TestJobCancel cancels a running job and checks the result endpoint's
// job_canceled conflict.
func TestJobCancel(t *testing.T) {
	s := newTestServer(t, Config{})
	s.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})

	st := submitJob(t, s, jobsBody)
	waitJobState(t, s, st.ID, api.JobRunning)
	if w := do(t, s, "DELETE", "/v1/jobs/"+st.ID, ""); w.Code != http.StatusOK {
		t.Fatalf("cancel = %d (body %s)", w.Code, w.Body)
	}
	waitJobState(t, s, st.ID, api.JobCanceled)

	w := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("result of canceled job = %d, want 409 (body %s)", w.Code, w.Body)
	}
	if env := decodeBody[errEnvelope](t, w); env.Error.Code != "job_canceled" {
		t.Fatalf("code = %q, want job_canceled", env.Error.Code)
	}
}

// TestJobResultNotReady: fetching the result of a still-running job is a 409
// not_ready; unknown IDs are clean 404 not_found.
func TestJobResultNotReady(t *testing.T) {
	s := newTestServer(t, Config{})
	gate := make(chan struct{})
	s.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return json.RawMessage("{}\n"), nil
	})
	defer close(gate)

	st := submitJob(t, s, jobsBody)
	waitJobState(t, s, st.ID, api.JobRunning)
	w := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("result of running job = %d, want 409 (body %s)", w.Code, w.Body)
	}
	if env := decodeBody[errEnvelope](t, w); env.Error.Code != "not_ready" {
		t.Fatalf("code = %q, want not_ready", env.Error.Code)
	}

	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result"} {
		w := do(t, s, "GET", path, "")
		if w.Code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, w.Code)
		}
		if env := decodeBody[errEnvelope](t, w); env.Error.Code != "not_found" {
			t.Fatalf("code = %q, want not_found", env.Error.Code)
		}
	}
	if w := do(t, s, "DELETE", "/v1/jobs/nope", ""); w.Code != http.StatusNotFound {
		t.Fatalf("DELETE unknown job = %d, want 404", w.Code)
	}
}

// TestJobFailed: a runner error surfaces as a failed job whose result fetch
// is a 409 job_failed carrying the message.
func TestJobFailed(t *testing.T) {
	s := newTestServer(t, Config{})
	s.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		return nil, fmt.Errorf("the fab caught fire")
	})
	st := submitJob(t, s, jobsBody)
	fin := waitJobState(t, s, st.ID, api.JobFailed)
	if !strings.Contains(fin.Error, "fab caught fire") {
		t.Fatalf("job error = %q", fin.Error)
	}
	w := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("result of failed job = %d, want 409", w.Code)
	}
	env := decodeBody[errEnvelope](t, w)
	if env.Error.Code != "job_failed" || !strings.Contains(env.Error.Message, "fab caught fire") {
		t.Fatalf("envelope = %+v", env.Error)
	}
}

// interruptAfterRC wraps a job.RunContext to unblock a test channel after N
// checkpoint saves, then stall until the job context dies — simulating a
// process killed mid-exploration with checkpoints on disk.
type interruptAfterRC struct {
	job.RunContext
	ctx   context.Context
	after int
	saves int
	hit   chan<- struct{}
}

func (rc *interruptAfterRC) SaveCheckpoint(cp json.RawMessage) error {
	if err := rc.RunContext.SaveCheckpoint(cp); err != nil {
		return err
	}
	rc.saves++
	if rc.saves == rc.after {
		close(rc.hit)
		<-rc.ctx.Done()
		return rc.ctx.Err()
	}
	return nil
}

// TestJobCrashResume is the end-to-end crash-resume guarantee: a server is
// stopped after the job's second checkpoint, a fresh server on the same job
// directory resumes the job from disk, and the final result is byte-identical
// to an uninterrupted synchronous run.
func TestJobCrashResume(t *testing.T) {
	dir := t.TempDir()

	s1 := newTestServer(t, Config{JobDir: dir, JobWorkers: 1, CheckpointEvery: 1})
	hit := make(chan struct{})
	s1.Jobs().SetRunner("dse", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		return s1.runDSEJob(ctx, &interruptAfterRC{RunContext: rc, ctx: ctx, after: 2, hit: hit})
	})

	st := submitJob(t, s1, jobsBody)
	select {
	case <-hit:
	case <-time.After(10 * time.Second):
		t.Fatal("job never reached its second checkpoint")
	}
	// "Kill" the process: stop the workers; the interrupted job requeues
	// with its checkpoint persisted under dir.
	if err := s1.Close(); err != nil {
		t.Fatalf("stopping first server: %v", err)
	}

	// Restart: a fresh server over the same directory recovers the queue and
	// resumes the job from checkpoint #2.
	s2 := newTestServer(t, Config{JobDir: dir, JobWorkers: 1, CheckpointEvery: 1})
	fin := waitJobState(t, s2, st.ID, api.JobSucceeded)
	if fin.Resumes < 1 {
		t.Fatalf("resumes = %d, want >= 1", fin.Resumes)
	}

	res := do(t, s2, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if res.Code != http.StatusOK {
		t.Fatalf("result = %d (body %s)", res.Code, res.Body)
	}
	sync := do(t, s2, "POST", "/v1/dse", jobsBody)
	if sync.Code != http.StatusOK {
		t.Fatalf("sync dse = %d", sync.Code)
	}
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatalf("resumed job result is not bit-identical to the uninterrupted run:\njob:  %s\nsync: %s",
			res.Body, sync.Body)
	}

	var resumed, full DSEResponse
	if err := json.Unmarshal(res.Body.Bytes(), &resumed); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sync.Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if resumed.PointsStreamed != full.PointsStreamed || len(resumed.EverOptimal) != len(full.EverOptimal) {
		t.Fatalf("survivor sets differ: resumed %+v vs full %+v", resumed, full)
	}
}
