package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"cordoba"
	"cordoba/api"
)

// decodeJSON strictly decodes the request body into v, bounding the read at
// the server's body limit. Unknown fields, trailing garbage, and oversized
// bodies are all rejected.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mb *http.MaxBytesError
		if errors.As(err, &mb) {
			return err // writeError maps this onto 413
		}
		return errf(http.StatusBadRequest, "malformed JSON request: %v", err)
	}
	if dec.More() {
		return errf(http.StatusBadRequest, "malformed JSON request: trailing data after object")
	}
	return nil
}

// respondCached consults the response cache for key and replays a hit;
// otherwise it runs build, writes the result, and stores the exact bytes so
// a later identical request returns a byte-identical body.
func (s *Server) respondCached(w http.ResponseWriter, key string, build func() (any, error)) error {
	if resp, ok := s.cache.Get(key); ok {
		s.metrics.CacheHit()
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", resp.ContentType)
		w.WriteHeader(resp.Status)
		_, err := w.Write(resp.Body)
		return err
	}
	s.metrics.CacheMiss()
	w.Header().Set("X-Cache", "miss")
	v, err := build()
	if err != nil {
		return err
	}
	body, err := writeJSON(w, http.StatusOK, v)
	if err != nil {
		return err
	}
	s.cache.Put(key, cachedResponse{
		Status:      http.StatusOK,
		ContentType: "application/json",
		Body:        body,
	})
	return nil
}

// ---- POST /v1/accounting ----

func (s *Server) handleAccounting(w http.ResponseWriter, r *http.Request) error {
	var req AccountingRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	if req.Process == "" {
		req.Process = "7nm"
	}
	if req.Fab == "" {
		req.Fab = "coal-heavy"
	}
	if req.Accelerator == nil && req.Yield.IsZero() {
		req.Yield.Value = 1.0
	}

	key, err := canonicalKey("/v1/accounting", req)
	if err != nil {
		return err
	}
	return s.respondCached(w, key, func() (any, error) { return s.buildAccounting(req) })
}

func (s *Server) buildAccounting(req AccountingRequest) (*AccountingResponse, error) {
	proc, err := cordoba.ProcessByName(req.Process)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	fab, err := cordoba.FabByName(req.Fab)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	var model cordoba.CarbonModel
	if req.Model != "" {
		if model, err = cordoba.CarbonModelByName(req.Model); err != nil {
			return nil, errf(http.StatusBadRequest, "%v (see GET /v1/models)", err)
		}
	}
	var ym cordoba.YieldModel
	if req.Yield.Model != "" {
		if ym, err = cordoba.YieldModelByName(req.Yield.Model); err != nil {
			return nil, errf(http.StatusBadRequest, "%v (see GET /v1/models)", err)
		}
	}
	resp := &AccountingResponse{
		Process:    proc.Node,
		Fab:        fab.Name,
		FabCI:      float64(fab.CI),
		PerAreaG:   proc.CarbonPerArea(fab).Grams(),
		Model:      req.Model,
		YieldModel: req.Yield.Model,
	}

	switch {
	case req.Accelerator != nil:
		cfg, err := s.resolveAccel(*req.Accelerator)
		if err != nil {
			return nil, err
		}
		bd, err := cfg.EmbodiedBreakdown(model, ym, proc, fab)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		resp.ConfigID = cfg.ID
		resp.AreaCM2 = cfg.TotalArea().CM2()
		resp.EmbodiedG = bd.Total.Grams()
		if req.Model != "" {
			resp.SiliconG = bd.Silicon.Grams()
			resp.PackagingG = bd.Packaging.Grams()
			resp.BondingG = bd.Bonding.Grams()
		}
		resp.Description = fmt.Sprintf(
			"accelerator %s (%d MAC arrays, %.0f MB SRAM) incl. yield and packaging",
			cfg.ID, cfg.MACArrays, cfg.SRAM.InMB())
		s.metrics.ObserveModelEvals(bd.Model, 1)
	case req.AreaCM2 > 0:
		area := cordoba.Area(req.AreaCM2)
		y := req.Yield.Value
		if ym != nil {
			y = ym.Yield(area, fab.DefectDensity)
		}
		if model == nil {
			// Historical scalar path: eq. IV.5 directly.
			emb, err := cordoba.EmbodiedDie(proc, fab, area, y)
			if err != nil {
				return nil, errf(http.StatusBadRequest, "%v", err)
			}
			resp.EmbodiedG = emb.Grams()
			s.metrics.ObserveModelEvals("act", 1)
		} else {
			bd, err := model.EmbodiedDesign(cordoba.DesignSpec{
				Name: "die",
				Fab:  fab,
				Dies: []cordoba.DieSpec{{Name: "die", Area: area, Process: proc, Yield: y}},
			})
			if err != nil {
				return nil, errf(http.StatusBadRequest, "%v", err)
			}
			resp.EmbodiedG = bd.Total.Grams()
			resp.SiliconG = bd.Silicon.Grams()
			resp.PackagingG = bd.Packaging.Grams()
			resp.BondingG = bd.Bonding.Grams()
			s.metrics.ObserveModelEvals(bd.Model, 1)
		}
		resp.AreaCM2 = req.AreaCM2
		resp.Yield = y
		resp.Description = fmt.Sprintf("bare die of %.3g cm² at yield %.3g", req.AreaCM2, y)
	default:
		return nil, errf(http.StatusBadRequest,
			"request needs either area_cm2 > 0 or an accelerator spec")
	}
	resp.EmbodiedKG = resp.EmbodiedG / 1e3
	return resp, nil
}

// resolveAccel turns an AccelSpec into a concrete configuration.
func (s *Server) resolveAccel(spec AccelSpec) (cordoba.AcceleratorConfig, error) {
	if spec.ID != "" {
		cfg, ok := s.configs[spec.ID]
		if !ok {
			return cordoba.AcceleratorConfig{}, errf(http.StatusBadRequest,
				"unknown accelerator config %q (see GET /v1/configs)", spec.ID)
		}
		return cfg, nil
	}
	if spec.MACArrays <= 0 || spec.SRAMMB <= 0 {
		return cordoba.AcceleratorConfig{}, errf(http.StatusBadRequest,
			"accelerator spec needs an id or positive mac_arrays and sram_mb")
	}
	cfg := cordoba.NewAccelerator(
		fmt.Sprintf("custom_%dx%gMB", spec.MACArrays, spec.SRAMMB),
		spec.MACArrays, cordoba.MB(spec.SRAMMB))
	cfg.Is3D = spec.Is3D
	cfg.MemDies = spec.MemDies
	return cfg, nil
}

// ---- POST /v1/dse ----

func (s *Server) handleDSE(w http.ResponseWriter, r *http.Request) error {
	var req DSERequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	req, err := defaultDSE(req)
	if err != nil {
		return err
	}
	if req.Shard != nil || req.Shards > 0 {
		return errf(http.StatusBadRequest,
			"shard and shards run asynchronously — submit the request via POST /v1/jobs")
	}
	key, err := canonicalKey("/v1/dse", req)
	if err != nil {
		return err
	}
	return s.respondCached(w, key, func() (any, error) { return s.buildDSE(r.Context(), req) })
}

// validateDSESpace enforces that a request names at most one design space.
// The error lists every conflicting field present so a caller mixing three
// of them learns about all three at once, not one per round trip.
func validateDSESpace(req DSERequest) error {
	var fields []string
	if req.Set != "" {
		fields = append(fields, "set")
	}
	if len(req.Configs) > 0 {
		fields = append(fields, "configs")
	}
	if req.Knobs != nil {
		fields = append(fields, "knobs")
	}
	if len(fields) > 1 {
		return errf(http.StatusBadRequest,
			"fields %s are mutually exclusive — give exactly one design space",
			strings.Join(fields, ", "))
	}
	return nil
}

// defaultDSE validates a decoded DSE request's field combinations and fills
// in the documented defaults. Both the synchronous handler and the async job
// runner route requests through here, so the two paths accept exactly the
// same bodies.
func defaultDSE(req DSERequest) (DSERequest, error) {
	if err := validateDSESpace(req); err != nil {
		return req, err
	}
	if req.Process == "" {
		req.Process = "7nm"
	}
	if req.Fab == "" {
		req.Fab = "coal-heavy"
	}
	if req.CITrace != "" {
		if req.CIUse != 0 {
			return req, errf(http.StatusBadRequest, "ci_trace and ci_use are mutually exclusive — give one")
		}
		if req.TraceLifeS == 0 {
			req.TraceLifeS = cordoba.Years(1).Seconds()
		}
	} else {
		if req.TraceLifeS != 0 {
			return req, errf(http.StatusBadRequest, "trace_life_s requires ci_trace")
		}
		if req.CIUse == 0 {
			req.CIUse = 380
		}
	}
	if req.Shard != nil && req.Shards != 0 {
		return req, errf(http.StatusBadRequest, "shard and shards are mutually exclusive — give one")
	}
	if req.Shards < 0 {
		return req, errf(http.StatusBadRequest, "shards must be non-negative, got %d", req.Shards)
	}
	if (req.Shard != nil || req.Shards > 0) && req.Knobs == nil {
		return req, errf(http.StatusBadRequest, "shard and shards apply to knob-range requests — give knobs")
	}
	if sh := req.Shard; sh != nil && (sh.First < 0 || sh.Count < 1) {
		return req, errf(http.StatusBadRequest,
			"shard needs first >= 0 and count >= 1, got first=%d count=%d", sh.First, sh.Count)
	}
	switch req.Search {
	case "", "auto", searchExhaustive, searchSurrogate:
	default:
		return req, errf(http.StatusBadRequest,
			"unknown search %q — give auto, exhaustive or surrogate", req.Search)
	}
	if req.Search != "" && req.Knobs == nil {
		return req, errf(http.StatusBadRequest, "search applies to knob-range requests — give knobs")
	}
	if sp := req.Surrogate; sp != nil {
		if req.Knobs == nil {
			return req, errf(http.StatusBadRequest, "surrogate applies to knob-range requests — give knobs")
		}
		if req.Search == searchExhaustive {
			return req, errf(http.StatusBadRequest,
				"surrogate tunes search: surrogate — drop it for exhaustive runs")
		}
		if sp.Budget < 0 {
			return req, errf(http.StatusBadRequest, "surrogate.budget must be non-negative, got %d", sp.Budget)
		}
		if sp.Population < 0 || sp.Population > 1024 {
			return req, errf(http.StatusBadRequest,
				"surrogate.population must be in [0, 1024], got %d", sp.Population)
		}
		if sp.Generations < 0 {
			return req, errf(http.StatusBadRequest,
				"surrogate.generations must be non-negative, got %d", sp.Generations)
		}
	}
	if (req.Search == searchSurrogate || req.Surrogate != nil) && (req.Shard != nil || req.Shards > 0) {
		return req, errf(http.StatusBadRequest,
			"surrogate search and shard/shards are mutually exclusive — sharding uses the exhaustive engine")
	}
	if req.Set == "" && len(req.Configs) == 0 && req.Knobs == nil {
		req.Set = "grid"
	}
	if req.Sweep == nil {
		req.Sweep = &SweepSpec{Lo: 1, Hi: 1e12, Points: 13}
	}
	return req, nil
}

// Knob-range search engines. The empty string and "auto" resolve by grid
// size in dseSearchMode.
const (
	searchExhaustive = "exhaustive"
	searchSurrogate  = "surrogate"
)

// dseSearchMode resolves which engine serves a knob-range request over a
// grid of the given size. Field validation already happened in defaultDSE;
// ""/"auto" selects exhaustive for grids within the server's cap (shard
// forms are always exhaustive — they are judged per node) and surrogate
// above it. A surrogate spec implies the surrogate engine.
func (s *Server) dseSearchMode(req DSERequest, size int64) string {
	switch {
	case req.Search == searchSurrogate,
		req.Surrogate != nil && (req.Search == "" || req.Search == "auto"):
		return searchSurrogate
	case req.Search == "" || req.Search == "auto":
		if req.Shard == nil && req.Shards == 0 && size > s.cfg.MaxGridPoints {
			return searchSurrogate
		}
		return searchExhaustive
	default:
		return searchExhaustive
	}
}

// dseInputs is a validated, resolved DSE request: everything the engines
// need, shared between the synchronous handler and the async job runner.
type dseInputs struct {
	req  DSERequest
	task cordoba.Task
	proc cordoba.Process
	fab  cordoba.Fab
	acct cordoba.ExploreAccounting
}

// resolveDSE validates a defaulted request and resolves its names (task,
// process, fab, trace, accounting) into model objects.
func (s *Server) resolveDSE(req DSERequest) (dseInputs, error) {
	var in dseInputs
	task, err := s.taskByName(req.Task)
	if err != nil {
		return in, err
	}
	proc, err := cordoba.ProcessByName(req.Process)
	if err != nil {
		return in, errf(http.StatusBadRequest, "%v", err)
	}
	fab, err := cordoba.FabByName(req.Fab)
	if err != nil {
		return in, errf(http.StatusBadRequest, "%v", err)
	}
	if req.CIUse < 0 {
		return in, errf(http.StatusBadRequest, "ci_use must be non-negative, got %g", req.CIUse)
	}
	if req.CITrace != "" {
		// Resolve the named trace to its exact time-average intensity over
		// the requested lifetime; the scalar then flows through both the
		// materialized and streaming engines unchanged.
		s.metrics.ObserveTraceLookup()
		cum, ok := s.traces[req.CITrace]
		if !ok {
			return in, errf(http.StatusBadRequest, "unknown trace %q (see GET /v1/traces)", req.CITrace)
		}
		if req.TraceLifeS <= 0 {
			return in, errf(http.StatusBadRequest, "trace_life_s must be positive, got %g", req.TraceLifeS)
		}
		avg, err := cum.AverageBetween(0, cordoba.Time(req.TraceLifeS))
		if err != nil {
			return in, errf(http.StatusBadRequest, "%v", err)
		}
		req.CIUse = float64(avg)
	}
	if req.Sweep.Lo <= 0 || req.Sweep.Hi < req.Sweep.Lo || req.Sweep.Points < 1 || req.Sweep.Points > 10000 {
		return in, errf(http.StatusBadRequest,
			"sweep needs 0 < lo <= hi and 1 <= points <= 10000, got lo=%g hi=%g points=%d",
			req.Sweep.Lo, req.Sweep.Hi, req.Sweep.Points)
	}
	acct, err := s.resolveAccounting(req)
	if err != nil {
		return in, err
	}
	return dseInputs{req: req, task: task, proc: proc, fab: fab, acct: acct}, nil
}

func (s *Server) buildDSE(ctx context.Context, req DSERequest) (*DSEResponse, error) {
	in, err := s.resolveDSE(req)
	if err != nil {
		return nil, err
	}
	if in.req.Knobs != nil {
		g, err := s.knobGrid(in.req, in.proc)
		if err != nil {
			return nil, err
		}
		if s.dseSearchMode(in.req, g.Size()) == searchSurrogate {
			return s.buildDSESurrogate(ctx, in, surrogateRunHooks{})
		}
		return s.buildDSEStream(ctx, in, cordoba.CheckpointOptions{})
	}
	return s.buildDSEGrid(ctx, in)
}

func (s *Server) buildDSEGrid(ctx context.Context, in dseInputs) (*DSEResponse, error) {
	req, task, proc, fab := in.req, in.task, in.proc, in.fab
	configs, err := s.resolveConfigs(req)
	if err != nil {
		return nil, err
	}

	// The grid evaluation is the expensive part; it runs under a pool slot
	// so a burst of uncached requests queues instead of oversubscribing.
	if err := s.pool.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.pool.Release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	space, err := cordoba.ExploreParallelWith(task, configs, proc, fab,
		cordoba.CarbonIntensity(req.CIUse), s.pool.Workers(), in.acct)
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	modelName := req.Model
	if modelName == "" {
		modelName = "act"
	}
	s.metrics.ObserveModelEvals(modelName, int64(len(configs)))

	resp := &DSEResponse{
		Task:               task.Name,
		Process:            proc.Node,
		Fab:                fab.Name,
		Model:              req.Model,
		Yield:              req.Yield,
		CIUse:              req.CIUse,
		CITrace:            req.CITrace,
		TraceLifeS:         req.TraceLifeS,
		EverOptimal:        space.IDs(space.EverOptimal()),
		EliminatedFraction: space.EliminatedFraction(),
	}
	for _, p := range space.Points {
		resp.Points = append(resp.Points, dsePoint(p))
	}
	for _, n := range cordoba.LogSpace(req.Sweep.Lo, req.Sweep.Hi, req.Sweep.Points) {
		opt := space.OptimalAt(n)
		resp.Sweep = append(resp.Sweep, SweepEntry{
			Inferences: n,
			OptimalID:  space.Points[opt].Config.ID,
			TCDPGS:     space.Points[opt].TCDP(space.CIUse, n),
			MeanTCDPGS: space.MeanTCDPAt(n),
		})
	}
	return resp, nil
}

// resolveAccounting validates a request's model/yield selections into a dse
// accounting; the zero value (empty fields) keeps the default ACT/Murphy
// pipeline and leaves responses exactly as before the fields existed.
func (s *Server) resolveAccounting(req DSERequest) (cordoba.ExploreAccounting, error) {
	var acct cordoba.ExploreAccounting
	if req.Model != "" {
		m, err := cordoba.CarbonModelByName(req.Model)
		if err != nil {
			return acct, errf(http.StatusBadRequest, "%v (see GET /v1/models)", err)
		}
		acct.Model = m
	}
	if req.Yield != "" {
		ym, err := cordoba.YieldModelByName(req.Yield)
		if err != nil {
			return acct, errf(http.StatusBadRequest, "%v (see GET /v1/models)", err)
		}
		acct.Yield = ym
	}
	return acct, nil
}

// dsePoint renders one evaluated design for the response.
func dsePoint(p cordoba.DesignPoint) DSEPoint {
	pt := DSEPoint{
		ID:             p.Config.ID,
		MACArrays:      p.Config.MACArrays,
		SRAMMB:         p.Config.SRAM.InMB(),
		Is3D:           p.Config.Is3D,
		Model:          p.Model,
		DelayS:         p.Delay.Seconds(),
		EnergyJ:        p.Energy.Joules(),
		EmbodiedG:      p.Embodied.Grams(),
		AreaCM2:        p.Area.CM2(),
		EDPJS:          p.EDP(),
		EmbodiedDelayG: p.EmbodiedDelay(),
	}
	if part := p.Config.Partition; part.Active() {
		pt.Integration = part.Integration
		pt.Chiplets = part.Chiplets
		pt.ChipletNode = part.ChipletNode
		pt.Carrier = part.Carrier
	}
	return pt
}

// buildDSEStream serves the knob-range form of POST /v1/dse through the v2
// streaming engine: lazy grid enumeration, the server's shared shape-profile
// memo, and an incremental convex envelope, so only the ever-optimal points
// ever materialize.
// knobGrid validates a knob-range request and materializes the lazy grid
// description, applying the scalar process/model fields as single-axis
// defaults.
func (s *Server) knobGrid(req DSERequest, proc cordoba.Process) (cordoba.KnobGrid, error) {
	var g cordoba.KnobGrid
	if err := validateDSESpace(req); err != nil {
		return g, err
	}
	k := req.Knobs
	if len(k.MACArrays) == 0 || len(k.SRAMMB) == 0 {
		return g, errc(http.StatusBadRequest, api.CodeInvalidKnobs,
			"knobs needs non-empty mac_arrays and sram_mb")
	}
	if len(k.Models) > 0 && req.Model != "" {
		return g, errf(http.StatusBadRequest, "give either model or knobs.models, not both")
	}
	g = cordoba.KnobGrid{
		MACArrays: k.MACArrays,
		SRAMMB:    k.SRAMMB,
		VDDScales: k.VDDScales,
		Nodes:     k.Nodes,
		Models:    k.Models,
	}
	if p := k.Partition; p != nil {
		g.Integrations = p.Integrations
		g.Chiplets = p.Chiplets
		g.ChipletNodes = p.ChipletNodes
		g.Carrier = p.Carrier
	}
	if len(g.Nodes) == 0 {
		// The scalar process field names the single node to explore.
		g.Nodes = []string{proc.Node}
	}
	if len(g.Models) == 0 && req.Model != "" {
		// The scalar model field names the single backend to price with.
		g.Models = []string{req.Model}
	}
	// Up-front axis validation: empty or duplicate axis values, unknown
	// node/model/integration/carrier names, and unsupported model-integration
	// pairings all fail here with the machine-readable invalid_knobs code
	// instead of surfacing later from inside the engine.
	if err := g.Validate(); err != nil {
		return g, errc(http.StatusBadRequest, api.CodeInvalidKnobs, "%v", err)
	}
	size := g.Size()
	if s.dseSearchMode(req, size) == searchSurrogate {
		// The budgeted search pays per evaluation, not per lattice point, so
		// the cap bounds the budget rather than the grid. Only an explicitly
		// requested budget can violate it — a defaulted budget is clamped to
		// the cap in buildDSESurrogate, keeping auto-selected surrogate runs
		// servable on any grid.
		if budget := explicitSurrogateBudget(req, s.cfg); budget > s.cfg.MaxGridPoints {
			return g, errf(http.StatusBadRequest,
				"surrogate budget %d is above this server's cap of %d evaluations", budget, s.cfg.MaxGridPoints)
		}
		if sp := req.Surrogate; sp != nil && sp.Oracle && size > s.cfg.MaxGridPoints {
			return g, errf(http.StatusBadRequest,
				"surrogate.oracle also runs the exhaustive engine — the %d-point grid is above this server's cap of %d",
				size, s.cfg.MaxGridPoints)
		}
		return g, nil
	}
	// The cap bounds what one node evaluates, so sharded requests are judged
	// by their largest per-node share, not the whole grid — distributing is
	// exactly how a grid above the single-node cap becomes servable.
	shapes := int64(len(g.MACArrays) * len(g.SRAMMB))
	cells := size / shapes
	perNode := size
	if sh := req.Shard; sh != nil {
		if int64(sh.First)+int64(sh.Count) > shapes {
			return g, errf(http.StatusBadRequest,
				"shard [%d,%d) is outside the grid's %d shapes", sh.First, sh.First+sh.Count, shapes)
		}
		perNode = cells * int64(sh.Count)
	} else if req.Shards > 0 {
		n := int64(req.Shards)
		if n > shapes {
			n = shapes
		}
		perNode = cells * ((shapes + n - 1) / n)
	}
	if perNode > s.cfg.MaxGridPoints {
		if perNode == size {
			return g, errf(http.StatusBadRequest,
				"knob grid has %d points, above this server's cap of %d", size, s.cfg.MaxGridPoints)
		}
		return g, errf(http.StatusBadRequest,
			"largest shard covers %d points, above this server's cap of %d", perNode, s.cfg.MaxGridPoints)
	}
	return g, nil
}

func (s *Server) buildDSEStream(ctx context.Context, in dseInputs, ck cordoba.CheckpointOptions) (*DSEResponse, error) {
	req, task, fab := in.req, in.task, in.fab
	g, err := s.knobGrid(req, in.proc)
	if err != nil {
		return nil, err
	}

	if err := s.pool.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.pool.Release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ck.StreamOptions = cordoba.StreamOptions{Workers: s.pool.Workers(), Memo: s.memo, Yield: in.acct.Yield}
	res, err := cordoba.ExploreStreamCheckpointed(ctx, task, g, fab, cordoba.CarbonIntensity(req.CIUse), ck)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	s.metrics.ObserveDSEStream(res.Total, res.Total-int64(res.Kept()))
	// The grid is a full cartesian product, so each backend priced an equal
	// share of the streamed points.
	if len(g.Models) == 0 {
		s.metrics.ObserveModelEvals("act", res.Total)
	} else {
		for _, name := range g.Models {
			s.metrics.ObserveModelEvals(name, res.Total/int64(len(g.Models)))
		}
	}

	return renderStreamResponse(in, g, res), nil
}

// explicitSurrogateBudget returns the budget a surrogate request pinned
// explicitly — from the request body, else the server's -surrogate-budget —
// or 0 when both defer to the engine default.
func explicitSurrogateBudget(req DSERequest, cfg Config) int64 {
	if sp := req.Surrogate; sp != nil && sp.Budget != 0 {
		return sp.Budget
	}
	return cfg.SurrogateBudget
}

// surrogateRunHooks carries the async runner's checkpoint/progress plumbing
// into a surrogate run; the zero value runs synchronously without either.
type surrogateRunHooks struct {
	resume       *cordoba.SurrogateCheckpoint
	every        int
	onCheckpoint func(*cordoba.SurrogateCheckpoint) error
	onProgress   func(cordoba.SurrogateProgress)
}

// buildDSESurrogate serves a knob-range request through the surrogate-guided
// Pareto search: a fixed-seed, budgeted NSGA-style walk over the lazy grid
// that shares the server's shape-profile memo with the exhaustive engine.
// When the request asks for an oracle comparison, the exhaustive engine runs
// on the same grid afterwards and the response carries the quality metrics.
func (s *Server) buildDSESurrogate(ctx context.Context, in dseInputs, hooks surrogateRunHooks) (*DSEResponse, error) {
	req, task, fab := in.req, in.task, in.fab
	g, err := s.knobGrid(req, in.proc)
	if err != nil {
		return nil, err
	}

	if err := s.pool.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.pool.Release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := cordoba.SurrogateOptions{
		StreamOptions: cordoba.StreamOptions{Workers: s.pool.Workers(), Memo: s.memo, Yield: in.acct.Yield},
		Budget:        s.cfg.SurrogateBudget,
		Population:    s.cfg.SurrogatePopulation,
		Resume:        hooks.resume,
		Every:         hooks.every,
		OnCheckpoint:  hooks.onCheckpoint,
		OnProgress:    hooks.onProgress,
	}
	if sp := req.Surrogate; sp != nil {
		if sp.Seed != 0 {
			opt.Seed = sp.Seed
		}
		if sp.Budget != 0 {
			opt.Budget = sp.Budget
		}
		if sp.Population != 0 {
			opt.Population = sp.Population
		}
		if sp.Generations != 0 {
			opt.Generations = sp.Generations
		}
	}
	if opt.Budget == 0 {
		// Resolve the engine default here so the server's evaluation cap can
		// bound it — auto-selected surrogate runs stay servable on any grid.
		opt.Budget = cordoba.DefaultSurrogateBudget(g.Size(), opt.Population)
		if opt.Budget > s.cfg.MaxGridPoints {
			opt.Budget = s.cfg.MaxGridPoints
		}
	}
	ci := cordoba.CarbonIntensity(req.CIUse)
	res, err := cordoba.ExploreSurrogate(ctx, task, g, fab, ci, opt)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	s.metrics.ObserveDSESurrogate(res.Evaluations, res.Skipped, int64(res.Generations))
	// The evaluated subset is not guaranteed to split evenly across model
	// backends, but the per-model counters are throughput telemetry, not an
	// audit — attribute the uniform share like the exhaustive path does.
	if len(g.Models) == 0 {
		s.metrics.ObserveModelEvals("act", res.Evaluations)
	} else {
		for _, name := range g.Models {
			s.metrics.ObserveModelEvals(name, res.Evaluations/int64(len(g.Models)))
		}
	}

	resp := renderStreamResponse(in, g, res.StreamResult)
	resp.Search = searchSurrogate
	info := &SurrogateInfo{
		Seed:            res.Seed,
		Budget:          res.Budget,
		Generations:     res.Generations,
		GridPoints:      res.GridPoints,
		EvaluationsUsed: res.Evaluations,
		Skipped:         res.Skipped,
	}
	if res.GridPoints > 0 {
		info.EvalFraction = float64(res.Evaluations) / float64(res.GridPoints)
	}
	if sp := req.Surrogate; sp != nil && sp.Oracle {
		ck := cordoba.CheckpointOptions{StreamOptions: opt.StreamOptions}
		oracle, err := cordoba.ExploreStreamCheckpointed(ctx, task, g, fab, ci, ck)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, errf(http.StatusBadRequest, "%v", err)
		}
		s.metrics.ObserveDSEStream(oracle.Total, oracle.Total-int64(oracle.Kept()))
		q := cordoba.MeasureEnvelopeQuality(res.StreamResult, oracle)
		info.HypervolumeRatio = &q.HypervolumeRatio
		info.AdditiveEpsilon = &q.AdditiveEpsilon
		info.Coverage = &q.Coverage
	}
	resp.Surrogate = info
	return resp, nil
}

// renderStreamResponse renders a streaming result in the wire form. The
// synchronous handler, the async DSE runner, and the cluster coordinator's
// merge path all finish here, so a sharded run's response is byte-identical
// to a single-node run of the same request.
func renderStreamResponse(in dseInputs, g cordoba.KnobGrid, res *cordoba.StreamResult) *DSEResponse {
	req := in.req
	space := res.Space
	resp := &DSEResponse{
		Task:               in.task.Name,
		Process:            strings.Join(g.Nodes, ","),
		Fab:                in.fab.Name,
		Model:              req.Model,
		Yield:              req.Yield,
		CIUse:              req.CIUse,
		CITrace:            req.CITrace,
		TraceLifeS:         req.TraceLifeS,
		EliminatedFraction: res.EliminatedFraction(),
		PointsStreamed:     res.Total,
		PointsPruned:       res.Total - int64(res.Kept()),
	}
	for _, p := range space.Points {
		resp.Points = append(resp.Points, dsePoint(p))
		resp.EverOptimal = append(resp.EverOptimal, p.Config.ID)
	}
	for _, n := range cordoba.LogSpace(req.Sweep.Lo, req.Sweep.Hi, req.Sweep.Points) {
		opt := res.OptimalAt(n)
		resp.Sweep = append(resp.Sweep, SweepEntry{
			Inferences: n,
			OptimalID:  space.Points[opt].Config.ID,
			TCDPGS:     space.Points[opt].TCDP(space.CIUse, n),
			MeanTCDPGS: res.MeanTCDPAt(n),
		})
	}
	return resp
}

// taskByName resolves a Table IV paper task or the XR gaming session.
func (s *Server) taskByName(name string) (cordoba.Task, error) {
	if name == "" {
		return cordoba.Task{}, errf(http.StatusBadRequest, "missing task name (see GET /v1/tasks)")
	}
	if xr := cordoba.XRGamingTask(); name == xr.Name {
		return xr, nil
	}
	task, err := cordoba.PaperTask(name)
	if err != nil {
		return cordoba.Task{}, errf(http.StatusBadRequest, "unknown task %q (see GET /v1/tasks)", name)
	}
	return task, nil
}

// resolveConfigs materializes the design space a DSE request names.
func (s *Server) resolveConfigs(req DSERequest) ([]cordoba.AcceleratorConfig, error) {
	if len(req.Configs) > 0 {
		out := make([]cordoba.AcceleratorConfig, 0, len(req.Configs))
		for _, id := range req.Configs {
			cfg, ok := s.configs[id]
			if !ok {
				return nil, errf(http.StatusBadRequest,
					"unknown accelerator config %q (see GET /v1/configs)", id)
			}
			out = append(out, cfg)
		}
		return out, nil
	}
	switch req.Set {
	case "grid":
		return cordoba.Grid(), nil
	case "3d":
		return cordoba.Stacked3D(), nil
	default:
		return nil, errf(http.StatusBadRequest, `unknown config set %q (use "grid" or "3d")`, req.Set)
	}
}

// ---- GET /v1/experiments and /v1/experiments/{key} ----

func (s *Server) handleExperimentsList(w http.ResponseWriter, r *http.Request) error {
	var out []experimentInfo
	for _, e := range cordoba.Experiments() {
		out = append(out, experimentInfo{Key: e.Key, Title: e.Title, Formats: []string{"json", "csv", "text"}})
	}
	_, err := writeJSON(w, http.StatusOK, out)
	return err
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) error {
	key := r.PathValue("key")
	if _, err := cordoba.ExperimentResult(key); err != nil {
		return errf(http.StatusNotFound,
			"unknown experiment %q (keys: %s)", key, strings.Join(cordoba.ExperimentKeys(), ", "))
	}
	// The export registry streams straight to the client; large series
	// (fig8 CSV is tens of thousands of rows) never materialize in memory.
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		return cordoba.ExportExperimentJSON(key, w)
	case "csv":
		// Keys without a tabular form fail before the first write, so the
		// error envelope still goes out with a clean 400.
		w.Header().Set("Content-Type", "text/csv")
		if err := cordoba.ExportExperimentCSV(key, w); err != nil {
			return errf(http.StatusBadRequest, "%v", err)
		}
		return nil
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		return cordoba.RunExperiment(key, w)
	default:
		return errf(http.StatusBadRequest, "unknown format %q (json, csv, or text)", format)
	}
}

// ---- GET /v1/tasks and /v1/configs ----

func (s *Server) handleTasks(w http.ResponseWriter, r *http.Request) error {
	tasks := append(cordoba.PaperTasks(), cordoba.XRGamingTask())
	out := make([]taskInfo, 0, len(tasks))
	for _, t := range tasks {
		calls := make(map[string]float64, len(t.Calls))
		for k, n := range t.Calls {
			calls[string(k)] = n
		}
		out = append(out, taskInfo{Name: t.Name, Kernels: calls, TotalCalls: t.TotalCalls()})
	}
	_, err := writeJSON(w, http.StatusOK, out)
	return err
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) error {
	var configs []cordoba.AcceleratorConfig
	switch set := r.URL.Query().Get("set"); set {
	case "", "grid":
		configs = cordoba.Grid()
	case "3d":
		configs = cordoba.Stacked3D()
	case "all":
		configs = append(cordoba.Grid(), cordoba.Stacked3D()...)
	default:
		return errf(http.StatusBadRequest, `unknown config set %q (use "grid", "3d", or "all")`, set)
	}
	out := make([]configInfo, 0, len(configs))
	for _, c := range configs {
		out = append(out, configInfo{
			ID:        c.ID,
			MACArrays: c.MACArrays,
			TotalMACs: c.TotalMACs(),
			SRAMMB:    c.SRAM.InMB(),
			Is3D:      c.Is3D,
			MemDies:   c.MemDies,
			AreaCM2:   c.TotalArea().CM2(),
		})
	}
	_, err := writeJSON(w, http.StatusOK, out)
	return err
}

// ---- GET /v1/models ----

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) error {
	resp := modelsResponse{YieldModels: cordoba.YieldModelNames()}
	for _, mi := range cordoba.CarbonModelInfos() {
		resp.Models = append(resp.Models, modelInfo{
			Name:         mi.Name,
			Description:  mi.Description,
			Integrations: mi.Integrations,
		})
	}
	_, err := writeJSON(w, http.StatusOK, resp)
	return err
}

// ---- GET /healthz and /metrics ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	_, err := writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	return err
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	return s.metrics.WriteProm(w)
}
