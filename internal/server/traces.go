package server

import (
	"net/http"

	"cordoba"
)

// ---- GET /v1/traces ----

// traceInfo is one row of the trace-registry listing. The daily and annual
// statistics come from the exact cumulative engine, so clients can pick a
// grid without integrating anything themselves.
type traceInfo struct {
	Name      string  `json:"name"`
	MeanDayG  float64 `json:"mean_ci_24h_g_per_kwh"`
	MeanYearG float64 `json:"mean_ci_1y_g_per_kwh"`
	MinDayG   float64 `json:"min_ci_24h_g_per_kwh"`
	MaxDayG   float64 `json:"max_ci_24h_g_per_kwh"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) error {
	out := make([]traceInfo, 0, len(s.traces))
	for _, tr := range cordoba.NamedCITraces() {
		cum, ok := s.traces[tr.Name()]
		if !ok {
			continue
		}
		dayMean, err := cum.AverageBetween(0, cordoba.Hours(24))
		if err != nil {
			return err
		}
		yearMean, err := cum.AverageBetween(0, cordoba.Years(1))
		if err != nil {
			return err
		}
		info := traceInfo{
			Name:      tr.Name(),
			MeanDayG:  float64(dayMean),
			MeanYearG: float64(yearMean),
		}
		// Min/max over the first day, sampled at the trace's own resolution
		// (15 min covers every registry shape's features).
		lo, hi := float64(tr.CI(0)), float64(tr.CI(0))
		for t := cordoba.Time(0); t <= cordoba.Hours(24); t += cordoba.Time(15 * 60) {
			ci := float64(tr.CI(t))
			if ci < lo {
				lo = ci
			}
			if ci > hi {
				hi = ci
			}
		}
		info.MinDayG, info.MaxDayG = lo, hi
		out = append(out, info)
	}
	_, err := writeJSON(w, http.StatusOK, out)
	return err
}

// ---- POST /v1/schedule ----

// ScheduleRequest asks for the lowest-carbon execution window for a
// deferrable job on a named CI_use(t) trace. Times are seconds from now.
type ScheduleRequest struct {
	Trace     string  `json:"trace"`
	DurationS float64 `json:"duration_s"`
	PowerW    float64 `json:"power_w"`
	DeadlineS float64 `json:"deadline_s"`
	StepS     float64 `json:"step_s,omitempty"` // candidate granularity, default 900
}

// ScheduleWindow is one execution slot in the response.
type ScheduleWindow struct {
	StartS    float64 `json:"start_s"`
	EndS      float64 `json:"end_s"`
	CarbonG   float64 `json:"carbon_gco2e"`
	AvgCIG    float64 `json:"avg_ci_g_per_kwh"`
	StartHour float64 `json:"start_hour"` // convenience: start_s / 3600
}

// ScheduleResponse reports the search outcome.
type ScheduleResponse struct {
	Trace      string         `json:"trace"`
	Best       ScheduleWindow `json:"best"`
	Worst      ScheduleWindow `json:"worst"`
	Immediate  ScheduleWindow `json:"immediate"`
	Candidates int            `json:"candidates"`
	// SavingsFraction is 1 − best/immediate carbon: what deferring saves.
	SavingsFraction float64 `json:"savings_fraction"`
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) error {
	var req ScheduleRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	key, err := canonicalKey("/v1/schedule", req)
	if err != nil {
		return err
	}
	return s.respondCached(w, key, func() (any, error) { return s.buildSchedule(req) })
}

func (s *Server) buildSchedule(req ScheduleRequest) (*ScheduleResponse, error) {
	if req.Trace == "" {
		return nil, errf(http.StatusBadRequest, "missing trace name (see GET /v1/traces)")
	}
	s.metrics.ObserveTraceLookup()
	cum, ok := s.traces[req.Trace]
	if !ok {
		return nil, errf(http.StatusBadRequest, "unknown trace %q (see GET /v1/traces)", req.Trace)
	}
	plan, err := cordoba.FindLaunchWindow(cum, cordoba.WindowRequest{
		Duration: cordoba.Time(req.DurationS),
		Power:    cordoba.Power(req.PowerW),
		Deadline: cordoba.Time(req.DeadlineS),
		Step:     cordoba.Time(req.StepS),
	})
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	s.metrics.ObserveSchedule(plan.Candidates)
	return &ScheduleResponse{
		Trace:           req.Trace,
		Best:            scheduleWindow(plan.Best),
		Worst:           scheduleWindow(plan.Worst),
		Immediate:       scheduleWindow(plan.Immediate),
		Candidates:      plan.Candidates,
		SavingsFraction: plan.Savings,
	}, nil
}

func scheduleWindow(w cordoba.ExecutionWindow) ScheduleWindow {
	return ScheduleWindow{
		StartS:    w.Start.Seconds(),
		EndS:      w.End.Seconds(),
		CarbonG:   w.Carbon.Grams(),
		AvgCIG:    float64(w.AverageCI),
		StartHour: w.Start.InHours(),
	}
}
