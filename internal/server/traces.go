package server

import (
	"net/http"

	"cordoba"
)

// ---- GET /v1/traces ----

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) error {
	out := make([]traceInfo, 0, len(s.traces))
	for _, tr := range cordoba.NamedCITraces() {
		cum, ok := s.traces[tr.Name()]
		if !ok {
			continue
		}
		dayMean, err := cum.AverageBetween(0, cordoba.Hours(24))
		if err != nil {
			return err
		}
		yearMean, err := cum.AverageBetween(0, cordoba.Years(1))
		if err != nil {
			return err
		}
		info := traceInfo{
			Name:      tr.Name(),
			MeanDayG:  float64(dayMean),
			MeanYearG: float64(yearMean),
		}
		// Min/max over the first day, sampled at the trace's own resolution
		// (15 min covers every registry shape's features).
		lo, hi := float64(tr.CI(0)), float64(tr.CI(0))
		for t := cordoba.Time(0); t <= cordoba.Hours(24); t += cordoba.Time(15 * 60) {
			ci := float64(tr.CI(t))
			if ci < lo {
				lo = ci
			}
			if ci > hi {
				hi = ci
			}
		}
		info.MinDayG, info.MaxDayG = lo, hi
		out = append(out, info)
	}
	_, err := writeJSON(w, http.StatusOK, out)
	return err
}

// ---- POST /v1/schedule ----

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) error {
	var req ScheduleRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	key, err := canonicalKey("/v1/schedule", req)
	if err != nil {
		return err
	}
	return s.respondCached(w, key, func() (any, error) { return s.buildSchedule(req) })
}

func (s *Server) buildSchedule(req ScheduleRequest) (*ScheduleResponse, error) {
	if req.Trace == "" {
		return nil, errf(http.StatusBadRequest, "missing trace name (see GET /v1/traces)")
	}
	s.metrics.ObserveTraceLookup()
	cum, ok := s.traces[req.Trace]
	if !ok {
		return nil, errf(http.StatusBadRequest, "unknown trace %q (see GET /v1/traces)", req.Trace)
	}
	plan, err := cordoba.FindLaunchWindow(cum, cordoba.WindowRequest{
		Duration: cordoba.Time(req.DurationS),
		Power:    cordoba.Power(req.PowerW),
		Deadline: cordoba.Time(req.DeadlineS),
		Step:     cordoba.Time(req.StepS),
	})
	if err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	s.metrics.ObserveSchedule(plan.Candidates)
	return &ScheduleResponse{
		Trace:           req.Trace,
		Best:            scheduleWindow(plan.Best),
		Worst:           scheduleWindow(plan.Worst),
		Immediate:       scheduleWindow(plan.Immediate),
		Candidates:      plan.Candidates,
		SavingsFraction: plan.Savings,
	}, nil
}

func scheduleWindow(w cordoba.ExecutionWindow) ScheduleWindow {
	return ScheduleWindow{
		StartS:    w.Start.Seconds(),
		EndS:      w.End.Seconds(),
		CarbonG:   w.Carbon.Grams(),
		AvgCIG:    float64(w.AverageCI),
		StartHour: w.Start.InHours(),
	}
}
