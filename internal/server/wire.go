package server

import "cordoba/api"

// The JSON wire contract lives in the public api package; the server aliases
// every type so handlers keep their historical names while requests and
// responses stay structurally identical to what clients import. The golden
// tests in api/ lock the rendered format.
type (
	AccelSpec          = api.AccelSpec
	YieldSpec          = api.YieldSpec
	AccountingRequest  = api.AccountingRequest
	AccountingResponse = api.AccountingResponse

	SweepSpec     = api.SweepSpec
	KnobRangeSpec = api.KnobRangeSpec
	DSERequest    = api.DSERequest
	DSEPoint      = api.DSEPoint
	SweepEntry    = api.SweepEntry
	DSEResponse   = api.DSEResponse
	SurrogateSpec = api.SurrogateSpec
	SurrogateInfo = api.SurrogateInfo

	ShardSpec     = api.ShardSpec
	ShardEnvelope = api.ShardEnvelope
	ClusterStatus = api.ClusterStatus

	ScheduleRequest  = api.ScheduleRequest
	ScheduleWindow   = api.ScheduleWindow
	ScheduleResponse = api.ScheduleResponse

	TenantInfo   = api.TenantInfo
	QuotaStatus  = api.QuotaStatus
	TenantStatus = api.TenantStatus
	JobEvent     = api.JobEvent

	traceInfo      = api.TraceInfo
	experimentInfo = api.ExperimentInfo
	taskInfo       = api.TaskInfo
	configInfo     = api.ConfigInfo
	modelInfo      = api.ModelInfo
	modelsResponse = api.ModelsResponse

	errorEnvelope = api.ErrorEnvelope
	errorBody     = api.ErrorBody
)
