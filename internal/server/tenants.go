package server

import (
	"context"
	"net/http"
	"strings"
	"time"

	"cordoba/api"
	"cordoba/internal/tenant"
)

// initTenants loads the API-key registry. No TenantFile selects the open
// registry, whose single unlimited anonymous tenant makes every auth and
// quota check a no-op — the single-tenant daemon's exact behavior.
func (s *Server) initTenants() {
	if s.cfg.TenantFile == "" {
		s.tenants = tenant.Open()
		return
	}
	r, err := tenant.Load(s.cfg.TenantFile)
	if err != nil {
		// A malformed key file should fail the daemon at startup, not demote
		// it to open mode (fail-open auth) or 500 every request.
		panic(err)
	}
	s.tenants = r
	s.log.Info("tenant registry loaded", "file", s.cfg.TenantFile, "tenants", len(r.Tenants()))
}

// Tenants exposes the registry (tests and the daemon banner).
func (s *Server) Tenants() *tenant.Registry { return s.tenants }

// tenantCtxKey carries the authenticated tenant through the request context.
type tenantCtxKey struct{}

// requestTenant returns the tenant the middleware authenticated, falling
// back to open-mode anonymous for paths that skip auth (or direct handler
// tests).
func (s *Server) requestTenant(r *http.Request) *tenant.Tenant {
	if t, ok := r.Context().Value(tenantCtxKey{}).(*tenant.Tenant); ok {
		return t
	}
	t, _ := tenant.Open().Authenticate("")
	return t
}

// apiKeyFrom extracts the caller's API key: "Authorization: Bearer <key>"
// wins, "X-API-Key: <key>" is the fallback. Empty means anonymous.
func apiKeyFrom(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return strings.TrimSpace(r.Header.Get("X-API-Key"))
}

// authorize authenticates and rate-limits the request, returning the tenant
// and the request with it attached. /healthz and /metrics bypass it (probes
// and scrapers don't carry keys).
func (s *Server) authorize(r *http.Request) (*http.Request, error) {
	tn, err := s.tenants.Authenticate(apiKeyFrom(r))
	if err != nil {
		return r, errc(http.StatusUnauthorized, api.CodeUnauthorized, "%v", err)
	}
	if ok, retry := tn.Allow(time.Now()); !ok {
		return r, &apiError{
			status:     http.StatusTooManyRequests,
			code:       api.CodeQuotaExceeded,
			msg:        "tenant " + tn.Name + " is over its request rate; slow down",
			retryAfter: retry,
		}
	}
	return r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, tn)), nil
}

// ---- GET /v1/tenant ----

// handleTenant answers who the key authenticated as and where the tenant
// stands against its quotas right now.
func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) error {
	tn := s.requestTenant(r)
	usage := s.jobs.TenantCounts()[tn.OwnerName()]
	out := api.TenantStatus{
		Tenant: api.TenantInfo{
			Name:          tn.Name,
			Weight:        tn.Weight,
			MaxQueuedJobs: tn.MaxQueuedJobs,
			MaxGridPoints: tn.MaxGridPoints,
			RatePerSec:    tn.RatePerSec,
			Burst:         tn.Burst,
		},
		Quota: api.QuotaStatus{
			QueuedJobs:         usage.Queued,
			MaxQueuedJobs:      tn.MaxQueuedJobs,
			GridPointsInFlight: usage.Points,
			MaxGridPoints:      tn.MaxGridPoints,
			RateRemaining:      tn.RateRemaining(time.Now()),
		},
	}
	_, err := writeJSON(w, http.StatusOK, out)
	return err
}
