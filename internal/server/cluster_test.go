package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"cordoba/api"
	"cordoba/internal/job"
)

// shardBody wraps jobsBody's knob grid (6 shapes × 2 cells) with extra
// request fields; callers append shard/shards selectors.
func shardBody(extra string) string {
	return fmt.Sprintf(`{"task":"All kernels","knobs":{"mac_arrays":[1,2,4],"sram_mb":[1,2],"vdd_scales":[1.0,0.9]}%s}`, extra)
}

// TestShardValidation pins the request-shape errors for the distributed
// fields: they are async-only, knob-range-only, and mutually exclusive.
func TestShardValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body, wantFrag string
		wantCode                           int
	}{
		{"sync shards rejected", "POST", "/v1/dse", shardBody(`,"shards":2`), "POST /v1/jobs", 400},
		{"sync shard rejected", "POST", "/v1/dse", shardBody(`,"shard":{"first":0,"count":2}`), "POST /v1/jobs", 400},
		{"shard and shards exclusive", "POST", "/v1/jobs", shardBody(`,"shards":2,"shard":{"first":0,"count":2}`), "mutually exclusive", 400},
		{"negative shards", "POST", "/v1/jobs", shardBody(`,"shards":-1`), "shards must be", 400},
		{"shard without knobs", "POST", "/v1/jobs", `{"task":"All kernels","shards":2}`, "knob-range", 400},
		{"shard out of grid", "POST", "/v1/jobs", shardBody(`,"shard":{"first":5,"count":2}`), "outside the grid's 6 shapes", 400},
		{"bad shard range", "POST", "/v1/jobs", shardBody(`,"shard":{"first":-1,"count":1}`), "first >= 0", 400},
		{"shards need coordinator", "POST", "/v1/jobs", shardBody(`,"shards":2`), "coordinator", 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, tc.method, tc.path, tc.body)
			if w.Code != tc.wantCode {
				t.Fatalf("code = %d, want %d (body %s)", w.Code, tc.wantCode, w.Body)
			}
			env := decodeBody[api.ErrorEnvelope](t, w)
			if !strings.Contains(env.Error.Message, tc.wantFrag) {
				t.Fatalf("error %q missing %q", env.Error.Message, tc.wantFrag)
			}
		})
	}
}

// TestClusterStatusByRole pins GET /v1/cluster on non-coordinator daemons:
// the role echoes back with no worker table.
func TestClusterStatusByRole(t *testing.T) {
	for _, role := range []string{"", "worker"} {
		s := newTestServer(t, Config{Role: role})
		w := do(t, s, "GET", "/v1/cluster", "")
		if w.Code != http.StatusOK {
			t.Fatalf("role %q: code = %d (body %s)", role, w.Code, w.Body)
		}
		st := decodeBody[api.ClusterStatus](t, w)
		wantRole := role
		if wantRole == "" {
			wantRole = "standalone"
		}
		if st.Role != wantRole || len(st.Workers) != 0 {
			t.Fatalf("role %q: status = %+v", role, st)
		}
	}
}

// TestShardCapIsPerNode verifies MaxGridPoints judges the largest per-node
// share, not the whole grid: a grid too big for one node still submits when
// sharded finely enough, and a single over-cap shard is rejected.
func TestShardCapIsPerNode(t *testing.T) {
	// 6 shapes × 2 cells = 12 points; cap of 8 rejects the whole grid and
	// any shard of ≥ 4 shapes, but accepts per-shard shares of ≤ 4 shapes.
	s := newTestServer(t, Config{MaxGridPoints: 8, Role: "coordinator", ClusterWorkers: []string{"http://127.0.0.1:1"}})
	w := do(t, s, "POST", "/v1/jobs", shardBody(`,"search":"exhaustive"`))
	if w.Code != 400 || !strings.Contains(w.Body.String(), "above this server's cap") {
		t.Fatalf("whole grid: code %d body %s", w.Code, w.Body)
	}
	w = do(t, s, "POST", "/v1/jobs", shardBody(`,"shard":{"first":0,"count":5}`))
	if w.Code != 400 || !strings.Contains(w.Body.String(), "largest shard covers 10 points") {
		t.Fatalf("big shard: code %d body %s", w.Code, w.Body)
	}
	w = do(t, s, "POST", "/v1/jobs", shardBody(`,"shard":{"first":2,"count":3}`))
	if w.Code != http.StatusAccepted {
		t.Fatalf("small shard: code %d body %s", w.Code, w.Body)
	}
	st := decodeBody[api.JobStatus](t, w)
	if st.Kind != "dse-shard" {
		t.Fatalf("kind = %q, want dse-shard", st.Kind)
	}
	// shards=3 → ceil(6/3)=2 shapes = 4 points per node: under the cap even
	// though the whole grid is not.
	w = do(t, s, "POST", "/v1/jobs", shardBody(`,"shards":3`))
	if w.Code != http.StatusAccepted {
		t.Fatalf("sharded grid: code %d body %s", w.Code, w.Body)
	}
	if st := decodeBody[api.JobStatus](t, w); st.Kind != "dse-cluster" {
		t.Fatalf("kind = %q, want dse-cluster", st.Kind)
	}
}

// TestShardJobEnvelope runs a shard job end to end through the worker-facing
// HTTP surface and checks the envelope covers exactly the requested shapes.
func TestShardJobEnvelope(t *testing.T) {
	s := newTestServer(t, Config{})
	st := submitJob(t, s, shardBody(`,"shard":{"first":2,"count":3}`))
	if st.Kind != "dse-shard" {
		t.Fatalf("kind = %q, want dse-shard", st.Kind)
	}
	fin := waitJobState(t, s, st.ID, api.JobSucceeded)
	if fin.Progress.GridPoints != 6 { // 3 shapes × 2 cells
		t.Fatalf("grid points = %d, want 6", fin.Progress.GridPoints)
	}
	w := do(t, s, "GET", "/v1/jobs/"+st.ID+"/result", "")
	if w.Code != http.StatusOK {
		t.Fatalf("result = %d (body %s)", w.Code, w.Body)
	}
	env := decodeBody[api.ShardEnvelope](t, w)
	if env.First != 2 || env.Count != 3 || env.PointsStreamed != 6 {
		t.Fatalf("envelope = first %d count %d streamed %d, want 2/3/6", env.First, env.Count, env.PointsStreamed)
	}
	if env.Task != "All kernels" || len(env.Survivors) == 0 {
		t.Fatalf("envelope task %q, %d survivors", env.Task, len(env.Survivors))
	}
	for _, sp := range env.Survivors {
		// Global IDs for shapes [2,5) of a 2-cell grid live in [4,10).
		if sp.Index < 4 || sp.Index >= 10 {
			t.Fatalf("survivor index %d outside shard's global range [4,10)", sp.Index)
		}
		var cfg map[string]any
		if err := json.Unmarshal(sp.Config, &cfg); err != nil || len(cfg) == 0 {
			t.Fatalf("survivor config %s: %v", sp.Config, err)
		}
	}
}

// TestJobCheckpointEndpoint drives GET /v1/jobs/{id}/checkpoint through all
// three outcomes — 404 unknown, 200 while a checkpoint exists, and 409 after
// success clears it — using a held runner so the timing is deterministic.
func TestJobCheckpointEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "GET", "/v1/jobs/j000000000000/checkpoint", "")
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", w.Code)
	}

	saved := make(chan struct{})
	release := make(chan struct{})
	s.Jobs().SetRunner("hold", func(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
		if err := rc.SaveCheckpoint(json.RawMessage(`{"mark":1}`)); err != nil {
			return nil, err
		}
		close(saved)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return json.RawMessage(`{}`), nil
	})
	st, err := s.Jobs().Submit("hold", json.RawMessage(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	<-saved
	w = do(t, s, "GET", "/v1/jobs/"+st.ID+"/checkpoint", "")
	if w.Code != http.StatusOK || strings.TrimSpace(w.Body.String()) != `{"mark":1}` {
		t.Fatalf("live checkpoint = %d %q", w.Code, w.Body)
	}
	close(release)
	waitJobState(t, s, st.ID, api.JobSucceeded)
	w = do(t, s, "GET", "/v1/jobs/"+st.ID+"/checkpoint", "")
	if w.Code != http.StatusConflict {
		t.Fatalf("after success = %d, want 409 (body %s)", w.Code, w.Body)
	}
	if env := decodeBody[api.ErrorEnvelope](t, w); env.Error.Code != api.CodeNotReady {
		t.Fatalf("error code = %q, want %q", env.Error.Code, api.CodeNotReady)
	}
}

// TestUnknownRolePanics pins the constructor's guard against typo'd roles.
func TestUnknownRolePanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "unknown role") {
			t.Fatalf("recover = %v, want unknown-role panic", r)
		}
	}()
	New(Config{Role: "manager", Logger: quietLogger()})
}
