package server

import (
	"net/http"
	"strings"
	"testing"
)

func TestTracesList(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "GET", "/v1/traces", "")
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	infos := decodeBody[[]traceInfo](t, w)
	if len(infos) < 6 {
		t.Fatalf("got %d traces, want at least 6", len(infos))
	}
	seen := map[string]traceInfo{}
	for _, i := range infos {
		seen[i.Name] = i
		if i.MeanDayG <= 0 || i.MeanYearG <= 0 {
			t.Errorf("%s: non-positive mean CI", i.Name)
		}
		if i.MinDayG > i.MaxDayG {
			t.Errorf("%s: min %g > max %g", i.Name, i.MinDayG, i.MaxDayG)
		}
	}
	duck, ok := seen["california-duck"]
	if !ok {
		t.Fatal("registry is missing california-duck")
	}
	if duck.MinDayG >= duck.MaxDayG {
		t.Error("duck curve should swing over the day")
	}
	flat, ok := seen["paper-grid"]
	if !ok {
		t.Fatal("registry is missing paper-grid")
	}
	if flat.MeanDayG != 380 || flat.MeanYearG != 380 {
		t.Errorf("paper-grid means = (%g, %g), want exactly 380", flat.MeanDayG, flat.MeanYearG)
	}
}

func TestScheduleEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"trace":"california-duck","duration_s":7200,"power_w":200,"deadline_s":86400,"step_s":900}`
	w := do(t, s, "POST", "/v1/schedule", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeBody[ScheduleResponse](t, w)
	if resp.Trace != "california-duck" {
		t.Errorf("trace = %q", resp.Trace)
	}
	if h := resp.Best.StartHour; h < 9 || h > 13 {
		t.Errorf("best start %.2fh, want the midday solar valley", h)
	}
	if resp.SavingsFraction <= 0.3 {
		t.Errorf("savings %.3f, want >0.3 on the duck curve", resp.SavingsFraction)
	}
	if resp.Best.CarbonG > resp.Immediate.CarbonG || resp.Best.CarbonG > resp.Worst.CarbonG {
		t.Error("best window is not minimal")
	}
	// 22h of slack at 15-min steps: 88 intervals + the run-now start.
	if resp.Candidates != 89 {
		t.Errorf("candidates = %d, want 89 for 15-min steps over 22h slack", resp.Candidates)
	}

	// Second identical request must come from the cache.
	w2 := do(t, s, "POST", "/v1/schedule", body)
	if w2.Header().Get("X-Cache") != "hit" {
		t.Error("identical schedule request should hit the cache")
	}
	if w2.Body.String() != w.Body.String() {
		t.Error("cached response differs")
	}

	// Metrics counted one search (the cached replay does not re-search).
	searches, windows := s.Metrics().ScheduleCounts()
	if searches != 1 || windows != 89 {
		t.Errorf("schedule counters = (%d, %d)", searches, windows)
	}
	if s.Metrics().TraceLookups() != 1 {
		t.Errorf("trace lookups = %d", s.Metrics().TraceLookups())
	}

	var prom strings.Builder
	if err := s.Metrics().WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"cordobad_schedule_searches_total 1",
		"cordobad_trace_lookups_total 1",
		"cordobad_schedule_windows_total",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestScheduleErrors(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"missing trace", `{"duration_s":7200,"power_w":200,"deadline_s":86400}`},
		{"unknown trace", `{"trace":"nope","duration_s":7200,"power_w":200,"deadline_s":86400}`},
		{"zero duration", `{"trace":"paper-grid","duration_s":0,"power_w":200,"deadline_s":86400}`},
		{"deadline before finish", `{"trace":"paper-grid","duration_s":7200,"power_w":200,"deadline_s":60}`},
		{"negative power", `{"trace":"paper-grid","duration_s":7200,"power_w":-5,"deadline_s":86400}`},
		{"unknown field", `{"trace":"paper-grid","duration_s":7200,"power_w":200,"deadline_s":86400,"bogus":1}`},
	}
	for _, c := range cases {
		w := do(t, s, "POST", "/v1/schedule", c.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, w.Code, w.Body.String())
		}
	}
}

func TestDSEWithNamedTrace(t *testing.T) {
	s := newTestServer(t, Config{})

	// The solar-diurnal trace averages exactly its mean (380) over whole
	// days, so the sweep must match a scalar ci_use=380 run byte-for-byte in
	// its numeric results.
	scalar := do(t, s, "POST", "/v1/dse",
		`{"task":"AI (5 kernels)","configs":["a1","a48","a121"]}`)
	if scalar.Code != http.StatusOK {
		t.Fatalf("scalar status %d: %s", scalar.Code, scalar.Body.String())
	}
	traced := do(t, s, "POST", "/v1/dse",
		`{"task":"AI (5 kernels)","configs":["a1","a48","a121"],"ci_trace":"solar-diurnal","trace_life_s":86400}`)
	if traced.Code != http.StatusOK {
		t.Fatalf("traced status %d: %s", traced.Code, traced.Body.String())
	}
	sr := decodeBody[DSEResponse](t, scalar)
	tr := decodeBody[DSEResponse](t, traced)
	if tr.CITrace != "solar-diurnal" || tr.TraceLifeS != 86400 {
		t.Errorf("trace echo = (%q, %g)", tr.CITrace, tr.TraceLifeS)
	}
	if diff := tr.CIUse - sr.CIUse; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("resolved CI %g, want 380", tr.CIUse)
	}
	if len(tr.Sweep) != len(sr.Sweep) {
		t.Fatal("sweep lengths differ")
	}
	for i := range tr.Sweep {
		if tr.Sweep[i].OptimalID != sr.Sweep[i].OptimalID {
			t.Errorf("sweep %d: optimal %q vs scalar %q", i, tr.Sweep[i].OptimalID, sr.Sweep[i].OptimalID)
		}
	}

	// A decarbonizing trace must resolve to a lower average than the anchor.
	ramp := do(t, s, "POST", "/v1/dse",
		`{"task":"AI (5 kernels)","configs":["a48"],"ci_trace":"decarb-ramp","trace_life_s":315360000}`)
	if ramp.Code != http.StatusOK {
		t.Fatalf("ramp status %d: %s", ramp.Code, ramp.Body.String())
	}
	rr := decodeBody[DSEResponse](t, ramp)
	if rr.CIUse >= 380 || rr.CIUse <= 100 {
		t.Errorf("10y decarb-ramp average = %g, want inside (100, 380)", rr.CIUse)
	}

	// Error paths.
	for name, body := range map[string]string{
		"both ci fields":     `{"task":"AI (5 kernels)","ci_use":380,"ci_trace":"paper-grid"}`,
		"unknown trace":      `{"task":"AI (5 kernels)","ci_trace":"nope"}`,
		"life without trace": `{"task":"AI (5 kernels)","trace_life_s":86400}`,
		"negative life":      `{"task":"AI (5 kernels)","ci_trace":"paper-grid","trace_life_s":-5}`,
	} {
		w := do(t, s, "POST", "/v1/dse", body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", name, w.Code, w.Body.String())
		}
	}
}
