package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"cordoba"
	"cordoba/api"
	"cordoba/internal/cluster"
	"cordoba/internal/job"
)

// initCluster assembles the shard fan-out coordinator when the daemon runs
// as one. Workers and standalone daemons skip it: they already accept shard
// jobs through the ordinary job queue, and GET /v1/cluster answers with the
// bare role.
func (s *Server) initCluster() {
	switch s.cfg.Role {
	case "standalone", "worker":
		return
	case "coordinator":
	default:
		panic(fmt.Sprintf("server: unknown role %q (want standalone, worker, or coordinator)", s.cfg.Role))
	}
	c, err := cluster.New(cluster.Config{
		Workers:        s.cfg.ClusterWorkers,
		APIKey:         s.cfg.WorkerAPIKey,
		HeartbeatEvery: s.cfg.HeartbeatEvery,
		ShardTimeout:   s.cfg.ShardTimeout,
		MaxAttempts:    s.cfg.ShardAttempts,
		Logger:         s.log,
	})
	if err != nil {
		// The only failure mode is a coordinator without workers; surface it
		// at startup rather than on the first sharded submission.
		panic(err)
	}
	s.cluster = c
	s.metrics.SetClusterStats(c.Stats)
	c.Start()
}

// Cluster exposes the coordinator (tests and the daemon banner); nil unless
// the daemon runs role coordinator.
func (s *Server) Cluster() *cluster.Coordinator { return s.cluster }

// ---- GET /v1/cluster ----

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) error {
	if s.cluster != nil {
		_, err := writeJSON(w, http.StatusOK, s.cluster.Stats())
		return err
	}
	_, err := writeJSON(w, http.StatusOK, ClusterStatus{Role: s.cfg.Role})
	return err
}

// ---- GET /v1/jobs/{id}/checkpoint ----

// handleJobCheckpoint serves a job's last saved checkpoint. Coordinators use
// it to salvage a stalled worker's partial shard progress, so a requeued
// shard resumes instead of restarting.
func (s *Server) handleJobCheckpoint(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	cp, err := s.jobs.Checkpoint(id)
	if err != nil {
		return jobLookupError(id, err)
	}
	if len(cp) == 0 {
		return errc(http.StatusConflict, api.CodeNotReady, "job %s has no checkpoint yet", id)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, err = w.Write(cp)
	return err
}

// ---- the shard job runner (worker side) ----

// runShardDSEJob executes one shard of a knob grid: the same checkpointed
// streaming engine as runDSEJob, restricted to the request's shape range.
// The result is the shard's survivor envelope, which the coordinator folds
// into the whole-grid response. Checkpoints persist through the job manager,
// so a coordinator can salvage partial progress before requeueing.
func (s *Server) runShardDSEJob(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
	var req DSERequest
	if err := json.Unmarshal(rc.Request(), &req); err != nil {
		return nil, err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return nil, err
	}
	sh := in.req.Shard
	if sh == nil {
		return nil, errf(http.StatusBadRequest, "shard job body lacks a shard range")
	}
	g, err := s.knobGrid(in.req, in.proc)
	if err != nil {
		return nil, err
	}

	ck := cordoba.CheckpointOptions{
		Every: s.cfg.CheckpointEvery,
		Shard: &cordoba.StreamShard{First: sh.First, Count: sh.Count},
	}
	// A manager-persisted checkpoint (this worker crashed mid-shard) beats
	// the dispatch-time salvage the coordinator attached, which reflects an
	// earlier attempt on another worker.
	resume := rc.Checkpoint()
	if len(resume) == 0 {
		resume = sh.Resume
	}
	if len(resume) > 0 {
		var st cordoba.StreamCheckpoint
		if err := json.Unmarshal(resume, &st); err != nil {
			return nil, err
		}
		ck.Resume = &st
	}
	ck.OnCheckpoint = func(st *cordoba.StreamCheckpoint) error {
		b, err := json.Marshal(st)
		if err != nil {
			return err
		}
		return rc.SaveCheckpoint(b)
	}
	shardPoints := g.Size() / int64(len(g.MACArrays)*len(g.SRAMMB)) * int64(sh.Count)
	ck.OnProgress = func(p cordoba.StreamProgress) {
		rc.ReportProgress(job.Progress{
			GridPoints:  shardPoints,
			Streamed:    p.Streamed,
			Pruned:      p.Pruned,
			Kept:        p.Kept,
			ShapesDone:  p.ShapesDone,
			ShapesTotal: p.ShapesTotal,
		})
	}

	if err := s.pool.Acquire(ctx); err != nil {
		return nil, err
	}
	defer s.pool.Release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ck.StreamOptions = cordoba.StreamOptions{Workers: s.pool.Workers(), Memo: s.memo, Yield: in.acct.Yield}
	res, err := cordoba.ExploreStreamCheckpointed(ctx, in.task, g, in.fab, cordoba.CarbonIntensity(in.req.CIUse), ck)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	s.metrics.ObserveDSEStream(res.Total, res.Total-int64(res.Kept()))
	if len(g.Models) == 0 {
		s.metrics.ObserveModelEvals("act", res.Total)
	} else {
		for _, name := range g.Models {
			s.metrics.ObserveModelEvals(name, res.Total/int64(len(g.Models)))
		}
	}

	env := cluster.EnvelopeFromResult(sh.First, sh.Count, res)
	b, err := json.MarshalIndent(env, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ---- the cluster job runner (coordinator side) ----

// runClusterDSEJob fans one knob grid out across the worker fleet and merges
// the returned envelopes. The response bytes are rendered by the same
// marshaler as the single-node paths, and the merge algebra makes the
// payload byte-identical to running the whole grid on one daemon.
func (s *Server) runClusterDSEJob(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
	if s.cluster == nil {
		return nil, errf(http.StatusBadRequest, "this daemon runs role %q; shards needs a coordinator", s.cfg.Role)
	}
	// Forward the stored request verbatim: it is defaulted but unresolved,
	// so workers re-derive trace-averaged intensities themselves instead of
	// rejecting a body with both ci_trace and ci_use set.
	var req DSERequest
	if err := json.Unmarshal(rc.Request(), &req); err != nil {
		return nil, err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return nil, err
	}
	g, err := s.knobGrid(in.req, in.proc)
	if err != nil {
		return nil, err
	}
	gridPoints := g.Size()

	opts := cluster.RunOptions{Shards: req.Shards}
	if cp := rc.Checkpoint(); len(cp) > 0 {
		var st cluster.Checkpoint
		if err := json.Unmarshal(cp, &st); err != nil {
			return nil, err
		}
		opts.Resume = &st
	}
	opts.OnShardDone = func(cp *cluster.Checkpoint) error {
		b, err := json.Marshal(cp)
		if err != nil {
			return err
		}
		return rc.SaveCheckpoint(b)
	}
	opts.OnProgress = func(p cluster.Progress) {
		rc.ReportProgress(job.Progress{
			GridPoints:  gridPoints,
			Streamed:    p.Streamed,
			Pruned:      p.Pruned,
			Kept:        p.Kept,
			ShardsDone:  p.ShardsDone,
			ShardsTotal: p.ShardsTotal,
		})
	}

	res, err := s.cluster.Run(ctx, req, in.task, cordoba.CarbonIntensity(in.req.CIUse), opts)
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	// The workers streamed the points; the coordinator still owns the
	// grid-level counters so /metrics aggregates match a standalone daemon
	// serving the same request.
	s.metrics.ObserveDSEStream(res.Merged.Total, res.Merged.Total-int64(res.Merged.Kept()))
	if len(g.Models) == 0 {
		s.metrics.ObserveModelEvals("act", res.Merged.Total)
	} else {
		for _, name := range g.Models {
			s.metrics.ObserveModelEvals(name, res.Merged.Total/int64(len(g.Models)))
		}
	}

	resp := renderStreamResponse(in, g, res.Merged)
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
