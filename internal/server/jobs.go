package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"cordoba"
	"cordoba/api"
	"cordoba/internal/job"
)

// The daemon's job kinds. The job manager itself is kind-agnostic; POST
// /v1/jobs picks the kind from the request's shard fields.
const (
	// jobKindDSE is an asynchronous POST /v1/dse body run locally.
	jobKindDSE = "dse"
	// jobKindShardDSE is one shard of a knob grid (request carries "shard");
	// its result is the shard's survivor envelope, not a DSE response.
	jobKindShardDSE = "dse-shard"
	// jobKindClusterDSE is a coordinator-side fan-out (request carries
	// "shards"): dispatch shards to workers, merge envelopes, render the
	// whole-grid response.
	jobKindClusterDSE = "dse-cluster"
	// jobKindSurrogateDSE is a knob-range request served by the budgeted
	// surrogate search (search: "surrogate", or auto-selected for grids above
	// the exhaustive cap). Checkpoints per generation; resumed runs are
	// byte-identical to uninterrupted ones under the fixed seed.
	jobKindSurrogateDSE = "dse-surrogate"
)

// initJobs assembles the async job subsystem: the bounded manager with the
// DSE runner registered, plus the cordobad_jobs_* metrics reporter.
func (s *Server) initJobs() {
	m, err := job.NewManager(job.Config{
		Workers:    s.cfg.JobWorkers,
		QueueDepth: s.cfg.JobQueue,
		Dir:        s.cfg.JobDir,
		Logger:     s.log,
	})
	if err != nil {
		// The only failure mode is an unusable -job-dir; surface it at
		// startup rather than on the first submission.
		panic(err)
	}
	m.SetRunner(jobKindDSE, s.runDSEJob)
	m.SetRunner(jobKindShardDSE, s.runShardDSEJob)
	m.SetRunner(jobKindClusterDSE, s.runClusterDSEJob)
	m.SetRunner(jobKindSurrogateDSE, s.runSurrogateDSEJob)
	s.jobs = m
	s.metrics.SetJobStats(m.Counts)
	m.Start()
}

// Jobs exposes the job manager (tests and the daemon banner).
func (s *Server) Jobs() *job.Manager { return s.jobs }

// Close stops the job workers, giving running jobs a moment to checkpoint
// and requeue, and halts the cluster heartbeat on coordinators. The HTTP
// side is unaffected; Serve calls this on drain.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.jobs.Stop(ctx)
	if s.cluster != nil {
		s.cluster.Stop()
	}
	return err
}

// ---- POST /v1/jobs ----

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) error {
	var req DSERequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	// Validate and normalize at submission so a bad body fails with a 400
	// now, not as a failed job the client has to poll to discover.
	req, err := defaultDSE(req)
	if err != nil {
		return err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return err
	}
	var gridSize int64
	if req.Knobs != nil {
		// Grid sizing and shard bounds are knobGrid's to judge; run it now
		// so an over-cap or out-of-range request is a 400, not a failed job.
		g, err := s.knobGrid(req, in.proc)
		if err != nil {
			return err
		}
		gridSize = g.Size()
	}
	kind := jobKindDSE
	switch {
	case req.Shard != nil:
		kind = jobKindShardDSE
	case req.Shards > 0:
		if s.cluster == nil {
			return errf(http.StatusBadRequest,
				"shards needs a coordinator; this daemon runs role %q (start it with -role coordinator -workers ...)",
				s.cfg.Role)
		}
		kind = jobKindClusterDSE
	case req.Knobs != nil && s.dseSearchMode(req, gridSize) == searchSurrogate:
		kind = jobKindSurrogateDSE
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	st, err := s.jobs.Submit(kind, raw)
	if errors.Is(err, job.ErrQueueFull) {
		return &apiError{
			status:     http.StatusTooManyRequests,
			code:       api.CodeQueueFull,
			msg:        err.Error(),
			retryAfter: s.jobs.RetryAfter(),
		}
	}
	if err != nil {
		return err
	}
	_, err = writeJSON(w, http.StatusAccepted, jobStatusWire(st))
	return err
}

// ---- GET /v1/jobs and /v1/jobs/{id} ----

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) error {
	sts := s.jobs.List()
	out := api.JobList{Jobs: make([]api.JobStatus, 0, len(sts))}
	for _, st := range sts {
		out.Jobs = append(out.Jobs, jobStatusWire(st))
	}
	_, err := writeJSON(w, http.StatusOK, out)
	return err
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) error {
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		return jobLookupError(r.PathValue("id"), err)
	}
	_, err = writeJSON(w, http.StatusOK, jobStatusWire(st))
	return err
}

// ---- DELETE /v1/jobs/{id} ----

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) error {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		return jobLookupError(r.PathValue("id"), err)
	}
	_, err = writeJSON(w, http.StatusOK, jobStatusWire(st))
	return err
}

// ---- GET /v1/jobs/{id}/result ----

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) error {
	result, st, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		return jobLookupError(r.PathValue("id"), err)
	}
	switch st.State {
	case job.StateSucceeded:
		// The runner stored the bytes pre-rendered by the same marshaler the
		// synchronous endpoint uses, so the two paths answer byte-identically.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, err := w.Write(result)
		return err
	case job.StateFailed:
		return errc(http.StatusConflict, api.CodeJobFailed, "job %s failed: %s", st.ID, st.Error)
	case job.StateCanceled:
		return errc(http.StatusConflict, api.CodeJobCanceled, "job %s was canceled", st.ID)
	default:
		return errc(http.StatusConflict, api.CodeNotReady, "job %s is %s; retry after it finishes", st.ID, st.State)
	}
}

func jobLookupError(id string, err error) error {
	if errors.Is(err, job.ErrNotFound) {
		return errf(http.StatusNotFound, "unknown job %q", id)
	}
	return err
}

// jobStatusWire renders a manager status in the public wire form, deriving
// elapsed time and the ETA extrapolation.
func jobStatusWire(st job.Status) api.JobStatus {
	out := api.JobStatus{
		ID:   st.ID,
		Kind: st.Kind,
		State: map[job.State]api.JobState{
			job.StateQueued:    api.JobQueued,
			job.StateRunning:   api.JobRunning,
			job.StateSucceeded: api.JobSucceeded,
			job.StateFailed:    api.JobFailed,
			job.StateCanceled:  api.JobCanceled,
		}[st.State],
		Error: st.Error,
		Progress: api.JobProgress{
			GridPoints:  st.Progress.GridPoints,
			Streamed:    st.Progress.Streamed,
			Pruned:      st.Progress.Pruned,
			Kept:        st.Progress.Kept,
			ShapesDone:  st.Progress.ShapesDone,
			ShapesTotal: st.Progress.ShapesTotal,
			ShardsDone:  st.Progress.ShardsDone,
			ShardsTotal: st.Progress.ShardsTotal,
			Generation:  st.Progress.Generation,
			EvalsUsed:   st.Progress.EvalsUsed,
			EvalsBudget: st.Progress.EvalsBudget,
		},
		CreatedAt:    st.Created,
		Resumes:      st.Resumes,
		Checkpointed: st.HasCheckpoint,
		HasResult:    st.HasResult,
	}
	if !st.Started.IsZero() {
		t := st.Started
		out.StartedAt = &t
		end := time.Now()
		if !st.Finished.IsZero() {
			t2 := st.Finished
			out.FinishedAt = &t2
			end = st.Finished
		}
		elapsed := end.Sub(st.Started).Seconds()
		if elapsed > 0 {
			out.Progress.ElapsedS = elapsed
		}
		if st.State == job.StateRunning && st.Progress.ShapesDone > 0 && st.Progress.ShapesTotal > st.Progress.ShapesDone {
			perShape := elapsed / float64(st.Progress.ShapesDone)
			out.Progress.ETAS = perShape * float64(st.Progress.ShapesTotal-st.Progress.ShapesDone)
		} else if st.State == job.StateRunning && st.Progress.ShardsDone > 0 && st.Progress.ShardsTotal > st.Progress.ShardsDone {
			// Cluster jobs progress in shards, not local shapes.
			perShard := elapsed / float64(st.Progress.ShardsDone)
			out.Progress.ETAS = perShard * float64(st.Progress.ShardsTotal-st.Progress.ShardsDone)
		} else if st.State == job.StateRunning && st.Progress.EvalsUsed > 0 && st.Progress.EvalsBudget > st.Progress.EvalsUsed {
			// Surrogate jobs progress in true evaluations against the budget.
			perEval := elapsed / float64(st.Progress.EvalsUsed)
			out.Progress.ETAS = perEval * float64(st.Progress.EvalsBudget-st.Progress.EvalsUsed)
		}
	}
	return out
}

// ---- the DSE job runner ----

// runDSEJob executes one queued DSE request under the job's context. Knob
// (streaming) requests checkpoint every cfg.CheckpointEvery shapes and
// resume from the last checkpoint after a crash or redeploy; the ordered
// engine makes the resumed run bit-identical to an uninterrupted one. The
// result bytes are rendered with the synchronous endpoint's marshaler so
// GET /v1/jobs/{id}/result matches POST /v1/dse exactly.
func (s *Server) runDSEJob(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
	var req DSERequest
	if err := json.Unmarshal(rc.Request(), &req); err != nil {
		return nil, err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return nil, err
	}

	var resp *DSEResponse
	if in.req.Knobs == nil {
		// Materialized spaces evaluate in one shot; no intermediate state
		// worth persisting.
		resp, err = s.buildDSEGrid(ctx, in)
	} else {
		ck := cordoba.CheckpointOptions{Every: s.cfg.CheckpointEvery}
		if cp := rc.Checkpoint(); len(cp) > 0 {
			var st cordoba.StreamCheckpoint
			if err := json.Unmarshal(cp, &st); err != nil {
				return nil, err
			}
			ck.Resume = &st
		}
		ck.OnCheckpoint = func(st *cordoba.StreamCheckpoint) error {
			b, err := json.Marshal(st)
			if err != nil {
				return err
			}
			return rc.SaveCheckpoint(b)
		}
		g, gerr := s.knobGrid(in.req, in.proc)
		if gerr != nil {
			return nil, gerr
		}
		gridPoints := g.Size()
		ck.OnProgress = func(p cordoba.StreamProgress) {
			rc.ReportProgress(job.Progress{
				GridPoints:  gridPoints,
				Streamed:    p.Streamed,
				Pruned:      p.Pruned,
				Kept:        p.Kept,
				ShapesDone:  p.ShapesDone,
				ShapesTotal: p.ShapesTotal,
			})
		}
		resp, err = s.buildDSEStream(ctx, in, ck)
	}
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// runSurrogateDSEJob executes one queued surrogate-search request. The
// search checkpoints every cfg.CheckpointEvery generations (archive +
// generation counter + RNG state) and resumes byte-identically after a crash
// or redeploy; the result bytes match the synchronous POST /v1/dse form.
func (s *Server) runSurrogateDSEJob(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
	var req DSERequest
	if err := json.Unmarshal(rc.Request(), &req); err != nil {
		return nil, err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return nil, err
	}

	hooks := surrogateRunHooks{every: s.cfg.CheckpointEvery}
	if cp := rc.Checkpoint(); len(cp) > 0 {
		var st cordoba.SurrogateCheckpoint
		if err := json.Unmarshal(cp, &st); err != nil {
			return nil, err
		}
		hooks.resume = &st
	}
	hooks.onCheckpoint = func(st *cordoba.SurrogateCheckpoint) error {
		b, err := json.Marshal(st)
		if err != nil {
			return err
		}
		return rc.SaveCheckpoint(b)
	}
	hooks.onProgress = func(p cordoba.SurrogateProgress) {
		rc.ReportProgress(job.Progress{
			GridPoints:  p.GridPoints,
			Streamed:    p.Evals,
			Kept:        p.Kept,
			Generation:  p.Generation,
			EvalsUsed:   p.Evals,
			EvalsBudget: p.Budget,
		})
	}
	resp, err := s.buildDSESurrogate(ctx, in, hooks)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
