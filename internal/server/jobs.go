package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"cordoba"
	"cordoba/api"
	"cordoba/internal/job"
)

// The daemon's job kinds. The job manager itself is kind-agnostic; POST
// /v1/jobs picks the kind from the request's shard fields.
const (
	// jobKindDSE is an asynchronous POST /v1/dse body run locally.
	jobKindDSE = "dse"
	// jobKindShardDSE is one shard of a knob grid (request carries "shard");
	// its result is the shard's survivor envelope, not a DSE response.
	jobKindShardDSE = "dse-shard"
	// jobKindClusterDSE is a coordinator-side fan-out (request carries
	// "shards"): dispatch shards to workers, merge envelopes, render the
	// whole-grid response.
	jobKindClusterDSE = "dse-cluster"
	// jobKindSurrogateDSE is a knob-range request served by the budgeted
	// surrogate search (search: "surrogate", or auto-selected for grids above
	// the exhaustive cap). Checkpoints per generation; resumed runs are
	// byte-identical to uninterrupted ones under the fixed seed.
	jobKindSurrogateDSE = "dse-surrogate"
)

// initJobs assembles the async job subsystem: the bounded manager with the
// DSE runner registered, plus the cordobad_jobs_* metrics reporter. The
// checkpoint store behind it is pluggable: "dir" files jobs by ID, "cas"
// files them by content hash so any daemon sharing the directory can adopt
// another's orphaned checkpoints.
func (s *Server) initJobs() {
	var store job.Store
	if s.cfg.JobDir != "" {
		var err error
		switch s.cfg.JobStore {
		case "dir":
			store, err = job.NewDirStore(s.cfg.JobDir)
		case "cas":
			store, err = job.NewCASStore(s.cfg.JobDir)
		default:
			err = fmt.Errorf("unknown job store %q (want dir or cas)", s.cfg.JobStore)
		}
		if err != nil {
			// An unusable -job-dir or store name should surface at startup,
			// not on the first submission.
			panic(err)
		}
	}
	m, err := job.NewManager(job.Config{
		Workers:    s.cfg.JobWorkers,
		QueueDepth: s.cfg.JobQueue,
		Store:      store,
		Logger:     s.log,
	})
	if err != nil {
		panic(err)
	}
	m.SetRunner(jobKindDSE, s.runDSEJob)
	m.SetRunner(jobKindShardDSE, s.runShardDSEJob)
	m.SetRunner(jobKindClusterDSE, s.runClusterDSEJob)
	m.SetRunner(jobKindSurrogateDSE, s.runSurrogateDSEJob)
	s.jobs = m
	s.metrics.SetJobStats(m.Counts)
	s.metrics.SetTenantStats(m.TenantCounts)
	m.Start()
}

// Jobs exposes the job manager (tests and the daemon banner).
func (s *Server) Jobs() *job.Manager { return s.jobs }

// Close stops the job workers, giving running jobs a moment to checkpoint
// and requeue, and halts the cluster heartbeat on coordinators. The HTTP
// side is unaffected; Serve calls this on drain.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.jobs.Stop(ctx)
	if s.cluster != nil {
		s.cluster.Stop()
	}
	return err
}

// ---- POST /v1/jobs ----

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) error {
	var req DSERequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		return err
	}
	if !req.Priority.Valid() {
		return errc(http.StatusBadRequest, api.CodePriorityInvalid,
			"unknown priority %q (want interactive, batch, or deferrable)", req.Priority)
	}
	// Validate and normalize at submission so a bad body fails with a 400
	// now, not as a failed job the client has to poll to discover.
	req, err := defaultDSE(req)
	if err != nil {
		return err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return err
	}
	var gridSize int64
	if req.Knobs != nil {
		// Grid sizing and shard bounds are knobGrid's to judge; run it now
		// so an over-cap or out-of-range request is a 400, not a failed job.
		g, err := s.knobGrid(req, in.proc)
		if err != nil {
			return err
		}
		gridSize = g.Size()
	}
	kind := jobKindDSE
	switch {
	case req.Shard != nil:
		kind = jobKindShardDSE
	case req.Shards > 0:
		if s.cluster == nil {
			return errf(http.StatusBadRequest,
				"shards needs a coordinator; this daemon runs role %q (start it with -role coordinator -workers ...)",
				s.cfg.Role)
		}
		kind = jobKindClusterDSE
	case req.Knobs != nil && s.dseSearchMode(req, gridSize) == searchSurrogate:
		kind = jobKindSurrogateDSE
	}
	raw, err := json.Marshal(req)
	if err != nil {
		return err
	}
	tn := s.requestTenant(r)
	sub := job.Submission{
		Kind:    kind,
		Request: raw,
		Tenant:  tn.OwnerName(),
		Limits: job.Limits{
			Weight:    tn.Weight,
			MaxQueued: tn.MaxQueuedJobs,
			MaxPoints: tn.MaxGridPoints,
		},
		Priority: req.Priority,
		Points:   gridSize,
	}
	if req.Priority == api.PriorityDeferrable {
		notBefore, avoided, err := s.planDeferral(req)
		if err != nil {
			return err
		}
		sub.NotBefore, sub.CO2AvoidedG = notBefore, avoided
	}
	st, err := s.jobs.SubmitJob(sub)
	var qe *job.QuotaError
	switch {
	case errors.Is(err, job.ErrQueueFull):
		return &apiError{
			status:     http.StatusTooManyRequests,
			code:       api.CodeQueueFull,
			msg:        err.Error(),
			retryAfter: s.jobs.RetryAfter(),
		}
	case errors.As(err, &qe):
		return &apiError{
			status:     http.StatusTooManyRequests,
			code:       api.CodeQuotaExceeded,
			msg:        qe.Error(),
			retryAfter: s.jobs.RetryAfter(),
		}
	case err != nil:
		return err
	}
	_, err = writeJSON(w, http.StatusAccepted, jobStatusWire(st))
	return err
}

// Deferrable launch-window defaults: the window search needs a nominal job
// shape, and a quarter-hour at a mid-size accelerator's board power is a
// representative exploration. The deadline is the only knob a request can
// move (defer_deadline_s); the others exist to rank start times, where only
// the CI trace's shape matters.
const (
	deferDurationS = 900.0   // 15 min nominal run length
	deferPowerW    = 350.0   // nominal board power
	deferDeadlineS = 86400.0 // latest acceptable finish: a day out
)

// planDeferral routes a deferrable submission through the launch-window
// search over the daemon's region CI trace (-region-trace): the job is held
// until the lowest-carbon window inside the deadline, and the operational
// carbon that avoids versus running immediately is recorded on the job and
// summed in /metrics.
func (s *Server) planDeferral(req DSERequest) (time.Time, float64, error) {
	cum, ok := s.traces[s.cfg.RegionTrace]
	if !ok {
		return time.Time{}, 0, errf(http.StatusInternalServerError,
			"region trace %q not in registry", s.cfg.RegionTrace)
	}
	deadline := req.DeferDeadlineS
	if deadline <= 0 {
		deadline = deferDeadlineS
	}
	s.metrics.ObserveTraceLookup()
	plan, err := cordoba.FindLaunchWindow(cum, cordoba.WindowRequest{
		Duration: cordoba.Time(deferDurationS),
		Power:    cordoba.Power(deferPowerW),
		Deadline: cordoba.Time(deadline),
	})
	if err != nil {
		return time.Time{}, 0, errf(http.StatusBadRequest, "defer window: %v", err)
	}
	s.metrics.ObserveSchedule(plan.Candidates)
	start := plan.Best.Start.Seconds()
	if start <= 0 {
		return time.Time{}, 0, nil // now is already the cleanest start
	}
	notBefore := time.Now().UTC().Add(time.Duration(start * float64(time.Second)))
	avoided := plan.Immediate.Carbon.Grams() - plan.Best.Carbon.Grams()
	return notBefore, avoided, nil
}

// ---- GET /v1/jobs and /v1/jobs/{id} ----

// jobListQuery is the parsed GET /v1/jobs query string.
type jobListQuery struct {
	state    job.State    // "" = all
	priority api.Priority // "" = all (an explicit "batch" also matches unset)
	limit    int
	// cursor resumes after the (created, id) position of the previous
	// page's last entry; zero created means first page.
	cursorCreated time.Time
	cursorID      string
}

const (
	defaultJobPageSize = 100
	maxJobPageSize     = 500
)

// parseJobListQuery validates ?state=&priority=&limit=&cursor=. Cursors are
// opaque base64("<created_unixnano>|<id>") minted by jobListCursor; a
// malformed one is a 400, not a silent restart from page one.
func parseJobListQuery(q url.Values) (jobListQuery, error) {
	out := jobListQuery{limit: defaultJobPageSize}
	if v := q.Get("state"); v != "" {
		switch job.State(v) {
		case job.StateQueued, job.StateRunning, job.StateSucceeded, job.StateFailed, job.StateCanceled:
			out.state = job.State(v)
		default:
			return out, errf(http.StatusBadRequest, "unknown state %q", v)
		}
	}
	if v := q.Get("priority"); v != "" {
		p := api.Priority(v)
		if !p.Valid() {
			return out, errc(http.StatusBadRequest, api.CodePriorityInvalid,
				"unknown priority %q (want interactive, batch, or deferrable)", v)
		}
		out.priority = p
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return out, errf(http.StatusBadRequest, "limit must be a positive integer, got %q", v)
		}
		if n > maxJobPageSize {
			n = maxJobPageSize
		}
		out.limit = n
	}
	if v := q.Get("cursor"); v != "" {
		b, err := base64.StdEncoding.DecodeString(v)
		if err != nil {
			return out, errf(http.StatusBadRequest, "malformed cursor")
		}
		nanos, id, ok := strings.Cut(string(b), "|")
		n, perr := strconv.ParseInt(nanos, 10, 64)
		if !ok || perr != nil || id == "" {
			return out, errf(http.StatusBadRequest, "malformed cursor")
		}
		out.cursorCreated = time.Unix(0, n).UTC()
		out.cursorID = id
	}
	return out, nil
}

// jobListCursor mints the opaque continuation token for a page ending at st.
func jobListCursor(st job.Status) string {
	return base64.StdEncoding.EncodeToString(
		[]byte(strconv.FormatInt(st.Created.UnixNano(), 10) + "|" + st.ID))
}

// matches applies the state/priority filters.
func (q jobListQuery) matches(st job.Status) bool {
	if q.state != "" && st.State != q.state {
		return false
	}
	if q.priority != "" && st.Priority.OrDefault() != q.priority.OrDefault() {
		return false
	}
	return true
}

// after reports whether st sorts strictly after the cursor position in the
// listing's (created desc, id desc) order — i.e. belongs to a later page.
func (q jobListQuery) after(st job.Status) bool {
	if q.cursorCreated.IsZero() {
		return true
	}
	if !st.Created.Equal(q.cursorCreated) {
		return st.Created.Before(q.cursorCreated)
	}
	return st.ID < q.cursorID
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) error {
	q, err := parseJobListQuery(r.URL.Query())
	if err != nil {
		return err
	}
	sts := s.jobs.List() // newest first: (created desc, id desc)
	out := api.JobList{Jobs: make([]api.JobStatus, 0, min(len(sts), q.limit))}
	var last job.Status
	for _, st := range sts {
		if !q.matches(st) || !q.after(st) {
			continue
		}
		if len(out.Jobs) == q.limit {
			// One more match exists beyond the page: the cursor resumes
			// after the page's last entry. Keyed on (created, id) rather
			// than an offset, the cursor stays stable while new jobs arrive
			// at the head of the listing.
			out.NextCursor = jobListCursor(last)
			break
		}
		out.Jobs = append(out.Jobs, jobStatusWire(st))
		last = st
	}
	_, err = writeJSON(w, http.StatusOK, out)
	return err
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) error {
	st, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		return jobLookupError(r.PathValue("id"), err)
	}
	_, err = writeJSON(w, http.StatusOK, jobStatusWire(st))
	return err
}

// ---- DELETE /v1/jobs/{id} ----

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) error {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		return jobLookupError(r.PathValue("id"), err)
	}
	_, err = writeJSON(w, http.StatusOK, jobStatusWire(st))
	return err
}

// ---- GET /v1/jobs/{id}/result ----

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) error {
	result, st, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		return jobLookupError(r.PathValue("id"), err)
	}
	switch st.State {
	case job.StateSucceeded:
		// The runner stored the bytes pre-rendered by the same marshaler the
		// synchronous endpoint uses, so the two paths answer byte-identically.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, err := w.Write(result)
		return err
	case job.StateFailed:
		return errc(http.StatusConflict, api.CodeJobFailed, "job %s failed: %s", st.ID, st.Error)
	case job.StateCanceled:
		return errc(http.StatusConflict, api.CodeJobCanceled, "job %s was canceled", st.ID)
	default:
		return errc(http.StatusConflict, api.CodeNotReady, "job %s is %s; retry after it finishes", st.ID, st.State)
	}
}

func jobLookupError(id string, err error) error {
	if errors.Is(err, job.ErrNotFound) {
		return errf(http.StatusNotFound, "unknown job %q", id)
	}
	return err
}

// jobStatusWire renders a manager status in the public wire form, deriving
// elapsed time and the ETA extrapolation.
func jobStatusWire(st job.Status) api.JobStatus {
	out := api.JobStatus{
		ID:       st.ID,
		Kind:     st.Kind,
		Tenant:   st.Tenant,
		Priority: st.Priority,
		State: map[job.State]api.JobState{
			job.StateQueued:    api.JobQueued,
			job.StateRunning:   api.JobRunning,
			job.StateSucceeded: api.JobSucceeded,
			job.StateFailed:    api.JobFailed,
			job.StateCanceled:  api.JobCanceled,
		}[st.State],
		Error: st.Error,
		Progress: api.JobProgress{
			GridPoints:  st.Progress.GridPoints,
			Streamed:    st.Progress.Streamed,
			Pruned:      st.Progress.Pruned,
			Kept:        st.Progress.Kept,
			ShapesDone:  st.Progress.ShapesDone,
			ShapesTotal: st.Progress.ShapesTotal,
			ShardsDone:  st.Progress.ShardsDone,
			ShardsTotal: st.Progress.ShardsTotal,
			Generation:  st.Progress.Generation,
			EvalsUsed:   st.Progress.EvalsUsed,
			EvalsBudget: st.Progress.EvalsBudget,
		},
		CreatedAt:    st.Created,
		NotBefore:    st.NotBefore,
		CO2AvoidedG:  st.CO2AvoidedG,
		Resumes:      st.Resumes,
		Checkpointed: st.HasCheckpoint,
		HasResult:    st.HasResult,
	}
	if !st.Started.IsZero() {
		t := st.Started
		out.StartedAt = &t
		end := time.Now()
		if !st.Finished.IsZero() {
			t2 := st.Finished
			out.FinishedAt = &t2
			end = st.Finished
		}
		elapsed := end.Sub(st.Started).Seconds()
		if elapsed > 0 {
			out.Progress.ElapsedS = elapsed
		}
		if st.State == job.StateRunning && st.Progress.ShapesDone > 0 && st.Progress.ShapesTotal > st.Progress.ShapesDone {
			perShape := elapsed / float64(st.Progress.ShapesDone)
			out.Progress.ETAS = perShape * float64(st.Progress.ShapesTotal-st.Progress.ShapesDone)
		} else if st.State == job.StateRunning && st.Progress.ShardsDone > 0 && st.Progress.ShardsTotal > st.Progress.ShardsDone {
			// Cluster jobs progress in shards, not local shapes.
			perShard := elapsed / float64(st.Progress.ShardsDone)
			out.Progress.ETAS = perShard * float64(st.Progress.ShardsTotal-st.Progress.ShardsDone)
		} else if st.State == job.StateRunning && st.Progress.EvalsUsed > 0 && st.Progress.EvalsBudget > st.Progress.EvalsUsed {
			// Surrogate jobs progress in true evaluations against the budget.
			perEval := elapsed / float64(st.Progress.EvalsUsed)
			out.Progress.ETAS = perEval * float64(st.Progress.EvalsBudget-st.Progress.EvalsUsed)
		}
	}
	return out
}

// ---- the DSE job runner ----

// runDSEJob executes one queued DSE request under the job's context. Knob
// (streaming) requests checkpoint every cfg.CheckpointEvery shapes and
// resume from the last checkpoint after a crash or redeploy; the ordered
// engine makes the resumed run bit-identical to an uninterrupted one. The
// result bytes are rendered with the synchronous endpoint's marshaler so
// GET /v1/jobs/{id}/result matches POST /v1/dse exactly.
func (s *Server) runDSEJob(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
	var req DSERequest
	if err := json.Unmarshal(rc.Request(), &req); err != nil {
		return nil, err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return nil, err
	}

	var resp *DSEResponse
	if in.req.Knobs == nil {
		// Materialized spaces evaluate in one shot; no intermediate state
		// worth persisting.
		resp, err = s.buildDSEGrid(ctx, in)
	} else {
		ck := cordoba.CheckpointOptions{Every: s.cfg.CheckpointEvery}
		if cp := rc.Checkpoint(); len(cp) > 0 {
			var st cordoba.StreamCheckpoint
			if err := json.Unmarshal(cp, &st); err != nil {
				return nil, err
			}
			ck.Resume = &st
		}
		ck.OnCheckpoint = func(st *cordoba.StreamCheckpoint) error {
			b, err := json.Marshal(st)
			if err != nil {
				return err
			}
			return rc.SaveCheckpoint(b)
		}
		g, gerr := s.knobGrid(in.req, in.proc)
		if gerr != nil {
			return nil, gerr
		}
		gridPoints := g.Size()
		ck.OnProgress = func(p cordoba.StreamProgress) {
			rc.ReportProgress(job.Progress{
				GridPoints:  gridPoints,
				Streamed:    p.Streamed,
				Pruned:      p.Pruned,
				Kept:        p.Kept,
				ShapesDone:  p.ShapesDone,
				ShapesTotal: p.ShapesTotal,
			})
		}
		resp, err = s.buildDSEStream(ctx, in, ck)
	}
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// runSurrogateDSEJob executes one queued surrogate-search request. The
// search checkpoints every cfg.CheckpointEvery generations (archive +
// generation counter + RNG state) and resumes byte-identically after a crash
// or redeploy; the result bytes match the synchronous POST /v1/dse form.
func (s *Server) runSurrogateDSEJob(ctx context.Context, rc job.RunContext) (json.RawMessage, error) {
	var req DSERequest
	if err := json.Unmarshal(rc.Request(), &req); err != nil {
		return nil, err
	}
	in, err := s.resolveDSE(req)
	if err != nil {
		return nil, err
	}

	hooks := surrogateRunHooks{every: s.cfg.CheckpointEvery}
	if cp := rc.Checkpoint(); len(cp) > 0 {
		var st cordoba.SurrogateCheckpoint
		if err := json.Unmarshal(cp, &st); err != nil {
			return nil, err
		}
		hooks.resume = &st
	}
	hooks.onCheckpoint = func(st *cordoba.SurrogateCheckpoint) error {
		b, err := json.Marshal(st)
		if err != nil {
			return err
		}
		return rc.SaveCheckpoint(b)
	}
	hooks.onProgress = func(p cordoba.SurrogateProgress) {
		rc.ReportProgress(job.Progress{
			GridPoints:  p.GridPoints,
			Streamed:    p.Evals,
			Kept:        p.Kept,
			Generation:  p.Generation,
			EvalsUsed:   p.Evals,
			EvalsBudget: p.Budget,
		})
	}
	resp, err := s.buildDSESurrogate(ctx, in, hooks)
	if err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(resp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
