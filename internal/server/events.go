package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"cordoba/api"
	"cordoba/internal/job"
)

// ---- GET /v1/jobs/{id}/events ----

// handleJobEvents streams a job's lifecycle as Server-Sent Events: an
// initial status snapshot, then one event per state change, progress
// report, and checkpoint, ending with the terminal `done` event (after
// which the stream closes). Each event's SSE id is the job's monotonic
// sequence number; a client reconnecting after a drop passes it back as
// ?after= (or Last-Event-ID) to suppress frames it already processed.
//
// The route is wrapped by instrumentStream, not instrument: a watch
// legitimately outlives the request timeout and ends on client disconnect
// or job completion instead.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	after, err := eventsAfter(r)
	if err != nil {
		return err
	}
	ch, cancel, werr := s.jobs.Watch(id)
	if werr != nil {
		return jobLookupError(id, werr)
	}
	defer cancel()

	fl, ok := w.(http.Flusher)
	if !ok {
		return errf(http.StatusInternalServerError, "response writer cannot stream")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass frames through
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case ev, open := <-ch:
			if !open {
				return nil
			}
			if ev.Seq <= after {
				continue
			}
			if err := writeSSE(w, ev); err != nil {
				return nil // client went away mid-write; nothing to report
			}
			fl.Flush()
		case <-r.Context().Done():
			return nil
		}
	}
}

// eventsAfter parses the resume position: ?after= wins, the standard
// Last-Event-ID header (sent automatically by EventSource reconnects) is
// the fallback. Zero means "from the snapshot".
func eventsAfter(r *http.Request) (int64, error) {
	v := r.URL.Query().Get("after")
	if v == "" {
		v = r.Header.Get("Last-Event-ID")
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, errf(http.StatusBadRequest, "after must be a non-negative integer, got %q", v)
	}
	return n, nil
}

// writeSSE renders one event frame: id, event type, and the api.JobEvent
// JSON as data. SSE data must be newline-free to stay one frame, so the
// payload is compact-marshaled, never indented.
func writeSSE(w http.ResponseWriter, ev job.Event) error {
	wire := api.JobEvent{Seq: ev.Seq, Type: string(ev.Type), Job: jobStatusWire(ev.Status)}
	b, err := json.Marshal(wire)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b)
	return err
}
