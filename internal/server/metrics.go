package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"cordoba/api"
	"cordoba/internal/job"
)

// latencyBuckets are the upper bounds (seconds) of the request-duration
// histogram. They bracket the observed spread: a cache hit answers in
// microseconds, a full 121-point grid evaluation in hundreds of
// milliseconds on a loaded box.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// routeMetrics accumulates per-route counters. Everything is lock-free on
// the hot path: status-code counters live in a sync.Map of *atomic.Int64,
// the histogram in a fixed bucket array.
type routeMetrics struct {
	codes sync.Map // int status → *atomic.Int64

	bucketCounts []atomic.Int64 // cumulative at render time, raw per-bucket here
	count        atomic.Int64
	sumNanos     atomic.Int64
}

func (rm *routeMetrics) observe(code int, seconds float64) {
	v, ok := rm.codes.Load(code)
	if !ok {
		v, _ = rm.codes.LoadOrStore(code, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)

	idx := len(latencyBuckets) // +Inf bucket
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			idx = i
			break
		}
	}
	rm.bucketCounts[idx].Add(1)
	rm.count.Add(1)
	rm.sumNanos.Add(int64(seconds * 1e9))
}

// Metrics is cordobad's observability registry: request counts and latency
// histograms per route, cache hits/misses, in-flight requests, and the
// evaluation worker-pool gauges. It renders itself in Prometheus text
// exposition format and is implemented with sync/atomic only.
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeMetrics

	inflight    atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	evalInflight atomic.Int64 // grid evaluations currently running
	evalWaiting  atomic.Int64 // requests queued for a pool slot
	poolSize     int

	dseStreamed atomic.Int64 // grid points enumerated by the streaming engine
	dsePruned   atomic.Int64 // of those, proven never-optimal and discarded

	surrogateRuns        atomic.Int64 // surrogate searches served
	surrogateEvals       atomic.Int64 // true evaluations they paid
	surrogateSkipped     atomic.Int64 // candidates the RBF ranking filtered out
	surrogateGenerations atomic.Int64 // NSGA generations run across them

	modelEvals sync.Map // string backend name → *atomic.Int64 design evaluations

	scheduleSearches atomic.Int64 // launch-window searches served
	scheduleWindows  atomic.Int64 // candidate windows evaluated across them
	traceLookups     atomic.Int64 // named-trace resolutions (schedule + dse)

	// memoStats, when set, reports the shared shape-profile memo cache
	// (hits, misses, capacity evictions, live entries) at exposition time.
	memoStats func() (hits, misses, evictions int64, entries int)

	// jobStats, when set, samples the async job manager's counters at
	// exposition time (queue depth, running jobs, lifecycle totals).
	jobStats func() job.Counts

	// tenantStats, when set, samples per-tenant queue populations at
	// exposition time (keyed by tenant name, "" = anonymous).
	tenantStats func() map[string]job.TenantCount

	// clusterStats, when set, samples the shard fan-out coordinator at
	// exposition time (shard counters, per-worker liveness and latency).
	clusterStats func() api.ClusterStatus
}

// NewMetrics returns an empty registry; poolSize is exported as a gauge so
// dashboards can plot utilization = inflight/size.
func NewMetrics(poolSize int) *Metrics {
	return &Metrics{routes: map[string]*routeMetrics{}, poolSize: poolSize}
}

func (m *Metrics) route(name string) *routeMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm, ok := m.routes[name]
	if !ok {
		rm = &routeMetrics{bucketCounts: make([]atomic.Int64, len(latencyBuckets)+1)}
		m.routes[name] = rm
	}
	return rm
}

// ObserveRequest records one completed request on a route.
func (m *Metrics) ObserveRequest(route string, code int, seconds float64) {
	m.route(route).observe(code, seconds)
}

// CacheHit / CacheMiss record response-cache outcomes.
func (m *Metrics) CacheHit()  { m.cacheHits.Add(1) }
func (m *Metrics) CacheMiss() { m.cacheMisses.Add(1) }

// CacheCounts returns the (hits, misses) totals.
func (m *Metrics) CacheCounts() (hits, misses int64) {
	return m.cacheHits.Load(), m.cacheMisses.Load()
}

// ObserveDSEStream records one streaming exploration: how many grid points
// it enumerated and how many it proved never-optimal along the way.
func (m *Metrics) ObserveDSEStream(streamed, pruned int64) {
	m.dseStreamed.Add(streamed)
	m.dsePruned.Add(pruned)
}

// DSEStreamCounts returns the (streamed, pruned) point totals.
func (m *Metrics) DSEStreamCounts() (streamed, pruned int64) {
	return m.dseStreamed.Load(), m.dsePruned.Load()
}

// ObserveDSESurrogate records one surrogate-guided search: the true
// evaluations it paid, the candidates its ranking filtered without paying,
// and the generations it ran.
func (m *Metrics) ObserveDSESurrogate(evals, skipped, generations int64) {
	m.surrogateRuns.Add(1)
	m.surrogateEvals.Add(evals)
	m.surrogateSkipped.Add(skipped)
	m.surrogateGenerations.Add(generations)
}

// DSESurrogateCounts returns the (runs, evals, skipped, generations) totals.
func (m *Metrics) DSESurrogateCounts() (runs, evals, skipped, generations int64) {
	return m.surrogateRuns.Load(), m.surrogateEvals.Load(),
		m.surrogateSkipped.Load(), m.surrogateGenerations.Load()
}

// ObserveModelEvals records n design evaluations priced by the named
// embodied-carbon backend ("act", "chiplet", "stacked-3d").
func (m *Metrics) ObserveModelEvals(model string, n int64) {
	if model == "" {
		model = "act"
	}
	v, ok := m.modelEvals.Load(model)
	if !ok {
		v, _ = m.modelEvals.LoadOrStore(model, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(n)
}

// ModelEvalCounts returns per-backend evaluation totals.
func (m *Metrics) ModelEvalCounts() map[string]int64 {
	out := map[string]int64{}
	m.modelEvals.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	return out
}

// ObserveSchedule records one launch-window search and the number of
// candidate windows it evaluated.
func (m *Metrics) ObserveSchedule(candidates int) {
	m.scheduleSearches.Add(1)
	m.scheduleWindows.Add(int64(candidates))
}

// ScheduleCounts returns the (searches, windows) totals.
func (m *Metrics) ScheduleCounts() (searches, windows int64) {
	return m.scheduleSearches.Load(), m.scheduleWindows.Load()
}

// ObserveTraceLookup records one named-trace resolution.
func (m *Metrics) ObserveTraceLookup() { m.traceLookups.Add(1) }

// TraceLookups returns the named-trace resolution total.
func (m *Metrics) TraceLookups() int64 { return m.traceLookups.Load() }

// SetMemoStats installs the memo-cache reporter sampled by WriteProm.
func (m *Metrics) SetMemoStats(f func() (hits, misses, evictions int64, entries int)) {
	m.memoStats = f
}

// SetJobStats installs the job-manager reporter sampled by WriteProm.
func (m *Metrics) SetJobStats(f func() job.Counts) {
	m.jobStats = f
}

// SetTenantStats installs the per-tenant population reporter sampled by
// WriteProm.
func (m *Metrics) SetTenantStats(f func() map[string]job.TenantCount) {
	m.tenantStats = f
}

// SetClusterStats installs the coordinator reporter sampled by WriteProm.
func (m *Metrics) SetClusterStats(f func() api.ClusterStatus) {
	m.clusterStats = f
}

// WriteProm renders the registry in Prometheus text exposition format.
func (m *Metrics) WriteProm(w io.Writer) error {
	m.mu.Lock()
	names := make([]string, 0, len(m.routes))
	for name := range m.routes {
		names = append(names, name)
	}
	routes := make(map[string]*routeMetrics, len(m.routes))
	for name, rm := range m.routes {
		routes[name] = rm
	}
	m.mu.Unlock()
	sort.Strings(names)

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP cordobad_requests_total Completed HTTP requests by route and status code.\n")
	p("# TYPE cordobad_requests_total counter\n")
	for _, name := range names {
		rm := routes[name]
		type cc struct {
			code int
			n    int64
		}
		var codes []cc
		rm.codes.Range(func(k, v any) bool {
			codes = append(codes, cc{k.(int), v.(*atomic.Int64).Load()})
			return true
		})
		sort.Slice(codes, func(i, j int) bool { return codes[i].code < codes[j].code })
		for _, c := range codes {
			p("cordobad_requests_total{route=%q,code=\"%d\"} %d\n", name, c.code, c.n)
		}
	}

	p("# HELP cordobad_request_duration_seconds Request latency by route.\n")
	p("# TYPE cordobad_request_duration_seconds histogram\n")
	for _, name := range names {
		rm := routes[name]
		var cum int64
		for i, ub := range latencyBuckets {
			cum += rm.bucketCounts[i].Load()
			p("cordobad_request_duration_seconds_bucket{route=%q,le=\"%g\"} %d\n", name, ub, cum)
		}
		cum += rm.bucketCounts[len(latencyBuckets)].Load()
		p("cordobad_request_duration_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", name, cum)
		p("cordobad_request_duration_seconds_sum{route=%q} %g\n", name, float64(rm.sumNanos.Load())/1e9)
		p("cordobad_request_duration_seconds_count{route=%q} %d\n", name, rm.count.Load())
	}

	p("# HELP cordobad_cache_hits_total Response-cache hits.\n")
	p("# TYPE cordobad_cache_hits_total counter\n")
	p("cordobad_cache_hits_total %d\n", m.cacheHits.Load())
	p("# HELP cordobad_cache_misses_total Response-cache misses.\n")
	p("# TYPE cordobad_cache_misses_total counter\n")
	p("cordobad_cache_misses_total %d\n", m.cacheMisses.Load())

	p("# HELP cordobad_dse_points_streamed_total Grid points enumerated by the streaming DSE engine.\n")
	p("# TYPE cordobad_dse_points_streamed_total counter\n")
	p("cordobad_dse_points_streamed_total %d\n", m.dseStreamed.Load())
	p("# HELP cordobad_dse_points_pruned_total Grid points proven never-optimal and discarded while streaming.\n")
	p("# TYPE cordobad_dse_points_pruned_total counter\n")
	p("cordobad_dse_points_pruned_total %d\n", m.dsePruned.Load())
	p("# HELP cordobad_dse_surrogate_runs_total Surrogate-guided Pareto searches served.\n")
	p("# TYPE cordobad_dse_surrogate_runs_total counter\n")
	p("cordobad_dse_surrogate_runs_total %d\n", m.surrogateRuns.Load())
	p("# HELP cordobad_dse_surrogate_evaluations_total True design evaluations paid by surrogate searches.\n")
	p("# TYPE cordobad_dse_surrogate_evaluations_total counter\n")
	p("cordobad_dse_surrogate_evaluations_total %d\n", m.surrogateEvals.Load())
	p("# HELP cordobad_dse_surrogate_skipped_total Candidates filtered by the surrogate ranking without a true evaluation.\n")
	p("# TYPE cordobad_dse_surrogate_skipped_total counter\n")
	p("cordobad_dse_surrogate_skipped_total %d\n", m.surrogateSkipped.Load())
	p("# HELP cordobad_dse_surrogate_generations_total NSGA generations run across surrogate searches.\n")
	p("# TYPE cordobad_dse_surrogate_generations_total counter\n")
	p("cordobad_dse_surrogate_generations_total %d\n", m.surrogateGenerations.Load())

	evals := m.ModelEvalCounts()
	models := make([]string, 0, len(evals))
	for name := range evals {
		models = append(models, name)
	}
	sort.Strings(models)
	p("# HELP cordobad_model_evaluations_total Design evaluations by embodied-carbon backend.\n")
	p("# TYPE cordobad_model_evaluations_total counter\n")
	for _, name := range models {
		p("cordobad_model_evaluations_total{model=%q} %d\n", name, evals[name])
	}

	p("# HELP cordobad_schedule_searches_total Launch-window searches served by POST /v1/schedule.\n")
	p("# TYPE cordobad_schedule_searches_total counter\n")
	p("cordobad_schedule_searches_total %d\n", m.scheduleSearches.Load())
	p("# HELP cordobad_schedule_windows_total Candidate execution windows evaluated across all searches.\n")
	p("# TYPE cordobad_schedule_windows_total counter\n")
	p("cordobad_schedule_windows_total %d\n", m.scheduleWindows.Load())
	p("# HELP cordobad_trace_lookups_total Named CI_use(t) trace resolutions.\n")
	p("# TYPE cordobad_trace_lookups_total counter\n")
	p("cordobad_trace_lookups_total %d\n", m.traceLookups.Load())

	if m.memoStats != nil {
		hits, misses, evictions, entries := m.memoStats()
		p("# HELP cordobad_memo_hits_total Shape-profile memo cache hits.\n")
		p("# TYPE cordobad_memo_hits_total counter\n")
		p("cordobad_memo_hits_total %d\n", hits)
		p("# HELP cordobad_memo_misses_total Shape-profile memo cache misses.\n")
		p("# TYPE cordobad_memo_misses_total counter\n")
		p("cordobad_memo_misses_total %d\n", misses)
		p("# HELP cordobad_memo_evictions_total Shape profiles dropped by capacity eviction.\n")
		p("# TYPE cordobad_memo_evictions_total counter\n")
		p("cordobad_memo_evictions_total %d\n", evictions)
		p("# HELP cordobad_memo_entries Shape profiles currently cached.\n")
		p("# TYPE cordobad_memo_entries gauge\n")
		p("cordobad_memo_entries %d\n", entries)
	}

	if m.jobStats != nil {
		c := m.jobStats()
		p("# HELP cordobad_jobs_queued Jobs waiting for a worker.\n")
		p("# TYPE cordobad_jobs_queued gauge\n")
		p("cordobad_jobs_queued %d\n", c.Queued)
		p("# HELP cordobad_jobs_running Jobs currently executing.\n")
		p("# TYPE cordobad_jobs_running gauge\n")
		p("cordobad_jobs_running %d\n", c.Running)
		p("# HELP cordobad_jobs_finished_total Jobs finished by terminal state.\n")
		p("# TYPE cordobad_jobs_finished_total counter\n")
		p("cordobad_jobs_finished_total{state=\"succeeded\"} %d\n", c.Succeeded)
		p("cordobad_jobs_finished_total{state=\"failed\"} %d\n", c.Failed)
		p("cordobad_jobs_finished_total{state=\"canceled\"} %d\n", c.Canceled)
		p("# HELP cordobad_jobs_submitted_total Jobs accepted by admission control.\n")
		p("# TYPE cordobad_jobs_submitted_total counter\n")
		p("cordobad_jobs_submitted_total %d\n", c.Submitted)
		p("# HELP cordobad_jobs_rejected_total Submissions rejected with 429 queue_full.\n")
		p("# TYPE cordobad_jobs_rejected_total counter\n")
		p("cordobad_jobs_rejected_total %d\n", c.Rejected)
		p("# HELP cordobad_jobs_resumed_total Jobs restarted from a persisted checkpoint.\n")
		p("# TYPE cordobad_jobs_resumed_total counter\n")
		p("cordobad_jobs_resumed_total %d\n", c.Resumed)
		p("# HELP cordobad_jobs_checkpoints_total Checkpoints written by running jobs.\n")
		p("# TYPE cordobad_jobs_checkpoints_total counter\n")
		p("cordobad_jobs_checkpoints_total %d\n", c.Checkpoints)
		p("# HELP cordobad_jobs_quota_rejected_total Submissions rejected with 429 quota_exceeded by a per-tenant limit.\n")
		p("# TYPE cordobad_jobs_quota_rejected_total counter\n")
		p("cordobad_jobs_quota_rejected_total %d\n", c.QuotaRejected)
		p("# HELP cordobad_jobs_deferred_total Deferrable jobs held for a lower-carbon launch window.\n")
		p("# TYPE cordobad_jobs_deferred_total counter\n")
		p("cordobad_jobs_deferred_total %d\n", c.Deferred)
		p("# HELP cordobad_jobs_co2_avoided_grams Operational carbon avoided by deferring jobs to cleaner windows, per the region CI trace.\n")
		p("# TYPE cordobad_jobs_co2_avoided_grams counter\n")
		p("cordobad_jobs_co2_avoided_grams %g\n", c.CO2AvoidedG)
		p("# HELP cordobad_jobs_adopted_total Submissions that resumed from another job's content-addressed checkpoint.\n")
		p("# TYPE cordobad_jobs_adopted_total counter\n")
		p("cordobad_jobs_adopted_total %d\n", c.Adopted)
	}

	if m.tenantStats != nil {
		tc := m.tenantStats()
		tenants := make([]string, 0, len(tc))
		for name := range tc {
			tenants = append(tenants, name)
		}
		sort.Strings(tenants)
		display := func(name string) string {
			if name == "" {
				return "anonymous"
			}
			return name
		}
		p("# HELP cordobad_tenant_jobs Per-tenant job population by state.\n")
		p("# TYPE cordobad_tenant_jobs gauge\n")
		for _, name := range tenants {
			p("cordobad_tenant_jobs{tenant=%q,state=\"queued\"} %d\n", display(name), tc[name].Queued)
			p("cordobad_tenant_jobs{tenant=%q,state=\"running\"} %d\n", display(name), tc[name].Running)
		}
		p("# HELP cordobad_tenant_grid_points_in_flight Per-tenant grid points across queued and running jobs.\n")
		p("# TYPE cordobad_tenant_grid_points_in_flight gauge\n")
		for _, name := range tenants {
			p("cordobad_tenant_grid_points_in_flight{tenant=%q} %d\n", display(name), tc[name].Points)
		}
	}

	if m.clusterStats != nil {
		cs := m.clusterStats()
		p("# HELP cordobad_cluster_shards_dispatched_total Shard attempts sent to workers.\n")
		p("# TYPE cordobad_cluster_shards_dispatched_total counter\n")
		p("cordobad_cluster_shards_dispatched_total %d\n", cs.ShardsDispatched)
		p("# HELP cordobad_cluster_shards_retried_total Shards requeued after a stall, cancellation, or worker loss.\n")
		p("# TYPE cordobad_cluster_shards_retried_total counter\n")
		p("cordobad_cluster_shards_retried_total %d\n", cs.ShardsRetried)
		p("# HELP cordobad_cluster_shards_merged_total Shard envelopes folded into whole-grid results.\n")
		p("# TYPE cordobad_cluster_shards_merged_total counter\n")
		p("cordobad_cluster_shards_merged_total %d\n", cs.ShardsMerged)
		p("# HELP cordobad_cluster_worker_up Worker liveness from the last heartbeat (1 = up).\n")
		p("# TYPE cordobad_cluster_worker_up gauge\n")
		for _, w := range cs.Workers {
			up := 0
			if w.State == "up" {
				up = 1
			}
			p("cordobad_cluster_worker_up{worker=%q} %d\n", w.URL, up)
		}
		p("# HELP cordobad_cluster_worker_shards_total Shards finished per worker by outcome.\n")
		p("# TYPE cordobad_cluster_worker_shards_total counter\n")
		for _, w := range cs.Workers {
			p("cordobad_cluster_worker_shards_total{worker=%q,outcome=\"done\"} %d\n", w.URL, w.ShardsDone)
			p("cordobad_cluster_worker_shards_total{worker=%q,outcome=\"failed\"} %d\n", w.URL, w.ShardsFailed)
		}
		p("# HELP cordobad_cluster_worker_shard_seconds Wall-clock spent on successful shards per worker.\n")
		p("# TYPE cordobad_cluster_worker_shard_seconds summary\n")
		for _, w := range cs.Workers {
			p("cordobad_cluster_worker_shard_seconds_sum{worker=%q} %g\n", w.URL, w.AvgShardS*float64(w.ShardsDone))
			p("cordobad_cluster_worker_shard_seconds_count{worker=%q} %d\n", w.URL, w.ShardsDone)
		}
	}

	p("# HELP cordobad_inflight_requests HTTP requests currently being served.\n")
	p("# TYPE cordobad_inflight_requests gauge\n")
	p("cordobad_inflight_requests %d\n", m.inflight.Load())

	p("# HELP cordobad_pool_size Evaluation worker-pool capacity.\n")
	p("# TYPE cordobad_pool_size gauge\n")
	p("cordobad_pool_size %d\n", m.poolSize)
	p("# HELP cordobad_pool_inflight_evaluations Grid evaluations currently running.\n")
	p("# TYPE cordobad_pool_inflight_evaluations gauge\n")
	p("cordobad_pool_inflight_evaluations %d\n", m.evalInflight.Load())
	p("# HELP cordobad_pool_waiting_requests Requests queued for an evaluation slot.\n")
	p("# TYPE cordobad_pool_waiting_requests gauge\n")
	p("cordobad_pool_waiting_requests %d\n", m.evalWaiting.Load())

	return err
}
