package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"cordoba"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// do runs one request through the full middleware stack and returns the
// recorded response.
func do(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rdr)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

func decodeBody[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decoding response %q: %v", w.Body.String(), err)
	}
	return v
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "GET", "/healthz", "")
	if w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
	if got := decodeBody[map[string]string](t, w); got["status"] != "ok" {
		t.Fatalf("healthz body = %v", got)
	}
}

func TestAccountingDie(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/accounting",
		`{"process":"7nm","fab":"coal-heavy","area_cm2":1.0,"yield":0.95}`)
	if w.Code != http.StatusOK {
		t.Fatalf("accounting = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[AccountingResponse](t, w)

	want, err := cordoba.EmbodiedDie(cordoba.Process7nm(), cordoba.FabCoal, 1.0, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.EmbodiedG-want.Grams()) > 1e-9 {
		t.Fatalf("embodied = %g, want %g", resp.EmbodiedG, want.Grams())
	}
}

func TestAccountingAccelerator(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/accounting", `{"accelerator":{"id":"a48"}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("accounting = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[AccountingResponse](t, w)

	cfg, err := cordoba.AcceleratorByID("a48")
	if err != nil {
		t.Fatal(err)
	}
	want, err := cfg.Embodied(cordoba.Process7nm(), cordoba.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp.EmbodiedG-want.Grams()) > 1e-9 {
		t.Fatalf("embodied = %g, want %g", resp.EmbodiedG, want.Grams())
	}
	if resp.ConfigID != "a48" {
		t.Fatalf("config_id = %q", resp.ConfigID)
	}
}

func TestDSEMatchesLibrary(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/v1/dse",
		`{"task":"AI (5 kernels)","configs":["a1","a12","a48"],"sweep":{"lo":1,"hi":1e10,"points":5}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("dse = %d: %s", w.Code, w.Body)
	}
	resp := decodeBody[DSEResponse](t, w)

	task, err := cordoba.PaperTask(cordoba.TaskAI5)
	if err != nil {
		t.Fatal(err)
	}
	var configs []cordoba.AcceleratorConfig
	for _, id := range []string{"a1", "a12", "a48"} {
		c, err := cordoba.AcceleratorByID(id)
		if err != nil {
			t.Fatal(err)
		}
		configs = append(configs, c)
	}
	space, err := cordoba.ExploreAt(task, configs, cordoba.Process7nm(), cordoba.FabCoal, 380)
	if err != nil {
		t.Fatal(err)
	}

	if len(resp.Points) != len(space.Points) {
		t.Fatalf("got %d points, want %d", len(resp.Points), len(space.Points))
	}
	for i, p := range space.Points {
		got := resp.Points[i]
		if got.ID != p.Config.ID ||
			math.Abs(got.DelayS-p.Delay.Seconds()) > 1e-12 ||
			math.Abs(got.EnergyJ-p.Energy.Joules()) > 1e-12 ||
			math.Abs(got.EmbodiedG-p.Embodied.Grams()) > 1e-9 {
			t.Fatalf("point %d = %+v, want %+v", i, got, p)
		}
	}
	wantEver := space.IDs(space.EverOptimal())
	if fmt.Sprint(resp.EverOptimal) != fmt.Sprint(wantEver) {
		t.Fatalf("ever_optimal = %v, want %v", resp.EverOptimal, wantEver)
	}
	if len(resp.Sweep) != 5 {
		t.Fatalf("sweep has %d entries, want 5", len(resp.Sweep))
	}
	if resp.Sweep[0].OptimalID != space.Points[space.OptimalAt(1)].Config.ID {
		t.Fatalf("sweep[0] optimal = %q", resp.Sweep[0].OptimalID)
	}
}

func TestDSECacheHitIsByteIdentical(t *testing.T) {
	s := newTestServer(t, Config{})
	body := `{"task":"All kernels"}`

	w1 := do(t, s, "POST", "/v1/dse", body)
	if w1.Code != http.StatusOK {
		t.Fatalf("first dse = %d: %s", w1.Code, w1.Body)
	}
	if got := w1.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first X-Cache = %q, want miss", got)
	}

	// Same request with different whitespace, field order, and defaults
	// spelled out: must be a canonical-key cache hit, byte-identical.
	w2 := do(t, s, "POST", "/v1/dse",
		` { "ci_use": 380, "set":"grid", "task" : "All kernels" } `)
	if w2.Code != http.StatusOK {
		t.Fatalf("second dse = %d: %s", w2.Code, w2.Body)
	}
	if got := w2.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cache hit is not byte-identical to the original response")
	}

	hits, misses := s.Metrics().CacheCounts()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache counts = (%d hits, %d misses), want (1, 1)", hits, misses)
	}

	// The hit must be visible in /metrics.
	m := do(t, s, "GET", "/metrics", "")
	if !strings.Contains(m.Body.String(), "cordobad_cache_hits_total 1") {
		t.Fatalf("/metrics missing cache hit count:\n%s", m.Body)
	}
}

// errEnvelope mirrors the server's JSON error body for assertions.
type errEnvelope struct {
	Error struct {
		Status  int    `json:"status"`
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func TestErrorPaths(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 512})
	tests := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantMsg    string // substring of the envelope message; "" skips
	}{
		{"malformed JSON", "POST", "/v1/dse", `{"task":`, http.StatusBadRequest, "malformed JSON"},
		{"not JSON at all", "POST", "/v1/dse", `hello`, http.StatusBadRequest, "malformed JSON"},
		{"trailing garbage", "POST", "/v1/dse", `{"task":"All kernels"} {"again":1}`, http.StatusBadRequest, "trailing data"},
		{"unknown field", "POST", "/v1/dse", `{"task":"All kernels","nope":1}`, http.StatusBadRequest, "malformed JSON"},
		{"missing task", "POST", "/v1/dse", `{}`, http.StatusBadRequest, "missing task"},
		{"unknown task", "POST", "/v1/dse", `{"task":"bogus"}`, http.StatusBadRequest, `unknown task "bogus"`},
		{"unknown config id", "POST", "/v1/dse", `{"task":"All kernels","configs":["a999"]}`, http.StatusBadRequest, `unknown accelerator config "a999"`},
		{"unknown set", "POST", "/v1/dse", `{"task":"All kernels","set":"5d"}`, http.StatusBadRequest, "unknown config set"},
		{"set and configs", "POST", "/v1/dse", `{"task":"All kernels","set":"grid","configs":["a1"]}`, http.StatusBadRequest, "fields set, configs are mutually exclusive"},
		{"all three spaces", "POST", "/v1/dse", `{"task":"All kernels","set":"grid","configs":["a1"],"knobs":{"mac_arrays":[1],"sram_mb":[2]}}`, http.StatusBadRequest, "fields set, configs, knobs are mutually exclusive"},
		{"bad sweep", "POST", "/v1/dse", `{"task":"All kernels","sweep":{"lo":-1,"hi":10,"points":3}}`, http.StatusBadRequest, "sweep"},
		{"negative ci", "POST", "/v1/dse", `{"task":"All kernels","ci_use":-5}`, http.StatusBadRequest, "ci_use"},
		{"oversized body", "POST", "/v1/dse", `{"task":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge, "exceeds 512 bytes"},
		{"accounting unknown process", "POST", "/v1/accounting", `{"process":"1nm","area_cm2":1}`, http.StatusBadRequest, "unknown process"},
		{"accounting unknown fab", "POST", "/v1/accounting", `{"fab":"mars","area_cm2":1}`, http.StatusBadRequest, "unknown fab"},
		{"accounting no mode", "POST", "/v1/accounting", `{}`, http.StatusBadRequest, "area_cm2"},
		{"accounting bad yield", "POST", "/v1/accounting", `{"area_cm2":1,"yield":1.5}`, http.StatusBadRequest, "yield"},
		{"accounting bad accel", "POST", "/v1/accounting", `{"accelerator":{"id":"a999"}}`, http.StatusBadRequest, `unknown accelerator config "a999"`},
		{"unknown experiment", "GET", "/v1/experiments/nope", "", http.StatusNotFound, `unknown experiment "nope"`},
		{"unknown export format", "GET", "/v1/experiments/table2?format=xml", "", http.StatusBadRequest, `unknown format "xml"`},
		{"csv for non-tabular key", "GET", "/v1/experiments/table2?format=csv", "", http.StatusBadRequest, "no CSV form"},
		{"unknown configs set", "GET", "/v1/configs?set=5d", "", http.StatusBadRequest, "unknown config set"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := do(t, s, tt.method, tt.path, tt.body)
			if w.Code != tt.wantStatus {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, tt.wantStatus, w.Body)
			}
			env := decodeBody[errEnvelope](t, w)
			if env.Error.Status != tt.wantStatus {
				t.Fatalf("envelope status = %d, want %d", env.Error.Status, tt.wantStatus)
			}
			wantCode := map[int]string{
				http.StatusBadRequest:            "invalid_request",
				http.StatusNotFound:              "not_found",
				http.StatusRequestEntityTooLarge: "payload_too_large",
			}[tt.wantStatus]
			if env.Error.Code != wantCode {
				t.Fatalf("envelope code = %q, want %q", env.Error.Code, wantCode)
			}
			if tt.wantMsg != "" && !strings.Contains(env.Error.Message, tt.wantMsg) {
				t.Fatalf("message %q does not contain %q", env.Error.Message, tt.wantMsg)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t, Config{})
	if w := do(t, s, "GET", "/v1/dse", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/dse = %d, want 405", w.Code)
	}
	if w := do(t, s, "POST", "/healthz", ""); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz = %d, want 405", w.Code)
	}
}

func TestCanceledContext(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the handler runs

	req := httptest.NewRequest("POST", "/v1/dse",
		strings.NewReader(`{"task":"All kernels","ci_use":7}`)).WithContext(ctx)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)

	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body %s)", w.Code, StatusClientClosedRequest, w.Body)
	}
	env := decodeBody[errEnvelope](t, w)
	if !strings.Contains(env.Error.Message, "client closed request") {
		t.Fatalf("message = %q", env.Error.Message)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	w := do(t, s, "POST", "/v1/dse", `{"task":"All kernels","ci_use":9}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body %s)", w.Code, w.Body)
	}
}

// TestConcurrentDSE fires 32 concurrent /v1/dse requests through the worker
// pool (run under -race by the ci target). Four request shapes alternate so
// both cache hits and misses execute concurrently.
func TestConcurrentDSE(t *testing.T) {
	s := newTestServer(t, Config{PoolSize: 2, EvalWorkers: 2})
	bodies := []string{
		`{"task":"AI (5 kernels)","configs":["a1","a12","a48"]}`,
		`{"task":"XR (5 kernels)","configs":["a1","a48"]}`,
		`{"task":"AI (5 kernels)","set":"3d"}`,
		`{"task":"All kernels","configs":["a37","a38"]}`,
	}

	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := do(t, s, "POST", "/v1/dse", bodies[i%len(bodies)])
			if w.Code != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d: %s", i, w.Code, w.Body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := s.Metrics().evalInflight.Load(); got != 0 {
		t.Fatalf("pool inflight gauge = %d after drain, want 0", got)
	}
	if got := s.Metrics().evalWaiting.Load(); got != 0 {
		t.Fatalf("pool waiting gauge = %d after drain, want 0", got)
	}
	hits, misses := s.Metrics().CacheCounts()
	if hits+misses != n {
		t.Fatalf("cache hits+misses = %d, want %d", hits+misses, n)
	}
	if misses < int64(len(bodies)) {
		t.Fatalf("cache misses = %d, want >= %d (one per distinct request)", misses, len(bodies))
	}
}

func TestExperimentsEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})

	list := do(t, s, "GET", "/v1/experiments", "")
	if list.Code != http.StatusOK {
		t.Fatalf("list = %d", list.Code)
	}
	infos := decodeBody[[]experimentInfo](t, list)
	if len(infos) != len(cordoba.ExperimentKeys()) {
		t.Fatalf("listed %d experiments, want %d", len(infos), len(cordoba.ExperimentKeys()))
	}

	js := do(t, s, "GET", "/v1/experiments/table2", "")
	if js.Code != http.StatusOK || !strings.Contains(js.Body.String(), "Rows") {
		t.Fatalf("table2 json = %d: %.120s", js.Code, js.Body)
	}

	csvw := do(t, s, "GET", "/v1/experiments/fig6?format=csv", "")
	if csvw.Code != http.StatusOK || !strings.HasPrefix(csvw.Body.String(), "domain,edp_js,tcdp_gs") {
		t.Fatalf("fig6 csv = %d: %.120s", csvw.Code, csvw.Body)
	}
	if got := csvw.Header().Get("Content-Type"); got != "text/csv" {
		t.Fatalf("csv content type = %q", got)
	}

	txt := do(t, s, "GET", "/v1/experiments/table1?format=text", "")
	if txt.Code != http.StatusOK || !strings.Contains(txt.Body.String(), "Table I") {
		t.Fatalf("table1 text = %d: %.120s", txt.Code, txt.Body)
	}
}

func TestDiscoveryEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})

	tasks := decodeBody[[]taskInfo](t, do(t, s, "GET", "/v1/tasks", ""))
	if len(tasks) != 6 { // five Table IV tasks + the XR gaming session
		t.Fatalf("listed %d tasks, want 6", len(tasks))
	}
	if tasks[0].Name != cordoba.TaskAllKernels || len(tasks[0].Kernels) != 15 {
		t.Fatalf("first task = %+v", tasks[0])
	}

	grid := decodeBody[[]configInfo](t, do(t, s, "GET", "/v1/configs", ""))
	if len(grid) != 121 {
		t.Fatalf("grid has %d configs, want 121", len(grid))
	}
	threeD := decodeBody[[]configInfo](t, do(t, s, "GET", "/v1/configs?set=3d", ""))
	if len(threeD) != 7 {
		t.Fatalf("3d set has %d configs, want 7", len(threeD))
	}
	all := decodeBody[[]configInfo](t, do(t, s, "GET", "/v1/configs?set=all", ""))
	if len(all) != 128 {
		t.Fatalf("all set has %d configs, want 128", len(all))
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

func TestMetricsPrometheusFormat(t *testing.T) {
	s := newTestServer(t, Config{})
	// Touch several routes so every series family has samples.
	do(t, s, "GET", "/healthz", "")
	do(t, s, "POST", "/v1/dse", `{"task":"AI (5 kernels)","configs":["a1"]}`)
	do(t, s, "POST", "/v1/dse", `{"task":"AI (5 kernels)","configs":["a1"]}`)
	do(t, s, "POST", "/v1/dse", `{"task":"bogus"}`)

	w := do(t, s, "GET", "/metrics", "")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}

	body := w.Body.String()
	for _, want := range []string{
		`cordobad_requests_total{route="/healthz",code="200"} 1`,
		`cordobad_requests_total{route="/v1/dse",code="200"} 2`,
		`cordobad_requests_total{route="/v1/dse",code="400"} 1`,
		`cordobad_request_duration_seconds_bucket{route="/v1/dse",le="+Inf"} 3`,
		`cordobad_request_duration_seconds_count{route="/v1/dse"} 3`,
		"cordobad_cache_hits_total 1",
		"cordobad_cache_misses_total 2",
		"cordobad_inflight_requests 1", // the /metrics request itself
		"cordobad_pool_inflight_evaluations 0",
		"cordobad_pool_waiting_requests 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(body, "cordobad_pool_size ") {
		t.Error("/metrics missing cordobad_pool_size")
	}

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
}

// TestGracefulShutdown verifies that canceling the serve context drains an
// in-flight /v1/dse request: the client still gets its 200 and Serve
// returns cleanly.
func TestGracefulShutdown(t *testing.T) {
	s := newTestServer(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())

	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	// Wait for the listener to answer.
	for i := 0; ; i++ {
		resp, err := http.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if i > 100 {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Launch an uncached full-grid evaluation, then immediately request
	// shutdown while it is (very likely) still in flight.
	type result struct {
		status int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/dse", "application/json",
			strings.NewReader(`{"task":"All kernels","ci_use":123}`))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		_, _ = io.ReadAll(resp.Body)
		resc <- result{status: resp.StatusCode}
	}()
	time.Sleep(5 * time.Millisecond)
	cancel()

	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request failed during shutdown: %v", res.err)
	}
	if res.status != http.StatusOK {
		t.Fatalf("in-flight request status = %d, want 200", res.status)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v, want nil", err)
	}

	// The listener is closed: new connections must fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
