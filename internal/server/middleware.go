package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cordoba/api"
)

// StatusClientClosedRequest is the nginx-convention status recorded when
// the client canceled the request before a response was written.
const StatusClientClosedRequest = 499

// apiError is an error carrying the HTTP status and machine-readable code
// it should be reported as, plus an optional Retry-After hint.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

// errf builds an apiError with a formatted message; the code defaults from
// the status via codeForStatus.
func errf(status int, format string, args ...any) error {
	return &apiError{status: status, msg: fmt.Sprintf(format, args...)}
}

// errc builds an apiError with an explicit error code for cases where the
// status alone is ambiguous (the 409s on the job-result endpoint, say).
func errc(status int, code, format string, args ...any) error {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// codeForStatus maps an HTTP status onto the default machine-readable code
// the envelope carries when the handler didn't pick one explicitly.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return api.CodeInvalidRequest
	case http.StatusNotFound:
		return api.CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return api.CodePayloadTooLarge
	case http.StatusUnauthorized:
		return api.CodeUnauthorized
	case http.StatusTooManyRequests:
		return api.CodeQueueFull
	case http.StatusConflict:
		return api.CodeNotReady
	case http.StatusGatewayTimeout:
		return api.CodeTimeout
	case StatusClientClosedRequest:
		return api.CodeClientClosed
	default:
		return api.CodeInternal
	}
}

// statusRecorder captures the status code and byte count written by a
// handler so the middleware can log and meter them.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(b)
	r.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so streaming handlers (SSE) can
// push events through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handlerFunc is the internal handler signature: returning an error routes
// it through the shared envelope/status mapping in one place.
type handlerFunc func(w http.ResponseWriter, r *http.Request) error

// instrument wraps a handler with the full middleware stack: tenant auth
// and rate limiting, per-request timeout, panic recovery, metrics
// observation under the route label, and structured request logging.
func (s *Server) instrument(route string, h handlerFunc) http.Handler {
	return s.wrap(route, h, false)
}

// instrumentStream is instrument without the per-request timeout: a
// streaming route (SSE) legitimately outlives any deadline a request/reply
// route should tolerate, and is bounded by client disconnect instead.
func (s *Server) instrumentStream(route string, h handlerFunc) http.Handler {
	return s.wrap(route, h, true)
}

// publicRoute reports whether a route bypasses tenant auth: liveness probes
// and metrics scrapers don't carry API keys.
func publicRoute(route string) bool {
	return route == "/healthz" || route == "/metrics"
}

func (s *Server) wrap(route string, h handlerFunc, stream bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)

		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 && !stream {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		r = r.WithContext(ctx)

		rec := &statusRecorder{ResponseWriter: w}
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.log.Error("panic in handler", "route", route, "panic", fmt.Sprint(p))
					writeError(rec, errf(http.StatusInternalServerError, "internal error"))
				}
			}()
			if !publicRoute(route) {
				var err error
				if r, err = s.authorize(r); err != nil {
					writeError(rec, err)
					return
				}
			}
			if err := h(rec, r); err != nil {
				writeError(rec, err)
			}
		}()

		elapsed := time.Since(start)
		s.metrics.ObserveRequest(route, rec.status, elapsed.Seconds())
		s.log.Info("request",
			"method", r.Method,
			"route", route,
			"path", r.URL.Path,
			"status", rec.status,
			"bytes", rec.bytes,
			"duration", elapsed,
			"cache", rec.Header().Get("X-Cache"),
		)
	})
}

// writeError renders err as the JSON error envelope, mapping context and
// body-size failures onto their HTTP statuses. If the handler already
// started streaming a body, the status is left alone and only the metric
// records the failure.
func writeError(w *statusRecorder, err error) {
	if w.status != 0 {
		return // headers already sent; can't change the status mid-stream
	}
	status := http.StatusInternalServerError
	code := ""
	msg := err.Error()
	var retryAfter time.Duration
	var (
		ae *apiError
		mb *http.MaxBytesError
	)
	switch {
	case errors.As(err, &ae):
		status = ae.status
		code = ae.code
		retryAfter = ae.retryAfter
	case errors.As(err, &mb):
		status = http.StatusRequestEntityTooLarge
		msg = fmt.Sprintf("request body exceeds %d bytes", mb.Limit)
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
		msg = "request deadline exceeded"
	case errors.Is(err, context.Canceled):
		status = StatusClientClosedRequest
		msg = "client closed request"
	}
	if code == "" {
		code = codeForStatus(status)
	}
	w.Header().Set("Content-Type", "application/json")
	if retryAfter > 0 {
		// Ceil to whole seconds: Retry-After is integral, and rounding down
		// would invite a retry before the queue can possibly have drained.
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorEnvelope{Error: errorBody{Status: status, Code: code, Message: msg}})
}

// writeJSON marshals v and writes it with the given status. The body is
// rendered to a buffer first so a marshal failure can still produce a clean
// error envelope, and so callers can cache the exact bytes.
func writeJSON(w http.ResponseWriter, status int, v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// A NaN or ±Inf in a response means the request's parameters
		// overflowed the physics model (say, a 1e308 cm² die): the caller's
		// fault, not the server's.
		var uv *json.UnsupportedValueError
		if errors.As(err, &uv) {
			return nil, errf(http.StatusBadRequest,
				"parameters produce a non-finite result (%s); values are outside the model's range", uv.Str)
		}
		return nil, err
	}
	b = append(b, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err = w.Write(b)
	return b, err
}
