// Package pareto provides the dominance and convex-envelope machinery behind
// the paper's uncertainty argument (§IV-B, Fig. 12).
//
// Designs are 2-D points (X, Y) with both coordinates minimized — in the
// CORDOBA use, X = E·D and Y = C_embodied·D. Two survivor sets matter:
//
//   - Front: the non-dominated (Pareto) set. A design is dominated when
//     another design is at least as good in both coordinates and strictly
//     better in one.
//
//   - Envelope: the lower convex envelope — designs that minimize
//     Y + β·X for *some* Lagrange multiplier β ∈ [0, ∞) (eq. IV.9). Because
//     tCDP with unknown-but-constant scaling between E and C_operational is
//     exactly such a linear combination, only envelope members can ever be
//     tCDP-optimal; everything else is safely eliminated even when CI_use(t)
//     is unknown.
//
// The envelope is always a subset of the front.
package pareto

import (
	"math"
	"sort"
)

// Point is a candidate design in a two-objective minimization.
type Point struct {
	X, Y float64
}

// valid reports whether a point's coordinates are finite.
func (p Point) valid() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Dominates reports whether p dominates q: p is no worse in both coordinates
// and strictly better in at least one.
func (p Point) Dominates(q Point) bool {
	return p.X <= q.X && p.Y <= q.Y && (p.X < q.X || p.Y < q.Y)
}

// Front returns the indices of the non-dominated points, sorted by ascending
// X (ties by ascending Y, then by index). Non-finite points are never on the
// front. Duplicate coordinates are all retained: identical points do not
// dominate each other.
func Front(points []Point) []int {
	var s FrontScratch
	front := s.Front(points)
	s.front = nil // detach so the caller owns the slice
	return front
}

// FrontScratch computes fronts without per-call heap allocations: the index
// buffers are reused across calls, so a steady caller (the streaming DSE
// engine offers one chunk per grid shape) amortizes to zero allocations. The
// zero value is ready to use. Not safe for concurrent use.
type FrontScratch struct {
	sorter frontSorter
	front  []int
}

// Front is Front computed on the reusable scratch. The returned slice is
// owned by the scratch and valid only until the next call.
func (s *FrontScratch) Front(points []Point) []int {
	idx := s.sorter.idx[:0]
	for i, p := range points {
		if p.valid() {
			idx = append(idx, i)
		}
	}
	s.sorter.points = points
	s.sorter.idx = idx
	// sort.Sort on the embedded sorter: same total order as the historical
	// sort.Slice comparator (ties broken by index make it deterministic),
	// without the per-call closure and interface-boxing allocations.
	sort.Sort(&s.sorter)
	s.sorter.points = nil

	front := s.front[:0]
	bestY := math.Inf(1)
	for _, i := range idx {
		p := points[i]
		// Sorted by ascending X: a point is dominated iff an earlier point
		// has Y ≤ p.Y — except exact coordinate duplicates, which co-exist.
		if p.Y < bestY {
			front = append(front, i)
			bestY = p.Y
		} else if len(front) > 0 {
			last := points[front[len(front)-1]]
			if last.X == p.X && last.Y == p.Y {
				front = append(front, i)
			}
		}
	}
	s.front = front
	return front
}

// frontSorter orders candidate indices by (X, Y, index) — the Front order.
type frontSorter struct {
	points []Point
	idx    []int
}

func (f *frontSorter) Len() int      { return len(f.idx) }
func (f *frontSorter) Swap(a, b int) { f.idx[a], f.idx[b] = f.idx[b], f.idx[a] }
func (f *frontSorter) Less(a, b int) bool {
	pa, pb := f.points[f.idx[a]], f.points[f.idx[b]]
	if pa.X != pb.X {
		return pa.X < pb.X
	}
	if pa.Y != pb.Y {
		return pa.Y < pb.Y
	}
	return f.idx[a] < f.idx[b]
}

// Envelope returns the indices of points on the lower convex envelope: the
// designs that minimize Y + β·X for some β ∈ [0, ∞). The result is sorted by
// ascending X. Collinear interior points are excluded (they tie but never
// uniquely win), as are coordinate duplicates beyond the first.
func Envelope(points []Point) []int {
	front := Front(points)
	if len(front) <= 2 {
		return dedupe(points, front)
	}
	front = dedupe(points, front)
	// The front is sorted by ascending X with strictly descending Y.
	// Monotone-chain lower hull over it; every vertex of that hull (the
	// whole chain, since Y is strictly decreasing along the front) is a
	// minimizer of Y + β·X for β in some non-empty interval.
	hull := make([]int, 0, len(front))
	for _, i := range front {
		for len(hull) >= 2 {
			a, b := points[hull[len(hull)-2]], points[hull[len(hull)-1]]
			c := points[i]
			// Monotone-chain lower hull: keep b only on a strictly
			// counter-clockwise turn a→b→c (cross > 0); pop collinear
			// points too, since they never uniquely minimize Y + β·X.
			cross := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
			if cross <= 0 {
				hull = hull[:len(hull)-1]
				continue
			}
			break
		}
		hull = append(hull, i)
	}
	return hull
}

// dedupe removes coordinate duplicates from a sorted index list, keeping the
// first occurrence.
func dedupe(points []Point, idx []int) []int {
	out := idx[:0:len(idx)]
	for _, i := range idx {
		if len(out) > 0 {
			last := points[out[len(out)-1]]
			if last == points[i] {
				continue
			}
		}
		out = append(out, i)
	}
	return out
}

// ArgminLinear returns the index minimizing Y + β·X, breaking ties toward
// lower X then lower index; it returns -1 for an empty or all-invalid input.
func ArgminLinear(points []Point, beta float64) int {
	best := -1
	bestV := math.Inf(1)
	for i, p := range points {
		if !p.valid() {
			continue
		}
		v := p.Y + beta*p.X
		if v < bestV || (v == bestV && best >= 0 && p.X < points[best].X) {
			best, bestV = i, v
		}
	}
	return best
}

// EliminatedFraction returns the share of designs that are provably never
// optimal for any β — the "eliminate up to 98 % of the design space" number
// of §VI-B. It returns 0 for an empty input.
func EliminatedFraction(points []Point) float64 {
	if len(points) == 0 {
		return 0
	}
	kept := len(Envelope(points))
	return 1 - float64(kept)/float64(len(points))
}
