package pareto

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// offerAll feeds points into a fresh stream in the given order, tracking the
// live-payload invariant: every accepted id stays live until evicted.
func offerAll(t *testing.T, points []Point, order []int) (*Stream, map[int64]bool) {
	t.Helper()
	s := &Stream{}
	live := make(map[int64]bool)
	for _, i := range order {
		accepted, evicted := s.Offer(int64(i), points[i])
		if accepted {
			live[int64(i)] = true
		}
		for _, ev := range evicted {
			if !live[ev] {
				t.Fatalf("evicted id %d was never live", ev)
			}
			delete(live, ev)
		}
	}
	return s, live
}

// checkMatchesEnvelope asserts the stream's kept set equals the batch
// Envelope of the same points, by id and coordinates.
func checkMatchesEnvelope(t *testing.T, s *Stream, live map[int64]bool, points []Point) {
	t.Helper()
	want := Envelope(points)
	got := s.IDs()
	if len(got) != len(want) {
		t.Fatalf("stream kept %d points, batch envelope %d: got %v want %v", len(got), len(want), got, want)
	}
	for k, id := range got {
		if int64(want[k]) != id {
			t.Fatalf("kept[%d] = id %d, batch envelope has %d", k, id, want[k])
		}
		if !live[id] {
			t.Errorf("kept id %d missing from live payload set", id)
		}
	}
	if len(live) != len(got) {
		t.Errorf("live payload set has %d entries, envelope %d — eviction leaked", len(live), len(got))
	}
	pts := s.Points()
	for k := 1; k < len(pts); k++ {
		if pts[k].X <= pts[k-1].X {
			t.Fatalf("kept points not strictly ascending in X at %d: %v", k, pts)
		}
		if pts[k].Y >= pts[k-1].Y {
			t.Fatalf("kept points not strictly descending in Y at %d: %v", k, pts)
		}
	}
}

func TestStreamEmptyAndSingle(t *testing.T) {
	s := &Stream{}
	if s.Len() != 0 || s.Offered() != 0 || s.EliminatedFraction() != 0 {
		t.Fatal("zero-value stream not empty")
	}
	if acc, ev := s.Offer(7, Point{1, 2}); !acc || len(ev) != 0 {
		t.Fatalf("first point: accepted=%v evicted=%v", acc, ev)
	}
	if s.Len() != 1 || s.IDs()[0] != 7 {
		t.Fatalf("unexpected state after one offer: len=%d ids=%v", s.Len(), s.IDs())
	}
}

func TestStreamRejectsInvalid(t *testing.T) {
	s := &Stream{}
	for _, p := range []Point{
		{math.NaN(), 1}, {1, math.NaN()},
		{math.Inf(1), 1}, {1, math.Inf(-1)},
	} {
		if acc, _ := s.Offer(0, p); acc {
			t.Errorf("accepted invalid point %v", p)
		}
	}
	if s.Offered() != 4 {
		t.Errorf("Offered = %d, want 4 (invalid points still count)", s.Offered())
	}
	if s.Len() != 0 {
		t.Errorf("invalid points entered the envelope: %v", s.Points())
	}
}

func TestStreamDominatedAndDuplicates(t *testing.T) {
	s := &Stream{}
	s.Offer(0, Point{1, 3})
	s.Offer(1, Point{3, 1})
	if acc, _ := s.Offer(2, Point{3, 1}); acc {
		t.Error("exact duplicate accepted; first offer should win")
	}
	if acc, _ := s.Offer(3, Point{4, 2}); acc {
		t.Error("dominated point accepted")
	}
	if acc, _ := s.Offer(4, Point{1, 5}); acc {
		t.Error("point dominated at equal X accepted")
	}
	// A point below the current vertex at equal X replaces it.
	if acc, ev := s.Offer(5, Point{3, 0.5}); !acc || len(ev) != 1 || ev[0] != 1 {
		t.Errorf("lower duplicate-X point: accepted=%v evicted=%v", acc, ev)
	}
}

func TestStreamCollinearExcluded(t *testing.T) {
	// Middle arrives last: rejected by the chord test.
	s := &Stream{}
	s.Offer(0, Point{0, 2})
	s.Offer(1, Point{2, 0})
	if acc, _ := s.Offer(2, Point{1, 1}); acc {
		t.Error("collinear interior point accepted")
	}
	// Middle arrives first: evicted by the left-convexity repair.
	s = &Stream{}
	s.Offer(0, Point{0, 2})
	s.Offer(1, Point{1, 1})
	acc, ev := s.Offer(2, Point{2, 0})
	if !acc || len(ev) != 1 || ev[0] != 1 {
		t.Errorf("endpoint after collinear middle: accepted=%v evicted=%v", acc, ev)
	}
}

func TestStreamRejectionIsFinal(t *testing.T) {
	// Once rejected, a point stays rejected even after later arrivals make
	// the envelope tighter — the invariant order-invariance rests on.
	s := &Stream{}
	s.Offer(0, Point{0, 10})
	s.Offer(1, Point{10, 0})
	if acc, _ := s.Offer(2, Point{5, 6}); acc {
		t.Fatal("point above chord accepted")
	}
	s.Offer(3, Point{5, 1}) // tightens the middle
	if got := len(s.IDs()); got != 3 {
		t.Fatalf("envelope size %d after tightening, want 3", got)
	}
}

func TestStreamMatchesBatchRandom(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		s, live := offerAll(t, points, order)
		checkMatchesEnvelope(t, s, live, points)
		if s.Offered() != int64(n) {
			t.Fatalf("seed %d: Offered = %d, want %d", seed, s.Offered(), n)
		}
		wantElim := EliminatedFraction(points)
		if got := s.EliminatedFraction(); got != wantElim {
			t.Fatalf("seed %d: EliminatedFraction = %v, batch %v", seed, got, wantElim)
		}
	}
}

func TestStreamOrderInvariant(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(1000 + seed))
		n := 2 + rng.Intn(200)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		order := rng.Perm(n)
		s, live := offerAll(t, points, order)
		checkMatchesEnvelope(t, s, live, points)
	}
}

// TestStreamSnapshotResume cuts a random stream at an arbitrary prefix,
// snapshots, round-trips the snapshot through JSON, restores into a fresh
// stream, replays the suffix, and demands bit-identical state against the
// uninterrupted run — the property the DSE checkpoint/resume path rests on.
func TestStreamSnapshotResume(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(2000 + seed))
		n := 2 + rng.Intn(200)
		points := make([]Point, n)
		for i := range points {
			points[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		cut := rng.Intn(n + 1)

		full := &Stream{}
		for i, p := range points {
			full.Offer(int64(i), p)
		}

		head := &Stream{}
		for i := 0; i < cut; i++ {
			head.Offer(int64(i), points[i])
		}
		b, err := json.Marshal(head.Snapshot())
		if err != nil {
			t.Fatalf("seed %d: marshal snapshot: %v", seed, err)
		}
		var st StreamState
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("seed %d: unmarshal snapshot: %v", seed, err)
		}
		resumed := &Stream{}
		if err := resumed.Restore(st); err != nil {
			t.Fatalf("seed %d: restore at cut %d: %v", seed, cut, err)
		}
		for i := cut; i < n; i++ {
			resumed.Offer(int64(i), points[i])
		}

		if resumed.Offered() != full.Offered() {
			t.Fatalf("seed %d: resumed Offered %d, full %d", seed, resumed.Offered(), full.Offered())
		}
		if !reflect.DeepEqual(resumed.IDs(), full.IDs()) {
			t.Fatalf("seed %d cut %d: resumed ids %v, full %v", seed, cut, resumed.IDs(), full.IDs())
		}
		if !reflect.DeepEqual(resumed.Points(), full.Points()) {
			t.Fatalf("seed %d cut %d: resumed points differ from full run", seed, cut)
		}
	}
}

// TestStreamSnapshotIsCopy verifies later Offers do not mutate a snapshot.
func TestStreamSnapshotIsCopy(t *testing.T) {
	s := &Stream{}
	s.Offer(0, Point{5, 5})
	st := s.Snapshot()
	s.Offer(1, Point{1, 9})
	s.Offer(2, Point{9, 1})
	if len(st.Points) != 1 || st.Points[0] != (Point{5, 5}) || st.IDs[0] != 0 {
		t.Fatalf("snapshot mutated by later offers: %+v", st)
	}
}

func TestStreamRestoreRejectsCorrupt(t *testing.T) {
	cases := map[string]StreamState{
		"length mismatch": {Points: []Point{{1, 2}}, IDs: nil, Offered: 1},
		"offered too low": {Points: []Point{{1, 2}}, IDs: []int64{0}, Offered: 0},
		"non-finite":      {Points: []Point{{math.NaN(), 2}}, IDs: []int64{0}, Offered: 1},
		"x not ascending": {Points: []Point{{2, 3}, {1, 1}}, IDs: []int64{0, 1}, Offered: 2},
		"y not descending": {
			Points: []Point{{1, 1}, {2, 2}}, IDs: []int64{0, 1}, Offered: 2},
		"collinear": {
			Points: []Point{{0, 2}, {1, 1}, {2, 0}}, IDs: []int64{0, 1, 2}, Offered: 3},
		"concave": {
			Points: []Point{{0, 10}, {1, 8}, {2, 0}}, IDs: []int64{0, 1, 2}, Offered: 3},
	}
	for name, st := range cases {
		t.Run(name, func(t *testing.T) {
			var s Stream
			if err := s.Restore(st); err == nil {
				t.Fatalf("Restore accepted corrupt snapshot %+v", st)
			}
		})
	}
	// A valid snapshot restores without error.
	var s Stream
	ok := StreamState{Points: []Point{{0, 10}, {1, 2}, {3, 0}}, IDs: []int64{5, 6, 7}, Offered: 40}
	if err := s.Restore(ok); err != nil {
		t.Fatalf("Restore rejected a valid snapshot: %v", err)
	}
	if s.Len() != 3 || s.Offered() != 40 {
		t.Fatalf("restored stream state wrong: len=%d offered=%d", s.Len(), s.Offered())
	}
}

func TestStreamDegenerateGeometries(t *testing.T) {
	cases := map[string][]Point{
		"all duplicates":  {{1, 1}, {1, 1}, {1, 1}},
		"vertical line":   {{1, 5}, {1, 3}, {1, 1}, {1, 4}},
		"horizontal line": {{1, 2}, {3, 2}, {5, 2}, {2, 2}},
		"two points":      {{2, 1}, {1, 2}},
		"staircase":       {{0, 3}, {1, 3}, {1, 2}, {2, 2}, {2, 1}, {3, 1}},
	}
	for name, points := range cases {
		order := make([]int, len(points))
		for i := range order {
			order[i] = i
		}
		s, live := offerAll(t, points, order)
		t.Run(name, func(t *testing.T) { checkMatchesEnvelope(t, s, live, points) })
	}
}
