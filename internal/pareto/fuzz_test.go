package pareto

import (
	"encoding/binary"
	"math"
	"testing"
)

// The fuzzer's bytes are decoded two ways. decodeGridPoints maps 2-byte
// words onto a small integer lattice (with a few reserved patterns injecting
// NaN and ±Inf): coordinates there make every cross product exact, so batch
// and streaming envelopes must agree exactly, and exact duplicates and
// collinear triples occur constantly. decodeRawPoints reinterprets the same
// bytes as raw float64 pairs — subnormals, 1e300-scale magnitudes, negative
// zeros — where cross products can overflow and rounding makes the two
// algorithms legitimately diverge on near-degenerate inputs, so only the
// robust structural invariants are checked.

const maxFuzzPoints = 512

func decodeWord(u uint16) float64 {
	switch u {
	case 0xFFFF:
		return math.NaN()
	case 0xFFFE:
		return math.Inf(1)
	case 0xFFFD:
		return math.Inf(-1)
	}
	return float64(int(u%1024) - 512)
}

func decodeGridPoints(data []byte) []Point {
	n := len(data) / 4
	if n > maxFuzzPoints {
		n = maxFuzzPoints
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: decodeWord(binary.LittleEndian.Uint16(data[i*4:])),
			Y: decodeWord(binary.LittleEndian.Uint16(data[i*4+2:])),
		}
	}
	return pts
}

func decodeRawPoints(data []byte) []Point {
	n := len(data) / 16
	if n > maxFuzzPoints {
		n = maxFuzzPoints
	}
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: math.Float64frombits(binary.LittleEndian.Uint64(data[i*16:])),
			Y: math.Float64frombits(binary.LittleEndian.Uint64(data[i*16+8:])),
		}
	}
	return pts
}

func encodePoints(pts []Point) []byte {
	out := make([]byte, 16*len(pts))
	for i, p := range pts {
		binary.LittleEndian.PutUint64(out[i*16:], math.Float64bits(p.X))
		binary.LittleEndian.PutUint64(out[i*16+8:], math.Float64bits(p.Y))
	}
	return out
}

func finite(p Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// checkStructure verifies the invariants that hold for ANY input, however
// degenerate: valid indices, envelope ⊆ front ⊆ input, no NaN/Inf leaking
// into either set, a strictly decreasing convex envelope chain, and a
// bounded elimination fraction. It returns the envelope.
func checkStructure(t *testing.T, pts []Point) []int {
	t.Helper()
	env := Envelope(pts)
	front := Front(pts)

	onFront := make(map[int]bool, len(front))
	for _, i := range front {
		if i < 0 || i >= len(pts) {
			t.Fatalf("front index %d out of range [0,%d)", i, len(pts))
		}
		if !finite(pts[i]) {
			t.Fatalf("non-finite point %v leaked onto the front", pts[i])
		}
		onFront[i] = true
	}
	seen := make(map[int]bool, len(env))
	for k, i := range env {
		if !onFront[i] {
			t.Fatalf("envelope index %d is not on the front", i)
		}
		if seen[i] {
			t.Fatalf("envelope repeats index %d", i)
		}
		seen[i] = true
		if k > 0 {
			a, b := pts[env[k-1]], pts[i]
			if !(a.X < b.X) || !(a.Y > b.Y) {
				t.Fatalf("envelope not strictly decreasing: %v then %v", a, b)
			}
		}
	}

	if frac := EliminatedFraction(pts); frac < 0 || frac > 1 || (len(pts) > 0 && math.IsNaN(frac)) {
		t.Fatalf("eliminated fraction %v outside [0,1]", frac)
	}
	return env
}

// FuzzParetoEnvelope drives arbitrary point sets — including NaN and ±Inf
// coordinates — through the batch envelope and the streaming accumulator.
func FuzzParetoEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodePoints([]Point{{1, 1}}))
	f.Add(encodePoints([]Point{{1, 4}, {2, 2}, {4, 1}, {3, 3}}))
	f.Add(encodePoints([]Point{{1, 3}, {2, 2}, {3, 1}})) // collinear
	f.Add(encodePoints([]Point{{1, 2}, {1, 2}, {1, 2}})) // duplicates
	f.Add(encodePoints([]Point{{1, 1}, {1, 2}, {2, 1}})) // vertical + horizontal
	f.Add(encodePoints([]Point{{math.NaN(), 1}, {1, math.Inf(1)}, {2, 2}, {math.Inf(-1), 0}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Lattice decoding: cross products are exact here, so the streaming
		// accumulator must reproduce the batch envelope index-for-index, and
		// every linear scalarization must bottom out on the envelope exactly
		// (β is a power of two, so Y + β·X is exact as well).
		pts := decodeGridPoints(data)
		env := checkStructure(t, pts)

		var st Stream
		for i, p := range pts {
			st.Offer(int64(i), p)
		}
		ids := st.IDs()
		if len(ids) != len(env) {
			t.Fatalf("stream kept %d points, batch envelope %d (%v vs %v)", len(ids), len(env), ids, env)
		}
		for k := range ids {
			if ids[k] != int64(env[k]) {
				t.Fatalf("stream kept %v, batch envelope %v", ids, env)
			}
		}
		if st.Offered() != int64(len(pts)) {
			t.Fatalf("stream offered %d, fed %d", st.Offered(), len(pts))
		}
		if len(env) > 0 {
			for _, beta := range []float64{0.25, 1, 4} {
				best := ArgminLinear(pts, beta)
				got := pts[best].Y + beta*pts[best].X
				min := math.Inf(1)
				for _, i := range env {
					if v := pts[i].Y + beta*pts[i].X; v < min {
						min = v
					}
				}
				if got != min {
					t.Fatalf("argmin at β=%g reached %v, envelope minimum %v", beta, got, min)
				}
			}
		}

		// Raw decoding: magnitudes out to ±1e308 overflow the cross product,
		// where the two algorithms may round differently on near-degenerate
		// chains — so only the structural guarantees are asserted, on each
		// implementation independently.
		raw := decodeRawPoints(data)
		checkStructure(t, raw)
		var rs Stream
		for i, p := range raw {
			rs.Offer(int64(i), p)
		}
		kept := rs.Points()
		for _, p := range kept {
			if !finite(p) {
				t.Fatalf("non-finite point %v leaked into the stream", p)
			}
		}
		for k := 1; k < len(kept); k++ {
			if !(kept[k-1].X < kept[k].X) || !(kept[k-1].Y > kept[k].Y) {
				t.Fatalf("stream chain not strictly decreasing: %v then %v", kept[k-1], kept[k])
			}
		}
		if rs.Offered() != int64(len(raw)) {
			t.Fatalf("stream offered %d, fed %d", rs.Offered(), len(raw))
		}
		if frac := rs.EliminatedFraction(); frac < 0 || frac > 1 {
			t.Fatalf("stream eliminated fraction %v outside [0,1]", frac)
		}
	})
}
