package pareto

import (
	"math"
	"sort"
)

// Quality metrics between two fronts in a two-objective minimization — the
// oracle-equivalence layer behind the surrogate DSE search. A heuristic
// search is only trustworthy when it is continuously measured against the
// exhaustive oracle, so these metrics are used both by the validation test
// suite (candidate envelope vs the exhaustive golden envelope) and in API
// responses (hypervolume_ratio, additive_epsilon, coverage).
//
// All three follow the standard multi-objective benchmarking definitions:
//
//   - Hypervolume: the area weakly dominated by a front, bounded by a
//     reference point that is worse than every point under comparison. In
//     2-D minimization this is the staircase area between the front and the
//     reference corner.
//
//   - Additive epsilon: the smallest ε such that shifting the candidate
//     front by (−ε, −ε) makes it weakly dominate every oracle point.
//     Negative values mean the candidate already dominates the oracle.
//
//   - Coverage: the fraction of oracle points weakly dominated by some
//     candidate point — 1.0 when the candidate found (or beat) every oracle
//     vertex exactly.

// Hypervolume returns the area weakly dominated by the points and bounded by
// ref: Σ over the front of (ref.X − xᵢ)·(yᵢ₋₁ − yᵢ) with y₀ = ref.Y. Points
// that do not strictly dominate ref contribute nothing (their rectangle is
// clipped to zero), so a reference inside the front is safe, just lossy.
// Non-finite points are ignored. The result is 0 for an empty input.
func Hypervolume(points []Point, ref Point) float64 {
	var hv float64
	prevY := ref.Y
	// Front() returns ascending X with non-increasing Y (duplicates kept),
	// exactly the staircase order the sweep needs.
	for _, i := range Front(points) {
		p := points[i]
		if p.X >= ref.X || p.Y >= prevY {
			continue // clipped by the reference corner or a previous column
		}
		// prevY starts at ref.Y and only decreases, so the column's top is
		// always prevY and its area is strictly positive here.
		hv += (ref.X - p.X) * (prevY - p.Y)
		prevY = p.Y
	}
	return hv
}

// ReferencePoint returns the canonical hypervolume reference for a set of
// fronts: the worst coordinate observed on each axis, pushed out by 10 % of
// that axis's observed range (or 10 % of its magnitude when the range is
// degenerate, so single-point fronts still enclose positive area). Both
// fronts of a comparison must share the same reference for their
// hypervolumes to be comparable.
func ReferencePoint(fronts ...[]Point) Point {
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, f := range fronts {
		for _, p := range f {
			if !p.valid() {
				continue
			}
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if math.IsInf(maxX, -1) {
		return Point{}
	}
	return Point{X: maxX + pad(minX, maxX), Y: maxY + pad(minY, maxY)}
}

// pad returns the reference-point margin for one axis: 10 % of the observed
// range, falling back to 10 % of the magnitude (or 1.0 at exactly zero) when
// every point shares the coordinate.
func pad(lo, hi float64) float64 {
	if d := hi - lo; d > 0 {
		return 0.1 * d
	}
	if m := math.Abs(hi); m > 0 {
		return 0.1 * m
	}
	return 1.0
}

// AdditiveEpsilon returns the additive ε-indicator from candidate to oracle:
// the smallest ε such that for every oracle point some candidate point
// satisfies c.X ≤ o.X+ε and c.Y ≤ o.Y+ε. It is directional —
// AdditiveEpsilon(a, b) and AdditiveEpsilon(b, a) generally differ — and
// zero when the fronts coincide. An empty or all-invalid candidate returns
// +Inf against a non-empty oracle; an empty oracle returns -Inf (vacuously
// dominated).
// The implementation exploits the candidate's staircase: only front members
// can attain the per-oracle minimum (a dominated candidate is beaten by its
// dominator on both axes, and float subtraction is monotone), and along the
// front — X ascending, Y non-increasing — max(c.X−o.X, c.Y−o.Y) is unimodal
// in the front position, so the minimizer sits at the crossing found by one
// binary search. O((n+m) log n) against the naive O(n·m) scan; the property
// suite pins the two exactly equal on randomized fronts.
func AdditiveEpsilon(candidate, oracle []Point) float64 {
	front := Front(candidate)
	eps := math.Inf(-1)
	for _, o := range oracle {
		if !o.valid() {
			continue
		}
		best := math.Inf(1)
		// g(i) = max(c.X−o.X, c.Y−o.Y) is the max of a non-decreasing and a
		// non-increasing sequence along the staircase; its minimum is at the
		// first index where the rising term takes over, or just before it.
		i := sort.Search(len(front), func(i int) bool {
			c := candidate[front[i]]
			return c.X-o.X >= c.Y-o.Y
		})
		if i < len(front) {
			c := candidate[front[i]]
			best = math.Max(c.X-o.X, c.Y-o.Y)
		}
		if i > 0 {
			c := candidate[front[i-1]]
			if need := math.Max(c.X-o.X, c.Y-o.Y); need < best {
				best = need
			}
		}
		if best > eps {
			eps = best
		}
	}
	return eps
}

// Coverage returns the fraction of oracle points weakly dominated by some
// candidate point (c.X ≤ o.X and c.Y ≤ o.Y — equality counts, so a candidate
// that found the exact oracle vertex covers it). It returns 1 for an empty
// oracle.
// Like AdditiveEpsilon, Coverage sweeps the candidate's staircase instead of
// scanning every candidate per oracle point: an oracle point is covered iff
// the last front member with X ≤ o.X (front Y is non-increasing, so that
// member carries the lowest Y among all candidates with X ≤ o.X) has Y ≤ o.Y.
func Coverage(candidate, oracle []Point) float64 {
	front := Front(candidate)
	var total, covered int
	for _, o := range oracle {
		if !o.valid() {
			continue
		}
		total++
		// First front index with X > o.X; everything before it has X ≤ o.X.
		i := sort.Search(len(front), func(i int) bool {
			return candidate[front[i]].X > o.X
		})
		if i > 0 && candidate[front[i-1]].Y <= o.Y {
			covered++
		}
	}
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}
