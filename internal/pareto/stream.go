package pareto

import (
	"fmt"
	"sort"
)

// Stream maintains the lower convex envelope of a stream of points in
// O(points kept) memory — the accumulator behind the v2 DSE engine. Instead
// of materializing a design space and calling Envelope once, callers Offer
// points one at a time (in any order) and the stream keeps exactly the
// current envelope vertices, evicting previously accepted points the moment
// a newcomer renders them non-optimal.
//
// The invariant matches Envelope's semantics exactly: the kept set is the
// set of points that minimize Y + β·X for some β ∈ [0, ∞) among everything
// offered so far, with collinear interior points and coordinate duplicates
// excluded. Because a point above the current envelope is above every later
// envelope (envelopes only move down as points arrive), a rejection is
// final and the result is independent of arrival order; the property suite
// in internal/dse verifies both claims against the batch implementation on
// randomized spaces.
//
// Stream is not safe for concurrent use; callers serialize Offer (the DSE
// engine offers per-chunk under a mutex after dominance pre-pruning).
type Stream struct {
	pts     []Point // envelope vertices, ascending X, strictly descending Y
	ids     []int64 // caller handles parallel to pts
	offered int64   // every point ever offered, including invalid ones
}

// Offered returns the number of points offered so far (valid or not).
func (s *Stream) Offered() int64 { return s.offered }

// Len returns the number of points currently on the envelope.
func (s *Stream) Len() int { return len(s.pts) }

// IDs returns the handles of the kept points in ascending-X order.
func (s *Stream) IDs() []int64 { return append([]int64(nil), s.ids...) }

// Points returns the kept points in ascending-X order.
func (s *Stream) Points() []Point { return append([]Point(nil), s.pts...) }

// EliminatedFraction returns the share of offered points that are provably
// never optimal — the streaming counterpart of EliminatedFraction.
func (s *Stream) EliminatedFraction() float64 {
	if s.offered == 0 {
		return 0
	}
	return 1 - float64(len(s.pts))/float64(s.offered)
}

// cross returns the orientation of the triple a→b→c: positive when b lies
// strictly below the chord a–c (a counter-clockwise turn), the same
// predicate the batch Envelope uses.
func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Offer presents one point to the accumulator. It reports whether the point
// joined the envelope and returns the handles of previously accepted points
// it evicted, so callers can release their payloads. Non-finite points are
// counted but never accepted.
func (s *Stream) Offer(id int64, p Point) (accepted bool, evicted []int64) {
	s.offered++
	if !p.valid() {
		return false, nil
	}
	n := len(s.pts)
	if n == 0 {
		s.insert(0, id, p)
		return true, nil
	}

	// i is the insertion position: the first vertex with X ≥ p.X.
	i := sort.Search(n, func(k int) bool { return s.pts[k].X >= p.X })
	switch {
	case i < n && s.pts[i].X == p.X:
		if s.pts[i].Y <= p.Y {
			return false, nil // dominated, or an exact duplicate (first wins)
		}
	case i > 0 && s.pts[i-1].Y <= p.Y:
		// The left neighbor has the lowest Y among vertices with X ≤ p.X
		// (Y is strictly decreasing), so p is dominated.
		return false, nil
	}
	if i > 0 && i < n && s.pts[i].X != p.X {
		// Interior: p must lie strictly below the chord between its
		// neighbors, otherwise it can never uniquely minimize Y + β·X.
		if cross(s.pts[i-1], p, s.pts[i]) <= 0 {
			return false, nil
		}
	}

	s.insert(i, id, p)

	// Evict vertices to the right that p dominates (Y is strictly
	// decreasing along the chain, so they are contiguous) …
	for i+1 < len(s.pts) && s.pts[i+1].Y >= p.Y {
		evicted = append(evicted, s.remove(i+1))
	}
	// … then restore convexity on both sides (standard incremental-hull
	// tangent repair around the inserted vertex).
	for i+2 < len(s.pts) && cross(p, s.pts[i+1], s.pts[i+2]) <= 0 {
		evicted = append(evicted, s.remove(i+1))
	}
	for i >= 2 && cross(s.pts[i-2], s.pts[i-1], p) <= 0 {
		evicted = append(evicted, s.remove(i-1))
		i--
	}
	return true, evicted
}

// Merge folds another stream's snapshot into s: every surviving vertex is
// re-offered, and the snapshot's rejected-point count is absorbed into the
// offered total, so the merged stream reports exactly as many offers as the
// two streams saw together. It returns the snapshot ids that joined the
// envelope and the ids evicted along the way (a vertex accepted and then
// evicted by a later vertex of the same snapshot appears in both — apply
// accepted before evicted).
//
// Because a rejection is final — a point above the current envelope is above
// every later envelope — merging per-partition envelopes loses nothing:
// envelope(A ∪ B) = envelope(envelope(A) ∪ envelope(B)). The operation is
// therefore associative and, up to duplicate-coordinate tie-breaks (first
// offer wins), commutative; merging snapshots in ascending-id order
// reproduces a single stream that saw the ids in order. The property suite
// in stream_merge_test.go pins both claims.
func (s *Stream) Merge(st StreamState) (accepted, evicted []int64) {
	for i, p := range st.Points {
		ok, ev := s.Offer(st.IDs[i], p)
		if ok {
			accepted = append(accepted, st.IDs[i])
		}
		evicted = append(evicted, ev...)
	}
	s.offered += st.Offered - int64(len(st.Points))
	return accepted, evicted
}

// StreamState is a serializable snapshot of a Stream: the envelope vertices,
// their caller handles, and the offered count. JSON round-trips are exact —
// encoding/json renders float64 in shortest form that parses back to the
// same bits — so a restored stream continues bit-identically to the
// original. Checkpoint/resume of the streaming DSE engine is built on it.
type StreamState struct {
	Points  []Point `json:"points"`
	IDs     []int64 `json:"ids"`
	Offered int64   `json:"offered"`
}

// Snapshot captures the stream's current state. The returned slices are
// copies; later Offers do not mutate them.
func (s *Stream) Snapshot() StreamState {
	return StreamState{
		Points:  append([]Point(nil), s.pts...),
		IDs:     append([]int64(nil), s.ids...),
		Offered: s.offered,
	}
}

// Restore replaces the stream's state with a snapshot, validating every
// envelope invariant first (finite coordinates, strictly ascending X,
// strictly descending Y, strict convexity, matching handle count, offered ≥
// kept) so a corrupted or hand-edited checkpoint cannot silently poison
// later Offers. The snapshot's slices are copied; the stream does not alias
// them.
func (s *Stream) Restore(st StreamState) error {
	if len(st.Points) != len(st.IDs) {
		return fmt.Errorf("pareto: snapshot has %d points but %d ids", len(st.Points), len(st.IDs))
	}
	if st.Offered < int64(len(st.Points)) {
		return fmt.Errorf("pareto: snapshot offered %d < %d kept points", st.Offered, len(st.Points))
	}
	for i, p := range st.Points {
		if !p.valid() {
			return fmt.Errorf("pareto: snapshot point %d is non-finite (%g, %g)", i, p.X, p.Y)
		}
		if i == 0 {
			continue
		}
		prev := st.Points[i-1]
		if !(p.X > prev.X) || !(p.Y < prev.Y) {
			return fmt.Errorf("pareto: snapshot points %d..%d break the envelope order (X ascending, Y descending)", i-1, i)
		}
	}
	for i := 2; i < len(st.Points); i++ {
		if cross(st.Points[i-2], st.Points[i-1], st.Points[i]) <= 0 {
			return fmt.Errorf("pareto: snapshot points %d..%d are not strictly convex", i-2, i)
		}
	}
	s.pts = append([]Point(nil), st.Points...)
	s.ids = append([]int64(nil), st.IDs...)
	s.offered = st.Offered
	return nil
}

// insert places (id, p) at position i.
func (s *Stream) insert(i int, id int64, p Point) {
	s.pts = append(s.pts, Point{})
	copy(s.pts[i+1:], s.pts[i:])
	s.pts[i] = p
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = id
}

// remove deletes the vertex at position i and returns its handle.
func (s *Stream) remove(i int) int64 {
	id := s.ids[i]
	s.pts = append(s.pts[:i], s.pts[i+1:]...)
	s.ids = append(s.ids[:i], s.ids[i+1:]...)
	return id
}
