package pareto

import (
	"math"
	"testing"
)

// TestHypervolumeHandComputed pins Hypervolume against staircase areas worked
// out by hand for 2- and 3-point fronts.
func TestHypervolumeHandComputed(t *testing.T) {
	ref := Point{X: 10, Y: 10}
	cases := []struct {
		name string
		pts  []Point
		want float64
	}{
		// Single point: one rectangle to the reference corner.
		{"single", []Point{{2, 3}}, (10 - 2) * (10 - 3)},
		// Two points (1,6), (4,2): columns (10-1)*(10-6) + (10-4)*(6-2).
		{"two", []Point{{1, 6}, {4, 2}}, 9*4 + 6*4},
		// Same two points offered in reverse order: order-invariant.
		{"two-reversed", []Point{{4, 2}, {1, 6}}, 9*4 + 6*4},
		// Three points (1,8), (3,5), (7,1):
		// (10-1)*(10-8) + (10-3)*(8-5) + (10-7)*(5-1).
		{"three", []Point{{1, 8}, {3, 5}, {7, 1}}, 9*2 + 7*3 + 3*4},
		// A dominated interior point contributes nothing.
		{"dominated", []Point{{1, 6}, {4, 2}, {5, 7}}, 9*4 + 6*4},
		// A point outside the reference box is clipped away entirely.
		{"clipped", []Point{{1, 6}, {4, 2}, {11, 0}}, 9*4 + 6*4},
		// Duplicates count once.
		{"duplicates", []Point{{2, 3}, {2, 3}}, (10 - 2) * (10 - 3)},
		{"empty", nil, 0},
		{"nonfinite", []Point{{math.NaN(), 1}, {1, math.Inf(1)}}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Hypervolume(tc.pts, ref); got != tc.want {
				t.Fatalf("Hypervolume(%v, %v) = %v, want %v", tc.pts, ref, got, tc.want)
			}
		})
	}
}

// TestHypervolumeSubsetMonotone: the hypervolume of a subset of a front can
// never exceed the full front's — the property the surrogate acceptance test
// leans on (surrogate HV ≤ oracle HV).
func TestHypervolumeSubsetMonotone(t *testing.T) {
	full := []Point{{1, 9}, {2, 6}, {4, 4}, {7, 2}, {9, 1}}
	ref := ReferencePoint(full)
	want := Hypervolume(full, ref)
	for drop := range full {
		sub := append(append([]Point(nil), full[:drop]...), full[drop+1:]...)
		if got := Hypervolume(sub, ref); got > want {
			t.Fatalf("dropping point %d raised hypervolume: %v > %v", drop, got, want)
		}
	}
}

// TestAdditiveEpsilon covers the identity, directionality, and shifted-front
// cases of the ε-indicator.
func TestAdditiveEpsilon(t *testing.T) {
	front := []Point{{1, 6}, {4, 2}}
	if eps := AdditiveEpsilon(front, front); eps != 0 {
		t.Fatalf("epsilon(front, front) = %v, want 0", eps)
	}

	// Shift the candidate up-right by 0.5: needs exactly ε = 0.5.
	shifted := []Point{{1.5, 6.5}, {4.5, 2.5}}
	if eps := AdditiveEpsilon(shifted, front); eps != 0.5 {
		t.Fatalf("epsilon(shifted, front) = %v, want 0.5", eps)
	}
	// The opposite direction is negative: shifted is dominated by front, so
	// front needs a negative shift before shifted stops dominating it.
	if eps := AdditiveEpsilon(front, shifted); eps != -0.5 {
		t.Fatalf("epsilon(front, shifted) = %v, want -0.5", eps)
	}

	// Asymmetry on fronts that interleave: candidate misses (0, 10) by 2 on
	// X but beats everything else.
	a := []Point{{2, 0}}
	b := []Point{{0, 10}, {2, 0}}
	if eps := AdditiveEpsilon(a, b); eps != 2 {
		t.Fatalf("epsilon(a, b) = %v, want 2", eps)
	}
	if eps := AdditiveEpsilon(b, a); eps != 0 {
		t.Fatalf("epsilon(b, a) = %v, want 0", eps)
	}

	// Degenerate inputs.
	if eps := AdditiveEpsilon(nil, front); !math.IsInf(eps, 1) {
		t.Fatalf("epsilon(empty, front) = %v, want +Inf", eps)
	}
	if eps := AdditiveEpsilon(front, nil); !math.IsInf(eps, -1) {
		t.Fatalf("epsilon(front, empty) = %v, want -Inf", eps)
	}
}

// TestCoverage pins the weak-dominance coverage fraction.
func TestCoverage(t *testing.T) {
	oracle := []Point{{1, 6}, {4, 2}, {8, 1}}
	cases := []struct {
		name string
		cand []Point
		want float64
	}{
		{"exact", oracle, 1},
		{"superset", append([]Point{{0, 7}}, oracle...), 1},
		{"partial", []Point{{1, 6}}, 1.0 / 3},
		{"dominating", []Point{{0, 0}}, 1},
		{"disjoint-worse", []Point{{9, 9}}, 0},
		{"empty", nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Coverage(tc.cand, oracle); got != tc.want {
				t.Fatalf("Coverage = %v, want %v", got, tc.want)
			}
		})
	}
	if got := Coverage(nil, nil); got != 1 {
		t.Fatalf("Coverage(nil, nil) = %v, want 1 (vacuous)", got)
	}
}

// TestReferencePointDegenerate: single-point and flat fronts still get a
// reference that encloses positive area.
func TestReferencePointDegenerate(t *testing.T) {
	single := []Point{{3, 5}}
	ref := ReferencePoint(single)
	if !(ref.X > 3 && ref.Y > 5) {
		t.Fatalf("reference %v does not enclose the single point", ref)
	}
	if hv := Hypervolume(single, ref); hv <= 0 {
		t.Fatalf("single-point hypervolume %v, want > 0", hv)
	}
	// Two fronts share the reference: it must be worse than both.
	a := []Point{{1, 9}, {5, 2}}
	b := []Point{{2, 11}, {7, 1}}
	ref = ReferencePoint(a, b)
	for _, p := range append(append([]Point(nil), a...), b...) {
		if p.X >= ref.X || p.Y >= ref.Y {
			t.Fatalf("reference %v not strictly worse than %v", ref, p)
		}
	}
	// All-zero input.
	if ref := ReferencePoint([]Point{{0, 0}}); !(ref.X > 0 && ref.Y > 0) {
		t.Fatalf("zero-point reference %v not strictly positive", ref)
	}
	if ref := ReferencePoint(nil); ref != (Point{}) {
		t.Fatalf("empty reference = %v, want zero value", ref)
	}
}
