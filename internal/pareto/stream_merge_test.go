package pareto

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomPoints draws n points with a deliberately high duplicate rate (a
// coarse coordinate lattice) so merge tie-breaking is actually exercised.
func randomPoints(rng *rand.Rand, n int) []Point {
	points := make([]Point, n)
	for i := range points {
		if rng.Intn(4) == 0 {
			// Lattice point: duplicates across partitions are likely.
			points[i] = Point{X: float64(rng.Intn(12)), Y: float64(rng.Intn(12))}
		} else {
			points[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
	}
	return points
}

// partition splits [0, n) into k contiguous, possibly heavily skewed ranges.
func partition(rng *rand.Rand, n, k int) [][2]int {
	if k > n {
		k = n
	}
	cutset := map[int]bool{}
	for len(cutset) < k-1 {
		cutset[1+rng.Intn(n-1)] = true
	}
	cuts := make([]int, 0, k+1)
	cuts = append(cuts, 0)
	for c := range cutset {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, n)
	sort.Ints(cuts)
	out := make([][2]int, 0, k)
	for i := 1; i < len(cuts); i++ {
		out = append(out, [2]int{cuts[i-1], cuts[i]})
	}
	return out
}

// mergeParts streams each contiguous partition separately, then merges the
// per-partition snapshots in ascending-id order, tracking the accepted /
// evicted bookkeeping contract along the way.
func mergeParts(t *testing.T, points []Point, parts [][2]int) *Stream {
	t.Helper()
	merged := &Stream{}
	live := map[int64]bool{}
	for _, pr := range parts {
		part := &Stream{}
		for i := pr[0]; i < pr[1]; i++ {
			part.Offer(int64(i), points[i])
		}
		accepted, evicted := merged.Merge(part.Snapshot())
		for _, id := range accepted {
			live[id] = true
		}
		for _, id := range evicted {
			if !live[id] {
				t.Fatalf("evicted id %d was never accepted", id)
			}
			delete(live, id)
		}
	}
	for _, id := range merged.IDs() {
		if !live[id] {
			t.Fatalf("kept id %d missing from accepted-minus-evicted set", id)
		}
	}
	if len(live) != merged.Len() {
		t.Fatalf("bookkeeping kept %d ids, envelope has %d", len(live), merged.Len())
	}
	return merged
}

// TestStreamMergePartitionInvariant is the shard algebra behind distributed
// DSE: streaming arbitrary contiguous partitions separately and merging their
// envelopes (in ascending-id order) must equal one stream that saw every
// point — ids, coordinates, and the offered count. Partitions include heavily
// skewed splits and single-point parts.
func TestStreamMergePartitionInvariant(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		rng := rand.New(rand.NewSource(4000 + seed))
		n := 2 + rng.Intn(300)
		points := randomPoints(rng, n)
		k := 1 + rng.Intn(n)
		if seed%7 == 0 {
			k = n // every part holds exactly one point
		}
		parts := partition(rng, n, k)

		whole := &Stream{}
		for i, p := range points {
			whole.Offer(int64(i), p)
		}
		merged := mergeParts(t, points, parts)

		if !reflect.DeepEqual(whole.IDs(), merged.IDs()) {
			t.Fatalf("seed %d (%d parts): merged ids %v != whole %v", seed, len(parts), merged.IDs(), whole.IDs())
		}
		if !reflect.DeepEqual(whole.Points(), merged.Points()) {
			t.Fatalf("seed %d: merged points differ from whole stream", seed)
		}
		if whole.Offered() != merged.Offered() {
			t.Fatalf("seed %d: merged offered %d != whole %d", seed, merged.Offered(), whole.Offered())
		}
	}
}

// TestStreamMergeAssociative checks that the bracketing of merges does not
// matter: ((A∪B)∪C) == (A∪(B∪C)) for per-partition envelopes, as long as
// lower-id snapshots are folded in first within each bracket.
func TestStreamMergeAssociative(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(5000 + seed))
		n := 3 + rng.Intn(200)
		points := randomPoints(rng, n)
		parts := partition(rng, n, 3)

		snaps := make([]StreamState, 3)
		for i, pr := range parts {
			s := &Stream{}
			for j := pr[0]; j < pr[1]; j++ {
				s.Offer(int64(j), points[j])
			}
			snaps[i] = s.Snapshot()
		}

		left := &Stream{}
		left.Merge(snaps[0])
		left.Merge(snaps[1])
		left.Merge(snaps[2])

		bc := &Stream{}
		bc.Merge(snaps[1])
		bc.Merge(snaps[2])
		right := &Stream{}
		right.Merge(snaps[0])
		right.Merge(bc.Snapshot())

		if !reflect.DeepEqual(left.IDs(), right.IDs()) || !reflect.DeepEqual(left.Points(), right.Points()) {
			t.Fatalf("seed %d: merge bracketing changed the envelope", seed)
		}
		if left.Offered() != right.Offered() {
			t.Fatalf("seed %d: bracketing changed offered: %d vs %d", seed, left.Offered(), right.Offered())
		}
	}
}

// TestStreamMergeOfferedAbsorbs pins the counter contract: merging a snapshot
// raises Offered by the snapshot's full offered count, not just its vertices.
func TestStreamMergeOfferedAbsorbs(t *testing.T) {
	part := &Stream{}
	for i := 0; i < 10; i++ {
		part.Offer(int64(i), Point{X: 5, Y: 5}) // nine duplicates rejected
	}
	if part.Len() != 1 || part.Offered() != 10 {
		t.Fatalf("setup: kept %d offered %d", part.Len(), part.Offered())
	}
	s := &Stream{}
	s.Offer(100, Point{X: 1, Y: 9})
	s.Merge(part.Snapshot())
	if s.Offered() != 11 {
		t.Fatalf("merged offered = %d, want 11", s.Offered())
	}
	if s.Len() != 2 {
		t.Fatalf("merged kept = %d, want 2", s.Len())
	}
}
