package pareto

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q Point
		want bool
	}{
		{Point{1, 1}, Point{2, 2}, true},
		{Point{1, 2}, Point{2, 1}, false},
		{Point{1, 1}, Point{1, 1}, false}, // equal points do not dominate
		{Point{1, 1}, Point{1, 2}, true},
		{Point{2, 2}, Point{1, 1}, false},
	}
	for i, c := range cases {
		if got := c.p.Dominates(c.q); got != c.want {
			t.Errorf("case %d: %v dominates %v = %v, want %v", i, c.p, c.q, got, c.want)
		}
	}
}

func TestFrontSimple(t *testing.T) {
	pts := []Point{
		{1, 5}, // front
		{2, 3}, // front
		{3, 4}, // dominated by (2,3)
		{4, 1}, // front
		{5, 2}, // dominated by (4,1)
	}
	got := Front(pts)
	want := []int{0, 1, 3}
	if !equalInts(got, want) {
		t.Errorf("front = %v, want %v", got, want)
	}
}

func TestFrontSkipsInvalid(t *testing.T) {
	pts := []Point{
		{math.NaN(), 1},
		{1, math.Inf(1)},
		{2, 2},
	}
	got := Front(pts)
	if !equalInts(got, []int{2}) {
		t.Errorf("front = %v, want [2]", got)
	}
	if Front(nil) == nil {
		// empty, not nil guarantee is unimportant; just should not panic
		t.Log("empty front ok")
	}
}

func TestFrontKeepsDuplicates(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {2, 0.5}}
	got := Front(pts)
	if len(got) != 3 {
		t.Errorf("duplicates should co-exist on the front: %v", got)
	}
}

func TestEnvelopeSubsetOfFront(t *testing.T) {
	pts := []Point{
		{1, 10},  // envelope endpoint (min X)
		{2, 8},   // on front, NOT on envelope (above chord (1,10)→(3,3.5))
		{3, 3.5}, // envelope
		{4, 2},   // envelope
		{8, 1.8}, // envelope endpoint (min Y)
	}
	front := Front(pts)
	if !equalInts(front, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("front = %v, want all five", front)
	}
	env := Envelope(pts)
	if !equalInts(env, []int{0, 2, 3, 4}) {
		t.Errorf("envelope = %v, want [0 2 3 4]", env)
	}
	frontSet := map[int]bool{}
	for _, i := range front {
		frontSet[i] = true
	}
	for _, i := range env {
		if !frontSet[i] {
			t.Errorf("envelope member %d not on front", i)
		}
	}
}

// The defining property: a point is on the envelope iff it is the argmin of
// Y+β·X for some β ≥ 0. Verify both directions by dense β sweep.
func TestEnvelopeMatchesBetaSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64()*100 + 0.1, Y: rng.Float64()*100 + 0.1}
		}
		env := Envelope(pts)
		envSet := map[int]bool{}
		for _, i := range env {
			envSet[i] = true
		}
		winners := map[int]bool{}
		for _, beta := range betaGrid() {
			winners[ArgminLinear(pts, beta)] = true
		}
		// Every β winner must be on the envelope.
		for w := range winners {
			if !envSet[w] {
				t.Fatalf("trial %d: β winner %d (%v) not in envelope %v", trial, w, pts[w], env)
			}
		}
		// Every envelope member should win for some β (dense grid).
		for _, e := range env {
			if !winners[e] {
				t.Fatalf("trial %d: envelope member %d (%v) never won the β sweep", trial, e, pts[e])
			}
		}
	}
}

func betaGrid() []float64 {
	var bs []float64
	for e := -6.0; e <= 6.0; e += 0.05 {
		bs = append(bs, math.Pow(10, e))
	}
	return append(bs, 0)
}

func TestEnvelopeSortedByX(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := make([]Point, 30)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 10, rng.Float64() * 10}
	}
	env := Envelope(pts)
	if !sort.SliceIsSorted(env, func(a, b int) bool { return pts[env[a]].X < pts[env[b]].X }) {
		t.Errorf("envelope not sorted by X: %v", env)
	}
}

func TestEnvelopeSmallInputs(t *testing.T) {
	if got := Envelope(nil); len(got) != 0 {
		t.Errorf("empty envelope = %v", got)
	}
	one := []Point{{1, 1}}
	if got := Envelope(one); !equalInts(got, []int{0}) {
		t.Errorf("singleton envelope = %v", got)
	}
	two := []Point{{1, 2}, {2, 1}}
	if got := Envelope(two); len(got) != 2 {
		t.Errorf("two incomparable points should both survive: %v", got)
	}
	dominatedPair := []Point{{1, 1}, {2, 2}}
	if got := Envelope(dominatedPair); !equalInts(got, []int{0}) {
		t.Errorf("dominated pair envelope = %v", got)
	}
}

func TestEnvelopeCollinear(t *testing.T) {
	// Middle point is exactly on the chord: excluded (never uniquely wins).
	pts := []Point{{1, 3}, {2, 2}, {3, 1}}
	got := Envelope(pts)
	if !equalInts(got, []int{0, 2}) {
		t.Errorf("collinear envelope = %v, want [0 2]", got)
	}
}

func TestEnvelopeDuplicates(t *testing.T) {
	pts := []Point{{1, 2}, {1, 2}, {3, 1}}
	got := Envelope(pts)
	if len(got) != 2 {
		t.Errorf("duplicate points should collapse on the envelope: %v", got)
	}
}

func TestArgminLinear(t *testing.T) {
	pts := []Point{{1, 10}, {5, 1}, {math.NaN(), 0}}
	if got := ArgminLinear(pts, 0); got != 1 {
		t.Errorf("β=0 argmin = %d, want 1 (min Y)", got)
	}
	if got := ArgminLinear(pts, 1e9); got != 0 {
		t.Errorf("β→∞ argmin = %d, want 0 (min X)", got)
	}
	if got := ArgminLinear(nil, 1); got != -1 {
		t.Errorf("empty argmin = %d, want -1", got)
	}
}

func TestEliminatedFraction(t *testing.T) {
	pts := []Point{{1, 4}, {2, 1}, {3, 3}, {4, 2.5}, {5, 0.9}}
	// Envelope: (1,4) → (2,1) → (5,0.9); eliminated 2 of 5.
	got := EliminatedFraction(pts)
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("eliminated = %v, want 0.4", got)
	}
	if EliminatedFraction(nil) != 0 {
		t.Error("empty elimination should be 0")
	}
}

// Property: the envelope of any point cloud is non-empty and every other
// valid point is beaten by some envelope member under β=1.
func TestEnvelopeNonEmptyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
		env := Envelope(pts)
		if len(env) == 0 {
			return false
		}
		w := ArgminLinear(pts, 1)
		for _, e := range env {
			if e == w {
				return true
			}
		}
		// The β=1 winner must be on the envelope.
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: front members are mutually non-dominating and everything off the
// front is dominated by someone on it.
func TestFrontProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		pts := make([]Point, n)
		for i := range pts {
			// Coarse grid to exercise ties.
			pts[i] = Point{float64(rng.Intn(8)), float64(rng.Intn(8))}
		}
		front := Front(pts)
		onFront := map[int]bool{}
		for _, i := range front {
			onFront[i] = true
		}
		for _, i := range front {
			for _, j := range front {
				if i != j && pts[i].Dominates(pts[j]) {
					return false
				}
			}
		}
		for i := range pts {
			if onFront[i] {
				continue
			}
			dominated := false
			for _, j := range front {
				if pts[j].Dominates(pts[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
