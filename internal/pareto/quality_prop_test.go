package pareto

import (
	"math"
	"math/rand"
	"testing"
)

// naiveAdditiveEpsilon is the textbook O(n·m) scan the staircase sweep
// replaced; the property tests below pin the two exactly equal — not merely
// close — on randomized inputs, which is what licenses the sweep inside the
// byte-identical oracle-equivalence harness.
func naiveAdditiveEpsilon(candidate, oracle []Point) float64 {
	eps := math.Inf(-1)
	for _, o := range oracle {
		if !o.valid() {
			continue
		}
		best := math.Inf(1)
		for _, c := range candidate {
			if !c.valid() {
				continue
			}
			if need := math.Max(c.X-o.X, c.Y-o.Y); need < best {
				best = need
			}
		}
		if best > eps {
			eps = best
		}
	}
	return eps
}

// naiveCoverage is the historical O(n·m) Coverage.
func naiveCoverage(candidate, oracle []Point) float64 {
	var total, covered int
	for _, o := range oracle {
		if !o.valid() {
			continue
		}
		total++
		for _, c := range candidate {
			if !c.valid() {
				continue
			}
			if c.X <= o.X && c.Y <= o.Y {
				covered++
				break
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(covered) / float64(total)
}

// qualityRandPoints draws clustered coordinates (including exact duplicates
// and shared axes, via rounding) so the sweeps' tie handling is exercised.
func qualityRandPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: math.Round(rng.Float64()*20) / 2,
			Y: math.Round(rng.Float64()*20) / 2,
		}
		if rng.Intn(10) == 0 {
			pts[i].X = math.NaN() // invalid points must be ignored identically
		}
	}
	return pts
}

// TestAdditiveEpsilonMatchesNaive: the staircase sweep equals the O(n·m)
// scan bit for bit — both metrics only ever combine inputs with the same
// max/subtract operations, so exact equality is the correct bar.
func TestAdditiveEpsilonMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		cand := qualityRandPoints(rng, rng.Intn(40))
		oracle := qualityRandPoints(rng, rng.Intn(40))
		got := AdditiveEpsilon(cand, oracle)
		want := naiveAdditiveEpsilon(cand, oracle)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Fatalf("trial %d: AdditiveEpsilon = %v, naive = %v\ncand %v\noracle %v", trial, got, want, cand, oracle)
		}
	}
}

// TestCoverageMatchesNaive: same bar for Coverage.
func TestCoverageMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		cand := qualityRandPoints(rng, rng.Intn(40))
		oracle := qualityRandPoints(rng, rng.Intn(40))
		got := Coverage(cand, oracle)
		want := naiveCoverage(cand, oracle)
		if got != want {
			t.Fatalf("trial %d: Coverage = %v, naive = %v\ncand %v\noracle %v", trial, got, want, cand, oracle)
		}
	}
}

// TestQualityEdgeCasesMatchNaive pins the empty/invalid conventions the
// sweeps must preserve.
func TestQualityEdgeCasesMatchNaive(t *testing.T) {
	some := []Point{{X: 1, Y: 2}}
	invalid := []Point{{X: math.NaN(), Y: 1}}
	for _, tc := range []struct{ cand, oracle []Point }{
		{nil, nil},
		{nil, some},
		{some, nil},
		{invalid, some},
		{some, invalid},
		{invalid, invalid},
	} {
		if got, want := AdditiveEpsilon(tc.cand, tc.oracle), naiveAdditiveEpsilon(tc.cand, tc.oracle); got != want {
			t.Errorf("AdditiveEpsilon(%v, %v) = %v, naive = %v", tc.cand, tc.oracle, got, want)
		}
		if got, want := Coverage(tc.cand, tc.oracle), naiveCoverage(tc.cand, tc.oracle); got != want {
			t.Errorf("Coverage(%v, %v) = %v, naive = %v", tc.cand, tc.oracle, got, want)
		}
	}
}
