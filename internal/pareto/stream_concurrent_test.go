package pareto

import (
	"math/rand"
	"sync"
	"testing"
)

// TestStreamMergeConcurrent: shard streams built concurrently and merged
// afterwards equal a single sequential stream over the same points. Run
// under -race this also proves the snapshot/merge path shares nothing with
// the builders — the pattern the DSE engine relies on when exhaustive
// shards and surrogate batches accumulate in parallel.
func TestStreamMergeConcurrent(t *testing.T) {
	const n, shards = 4096, 8
	rng := rand.New(rand.NewSource(9))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: 1 + rng.Float64()*99, Y: 1 + rng.Float64()*99}
	}

	var seq Stream
	for i, p := range pts {
		seq.Offer(int64(i), p)
	}

	states := make([]StreamState, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var st Stream
			for i := s * (n / shards); i < (s+1)*(n/shards); i++ {
				st.Offer(int64(i), pts[i])
			}
			states[s] = st.Snapshot()
		}(s)
	}
	wg.Wait()

	var merged Stream
	for _, st := range states {
		merged.Merge(st)
	}

	sid, mid := seq.IDs(), merged.IDs()
	if len(sid) != len(mid) {
		t.Fatalf("merged envelope has %d points, sequential %d", len(mid), len(sid))
	}
	for i := range sid {
		if sid[i] != mid[i] {
			t.Fatalf("envelope diverges at %d: merged id %d, sequential %d", i, mid[i], sid[i])
		}
	}
	sp, mp := seq.Points(), merged.Points()
	for i := range sp {
		if sp[i] != mp[i] {
			t.Fatalf("envelope point %d differs: merged %+v, sequential %+v", i, mp[i], sp[i])
		}
	}
}
