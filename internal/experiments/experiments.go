// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a stable key (see DESIGN.md §3), a typed
// result structure that tests and benchmarks assert on, and a text renderer
// used by cmd/cordoba.
package experiments

import (
	"fmt"
	"io"

	"cordoba/internal/metrics"
	"cordoba/internal/soc"
	"cordoba/internal/table"
)

// Experiment is one reproducible table or figure.
type Experiment struct {
	Key   string // e.g. "table2", "fig8"
	Title string
	// Render runs the experiment and writes its tables/charts to w.
	Render func(w io.Writer) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table I: energy-budgeted throughput of six candidate ICs", RenderTableI},
		{"table2", "Table II: carbon-budgeted throughput of six candidate ICs", RenderTableII},
		{"fig3", "Fig. 3: tC versus clock frequency; tCDP- vs EDP-optimal ICs", RenderFigure3},
		{"fig6", "Fig. 6: EDP vs tCDP across wearable/mobile/datacenter design spaces", RenderFigure6},
		{"fig7", "Fig. 7: tCDP and EDP versus die area across operational time", RenderFigure7},
		{"fig8", "Fig. 8(a-e): carbon efficiency of 121 accelerators across operational time", RenderFigure8},
		{"fig8f", "Fig. 8(f): specialized versus general tasks; optimal versus average", RenderFigure8F},
		{"fig9", "Fig. 9: tCDP normalized to the per-operational-time optimum", RenderFigure9},
		{"fig10", "Fig. 10: VR SoC carbon efficiency versus CPU core count", RenderFigure10},
		{"table5", "Table V: VR SoC parameters before/after carbon-efficient optimization", RenderTableV},
		{"fig11", "Fig. 11: tCDP benefits of 3D stacking on SR 512x512", RenderFigure11},
		{"fig12", "Fig. 12: E·D versus C_emb·D and the unknown-CI survivor set", RenderFigure12},
		{"table6", "Table VI: design-knob directions for energy vs carbon efficiency", RenderTableVI},
		{"dvfs", "DVFS analysis (§III-A): ED² V_DD-independence under square-law vs modern devices", RenderDVFS},
		{"ablation", "Ablations: sensitivity of the DSE conclusions to model constants", RenderAblations},
		{"lifetime", "Lifetime study (§VII): tCDP-optimal hardware refresh cadence", RenderLifetime},
		{"schedule", "Carbon-aware scheduling: lowest-CI_use launch windows per reference grid", RenderSchedule},
		{"chiplet", "Chiplet study: monolithic vs 2-/4-chiplet disaggregation across yield models", RenderChiplet},
		{"partition", "Partition pathfinding: monolithic vs 2.5d chiplets vs 3d stacking across operational time", RenderPartition},
	}
}

// ByKey returns the experiment with the given key.
func ByKey(key string) (Experiment, error) {
	for _, e := range All() {
		if e.Key == key {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (try: %v)", key, Keys())
}

// Keys lists all experiment keys in paper order.
func Keys() []string {
	var ks []string
	for _, e := range All() {
		ks = append(ks, e.Key)
	}
	return ks
}

// ---- Table I ----

// TableIResult carries the rows of Table I.
type TableIResult struct {
	Scenario metrics.EnergyScenario
	Rows     []metrics.EnergyRow
	// BestEDP/BestThroughput are indices of the winning IC ("D" for both).
	BestEDP, BestThroughput int
}

// TableI reproduces the paper's Table I.
func TableI() TableIResult {
	s := metrics.EnergyScenario{CyclesPerTask: metrics.CyclesPerTask, EnergyBudget: 9.5}
	rows := s.Evaluate(metrics.PaperICs())
	res := TableIResult{Scenario: s, Rows: rows}
	for i, r := range rows {
		if r.EDP < rows[res.BestEDP].EDP {
			res.BestEDP = i
		}
		if r.Throughput > rows[res.BestThroughput].Throughput {
			res.BestThroughput = i
		}
	}
	return res
}

// RenderTableI writes Table I.
func RenderTableI(w io.Writer) error {
	res := TableI()
	t := table.New("Table I — fixed 9.5 J energy budget (100e6 cycles per inference)",
		"row", "A", "B", "C", "D", "E", "F")
	add := func(label string, f func(metrics.EnergyRow) float64) {
		cells := []string{label}
		for _, r := range res.Rows {
			cells = append(cells, table.F(f(r)))
		}
		t.AddRow(cells...)
	}
	add("clock (GHz)", func(r metrics.EnergyRow) float64 { return r.IC.Clock.InGHz() })
	add("energy/cycle (nJ)", func(r metrics.EnergyRow) float64 { return r.IC.EnergyPerCycle.Joules() * 1e9 })
	add("inf throughput (inf/s)", func(r metrics.EnergyRow) float64 { return r.ThroughputOne })
	add("# ICs for 1000 inf/s", func(r metrics.EnergyRow) float64 { return r.ICsFor1000 })
	add("power per IC (W)", func(r metrics.EnergyRow) float64 { return r.Power.Watts() })
	add("overall power (W)", func(r metrics.EnergyRow) float64 { return r.TotalPower.Watts() })
	add("energy per inf (J)", func(r metrics.EnergyRow) float64 { return r.EnergyPerTask.Joules() })
	add("# ICs in E budget", func(r metrics.EnergyRow) float64 { return r.ICsForBudget })
	add("throughput in budget (inf/s)", func(r metrics.EnergyRow) float64 { return r.Throughput })
	add("EDP (J/Hz)", func(r metrics.EnergyRow) float64 { return r.EDP })
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "EDP-optimal: IC %q; best budgeted throughput: IC %q\n",
		res.Rows[res.BestEDP].IC.Name, res.Rows[res.BestThroughput].IC.Name)
	return err
}

// ---- Table II ----

// TableIIResult carries the rows of Table II.
type TableIIResult struct {
	Scenario metrics.CarbonScenario
	Rows     []metrics.CarbonRow
	// BestTCDP/BestThroughput are indices of the winner ("E" for both);
	// MinTC is the total-carbon minimizer ("A").
	BestTCDP, BestThroughput, MinTC int
}

// TableII reproduces the paper's Table II.
func TableII() TableIIResult {
	s := metrics.PaperCarbonScenario()
	rows := s.Evaluate(metrics.PaperICs())
	res := TableIIResult{Scenario: s, Rows: rows}
	for i, r := range rows {
		if r.TCDP < rows[res.BestTCDP].TCDP {
			res.BestTCDP = i
		}
		if r.Throughput > rows[res.BestThroughput].Throughput {
			res.BestThroughput = i
		}
		if r.TotalCarbon < rows[res.MinTC].TotalCarbon {
			res.MinTC = i
		}
	}
	return res
}

// RenderTableII writes Table II.
func RenderTableII(w io.Writer) error {
	res := TableII()
	t := table.New(fmt.Sprintf(
		"Table II — fixed carbon budget %s per %s service interval (CI_use = %s)",
		res.Scenario.CarbonBudget(), res.Scenario.ServiceInterval, res.Scenario.CIUse),
		"row", "A", "B", "C", "D", "E", "F")
	add := func(label string, f func(metrics.CarbonRow) float64) {
		cells := []string{label}
		for _, r := range res.Rows {
			cells = append(cells, table.F(f(r)))
		}
		t.AddRow(cells...)
	}
	add("time per inf (s)", func(r metrics.CarbonRow) float64 { return r.TimePerTask.Seconds() })
	add("E per inf (J)", func(r metrics.CarbonRow) float64 { return r.EnergyPerTask.Joules() })
	add("CCI_op (1e-5 g/inf)", func(r metrics.CarbonRow) float64 { return r.CCIOperational.Grams() * 1e5 })
	add("CCI_emb (1e-5 g/inf)", func(r metrics.CarbonRow) float64 { return r.CCIEmbodied.Grams() * 1e5 })
	add("CCI (1e-5 g/inf)", func(r metrics.CarbonRow) float64 { return r.CCI.Grams() * 1e5 })
	add("# ICs in C budget", func(r metrics.CarbonRow) float64 { return r.ICsForBudget })
	add("throughput (inf/s)", func(r metrics.CarbonRow) float64 { return r.Throughput })
	add("tC (gCO2e)", func(r metrics.CarbonRow) float64 { return r.TotalCarbon.Grams() })
	add("tCDP (gCO2e·s)", func(r metrics.CarbonRow) float64 { return r.TCDP })
	add("throughput × tCDP", func(r metrics.CarbonRow) float64 { return r.ThroughputTCDPProduct() })
	if err := t.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"tCDP-optimal: IC %q (also the best throughput: %q); min-tC would pick the slow IC %q\n",
		res.Rows[res.BestTCDP].IC.Name, res.Rows[res.BestThroughput].IC.Name, res.Rows[res.MinTC].IC.Name)
	return err
}

// ---- Figure 3 ----

// RenderFigure3 writes the Fig. 3 comparison: total carbon versus clock
// frequency, and tCDP versus EDP optima.
func RenderFigure3(w io.Writer) error {
	res := TableII()
	var freq, tc, tcdp, edp []float64
	for _, r := range res.Rows {
		freq = append(freq, r.IC.Clock.InGHz())
		tc = append(tc, r.TotalCarbon.Grams())
		tcdp = append(tcdp, r.TCDP)
		edp = append(edp, r.IC.EDP(metrics.CyclesPerTask))
	}
	c1 := &table.Chart{
		Title: "Fig. 3(a) — tC versus clock frequency", XLabel: "clock (GHz)", YLabel: "tC (gCO2e)",
		LogX: true, LogY: true,
		Series: []table.Series{{Name: "ICs A-F", X: freq, Y: tc}},
	}
	if err := c1.Render(w); err != nil {
		return err
	}
	c2 := &table.Chart{
		Title:  "Fig. 3(b) — tCDP versus EDP (optima differ: EDP→D, tCDP→E)",
		XLabel: "EDP (J·s)", YLabel: "tCDP (gCO2e·s)", LogX: true, LogY: true,
		Series: []table.Series{{Name: "ICs A-F", X: edp, Y: tcdp}},
	}
	return c2.Render(w)
}

// ---- Fig. 10 and Table V ----

// Figure10Result carries the core-count sweeps of every VR task.
type Figure10Result struct {
	Tasks   []soc.VRTask
	Sweeps  map[string][]soc.CoreResult
	Optimal map[string]int
}

// Figure10 runs the §VI-D provisioning sweep.
func Figure10() (Figure10Result, error) {
	platform := soc.Quest2()
	res := Figure10Result{
		Tasks:   soc.PaperVRTasks(),
		Sweeps:  map[string][]soc.CoreResult{},
		Optimal: map[string]int{},
	}
	for _, t := range res.Tasks {
		sweep, err := platform.Sweep(t)
		if err != nil {
			return Figure10Result{}, err
		}
		res.Sweeps[t.Name] = sweep
		opt, err := platform.OptimalCores(t)
		if err != nil {
			return Figure10Result{}, err
		}
		res.Optimal[t.Name] = opt
	}
	return res, nil
}

// RenderFigure10 writes the Fig. 10 sweep.
func RenderFigure10(w io.Writer) error {
	res, err := Figure10()
	if err != nil {
		return err
	}
	t := table.New("Fig. 10 — tCDP gain vs 8-core baseline (★ marks the optimal core count)",
		"task", "TLP", "4 cores", "5 cores", "6 cores", "7 cores", "8 cores")
	for _, task := range res.Tasks {
		cells := []string{task.Name, table.F(task.Profile.TLP())}
		for _, r := range res.Sweeps[task.Name] {
			mark := ""
			if r.Cores == res.Optimal[task.Name] {
				mark = " ★"
			}
			cells = append(cells, fmt.Sprintf("%s×%s", table.F(r.TCDPGain), mark))
		}
		t.AddRow(cells...)
	}
	return t.Render(w)
}

// TableVResult is the before/after comparison of Table V.
type TableVResult struct {
	Before, After     metrics.Report
	AreaBefore        float64 // cm²
	AreaAfter         float64 // cm²
	FPSAfter          float64 // normalized to 8-core
	TCDPGain, TCGain  float64
	EDPRatio          float64 // before/after (< 1: EDP slightly degraded)
	EmbodiedReduction float64
}

// TableV reproduces the §VI-D M-1 optimization (8 → 4 cores).
func TableV() (TableVResult, error) {
	platform := soc.Quest2()
	m1, err := soc.PaperVRTask(soc.TaskM1)
	if err != nil {
		return TableVResult{}, err
	}
	before, err := platform.Evaluate(m1, 8)
	if err != nil {
		return TableVResult{}, err
	}
	after, err := platform.Evaluate(m1, 4)
	if err != nil {
		return TableVResult{}, err
	}
	p8, _ := soc.ProvisionFor(8)
	p4, _ := soc.ProvisionFor(4)
	return TableVResult{
		Before:            before,
		After:             after,
		AreaBefore:        platform.Area(p8).CM2(),
		AreaAfter:         platform.Area(p4).CM2(),
		FPSAfter:          m1.Profile.RelativeFPS(4),
		TCDPGain:          before.TCDP() / after.TCDP(),
		TCGain:            before.TotalCarbon().Grams() / after.TotalCarbon().Grams(),
		EDPRatio:          before.EDP() / after.EDP(),
		EmbodiedReduction: before.EmbodiedCarbon.Grams() / after.EmbodiedCarbon.Grams(),
	}, nil
}

// RenderTableV writes Table V.
func RenderTableV(w io.Writer) error {
	res, err := TableV()
	if err != nil {
		return err
	}
	t := table.New("Table V — M-1 on Quest 2-class SoC, before/after provisioning optimization",
		"parameter", "before (8 cores)", "after (4 cores)", "improvement")
	t.AddRow("A (cm²)", table.F(res.AreaBefore), table.F(res.AreaAfter),
		table.F(res.AreaBefore/res.AreaAfter)+"×")
	t.AddRow("CPU cores", "4 gold + 4 silver", "2 gold + 2 silver", "reduced 4 cores")
	t.AddRow("C_embodied (gCO2e)", table.F(res.Before.EmbodiedCarbon.Grams()),
		table.F(res.After.EmbodiedCarbon.Grams()), table.F(res.EmbodiedReduction)+"×")
	t.AddRow("C_total (gCO2e)", table.F(res.Before.TotalCarbon().Grams()),
		table.F(res.After.TotalCarbon().Grams()), table.F(res.TCGain)+"×")
	t.AddRow("D (normalized FPS)", "1.0", table.F(res.FPSAfter), table.F(res.FPSAfter)+"×")
	t.AddRow("EDP (normalized)", "1", table.F(1/res.EDPRatio), table.F(res.EDPRatio)+"×")
	t.AddRow("tCDP (normalized)", "1", table.F(1/res.TCDPGain), table.F(res.TCDPGain)+"×")
	return t.Render(w)
}
