package experiments

import (
	"math"
	"strings"
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/soc"
	"cordoba/internal/workload"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("expected 19 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Key == "" || e.Title == "" || e.Render == nil {
			t.Errorf("experiment %+v incomplete", e.Key)
		}
		if seen[e.Key] {
			t.Errorf("duplicate key %s", e.Key)
		}
		seen[e.Key] = true
	}
	if _, err := ByKey("table2"); err != nil {
		t.Errorf("ByKey(table2): %v", err)
	}
	if _, err := ByKey("nope"); err == nil {
		t.Error("unknown key should error")
	}
	if len(Keys()) != len(all) {
		t.Error("Keys length mismatch")
	}
}

// Every experiment must render without error and produce non-trivial output.
func TestAllExperimentsRender(t *testing.T) {
	for _, e := range All() {
		var b strings.Builder
		if err := e.Render(&b); err != nil {
			t.Errorf("%s: %v", e.Key, err)
			continue
		}
		if len(b.String()) < 100 {
			t.Errorf("%s: suspiciously short output (%d bytes)", e.Key, b.Len())
		}
	}
}

func TestTableIWinners(t *testing.T) {
	res := TableI()
	if res.Rows[res.BestEDP].IC.Name != "D" {
		t.Errorf("EDP winner = %s, want D", res.Rows[res.BestEDP].IC.Name)
	}
	if res.Rows[res.BestThroughput].IC.Name != "D" {
		t.Errorf("throughput winner = %s, want D", res.Rows[res.BestThroughput].IC.Name)
	}
}

func TestTableIIWinners(t *testing.T) {
	res := TableII()
	if res.Rows[res.BestTCDP].IC.Name != "E" {
		t.Errorf("tCDP winner = %s, want E", res.Rows[res.BestTCDP].IC.Name)
	}
	if res.Rows[res.BestThroughput].IC.Name != "E" {
		t.Errorf("throughput winner = %s, want E", res.Rows[res.BestThroughput].IC.Name)
	}
	if res.Rows[res.MinTC].IC.Name != "A" {
		t.Errorf("min-tC = %s, want A", res.Rows[res.MinTC].IC.Name)
	}
}

// Fig. 6 headline: correlation between EDP and tCDP strengthens from
// wearables to datacenters, and embodied-dominant domains show large tCDP
// spread among EDP-equivalent designs.
func TestFigure6Claims(t *testing.T) {
	domains, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(domains) != 3 {
		t.Fatalf("expected 3 domains, got %d", len(domains))
	}
	byName := map[string]DomainSpace{}
	for _, d := range domains {
		byName[d.Name] = d
		if len(d.EDP) < 20 {
			t.Errorf("%s: too few designs (%d)", d.Name, len(d.EDP))
		}
	}
	w, m, dc := byName["wearable"], byName["mobile"], byName["datacenter"]
	if !(dc.Correlation > m.Correlation && m.Correlation > w.Correlation) {
		t.Errorf("correlation ordering violated: wearable %.3f, mobile %.3f, datacenter %.3f",
			w.Correlation, m.Correlation, dc.Correlation)
	}
	if dc.Correlation < 0.9 {
		t.Errorf("datacenter correlation %.3f should approach a straight line", dc.Correlation)
	}
	// Paper: "two EDP-equivalent designs exhibit 100× difference in tCDP"
	// in embodied-dominant spaces; we require ≥ 10× for wearables and a
	// much smaller spread for datacenters.
	if w.MaxSpreadAtEqualEDP < 10 {
		t.Errorf("wearable spread %.1f× too small", w.MaxSpreadAtEqualEDP)
	}
	if dc.MaxSpreadAtEqualEDP > w.MaxSpreadAtEqualEDP/3 {
		t.Errorf("datacenter spread %.1f× should be far below wearable %.1f×",
			dc.MaxSpreadAtEqualEDP, w.MaxSpreadAtEqualEDP)
	}
}

// Fig. 7 headline: the EDP optimum ignores operational time; the tCDP
// optimum moves; the minimum-area design is not tCDP-optimal.
func TestFigure7Claims(t *testing.T) {
	res, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Areas) != accel.GridSize {
		t.Fatalf("expected %d designs", accel.GridSize)
	}
	moved := false
	for _, opt := range res.TCDPOptimal {
		if opt != res.TCDPOptimal[0] {
			moved = true
		}
		if opt == res.MinArea {
			t.Error("minimum-area design should not be tCDP-optimal")
		}
	}
	if !moved {
		t.Error("tCDP optimum should move with operational time")
	}
}

// Fig. 8 headline: ≥ 90 % of the 121-design space is eliminated for every
// task, and the surviving sets are those recorded in EXPERIMENTS.md.
func TestFigure8Claims(t *testing.T) {
	results, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("expected 5 tasks")
	}
	for _, r := range results {
		if r.EliminatedFraction < 0.90 {
			t.Errorf("%s: eliminated %.3f, want ≥ 0.90", r.Task, r.EliminatedFraction)
		}
		// Swept optima must all come from the ever-optimal set.
		ever := map[string]bool{}
		for _, id := range r.EverOptimal {
			ever[id] = true
		}
		for _, id := range r.OptimalID {
			if !ever[id] {
				t.Errorf("%s: swept optimum %s outside ever-optimal set", r.Task, id)
			}
		}
	}
}

// Fig. 8(f) headline: specialization wins — at both 10⁶ and 10¹⁰ inferences
// the specialized 5-kernel tasks beat the general All-kernels task by a
// large factor, and the optimum beats the space average by ≥ 2.3×.
func TestFigure8FClaims(t *testing.T) {
	cells, err := Figure8F()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5*len(Figure8FTimes) {
		t.Fatalf("expected %d cells, got %d", 5*len(Figure8FTimes), len(cells))
	}
	for _, n := range []float64{1e6, 1e10} {
		for _, spec := range []string{workload.TaskAI5, workload.TaskXR5} {
			g, err := SpecializationGain(cells, workload.TaskAllKernels, spec, n)
			if err != nil {
				t.Fatal(err)
			}
			if g <= 1.5 {
				t.Errorf("specializing %s at N=%g gains only %.2f×", spec, n, g)
			}
		}
	}
	minRatio := math.Inf(1)
	for _, c := range cells {
		if r := c.Mean / c.Optimal; r < minRatio {
			minRatio = r
		}
	}
	if minRatio < 2.3 {
		t.Errorf("min average/optimal ratio %.2f, want ≥ 2.3 (paper's worst case)", minRatio)
	}
	if _, err := SpecializationGain(cells, "missing", workload.TaskAI5, 1e6); err == nil {
		t.Error("missing task should error")
	}
}

// Fig. 9 headline: curves are normalized to 1.0 at their own optimum, and a
// robust choice exists that never falls far from optimal.
func TestFigure9Claims(t *testing.T) {
	results, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Curves) < 2 {
			t.Errorf("%s: expected several curves", r.Task)
		}
		for _, c := range r.Curves {
			for _, v := range c.Normalized {
				if v <= 0 || v > 1+1e-9 {
					t.Errorf("%s/%s: normalized value %v out of (0, 1]", r.Task, c.Config, v)
				}
			}
		}
		if r.RobustID == "" || r.WorstOfBest <= 0.2 {
			t.Errorf("%s: robust choice %q worst=%v", r.Task, r.RobustID, r.WorstOfBest)
		}
	}
}

// Fig. 10 / Table V headline claims.
func TestFigure10AndTableVClaims(t *testing.T) {
	f10, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	if f10.Optimal[soc.TaskM1] != 4 {
		t.Errorf("M-1 optimal cores = %d, want 4", f10.Optimal[soc.TaskM1])
	}
	if f10.Optimal[soc.TaskAll] != 5 {
		t.Errorf("All-tasks optimal cores = %d, want 5", f10.Optimal[soc.TaskAll])
	}
	tv, err := TableV()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tv.TCDPGain-1.25) > 0.02 {
		t.Errorf("Table V tCDP gain = %.3f, want ≈ 1.25", tv.TCDPGain)
	}
	if math.Abs(tv.EmbodiedReduction-2.0) > 1e-9 {
		t.Errorf("embodied reduction = %v, want 2×", tv.EmbodiedReduction)
	}
	if tv.EDPRatio >= 1 {
		t.Error("EDP should degrade slightly after core removal")
	}
	if math.Abs(tv.AreaBefore-2.25) > 1e-9 || math.Abs(tv.AreaAfter-1.35) > 1e-9 {
		t.Errorf("areas = %v → %v, want 2.25 → 1.35", tv.AreaBefore, tv.AreaAfter)
	}
}

// Fig. 11 headline: 3D stacking improves tCDP in both carbon regimes, and
// the benefit is far larger when operational carbon dominates (paper: 1.08×
// vs 6.9×; measured values recorded in EXPERIMENTS.md).
func TestFigure11Claims(t *testing.T) {
	res, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cases) != 2 || len(res.Configs) != 7 {
		t.Fatalf("unexpected shape: %d cases, %d configs", len(res.Cases), len(res.Configs))
	}
	emb, op := res.Cases[0], res.Cases[1]
	if math.Abs(emb.EmbodiedShare-0.80) > 0.02 {
		t.Errorf("embodied-dominant share = %.3f, want ≈ 0.80", emb.EmbodiedShare)
	}
	if math.Abs(op.EmbodiedShare-0.08) > 0.02 {
		t.Errorf("operational-dominant share = %.3f, want ≈ 0.08", op.EmbodiedShare)
	}
	if emb.BestGain <= 1 {
		t.Errorf("3D should beat the baseline in the embodied-dominant case, gain %.2f", emb.BestGain)
	}
	if op.BestGain <= 1 {
		t.Errorf("3D should beat the baseline in the operational-dominant case, gain %.2f", op.BestGain)
	}
	if op.BestGain < 2*emb.BestGain {
		t.Errorf("operational-dominant gain (%.2f×) should far exceed embodied-dominant gain (%.2f×)",
			op.BestGain, emb.BestGain)
	}
	if !strings.HasPrefix(emb.OptimalID, "3D_") || !strings.HasPrefix(op.OptimalID, "3D_") {
		t.Errorf("optimal configs should be 3D: %s, %s", emb.OptimalID, op.OptimalID)
	}
	// The two regimes pick different optima (the paper's point about
	// lifetime acting like a CI_use change).
	if emb.OptimalID == op.OptimalID {
		t.Errorf("both regimes picked %s; expected distinct optima", emb.OptimalID)
	}
}

// Fig. 12 headline: survivors are a strict minority and never include the
// 2D baseline; both winners of Fig. 11 are survivors.
func TestFigure12Claims(t *testing.T) {
	res, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Survivors)+len(res.Eliminated) != 7 {
		t.Fatalf("partition broken: %v + %v", res.Survivors, res.Eliminated)
	}
	if len(res.Survivors) >= len(res.Eliminated) {
		t.Errorf("survivors should be a minority: %v", res.Survivors)
	}
	for _, n := range res.Survivors {
		if n == accel.Baseline1K1M {
			t.Error("baseline must be eliminated")
		}
	}
	f11, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	surv := map[string]bool{}
	for _, n := range res.Survivors {
		surv[n] = true
	}
	for _, c := range f11.Cases {
		if !surv[c.OptimalID] {
			t.Errorf("Fig. 11 winner %s must be a Fig. 12 survivor", c.OptimalID)
		}
	}
}

// Table VI headline directions.
func TestTableVIClaims(t *testing.T) {
	rows, err := TableVI()
	if err != nil {
		t.Fatal(err)
	}
	byKnob := map[string]KnobRow{}
	for _, r := range rows {
		byKnob[r.Knob] = r
	}
	if len(byKnob) != 5 {
		t.Fatalf("expected 5 knobs, got %v", byKnob)
	}
	check := func(knob string, e, d, c string) {
		t.Helper()
		r, ok := byKnob[knob]
		if !ok {
			t.Fatalf("missing knob %q", knob)
		}
		dir := func(v float64) string {
			if v < 0.999 {
				return "down"
			}
			if v > 1.001 {
				return "up"
			}
			return "flat"
		}
		if got := dir(r.EnergyRatio); got != e {
			t.Errorf("%s: E %s, want %s", knob, got, e)
		}
		if got := dir(r.DelayRatio); got != d {
			t.Errorf("%s: D %s, want %s", knob, got, d)
		}
		if got := dir(r.EmbodiedRatio); got != c {
			t.Errorf("%s: C_emb %s, want %s", knob, got, c)
		}
	}
	check("V_DD ↓", "down", "up", "flat")
	check("V_T ↑", "down", "up", "flat")
	check("FET width ↓", "down", "flat", "down")
	check("Lifetime ↓", "down", "down", "up")
	check("Tech. node ↓", "down", "down", "up")
}

func TestAblations(t *testing.T) {
	abl, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 4 {
		t.Fatalf("expected 4 ablations, got %d", len(abl))
	}
	for _, a := range abl {
		if len(a.Points) < 3 {
			t.Errorf("%s: too few points", a.Name)
		}
		for _, p := range a.Points {
			if p.EliminatedFraction < 0.5 {
				t.Errorf("%s/%s: elimination collapsed to %.2f", a.Name, p.Setting, p.EliminatedFraction)
			}
			if len(p.EverOptimal) == 0 {
				t.Errorf("%s/%s: empty ever-optimal set", a.Name, p.Setting)
			}
		}
	}
	// The default calibration point (penalty=3) must keep the small→large
	// ordering; penalty=1 (no re-read amplification) is allowed to differ —
	// that difference is exactly what the ablation documents.
	for _, a := range abl {
		if a.Name != "tiling penalty (spill re-read factor)" {
			continue
		}
		for _, p := range a.Points {
			if p.Setting == "penalty=3" && !p.OrderingHolds {
				t.Error("default tiling penalty should preserve the ordering")
			}
		}
	}
}

func TestLifetimeStudy(t *testing.T) {
	study, err := Lifetime()
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Results) != 10 {
		t.Fatalf("expected 10 cadences, got %d", len(study.Results))
	}
	if study.Optimal.Outcome.TCDP() <= 0 {
		t.Fatal("degenerate optimum")
	}
	for _, r := range study.Results {
		if r.Outcome.TCDP() < study.Optimal.Outcome.TCDP() {
			t.Errorf("cadence %v beats the reported optimum", r.Period)
		}
	}
}

func TestDVFSClaims(t *testing.T) {
	res := DVFS()
	if len(res.SquareLaw) != len(res.Modern) || len(res.Modern) < 5 {
		t.Fatalf("sweep shape wrong: %d vs %d", len(res.SquareLaw), len(res.Modern))
	}
	// Square-law ED2 is V_DD-independent to numerical precision.
	if res.SquareLawED2Spread > 1.0001 {
		t.Errorf("square-law ED2 spread = %v, want ~1", res.SquareLawED2Spread)
	}
	// Modern devices are far from V_DD-independent.
	if res.ModernED2Spread < 1.2 {
		t.Errorf("modern ED2 spread = %v, want clearly > 1", res.ModernED2Spread)
	}
	// Energy rises and delay falls with V_DD on both devices.
	for _, pts := range [][]DVFSPoint{res.SquareLaw, res.Modern} {
		for i := 1; i < len(pts); i++ {
			if pts[i].Energy <= pts[i-1].Energy {
				t.Error("energy should rise with V_DD")
			}
			if pts[i].Delay >= pts[i-1].Delay {
				t.Error("delay should fall with V_DD")
			}
		}
	}
}

// TestPartitionClaims pins the headline of the partition-pathfinding study:
// on every task, the chiplet front dominates the monolithic front somewhere
// on the operational-time sweep, monolithic still wins somewhere else (the
// axis is a real trade-off, not a one-sided upgrade), and the ever-optimal
// envelope mixes both kinds of design.
func TestPartitionClaims(t *testing.T) {
	res, err := PartitionStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 2 {
		t.Fatalf("expected 2 tasks, got %d", len(res.Tasks))
	}
	for _, tr := range res.Tasks {
		if tr.BestGain <= 1 {
			t.Errorf("%s: no partitioned design ever beats monolithic (best gain %v)", tr.Task, tr.BestGain)
		}
		var partWins, monoWins bool
		for _, r := range tr.Rows {
			if r.Winner == accel.IntegrationMonolithic {
				monoWins = true
			} else {
				partWins = true
			}
			if r.Gain < 1 {
				t.Errorf("%s at N=%g: gain %v < 1 — the winner must never lose to monolithic", tr.Task, r.Inferences, r.Gain)
			}
		}
		if !partWins || !monoWins {
			t.Errorf("%s: sweep is one-sided (partition wins: %v, monolithic wins: %v)", tr.Task, partWins, monoWins)
		}
		var partEnv, monoEnv bool
		for _, label := range tr.EverOptimal {
			if strings.Contains(label, "die") {
				partEnv = true
			} else {
				monoEnv = true
			}
		}
		if !partEnv || !monoEnv {
			t.Errorf("%s: envelope %v should mix monolithic and partitioned designs", tr.Task, tr.EverOptimal)
		}
	}
}
