package experiments

import (
	"fmt"
	"io"

	"cordoba/internal/grid"
	"cordoba/internal/sched"
	"cordoba/internal/table"
	"cordoba/internal/units"
)

// ScheduleStudy quantifies temporal shifting: the operational carbon a
// deferrable job saves by launching in the cleanest window each reference
// grid offers, instead of running immediately — the CI_use(t) counterpart of
// the spatial provisioning optimizations of §VI.
type ScheduleStudy struct {
	// Job parameters shared by every row.
	Duration units.Time
	Power    units.Power
	Deadline units.Time
	Rows     []ScheduleRow
}

// ScheduleRow is the launch-window outcome on one named trace.
type ScheduleRow struct {
	Trace string
	Plan  sched.WindowPlan
}

// scheduleJob is the canonical deferrable job: a 2-hour, 200 W batch task
// that must finish within 24 hours.
func scheduleJob() sched.WindowRequest {
	return sched.WindowRequest{
		Duration: units.Hours(2),
		Power:    200,
		Deadline: units.Hours(24),
		Step:     units.Hours(0.25),
	}
}

// Schedule runs the launch-window search on every named reference trace.
func Schedule() (ScheduleStudy, error) {
	req := scheduleJob()
	study := ScheduleStudy{Duration: req.Duration, Power: req.Power, Deadline: req.Deadline}
	for _, tr := range grid.NamedTraces() {
		cum, err := grid.NewCumulative(tr, req.Deadline)
		if err != nil {
			return ScheduleStudy{}, err
		}
		plan, err := sched.FindWindow(cum, req)
		if err != nil {
			return ScheduleStudy{}, err
		}
		study.Rows = append(study.Rows, ScheduleRow{Trace: tr.Name(), Plan: plan})
	}
	return study, nil
}

// RenderSchedule writes the scheduling study.
func RenderSchedule(w io.Writer) error {
	study, err := Schedule()
	if err != nil {
		return err
	}
	t := table.New(fmt.Sprintf(
		"Carbon-aware launch windows — %s job at %s, deadline %s",
		study.Duration, study.Power, study.Deadline),
		"trace", "best start", "best CO2e", "immediate CO2e", "worst CO2e", "savings")
	for _, r := range study.Rows {
		t.AddRow(r.Trace,
			fmt.Sprintf("%.2f h", r.Plan.Best.Start.InHours()),
			r.Plan.Best.Carbon.String(),
			r.Plan.Immediate.Carbon.String(),
			r.Plan.Worst.Carbon.String(),
			fmt.Sprintf("%.1f%%", 100*r.Plan.Savings))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	best := study.Rows[0]
	for _, r := range study.Rows[1:] {
		if r.Plan.Savings > best.Plan.Savings {
			best = r
		}
	}
	_, err = fmt.Fprintf(w, "largest temporal-shifting benefit: %s (%.1f%% below run-now)\n",
		best.Trace, 100*best.Plan.Savings)
	return err
}
