package experiments

import (
	"fmt"
	"io"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/table"
)

// ChipletRow is one (yield model, integration) cell of the chiplet study.
type ChipletRow struct {
	Yield        string  // yield model name
	Design       string  // monolithic, 2-chiplet, 4-chiplet
	Chiplets     int     // dies after disaggregation
	SiliconG     float64 // die fabrication carbon (gCO2e)
	PackagingG   float64 // package + carrier carbon (gCO2e)
	BondingG     float64 // assembly-yield scrap (gCO2e)
	TotalG       float64 // total embodied (gCO2e)
	VsMonolithic float64 // total / monolithic total under the same yield model
}

// ChipletResult is the chiplet experiment: the largest Fig. 8 accelerator
// priced monolithically (ACT backend) and as 2-/4-chiplet disaggregations
// (ECO-CHIP-style backend) under every yield model. Big dies yield poorly, so
// splitting buys silicon back at the price of a carrier and assembly scrap —
// the crossover the carbon.Model interface makes explorable.
type ChipletResult struct {
	ConfigID   string
	MACArrays  int
	SRAMMB     float64
	DieAreaCM2 float64 // monolithic logic-die area
	Process    string
	Fab        string
	Rows       []ChipletRow
}

// Chiplet runs the study at the paper's anchor (7 nm, coal-heavy fab) on the
// largest grid configuration — the die where yield losses bite hardest.
func Chiplet() (ChipletResult, error) {
	grid := accel.Grid()
	cfg := grid[len(grid)-1]
	proc := carbon.Process7nm()
	fab := carbon.FabCoal
	res := ChipletResult{
		ConfigID:   cfg.ID,
		MACArrays:  cfg.MACArrays,
		SRAMMB:     cfg.SRAM.InMB(),
		DieAreaCM2: cfg.LogicArea().CM2(),
		Process:    proc.Node,
		Fab:        fab.Name,
	}
	designs := []struct {
		name     string
		chiplets int
		model    carbon.Model
	}{
		{"monolithic", 1, carbon.ACTModel{}},
		{"2-chiplet", 2, carbon.ChipletModel{Split: 2}},
		{"4-chiplet", 4, carbon.ChipletModel{Split: 4}},
	}
	for _, ym := range carbon.YieldModels() {
		var mono float64
		for _, d := range designs {
			bd, err := cfg.EmbodiedBreakdown(d.model, ym, proc, fab)
			if err != nil {
				return ChipletResult{}, err
			}
			if d.chiplets == 1 {
				mono = bd.Total.Grams()
			}
			res.Rows = append(res.Rows, ChipletRow{
				Yield:        ym.Name(),
				Design:       d.name,
				Chiplets:     d.chiplets,
				SiliconG:     bd.Silicon.Grams(),
				PackagingG:   bd.Packaging.Grams(),
				BondingG:     bd.Bonding.Grams(),
				TotalG:       bd.Total.Grams(),
				VsMonolithic: bd.Total.Grams() / mono,
			})
		}
	}
	return res, nil
}

// RenderChiplet writes the chiplet study.
func RenderChiplet(w io.Writer) error {
	res, err := Chiplet()
	if err != nil {
		return err
	}
	t := table.New(fmt.Sprintf(
		"Chiplet study — %s (%d MAC arrays, %.0f MB SRAM), %.3g cm² logic die, %s in a %s fab",
		res.ConfigID, res.MACArrays, res.SRAMMB, res.DieAreaCM2, res.Process, res.Fab),
		"yield model", "design", "silicon (g)", "packaging (g)", "bonding (g)", "total (g)", "vs monolithic")
	for _, r := range res.Rows {
		t.AddRow(r.Yield, r.Design,
			table.F(r.SiliconG), table.F(r.PackagingG), table.F(r.BondingG),
			table.F(r.TotalG), table.F(r.VsMonolithic)+"×")
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w,
		"vs monolithic < 1: disaggregation saves embodied carbon — smaller dies yield better than one large die.")
	return err
}
