package experiments

import (
	"fmt"
	"io"
	"sync"

	"cordoba/internal/accel"
	"cordoba/internal/dse"
	"cordoba/internal/nn"
	"cordoba/internal/table"
	"cordoba/internal/uncertainty"
	"cordoba/internal/workload"
)

// taskSpaces lazily evaluates the 121-configuration grid on the five paper
// tasks — the shared substrate of Figs. 7–9.
var (
	spacesOnce sync.Once
	spacesVal  map[string]*dse.Space
	spacesErr  error
)

func taskSpaces() (map[string]*dse.Space, error) {
	spacesOnce.Do(func() {
		grid := accel.Grid()
		spacesVal = map[string]*dse.Space{}
		for _, task := range workload.PaperTasks() {
			s, err := dse.EvaluateDefault(task, grid)
			if err != nil {
				spacesErr = err
				return
			}
			spacesVal[task.Name] = s
		}
	})
	return spacesVal, spacesErr
}

// ---- Figure 8(a–e) ----

// TaskDSE summarizes the Fig. 8 exploration of one task.
type TaskDSE struct {
	Task               string
	EverOptimal        []string // config IDs, long-operational-time end first
	EliminatedFraction float64
	// OptimalByTime maps swept inference counts to the optimal config ID.
	Inferences []float64
	OptimalID  []string
}

// Fig8Sweep is the default operational-time sweep (10³–10¹² inferences).
func Fig8Sweep() []float64 { return dse.LogSpace(1e3, 1e12, 19) }

// Figure8 runs the Fig. 8(a–e) exploration for all five tasks.
func Figure8() ([]TaskDSE, error) {
	spaces, err := taskSpaces()
	if err != nil {
		return nil, err
	}
	var out []TaskDSE
	for _, task := range workload.PaperTasks() {
		s := spaces[task.Name]
		td := TaskDSE{
			Task:               task.Name,
			EverOptimal:        s.IDs(s.EverOptimal()),
			EliminatedFraction: s.EliminatedFraction(),
			Inferences:         Fig8Sweep(),
		}
		for _, i := range s.SweepOptimal(td.Inferences) {
			td.OptimalID = append(td.OptimalID, s.Points[i].Config.ID)
		}
		out = append(out, td)
	}
	return out, nil
}

// RenderFigure8 writes the Fig. 8(a–e) summary: per-task efficiency curves
// of the ever-optimal designs plus the elimination statistics.
func RenderFigure8(w io.Writer) error {
	results, err := Figure8()
	if err != nil {
		return err
	}
	spaces, err := taskSpaces()
	if err != nil {
		return err
	}
	summary := table.New("Fig. 8(a-e) — ever-optimal designs across operational time (121-config space)",
		"task", "ever-optimal configs", "eliminated")
	for _, r := range results {
		summary.AddRow(r.Task, fmt.Sprint(r.EverOptimal),
			fmt.Sprintf("%.1f%%", 100*r.EliminatedFraction))
	}
	if err := summary.Render(w); err != nil {
		return err
	}
	for _, r := range results {
		s := spaces[r.Task]
		var series []table.Series
		for _, id := range r.EverOptimal {
			p, err := s.ByID(id)
			if err != nil {
				return err
			}
			var ys []float64
			for _, n := range r.Inferences {
				ys = append(ys, 1/p.TCDP(s.CIUse, n))
			}
			series = append(series, table.Series{Name: id, X: r.Inferences, Y: ys})
		}
		c := &table.Chart{
			Title:  fmt.Sprintf("Fig. 8 — %s: carbon efficiency (tCDP⁻¹) vs operational time", r.Task),
			XLabel: "inferences", YLabel: "tCDP⁻¹", LogX: true, LogY: true,
			Series: series, Height: 12,
		}
		if err := c.Render(w); err != nil {
			return err
		}
	}
	return nil
}

// ---- Figure 8(f) ----

// SpecializationCell is one bar of Fig. 8(f).
type SpecializationCell struct {
	Task       string
	Inferences float64
	Optimal    float64 // tCDP of the optimal design
	Mean       float64 // average tCDP across the space (red diamonds)
	OptimalID  string
}

// Figure8FTimes is the set of operational times shown in Fig. 8(f).
var Figure8FTimes = []float64{1e4, 1e6, 1e8, 1e10}

// Figure8F computes optimal and average tCDP per task and operational time.
func Figure8F() ([]SpecializationCell, error) {
	spaces, err := taskSpaces()
	if err != nil {
		return nil, err
	}
	var out []SpecializationCell
	for _, task := range workload.PaperTasks() {
		s := spaces[task.Name]
		for _, n := range Figure8FTimes {
			opt := s.OptimalAt(n)
			out = append(out, SpecializationCell{
				Task:       task.Name,
				Inferences: n,
				Optimal:    s.Points[opt].TCDP(s.CIUse, n),
				Mean:       s.MeanTCDPAt(n),
				OptimalID:  s.Points[opt].Config.ID,
			})
		}
	}
	return out, nil
}

// SpecializationGain returns how much more carbon-efficient the specialized
// task's optimum is than the general task's optimum at the same operational
// time: tCDP_general / tCDP_specialized.
func SpecializationGain(cells []SpecializationCell, general, specialized string, n float64) (float64, error) {
	var g, s float64
	for _, c := range cells {
		if c.Inferences != n {
			continue
		}
		switch c.Task {
		case general:
			g = c.Optimal
		case specialized:
			s = c.Optimal
		}
	}
	if g == 0 || s == 0 {
		return 0, fmt.Errorf("experiments: missing cells for %q/%q at N=%g", general, specialized, n)
	}
	return g / s, nil
}

// RenderFigure8F writes Fig. 8(f).
func RenderFigure8F(w io.Writer) error {
	cells, err := Figure8F()
	if err != nil {
		return err
	}
	t := table.New("Fig. 8(f) — optimal vs average tCDP (gCO2e·s) per task and operational time",
		"task", "inferences", "optimal config", "optimal tCDP", "average tCDP", "avg/opt")
	for _, c := range cells {
		t.AddRow(c.Task, fmt.Sprintf("%.0e", c.Inferences), c.OptimalID,
			table.F(c.Optimal), table.F(c.Mean), table.F(c.Mean/c.Optimal)+"×")
	}
	if err := t.Render(w); err != nil {
		return err
	}
	for _, n := range []float64{1e6, 1e10} {
		gAI, err := SpecializationGain(cells, workload.TaskAllKernels, workload.TaskAI5, n)
		if err != nil {
			return err
		}
		gXR, err := SpecializationGain(cells, workload.TaskAllKernels, workload.TaskXR5, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "at N=%.0e: specializing for AI-5 is %s× and for XR-5 is %s× more carbon-efficient than the general task\n",
			n, table.F(gAI), table.F(gXR))
	}
	return nil
}

// ---- Figure 9 ----

// RobustnessCurve is one line of Fig. 9: a design's tCDP normalized to the
// per-operational-time optimum.
type RobustnessCurve struct {
	Config     string
	Inferences []float64
	Normalized []float64 // 1.0 = optimal at that operational time
}

// Figure9Result carries the Fig. 9 analysis of one task.
type Figure9Result struct {
	Task        string
	Curves      []RobustnessCurve
	RobustID    string  // design with the best average normalized tCDP
	WorstOfBest float64 // the robust design's worst normalized value
}

// Figure9 computes the robustness curves of every ever-optimal design for
// each task, plus the §VI-C robust (best-average) choice.
func Figure9() ([]Figure9Result, error) {
	spaces, err := taskSpaces()
	if err != nil {
		return nil, err
	}
	sweep := Fig8Sweep()
	var out []Figure9Result
	for _, task := range workload.PaperTasks() {
		s := spaces[task.Name]
		res := Figure9Result{Task: task.Name}
		normByTime := make([][]float64, len(sweep))
		for i, n := range sweep {
			normByTime[i] = s.NormalizedAt(n)
		}
		for _, idx := range s.EverOptimal() {
			c := RobustnessCurve{Config: s.Points[idx].Config.ID, Inferences: sweep}
			for i := range sweep {
				c.Normalized = append(c.Normalized, normByTime[i][idx])
			}
			res.Curves = append(res.Curves, c)
		}
		robust := s.BestAverage(sweep)
		res.RobustID = s.Points[robust].Config.ID
		res.WorstOfBest = 1.0
		for i := range sweep {
			if v := normByTime[i][robust]; v < res.WorstOfBest {
				res.WorstOfBest = v
			}
		}
		out = append(out, res)
	}
	return out, nil
}

// RenderFigure9 writes Fig. 9.
func RenderFigure9(w io.Writer) error {
	results, err := Figure9()
	if err != nil {
		return err
	}
	for _, r := range results {
		var series []table.Series
		for _, c := range r.Curves {
			series = append(series, table.Series{Name: c.Config, X: c.Inferences, Y: c.Normalized})
		}
		ch := &table.Chart{
			Title:  fmt.Sprintf("Fig. 9 — %s: tCDP normalized to the per-time optimum", r.Task),
			XLabel: "inferences", YLabel: "normalized (1.0 = optimal)", LogX: true,
			Series: series, Height: 10,
		}
		if err := ch.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "robust choice: %s (never below %s of optimal)\n\n", r.RobustID, table.F(r.WorstOfBest))
	}
	return nil
}

// ---- Figure 11 ----

// StackedCase is one half of Fig. 11(b).
type StackedCase struct {
	Name          string
	Inferences    float64
	EmbodiedShare float64 // average embodied fraction across the 7 configs
	// TCDP and Gain (vs the 2D baseline) per configuration, in
	// accel.Stacked3D order.
	TCDP      []float64
	Gain      []float64
	OptimalID string
	BestGain  float64
}

// Figure11Result carries the §VI-E study.
type Figure11Result struct {
	Configs []string
	Cases   []StackedCase // embodied-dominant, operational-dominant
}

// SR512Task is the single-kernel task of the §VI-E study.
func SR512Task() workload.Task {
	return workload.Task{Name: "SR 512x512", Calls: map[nn.KernelID]float64{nn.SR512: 1}}
}

// stackedSpace evaluates the seven §VI-E configurations on SR 512².
func stackedSpace() (*dse.Space, error) {
	return dse.EvaluateDefault(SR512Task(), accel.Stacked3D())
}

// embodiedShareAt returns the average embodied fraction of total carbon
// across the space after n inferences.
func embodiedShareAt(s *dse.Space, n float64) float64 {
	var sum float64
	for _, p := range s.Points {
		r := p.Report(s.CIUse, n)
		sum += p.Embodied.Grams() / r.TotalCarbon().Grams()
	}
	return sum / float64(len(s.Points))
}

// solveShare finds the inference count at which the average embodied share
// equals the target, by bisection (share is monotone decreasing in n).
func solveShare(s *dse.Space, target float64) float64 {
	lo, hi := 1.0, 1e16
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if embodiedShareAt(s, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Figure11 runs the 3D-stacking study: the paper's embodied-dominant case
// (80 % embodied on average) and operational-dominant case (8 % embodied).
func Figure11() (Figure11Result, error) {
	s, err := stackedSpace()
	if err != nil {
		return Figure11Result{}, err
	}
	var res Figure11Result
	for _, p := range s.Points {
		res.Configs = append(res.Configs, p.Config.ID)
	}
	base, err := s.ByID(accel.Baseline1K1M)
	if err != nil {
		return Figure11Result{}, err
	}
	for _, c := range []struct {
		name  string
		share float64
	}{
		{"embodied-dominant (80% embodied)", 0.80},
		{"operational-dominant (8% embodied)", 0.08},
	} {
		n := solveShare(s, c.share)
		sc := StackedCase{Name: c.name, Inferences: n, EmbodiedShare: embodiedShareAt(s, n)}
		baseTCDP := base.TCDP(s.CIUse, n)
		bestGain := 0.0
		for _, p := range s.Points {
			v := p.TCDP(s.CIUse, n)
			g := baseTCDP / v
			sc.TCDP = append(sc.TCDP, v)
			sc.Gain = append(sc.Gain, g)
			if g > bestGain {
				bestGain = g
				sc.OptimalID = p.Config.ID
			}
		}
		sc.BestGain = bestGain
		res.Cases = append(res.Cases, sc)
	}
	return res, nil
}

// RenderFigure11 writes Fig. 11(b).
func RenderFigure11(w io.Writer) error {
	res, err := Figure11()
	if err != nil {
		return err
	}
	for _, c := range res.Cases {
		bc := &table.BarChart{
			Title: fmt.Sprintf("Fig. 11(b) — %s (N = %.3g inferences): tCDP gain vs %s",
				c.Name, c.Inferences, accel.Baseline1K1M),
			Unit: "×",
		}
		for i, id := range res.Configs {
			note := ""
			if id == c.OptimalID {
				note = "optimal"
			}
			bc.Bars = append(bc.Bars, table.Bar{Label: id, Value: c.Gain[i], Note: note})
		}
		if err := bc.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---- Figure 12 ----

// Figure12Result carries the Lagrange-plane analysis of the seven §VI-E
// configurations.
type Figure12Result struct {
	Configs    []string
	EDP        []float64 // E·D per config
	EmbD       []float64 // C_emb·D per config
	Survivors  []string  // configs that can be tCDP-optimal for some CI_use(t)
	Eliminated []string
}

// Figure12 computes the E·D vs C_emb·D plane and the unknown-CI survivor set.
func Figure12() (Figure12Result, error) {
	s, err := stackedSpace()
	if err != nil {
		return Figure12Result{}, err
	}
	designs := uncertainty.FromDSE(s)
	var res Figure12Result
	for _, d := range designs {
		res.Configs = append(res.Configs, d.Name)
		res.EDP = append(res.EDP, d.EDP())
		res.EmbD = append(res.EmbD, d.EmbodiedDelay())
	}
	surv := map[int]bool{}
	for _, i := range uncertainty.Survivors(designs) {
		surv[i] = true
		res.Survivors = append(res.Survivors, designs[i].Name)
	}
	for i, d := range designs {
		if !surv[i] {
			res.Eliminated = append(res.Eliminated, d.Name)
		}
	}
	return res, nil
}

// RenderFigure12 writes Fig. 12.
func RenderFigure12(w io.Writer) error {
	res, err := Figure12()
	if err != nil {
		return err
	}
	c := &table.Chart{
		Title:  "Fig. 12 — E·D versus C_emb·D for the seven §VI-E configurations",
		XLabel: "E·D (J·s)", YLabel: "C_emb·D (gCO2e·s)",
		Series: []table.Series{{Name: "configs", X: res.EDP, Y: res.EmbD}},
		Height: 14,
	}
	if err := c.Render(w); err != nil {
		return err
	}
	t := table.New("", "config", "E·D (J·s)", "C_emb·D (gCO2e·s)", "verdict")
	surv := map[string]bool{}
	for _, n := range res.Survivors {
		surv[n] = true
	}
	for i, name := range res.Configs {
		verdict := "eliminated for every CI_use(t)"
		if surv[name] {
			verdict = "tCDP-optimal for some CI_use(t)"
		}
		t.AddRow(name, table.F(res.EDP[i]), table.F(res.EmbD[i]), verdict)
	}
	return t.Render(w)
}
