package experiments

import (
	"fmt"
	"io"
	"math"

	"cordoba/internal/device"
	"cordoba/internal/table"
)

// DVFSPoint is one supply-voltage operating point of a design.
type DVFSPoint struct {
	VDDScale float64
	Delay    float64 // task delay, seconds
	Energy   float64 // task energy, joules
	EDP      float64
	ED2P     float64
}

// DVFSResult carries the §III-A analysis: energy/delay operating curves for
// an idealized square-law device (α=2, V_T=0, no leakage weighting) and a
// modern short-channel device (α≈1.3, realistic V_T).
type DVFSResult struct {
	SquareLaw []DVFSPoint
	Modern    []DVFSPoint
	// ED2Spread is max/min of ED² across the V_DD range for each device;
	// ≈1 means V_DD-independent (the historical ED² property).
	SquareLawED2Spread float64
	ModernED2Spread    float64
}

// dvfsScales is the swept V_DD range (fractions of nominal).
var dvfsScales = []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2}

// DVFS runs the §III-A study with the device model: it demonstrates that
// ED² is V_DD-independent only under the antiquated square-law assumptions,
// which is the paper's argument for why tCD²P is not a useful
// V_DD-independent target today (§III-C).
func DVFS() DVFSResult {
	const cycles = 1e9

	sweep := func(d device.Design, includeLeakage bool) []DVFSPoint {
		var pts []DVFSPoint
		for _, s := range dvfsScales {
			x := device.DVFSPoint(d, s)
			var delay, energy float64
			if includeLeakage {
				dl, en := x.Run(cycles)
				delay, energy = dl.Seconds(), en.Joules()
			} else {
				delay = x.GateDelay().Seconds() * x.LogicDepth * cycles
				energy = x.DynamicEnergyPerCycle().Joules() * cycles
			}
			pts = append(pts, DVFSPoint{
				VDDScale: s,
				Delay:    delay,
				Energy:   energy,
				EDP:      energy * delay,
				ED2P:     energy * delay * delay,
			})
		}
		return pts
	}

	ideal := device.NewDesign(device.Node7nm())
	ideal.Alpha = 2
	ideal.VT = 0

	modern := device.NewDesign(device.Node7nm())

	res := DVFSResult{
		SquareLaw: sweep(ideal, false),
		Modern:    sweep(modern, true),
	}
	res.SquareLawED2Spread = ed2Spread(res.SquareLaw)
	res.ModernED2Spread = ed2Spread(res.Modern)
	return res
}

func ed2Spread(pts []DVFSPoint) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		lo = math.Min(lo, p.ED2P)
		hi = math.Max(hi, p.ED2P)
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// RenderDVFS writes the §III-A DVFS analysis.
func RenderDVFS(w io.Writer) error {
	res := DVFS()
	write := func(title string, pts []DVFSPoint) error {
		t := table.New(title, "V_DD scale", "delay (s)", "energy (J)", "EDP", "ED²P")
		for _, p := range pts {
			t.AddRow(table.F(p.VDDScale), table.F(p.Delay), table.F(p.Energy),
				table.F(p.EDP), table.F(p.ED2P))
		}
		return t.Render(w)
	}
	if err := write("DVFS — ideal square-law MOSFET (α=2, V_T=0, no leakage)", res.SquareLaw); err != nil {
		return err
	}
	if err := write("DVFS — modern short-channel MOSFET (α=1.3, V_T=0.3 V, leakage)", res.Modern); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w,
		"ED² spread across the V_DD range: square-law %.3f× (V_DD-independent), modern %.2f× —\n"+
			"the §III-A/§III-C argument for why ED² (and hence tCD²P) is no longer a useful\n"+
			"V_DD-independent figure of merit.\n",
		res.SquareLawED2Spread, res.ModernED2Spread)
	return err
}
