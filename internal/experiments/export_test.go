package experiments

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func TestResultCoversAllKeys(t *testing.T) {
	for _, e := range All() {
		res, err := Result(e.Key)
		if err != nil {
			t.Errorf("%s: %v", e.Key, err)
			continue
		}
		if res == nil {
			t.Errorf("%s: nil result", e.Key)
		}
	}
	if _, err := Result("nope"); err == nil {
		t.Error("unknown key should error")
	}
}

func TestExportJSONRoundTrips(t *testing.T) {
	for _, key := range []string{"table2", "fig8", "table5", "lifetime"} {
		var b strings.Builder
		if err := ExportJSON(key, &b); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		var decoded any
		if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
			t.Errorf("%s: invalid JSON: %v", key, err)
		}
		if b.Len() < 50 {
			t.Errorf("%s: suspiciously small JSON", key)
		}
	}
	if err := ExportJSON("nope", &strings.Builder{}); err == nil {
		t.Error("unknown key should error")
	}
}

func TestExportCSVWellFormed(t *testing.T) {
	for _, key := range []string{"fig6", "fig7", "fig8", "fig9", "fig11", "fig12"} {
		var b strings.Builder
		if err := ExportCSV(key, &b); err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
		if err != nil {
			t.Fatalf("%s: invalid CSV: %v", key, err)
		}
		if len(records) < 3 {
			t.Errorf("%s: only %d records", key, len(records))
		}
		width := len(records[0])
		for i, r := range records {
			if len(r) != width {
				t.Errorf("%s: row %d has %d fields, header has %d", key, i, len(r), width)
			}
		}
	}
}

func TestExportCSVUnsupported(t *testing.T) {
	if err := ExportCSV("table1", &strings.Builder{}); err == nil {
		t.Error("table1 has no CSV form and should error")
	}
	if err := ExportCSV("nope", &strings.Builder{}); err == nil {
		t.Error("unknown key should error")
	}
}

func TestExportCSVFig12MarksSurvivors(t *testing.T) {
	var b strings.Builder
	if err := ExportCSV("fig12", &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Baseline_1K_1M") || !strings.Contains(out, "false") || !strings.Contains(out, "true") {
		t.Errorf("fig12 CSV missing survivor flags:\n%s", out)
	}
}
