package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment outputs")

// TestGoldenOutputs pins the full rendered output of every experiment.
// Regenerate after an intentional model change with:
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the diff alongside EXPERIMENTS.md.
func TestGoldenOutputs(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Key, func(t *testing.T) {
			var b strings.Builder
			if err := e.Render(&b); err != nil {
				t.Fatalf("render: %v", err)
			}
			got := b.String()
			path := filepath.Join("testdata", "golden", e.Key+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s;\nfirst divergence near byte %d\nrun with -update after reviewing",
					path, firstDiff(got, string(want)))
			}
		})
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
