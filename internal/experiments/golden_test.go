package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment outputs")

// TestGoldenOutputs pins the full rendered output of every experiment.
// Regenerate after an intentional model change with:
//
//	go test ./internal/experiments -run TestGolden -update
//
// and review the diff alongside EXPERIMENTS.md.
func TestGoldenOutputs(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Key, func(t *testing.T) {
			var b strings.Builder
			if err := e.Render(&b); err != nil {
				t.Fatalf("render: %v", err)
			}
			got := b.String()
			path := filepath.Join("testdata", "golden", e.Key+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s;\nfirst divergence near byte %d\nrun with -update after reviewing",
					path, firstDiff(got, string(want)))
			}
		})
	}
}

// compareGolden pins got against the golden file at path, rewriting it under
// -update.
func compareGolden(t *testing.T, path, got string) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s;\nfirst divergence near byte %d\nrun with -update after reviewing",
			path, firstDiff(got, string(want)))
	}
}

// TestGoldenJSON pins the typed JSON export of every registered experiment —
// the same bytes GET /v1/experiments/{key}?format=json streams.
func TestGoldenJSON(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Key, func(t *testing.T) {
			var b strings.Builder
			if err := ExportJSON(e.Key, &b); err != nil {
				t.Fatalf("export json: %v", err)
			}
			compareGolden(t, filepath.Join("testdata", "golden", "json", e.Key+".json"), b.String())
		})
	}
}

// TestGoldenCSV pins the CSV export of every experiment with a tabular form;
// keys without one must keep failing cleanly before the first write.
func TestGoldenCSV(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Key, func(t *testing.T) {
			var b strings.Builder
			err := ExportCSV(e.Key, &b)
			if err != nil {
				if !strings.Contains(err.Error(), "no CSV form") {
					t.Fatalf("export csv: %v", err)
				}
				if b.Len() != 0 {
					t.Fatalf("CSV error after writing %d bytes; errors must precede output", b.Len())
				}
				return
			}
			compareGolden(t, filepath.Join("testdata", "golden", "csv", e.Key+".csv"), b.String())
		})
	}
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
