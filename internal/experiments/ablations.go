package experiments

import (
	"fmt"
	"io"

	"cordoba/internal/accel"
	"cordoba/internal/dse"
	"cordoba/internal/lifecycle"
	"cordoba/internal/table"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// AblationPoint is one setting of an ablated model constant and the DSE
// conclusions it produces on the "All kernels" task.
type AblationPoint struct {
	Setting            string
	EverOptimal        []string
	EliminatedFraction float64
	ShortTimeOptimal   string // optimal at 1e4 inferences
	LongTimeOptimal    string // optimal at 1e11 inferences
	OrderingHolds      bool   // long-time optimum embodies more than short-time
}

// Ablation sweeps one accelerator-model constant and reports how the §VI-B
// conclusions respond — the sensitivity analysis behind the calibration
// notes in DESIGN.md §5.
type Ablation struct {
	Name   string
	Points []AblationPoint
}

// ablate evaluates the All-kernels DSE under a modified parameter set.
func ablate(setting string, mutate func(*accel.Params)) (AblationPoint, error) {
	p := accel.DefaultParams()
	mutate(&p)
	grid := accel.Grid()
	for i := range grid {
		grid[i].Params = p
	}
	task, err := workload.PaperTask(workload.TaskAllKernels)
	if err != nil {
		return AblationPoint{}, err
	}
	s, err := dse.EvaluateDefault(task, grid)
	if err != nil {
		return AblationPoint{}, err
	}
	short := s.Points[s.OptimalAt(1e4)]
	long := s.Points[s.OptimalAt(1e11)]
	return AblationPoint{
		Setting:            setting,
		EverOptimal:        s.IDs(s.EverOptimal()),
		EliminatedFraction: s.EliminatedFraction(),
		ShortTimeOptimal:   short.Config.ID,
		LongTimeOptimal:    long.Config.ID,
		OrderingHolds:      long.Embodied > short.Embodied,
	}, nil
}

// Ablations runs the standard sweeps: the array-saturation model, the
// spill/tiling penalty, the per-array area (embodied pricing of compute),
// and the DRAM access energy.
func Ablations() ([]Ablation, error) {
	var out []Ablation

	sat := Ablation{Name: "saturation cap (arrays)"}
	for _, cap := range []float64{8, 16, 32, 64} {
		cap := cap
		pt, err := ablate(fmt.Sprintf("cap=%g", cap), func(p *accel.Params) { p.SaturationCap = cap })
		if err != nil {
			return nil, err
		}
		sat.Points = append(sat.Points, pt)
	}
	out = append(out, sat)

	tp := Ablation{Name: "tiling penalty (spill re-read factor)"}
	for _, pen := range []float64{1, 2, 3, 5} {
		pen := pen
		pt, err := ablate(fmt.Sprintf("penalty=%g", pen), func(p *accel.Params) { p.TilingPenalty = pen })
		if err != nil {
			return nil, err
		}
		tp.Points = append(tp.Points, pt)
	}
	out = append(out, tp)

	apa := Ablation{Name: "area per MAC array (mm²)"}
	for _, a := range []float64{0.25, 0.5, 1.0, 2.0} {
		a := a
		pt, err := ablate(fmt.Sprintf("area=%gmm²", a), func(p *accel.Params) { p.AreaPerArray = units.MM2(a) })
		if err != nil {
			return nil, err
		}
		apa.Points = append(apa.Points, pt)
	}
	out = append(out, apa)

	de := Ablation{Name: "DRAM energy per byte (pJ)"}
	for _, e := range []float64{10, 30, 60} {
		e := e
		pt, err := ablate(fmt.Sprintf("dram=%gpJ/B", e), func(p *accel.Params) { p.DRAMEnergyPerByte = units.Energy(e * 1e-12) })
		if err != nil {
			return nil, err
		}
		de.Points = append(de.Points, pt)
	}
	out = append(out, de)
	return out, nil
}

// RenderAblations writes the ablation study.
func RenderAblations(w io.Writer) error {
	abl, err := Ablations()
	if err != nil {
		return err
	}
	for _, a := range abl {
		t := table.New(fmt.Sprintf("Ablation — %s (All kernels task)", a.Name),
			"setting", "eliminated", "short-time opt", "long-time opt", "ordering", "ever-optimal")
		for _, p := range a.Points {
			ord := "✓ small→large"
			if !p.OrderingHolds {
				ord = "✗ inverted"
			}
			t.AddRow(p.Setting, fmt.Sprintf("%.1f%%", 100*p.EliminatedFraction),
				p.ShortTimeOptimal, p.LongTimeOptimal, ord, fmt.Sprint(p.EverOptimal))
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// LifetimeStudy is the §VII hardware-refresh experiment: tCDP versus refresh
// cadence for the default datacenter service.
type LifetimeStudy struct {
	Results []lifecycle.PolicyResult
	Optimal lifecycle.PolicyResult
}

// Lifetime runs the refresh-cadence study.
func Lifetime() (LifetimeStudy, error) {
	svc := lifecycle.DefaultService()
	res, err := svc.Sweep(lifecycle.DefaultPeriods())
	if err != nil {
		return LifetimeStudy{}, err
	}
	best, err := svc.Optimal(lifecycle.DefaultPeriods())
	if err != nil {
		return LifetimeStudy{}, err
	}
	return LifetimeStudy{Results: res, Optimal: best}, nil
}

// RenderLifetime writes the refresh-cadence study.
func RenderLifetime(w io.Writer) error {
	study, err := Lifetime()
	if err != nil {
		return err
	}
	t := table.New("Hardware lifetime study (§VII) — refresh cadence vs tCDP over a 10-year service",
		"refresh every", "chips", "energy", "C_embodied", "C_operational", "mean delay", "tCDP (gCO2e·s)")
	for _, r := range study.Results {
		mark := ""
		if r.Period == study.Optimal.Period {
			mark = " ★"
		}
		o := r.Outcome
		t.AddRow(fmt.Sprintf("%.0f y%s", r.Period.InYears(), mark),
			fmt.Sprint(o.Refreshes), o.Energy.String(), o.Embodied.String(),
			o.Operation.String(), o.MeanDelay.String(), table.F(o.TCDP()))
	}
	if err := t.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "tCDP-optimal refresh cadence: every %.0f years\n", study.Optimal.Period.InYears())
	return err
}
