package experiments

import (
	"fmt"
	"io"
	"sync"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/dse"
	"cordoba/internal/table"
	"cordoba/internal/workload"
)

// PartitionTasks are the workloads of the partition-pathfinding study: a
// compute-heavy and a memory-heavy five-kernel mix, so the monolithic vs
// chiplet crossover is shown on both sides of the roofline.
var PartitionTasks = []string{workload.TaskAI5, workload.TaskXR5}

// PartitionGrid is the knob grid of the study: the large end of the Fig. 8
// shape space (where yield losses make disaggregation interesting) crossed
// with the full partition axis — monolithic, 2.5d chiplets on an interposer,
// and 3d stacking — at 2 and 4 dies with the memory chiplet on mature 14 nm
// silicon.
func PartitionGrid() dse.Grid {
	return dse.Grid{
		MACArrays:    []int{16, 64},
		SRAMMB:       []float64{8, 64},
		Integrations: []string{"monolithic", "2.5d", "3d"},
		Chiplets:     []int{2, 4},
		ChipletNodes: []string{"14nm"},
	}
}

// partitionCI is the paper's anchor use-phase carbon intensity (g/kWh).
const partitionCI = 380

// partitionStyle buckets a design by its integration style.
func partitionStyle(c accel.Config) string {
	if !c.Partition.Active() {
		return accel.IntegrationMonolithic
	}
	return c.Partition.Integration
}

// partitionLabel names a design with its partition, e.g. "k9 (4-die 2.5d)".
func partitionLabel(c accel.Config) string {
	if !c.Partition.Active() {
		return c.ID
	}
	return fmt.Sprintf("%s (%d-die %s)", c.ID, c.Partition.Chiplets, c.Partition.Integration)
}

// PartitionBest is the tCDP-optimal design of one integration style at one
// operational time.
type PartitionBest struct {
	Label string
	TCDP  float64
}

// PartitionRow is one operational-time sample of the study.
type PartitionRow struct {
	Inferences float64
	Monolithic PartitionBest
	Chiplet25D PartitionBest
	Stacked3D  PartitionBest
	Winner     string  // integration style of the overall tCDP optimum
	Gain       float64 // monolithic-best tCDP / overall-best tCDP (1.0 = monolithic wins)
}

// PartitionTaskResult is the study on one task.
type PartitionTaskResult struct {
	Task        string
	Points      int
	EverOptimal []string // envelope designs, long-operational-time end first
	Rows        []PartitionRow
	BestGain    float64 // peak chiplet advantage over monolithic
	BestGainAt  float64 // inferences where the peak occurs
}

// PartitionResult carries the full monolithic-vs-chiplet-vs-3D study.
type PartitionResult struct {
	Fab         string
	CIUse       float64
	Chiplets    []int
	ChipletNode string
	Tasks       []PartitionTaskResult
}

var (
	partitionOnce sync.Once
	partitionVal  PartitionResult
	partitionErr  error
)

// PartitionStudy sweeps operational time over the partitioned design space
// and reports, per task and inference count, the best design of each
// integration style — the chiplet front versus the monolithic front that
// makes partitioning a first-class DSE axis rather than a fixed backend
// choice.
func PartitionStudy() (PartitionResult, error) {
	partitionOnce.Do(func() { partitionVal, partitionErr = runPartitionStudy() })
	return partitionVal, partitionErr
}

func runPartitionStudy() (PartitionResult, error) {
	g := PartitionGrid()
	fab := carbon.FabCoal
	res := PartitionResult{
		Fab:         fab.Name,
		CIUse:       partitionCI,
		Chiplets:    g.Chiplets,
		ChipletNode: g.ChipletNodes[0],
	}
	sweep := Fig8Sweep()
	for _, name := range PartitionTasks {
		task, err := workload.PaperTask(name)
		if err != nil {
			return PartitionResult{}, err
		}
		s, err := dse.EvaluateGrid(task, g, fab, partitionCI)
		if err != nil {
			return PartitionResult{}, err
		}
		tr := PartitionTaskResult{Task: name, Points: len(s.Points)}
		for _, idx := range s.EverOptimal() {
			tr.EverOptimal = append(tr.EverOptimal, partitionLabel(s.Points[idx].Config))
		}
		for _, n := range sweep {
			row := PartitionRow{Inferences: n}
			best := map[string]*PartitionBest{
				accel.IntegrationMonolithic: &row.Monolithic,
				accel.Integration25D:        &row.Chiplet25D,
				accel.Integration3D:         &row.Stacked3D,
			}
			for _, p := range s.Points {
				b := best[partitionStyle(p.Config)]
				if v := p.TCDP(s.CIUse, n); b.Label == "" || v < b.TCDP {
					b.Label, b.TCDP = partitionLabel(p.Config), v
				}
			}
			overall := row.Monolithic.TCDP
			row.Winner = accel.IntegrationMonolithic
			for _, style := range []string{accel.Integration25D, accel.Integration3D} {
				if b := best[style]; b.TCDP < overall {
					overall, row.Winner = b.TCDP, style
				}
			}
			row.Gain = row.Monolithic.TCDP / overall
			if row.Gain > tr.BestGain {
				tr.BestGain, tr.BestGainAt = row.Gain, n
			}
			tr.Rows = append(tr.Rows, row)
		}
		res.Tasks = append(res.Tasks, tr)
	}
	return res, nil
}

// RenderPartition writes the partition-pathfinding study.
func RenderPartition(w io.Writer) error {
	res, err := PartitionStudy()
	if err != nil {
		return err
	}
	for _, tr := range res.Tasks {
		t := table.New(fmt.Sprintf(
			"Partition pathfinding — %s: best tCDP (gCO2e·s) per integration style, %s fab, CI_use = %.0f g/kWh",
			tr.Task, res.Fab, res.CIUse),
			"inferences", "monolithic", "tCDP", "2.5d chiplets", "tCDP", "3d stack", "tCDP", "winner", "vs mono")
		for _, r := range tr.Rows {
			t.AddRow(fmt.Sprintf("%.0e", r.Inferences),
				r.Monolithic.Label, table.F(r.Monolithic.TCDP),
				r.Chiplet25D.Label, table.F(r.Chiplet25D.TCDP),
				r.Stacked3D.Label, table.F(r.Stacked3D.TCDP),
				r.Winner, table.F(r.Gain)+"×")
		}
		if err := t.Render(w); err != nil {
			return err
		}
		fmt.Fprintf(w, "ever-optimal set (%d of %d designs): %v\n", len(tr.EverOptimal), tr.Points, tr.EverOptimal)
		fmt.Fprintf(w, "peak partition advantage: %s× monolithic tCDP at N=%.0e inferences\n\n",
			table.F(tr.BestGain), tr.BestGainAt)
	}
	_, err = fmt.Fprintln(w,
		"vs mono > 1: a partitioned design beats every monolithic one — the die-split yield win outruns the D2D energy tax.")
	return err
}
