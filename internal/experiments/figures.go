package experiments

import (
	"fmt"
	"io"
	"math"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/device"
	"cordoba/internal/dse"
	"cordoba/internal/table"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// ---- Figure 6 ----

// DomainSpace is one of the Fig. 6 computing domains with its synthetic
// design space.
type DomainSpace struct {
	Name          string
	EmbodiedShare float64 // target mean embodied fraction of total carbon
	EDP           []float64
	TCDP          []float64
	// Correlation is Pearson correlation of log EDP vs log tCDP.
	Correlation float64
	// MaxSpreadAtEqualEDP is the largest tCDP ratio between two designs
	// whose EDPs differ by less than 10 %.
	MaxSpreadAtEqualEDP float64
}

// domainConfig parameterizes the synthetic generator for one domain. The
// embodied shares follow the paper's Fig. 6 caption: ~95 % for
// microcontrollers/wearables [3], 72 % for mobile [2], 50 % for servers [21].
type domainConfig struct {
	name       string
	gates      float64
	cycles     float64
	nodes      []string
	share      float64
	ciUse      units.CarbonIntensity
	vddScales  []float64
	widthScale []float64
	// overProvision is the dark-silicon dimension: the factor by which the
	// die is larger than the logic the task exercises. Wearables and MCUs
	// carry extreme dark silicon [9]; datacenter parts run hot and utilized.
	overProvision []float64
}

func fig6Domains() []domainConfig {
	return []domainConfig{
		{"wearable", 5e5, 1e7, []string{"28nm", "14nm", "7nm"}, 0.95, 380,
			[]float64{0.8, 0.9, 1.0, 1.15}, []float64{0.7, 1.0, 1.4},
			[]float64{1, 4, 16, 64, 128}},
		{"mobile", 5e7, 1e10, []string{"14nm", "10nm", "7nm", "5nm"}, 0.72, 380,
			[]float64{0.8, 0.9, 1.0, 1.15}, []float64{0.7, 1.0, 1.4},
			[]float64{1, 2, 4, 8}},
		{"datacenter", 1e9, 1e13, []string{"10nm", "7nm", "5nm", "3nm"}, 0.50, 380,
			[]float64{0.8, 0.9, 1.0, 1.15}, []float64{0.7, 1.0, 1.4},
			[]float64{1, 1.5, 2}},
	}
}

// Figure6 generates the three domain design spaces and their EDP–tCDP
// relationships.
func Figure6() ([]DomainSpace, error) {
	var out []DomainSpace
	for _, dc := range fig6Domains() {
		type pt struct {
			e, d float64
			emb  units.Carbon
		}
		var pts []pt
		for _, nodeName := range dc.nodes {
			node, err := device.NodeByName(nodeName)
			if err != nil {
				return nil, err
			}
			proc, err := carbon.ProcessByName(nodeName)
			if err != nil {
				return nil, err
			}
			for _, vs := range dc.vddScales {
				for _, ws := range dc.widthScale {
					for _, op := range dc.overProvision {
						d := device.NewDesign(node)
						d.Gates = dc.gates
						d.VDD = node.VDDNominal * vs
						d.WidthScale = ws
						if err := d.Validate(); err != nil {
							return nil, err
						}
						delay, energy := d.Run(dc.cycles)
						// Dark silicon: the die carries op× the logic but
						// the task only exercises the base gates; the idle
						// part still leaks.
						idleLeak := d.LeakagePower().Over(delay).Joules() * (op - 1)
						emb, err := proc.EmbodiedDie(carbon.FabCoal,
							d.Area()*units.Area(op), 0.95)
						if err != nil {
							return nil, err
						}
						pts = append(pts, pt{
							e:   energy.Joules() + idleLeak,
							d:   delay.Seconds(),
							emb: emb,
						})
					}
				}
			}
		}
		// Calibrate task count so the domain's mean embodied share matches
		// the target: N = (1-α)/α · ΣC_emb / (CI·ΣE).
		var sumEmb, sumE float64
		for _, p := range pts {
			sumEmb += p.emb.Grams()
			sumE += p.e
		}
		alpha := dc.share
		n := (1 - alpha) / alpha * sumEmb / (dc.ciUse.Of(units.Energy(sumE)).Grams())
		ds := DomainSpace{Name: dc.name, EmbodiedShare: alpha}
		for _, p := range pts {
			op := dc.ciUse.Of(units.Energy(p.e * n))
			tcdp := (p.emb.Grams() + op.Grams()) * p.d
			ds.EDP = append(ds.EDP, p.e*p.d)
			ds.TCDP = append(ds.TCDP, tcdp)
		}
		ds.Correlation = logPearson(ds.EDP, ds.TCDP)
		ds.MaxSpreadAtEqualEDP = maxSpreadAtEqualX(ds.EDP, ds.TCDP, 0.10)
		out = append(out, ds)
	}
	return out, nil
}

// logPearson returns the Pearson correlation of log10(x) and log10(y).
func logPearson(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		lx, ly := math.Log10(x[i]), math.Log10(y[i])
		sx += lx
		sy += ly
		sxx += lx * lx
		syy += ly * ly
		sxy += lx * ly
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// maxSpreadAtEqualX returns the largest y ratio among pairs whose x values
// are within tol of each other (relative).
func maxSpreadAtEqualX(x, y []float64, tol float64) float64 {
	best := 1.0
	for i := range x {
		for j := i + 1; j < len(x); j++ {
			if math.Abs(x[i]-x[j]) > tol*math.Max(x[i], x[j]) {
				continue
			}
			r := y[i] / y[j]
			if r < 1 {
				r = 1 / r
			}
			if r > best {
				best = r
			}
		}
	}
	return best
}

// RenderFigure6 writes the Fig. 6 scatter and correlation summary.
func RenderFigure6(w io.Writer) error {
	domains, err := Figure6()
	if err != nil {
		return err
	}
	var series []table.Series
	for _, d := range domains {
		series = append(series, table.Series{Name: d.Name, X: d.EDP, Y: d.TCDP})
	}
	c := &table.Chart{
		Title:  "Fig. 6 — tCDP versus EDP across domains",
		XLabel: "EDP (J·s)", YLabel: "tCDP (gCO2e·s)", LogX: true, LogY: true,
		Series: series,
	}
	if err := c.Render(w); err != nil {
		return err
	}
	t := table.New("correlation of log EDP vs log tCDP",
		"domain", "embodied share", "correlation", "max tCDP spread at equal EDP")
	for _, d := range domains {
		t.AddRow(d.Name, table.F(d.EmbodiedShare), table.F(d.Correlation),
			table.F(d.MaxSpreadAtEqualEDP)+"×")
	}
	return t.Render(w)
}

// ---- Figure 7 ----

// Figure7Result relates die area to tCDP (per operational time) and EDP for
// the 121-configuration space on the "All kernels" task.
type Figure7Result struct {
	Areas []float64 // cm² per config
	EDP   []float64
	// TCDP[n] is each config's tCDP at OperationalTimes[n] inferences.
	OperationalTimes []float64
	TCDP             [][]float64
	// TCDPOptimal[n] is the optimal config index at each operational time;
	// EDPOptimal and MinArea are single indices.
	TCDPOptimal []int
	EDPOptimal  int
	MinArea     int
}

// Figure7 runs the area-relationship study.
func Figure7() (Figure7Result, error) {
	task, err := workload.PaperTask(workload.TaskAllKernels)
	if err != nil {
		return Figure7Result{}, err
	}
	s, err := dse.EvaluateDefault(task, accel.Grid())
	if err != nil {
		return Figure7Result{}, err
	}
	res := Figure7Result{OperationalTimes: []float64{1e4, 1e7, 1e10}}
	for i, p := range s.Points {
		res.Areas = append(res.Areas, p.Area.CM2())
		res.EDP = append(res.EDP, p.EDP())
		if res.EDP[i] < res.EDP[res.EDPOptimal] {
			res.EDPOptimal = i
		}
		if res.Areas[i] < res.Areas[res.MinArea] {
			res.MinArea = i
		}
	}
	for _, n := range res.OperationalTimes {
		res.TCDP = append(res.TCDP, s.TCDPAt(n))
		res.TCDPOptimal = append(res.TCDPOptimal, s.OptimalAt(n))
	}
	return res, nil
}

// RenderFigure7 writes the Fig. 7 area study.
func RenderFigure7(w io.Writer) error {
	res, err := Figure7()
	if err != nil {
		return err
	}
	var series []table.Series
	for i, n := range res.OperationalTimes {
		series = append(series, table.Series{
			Name: fmt.Sprintf("N=%.0e", n), X: res.Areas, Y: res.TCDP[i],
		})
	}
	c1 := &table.Chart{
		Title:  "Fig. 7(a) — tCDP versus die area (121 configs, All kernels)",
		XLabel: "area (cm²)", YLabel: "tCDP (gCO2e·s)", LogX: true, LogY: true,
		Series: series,
	}
	if err := c1.Render(w); err != nil {
		return err
	}
	c2 := &table.Chart{
		Title:  "Fig. 7(b) — EDP versus die area",
		XLabel: "area (cm²)", YLabel: "EDP (J·s)", LogX: true, LogY: true,
		Series: []table.Series{{Name: "configs", X: res.Areas, Y: res.EDP}},
	}
	if err := c2.Render(w); err != nil {
		return err
	}
	grid := accel.Grid()
	fmt.Fprintf(w, "EDP-optimal config: %s (operational-time independent)\n", grid[res.EDPOptimal].ID)
	for i, n := range res.OperationalTimes {
		fmt.Fprintf(w, "tCDP-optimal at N=%.0e: %s (area %s)\n",
			n, grid[res.TCDPOptimal[i]].ID, units.Area(res.Areas[res.TCDPOptimal[i]]))
	}
	_, err = fmt.Fprintf(w, "minimum-area config: %s — not tCDP-optimal at any swept time\n", grid[res.MinArea].ID)
	return err
}

// ---- Table VI ----

// KnobRow is one row of Table VI, with measured movement directions.
type KnobRow struct {
	Knob          string
	EnergyRatio   float64 // after/before
	DelayRatio    float64
	EmbodiedRatio float64
}

// TableVI measures the Table VI knob directions with the device and carbon
// models. Circuit knobs are measured at 7 nm; "Tech. node ↓" compares
// iso-area dies at 7 nm versus 5 nm (designers spend the shrink on features,
// so embodied follows fab intensity); "Lifetime ↓" compares keeping one
// 7 nm chip for two periods against refreshing to a 5 nm chip halfway.
func TableVI() ([]KnobRow, error) {
	d := device.NewDesign(device.Node7nm())
	const cycles = 1e9
	var rows []KnobRow
	for _, e := range device.Sweep(d, cycles) {
		if e.Knob == device.KnobNodeAdvance {
			continue // replaced by the iso-area comparison below
		}
		rows = append(rows, KnobRow{
			Knob:          e.Knob.String(),
			EnergyRatio:   e.EnergyRatio,
			DelayRatio:    e.DelayRatio,
			EmbodiedRatio: e.AreaRatio, // same node: embodied ∝ area
		})
	}

	// Lifetime ↓ (refresh): two periods on one 7 nm chip versus one period
	// each on 7 nm and 5 nm chips of the same die area.
	p7, err := carbon.ProcessByName("7nm")
	if err != nil {
		return nil, err
	}
	p5, err := carbon.ProcessByName("5nm")
	if err != nil {
		return nil, err
	}
	n5, err := device.NodeByName("5nm")
	if err != nil {
		return nil, err
	}
	d5 := device.NewDesign(n5)
	_, e7 := d.Run(cycles)
	_, e5 := d5.Run(cycles)
	keepEnergy := 2 * e7.Joules()
	refreshEnergy := e7.Joules() + e5.Joules()
	area := d.Area()
	keepEmb := p7.CarbonPerArea(carbon.FabCoal).Grams() * area.CM2()
	refreshEmb := keepEmb + p5.CarbonPerArea(carbon.FabCoal).Grams()*area.CM2()
	rows = append(rows, KnobRow{
		Knob:          "Lifetime ↓",
		EnergyRatio:   refreshEnergy / keepEnergy,
		DelayRatio:    e5div(d5, d, cycles),
		EmbodiedRatio: refreshEmb / keepEmb,
	})

	// Tech. node ↓ at iso-area.
	d7Delay, d7Energy := d.Run(cycles)
	d5Delay, d5Energy := d5.Run(cycles)
	rows = append(rows, KnobRow{
		Knob:          "Tech. node ↓",
		EnergyRatio:   d5Energy.Joules() / d7Energy.Joules(),
		DelayRatio:    d5Delay.Seconds() / d7Delay.Seconds(),
		EmbodiedRatio: p5.CarbonPerArea(carbon.FabCoal).Grams() / p7.CarbonPerArea(carbon.FabCoal).Grams(),
	})
	return rows, nil
}

// e5div returns the delay ratio of the refreshed system's second period to
// the kept system (the refresh runs faster on the newer node).
func e5div(newer, older device.Design, cycles float64) float64 {
	dn, _ := newer.Run(cycles)
	do, _ := older.Run(cycles)
	return dn.Seconds() / do.Seconds()
}

// RenderTableVI writes Table VI.
func RenderTableVI(w io.Writer) error {
	rows, err := TableVI()
	if err != nil {
		return err
	}
	dir := func(r float64) string {
		switch {
		case r < 0.999:
			return "↓ " + table.F(r) + "×"
		case r > 1.001:
			return "↑ " + table.F(r) + "×"
		default:
			return "≈ 1"
		}
	}
	t := table.New("Table VI — design-knob directions (measured with the device/carbon models)",
		"design knob", "effect on E", "effect on D", "effect on C_emb")
	for _, r := range rows {
		t.AddRow(r.Knob, dir(r.EnergyRatio), dir(r.DelayRatio), dir(r.EmbodiedRatio))
	}
	return t.Render(w)
}
