package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"cordoba/internal/workload"
)

// Result returns the experiment's typed result structure (the same data the
// Render functions format), for programmatic consumption.
func Result(key string) (any, error) {
	switch key {
	case "table1":
		return TableI(), nil
	case "table2", "fig3":
		return TableII(), nil
	case "fig6":
		return Figure6()
	case "fig7":
		return Figure7()
	case "fig8":
		return Figure8()
	case "fig8f":
		return Figure8F()
	case "fig9":
		return Figure9()
	case "fig10":
		return Figure10()
	case "table5":
		return TableV()
	case "fig11":
		return Figure11()
	case "fig12":
		return Figure12()
	case "table6":
		return TableVI()
	case "dvfs":
		return DVFS(), nil
	case "ablation":
		return Ablations()
	case "lifetime":
		return Lifetime()
	case "schedule":
		return Schedule()
	case "chiplet":
		return Chiplet()
	case "partition":
		return PartitionStudy()
	default:
		return nil, fmt.Errorf("experiments: no typed result for %q", key)
	}
}

// ExportJSON writes the experiment's typed result as indented JSON.
func ExportJSON(key string, w io.Writer) error {
	res, err := Result(key)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// ExportCSV writes the experiment's plottable series as CSV. It is
// implemented for the figure experiments whose data is naturally tabular;
// other keys return an error suggesting JSON.
func ExportCSV(key string, w io.Writer) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

	switch key {
	case "fig6":
		domains, err := Figure6()
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"domain", "edp_js", "tcdp_gs"}); err != nil {
			return err
		}
		for _, d := range domains {
			for i := range d.EDP {
				if err := cw.Write([]string{d.Name, f(d.EDP[i]), f(d.TCDP[i])}); err != nil {
					return err
				}
			}
		}
		return nil

	case "fig7":
		res, err := Figure7()
		if err != nil {
			return err
		}
		header := []string{"config_index", "area_cm2", "edp_js"}
		for _, n := range res.OperationalTimes {
			header = append(header, fmt.Sprintf("tcdp_at_%.0e", n))
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		for i := range res.Areas {
			row := []string{strconv.Itoa(i), f(res.Areas[i]), f(res.EDP[i])}
			for j := range res.OperationalTimes {
				row = append(row, f(res.TCDP[j][i]))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil

	case "fig8":
		spaces, err := taskSpaces()
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"task", "config", "inferences", "tcdp_gs"}); err != nil {
			return err
		}
		sweep := Fig8Sweep()
		for _, task := range workload.PaperTasks() {
			s := spaces[task.Name]
			for _, idx := range s.EverOptimal() {
				p := s.Points[idx]
				for _, n := range sweep {
					row := []string{task.Name, p.Config.ID, f(n), f(p.TCDP(s.CIUse, n))}
					if err := cw.Write(row); err != nil {
						return err
					}
				}
			}
		}
		return nil

	case "fig9":
		results, err := Figure9()
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"task", "config", "inferences", "normalized"}); err != nil {
			return err
		}
		for _, r := range results {
			for _, c := range r.Curves {
				for i := range c.Inferences {
					row := []string{r.Task, c.Config, f(c.Inferences[i]), f(c.Normalized[i])}
					if err := cw.Write(row); err != nil {
						return err
					}
				}
			}
		}
		return nil

	case "fig11":
		res, err := Figure11()
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"case", "config", "tcdp_gs", "gain_vs_baseline"}); err != nil {
			return err
		}
		for _, c := range res.Cases {
			for i, id := range res.Configs {
				row := []string{c.Name, id, f(c.TCDP[i]), f(c.Gain[i])}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
		return nil

	case "fig12":
		res, err := Figure12()
		if err != nil {
			return err
		}
		if err := cw.Write([]string{"config", "ed_js", "cembd_gs", "survivor"}); err != nil {
			return err
		}
		surv := map[string]bool{}
		for _, n := range res.Survivors {
			surv[n] = true
		}
		for i, name := range res.Configs {
			row := []string{name, f(res.EDP[i]), f(res.EmbD[i]), strconv.FormatBool(surv[name])}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil

	case "schedule":
		res, err := Schedule()
		if err != nil {
			return err
		}
		header := []string{"trace", "best_start_h", "best_co2e_g", "immediate_co2e_g", "worst_co2e_g", "savings_frac"}
		if err := cw.Write(header); err != nil {
			return err
		}
		for _, r := range res.Rows {
			row := []string{r.Trace, f(r.Plan.Best.Start.InHours()), f(r.Plan.Best.Carbon.Grams()),
				f(r.Plan.Immediate.Carbon.Grams()), f(r.Plan.Worst.Carbon.Grams()), f(r.Plan.Savings)}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil

	case "chiplet":
		res, err := Chiplet()
		if err != nil {
			return err
		}
		header := []string{"yield", "design", "chiplets", "silicon_g", "packaging_g", "bonding_g", "total_g", "vs_monolithic"}
		if err := cw.Write(header); err != nil {
			return err
		}
		for _, r := range res.Rows {
			row := []string{r.Yield, r.Design, strconv.Itoa(r.Chiplets),
				f(r.SiliconG), f(r.PackagingG), f(r.BondingG), f(r.TotalG), f(r.VsMonolithic)}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		return nil

	case "partition":
		res, err := PartitionStudy()
		if err != nil {
			return err
		}
		header := []string{"task", "inferences", "mono_label", "mono_tcdp_gs",
			"c25d_label", "c25d_tcdp_gs", "c3d_label", "c3d_tcdp_gs", "winner", "gain_vs_mono"}
		if err := cw.Write(header); err != nil {
			return err
		}
		for _, tr := range res.Tasks {
			for _, r := range tr.Rows {
				row := []string{tr.Task, f(r.Inferences),
					r.Monolithic.Label, f(r.Monolithic.TCDP),
					r.Chiplet25D.Label, f(r.Chiplet25D.TCDP),
					r.Stacked3D.Label, f(r.Stacked3D.TCDP),
					r.Winner, f(r.Gain)}
				if err := cw.Write(row); err != nil {
					return err
				}
			}
		}
		return nil

	default:
		return fmt.Errorf("experiments: no CSV form for %q (use JSON)", key)
	}
}
