package uncertainty

import (
	"math"
	"math/rand"
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/dse"
	"cordoba/internal/grid"
	"cordoba/internal/nn"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// fourDesigns is a hand-built space with a known envelope: d0 (min C_emb·D),
// d2 (min E·D), d1 on the envelope between them, d3 dominated.
func fourDesigns() []Design {
	return []Design{
		{Name: "d0", Energy: 10, Delay: 1, Embodied: 1},
		{Name: "d1", Energy: 4, Delay: 1, Embodied: 4},
		{Name: "d2", Energy: 1, Delay: 1, Embodied: 20},
		{Name: "d3", Energy: 8, Delay: 1, Embodied: 10},
	}
}

func TestDerivedQuantities(t *testing.T) {
	d := Design{Name: "d", Energy: 6, Delay: 2, Embodied: 5}
	if d.EDP() != 12 || d.EmbodiedDelay() != 10 {
		t.Fatalf("EDP=%v EmbD=%v", d.EDP(), d.EmbodiedDelay())
	}
	if got := d.Lagrangian(2); got != 34 {
		t.Fatalf("lagrangian = %v", got)
	}
	if d.Power() != 3 {
		t.Fatalf("power = %v", d.Power())
	}
}

func TestSurvivorsAndEliminated(t *testing.T) {
	ds := fourDesigns()
	surv := Survivors(ds)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(surv) != 3 {
		t.Fatalf("survivors = %v, want {0,1,2}", surv)
	}
	for _, i := range surv {
		if !want[i] {
			t.Errorf("unexpected survivor %d", i)
		}
	}
	elim := Eliminated(ds)
	if len(elim) != 1 || elim[0] != 3 {
		t.Fatalf("eliminated = %v, want [3]", elim)
	}
}

func TestBetaSweepEndpoints(t *testing.T) {
	ds := fourDesigns()
	res := BetaSweep(ds, []float64{0, 1e9})
	if ds[res[0].Winner].Name != "d0" {
		t.Errorf("β=0 winner = %s, want d0 (min C_emb·D)", ds[res[0].Winner].Name)
	}
	if ds[res[1].Winner].Name != "d2" {
		t.Errorf("β→∞ winner = %s, want d2 (min E·D)", ds[res[1].Winner].Name)
	}
}

func TestBetaSweepCoversSurvivors(t *testing.T) {
	ds := fourDesigns()
	winners := map[int]bool{}
	for _, w := range BetaSweep(ds, LogBetas(1e-6, 1e6, 200)) {
		winners[w.Winner] = true
	}
	for _, s := range Survivors(ds) {
		if !winners[s] {
			t.Errorf("survivor %d never won the β sweep", s)
		}
	}
	if winners[3] {
		t.Error("eliminated design won the β sweep")
	}
}

func TestLogBetasIncludesZero(t *testing.T) {
	bs := LogBetas(0.01, 100, 5)
	if bs[0] != 0 {
		t.Fatal("first β must be 0")
	}
	if len(bs) != 6 {
		t.Fatalf("len = %d", len(bs))
	}
}

func TestTCDPUnderConstantTraceMatchesClosedForm(t *testing.T) {
	d := Design{Name: "d", Energy: units.Energy(10), Delay: 2, Embodied: 100}
	// Constant CI: C_op = CI·P·life; P = 5 W.
	life := units.Hours(10)
	got, err := TCDPUnderTrace(d, grid.Constant{Intensity: 380}, life, 100)
	if err != nil {
		t.Fatal(err)
	}
	op := units.CarbonIntensity(380).Of(units.Power(5).Over(life))
	want := (100 + op.Grams()) * 2
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("tCDP = %v, want %v", got, want)
	}
}

func TestTCDPUnderTraceErrors(t *testing.T) {
	bad := Design{Name: "bad", Energy: 1, Delay: 0, Embodied: 1}
	if _, err := TCDPUnderTrace(bad, grid.Constant{Intensity: 1}, 1, 10); err == nil {
		t.Error("zero delay should error")
	}
	d := Design{Name: "d", Energy: 1, Delay: 1, Embodied: 1}
	if _, err := TCDPUnderTrace(d, grid.Constant{Intensity: 1}, -1, 10); err == nil {
		t.Error("negative lifetime should propagate")
	}
	if _, err := OptimalUnderTrace(nil, grid.Constant{Intensity: 1}, 1, 10); err == nil {
		t.Error("empty design list should error")
	}
	if _, err := OptimalUnderTrace([]Design{bad}, grid.Constant{Intensity: 1}, 1, 10); err == nil {
		t.Error("bad design should propagate")
	}
}

// §IV-B theorem, validated empirically: under ANY CI_use(t) trace and any
// lifetime, the fixed-time tCDP-optimal design is a member of the
// fixed-time survivor set. The designs deliberately have distinct delays so
// that the fixed-time plane (E, C_emb·D) differs from the fixed-work plane.
func TestOptimalUnderAnyTraceIsSurvivor(t *testing.T) {
	ds := []Design{
		{Name: "d0", Energy: 10, Delay: 0.5, Embodied: 2},
		{Name: "d1", Energy: 4, Delay: 1, Embodied: 4},
		{Name: "d2", Energy: 1, Delay: 3, Embodied: 20},
		{Name: "d3", Energy: 8, Delay: 2, Embodied: 10},
		{Name: "d4", Energy: 2, Delay: 1.2, Embodied: 9},
	}
	surv := map[int]bool{}
	for _, i := range SurvivorsFixedTime(ds) {
		surv[i] = true
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		var tr grid.Trace
		switch trial % 4 {
		case 0:
			tr = grid.Constant{Intensity: units.CarbonIntensity(rng.Float64() * 900)}
		case 1:
			m := rng.Float64() * 500
			tr = grid.Diurnal{Mean: units.CarbonIntensity(m), Swing: units.CarbonIntensity(rng.Float64() * m)}
		case 2:
			tr = grid.Ramp{
				Start: units.CarbonIntensity(rng.Float64() * 900),
				End:   units.CarbonIntensity(rng.Float64() * 900),
				Span:  units.Years(1 + rng.Float64()*9),
			}
		default:
			s, _ := grid.NewStep(
				[]units.Time{units.Years(1), units.Years(3)},
				[]units.CarbonIntensity{
					units.CarbonIntensity(rng.Float64() * 900),
					units.CarbonIntensity(rng.Float64() * 900),
					units.CarbonIntensity(rng.Float64() * 900),
				})
			tr = s
		}
		life := units.Hours(1 + rng.Float64()*1e5)
		opt, err := OptimalUnderTrace(ds, tr, life, 400)
		if err != nil {
			t.Fatal(err)
		}
		if !surv[opt] {
			t.Fatalf("trial %d (%s): optimal design %s not a survivor", trial, tr.Name(), ds[opt].Name)
		}
	}
}

// Fig. 12: of the seven §VI-E configurations running SR 512×512, the
// baseline and most 3D variants can never be tCDP-optimal; the survivors
// are a small subset of 2K-MAC stacked designs.
func TestFig12StackedSurvivors(t *testing.T) {
	task := workload.Task{Name: "SR512", Calls: map[nn.KernelID]float64{nn.SR512: 1}}
	space, err := dse.EvaluateDefault(task, accel.Stacked3D())
	if err != nil {
		t.Fatal(err)
	}
	ds := FromDSE(space)
	surv := Survivors(ds)
	if len(surv) > 4 {
		t.Errorf("too many survivors: %d of 7", len(surv))
	}
	names := map[string]bool{}
	for _, i := range surv {
		names[ds[i].Name] = true
	}
	if names[accel.Baseline1K1M] {
		t.Error("the 2D baseline should be eliminated (paper Fig. 12)")
	}
	// The paper's survivors are {3D_2K_4M, 3D_2K_8M}; the calibrated model
	// yields {3D_1K_4M, 3D_1K_8M, 3D_2K_16M} (see EXPERIMENTS.md). The
	// shared qualitative result: every survivor is a 3D-stacked design with
	// ≥ 4 MB of stacked activation memory, and a majority of the seven
	// configurations is eliminated without knowing CI_use(t).
	if len(surv) < 2 {
		t.Errorf("expected at least two survivors, got %v", surv)
	}
	for _, i := range surv {
		d := ds[i]
		cfg := configByID(t, d.Name)
		if !cfg.Is3D {
			t.Errorf("survivor %s should be 3D-stacked", d.Name)
		}
		if cfg.SRAM.InMB() < 4 {
			t.Errorf("survivor %s should stack ≥ 4 MB, has %v MB", d.Name, cfg.SRAM.InMB())
		}
	}
	if len(ds)-len(surv) < 4 {
		t.Errorf("a majority should be eliminated: %d of %d survive", len(surv), len(ds))
	}
}

func configByID(t *testing.T, id string) accel.Config {
	t.Helper()
	for _, c := range accel.Stacked3D() {
		if c.ID == id {
			return c
		}
	}
	t.Fatalf("unknown stacked config %q", id)
	return accel.Config{}
}

func TestMonteCarloBasics(t *testing.T) {
	ds := fourDesigns()
	u := CarbonUncertainty{CIUseMin: 10, CIUseMax: 800, EmbodiedMin: 0.7, EmbodiedMax: 1.5}
	res, err := MonteCarlo(ds, u, 1e3, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, w := range res.WinShare {
		total += w
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("win shares sum to %v", total)
	}
	// The dominated design can never win.
	if res.WinShare[3] != 0 {
		t.Errorf("dominated design won %.2f of trials", res.WinShare[3])
	}
	for i := range ds {
		if res.MeanTCDP[i] <= 0 || res.StdTCDP[i] < 0 {
			t.Errorf("design %d: bad stats mean=%v std=%v", i, res.MeanTCDP[i], res.StdTCDP[i])
		}
	}
	// Determinism: same seed, same result.
	res2, _ := MonteCarlo(ds, u, 1e3, 2000, 42)
	for i := range res.WinShare {
		if res.WinShare[i] != res2.WinShare[i] {
			t.Fatal("Monte Carlo not deterministic for fixed seed")
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	ds := fourDesigns()
	bad := []CarbonUncertainty{
		{CIUseMin: -1, CIUseMax: 10, EmbodiedMin: 1, EmbodiedMax: 1},
		{CIUseMin: 10, CIUseMax: 1, EmbodiedMin: 1, EmbodiedMax: 1},
		{CIUseMin: 0, CIUseMax: 1, EmbodiedMin: 0, EmbodiedMax: 1},
		{CIUseMin: 0, CIUseMax: 1, EmbodiedMin: 2, EmbodiedMax: 1},
	}
	for i, u := range bad {
		if _, err := MonteCarlo(ds, u, 1, 10, 1); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
	ok := CarbonUncertainty{CIUseMin: 1, CIUseMax: 2, EmbodiedMin: 1, EmbodiedMax: 2}
	if _, err := MonteCarlo(nil, ok, 1, 10, 1); err == nil {
		t.Error("empty designs should error")
	}
	if _, err := MonteCarlo(ds, ok, 1, 0, 1); err == nil {
		t.Error("zero trials should error")
	}
}

func TestFromDSE(t *testing.T) {
	task, _ := workload.PaperTask(workload.TaskAI5)
	space, err := dse.EvaluateDefault(task, accel.Grid()[:5])
	if err != nil {
		t.Fatal(err)
	}
	ds := FromDSE(space)
	if len(ds) != 5 {
		t.Fatalf("len = %d", len(ds))
	}
	for i, d := range ds {
		p := space.Points[i]
		if d.Name != p.Config.ID || d.Energy != p.Energy || d.Delay != p.Delay || d.Embodied != p.Embodied {
			t.Errorf("design %d does not mirror point", i)
		}
	}
}
