// Package uncertainty implements §IV-B: optimizing carbon efficiency when
// total carbon cannot be quantified precisely.
//
// The central result: with a fixed, known power profile, the unknown
// use-phase carbon intensity CI_use(t) only ever enters tCDP through the
// non-negative weight it puts on operational energy. Recasting the objective
// with a Lagrange multiplier β (eq. IV.9),
//
//	C_embodied·D + β·E·D,   β ∈ [0, ∞),
//
// every possible CI_use(t) corresponds to some β, so designs that are not
// optimal for any β — the ones off the lower convex envelope of
// (E·D, C_emb·D) — can be eliminated even when CI_use(t) is unknown. The
// package provides the β sweep, the elimination set, tCDP evaluation under
// arbitrary CI traces (to validate the theorem empirically), and Monte-Carlo
// analysis over opaque carbon-accounting parameters (§VI-C).
package uncertainty

import (
	"fmt"
	"math"
	"math/rand"

	"cordoba/internal/dse"
	"cordoba/internal/grid"
	"cordoba/internal/pareto"
	"cordoba/internal/units"
)

// Design is a candidate hardware target reduced to the three quantities
// §IV-B reasons about: per-task energy, per-task delay, embodied carbon.
type Design struct {
	Name     string
	Energy   units.Energy
	Delay    units.Time
	Embodied units.Carbon
}

// EDP returns E·D.
func (d Design) EDP() float64 { return d.Energy.Joules() * d.Delay.Seconds() }

// EmbodiedDelay returns C_emb·D.
func (d Design) EmbodiedDelay() float64 { return d.Embodied.Grams() * d.Delay.Seconds() }

// Lagrangian returns eq. IV.9: C_emb·D + β·E·D.
func (d Design) Lagrangian(beta float64) float64 {
	return d.EmbodiedDelay() + beta*d.EDP()
}

// Power returns the design's operational power draw, E/D — assumed fixed
// and known (the §IV-B modelling assumption).
func (d Design) Power() units.Power { return d.Energy.DividedBy(d.Delay) }

// FromDSE converts an evaluated design space into uncertainty designs.
func FromDSE(s *dse.Space) []Design {
	out := make([]Design, len(s.Points))
	for i, p := range s.Points {
		out[i] = Design{Name: p.Config.ID, Energy: p.Energy, Delay: p.Delay, Embodied: p.Embodied}
	}
	return out
}

func toPoints(designs []Design) []pareto.Point {
	pts := make([]pareto.Point, len(designs))
	for i, d := range designs {
		pts[i] = pareto.Point{X: d.EDP(), Y: d.EmbodiedDelay()}
	}
	return pts
}

// Survivors returns the indices of designs that can be tCDP-optimal for some
// β ∈ [0, ∞) — the set X* of §IV-B in the paper's *fixed-work* analysis
// (Fig. 12 caption: "E is Energy per inference"): every design executes the
// same number of inferences N, so tCDP = C_emb·D + β·(E·D) with β = CI·N,
// and the survivor set is the lower convex envelope of (E·D, C_emb·D).
// Everything else is safely eliminated even when CI_use(t) is unknown.
func Survivors(designs []Design) []int {
	return pareto.Envelope(toPoints(designs))
}

// SurvivorsFixedTime returns the §IV-B survivor set under the *fixed-time*
// analysis (eq. IV.7/IV.8 verbatim): every design runs continuously at its
// fixed power P = E/D for the same lifetime, so
//
//	tCDP = C_emb·D + (∫CI(t)·P dt)·D = C_emb·D + avgCI·t_life·E,
//
// a linear functional of (E, C_emb·D) with a weight common to all designs
// for any trace. Only envelope members of that plane can be tCDP-optimal
// under any CI_use(t) trace; OptimalUnderTrace always lands in this set.
func SurvivorsFixedTime(designs []Design) []int {
	pts := make([]pareto.Point, len(designs))
	for i, d := range designs {
		pts[i] = pareto.Point{X: d.Energy.Joules(), Y: d.EmbodiedDelay()}
	}
	return pareto.Envelope(pts)
}

// Eliminated returns the complement of Survivors.
func Eliminated(designs []Design) []int {
	surv := map[int]bool{}
	for _, i := range Survivors(designs) {
		surv[i] = true
	}
	var out []int
	for i := range designs {
		if !surv[i] {
			out = append(out, i)
		}
	}
	return out
}

// BetaWinner is one β sample of the Lagrange sweep.
type BetaWinner struct {
	Beta   float64
	Winner int
}

// BetaSweep minimizes eq. IV.9 at each β and returns the winners.
func BetaSweep(designs []Design, betas []float64) []BetaWinner {
	pts := toPoints(designs)
	out := make([]BetaWinner, len(betas))
	for i, b := range betas {
		out[i] = BetaWinner{Beta: b, Winner: pareto.ArgminLinear(pts, b)}
	}
	return out
}

// LogBetas returns k multipliers log-spaced over [lo, hi], plus β = 0.
func LogBetas(lo, hi float64, k int) []float64 {
	return append([]float64{0}, dse.LogSpace(lo, hi, k)...)
}

// TCDPUnderTrace evaluates a design's true tCDP (eq. IV.8) when the grid's
// carbon intensity follows the given trace over the hardware lifetime:
// the design runs continuously at its fixed power E/D, and embodied carbon
// is not amortized (it is paid once). The steps parameter is retained for
// call-site compatibility; evaluation goes through the exact
// cumulative-trace engine.
func TCDPUnderTrace(d Design, tr grid.Trace, life units.Time, steps int) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("uncertainty: need at least one integration step, got %d", steps)
	}
	cum, err := grid.NewCumulative(tr, life)
	if err != nil {
		return 0, err
	}
	return TCDPUnderCumulative(d, cum, life)
}

// TCDPUnderCumulative is TCDPUnderTrace against a prebuilt cumulative trace
// — the form to use when scoring many designs under one grid.
func TCDPUnderCumulative(d Design, cum *grid.Cumulative, life units.Time) (float64, error) {
	if d.Delay <= 0 {
		return 0, fmt.Errorf("uncertainty: design %q has non-positive delay", d.Name)
	}
	if life < 0 {
		return 0, fmt.Errorf("uncertainty: negative lifetime %v", life)
	}
	op := cum.OperationalCarbon(d.Power(), 0, life)
	return (d.Embodied + op).Grams() * d.Delay.Seconds(), nil
}

// OptimalUnderTrace returns the tCDP-optimal design index under a CI trace.
// By the §IV-B theorem, the result is always a member of Survivors. The
// trace's prefix integral is built once and shared across all designs.
func OptimalUnderTrace(designs []Design, tr grid.Trace, life units.Time, steps int) (int, error) {
	if len(designs) == 0 {
		return -1, fmt.Errorf("uncertainty: no designs")
	}
	if steps < 1 {
		return -1, fmt.Errorf("uncertainty: need at least one integration step, got %d", steps)
	}
	cum, err := grid.NewCumulative(tr, life)
	if err != nil {
		return -1, err
	}
	best, bestV := -1, math.Inf(1)
	for i, d := range designs {
		v, err := TCDPUnderCumulative(d, cum, life)
		if err != nil {
			return -1, err
		}
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}

// CarbonUncertainty describes opaque carbon-accounting parameters as uniform
// ranges: the use-phase intensity (varying grids, §IV-B) and a multiplicative
// band on embodied carbon (covering unknown CI_fab, EPA, MPA, GPA — the
// "lack of transparency" of §I).
type CarbonUncertainty struct {
	CIUseMin, CIUseMax       units.CarbonIntensity
	EmbodiedMin, EmbodiedMax float64 // multipliers, e.g. 0.7–1.5
}

// Validate checks the ranges.
func (u CarbonUncertainty) Validate() error {
	if u.CIUseMin < 0 || u.CIUseMax < u.CIUseMin {
		return fmt.Errorf("uncertainty: bad CI_use range [%v, %v]", u.CIUseMin, u.CIUseMax)
	}
	if u.EmbodiedMin <= 0 || u.EmbodiedMax < u.EmbodiedMin {
		return fmt.Errorf("uncertainty: bad embodied range [%v, %v]", u.EmbodiedMin, u.EmbodiedMax)
	}
	return nil
}

// MCResult summarizes a Monte-Carlo run.
type MCResult struct {
	Trials   int
	WinShare []float64 // fraction of trials each design was tCDP-optimal
	MeanTCDP []float64
	StdTCDP  []float64
}

// MonteCarlo samples the uncertain parameters `trials` times, evaluates
// every design's tCDP after n task executions, and reports per-design win
// shares and tCDP statistics. The same seed reproduces the same result.
func MonteCarlo(designs []Design, u CarbonUncertainty, n float64, trials int, seed int64) (MCResult, error) {
	if err := u.Validate(); err != nil {
		return MCResult{}, err
	}
	if len(designs) == 0 || trials <= 0 {
		return MCResult{}, fmt.Errorf("uncertainty: need designs and a positive trial count")
	}
	rng := rand.New(rand.NewSource(seed))
	res := MCResult{
		Trials:   trials,
		WinShare: make([]float64, len(designs)),
		MeanTCDP: make([]float64, len(designs)),
		StdTCDP:  make([]float64, len(designs)),
	}
	sums := make([]float64, len(designs))
	sqs := make([]float64, len(designs))
	for t := 0; t < trials; t++ {
		ci := u.CIUseMin + units.CarbonIntensity(rng.Float64())*(u.CIUseMax-u.CIUseMin)
		embScale := u.EmbodiedMin + rng.Float64()*(u.EmbodiedMax-u.EmbodiedMin)
		best, bestV := -1, math.Inf(1)
		for i, d := range designs {
			tc := units.Carbon(embScale)*d.Embodied + ci.Of(d.Energy*units.Energy(n))
			v := tc.Grams() * d.Delay.Seconds()
			sums[i] += v
			sqs[i] += v * v
			if v < bestV {
				best, bestV = i, v
			}
		}
		res.WinShare[best] += 1
	}
	for i := range designs {
		res.WinShare[i] /= float64(trials)
		mean := sums[i] / float64(trials)
		res.MeanTCDP[i] = mean
		variance := sqs[i]/float64(trials) - mean*mean
		if variance < 0 {
			variance = 0
		}
		res.StdTCDP[i] = math.Sqrt(variance)
	}
	return res, nil
}
