package uncertainty

import (
	"fmt"
	"math"

	"cordoba/internal/pareto"
	"cordoba/internal/units"
)

// FabSensitiveDesign is a candidate whose embodied carbon is split into a
// known materials/gases part and a fab-energy part whose carbon intensity
// (CI_fab) is unknown at design time — the scenario of §IV-B's closing
// remark ("designers can further leverage Lagrange multipliers when
// parameters for embodied carbon are unknown, such as CI_fab").
type FabSensitiveDesign struct {
	Name   string
	Energy units.Energy // per-task operational energy
	Delay  units.Time   // per-task delay
	// Materials is the CI_fab-independent embodied part: (MPA + GPA)·A/Y
	// (see carbon.Process.EmbodiedSplit).
	Materials units.Carbon
	// FabEnergy is the fab energy per part, EPA·A/Y; CI_fab multiplies it.
	FabEnergy units.Energy
}

// TCDP returns the design's total-carbon-delay product after n task
// executions for concrete carbon intensities.
func (d FabSensitiveDesign) TCDP(ciFab, ciUse units.CarbonIntensity, n float64) float64 {
	emb := d.Materials + ciFab.Of(d.FabEnergy)
	op := ciUse.Of(d.Energy * units.Energy(n))
	return (emb + op).Grams() * d.Delay.Seconds()
}

// SurvivorsUnknownFab returns the designs that can be tCDP-optimal for
// *some* CI_fab ∈ [0, ∞), with CI_use and the operational time n known:
//
//	tCDP = [ (Materials + CI_use·E·n)·D ] + CI_fab·[ FabEnergy·D ]
//
// is linear in CI_fab, so the survivor set is the lower convex envelope of
// (FabEnergy·D, knownCarbon·D). Everything else is eliminated even without
// fab transparency.
func SurvivorsUnknownFab(designs []FabSensitiveDesign, ciUse units.CarbonIntensity, n float64) []int {
	pts := make([]pareto.Point, len(designs))
	for i, d := range designs {
		known := d.Materials + ciUse.Of(d.Energy*units.Energy(n))
		pts[i] = pareto.Point{
			X: d.FabEnergy.InKWh() * d.Delay.Seconds(),
			Y: known.Grams() * d.Delay.Seconds(),
		}
	}
	return pareto.Envelope(pts)
}

// OptimalAtFab returns the tCDP-optimal design for a concrete CI_fab, or an
// error for an empty design list.
func OptimalAtFab(designs []FabSensitiveDesign, ciFab, ciUse units.CarbonIntensity, n float64) (int, error) {
	if len(designs) == 0 {
		return -1, fmt.Errorf("uncertainty: no designs")
	}
	best, bestV := -1, math.Inf(1)
	for i, d := range designs {
		if v := d.TCDP(ciFab, ciUse, n); v < bestV {
			best, bestV = i, v
		}
	}
	return best, nil
}
