package uncertainty

import (
	"math"
	"math/rand"
	"testing"

	"cordoba/internal/carbon"
	"cordoba/internal/units"
)

func fabDesigns() []FabSensitiveDesign {
	return []FabSensitiveDesign{
		// Small die in an energy-light process: low fab exposure, slow.
		{Name: "small", Energy: 2, Delay: 4, Materials: 50, FabEnergy: units.KWh(0.5)},
		// Large die: high fab exposure, fast.
		{Name: "large", Energy: 4, Delay: 1, Materials: 300, FabEnergy: units.KWh(4)},
		// Balanced.
		{Name: "mid", Energy: 3, Delay: 2, Materials: 120, FabEnergy: units.KWh(1.2)},
		// Dominated: slow AND fab-heavy.
		{Name: "bad", Energy: 5, Delay: 4, Materials: 400, FabEnergy: units.KWh(5)},
	}
}

func TestFabTCDPClosedForm(t *testing.T) {
	d := FabSensitiveDesign{Name: "d", Energy: 2, Delay: 3, Materials: 10, FabEnergy: units.KWh(1)}
	// CI_fab 500: emb = 10 + 500 = 510; op at CI_use 360 for n=3.6e6 tasks:
	// 360 g/kWh × (2·3.6e6 J = 2 kWh) = 720 g. tCDP = (510+720)·3.
	got := d.TCDP(500, 360, 3.6e6)
	want := (10.0 + 500 + 720) * 3
	if math.Abs(got-want) > 1e-9*want {
		t.Fatalf("tCDP = %v, want %v", got, want)
	}
}

// The defining property: for any CI_fab, the optimum is in the survivor set.
func TestUnknownFabTheorem(t *testing.T) {
	ds := fabDesigns()
	const ciUse, n = 380, 1e5
	surv := map[int]bool{}
	for _, i := range SurvivorsUnknownFab(ds, ciUse, n) {
		surv[i] = true
	}
	if len(surv) == len(ds) {
		t.Fatal("expected at least one eliminated design")
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		ciFab := units.CarbonIntensity(rng.Float64() * 2000)
		opt, err := OptimalAtFab(ds, ciFab, ciUse, n)
		if err != nil {
			t.Fatal(err)
		}
		if !surv[opt] {
			t.Fatalf("CI_fab=%v: optimum %s not a survivor", ciFab, ds[opt].Name)
		}
	}
	// Extremes: CI_fab = 0 picks the min known-carbon·D design; CI_fab → ∞
	// picks the min fab-exposure·D design. Both must be survivors.
	o0, _ := OptimalAtFab(ds, 0, ciUse, n)
	oInf, _ := OptimalAtFab(ds, 1e12, ciUse, n)
	if !surv[o0] || !surv[oInf] {
		t.Error("extreme-CI_fab optima must be survivors")
	}
}

func TestUnknownFabEliminatesDominated(t *testing.T) {
	ds := fabDesigns()
	surv := SurvivorsUnknownFab(ds, 380, 1e5)
	for _, i := range surv {
		if ds[i].Name == "bad" {
			t.Error("dominated design survived")
		}
	}
}

func TestOptimalAtFabErrors(t *testing.T) {
	if _, err := OptimalAtFab(nil, 1, 1, 1); err == nil {
		t.Error("empty designs should error")
	}
}

// End-to-end with the carbon model: build fab-sensitive designs from real
// process data via EmbodiedSplit and check the split reassembles eq. IV.5.
func TestEmbodiedSplitConsistency(t *testing.T) {
	p := carbon.Process7nm()
	area, y := units.Area(0.5), 0.95
	fabE, mats, err := p.EmbodiedSplit(area, y)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := p.EmbodiedDie(carbon.FabCoal, area, y)
	if err != nil {
		t.Fatal(err)
	}
	reassembled := mats + carbon.FabCoal.CI.Of(fabE)
	if math.Abs(reassembled.Grams()-whole.Grams()) > 1e-9*whole.Grams() {
		t.Fatalf("split %v + %v does not reassemble %v", mats, fabE, whole)
	}
	if _, _, err := p.EmbodiedSplit(area, 0); err == nil {
		t.Error("zero yield should error")
	}
	if _, _, err := p.EmbodiedSplit(-1, 0.9); err == nil {
		t.Error("negative area should error")
	}
}

// A renewable-powered fab (CI_fab → small) should shift the optimum toward
// larger dies; a coal fab toward smaller ones.
func TestFabIntensityShiftsOptimum(t *testing.T) {
	ds := fabDesigns()
	const ciUse, n = 380, 1e5
	clean, _ := OptimalAtFab(ds, 20, ciUse, n)
	dirty, _ := OptimalAtFab(ds, 2000, ciUse, n)
	if ds[clean].FabEnergy < ds[dirty].FabEnergy {
		t.Errorf("clean fab should afford more fab energy: clean=%s dirty=%s",
			ds[clean].Name, ds[dirty].Name)
	}
}
