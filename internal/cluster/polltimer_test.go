package cluster

import (
	"context"
	"testing"
	"time"
)

// TestPollTimerFiresRepeatedly: one pollTimer serves the whole watch loop —
// sequential waits each block for roughly the interval.
func TestPollTimerFiresRepeatedly(t *testing.T) {
	p := newPollTimer(5 * time.Millisecond)
	defer p.Stop()
	for i := 0; i < 5; i++ {
		start := time.Now()
		if err := p.Wait(context.Background()); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
		if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
			t.Fatalf("wait %d returned after %v, want ~5ms", i, elapsed)
		}
	}
}

// TestPollTimerRespectsContext: cancellation interrupts a pending wait
// promptly, and the timer is reusable afterwards (the drain in Wait leaves
// it stopped, so the next Reset is race-free).
func TestPollTimerRespectsContext(t *testing.T) {
	p := newPollTimer(time.Hour)
	defer p.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if err := p.Wait(ctx); err != context.Canceled {
		t.Fatalf("wait = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled wait took %v", elapsed)
	}

	p.d = time.Millisecond
	if err := p.Wait(context.Background()); err != nil {
		t.Fatalf("wait after cancel: %v", err)
	}
}

// TestPollTimerDoesNotAllocatePerWait pins the time.After regression: the
// historical loop allocated a fresh runtime timer per poll (pending until it
// fired — a leak proportional to polls × in-flight shards). The reused
// timer must not allocate per iteration.
func TestPollTimerDoesNotAllocatePerWait(t *testing.T) {
	p := newPollTimer(10 * time.Microsecond)
	defer p.Stop()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		if err := p.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("pollTimer.Wait allocates %.1f objects per poll, want 0", allocs)
	}
}
