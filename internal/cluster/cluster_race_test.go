//go:build race

package cluster_test

// raceEnabled gates the million-point identity run and the speedup
// benchmarks out of `make race`: under the race detector they take minutes,
// and the small-grid tests exercise the same coordination paths.
const raceEnabled = true
