// Package cluster distributes knob-range design-space explorations across a
// fleet of cordobad workers. A coordinator splits the grid's shape-major
// enumeration into contiguous shape shards, fans them out as dse-shard jobs
// over the typed client package, and merges the returned survivor envelopes
// with the associative Pareto-envelope merge into a result identical to a
// single-node run.
//
// The subsystem leans on two properties the engine already guarantees:
//
//   - Rejection is final: a point above the current lower convex envelope is
//     above every later envelope, so per-shard envelopes lose nothing and
//     envelope(A ∪ B) = envelope(envelope(A) ∪ envelope(B)). Merging is
//     associative; the coordinator can fold worker envelopes in any arrival
//     order and normalize by shard position at the end.
//
//   - Shards keep global identity: a shard evaluates shapes [first,
//     first+count) with every point carrying its whole-grid index, so the
//     merged envelope tie-breaks coordinate duplicates exactly as the
//     single-node stream would ("first offer wins" in global order).
//
// Failure handling is checkpoint-first: workers checkpoint shard progress
// through the jobs subsystem, and when a worker stalls or dies the
// coordinator salvages the last checkpoint when the worker is still
// reachable, then requeues the shard (with the checkpoint attached) on the
// surviving workers.
package cluster

// Shard is one contiguous shape-range assignment of a sharded exploration.
type Shard struct {
	Index int // position in the plan, 0-based
	First int // first shape (inclusive)
	Count int // number of shapes
}

// Plan splits a grid of `shapes` shapes into at most n contiguous shards,
// balanced to within one shape. n < 1 collapses to a single shard; n >
// shapes yields one shard per shape. The concatenated shards cover [0,
// shapes) exactly, in order.
func Plan(shapes, n int) []Shard {
	if shapes <= 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > shapes {
		n = shapes
	}
	base, rem := shapes/n, shapes%n
	out := make([]Shard, n)
	first := 0
	for i := range out {
		count := base
		if i < rem {
			count++
		}
		out[i] = Shard{Index: i, First: first, Count: count}
		first += count
	}
	return out
}
