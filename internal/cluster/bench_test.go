package cluster_test

import (
	"context"
	"testing"

	"cordoba"
	"cordoba/internal/cluster"
	"cordoba/internal/server"
)

// BenchmarkClusterDSE compares a single-node walk of the 2^20-point
// acceptance grid against the same grid fanned out to three in-process
// worker daemons. Per-point compute dominates and shards are disjoint, so on
// parallel hardware the sharded run approaches a 3× speedup; the guarded
// baseline keeps the coordinator's fan-out overhead (dispatch, polling,
// envelope decode, merge) from regressing relative to the raw walk.
func BenchmarkClusterDSE(b *testing.B) {
	if raceEnabled {
		b.Skip("million-point grid is too slow under the race detector")
	}
	knobs := millionKnobs()
	g := gridFor(knobs)
	task := allKernels(b)

	b.Run("single", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cordoba.ExploreStreamAt(context.Background(), task, g, cordoba.FabCoal, 380, cordoba.StreamOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers3", func(b *testing.B) {
		urls := workerURLs(b, 3, server.Config{})
		coord := newCoordinator(b, urls, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := coord.Run(context.Background(), reqFor(knobs), task, 380, cluster.RunOptions{Shards: 3})
			if err != nil {
				b.Fatal(err)
			}
			if res.Retried != 0 {
				b.Fatalf("benchmark run retried %d shards", res.Retried)
			}
		}
	})
}

// BenchmarkClusterMerge isolates the coordinator's merge path: decoding
// three wire envelopes from a 2^20-point run and folding them into the
// whole-grid result. The shard walks happen once as setup; only the
// decode+merge is timed.
func BenchmarkClusterMerge(b *testing.B) {
	if raceEnabled {
		b.Skip("million-point setup is too slow under the race detector")
	}
	knobs := millionKnobs()
	g := gridFor(knobs)
	task := allKernels(b)
	shapes := len(knobs.MACArrays) * len(knobs.SRAMMB)

	plan := cluster.Plan(shapes, 3)
	parts := make([]*cordoba.StreamResult, len(plan))
	for i, sh := range plan {
		res, err := cordoba.ExploreStreamCheckpointed(context.Background(), task, g, cordoba.FabCoal, 380, cordoba.CheckpointOptions{
			Shard: &cordoba.StreamShard{First: sh.First, Count: sh.Count},
		})
		if err != nil {
			b.Fatal(err)
		}
		parts[i] = res
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded := make([]*cordoba.StreamResult, len(parts))
		for j, p := range parts {
			env := cluster.EnvelopeFromResult(plan[j].First, plan[j].Count, p)
			r, err := cluster.ResultFromEnvelope(env, task, 380)
			if err != nil {
				b.Fatal(err)
			}
			decoded[j] = r
		}
		if _, err := cordoba.MergeStreamResults(decoded); err != nil {
			b.Fatal(err)
		}
	}
}
