package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cordoba/api"
	"cordoba/client"
	"cordoba/internal/dse"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// Defaults applied by New.
const (
	DefaultHeartbeatEvery = 5 * time.Second
	DefaultPollEvery      = 150 * time.Millisecond
	DefaultShardTimeout   = 2 * time.Minute
	DefaultMaxAttempts    = 3
)

// Config tunes a Coordinator.
type Config struct {
	// Workers lists the worker daemons' base URLs. At least one is required.
	Workers []string
	// NewClient builds the typed client for one worker; nil selects
	// client.New with defaults. Tests substitute tuned retry/poll settings.
	NewClient func(url string) *client.Client
	// APIKey, when set, authenticates the coordinator to its workers as a
	// bearer token — required when workers run with a tenant key file that
	// doesn't admit anonymous callers. Ignored when NewClient is supplied.
	APIKey string
	// HeartbeatEvery is the membership probe cadence; <= 0 selects the
	// default. Heartbeats only feed the GET /v1/cluster listing — dispatch
	// discovers dead workers directly through transport errors.
	HeartbeatEvery time.Duration
	// PollEvery is the per-shard job status poll cadence; <= 0 selects the
	// default.
	PollEvery time.Duration
	// ShardTimeout bounds how long a dispatched shard may go without
	// progress before the coordinator salvages its checkpoint and requeues
	// it; <= 0 selects the default.
	ShardTimeout time.Duration
	// MaxAttempts bounds how many times one shard is attempted (worker
	// deaths do not consume attempts — those are bounded by the worker
	// count); < 1 selects the default.
	MaxAttempts int
	// Logger receives dispatch events; nil discards them.
	Logger *slog.Logger
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	url string
	cli *client.Client

	mu           sync.Mutex
	up           bool
	everBeat     bool
	lastBeat     time.Time
	shardsDone   int64
	shardsFailed int64
	shardSeconds float64
}

func (w *workerState) setUp(ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.up = ok
	if ok {
		w.everBeat = true
		w.lastBeat = time.Now().UTC()
	}
}

func (w *workerState) finished(ok bool, elapsed time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ok {
		w.shardsDone++
		w.shardSeconds += elapsed.Seconds()
	} else {
		w.shardsFailed++
	}
}

// Coordinator fans sharded explorations out to a fixed worker set and merges
// the returned envelopes. Safe for concurrent Runs; the worker set is fixed
// at construction.
type Coordinator struct {
	cfg     Config
	log     *slog.Logger
	workers []*workerState

	dispatched atomic.Int64
	retried    atomic.Int64
	merged     atomic.Int64

	hbStop chan struct{}
	hbWG   sync.WaitGroup
	hbOnce sync.Once
}

// New builds a coordinator over the configured workers.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one worker URL")
	}
	if cfg.NewClient == nil {
		var opts []client.Option
		if cfg.APIKey != "" {
			opts = append(opts, client.WithAPIKey(cfg.APIKey))
		}
		cfg.NewClient = func(url string) *client.Client { return client.New(url, opts...) }
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = DefaultHeartbeatEvery
	}
	if cfg.PollEvery <= 0 {
		cfg.PollEvery = DefaultPollEvery
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = DefaultShardTimeout
	}
	if cfg.MaxAttempts < 1 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	c := &Coordinator{cfg: cfg, log: log, hbStop: make(chan struct{})}
	for _, u := range cfg.Workers {
		c.workers = append(c.workers, &workerState{url: u, cli: cfg.NewClient(u)})
	}
	return c, nil
}

// Start launches the heartbeat loop feeding the membership listing.
func (c *Coordinator) Start() {
	c.hbWG.Add(1)
	go func() {
		defer c.hbWG.Done()
		c.beat()
		t := time.NewTicker(c.cfg.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-c.hbStop:
				return
			case <-t.C:
				c.beat()
			}
		}
	}()
}

// Stop terminates the heartbeat loop. Safe to call more than once.
func (c *Coordinator) Stop() {
	c.hbOnce.Do(func() { close(c.hbStop) })
	c.hbWG.Wait()
}

// beat probes every worker's /healthz concurrently.
func (c *Coordinator) beat() {
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HeartbeatEvery)
			defer cancel()
			w.setUp(w.cli.Healthz(ctx) == nil)
		}(w)
	}
	wg.Wait()
}

// Stats snapshots the coordinator for GET /v1/cluster and the Prometheus
// cordobad_cluster_* metrics.
func (c *Coordinator) Stats() api.ClusterStatus {
	st := api.ClusterStatus{
		Role:             "coordinator",
		ShardsDispatched: c.dispatched.Load(),
		ShardsRetried:    c.retried.Load(),
		ShardsMerged:     c.merged.Load(),
	}
	for _, w := range c.workers {
		w.mu.Lock()
		row := api.ClusterWorker{
			URL:          w.url,
			State:        "down",
			ShardsDone:   w.shardsDone,
			ShardsFailed: w.shardsFailed,
		}
		if w.up {
			row.State = "up"
		}
		if w.everBeat {
			t := w.lastBeat
			row.LastHeartbeat = &t
		}
		if w.shardsDone > 0 {
			row.AvgShardS = w.shardSeconds / float64(w.shardsDone)
		}
		w.mu.Unlock()
		st.Workers = append(st.Workers, row)
	}
	return st
}

// Checkpoint is the coordinator's resumable state for one sharded run: the
// fingerprint binding it to the request and plan, and the envelopes of the
// shards already finished. Requeued coordinator jobs skip finished shards.
type Checkpoint struct {
	Fingerprint string              `json:"fingerprint"`
	Shards      int                 `json:"shards"`
	Done        []api.ShardEnvelope `json:"done"`
}

// Progress is a live view of a sharded run, reported after every finished
// shard. Point counters aggregate the finished shards' envelopes.
type Progress struct {
	ShardsDone  int
	ShardsTotal int
	Streamed    int64
	Pruned      int64
	Kept        int
}

// RunOptions tunes one sharded run.
type RunOptions struct {
	// Shards is the requested fan-out; Plan clamps it to [1, shapes].
	Shards int
	// Resume skips the shards a previous interrupted run already finished.
	Resume *Checkpoint
	// OnShardDone, when set, receives the run's checkpoint after every
	// finished shard; an error aborts the run.
	OnShardDone func(*Checkpoint) error
	// OnProgress, when set, observes progress after every finished shard.
	OnProgress func(Progress)
}

// Result is a finished sharded run.
type Result struct {
	// Merged is the whole-grid result, identical to a single-node run (the
	// floating-point sums to within re-association, everything else exactly).
	Merged *dse.StreamResult
	// Envelopes holds the per-shard envelopes in shard order.
	Envelopes []api.ShardEnvelope
	// Retried counts shard attempts beyond the first dispatch.
	Retried int
}

// fingerprint binds a coordinator checkpoint to its request and plan.
func fingerprint(req api.DSERequest, shards int) string {
	req.Shards = 0
	req.Shard = nil
	b, err := json.Marshal(struct {
		Req    api.DSERequest `json:"req"`
		Shards int            `json:"shards"`
	}{req, shards})
	if err != nil {
		panic(fmt.Sprintf("cluster: fingerprint marshal: %v", err)) // plain values; cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// attempt is one dispatch of one shard.
type attempt struct {
	shard  Shard
	tries  int // completed attempts so far (worker deaths excluded)
	resume json.RawMessage
}

// outcomeKind classifies how a dispatch ended.
type outcomeKind int

const (
	outcomeOK         outcomeKind = iota
	outcomeRequeue                // shard stalled or was canceled — try again elsewhere
	outcomeWorkerDown             // transport failure — requeue, retire the worker
	outcomeFatal                  // deterministic failure — retrying cannot help
)

type outcome struct {
	kind   outcomeKind
	at     attempt
	env    api.ShardEnvelope
	err    error
	worker *workerState
}

// Run executes one sharded exploration: plan, fan out, merge. The request
// must be a fully defaulted knobs request (the same body a worker's shard
// job validates); task and ci are the coordinator's resolved task and
// use-phase intensity, used to rebuild and merge the shard results.
func (c *Coordinator) Run(ctx context.Context, req api.DSERequest, task workload.Task, ci units.CarbonIntensity, opts RunOptions) (*Result, error) {
	if req.Knobs == nil {
		return nil, fmt.Errorf("cluster: sharded runs need a knobs grid")
	}
	shapes := len(req.Knobs.MACArrays) * len(req.Knobs.SRAMMB)
	plan := Plan(shapes, opts.Shards)
	if len(plan) == 0 {
		return nil, fmt.Errorf("cluster: knobs grid has no shapes")
	}
	fp := fingerprint(req, len(plan))

	done := make(map[int]api.ShardEnvelope, len(plan))
	if cp := opts.Resume; cp != nil {
		if cp.Fingerprint != fp {
			return nil, fmt.Errorf("cluster: checkpoint fingerprint %.12s does not match this run (%.12s)", cp.Fingerprint, fp)
		}
		if cp.Shards != len(plan) {
			return nil, fmt.Errorf("cluster: checkpoint has %d shards, plan has %d", cp.Shards, len(plan))
		}
		for _, env := range cp.Done {
			matched := false
			for _, sh := range plan {
				if sh.First == env.First && sh.Count == env.Count {
					done[sh.Index] = env
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("cluster: checkpoint shard [%d,%d) not in this run's plan", env.First, env.First+env.Count)
			}
		}
	}

	var pending []attempt
	for _, sh := range plan {
		if _, ok := done[sh.Index]; !ok {
			pending = append(pending, attempt{shard: sh})
		}
	}

	retried := 0
	if len(pending) > 0 {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()

		// Buffered far past the worst case so requeues never block the
		// dispatch loop: every shard retried to its attempt bound plus one
		// requeue per worker death.
		capacity := len(pending)*c.cfg.MaxAttempts + len(c.workers)
		attempts := make(chan attempt, capacity)
		outcomes := make(chan outcome, capacity)
		for _, at := range pending {
			attempts <- at
		}

		var wg sync.WaitGroup
		for _, w := range c.workers {
			wg.Add(1)
			go func(w *workerState) {
				defer wg.Done()
				for {
					select {
					case <-runCtx.Done():
						return
					case at := <-attempts:
						out := c.runShard(runCtx, w, req, at)
						select {
						case outcomes <- out:
						case <-runCtx.Done():
							return
						}
						if out.kind == outcomeWorkerDown {
							return // this worker is unreachable — stop pulling work
						}
					}
				}
			}(w)
		}
		defer wg.Wait()

		live := len(c.workers)
		remaining := len(pending)
		for remaining > 0 {
			if live == 0 {
				cancel()
				return nil, fmt.Errorf("cluster: no reachable workers left, %d of %d shards unfinished", remaining, len(plan))
			}
			var out outcome
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case out = <-outcomes:
			}
			sh := out.at.shard
			switch out.kind {
			case outcomeOK:
				done[sh.Index] = out.env
				remaining--
				c.log.Info("shard finished", "shard", sh.Index, "worker", out.worker.url)
				if opts.OnShardDone != nil {
					cp := &Checkpoint{Fingerprint: fp, Shards: len(plan), Done: envelopesInOrder(plan, done)}
					if err := opts.OnShardDone(cp); err != nil {
						cancel()
						return nil, fmt.Errorf("cluster: checkpoint callback: %w", err)
					}
				}
				if opts.OnProgress != nil {
					opts.OnProgress(progressOf(len(plan), done))
				}
			case outcomeRequeue:
				tries := out.at.tries + 1
				if tries >= c.cfg.MaxAttempts {
					cancel()
					return nil, fmt.Errorf("cluster: shard [%d,%d) failed %d attempts: %v", sh.First, sh.First+sh.Count, tries, out.err)
				}
				retried++
				c.retried.Add(1)
				c.log.Warn("shard requeued", "shard", sh.Index, "worker", out.worker.url, "err", out.err)
				attempts <- attempt{shard: sh, tries: tries, resume: out.at.resume}
			case outcomeWorkerDown:
				live--
				out.worker.setUp(false)
				retried++
				c.retried.Add(1)
				c.log.Warn("worker lost mid-shard, requeued", "shard", sh.Index, "worker", out.worker.url, "err", out.err)
				attempts <- attempt{shard: sh, tries: out.at.tries, resume: out.at.resume}
			case outcomeFatal:
				cancel()
				return nil, out.err
			}
		}
		cancel()
	}

	// Merge in shard order: disjoint shape ranges make the merge exact, and
	// ascending order reproduces the single-node stream's tie-breaks.
	envs := envelopesInOrder(plan, done)
	parts := make([]*dse.StreamResult, len(envs))
	for i, env := range envs {
		r, err := ResultFromEnvelope(env, task, ci)
		if err != nil {
			return nil, err
		}
		parts[i] = r
	}
	merged, err := dse.MergeShardResults(parts)
	if err != nil {
		return nil, err
	}
	c.merged.Add(int64(len(envs)))
	return &Result{Merged: merged, Envelopes: envs, Retried: retried}, nil
}

// runShard dispatches one shard to one worker and babysits it to a terminal
// state, salvaging the worker's checkpoint if the shard stalls.
func (c *Coordinator) runShard(ctx context.Context, w *workerState, req api.DSERequest, at attempt) outcome {
	req.Shards = 0
	req.Shard = &api.ShardSpec{First: at.shard.First, Count: at.shard.Count, Resume: at.resume}
	c.dispatched.Add(1)

	start := time.Now()
	st, err := c.call(ctx, func(cctx context.Context) (api.JobStatus, error) { return w.cli.SubmitJob(cctx, req) })
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			if apiErr.Status >= 400 && apiErr.Status < 500 && apiErr.Status != http.StatusTooManyRequests {
				// The worker understood the request and rejected it; every
				// worker would — do not burn retries.
				return outcome{kind: outcomeFatal, at: at, err: fmt.Errorf("cluster: worker %s rejected shard [%d,%d): %w", w.url, at.shard.First, at.shard.First+at.shard.Count, err), worker: w}
			}
			w.finished(false, 0)
			return outcome{kind: outcomeRequeue, at: at, err: err, worker: w}
		}
		w.finished(false, 0)
		return outcome{kind: outcomeWorkerDown, at: at, err: err, worker: w}
	}

	lastChange := time.Now()
	var lastProgress api.JobProgress
	poll := newPollTimer(c.cfg.PollEvery)
	defer poll.Stop()
	for {
		if err := poll.Wait(ctx); err != nil {
			return outcome{kind: outcomeRequeue, at: at, err: err, worker: w}
		}
		js, err := c.call(ctx, func(cctx context.Context) (api.JobStatus, error) { return w.cli.JobStatus(cctx, st.ID) })
		if err != nil {
			w.finished(false, 0)
			return outcome{kind: outcomeWorkerDown, at: at, err: err, worker: w}
		}
		switch js.State {
		case api.JobSucceeded:
			env, err := c.callEnv(ctx, w, st.ID)
			if err != nil {
				w.finished(false, 0)
				return outcome{kind: outcomeWorkerDown, at: at, err: err, worker: w}
			}
			w.finished(true, time.Since(start))
			return outcome{kind: outcomeOK, at: at, env: *env, worker: w}
		case api.JobFailed:
			// Shard jobs are deterministic: a failure here fails everywhere.
			return outcome{kind: outcomeFatal, at: at, err: fmt.Errorf("cluster: shard [%d,%d) failed on %s: %s", at.shard.First, at.shard.First+at.shard.Count, w.url, js.Error), worker: w}
		case api.JobCanceled:
			w.finished(false, 0)
			return outcome{kind: outcomeRequeue, at: at, err: fmt.Errorf("cluster: shard job canceled on %s", w.url), worker: w}
		}
		if js.Progress != lastProgress {
			lastProgress = js.Progress
			lastChange = time.Now()
		}
		if time.Since(lastChange) > c.cfg.ShardTimeout {
			// Stalled: salvage the worker's last checkpoint if it is still
			// reachable, cancel the stuck job, and requeue with the salvage.
			resume := at.resume
			if cp, err := c.callCP(ctx, w, st.ID); err == nil && len(cp) > 0 {
				resume = cp
			}
			_, _ = c.call(ctx, func(cctx context.Context) (api.JobStatus, error) { return w.cli.CancelJob(cctx, st.ID) })
			w.finished(false, 0)
			at.resume = resume
			return outcome{kind: outcomeRequeue, at: at, err: fmt.Errorf("cluster: shard made no progress for %v on %s", c.cfg.ShardTimeout, w.url), worker: w}
		}
	}
}

// pollTimer is a reusable poll-interval timer. The historical loop selected
// on time.After(PollEvery) every iteration; each call allocates a fresh
// runtime timer that is not collected until it fires, so every in-flight
// shard leaked one pending timer per past poll for up to PollEvery. One
// timer re-armed per wait keeps the watch loop allocation-free.
type pollTimer struct {
	t *time.Timer
	d time.Duration
}

func newPollTimer(d time.Duration) *pollTimer {
	t := time.NewTimer(0)
	if !t.Stop() {
		<-t.C
	}
	return &pollTimer{t: t, d: d}
}

// Wait blocks for one poll interval or until ctx is done, returning ctx's
// error in the latter case. The timer is armed on entry — the interval runs
// from after the loop body, matching the historical time.After cadence —
// and is always left stopped and drained, so re-arming is race-free.
func (p *pollTimer) Wait(ctx context.Context) error {
	p.t.Reset(p.d)
	select {
	case <-ctx.Done():
		if !p.t.Stop() {
			<-p.t.C
		}
		return ctx.Err()
	case <-p.t.C:
		return nil
	}
}

// Stop releases the timer; Wait must not be called afterwards.
func (p *pollTimer) Stop() { p.t.Stop() }

// call runs one worker RPC under a ShardTimeout-bounded child context, so a
// hung connection surfaces as a worker loss instead of wedging the run.
func (c *Coordinator) call(ctx context.Context, f func(context.Context) (api.JobStatus, error)) (api.JobStatus, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	return f(cctx)
}

func (c *Coordinator) callEnv(ctx context.Context, w *workerState, id string) (*api.ShardEnvelope, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	return w.cli.ShardResult(cctx, id)
}

func (c *Coordinator) callCP(ctx context.Context, w *workerState, id string) (json.RawMessage, error) {
	cctx, cancel := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer cancel()
	return w.cli.JobCheckpoint(cctx, id)
}

// envelopesInOrder lists the finished envelopes in shard order.
func envelopesInOrder(plan []Shard, done map[int]api.ShardEnvelope) []api.ShardEnvelope {
	out := make([]api.ShardEnvelope, 0, len(done))
	for _, sh := range plan {
		if env, ok := done[sh.Index]; ok {
			out = append(out, env)
		}
	}
	return out
}

// progressOf aggregates the finished shards' counters.
func progressOf(total int, done map[int]api.ShardEnvelope) Progress {
	p := Progress{ShardsDone: len(done), ShardsTotal: total}
	for _, env := range done {
		p.Streamed += env.PointsStreamed
		p.Pruned += env.PointsStreamed - int64(len(env.Survivors))
		p.Kept += len(env.Survivors)
	}
	return p
}

// discardHandler is a no-op slog handler (slog.DiscardHandler arrived after
// the Go version this module pins).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
