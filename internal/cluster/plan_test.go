package cluster

import "testing"

// TestPlan: shards cover [0, shapes) contiguously in order, balanced to
// within one shape, with n clamped to [1, shapes].
func TestPlan(t *testing.T) {
	cases := []struct {
		shapes, n, want int
	}{
		{12, 3, 3},
		{12, 5, 5},
		{12, 1, 1},
		{12, 0, 1},   // n < 1 collapses to one shard
		{12, -4, 1},  // so does a negative request
		{12, 40, 12}, // n > shapes clamps to one shard per shape
		{1, 8, 1},
		{1024, 3, 3},
	}
	for _, tc := range cases {
		plan := Plan(tc.shapes, tc.n)
		if len(plan) != tc.want {
			t.Fatalf("Plan(%d, %d) has %d shards, want %d", tc.shapes, tc.n, len(plan), tc.want)
		}
		next := 0
		min, max := tc.shapes, 0
		for i, sh := range plan {
			if sh.Index != i {
				t.Fatalf("Plan(%d, %d)[%d].Index = %d", tc.shapes, tc.n, i, sh.Index)
			}
			if sh.First != next {
				t.Fatalf("Plan(%d, %d)[%d] starts at %d, want %d (shards must be contiguous)",
					tc.shapes, tc.n, i, sh.First, next)
			}
			if sh.Count < 1 {
				t.Fatalf("Plan(%d, %d)[%d] is empty", tc.shapes, tc.n, i)
			}
			if sh.Count < min {
				min = sh.Count
			}
			if sh.Count > max {
				max = sh.Count
			}
			next += sh.Count
		}
		if next != tc.shapes {
			t.Fatalf("Plan(%d, %d) covers %d shapes", tc.shapes, tc.n, next)
		}
		if max-min > 1 {
			t.Fatalf("Plan(%d, %d) is unbalanced: shard sizes span [%d, %d]", tc.shapes, tc.n, min, max)
		}
	}
	if got := Plan(0, 3); got != nil {
		t.Fatalf("Plan(0, 3) = %v, want nil", got)
	}
	if got := Plan(-2, 3); got != nil {
		t.Fatalf("Plan(-2, 3) = %v, want nil", got)
	}
}
