package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cordoba"
	"cordoba/api"
	"cordoba/client"
	"cordoba/internal/cluster"
	"cordoba/internal/server"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newWorker assembles one in-process cordobad worker behind httptest.
func newWorker(t testing.TB, cfg server.Config) *httptest.Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	return ts
}

func workerURLs(t testing.TB, n int, cfg server.Config) []string {
	urls := make([]string, n)
	for i := range urls {
		urls[i] = newWorker(t, cfg).URL
	}
	return urls
}

// newCoordinator builds a test-tuned coordinator over the given workers.
func newCoordinator(t testing.TB, urls []string, tune func(*cluster.Config)) *cluster.Coordinator {
	t.Helper()
	cfg := cluster.Config{
		Workers:        urls,
		PollEvery:      10 * time.Millisecond,
		HeartbeatEvery: 250 * time.Millisecond,
		Logger:         quietLogger(),
	}
	if tune != nil {
		tune(&cfg)
	}
	c, err := cluster.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Stop)
	return c
}

func allKernels(t testing.TB) cordoba.Task {
	t.Helper()
	task, err := cordoba.PaperTask(cordoba.TaskAllKernels)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

// smallKnobs is a 12-shape, 48-point grid — big enough for several shards,
// small enough to run under the race detector.
func smallKnobs() *api.KnobRangeSpec {
	return &api.KnobRangeSpec{
		MACArrays: []int{1, 2, 4, 8},
		SRAMMB:    []float64{1, 2, 4},
		VDDScales: []float64{1.0, 0.9},
		Nodes:     []string{"7nm", "5nm"},
	}
}

// reqFor renders knobs as the fully defaulted request body a worker's shard
// job validates (the same defaults POST /v1/jobs applies on submission).
func reqFor(knobs *api.KnobRangeSpec) api.DSERequest {
	return api.DSERequest{
		Task:    "All kernels",
		Process: "7nm",
		Fab:     "coal-heavy",
		CIUse:   380,
		Knobs:   knobs,
		Sweep:   &api.SweepSpec{Lo: 1, Hi: 1e12, Points: 13},
	}
}

// gridFor mirrors the server's knobGrid resolution of the same knobs.
func gridFor(knobs *api.KnobRangeSpec) cordoba.KnobGrid {
	return cordoba.KnobGrid{
		MACArrays: knobs.MACArrays,
		SRAMMB:    knobs.SRAMMB,
		VDDScales: knobs.VDDScales,
		Nodes:     knobs.Nodes,
	}
}

// singleNode runs the whole grid on this process — the reference every
// sharded run must reproduce.
func singleNode(t testing.TB, g cordoba.KnobGrid) *cordoba.StreamResult {
	t.Helper()
	res, err := cordoba.ExploreStreamAt(context.Background(), allKernels(t), g, cordoba.FabCoal, 380, cordoba.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// assertMatchesSingleNode: the survivor envelope is byte-identical (points
// and global IDs), the integer counters exact, and the floating-point
// aggregate sums equal to within re-association.
func assertMatchesSingleNode(t testing.TB, merged, single *cordoba.StreamResult) {
	t.Helper()
	mb, err := json.Marshal(merged.Space.Points)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := json.Marshal(single.Space.Points)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mb, sb) {
		t.Fatalf("merged survivor envelope is not byte-identical to single node:\nmerged: %.200s\nsingle: %.200s", mb, sb)
	}
	if !reflect.DeepEqual(merged.IDs, single.IDs) {
		t.Fatalf("merged survivor IDs = %v, single node = %v", merged.IDs, single.IDs)
	}
	if merged.Total != single.Total || merged.PrePruned != single.PrePruned || merged.Offered != single.Offered {
		t.Fatalf("counters differ: merged total/prepruned/offered = %d/%d/%d, single = %d/%d/%d",
			merged.Total, merged.PrePruned, merged.Offered, single.Total, single.PrePruned, single.Offered)
	}
	if !closeRel(merged.SumEDP, single.SumEDP) || !closeRel(merged.SumEmbD, single.SumEmbD) {
		t.Fatalf("aggregate sums diverge: merged %g/%g, single %g/%g",
			merged.SumEDP, merged.SumEmbD, single.SumEDP, single.SumEmbD)
	}
}

func closeRel(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// TestShardedRunMatchesSingleNode: three in-process workers, five shards,
// merged result identical to one node running the whole grid.
func TestShardedRunMatchesSingleNode(t *testing.T) {
	urls := workerURLs(t, 3, server.Config{CheckpointEvery: 2})
	coord := newCoordinator(t, urls, nil)

	knobs := smallKnobs()
	res, err := coord.Run(context.Background(), reqFor(knobs), allKernels(t), 380, cluster.RunOptions{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retried != 0 {
		t.Fatalf("healthy run retried %d shards", res.Retried)
	}
	if len(res.Envelopes) != 5 {
		t.Fatalf("got %d envelopes, want 5", len(res.Envelopes))
	}
	assertMatchesSingleNode(t, res.Merged, singleNode(t, gridFor(knobs)))

	st := coord.Stats()
	if st.Role != "coordinator" || st.ShardsDispatched != 5 || st.ShardsMerged != 5 || st.ShardsRetried != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedRunMillionPoints is the scale acceptance check: a 2^20-point
// grid sharded across three workers merges byte-identically to a single-node
// ExploreStream. Progress and checkpoints flow the whole way. Skipped under
// the race detector, where the grid walk takes minutes.
func TestShardedRunMillionPoints(t *testing.T) {
	if raceEnabled {
		t.Skip("million-point grid is too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	knobs := millionKnobs()
	g := gridFor(knobs)
	if g.Size() != 1<<20 {
		t.Fatalf("grid has %d points, want %d", g.Size(), 1<<20)
	}

	urls := workerURLs(t, 3, server.Config{})
	coord := newCoordinator(t, urls, nil)

	var last cluster.Progress
	res, err := coord.Run(context.Background(), reqFor(knobs), allKernels(t), 380, cluster.RunOptions{
		Shards:     3,
		OnProgress: func(p cluster.Progress) { last = p },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envelopes) != 3 || res.Retried != 0 {
		t.Fatalf("envelopes = %d, retried = %d", len(res.Envelopes), res.Retried)
	}
	if last.ShardsDone != 3 || last.ShardsTotal != 3 || last.Streamed != 1<<20 {
		t.Fatalf("final progress = %+v", last)
	}
	assertMatchesSingleNode(t, res.Merged, singleNode(t, g))
}

// millionKnobs is a 1024-shape × 1024-cell grid: exactly 2^20 points, the
// default single-node grid cap.
func millionKnobs() *api.KnobRangeSpec {
	macs := make([]int, 32)
	srams := make([]float64, 32)
	for i := range macs {
		macs[i] = i + 1
		srams[i] = float64(i + 1)
	}
	vdds := make([]float64, 512)
	for i := range vdds {
		vdds[i] = 0.75 + float64(i)/2048
	}
	return &api.KnobRangeSpec{MACArrays: macs, SRAMMB: srams, VDDScales: vdds, Nodes: []string{"7nm", "5nm"}}
}

// TestWorkerLossRequeues kills one worker mid-shard (its transport starts
// aborting connections right after it accepts a shard) and checks the run
// still converges to the single-node result via requeue on the survivors.
func TestWorkerLossRequeues(t *testing.T) {
	urls := workerURLs(t, 2, server.Config{CheckpointEvery: 2})

	// The third worker accepts exactly one job submission, then drops every
	// connection — a process death right after taking a shard.
	dying := server.New(server.Config{Logger: quietLogger()})
	var killed atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if killed.Load() {
			panic(http.ErrAbortHandler)
		}
		if r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" {
			killed.Store(true) // serve this submit, abort everything after
		}
		dying.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ts.Close()
		_ = dying.Close()
	})
	urls = append(urls, ts.URL)

	coord := newCoordinator(t, urls, nil)
	knobs := smallKnobs()
	res, err := coord.Run(context.Background(), reqFor(knobs), allKernels(t), 380, cluster.RunOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Fatal("the dying worker never received a shard — the test exercised nothing")
	}
	if res.Retried < 1 {
		t.Fatalf("retried = %d, want >= 1 after a worker death", res.Retried)
	}
	assertMatchesSingleNode(t, res.Merged, singleNode(t, gridFor(knobs)))
}

// genCheckpoint runs a shard locally until its first checkpoint and returns
// that snapshot's JSON — a real mid-shard checkpoint for the fake worker to
// serve.
func genCheckpoint(t *testing.T, g cordoba.KnobGrid, first, count int) json.RawMessage {
	t.Helper()
	var captured json.RawMessage
	errStop := errors.New("captured")
	_, err := cordoba.ExploreStreamCheckpointed(context.Background(), allKernels(t), g, cordoba.FabCoal, 380,
		cordoba.CheckpointOptions{
			Every: 1,
			Shard: &cordoba.StreamShard{First: first, Count: count},
			OnCheckpoint: func(st *cordoba.StreamCheckpoint) error {
				b, err := json.Marshal(st)
				if err != nil {
					return err
				}
				captured = b
				return errStop
			},
		})
	if !errors.Is(err, errStop) {
		t.Fatalf("expected the capture sentinel, got %v", err)
	}
	return captured
}

// TestStallSalvagesCheckpoint: a worker that accepts a shard and then stops
// making progress gets its checkpoint salvaged and its shard requeued; the
// replacement resumes from the salvage and the run converges to the
// single-node result.
func TestStallSalvagesCheckpoint(t *testing.T) {
	knobs := smallKnobs()
	g := gridFor(knobs)

	// Mid-shard checkpoints for both halves of a 2-shard plan — the fake
	// worker serves whichever shard it is assigned.
	checkpoints := map[int]json.RawMessage{
		0: genCheckpoint(t, g, 0, 6),
		6: genCheckpoint(t, g, 6, 6),
	}

	var (
		submitted  atomic.Bool
		shardFirst atomic.Int64
		cpFetches  atomic.Int64
	)
	writeStatus := func(w http.ResponseWriter, code int, st api.JobStatus) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(st)
	}
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			w.Write([]byte(`{"status":"ok"}`))
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			if submitted.Swap(true) {
				// Second assignment: this worker is done pretending — abort
				// so the coordinator retires it and the real worker finishes.
				panic(http.ErrAbortHandler)
			}
			var req api.DSERequest
			body, _ := io.ReadAll(r.Body)
			_ = json.Unmarshal(body, &req)
			shardFirst.Store(int64(req.Shard.First))
			writeStatus(w, http.StatusAccepted, api.JobStatus{ID: "stall-1", Kind: "dse-shard", State: api.JobQueued})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/stall-1":
			// Running, forever, with frozen progress: a stalled shard.
			writeStatus(w, http.StatusOK, api.JobStatus{ID: "stall-1", Kind: "dse-shard", State: api.JobRunning,
				Progress: api.JobProgress{ShapesDone: 1, ShapesTotal: 6}})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/stall-1/checkpoint":
			cpFetches.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.Write(checkpoints[int(shardFirst.Load())])
		case r.Method == http.MethodDelete && r.URL.Path == "/v1/jobs/stall-1":
			writeStatus(w, http.StatusOK, api.JobStatus{ID: "stall-1", Kind: "dse-shard", State: api.JobCanceled})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(fake.Close)

	urls := []string{newWorker(t, server.Config{CheckpointEvery: 2}).URL, fake.URL}
	coord := newCoordinator(t, urls, func(cfg *cluster.Config) {
		cfg.ShardTimeout = 200 * time.Millisecond
		cfg.PollEvery = 25 * time.Millisecond
	})

	res, err := coord.Run(context.Background(), reqFor(knobs), allKernels(t), 380, cluster.RunOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !submitted.Load() {
		t.Fatal("the stalling worker never received a shard — the test exercised nothing")
	}
	if cpFetches.Load() < 1 {
		t.Fatal("the coordinator never salvaged the stalled worker's checkpoint")
	}
	if res.Retried < 1 {
		t.Fatalf("retried = %d, want >= 1 after a stall", res.Retried)
	}
	assertMatchesSingleNode(t, res.Merged, singleNode(t, g))
}

// TestCoordinatorResume: a run interrupted after its first finished shard
// resumes from the coordinator checkpoint, skipping the finished shard, and
// still merges to the single-node result. A checkpoint from a different
// request is rejected by fingerprint.
func TestCoordinatorResume(t *testing.T) {
	urls := workerURLs(t, 2, server.Config{CheckpointEvery: 2})
	coord := newCoordinator(t, urls, nil)

	knobs := smallKnobs()
	req := reqFor(knobs)
	task := allKernels(t)

	var captured *cluster.Checkpoint
	errStop := errors.New("interrupted")
	_, err := coord.Run(context.Background(), req, task, 380, cluster.RunOptions{
		Shards: 4,
		OnShardDone: func(cp *cluster.Checkpoint) error {
			captured = cp
			return errStop
		},
	})
	if err == nil || !errors.Is(err, errStop) {
		t.Fatalf("interrupted run returned %v", err)
	}
	if captured == nil || len(captured.Done) != 1 || captured.Shards != 4 {
		t.Fatalf("captured checkpoint = %+v", captured)
	}

	res, err := coord.Run(context.Background(), req, task, 380, cluster.RunOptions{Shards: 4, Resume: captured})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Envelopes) != 4 {
		t.Fatalf("resumed run has %d envelopes, want 4", len(res.Envelopes))
	}
	assertMatchesSingleNode(t, res.Merged, singleNode(t, gridFor(knobs)))

	// A checkpoint taken for different parameters must not resume this run.
	other := *captured
	other.Fingerprint = "0000"
	if _, err := coord.Run(context.Background(), req, task, 380, cluster.RunOptions{Shards: 4, Resume: &other}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched checkpoint resumed anyway: %v", err)
	}
}

// TestHeartbeatMembership: the membership listing tracks which workers
// answer /healthz.
func TestHeartbeatMembership(t *testing.T) {
	up := newWorker(t, server.Config{})
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // a worker that is already gone

	coord := newCoordinator(t, []string{up.URL, down.URL}, func(cfg *cluster.Config) {
		cfg.HeartbeatEvery = 50 * time.Millisecond
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := coord.Stats()
		if len(st.Workers) == 2 && st.Workers[0].State == "up" && st.Workers[1].State == "down" &&
			st.Workers[0].LastHeartbeat != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never settled: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterEndToEnd drives the whole distributed surface over HTTP: a
// typed client submits a sharded job to a coordinator daemon, which fans it
// out to two worker daemons; the job's streamed progress reports the shard
// fan-out, the merged result matches a standalone daemon's synchronous
// answer, and the coordinator's metrics account for every shard.
func TestClusterEndToEnd(t *testing.T) {
	workers := workerURLs(t, 2, server.Config{Role: "worker"})
	coordSrv := server.New(server.Config{
		Role:           "coordinator",
		ClusterWorkers: workers,
		HeartbeatEvery: 50 * time.Millisecond,
		Logger:         quietLogger(),
	})
	ts := httptest.NewServer(coordSrv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = coordSrv.Close()
	})
	cli := client.New(ts.URL, client.WithPollInterval(10*time.Millisecond))
	ctx := context.Background()

	cs, err := cli.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Role != "coordinator" || len(cs.Workers) != 2 {
		t.Fatalf("cluster status = %+v", cs)
	}

	req := reqFor(smallKnobs())
	req.Shards = 5
	st, err := cli.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != "dse-cluster" {
		t.Fatalf("job kind = %q, want dse-cluster", st.Kind)
	}
	var shardsTotal int
	fin, err := cli.WaitJobProgress(ctx, st.ID, func(s api.JobStatus) {
		if s.Progress.ShardsTotal > shardsTotal {
			shardsTotal = s.Progress.ShardsTotal
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != api.JobSucceeded {
		t.Fatalf("job ended %q: %s", fin.State, fin.Error)
	}
	if shardsTotal != 5 || fin.Progress.ShardsDone != 5 {
		t.Fatalf("shard progress: saw total %d, final done %d, want 5/5", shardsTotal, fin.Progress.ShardsDone)
	}
	got, err := cli.JobResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	// The reference: the same request answered synchronously by a
	// standalone daemon that never heard of shards.
	standalone := client.New(newWorker(t, server.Config{}).URL)
	want, err := standalone.DSE(ctx, reqFor(smallKnobs()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Points, want.Points) {
		t.Fatalf("merged points differ from standalone:\ngot:  %+v\nwant: %+v", got.Points, want.Points)
	}
	if !reflect.DeepEqual(got.EverOptimal, want.EverOptimal) {
		t.Fatalf("ever-optimal sets differ: %v vs %v", got.EverOptimal, want.EverOptimal)
	}
	if got.PointsStreamed != want.PointsStreamed || got.PointsPruned != want.PointsPruned ||
		got.EliminatedFraction != want.EliminatedFraction {
		t.Fatalf("counters differ: %d/%d/%g vs %d/%d/%g",
			got.PointsStreamed, got.PointsPruned, got.EliminatedFraction,
			want.PointsStreamed, want.PointsPruned, want.EliminatedFraction)
	}
	if len(got.Sweep) != len(want.Sweep) {
		t.Fatalf("sweep lengths differ: %d vs %d", len(got.Sweep), len(want.Sweep))
	}
	for i := range got.Sweep {
		g, w := got.Sweep[i], want.Sweep[i]
		if g.OptimalID != w.OptimalID || g.TCDPGS != w.TCDPGS || !closeRel(g.MeanTCDPGS, w.MeanTCDPGS) {
			t.Fatalf("sweep[%d] differs: %+v vs %+v", i, g, w)
		}
	}

	cs, err = cli.ClusterStatus(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cs.ShardsMerged != 5 || cs.ShardsDispatched != 5 {
		t.Fatalf("post-run stats = %+v", cs)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"cordobad_cluster_shards_merged_total 5",
		"cordobad_cluster_shards_dispatched_total 5",
		`cordobad_cluster_worker_up{worker="` + workers[0] + `"} 1`,
	} {
		if !strings.Contains(string(body), frag) {
			t.Fatalf("metrics missing %q:\n%s", frag, body)
		}
	}

	// A worker also answers shard jobs directly through the typed client.
	wcli := client.New(workers[0], client.WithPollInterval(10*time.Millisecond))
	sreq := reqFor(smallKnobs())
	sreq.Shard = &api.ShardSpec{First: 3, Count: 2}
	sst, err := wcli.SubmitJob(ctx, sreq)
	if err != nil {
		t.Fatal(err)
	}
	if sst.Kind != "dse-shard" {
		t.Fatalf("worker job kind = %q, want dse-shard", sst.Kind)
	}
	if _, err := wcli.WaitJob(ctx, sst.ID); err != nil {
		t.Fatal(err)
	}
	env, err := wcli.ShardResult(ctx, sst.ID)
	if err != nil {
		t.Fatal(err)
	}
	cells := gridFor(smallKnobs()).Size() / 12
	if env.First != 3 || env.Count != 2 || env.PointsStreamed != 2*cells {
		t.Fatalf("shard envelope = first %d count %d streamed %d, want 3/2/%d",
			env.First, env.Count, env.PointsStreamed, 2*cells)
	}
}
