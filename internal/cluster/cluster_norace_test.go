//go:build !race

package cluster_test

const raceEnabled = false
