package cluster

import (
	"encoding/json"
	"fmt"

	"cordoba/api"
	"cordoba/internal/accel"
	"cordoba/internal/dse"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// EnvelopeFromResult renders a shard's streaming result as the wire envelope
// a worker returns. Every float crosses the wire as the exact float64 the
// engine computed (encoding/json round-trips float64 bit-exactly), so the
// coordinator reconstructs the shard result without loss.
func EnvelopeFromResult(first, count int, r *dse.StreamResult) api.ShardEnvelope {
	env := api.ShardEnvelope{
		Task:           r.Space.Task.Name,
		First:          first,
		Count:          count,
		CIUse:          float64(r.Space.CIUse),
		PointsStreamed: r.Total,
		PrePruned:      r.PrePruned,
		Offered:        r.Offered,
		SumEDP:         r.SumEDP,
		SumEmbD:        r.SumEmbD,
		Survivors:      make([]api.ShardPoint, len(r.Space.Points)),
	}
	for i, p := range r.Space.Points {
		cfg, err := json.Marshal(p.Config)
		if err != nil {
			panic(fmt.Sprintf("cluster: config marshal: %v", err)) // plain values; cannot fail
		}
		env.Survivors[i] = api.ShardPoint{
			Index:     r.IDs[i],
			Config:    cfg,
			Model:     p.Model,
			DelayS:    p.Delay.Seconds(),
			EnergyJ:   p.Energy.Joules(),
			EmbodiedG: p.Embodied.Grams(),
			AreaCM2:   p.Area.CM2(),
		}
	}
	return env
}

// ResultFromEnvelope is EnvelopeFromResult's inverse: it rebuilds the shard's
// StreamResult from the wire form. All units are identity float64 wrappers
// over their canonical units (seconds, joules, grams, cm²) and SRAM sizes
// scale by an exact power of two, so the reconstruction is bit-exact and the
// merged result renders byte-identically to a single-node run.
func ResultFromEnvelope(env api.ShardEnvelope, task workload.Task, ci units.CarbonIntensity) (*dse.StreamResult, error) {
	if env.Task != task.Name {
		return nil, fmt.Errorf("cluster: envelope ran task %q, coordinator expected %q", env.Task, task.Name)
	}
	if env.CIUse != float64(ci) {
		return nil, fmt.Errorf("cluster: envelope used CI_use %g, coordinator expected %g", env.CIUse, float64(ci))
	}
	points := make([]dse.Point, len(env.Survivors))
	ids := make([]int64, len(env.Survivors))
	for i, sp := range env.Survivors {
		var cfg accel.Config
		if err := json.Unmarshal(sp.Config, &cfg); err != nil {
			return nil, fmt.Errorf("cluster: envelope survivor %d has a malformed config: %w", i, err)
		}
		points[i] = dse.Point{
			Config:   cfg,
			Delay:    units.Time(sp.DelayS),
			Energy:   units.Energy(sp.EnergyJ),
			Embodied: units.Carbon(sp.EmbodiedG),
			Area:     units.Area(sp.AreaCM2),
			Model:    sp.Model,
		}
		ids[i] = sp.Index
	}
	return &dse.StreamResult{
		Space:     &dse.Space{Task: task, CIUse: ci, Points: points},
		IDs:       ids,
		Total:     env.PointsStreamed,
		PrePruned: env.PrePruned,
		Offered:   env.Offered,
		SumEDP:    env.SumEDP,
		SumEmbD:   env.SumEmbD,
	}, nil
}
