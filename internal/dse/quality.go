package dse

import (
	"math"

	"cordoba/internal/pareto"
)

// Quality summarizes how faithfully a candidate envelope (typically from the
// surrogate search) reproduces an oracle envelope (from the exhaustive
// engine) over the shared (E·D, C_emb·D) objective plane. It is the number
// the oracle-equivalence test harness pins and the API reports alongside
// surrogate results.
type Quality struct {
	// HypervolumeRatio is candidate HV / oracle HV under a shared reference
	// point. A subset of the oracle can never exceed 1; ≥ 0.99 is the
	// documented bar for trusting a surrogate run.
	HypervolumeRatio float64 `json:"hypervolume_ratio"`

	// AdditiveEpsilon is the additive ε-indicator from candidate to oracle,
	// measured after both fronts are normalized to the oracle's unit box, so
	// the number is comparable across grids whose objectives span different
	// decades. 0 means the candidate found (or beat) every oracle vertex.
	AdditiveEpsilon float64 `json:"additive_epsilon"`

	// Coverage is the fraction of oracle vertices weakly dominated by some
	// candidate point — 1.0 when every exhaustive survivor was recovered
	// exactly (or beaten).
	Coverage float64 `json:"coverage"`
}

// envelopeFront projects a result's surviving points into the objective
// plane.
func envelopeFront(r *StreamResult) []pareto.Point {
	if r == nil || r.Space == nil {
		return nil
	}
	out := make([]pareto.Point, len(r.Space.Points))
	for i, p := range r.Space.Points {
		out[i] = pareto.Point{X: p.EDP(), Y: p.EmbodiedDelay()}
	}
	return out
}

// MeasureQuality compares a candidate envelope against the exhaustive
// oracle's. Both hypervolumes share one reference point derived from the two
// fronts; the ε-indicator is computed on oracle-normalized coordinates.
func MeasureQuality(candidate, oracle *StreamResult) Quality {
	return measureQualityFronts(envelopeFront(candidate), envelopeFront(oracle))
}

func measureQualityFronts(cand, orc []pareto.Point) Quality {
	ref := pareto.ReferencePoint(cand, orc)
	hvC := pareto.Hypervolume(cand, ref)
	hvO := pareto.Hypervolume(orc, ref)
	q := Quality{Coverage: pareto.Coverage(cand, orc)}
	switch {
	case hvO > 0:
		q.HypervolumeRatio = hvC / hvO
	case hvC == 0:
		// Both degenerate (e.g. single identical point): vacuously perfect.
		q.HypervolumeRatio = 1
	}
	q.AdditiveEpsilon = pareto.AdditiveEpsilon(normalizeTo(cand, orc), normalizeTo(orc, orc))
	return q
}

// normalizeTo maps pts into the unit box spanned by the basis front; a
// degenerate basis axis keeps its raw offset from the basis minimum. An
// empty basis returns pts unchanged.
func normalizeTo(pts, basis []pareto.Point) []pareto.Point {
	var lo, hi pareto.Point
	first := true
	for _, p := range basis {
		if !finitePoint(p) {
			continue
		}
		if first {
			lo, hi, first = p, p, false
			continue
		}
		if p.X < lo.X {
			lo.X = p.X
		}
		if p.X > hi.X {
			hi.X = p.X
		}
		if p.Y < lo.Y {
			lo.Y = p.Y
		}
		if p.Y > hi.Y {
			hi.Y = p.Y
		}
	}
	if first {
		return pts
	}
	dx, dy := hi.X-lo.X, hi.Y-lo.Y
	if dx <= 0 {
		dx = 1
	}
	if dy <= 0 {
		dy = 1
	}
	out := make([]pareto.Point, len(pts))
	for i, p := range pts {
		out[i] = pareto.Point{X: (p.X - lo.X) / dx, Y: (p.Y - lo.Y) / dy}
	}
	return out
}

func finitePoint(p pareto.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}
