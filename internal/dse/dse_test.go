package dse

import (
	"math"
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// evalTask evaluates one paper task over the full 121-config grid (cached
// per test binary run — the grid evaluation is the expensive part).
var spaceCache = map[string]*Space{}

func evalTask(t *testing.T, name string) *Space {
	t.Helper()
	if s, ok := spaceCache[name]; ok {
		return s
	}
	task, err := workload.PaperTask(name)
	if err != nil {
		t.Fatal(err)
	}
	s, err := EvaluateDefault(task, accel.Grid())
	if err != nil {
		t.Fatal(err)
	}
	spaceCache[name] = s
	return s
}

func TestEvaluateValidation(t *testing.T) {
	task, _ := workload.PaperTask(workload.TaskAI5)
	if _, err := EvaluateDefault(task, nil); err == nil {
		t.Error("empty design space should error")
	}
	bad := []accel.Config{{ID: "bad"}}
	if _, err := EvaluateDefault(task, bad); err == nil {
		t.Error("invalid config should propagate")
	}
}

func TestPointDerivedQuantities(t *testing.T) {
	p := Point{Delay: 2, Energy: units.KWh(1), Embodied: 100}
	if p.EDP() != units.KWh(1).Joules()*2 {
		t.Error("EDP wrong")
	}
	if p.EmbodiedDelay() != 200 {
		t.Error("EmbodiedDelay wrong")
	}
	// tCDP at N inferences: (100 + 380·1·N)·2.
	if got := p.TCDP(380, 10); math.Abs(got-(100+3800)*2) > 1e-9 {
		t.Errorf("TCDP = %v", got)
	}
	r := p.Report(380, 10)
	if math.Abs(r.TCDP()-p.TCDP(380, 10)) > 1e-9 {
		t.Error("report tCDP disagrees")
	}
}

// Fig. 8 headline: the DSE eliminates the overwhelming majority of the 121
// designs for every task (paper: 96.7–98.3 %; measured: 91.7–97.5 %).
func TestEliminationFractions(t *testing.T) {
	for _, name := range []string{
		workload.TaskAllKernels, workload.TaskXR10, workload.TaskAI10,
		workload.TaskXR5, workload.TaskAI5,
	} {
		s := evalTask(t, name)
		if got := s.EliminatedFraction(); got < 0.90 {
			t.Errorf("%s: eliminated %.1f%%, want ≥ 90%%", name, 100*got)
		}
		if len(s.EverOptimal()) > 10 {
			t.Errorf("%s: %d ever-optimal designs, want ≤ 10", name, len(s.EverOptimal()))
		}
	}
}

// §VI-B / §VI-C: the paper's named optimal accelerators for "AI 5 kernels"
// are a1, a12 and a23 (1 MB SRAM throughout). The calibrated model yields
// {a1, a12} — a strict subset with the same 1 MB SRAM and the same ordering
// (a1 for short operational times); see EXPERIMENTS.md.
func TestAI5OptimalSet(t *testing.T) {
	s := evalTask(t, workload.TaskAI5)
	ids := s.IDs(s.EverOptimal())
	allowed := map[string]bool{"a1": true, "a12": true, "a23": true}
	found := map[string]bool{}
	for _, id := range ids {
		if !allowed[id] {
			t.Errorf("unexpected AI5 optimal %s (set %v)", id, ids)
		}
		found[id] = true
	}
	if !found["a1"] || !found["a12"] {
		t.Errorf("AI5 ever-optimal = %v, want it to include a1 and a12", ids)
	}
}

// §VI-B ordering principle: for every task, the short-operational-time
// optimum (last envelope member) embodies less carbon and runs slower than
// the long-operational-time optimum (first member).
func TestEnvelopeOrdering(t *testing.T) {
	for _, name := range []string{
		workload.TaskAllKernels, workload.TaskXR10, workload.TaskAI10,
		workload.TaskXR5, workload.TaskAI5,
	} {
		s := evalTask(t, name)
		env := s.EverOptimal()
		if len(env) < 2 {
			t.Fatalf("%s: envelope too small to check ordering: %v", name, s.IDs(env))
		}
		long := s.Points[env[0]]
		short := s.Points[env[len(env)-1]]
		if long.Embodied <= short.Embodied {
			t.Errorf("%s: long-time optimum %s (%v) should embody more than short-time optimum %s (%v)",
				name, long.Config.ID, long.Embodied, short.Config.ID, short.Embodied)
		}
		if long.Delay >= short.Delay {
			t.Errorf("%s: long-time optimum should be faster", name)
		}
	}
}

// All AI-task optima use small (≤ 2 MB) SRAM; XR-task optima include the
// paper's high-activation designs (a48 appears for XR tasks).
func TestActivationMemorySplitsOptima(t *testing.T) {
	ai := evalTask(t, workload.TaskAI10)
	for _, i := range ai.EverOptimal() {
		if mb := ai.Points[i].Config.SRAM.InMB(); mb > 4 {
			t.Errorf("AI10 optimum %s has %v MB SRAM, want ≤ 4", ai.Points[i].Config.ID, mb)
		}
	}
	for _, name := range []string{workload.TaskXR10, workload.TaskXR5} {
		xr := evalTask(t, name)
		maxMB, maxArrays := 0.0, 0
		for _, i := range xr.EverOptimal() {
			if mb := xr.Points[i].Config.SRAM.InMB(); mb > maxMB {
				maxMB = mb
			}
			if a := xr.Points[i].Config.MACArrays; a > maxArrays {
				maxArrays = a
			}
		}
		// XR optima need both large activation memory (paper: 4–8 MB) and
		// large compute (paper: 1K–2K MACs = 16–32 arrays).
		if maxMB < 8 {
			t.Errorf("%s: XR optima should reach ≥ 8 MB SRAM, max = %v", name, maxMB)
		}
		if maxArrays < 16 {
			t.Errorf("%s: XR optima should reach ≥ 16 arrays, max = %v", name, maxArrays)
		}
	}
}

// Fig. 8(a): the "All kernels" ever-optimal set contains a37 and a48 (as in
// the paper) and the optimum moves from smaller to larger hardware as
// operational time grows.
func TestAllKernelsOptimaAndCrossover(t *testing.T) {
	s := evalTask(t, workload.TaskAllKernels)
	ids := map[string]bool{}
	for _, id := range s.IDs(s.EverOptimal()) {
		ids[id] = true
	}
	// The paper's named All-kernels optima are a1, a37, a38 and a48; the
	// calibrated model reproduces a37 and a38 (see EXPERIMENTS.md).
	for _, want := range []string{"a37", "a38"} {
		if !ids[want] {
			t.Errorf("All-kernels ever-optimal should include %s, set = %v", want, s.IDs(s.EverOptimal()))
		}
	}
	short := s.Points[s.OptimalAt(1e2)]
	long := s.Points[s.OptimalAt(1e12)]
	if short.Embodied >= long.Embodied {
		t.Errorf("short-lifetime optimum (%s, %v) should have less embodied carbon than long-lifetime optimum (%s, %v)",
			short.Config.ID, short.Embodied, long.Config.ID, long.Embodied)
	}
	if short.Delay <= long.Delay {
		t.Error("short-lifetime optimum should be slower than long-lifetime optimum")
	}
}

// The envelope shortcut must agree with the brute-force sweep: every swept
// optimum is in the ever-optimal set, and the elimination claim holds — no
// design outside the set is ever optimal.
func TestEnvelopeMatchesBruteForce(t *testing.T) {
	for _, name := range []string{workload.TaskAI5, workload.TaskXR10} {
		s := evalTask(t, name)
		ever := map[int]bool{}
		for _, i := range s.EverOptimal() {
			ever[i] = true
		}
		ns := LogSpace(1, 1e13, 200)
		for _, i := range s.SweepOptimal(ns) {
			if !ever[i] {
				t.Errorf("%s: swept optimum %s not in ever-optimal set", name, s.Points[i].Config.ID)
			}
		}
	}
}

func TestEverOptimalSubsetOfFront(t *testing.T) {
	s := evalTask(t, workload.TaskAllKernels)
	front := map[int]bool{}
	for _, i := range s.ParetoFront() {
		front[i] = true
	}
	for _, i := range s.EverOptimal() {
		if !front[i] {
			t.Errorf("envelope member %s not on dominance front", s.Points[i].Config.ID)
		}
	}
	if len(s.EverOptimal()) > len(s.ParetoFront()) {
		t.Error("envelope larger than front")
	}
}

func TestTCDPMonotoneInOperationalTime(t *testing.T) {
	s := evalTask(t, workload.TaskAI5)
	for i := range s.Points {
		if s.Points[i].TCDP(380, 1e6) >= s.Points[i].TCDP(380, 1e8) {
			t.Errorf("%s: tCDP should grow with operational time", s.Points[i].Config.ID)
		}
	}
}

// Fig. 9: normalized carbon efficiency is 1.0 for the per-time optimum and
// below 1.0 for everything else; a1 degrades badly at very long operational
// times (paper: up to ~12.5× worse at 10¹¹ inferences).
func TestNormalizedRobustness(t *testing.T) {
	s := evalTask(t, workload.TaskAllKernels)
	norm := s.NormalizedAt(1e11)
	best := 0.0
	for _, v := range norm {
		if v > best {
			best = v
		}
	}
	if math.Abs(best-1.0) > 1e-12 {
		t.Fatalf("best normalized value = %v, want 1.0", best)
	}
	a1, err := s.ByID("a1")
	if err != nil {
		t.Fatal(err)
	}
	var a1norm float64
	for i, p := range s.Points {
		if p.Config.ID == a1.Config.ID {
			a1norm = norm[i]
		}
	}
	if a1norm > 0.5 {
		t.Errorf("a1 at 1e11 inferences should be far from optimal, normalized = %v", a1norm)
	}
}

// Fig. 8(f): at fixed operational time, the optimal design beats the
// design-space average substantially (paper: ≥ 2.3×).
func TestOptimalBeatsAverage(t *testing.T) {
	for _, name := range []string{workload.TaskAI5, workload.TaskXR5} {
		s := evalTask(t, name)
		for _, n := range []float64{1e4, 1e10} {
			best := s.Points[s.OptimalAt(n)].TCDP(380, n)
			mean := s.MeanTCDPAt(n)
			if mean/best < 2 {
				t.Errorf("%s at N=%g: mean/optimal tCDP = %.2f, want ≥ 2", name, n, mean/best)
			}
		}
	}
}

// §VI-B: specialized beats general — the AI5-specialized optimum has better
// tCDP on its own task than the All-kernels optimum has on the general task.
func TestSpecializationWins(t *testing.T) {
	sAll := evalTask(t, workload.TaskAllKernels)
	sAI5 := evalTask(t, workload.TaskAI5)
	for _, n := range []float64{1e6, 1e10} {
		general := sAll.Points[sAll.OptimalAt(n)].TCDP(380, n)
		special := sAI5.Points[sAI5.OptimalAt(n)].TCDP(380, n)
		if special >= general {
			t.Errorf("N=%g: specialized tCDP %v should beat general %v", n, special, general)
		}
	}
}

func TestBestAverageIsRobust(t *testing.T) {
	s := evalTask(t, workload.TaskAllKernels)
	ns := LogSpace(1e3, 1e12, 30)
	idx := s.BestAverage(ns)
	if idx < 0 {
		t.Fatal("no best-average design")
	}
	// The robust choice must be in the ever-optimal set or close to it —
	// at minimum it must never fall below 20 % of optimal anywhere.
	for _, n := range ns {
		norm := s.NormalizedAt(n)
		if norm[idx] < 0.2 {
			t.Errorf("robust design %s falls to %.2f of optimal at N=%g", s.Points[idx].Config.ID, norm[idx], n)
		}
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-9 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if got := LogSpace(5, 1, 3); len(got) != 1 || got[0] != 5 {
		t.Errorf("degenerate LogSpace = %v", got)
	}
}

func TestByIDAndIDs(t *testing.T) {
	s := evalTask(t, workload.TaskAI5)
	p, err := s.ByID("a48")
	if err != nil || p.Config.ID != "a48" {
		t.Fatalf("ByID: %v %v", p.Config.ID, err)
	}
	if _, err := s.ByID("nope"); err == nil {
		t.Error("unknown ID should error")
	}
	ids := s.IDs([]int{0, 1})
	if ids[0] != s.Points[0].Config.ID || ids[1] != s.Points[1].Config.ID {
		t.Error("IDs mapping wrong")
	}
}

// Fig. 7(b): the EDP-optimal design does not move with operational time
// (EDP has no embodied term), while the tCDP-optimal design does.
func TestEDPOptimumIsOperationalTimeIndependent(t *testing.T) {
	s := evalTask(t, workload.TaskAllKernels)
	bestEDP := 0
	for i, p := range s.Points {
		if p.EDP() < s.Points[bestEDP].EDP() {
			bestEDP = i
		}
	}
	// tCDP optimum changes across the sweep...
	optShort := s.OptimalAt(1e2)
	optLong := s.OptimalAt(1e12)
	if optShort == optLong {
		t.Error("tCDP optimum should move with operational time")
	}
	// ...and at very long operational time it approaches the EDP optimum
	// (tCDP → CI·E·D·N when operational carbon dominates, §VI-A).
	if optLong != bestEDP {
		t.Errorf("long-lifetime tCDP optimum %s should equal the EDP optimum %s",
			s.Points[optLong].Config.ID, s.Points[bestEDP].Config.ID)
	}
}

// EvaluateParallel must produce identical results to Evaluate, in order.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	task, _ := workload.PaperTask(workload.TaskAI10)
	grid := accel.Grid()
	seq, err := EvaluateDefault(task, grid)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 0, 999} {
		par, err := EvaluateParallel(task, grid, carbon.Process7nm(), carbon.FabCoal, 380, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Points) != len(seq.Points) {
			t.Fatalf("workers=%d: length mismatch", workers)
		}
		for i := range seq.Points {
			a, b := seq.Points[i], par.Points[i]
			if a.Config.ID != b.Config.ID || a.Delay != b.Delay ||
				a.Energy != b.Energy || a.Embodied != b.Embodied {
				t.Fatalf("workers=%d: point %d differs", workers, i)
			}
		}
	}
}

func TestEvaluateParallelErrors(t *testing.T) {
	task, _ := workload.PaperTask(workload.TaskAI5)
	if _, err := EvaluateParallel(task, nil, carbon.Process7nm(), carbon.FabCoal, 380, 4); err == nil {
		t.Error("empty space should error")
	}
	if _, err := EvaluateParallel(task, accel.Grid()[:3], carbon.Process7nm(), carbon.FabCoal, -1, 4); err == nil {
		t.Error("negative CI should error")
	}
	bad := []accel.Config{{ID: "bad"}}
	if _, err := EvaluateParallel(task, bad, carbon.Process7nm(), carbon.FabCoal, 380, 4); err == nil {
		t.Error("invalid config should propagate")
	}
}
