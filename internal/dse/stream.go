package dse

import (
	"context"
	"sync"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/nn"
	"cordoba/internal/pareto"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// evalPoint evaluates one configuration the way Evaluate does: task cost via
// the direct simulator path, embodied carbon via the given process/fab.
func evalPoint(task workload.Task, c accel.Config, p carbon.Process, fab carbon.Fab) (Point, error) {
	return evalPointAcct(task, c, p, fab, Accounting{})
}

// evalPointAcct is evalPoint with an explicit embodied-carbon accounting. The
// zero-value accounting routes through the default ACT/Murphy pipeline and is
// bit-identical to the historical inline computation.
func evalPointAcct(task workload.Task, c accel.Config, p carbon.Process, fab carbon.Fab, acct Accounting) (Point, error) {
	cost, err := workload.Evaluate(task, c)
	if err != nil {
		return Point{}, err
	}
	emb, err := c.EmbodiedWith(acct.Model, acct.Yield, p, fab)
	if err != nil {
		return Point{}, err
	}
	pt := Point{
		Config:   c,
		Delay:    cost.Delay,
		Energy:   cost.Energy,
		Embodied: emb,
		Area:     c.TotalArea(),
	}
	if acct.Model != nil {
		pt.Model = acct.Model.Name()
	}
	return pt, nil
}

// StreamOptions tunes the streaming engine.
type StreamOptions struct {
	// Workers is the evaluation fan-out; < 1 selects GOMAXPROCS.
	Workers int
	// Memo is the shared shape-profile cache; nil uses a private cache that
	// lives for this run only. Pass the server's cache to reuse profiles
	// across requests.
	Memo *MemoCache
	// Yield selects the yield model every cell's embodied carbon is derated
	// with; nil selects Murphy, the historical default.
	Yield carbon.YieldModel
}

// StreamResult is the outcome of a streaming exploration: the surviving
// ever-optimal set plus the aggregates the engine kept while discarding the
// rest of the space.
type StreamResult struct {
	// Space holds only the surviving (ever-optimal) points, ordered by
	// ascending E·D — from the long-operational-time winner backwards.
	Space *Space

	// IDs holds each survivor's global grid index, parallel to Space.Points.
	// Indices stay global even for sharded runs, so shard results carry
	// enough identity to merge (and to tie-break coordinate duplicates the
	// same way a single-node stream would).
	IDs []int64

	Total     int64 // configurations evaluated
	PrePruned int64 // removed by chunk-local dominance pruning before the envelope
	Offered   int64 // offered to the envelope accumulator

	// SumEDP and SumEmbD accumulate Σ E·D and Σ C_emb·D over every evaluated
	// point; by tCDP's linearity in N they are sufficient statistics for the
	// space-wide mean at any operational time.
	SumEDP  float64
	SumEmbD float64
}

// Kept returns the size of the ever-optimal set.
func (r *StreamResult) Kept() int { return len(r.Space.Points) }

// EliminatedFraction returns the share of the grid proven never-optimal.
func (r *StreamResult) EliminatedFraction() float64 {
	if r.Total == 0 {
		return 0
	}
	return 1 - float64(r.Kept())/float64(r.Total)
}

// OptimalAt returns the index (into Space.Points) of the tCDP-optimal
// design after n inferences. Because tCDP(N) is linear in N, the optimum
// over the full grid always survives streaming, so this equals the
// brute-force answer over the materialized space.
func (r *StreamResult) OptimalAt(n float64) int { return r.Space.OptimalAt(n) }

// MeanTCDPAt returns the mean tCDP across the whole evaluated grid — not
// just the survivors — after n inferences, reconstructed from the streamed
// sufficient statistics:
//
//	mean = (Σ C_emb·D + CI·N/3.6e6 · Σ E·D) / total
func (r *StreamResult) MeanTCDPAt(n float64) float64 {
	if r.Total == 0 {
		return 0
	}
	ci := r.Space.CIUse.GramsPerKWh()
	return (r.SumEmbD + ci*n/units.JoulesPerKWh*r.SumEDP) / float64(r.Total)
}

// taskAcc accumulates one task's stream: the incremental envelope, the
// payloads of currently surviving points, and the space-wide sums.
type taskAcc struct {
	mu      sync.Mutex
	stream  pareto.Stream
	payload map[int64]Point

	sumEDP, sumEmbD  float64
	total, prePruned int64

	// Offer scratch, guarded by mu. Offers are effectively single-caller —
	// the sequencer goroutine for the exhaustive engine, the generation loop
	// for the surrogate — so reusing one id/objective buffer per accumulator
	// makes the steady-state offer path allocation-free; the lock exists for
	// concurrent snapshot/progress readers.
	ids []int64
	lp  []pareto.Point
	fs  pareto.FrontScratch
}

// offerChunk feeds one evaluated chunk of contiguous grid indices
// [base, base+len) into the accumulator. See offerBatch.
func (a *taskAcc) offerChunk(base int64, pts []Point) {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := a.ids[:0]
	for i := range pts {
		ids = append(ids, base+int64(i))
	}
	a.ids = ids
	a.offerLocked(ids, pts)
}

// offerBatch feeds one evaluated batch (ids parallel to pts, any ids) into
// the accumulator. The exhaustive engine offers contiguous shape chunks
// through offerChunk; the surrogate search offers its evaluated candidate
// batches directly.
func (a *taskAcc) offerBatch(ids []int64, pts []Point) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.offerLocked(ids, pts)
}

// offerLocked is the shared offer path: dominance pre-pruning over the
// chunk, then the incremental envelope. Evicted points drop their payloads
// immediately, so memory stays O(survivors + batch). Points are priced
// anonymously; the "k<N>" ID is stamped only on envelope acceptance, so the
// per-cell hot path never materializes ID strings.
func (a *taskAcc) offerLocked(ids []int64, pts []Point) {
	lp := a.lp[:0]
	for _, p := range pts {
		lp = append(lp, pareto.Point{X: p.EDP(), Y: p.EmbodiedDelay()})
	}
	a.lp = lp
	front := a.fs.Front(lp)

	a.total += int64(len(pts))
	a.prePruned += int64(len(pts) - len(front))
	for _, p := range lp {
		a.sumEDP += p.X
		a.sumEmbD += p.Y
	}
	for _, idx := range front {
		id := ids[idx]
		accepted, evicted := a.stream.Offer(id, lp[idx])
		if accepted {
			pt := pts[idx]
			pt.Config.ID = gridPointID(id)
			a.payload[id] = pt
		}
		for _, ev := range evicted {
			delete(a.payload, ev)
		}
	}
}

// result packages the accumulator once the stream is drained.
func (a *taskAcc) result(task workload.Task, ci units.CarbonIntensity) *StreamResult {
	ids := a.stream.IDs()
	points := make([]Point, len(ids))
	for i, id := range ids {
		points[i] = a.payload[id]
	}
	return &StreamResult{
		Space:     &Space{Task: task, CIUse: ci, Points: points},
		IDs:       ids,
		Total:     a.total,
		PrePruned: a.prePruned,
		Offered:   a.stream.Offered(),
		SumEDP:    a.sumEDP,
		SumEmbD:   a.sumEmbD,
	}
}

// streamPlatform implements workload.Platform over pre-computed shape
// profiles, memoizing per-kernel costs so tasks sharing a kernel price it
// once per configuration. Replay goes through the same layerCostOf helper
// as the direct simulator path, so costs are bit-identical to Evaluate's.
//
// Storage is dense — indexed by nn.KernelIndex instead of per-cell maps —
// and the platform is reused across cells: reset() advances a generation
// counter, invalidating every memoized cost in O(1) without clearing, so
// the steady-state evaluation loop performs no allocations at all.
type streamPlatform struct {
	cfg  accel.Config
	leak units.Power

	// profiles holds the current shape's kernel profiles, dense by kernel
	// index; nil slots fall back to the direct simulator path.
	profiles []*accel.ShapeProfile

	// costs[i] is valid iff costGen[i] == gen.
	costs   []workload.KernelCost
	costGen []uint64
	gen     uint64
}

func newStreamPlatform() *streamPlatform {
	n := nn.NumKernels()
	return &streamPlatform{
		profiles: make([]*accel.ShapeProfile, n),
		costs:    make([]workload.KernelCost, n),
		costGen:  make([]uint64, n),
	}
}

// reset points the platform at a new cell, invalidating the cost memo.
// gen starts at 0 and costGen slots are 0, so reset must run before the
// first KernelCost call — it always does: every caller resets per cell.
func (p *streamPlatform) reset(cfg accel.Config) {
	p.cfg = cfg
	p.leak = cfg.LeakagePower()
	p.gen++
}

func (p *streamPlatform) KernelCost(id nn.KernelID) (workload.KernelCost, error) {
	i, ok := nn.KernelIndex(id)
	if !ok || p.profiles[i] == nil {
		// A kernel outside the profiled union — fall back to the direct path.
		return p.cfg.KernelCost(id)
	}
	if p.costGen[i] == p.gen {
		return p.costs[i], nil
	}
	kc := p.profiles[i].Cost(p.cfg)
	p.costs[i] = kc
	p.costGen[i] = p.gen
	return kc, nil
}

func (p *streamPlatform) LeakagePower() units.Power { return p.leak }

// evalScratch is one worker's reusable evaluation state: the replay
// platform, the batched memo-lookup buffer, and the per-shape embodied
// carbon memo (embodied depends only on the cell's (node, model, area-ratio)
// equivalence class — V_DD never enters it — so each class is priced once
// per shape instead of once per cell). One scratch serves any number of
// shapes; nothing escapes it, so the whole inner loop is allocation-free
// after warm-up.
type evalScratch struct {
	plat    *streamPlatform
	kprof   []*accel.ShapeProfile // parallel to the kernel union
	embSeen []bool                // indexed by gridCell.embClass
	emb     []units.Carbon
}

func newEvalScratch(cg *compiledGrid, kernels []nn.KernelID) *evalScratch {
	return &evalScratch{
		plat:    newStreamPlatform(),
		kprof:   make([]*accel.ShapeProfile, len(kernels)),
		embSeen: make([]bool, cg.embClasses),
		emb:     make([]units.Carbon, cg.embClasses),
	}
}

// kernelUnion returns the kernels referenced by any task, in the canonical
// nn.AllKernels order.
func kernelUnion(tasks []workload.Task) []nn.KernelID {
	var out []nn.KernelID
	for _, id := range nn.AllKernels() {
		for _, t := range tasks {
			if _, ok := t.Calls[id]; ok {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// EvaluateStream explores a knob grid for one task with the streaming
// engine: lazy enumeration, memoized kernel evaluation, incremental
// envelope. See EvaluateStreamTasks.
func EvaluateStream(ctx context.Context, task workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity, opt StreamOptions) (*StreamResult, error) {
	rs, err := EvaluateStreamTasks(ctx, []workload.Task{task}, g, fab, ci, opt)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// EvaluateStreamTasks is the v2 DSE engine. It enumerates the grid lazily
// in shape-major order, computes each (MAC arrays, SRAM) shape's kernel
// layer profiles once (through the shared memo cache), replays them across
// every DVFS/node cell and every task, and streams the resulting points
// through per-task dominance pruning into incremental convex-envelope
// accumulators. Memory stays O(survivors + workers·chunk) regardless of
// grid size; evaluated chunks are discarded as they stream.
//
// The surviving ever-optimal sets, elimination fractions and per-N optima
// are identical to materializing the grid with EvaluateGrid and calling
// EverOptimal — the property suite in prop_test.go holds the two engines
// equal on randomized spaces. Accumulation happens in shape-index order
// regardless of worker scheduling (see EvaluateStreamCheckpointedTasks), so
// SumEDP and SumEmbD are deterministic for a given grid.
func EvaluateStreamTasks(ctx context.Context, tasks []workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity, opt StreamOptions) ([]*StreamResult, error) {
	return EvaluateStreamCheckpointedTasks(ctx, tasks, g, fab, ci, CheckpointOptions{StreamOptions: opt})
}

// evalShape evaluates every cell of shape si for every task: the shape's
// kernel profiles are fetched in one batched memo round-trip and replayed
// across the cells through the scratch's reusable platform. buffers holds
// one slice per task, reset and filled in cell order — evaluation semantics
// are bit-identical to the direct path (the property suite holds them
// equal). Cells are enumerated without IDs (gridPointID strings are stamped
// on envelope acceptance), and embodied carbon is computed once per
// (shape, embodied-class) instead of once per cell; with pre-sized buffers
// the loop allocates nothing in steady state.
func evalShape(cg *compiledGrid, si int, kernels []nn.KernelID, tasks []workload.Task, memo *MemoCache, fab carbon.Fab, yield carbon.YieldModel, sc *evalScratch, buffers [][]Point) error {
	shapeCfg := cg.shapeConfig(si)
	if err := memo.Profiles(shapeCfg, kernels, sc.kprof); err != nil {
		return err
	}
	for i, id := range kernels {
		// kernelUnion only emits canonical kernels, so the index always resolves.
		ki, _ := nn.KernelIndex(id)
		sc.plat.profiles[ki] = sc.kprof[i]
	}
	for i := range sc.embSeen {
		sc.embSeen[i] = false
	}
	for ti := range buffers {
		buffers[ti] = buffers[ti][:0]
	}
	cells := int64(len(cg.cells))
	base := int64(si) * cells
	for off := int64(0); off < cells; off++ {
		cfg, cell := cg.atNoID(base + off)
		if !sc.embSeen[cell.embClass] {
			emb, err := cfg.EmbodiedWith(cell.model, yield, cell.process, fab)
			if err != nil {
				return err
			}
			sc.emb[cell.embClass] = emb
			sc.embSeen[cell.embClass] = true
		}
		emb := sc.emb[cell.embClass]
		area := cfg.TotalArea()
		sc.plat.reset(cfg)
		for ti, task := range tasks {
			cost, err := workload.Evaluate(task, sc.plat)
			if err != nil {
				return err
			}
			buffers[ti] = append(buffers[ti], Point{
				Config:   cfg,
				Delay:    cost.Delay,
				Energy:   cost.Energy,
				Embodied: emb,
				Area:     area,
				Model:    cell.modelName,
			})
		}
	}
	return nil
}
