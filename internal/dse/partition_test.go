package dse

import (
	"context"
	"fmt"
	"testing"

	"cordoba/internal/carbon"
)

// partitionGrid returns a small grid exercising every partition axis.
func partitionGrid() Grid {
	return Grid{
		MACArrays:    []int{4, 16},
		SRAMMB:       []float64{2, 8},
		Integrations: []string{"monolithic", "2.5d", "3d"},
		Chiplets:     []int{2, 4},
		ChipletNodes: []string{"14nm"},
	}
}

func TestPartitionGridCompile(t *testing.T) {
	g := partitionGrid()
	if got := g.Size(); got != 2*2*3*2*1 {
		t.Fatalf("Size = %d, want 24", got)
	}
	cg, err := g.compile()
	if err != nil {
		t.Fatal(err)
	}
	// One (V_DD, node) pair; cells sweep integration (outer) then chiplets
	// then chiplet node (innermost): mono, mono, 2.5d/2, 2.5d/4, 3d/2, 3d/4.
	if len(cg.cells) != 6 {
		t.Fatalf("compiled %d cells, want 6", len(cg.cells))
	}
	for i, want := range []struct {
		integ string
		chip  int
		model string
	}{
		{"", 2, ""}, {"", 4, ""},
		{"2.5d", 2, "chiplet"}, {"2.5d", 4, "chiplet"},
		{"3d", 2, "stacked-3d"}, {"3d", 4, "stacked-3d"},
	} {
		cell := cg.cells[i]
		if cell.partition.Integration != want.integ || cell.modelName != want.model {
			t.Errorf("cell %d: integration/model = %q/%q, want %q/%q",
				i, cell.partition.Integration, cell.modelName, want.integ, want.model)
		}
		if want.integ == "" {
			// Monolithic cells ignore the other partition knobs entirely:
			// the zero partition keeps them on the historical code path.
			if cell.partition != (cg.cells[0].partition) {
				t.Errorf("cell %d: monolithic partition not zero: %+v", i, cell.partition)
			}
			continue
		}
		if cell.partition.Chiplets != want.chip || cell.partition.ChipletNode != "14nm" {
			t.Errorf("cell %d: chiplets/node = %d/%q, want %d/14nm",
				i, cell.partition.Chiplets, cell.partition.ChipletNode, want.chip)
		}
		// 14 nm silicon is larger per transistor than the grid's 7 nm cells,
		// so moving the memory die onto it must scale its area up.
		if cell.partition.MemAreaScale <= 1 {
			t.Errorf("cell %d: 14nm-on-7nm MemAreaScale = %v, want > 1", i, cell.partition.MemAreaScale)
		}
	}
	// Configs materialized from partitioned cells carry the partition.
	c, _ := cg.at(2) // first 2.5d cell of shape 0
	if !c.Partition.Active() || c.Partition.Chiplets != 2 {
		t.Fatalf("materialized config partition = %+v, want active 2.5d x2", c.Partition)
	}
	// The two monolithic cells are embodied-equivalent (same zero partition);
	// each partitioned cell is its own class: 1 + 4 distinct classes.
	if cg.embClasses != 5 {
		t.Errorf("embClasses = %d, want 5 (1 monolithic + 4 partitioned)", cg.embClasses)
	}
}

func TestPartitionGridValidation(t *testing.T) {
	base := func() Grid {
		return Grid{MACArrays: []int{4}, SRAMMB: []float64{2}}
	}
	cases := map[string]func(g *Grid){
		"duplicate integration": func(g *Grid) { g.Integrations = []string{"2.5d", "2.5d"} },
		"duplicate mono forms":  func(g *Grid) { g.Integrations = []string{"monolithic", ""} },
		"duplicate chiplets":    func(g *Grid) { g.Integrations = []string{"2.5d"}; g.Chiplets = []int{4, 4} },
		"duplicate chiplet node": func(g *Grid) {
			g.Integrations = []string{"2.5d"}
			g.ChipletNodes = []string{"14nm", "14nm"}
		},
		"duplicate mac axis":  func(g *Grid) { g.MACArrays = []int{4, 4} },
		"duplicate sram axis": func(g *Grid) { g.SRAMMB = []float64{2, 2} },
		"unknown integration": func(g *Grid) { g.Integrations = []string{"5d"} },
		"unknown chiplet node": func(g *Grid) {
			g.Integrations = []string{"2.5d"}
			g.ChipletNodes = []string{"6nm"}
		},
		"unknown carrier":               func(g *Grid) { g.Integrations = []string{"2.5d"}; g.Carrier = "glass" },
		"chiplets without integrations": func(g *Grid) { g.Chiplets = []int{4} },
		"chiplets on monolithic only":   func(g *Grid) { g.Integrations = []string{"monolithic"}; g.Chiplets = []int{4} },
		"negative chiplets":             func(g *Grid) { g.Integrations = []string{"3d"}; g.Chiplets = []int{-1} },
		"chiplets above cap":            func(g *Grid) { g.Integrations = []string{"3d"}; g.Chiplets = []int{65} },
		"unsupported model-integration pair": func(g *Grid) {
			g.Models = []string{"act"}
			g.Integrations = []string{"2.5d"}
		},
	}
	for name, mutate := range cases {
		g := base()
		mutate(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, g)
		}
	}

	ok := base()
	ok.Integrations = []string{"monolithic", "2.5d"}
	ok.Chiplets = []int{4}
	ok.Carrier = "emib"
	if err := ok.Validate(); err != nil {
		t.Errorf("valid partition grid rejected: %v", err)
	}
	// A model axis crossed with integrations every backend supports is fine:
	// every listed backend prices monolithic specs.
	multi := base()
	multi.Models = []string{"act", "chiplet", "stacked-3d"}
	multi.Integrations = []string{"monolithic"}
	if err := multi.Validate(); err != nil {
		t.Errorf("monolithic model sweep rejected: %v", err)
	}
}

// TestStreamMatchesNaivePartitionGrid holds the streaming engine to the
// materialize-everything baseline over a grid with every partition axis
// active — the oracle that partition pricing, D2D penalties, and the
// embodied-class sharing all agree with the simple path.
func TestStreamMatchesNaivePartitionGrid(t *testing.T) {
	g := Grid{
		MACArrays:    []int{1, 4, 16},
		SRAMMB:       []float64{1, 8},
		VDDScales:    []float64{1.0, 0.85},
		Nodes:        []string{"7nm", "3nm"},
		Integrations: []string{"monolithic", "2.5d", "3d"},
		Chiplets:     []int{2, 4},
		ChipletNodes: []string{"14nm"},
		Carrier:      "silicon-interposer",
	}
	task := paperTask(t, "XR (5 kernels)")
	naive, err := EvaluateGrid(task, g, carbon.FabTaiwan, 200)
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvaluateStream(context.Background(), task, g, carbon.FabTaiwan, 200, StreamOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamMatchesNaive(t, r, naive)
}

// TestPartitionEnvelopeKeepsChipletDesigns: on a die large enough for yield
// splitting to matter, at least one partitioned design must survive the
// ever-optimal envelope — partitioning is a real axis, not dominated noise.
func TestPartitionEnvelopeKeepsChipletDesigns(t *testing.T) {
	g := Grid{
		MACArrays:    []int{64},
		SRAMMB:       []float64{64},
		Integrations: []string{"monolithic", "2.5d", "3d"},
		Chiplets:     []int{4},
		ChipletNodes: []string{"14nm"},
	}
	task := paperTask(t, "AI (5 kernels)")
	r, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	partitioned := false
	for _, p := range r.Space.Points {
		if p.Config.Partition.Active() {
			partitioned = true
		}
	}
	if !partitioned {
		t.Fatalf("no partitioned design survived the envelope: %+v", r.Space.IDs(r.Space.EverOptimal()))
	}
}

// TestShardedPartitionGridMatchesUnsharded: the distributed-DSE algebra must
// hold with partition axes active — shard planning counts shapes, and every
// partition cell of a shape travels with it, so any contiguous partition of
// the shape range merges back to the single-node run exactly.
func TestShardedPartitionGridMatchesUnsharded(t *testing.T) {
	g := partitionGrid()
	g.Carrier = "emib"
	task := paperTask(t, "AI (5 kernels)")
	want, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, sizes := range [][]int{{4}, {2, 2}, {1, 3}, {1, 1, 1, 1}} {
		var (
			results []*StreamResult
			first   int
		)
		for _, n := range sizes {
			opt := CheckpointOptions{
				StreamOptions: StreamOptions{Workers: 2},
				Shard:         &ShardRange{First: first, Count: n},
			}
			r, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, opt)
			if err != nil {
				t.Fatalf("shard [%d,%d): %v", first, first+n, err)
			}
			results = append(results, r)
			first += n
		}
		merged, err := MergeShardResults(results)
		if err != nil {
			t.Fatalf("partition %v: %v", sizes, err)
		}
		sameMerged(t, fmt.Sprintf("shards %v", sizes), merged, want)
	}
}
