package dse

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"cordoba/internal/carbon"
	"cordoba/internal/workload"
)

// ckptGrid is a small multi-axis grid: 12 shapes × 4 cells = 48 points,
// enough reorder traffic to exercise the sequencer without slowing the suite.
func ckptGrid() Grid {
	return Grid{
		MACArrays: []int{1, 2, 4, 8},
		SRAMMB:    []float64{1, 2, 4},
		VDDScales: []float64{1.0, 0.9},
		Nodes:     []string{"7nm", "5nm"},
	}
}

// sameStreamResult demands bit-identical results: survivor configs and
// coordinates, counters, and the floating-point sufficient statistics.
func sameStreamResult(t *testing.T, label string, got, want *StreamResult) {
	t.Helper()
	if got.Total != want.Total || got.PrePruned != want.PrePruned || got.Offered != want.Offered {
		t.Fatalf("%s: counters differ: got (%d, %d, %d), want (%d, %d, %d)",
			label, got.Total, got.PrePruned, got.Offered, want.Total, want.PrePruned, want.Offered)
	}
	if got.SumEDP != want.SumEDP || got.SumEmbD != want.SumEmbD {
		t.Fatalf("%s: sums differ: got (%v, %v), want (%v, %v)",
			label, got.SumEDP, got.SumEmbD, want.SumEDP, want.SumEmbD)
	}
	if !reflect.DeepEqual(got.Space.Points, want.Space.Points) {
		t.Fatalf("%s: survivor sets differ: got %d points, want %d", label, len(got.Space.Points), len(want.Space.Points))
	}
}

func TestCheckpointedMatchesStream(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := ckptGrid()
	plain, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 7},
		Every:         2,
		OnCheckpoint:  func(*StreamCheckpoint) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	sameStreamResult(t, "checkpointed vs plain", ck, plain)
}

// TestStreamDeterministicAcrossWorkers pins the property the checkpoint
// design rests on: ordered accumulation makes the floating-point sums
// independent of worker scheduling.
func TestStreamDeterministicAcrossWorkers(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := ckptGrid()
	var want *StreamResult
	for _, workers := range []int{1, 2, 5, 16} {
		r, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = r
			continue
		}
		sameStreamResult(t, "workers variant", r, want)
	}
}

// TestCheckpointResumeBitIdentical is the acceptance property: resuming from
// any intermediate checkpoint converges to the uninterrupted run's survivor
// set, Total, SumEDP and SumEmbD exactly. Checkpoints are round-tripped
// through JSON first, the same path the job store uses.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := ckptGrid()
	full, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	var cps []*StreamCheckpoint
	if _, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 4},
		Every:         3,
		OnCheckpoint: func(cp *StreamCheckpoint) error {
			cps = append(cps, cp)
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}

	for _, cp := range cps {
		b, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		var restored StreamCheckpoint
		if err := json.Unmarshal(b, &restored); err != nil {
			t.Fatal(err)
		}
		resumed, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
			StreamOptions: StreamOptions{Workers: 2},
			Resume:        &restored,
		})
		if err != nil {
			t.Fatalf("resume from shape %d: %v", cp.NextShape, err)
		}
		sameStreamResult(t, "resume from intermediate checkpoint", resumed, full)
	}
}

// TestCheckpointCancelThenResume interrupts a run cooperatively after the
// first checkpoint lands — the crash scenario — and resumes from it.
func TestCheckpointCancelThenResume(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := ckptGrid()
	full, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *StreamCheckpoint
	_, err = EvaluateStreamCheckpointed(ctx, task, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 4},
		Every:         2,
		OnCheckpoint: func(cp *StreamCheckpoint) error {
			last = cp
			cancel() // killed right after persisting a checkpoint
			return nil
		},
	})
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if last == nil {
		t.Fatal("no checkpoint landed before cancellation")
	}
	if last.NextShape <= 0 || last.NextShape >= last.Shapes {
		t.Fatalf("checkpoint cursor %d of %d is not intermediate", last.NextShape, last.Shapes)
	}

	resumed, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 4},
		Resume:        last,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameStreamResult(t, "resume after cancel", resumed, full)
}

func TestCheckpointFingerprintMismatch(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := ckptGrid()
	var cp *StreamCheckpoint
	if _, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		Every:        3,
		OnCheckpoint: func(c *StreamCheckpoint) error { cp = c; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	cases := map[string]func() (*StreamResult, error){
		"different fab": func() (*StreamResult, error) {
			return EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabRenewable, 380, CheckpointOptions{Resume: cp})
		},
		"different ci": func() (*StreamResult, error) {
			return EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 100, CheckpointOptions{Resume: cp})
		},
		"different task": func() (*StreamResult, error) {
			return EvaluateStreamCheckpointed(context.Background(), paperTask(t, "AI (10 kernels)"), g, carbon.FabCoal, 380, CheckpointOptions{Resume: cp})
		},
		"different yield": func() (*StreamResult, error) {
			return EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
				StreamOptions: StreamOptions{Yield: carbon.PoissonYield{}},
				Resume:        cp,
			})
		},
	}
	for name, run := range cases {
		if _, err := run(); err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("%s: resume accepted a foreign checkpoint (err = %v)", name, err)
		}
	}
	// A grid change alters the shape count too; any rejection is fine but it
	// must be rejected.
	g2 := ckptGrid()
	g2.MACArrays = g2.MACArrays[:2]
	if _, err := EvaluateStreamCheckpointed(context.Background(), task, g2, carbon.FabCoal, 380, CheckpointOptions{Resume: cp}); err == nil {
		t.Error("resume accepted a checkpoint from a different grid")
	}
}

func TestCheckpointValidateRejectsCorrupt(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := ckptGrid()
	var cp *StreamCheckpoint
	if _, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		Every:        4,
		OnCheckpoint: func(c *StreamCheckpoint) error { cp = c; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	resume := func(c StreamCheckpoint) error {
		_, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{Resume: &c})
		return err
	}
	corrupt := map[string]func(c *StreamCheckpoint){
		"cursor negative":  func(c *StreamCheckpoint) { c.NextShape = -1 },
		"cursor past end":  func(c *StreamCheckpoint) { c.NextShape = c.Shapes + 1 },
		"acc count":        func(c *StreamCheckpoint) { c.Accs = nil },
		"total mismatch":   func(c *StreamCheckpoint) { c.Accs[0].Total++ },
		"offered mismatch": func(c *StreamCheckpoint) { c.Accs[0].Envelope.Offered++ },
		"survivor count":   func(c *StreamCheckpoint) { c.Accs[0].Survivors = c.Accs[0].Survivors[:0] },
		"id out of prefix": func(c *StreamCheckpoint) { c.Accs[0].Envelope.IDs[0] = int64(c.Shapes) * 1000 },
	}
	for name, mutate := range corrupt {
		var c StreamCheckpoint
		b, _ := json.Marshal(cp)
		if err := json.Unmarshal(b, &c); err != nil {
			t.Fatal(err)
		}
		mutate(&c)
		if err := resume(c); err == nil {
			t.Errorf("%s: corrupt checkpoint accepted", name)
		}
	}
}

func TestCheckpointCallbackErrorAborts(t *testing.T) {
	boom := errors.New("disk full")
	_, err := EvaluateStreamCheckpointed(context.Background(), paperTask(t, "All kernels"), ckptGrid(), carbon.FabCoal, 380, CheckpointOptions{
		Every:        1,
		OnCheckpoint: func(*StreamCheckpoint) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("checkpoint error not propagated: %v", err)
	}
}

func TestCheckpointProgress(t *testing.T) {
	g := ckptGrid()
	var got []StreamProgress
	r, err := EvaluateStreamCheckpointed(context.Background(), paperTask(t, "All kernels"), g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 4},
		OnProgress:    func(p StreamProgress) { got = append(got, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	cg, err := g.compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cg.shapes() {
		t.Fatalf("progress fired %d times, want one per shape (%d)", len(got), cg.shapes())
	}
	for i, p := range got {
		if p.ShapesDone != i+1 || p.ShapesTotal != cg.shapes() {
			t.Fatalf("progress %d: cursor (%d of %d)", i, p.ShapesDone, p.ShapesTotal)
		}
		if p.Streamed != int64(p.ShapesDone)*int64(len(cg.cells)) {
			t.Fatalf("progress %d: streamed %d, want %d", i, p.Streamed, int64(p.ShapesDone)*int64(len(cg.cells)))
		}
		if p.Kept < 1 || int64(p.Kept)+p.Pruned != p.Streamed {
			t.Fatalf("progress %d: kept %d + pruned %d != streamed %d", i, p.Kept, p.Pruned, p.Streamed)
		}
	}
	last := got[len(got)-1]
	if last.Streamed != r.Total || last.Kept != r.Kept() {
		t.Fatalf("final progress (%d streamed, %d kept) disagrees with result (%d, %d)", last.Streamed, last.Kept, r.Total, r.Kept())
	}
}

// TestCheckpointMultiTask covers the multi-accumulator path: every task
// resumes bit-identically from a shared checkpoint.
func TestCheckpointMultiTask(t *testing.T) {
	tasks := []workload.Task{paperTask(t, "All kernels"), paperTask(t, "AI (10 kernels)")}
	g := ckptGrid()
	full, err := EvaluateStreamCheckpointedTasks(context.Background(), tasks, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var cp *StreamCheckpoint
	if _, err := EvaluateStreamCheckpointedTasks(context.Background(), tasks, g, carbon.FabCoal, 380, CheckpointOptions{
		Every:        5,
		OnCheckpoint: func(c *StreamCheckpoint) error { cp = c; return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if cp == nil || len(cp.Accs) != 2 {
		t.Fatalf("expected a 2-task checkpoint, got %+v", cp)
	}
	resumed, err := EvaluateStreamCheckpointedTasks(context.Background(), tasks, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 3},
		Resume:        cp,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		sameStreamResult(t, tasks[i].Name, resumed[i], full[i])
	}
}
