package dse

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cordoba/internal/carbon"
	"cordoba/internal/pareto"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden oracle envelopes and surrogate quality reports")

// goldenFrontPoint is one oracle envelope vertex in the objective plane.
type goldenFrontPoint struct {
	ID int64   `json:"id"`
	X  float64 `json:"x"` // E·D
	Y  float64 `json:"y"` // C_emb·D
}

// goldenReport is the checked-in record of one reference grid: the
// exhaustive oracle's envelope and the surrogate search's exact outcome
// against it. Everything is deterministic (fixed seed, ordered
// accumulation), so the comparison is byte-for-byte; regenerate with
//
//	go test ./internal/dse -run TestSurrogateGolden -update
type goldenReport struct {
	GridPoints int64 `json:"grid_points"`
	Oracle     struct {
		Kept  int                `json:"kept"`
		Front []goldenFrontPoint `json:"front"`
	} `json:"oracle"`
	Surrogate struct {
		Seed        uint64  `json:"seed"`
		Budget      int64   `json:"budget"`
		Evaluations int64   `json:"evaluations"`
		Generations int     `json:"generations"`
		Skipped     int64   `json:"skipped"`
		IDs         []int64 `json:"ids"`
		Quality     Quality `json:"quality"`
	} `json:"surrogate"`
}

// goldenGrids are the three reference spaces the quality bar is pinned on:
// a lattice small enough for the budget to cover it exactly, the 121-config
// grid behind the paper's figure-8 reproduction, and the 10⁵-point grid the
// oracle-equivalence acceptance test runs on.
var goldenGrids = []struct {
	name   string
	grid   func() Grid
	seed   uint64
	budget int64 // 0 = engine default
	short  bool  // runs under -short
}{
	{"lattice-12", func() Grid {
		return Grid{MACArrays: []int{1, 8, 32}, SRAMMB: []float64{2, 16}, VDDScales: []float64{0.8, 1.0}}
	}, 1, 12, true},
	{"fig8-121", fig8Grid, 1, 60, true},
	{"ref-105k", refGrid105k, 1, 0, false},
}

// TestSurrogateGolden locks each reference grid's oracle envelope and the
// surrogate's quality against it. The oracle front is stored in the golden
// file, so the expensive exhaustive run only happens under -update; regular
// runs pay just the surrogate budget and verify byte-identity of the whole
// report.
func TestSurrogateGolden(t *testing.T) {
	task := paperTask(t, "All kernels")
	for _, tc := range goldenGrids {
		t.Run(tc.name, func(t *testing.T) {
			if !tc.short && testing.Short() && !*updateGolden {
				t.Skipf("%s surrogate run in -short mode", tc.name)
			}
			g := tc.grid()
			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			memo := NewMemoCache(0)

			r, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, SurrogateOptions{
				Seed: tc.seed, Budget: tc.budget, StreamOptions: StreamOptions{Memo: memo},
			})
			if err != nil {
				t.Fatal(err)
			}

			var report goldenReport
			report.GridPoints = r.GridPoints
			report.Surrogate.Seed = r.Seed
			report.Surrogate.Budget = r.Budget
			report.Surrogate.Evaluations = r.Evaluations
			report.Surrogate.Generations = r.Generations
			report.Surrogate.Skipped = r.Skipped
			report.Surrogate.IDs = r.IDs

			var oracleFront []pareto.Point
			if *updateGolden {
				oracle, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Memo: memo})
				if err != nil {
					t.Fatal(err)
				}
				report.Oracle.Kept = oracle.Kept()
				for i, p := range oracle.Space.Points {
					report.Oracle.Front = append(report.Oracle.Front,
						goldenFrontPoint{ID: oracle.IDs[i], X: p.EDP(), Y: p.EmbodiedDelay()})
				}
			} else {
				// The stored oracle front is the reference; regular runs never
				// pay the exhaustive walk.
				stored, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run with -update): %v", err)
				}
				var prev goldenReport
				if err := json.Unmarshal(stored, &prev); err != nil {
					t.Fatalf("corrupt golden file %s: %v", path, err)
				}
				report.Oracle = prev.Oracle
			}
			for _, p := range report.Oracle.Front {
				oracleFront = append(oracleFront, pareto.Point{X: p.X, Y: p.Y})
			}
			report.Surrogate.Quality = measureQualityFronts(envelopeFront(r.StreamResult), oracleFront)

			got, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s: %d evals, HV ratio %.5f", path,
					report.Surrogate.Evaluations, report.Surrogate.Quality.HypervolumeRatio)
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(got) != string(want) {
				t.Fatalf("surrogate report drifted from %s (regenerate with -update if intended):\ngot:\n%s\nwant:\n%s",
					path, got, want)
			}

			// Beyond byte-identity, hold the documented quality floor: exact
			// on the full-budget lattice, ≥ 0.99 hypervolume elsewhere.
			q := report.Surrogate.Quality
			if tc.budget >= g.Size() && tc.budget > 0 {
				if q.HypervolumeRatio != 1 || q.Coverage != 1 {
					t.Fatalf("full-budget grid not exact: %+v", q)
				}
			} else if q.HypervolumeRatio < 0.99 {
				t.Fatalf("hypervolume ratio %.5f < 0.99 on %s", q.HypervolumeRatio, tc.name)
			}
		})
	}
}
