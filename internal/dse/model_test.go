package dse

import (
	"context"
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
)

func TestGridModelsAxis(t *testing.T) {
	g := Grid{MACArrays: []int{16}, SRAMMB: []float64{8}, Models: []string{"act", "chiplet"}}
	if got := g.Size(); got != 2 {
		t.Fatalf("Size with 2 models = %d, want 2", got)
	}
	cg, err := g.compile()
	if err != nil {
		t.Fatal(err)
	}
	_, c0 := cg.at(0)
	_, c1 := cg.at(1)
	if c0.modelName != "act" || c1.modelName != "chiplet" {
		t.Fatalf("model cell order: %q, %q, want act, chiplet", c0.modelName, c1.modelName)
	}
	if c0.model == nil || c1.model == nil {
		t.Fatal("named model axis must compile to non-nil backends")
	}

	// Empty axis keeps the pre-knob cells: nil model, blank name.
	plain, err := Grid{MACArrays: []int{16}, SRAMMB: []float64{8}}.compile()
	if err != nil {
		t.Fatal(err)
	}
	if _, cell := plain.at(0); cell.model != nil || cell.modelName != "" {
		t.Fatalf("default grid cell should be unlabeled, got %+v", cell)
	}

	// Unknown names are rejected at compile time.
	bad := Grid{MACArrays: []int{16}, SRAMMB: []float64{8}, Models: []string{"magic"}}
	if _, err := bad.compile(); err == nil {
		t.Error("unknown model name should fail compile")
	}
}

// The zero-value Accounting must reproduce Evaluate bit for bit, and an
// explicit ACT/Murphy selection must only add the Model label.
func TestEvaluateWithZeroValueIsEvaluate(t *testing.T) {
	task := paperTask(t, "AI (5 kernels)")
	configs := accel.Grid()[:12]
	proc := carbon.Process7nm()

	base, err := Evaluate(task, configs, proc, carbon.FabCoal, 380)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := EvaluateWith(task, configs, proc, carbon.FabCoal, 380, Accounting{})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := EvaluateWith(task, configs, proc, carbon.FabCoal, 380,
		Accounting{Model: carbon.ACTModel{}, Yield: carbon.MurphyYield{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Points {
		if zero.Points[i] != base.Points[i] {
			t.Fatalf("point %d: zero-value accounting diverged:\n got %+v\nwant %+v", i, zero.Points[i], base.Points[i])
		}
		if base.Points[i].Model != "" {
			t.Fatalf("point %d: default path must leave Model blank, got %q", i, base.Points[i].Model)
		}
		e := explicit.Points[i]
		if e.Model != "act" {
			t.Fatalf("point %d: explicit ACT should label the point, got %q", i, e.Model)
		}
		e.Model = ""
		if e != base.Points[i] {
			t.Fatalf("point %d: explicit ACT/Murphy moved a value:\n got %+v\nwant %+v", i, explicit.Points[i], base.Points[i])
		}
	}
}

// Swapping the accounting backend moves only the embodied axis of each point.
func TestEvaluateWithAlternativeBackend(t *testing.T) {
	task := paperTask(t, "AI (5 kernels)")
	configs := accel.Grid()[:12]
	proc := carbon.Process7nm()

	base, err := Evaluate(task, configs, proc, carbon.FabCoal, 380)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := EvaluateWith(task, configs, proc, carbon.FabCoal, 380, Accounting{Model: carbon.ChipletModel{}})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range base.Points {
		b, c := base.Points[i], ch.Points[i]
		if c.Model != "chiplet" {
			t.Fatalf("point %d: Model = %q, want chiplet", i, c.Model)
		}
		if c.Delay != b.Delay || c.Energy != b.Energy || c.Area != b.Area {
			t.Fatalf("point %d: backend choice must not touch performance: %+v vs %+v", i, c, b)
		}
		if c.Embodied != b.Embodied {
			moved++
		}
	}
	if moved == 0 {
		t.Error("chiplet backend left every embodied value unchanged")
	}
}

// The model axis flows through the streaming engine identically to the naive
// materialize-and-evaluate path, and points carry their backend label.
func TestStreamMatchesNaiveModelGrid(t *testing.T) {
	task := paperTask(t, "AI (5 kernels)")
	g := Grid{
		MACArrays: []int{16, 64},
		SRAMMB:    []float64{8},
		Models:    []string{"act", "chiplet", "stacked-3d"},
	}
	naive, err := EvaluateGrid(task, g, carbon.FabCoal, 380)
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Points) != 6 {
		t.Fatalf("naive grid = %d points, want 6", len(naive.Points))
	}
	for i, p := range naive.Points {
		want := g.Models[i%len(g.Models)]
		if p.Model != want {
			t.Errorf("point %d: Model = %q, want %q (models innermost)", i, p.Model, want)
		}
	}

	res, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 6 {
		t.Fatalf("stream evaluated %d points, want 6", res.Total)
	}
	// Every streamed survivor must be bitwise-identical to its naive twin.
	byID := map[string]Point{}
	for _, p := range naive.Points {
		byID[p.Config.ID] = p
	}
	for _, p := range res.Space.Points {
		if tw, ok := byID[p.Config.ID]; !ok || p != tw {
			t.Errorf("streamed %s diverged from naive:\n got %+v\nwant %+v", p.Config.ID, p, tw)
		}
	}
	// Same-shape points differ only in embodied carbon, so for each shape
	// the envelope must keep the cheapest backend and drop the rest.
	valid := map[string]bool{"act": true, "chiplet": true, "stacked-3d": true}
	for _, p := range res.Space.Points {
		if !valid[p.Model] {
			t.Errorf("survivor %s carries unknown backend label %q", p.Config.ID, p.Model)
		}
		for _, tw := range naive.Points {
			if tw.Config.MACArrays == p.Config.MACArrays && tw.Config.SRAM == p.Config.SRAM &&
				tw.Embodied < p.Embodied {
				t.Errorf("survivor %s (%s, %v) beaten by dropped %s (%s, %v) of the same shape",
					p.Config.ID, p.Model, p.Embodied, tw.Config.ID, tw.Model, tw.Embodied)
			}
		}
	}
}

// A named yield model in StreamOptions rederates every cell.
func TestStreamYieldOption(t *testing.T) {
	task := paperTask(t, "AI (5 kernels)")
	g := Grid{MACArrays: []int{256}, SRAMMB: []float64{192}} // biggest die
	base, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	be, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380,
		StreamOptions{Yield: carbon.BoseEinsteinYield{CriticalLayers: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Space.Points) != 1 || len(be.Space.Points) != 1 {
		t.Fatal("single-point grid should survive whole")
	}
	if !(be.Space.Points[0].Embodied > base.Space.Points[0].Embodied) {
		t.Errorf("Bose-Einstein yield should raise embodied: %v vs %v",
			be.Space.Points[0].Embodied, base.Space.Points[0].Embodied)
	}
}
