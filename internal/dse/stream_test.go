package dse

import (
	"context"
	"math"
	"sync"
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/nn"
	"cordoba/internal/workload"
)

// fig8Grid is the Fig. 8 design space expressed as a knob grid (defaults:
// nominal V_DD, 7 nm).
func fig8Grid() Grid {
	macs, sram := accel.GridOptions()
	return Grid{MACArrays: macs, SRAMMB: sram}
}

func paperTask(t *testing.T, name string) workload.Task {
	t.Helper()
	task, err := workload.PaperTask(name)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestGridSizeAndIndexing(t *testing.T) {
	g := Grid{MACArrays: []int{1, 2, 4}, SRAMMB: []float64{1, 2}, VDDScales: []float64{1.0, 0.8}, Nodes: []string{"7nm", "5nm"}}
	if got := g.Size(); got != 3*2*2*2 {
		t.Fatalf("Size = %d, want 24", got)
	}
	cg, err := g.compile()
	if err != nil {
		t.Fatal(err)
	}
	if cg.shapes() != 6 || cg.size() != 24 {
		t.Fatalf("shapes = %d size = %d, want 6, 24", cg.shapes(), cg.size())
	}
	// Shape-major: the first 4 indices share (MACArrays, SRAM) and sweep the
	// 2×2 (V_DD, node) cells; index 4 moves to the next SRAM option.
	c0, _ := cg.at(0)
	c3, _ := cg.at(3)
	c4, _ := cg.at(4)
	if c0.MACArrays != 1 || c3.MACArrays != 1 || c0.SRAM != c3.SRAM {
		t.Fatalf("cells 0 and 3 should share the first shape: %+v vs %+v", c0, c3)
	}
	if c4.SRAM == c0.SRAM {
		t.Fatalf("cell 4 should advance the SRAM axis")
	}
	if c0.ID != "k1" || c4.ID != "k5" {
		t.Fatalf("ID scheme: got %q, %q, want k1, k5", c0.ID, c4.ID)
	}
	// Per-cell processes follow the node axis.
	_, p0 := cg.at(0)
	_, p1 := cg.at(1)
	if p0.process.Node != "7nm" || p1.process.Node != "5nm" {
		t.Fatalf("cell processes: got %q, %q, want 7nm, 5nm", p0.process.Node, p1.process.Node)
	}
}

func TestGridNominalCellIsIdentity(t *testing.T) {
	// The default cell (V_DD ×1.0, 7 nm) must reproduce accel.New bitwise:
	// all device-model ratios are exactly 1 against the calibration anchor.
	g := Grid{MACArrays: []int{16}, SRAMMB: []float64{8}}
	configs, procs, err := g.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 1 {
		t.Fatalf("materialized %d configs, want 1", len(configs))
	}
	want := accel.New("k1", 16, configs[0].SRAM)
	if configs[0] != want {
		t.Fatalf("nominal grid cell drifted from accel.New:\n got %+v\nwant %+v", configs[0], want)
	}
	if procs[0].Node != "7nm" {
		t.Fatalf("nominal process = %q, want 7nm", procs[0].Node)
	}
}

func TestGridValidation(t *testing.T) {
	cases := map[string]Grid{
		"no arrays":      {SRAMMB: []float64{1}},
		"no sram":        {MACArrays: []int{1}},
		"bad arrays":     {MACArrays: []int{0}, SRAMMB: []float64{1}},
		"bad sram":       {MACArrays: []int{1}, SRAMMB: []float64{-2}},
		"bad vdd":        {MACArrays: []int{1}, SRAMMB: []float64{1}, VDDScales: []float64{0}},
		"unknown node":   {MACArrays: []int{1}, SRAMMB: []float64{1}, Nodes: []string{"6nm"}},
		"vdd below vt":   {MACArrays: []int{1}, SRAMMB: []float64{1}, VDDScales: []float64{0.3}}, // 0.3·0.7 V < V_T = 0.3 V
		"overflow guard": {MACArrays: make([]int, 1<<14), SRAMMB: make([]float64, 1<<14), VDDScales: make([]float64, 1<<12), Nodes: []string{"7nm"}},
	}
	for name, g := range cases {
		if _, err := g.compile(); err == nil {
			t.Errorf("%s: compile accepted invalid grid %+v", name, g)
		}
	}
}

func TestGridKnobCellsScaleParams(t *testing.T) {
	g := Grid{MACArrays: []int{16}, SRAMMB: []float64{8}, VDDScales: []float64{1.0, 0.8}, Nodes: []string{"7nm", "3nm"}}
	configs, procs, err := g.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	nominal := configs[0] // ×1.0, 7nm
	lowV := configs[2]    // ×0.8, 7nm (cell index = vddIdx·len(nodes)+nodeIdx)
	newNode := configs[1] // ×1.0, 3nm
	if !(lowV.Params.Clock < nominal.Params.Clock) {
		t.Errorf("V_DD scaling should slow the clock: %v vs %v", lowV.Params.Clock, nominal.Params.Clock)
	}
	if !(lowV.Params.MACEnergy < nominal.Params.MACEnergy) {
		t.Errorf("V_DD scaling should cut dynamic energy: %v vs %v", lowV.Params.MACEnergy, nominal.Params.MACEnergy)
	}
	if !(newNode.Params.MACEnergy < nominal.Params.MACEnergy) {
		t.Errorf("node advance should cut dynamic energy: %v vs %v", newNode.Params.MACEnergy, nominal.Params.MACEnergy)
	}
	if !(newNode.Params.BaseArea < nominal.Params.BaseArea) {
		t.Errorf("node advance should shrink area: %v vs %v", newNode.Params.BaseArea, nominal.Params.BaseArea)
	}
	if procs[1].Node != "3nm" || procs[3].Node != "3nm" {
		t.Errorf("3nm cells should carry the 3nm embodied process")
	}
	// DRAM stays off-chip: untouched by every knob.
	for i, c := range configs {
		if c.Params.DRAMEnergyPerByte != nominal.Params.DRAMEnergyPerByte || c.Params.DRAMBW != nominal.Params.DRAMBW {
			t.Errorf("config %d: DRAM parameters must not scale with logic knobs", i)
		}
	}
}

func TestEvaluateGridMatchesEvaluate(t *testing.T) {
	// The nominal Fig. 8 knob grid must evaluate bitwise-identically to the
	// materialized accel.Grid through the v1 engine.
	task := paperTask(t, "All kernels")
	want, err := EvaluateDefault(task, accel.Grid())
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateGrid(task, fig8Grid(), carbon.FabCoal, 380)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(got.Points), len(want.Points))
	}
	for i := range got.Points {
		g, w := got.Points[i], want.Points[i]
		if g.Delay != w.Delay || g.Energy != w.Energy || g.Embodied != w.Embodied || g.Area != w.Area {
			t.Fatalf("point %d differs:\n grid %+v\n v1   %+v", i, g, w)
		}
	}
}

// checkStreamMatchesNaive asserts the streaming result is identical to
// materializing the same grid: same ever-optimal set (by ID and bitwise
// coordinates), same elimination fraction, same per-N optima.
func checkStreamMatchesNaive(t *testing.T, r *StreamResult, naive *Space) {
	t.Helper()
	wantIdx := naive.EverOptimal()
	if r.Kept() != len(wantIdx) {
		t.Fatalf("streaming kept %d points, naive envelope has %d", r.Kept(), len(wantIdx))
	}
	for k, idx := range wantIdx {
		w := naive.Points[idx]
		g := r.Space.Points[k]
		if g.Config.ID != w.Config.ID {
			t.Fatalf("survivor %d: streaming kept %q, naive %q", k, g.Config.ID, w.Config.ID)
		}
		if g.Delay != w.Delay || g.Energy != w.Energy || g.Embodied != w.Embodied || g.Area != w.Area {
			t.Fatalf("survivor %q differs between engines:\n stream %+v\n naive  %+v", g.Config.ID, g, w)
		}
	}
	if int64(len(naive.Points)) != r.Total {
		t.Fatalf("streaming evaluated %d points, naive %d", r.Total, len(naive.Points))
	}
	naiveElim := 1 - float64(len(wantIdx))/float64(len(naive.Points))
	if got := r.EliminatedFraction(); got != naiveElim {
		t.Fatalf("EliminatedFraction: streaming %v, naive %v", got, naiveElim)
	}
	for _, n := range LogSpace(1, 1e12, 13) {
		wi := naive.OptimalAt(n)
		gi := r.OptimalAt(n)
		if naive.Points[wi].Config.ID != r.Space.Points[gi].Config.ID {
			t.Fatalf("optimal at N=%g: streaming %q, naive %q", n,
				r.Space.Points[gi].Config.ID, naive.Points[wi].Config.ID)
		}
		wm := naive.MeanTCDPAt(n)
		gm := r.MeanTCDPAt(n)
		if diff := math.Abs(gm-wm) / wm; diff > 1e-9 {
			t.Fatalf("mean tCDP at N=%g: streaming %v, naive %v (rel diff %g)", n, gm, wm, diff)
		}
	}
}

func TestStreamMatchesNaiveFig8(t *testing.T) {
	task := paperTask(t, "All kernels")
	naive, err := EvaluateGrid(task, fig8Grid(), carbon.FabCoal, 380)
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvaluateStream(context.Background(), task, fig8Grid(), carbon.FabCoal, 380, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamMatchesNaive(t, r, naive)
}

func TestStreamMatchesNaiveKnobGrid(t *testing.T) {
	// A grid exercising every knob axis, including 3nm/5nm embodied
	// processes and two DVFS points.
	g := Grid{
		MACArrays: []int{1, 4, 16, 64},
		SRAMMB:    []float64{1, 8, 64},
		VDDScales: []float64{1.0, 0.8},
		Nodes:     []string{"28nm", "7nm", "3nm"},
	}
	task := paperTask(t, "XR (5 kernels)")
	naive, err := EvaluateGrid(task, g, carbon.FabTaiwan, 200)
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvaluateStream(context.Background(), task, g, carbon.FabTaiwan, 200, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkStreamMatchesNaive(t, r, naive)
	// Each shape chunk holds 6 (V_DD, node) cells; dominance inside a chunk
	// must shrink the envelope's input stream.
	if r.PrePruned <= 0 {
		t.Errorf("dominance pre-pruning removed nothing on a multi-cell knob grid")
	}
	if r.Offered >= r.Total {
		t.Errorf("pre-pruning should shrink the envelope's input: offered %d of %d", r.Offered, r.Total)
	}
	if r.Offered+r.PrePruned != r.Total {
		t.Errorf("offered %d + pre-pruned %d != total %d", r.Offered, r.PrePruned, r.Total)
	}
}

func TestStreamParallelMatchesSerial(t *testing.T) {
	g := Grid{
		MACArrays: []int{1, 2, 4, 8, 16, 32, 64},
		SRAMMB:    []float64{1, 4, 16, 64},
		VDDScales: []float64{1.0, 0.9},
		Nodes:     []string{"7nm", "5nm"},
	}
	task := paperTask(t, "AI (5 kernels)")
	serial, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Kept() != parallel.Kept() || serial.Total != parallel.Total {
		t.Fatalf("worker count changed results: serial kept %d/%d, parallel %d/%d",
			serial.Kept(), serial.Total, parallel.Kept(), parallel.Total)
	}
	for i := range serial.Space.Points {
		s, p := serial.Space.Points[i], parallel.Space.Points[i]
		if s.Config.ID != p.Config.ID || s.Delay != p.Delay || s.Energy != p.Energy || s.Embodied != p.Embodied {
			t.Fatalf("survivor %d differs across worker counts: %+v vs %+v", i, s, p)
		}
	}
}

func TestStreamMultiTaskSharesEvaluation(t *testing.T) {
	g := Grid{MACArrays: []int{1, 4, 16}, SRAMMB: []float64{1, 8}}
	tasks := []workload.Task{paperTask(t, "XR (5 kernels)"), paperTask(t, "AI (5 kernels)")}
	memo := NewMemoCache(0)
	rs, err := EvaluateStreamTasks(context.Background(), tasks, g, carbon.FabCoal, 380, StreamOptions{Workers: 1, Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("got %d results for 2 tasks", len(rs))
	}
	for ti, task := range tasks {
		solo, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if rs[ti].Kept() != solo.Kept() {
			t.Fatalf("task %q: multi-task kept %d, solo kept %d", task.Name, rs[ti].Kept(), solo.Kept())
		}
		for i := range solo.Space.Points {
			a, b := rs[ti].Space.Points[i], solo.Space.Points[i]
			if a.Config.ID != b.Config.ID || a.Delay != b.Delay || a.Energy != b.Energy {
				t.Fatalf("task %q survivor %d differs between multi and solo runs", task.Name, i)
			}
		}
	}
	// One profile per (kernel, shape): the union of both tasks is 10
	// kernels over 6 shapes.
	if got := memo.Len(); got != 60 {
		t.Errorf("memo holds %d profiles, want 60 (10 kernels × 6 shapes)", got)
	}
	hits, misses := memo.Stats()
	if misses != 60 {
		t.Errorf("memo misses = %d, want exactly one per (kernel, shape)", misses)
	}
	if hits != 0 {
		// Single worker computes each shape's profiles once; a second run
		// over the same memo must hit every time.
		t.Errorf("unexpected memo hits on first run: %d", hits)
	}
	if _, err := EvaluateStreamTasks(context.Background(), tasks, g, carbon.FabCoal, 380, StreamOptions{Workers: 1, Memo: memo}); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := memo.Stats()
	if misses2 != misses || hits2 != 60 {
		t.Errorf("second run over shared memo: hits %d misses %d, want 60 hits, %d misses", hits2, misses2, misses)
	}
}

func TestStreamContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := EvaluateStream(ctx, paperTask(t, "All kernels"), fig8Grid(), carbon.FabCoal, 380, StreamOptions{Workers: 2})
	if err == nil {
		t.Fatal("cancelled context did not abort the stream")
	}
}

func TestStreamInputValidation(t *testing.T) {
	task := paperTask(t, "All kernels")
	if _, err := EvaluateStream(context.Background(), task, Grid{}, carbon.FabCoal, 380, StreamOptions{}); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := EvaluateStream(context.Background(), task, fig8Grid(), carbon.FabCoal, -1, StreamOptions{}); err == nil {
		t.Error("negative CI accepted")
	}
	if _, err := EvaluateStreamTasks(context.Background(), nil, fig8Grid(), carbon.FabCoal, 380, StreamOptions{}); err == nil {
		t.Error("no tasks accepted")
	}
}

func TestShapeProfileReplayBitwise(t *testing.T) {
	// The memoized replay path must reproduce the direct simulator path
	// bitwise for every kernel, on nominal and knob-scaled configs alike.
	g := Grid{MACArrays: []int{1, 16, 256}, SRAMMB: []float64{1, 192}, VDDScales: []float64{1.0, 0.75}, Nodes: []string{"7nm", "28nm"}}
	configs, _, err := g.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range configs {
		for _, id := range nn.AllKernels() {
			sp, err := c.ShapeProfile(id)
			if err != nil {
				t.Fatal(err)
			}
			direct, err := c.KernelCost(id)
			if err != nil {
				t.Fatal(err)
			}
			replay := sp.Cost(c)
			if replay != direct {
				t.Fatalf("config %s kernel %s: replay %+v != direct %+v", c.ID, id, replay, direct)
			}
		}
	}
}

func TestMemoCacheBoundAndConcurrency(t *testing.T) {
	memo := NewMemoCache(4)
	var wg sync.WaitGroup
	configs := []accel.Config{
		accel.New("a", 1, 1<<20),
		accel.New("b", 2, 1<<20),
		accel.New("c", 4, 1<<20),
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := configs[i%len(configs)]
				if _, err := memo.Profile(c, nn.AllKernels()[i%3]); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if memo.Len() > 4 {
		t.Errorf("memo exceeded its bound: %d entries > 4", memo.Len())
	}
	hits, misses := memo.Stats()
	if hits+misses != 8*50 {
		t.Errorf("hit+miss = %d, want %d", hits+misses, 8*50)
	}
}
