package dse

import (
	"context"
	"runtime"
	"testing"

	"cordoba/internal/carbon"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// allocTestGrid returns a grid with several shapes and a many-cell DVFS/node
// sweep per shape, small enough to evaluate quickly.
func allocTestGrid() Grid {
	return Grid{
		MACArrays: []int{8, 16, 32},
		SRAMMB:    []float64{2, 4},
		VDDScales: []float64{1.0, 0.9, 0.8},
		Nodes:     []string{"7nm", "5nm", "3nm"},
	}
}

// evalShapeAllocs measures steady-state allocations of one evalShape call
// on grid g after a full warm-up pass (memo fill, scratch growth).
func evalShapeAllocs(t *testing.T, g Grid) float64 {
	t.Helper()
	cg, err := g.compile()
	if err != nil {
		t.Fatal(err)
	}
	tasks := []workload.Task{paperTask(t, workload.TaskXR5)}
	kernels := kernelUnion(tasks)
	memo := NewMemoCache(0)
	fab := carbon.FabCoal
	sc := newEvalScratch(cg, kernels)
	buffers := make([][]Point, len(tasks))
	for ti := range buffers {
		buffers[ti] = make([]Point, 0, len(cg.cells))
	}
	for si := 0; si < cg.shapes(); si++ {
		if err := evalShape(cg, si, kernels, tasks, memo, fab, nil, sc, buffers); err != nil {
			t.Fatal(err)
		}
	}
	si := 0
	return testing.AllocsPerRun(20, func() {
		if err := evalShape(cg, si, kernels, tasks, memo, fab, nil, sc, buffers); err != nil {
			t.Fatal(err)
		}
		si = (si + 1) % cg.shapes()
	})
}

// TestEvalShapeSteadyStateAllocs pins the tentpole: after warm-up, the
// streaming inner loop — batched memo lookup, profile replay, point
// buffering — allocates nothing per cell. The only remaining allocations
// are the per-(shape, embodied-class) EmbodiedWith calls, which depend on
// the node/model axes, not the cell count — so widening the V_DD axis 8×
// (8× the cells per shape, same classes) must not add a single allocation,
// and the per-shape total must stay far below one object per cell. The
// historical loop allocated ~9 objects per cell.
func TestEvalShapeSteadyStateAllocs(t *testing.T) {
	narrow := allocTestGrid() // 9 cells per shape
	wide := allocTestGrid()
	wide.VDDScales = []float64{1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65} // 24 cells per shape

	aNarrow := evalShapeAllocs(t, narrow)
	aWide := evalShapeAllocs(t, wide)
	if aWide > aNarrow {
		t.Fatalf("per-cell allocations crept back: %.1f allocs at %d cells/shape vs %.1f at %d", aWide, 24, aNarrow, 9)
	}
	if perCell := aWide / 24; perCell >= 1 {
		t.Fatalf("steady-state evalShape allocates %.2f objects per cell, want 0", perCell)
	}
}

// TestEvalShapeSteadyStateAllocsWithPartitionAxes: the zero-marginal-
// allocation invariant must survive the partition axes. Widening the grid
// with integration/chiplets/chiplet-node axes multiplies the cells per shape
// but must not add per-cell allocations: the partition is priced through the
// same per-(shape, embodied-class) path as the node/model axes, so the
// per-cell average has to stay below one object.
func TestEvalShapeSteadyStateAllocsWithPartitionAxes(t *testing.T) {
	flat := allocTestGrid() // 9 cells per shape
	part := allocTestGrid()
	part.Integrations = []string{"monolithic", "2.5d", "3d"}
	part.Chiplets = []int{2, 4}
	part.ChipletNodes = []string{"10nm", "14nm"} // 108 cells per shape

	aFlat := evalShapeAllocs(t, flat)
	aPart := evalShapeAllocs(t, part)
	if perCell := aPart / 108; perCell >= 1 {
		t.Fatalf("steady-state evalShape with partition axes allocates %.2f objects per cell, want < 1", perCell)
	}
	// The absolute count grows with the embodied-class count (each class is
	// one multi-die pricing per shape; a partitioned spec allocates a couple
	// more objects than a monolithic one), never with the cell count: the
	// per-class cost must stay a small constant regardless of how many cells
	// share each class.
	classesOf := func(g Grid) float64 {
		cg, err := g.compile()
		if err != nil {
			t.Fatal(err)
		}
		return float64(cg.embClasses)
	}
	if perClass := aPart / classesOf(part); perClass > 6 {
		t.Fatalf("per-class allocations = %.2f with partition axes (flat grid: %.2f), want a small constant",
			perClass, aFlat/classesOf(flat))
	}
}

// TestOfferChunkSteadyStateAllocs: the accumulator side of the hot path.
// Offers of all-dominated chunks (the overwhelmingly common case at steady
// state) must not allocate; envelope insertions may.
func TestOfferChunkSteadyStateAllocs(t *testing.T) {
	acc := &taskAcc{payload: make(map[int64]Point)}

	pts := make([]Point, 16)
	for i := range pts {
		// One clear winner at index 0; the rest strictly dominated.
		pts[i] = Point{Delay: units.Time(1 + i), Energy: units.Energy(1 + i), Embodied: units.Carbon(1 + i)}
	}
	// Warm up: sizes the scratch and admits the surviving envelope.
	acc.offerChunk(0, pts)

	base := int64(len(pts))
	allocs := testing.AllocsPerRun(50, func() {
		acc.offerChunk(base, pts[1:]) // every point dominated by the resident envelope
	})
	if allocs > 0 {
		t.Fatalf("steady-state offerChunk allocates %.1f objects per chunk, want 0", allocs)
	}
}

// TestStreamingAllocsScaleWithShapesNotCells: end-to-end guard that total
// engine allocations track the shape count, not the cell count. Two grids
// with identical shapes but a 9×-different cell count must stay within a
// small factor of each other — before the scratch refactor the ratio
// tracked the cell ratio.
func TestStreamingAllocsScaleWithShapesNotCells(t *testing.T) {
	task := paperTask(t, workload.TaskXR5)
	fab := carbon.FabCoal
	run := func(g Grid) uint64 {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		if _, err := EvaluateStream(context.Background(), task, g, fab, 100, StreamOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&ms1)
		return ms1.Mallocs - ms0.Mallocs
	}

	small := Grid{MACArrays: []int{8, 16, 32}, SRAMMB: []float64{2, 4}, VDDScales: []float64{1.0}, Nodes: []string{"7nm"}}
	big := Grid{MACArrays: []int{8, 16, 32}, SRAMMB: []float64{2, 4}, VDDScales: []float64{1.0, 0.9, 0.8}, Nodes: []string{"7nm", "5nm", "3nm"}}

	run(small) // warm-up: one-time laziness (device tables, paper tasks)
	aSmall := run(small)
	aBig := run(big)
	// 9× the cells should cost well under 3× the allocations (fixed
	// per-run overhead dominates; the inner loop contributes ~nothing).
	if aBig > 3*aSmall {
		t.Fatalf("allocations scale with cells: %d cells → %d mallocs, %d cells → %d mallocs", small.Size(), aSmall, big.Size(), aBig)
	}
}
