package dse

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/pareto"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// propSpaces is the number of seeded-random design spaces the property
// suite checks (the ISSUE's "~1000 random spaces" acceptance bar).
const propSpaces = 1000

// randomSpace builds a synthetic evaluated design space: points with
// log-uniform delay, energy and embodied carbon — continuous random
// coordinates, so exact ties and collinear triples have probability zero
// and the streaming/batch equivalence is exact, not approximate.
func randomSpace(rng *rand.Rand) *Space {
	n := 2 + rng.Intn(60)
	s := &Space{
		Task:   workload.Task{Name: "synthetic"},
		CIUse:  units.CarbonIntensity(50 + rng.Float64()*750),
		Points: make([]Point, n),
	}
	for i := range s.Points {
		s.Points[i] = Point{
			Config:   accel.Config{ID: "p" + strconv.Itoa(i)},
			Delay:    units.Time(math.Exp(rng.Float64()*8 - 8)),   // 0.3 ms … 1 s
			Energy:   units.Energy(math.Exp(rng.Float64()*8 - 6)), // 2.5 mJ … 7 J
			Embodied: units.Carbon(math.Exp(rng.Float64() * 8)),   // 1 g … 3 kg
		}
	}
	return s
}

// streamSpace feeds the space's Lagrange points through the incremental
// accumulator in the given order and returns the kept indices (ascending X).
func streamSpace(s *Space, order []int) []int {
	var st pareto.Stream
	for _, i := range order {
		p := s.Points[i]
		st.Offer(int64(i), pareto.Point{X: p.EDP(), Y: p.EmbodiedDelay()})
	}
	ids := st.IDs()
	out := make([]int, len(ids))
	for k, id := range ids {
		out[k] = int(id)
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// witnessInferences derives, for each envelope member, an operational time N
// strictly inside its optimality window — the brute-force N-sweep that must
// recover the envelope exactly. Window breakpoints are the chord slopes
// β_k = (Y_k − Y_{k+1})/(X_{k+1} − X_k) of adjacent envelope vertices, and
// β maps to N via tCDP(N) ∝ Y + (CI·N/3.6e6)·X.
func witnessInferences(s *Space, env []int) []float64 {
	m := len(env)
	betaToN := func(beta float64) float64 {
		return beta * units.JoulesPerKWh / s.CIUse.GramsPerKWh()
	}
	if m == 1 {
		return []float64{betaToN(1)}
	}
	slopes := make([]float64, m-1) // slopes[k]: breakpoint between env[k] and env[k+1]
	for k := 0; k < m-1; k++ {
		a, b := s.Points[env[k]], s.Points[env[k+1]]
		slopes[k] = (a.EmbodiedDelay() - b.EmbodiedDelay()) / (b.EDP() - a.EDP())
	}
	ns := make([]float64, m)
	ns[0] = betaToN(slopes[0] * 2) // lowest-X vertex wins for β > slopes[0]
	for k := 1; k < m-1; k++ {
		ns[k] = betaToN(math.Sqrt(slopes[k] * slopes[k-1])) // geometric midpoint
	}
	ns[m-1] = betaToN(slopes[m-2] / 2) // highest-X vertex wins for β < slopes[m-2]
	return ns
}

// TestPropStreamEquivalence is the core property: on 1000 seeded-random
// design spaces, the streaming envelope's ever-optimal set and elimination
// fraction exactly match (a) the batch envelope and (b) the brute-force
// N-sweep over per-member witness operational times.
func TestPropStreamEquivalence(t *testing.T) {
	for seed := int64(0); seed < propSpaces; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := randomSpace(rng)
		env := s.EverOptimal()
		streamed := streamSpace(s, seqOrder(len(s.Points)))
		if !equalInts(env, streamed) {
			t.Fatalf("seed %d: streaming kept %v, batch envelope %v", seed, streamed, env)
		}

		// Elimination fraction: identical counts, identical division.
		var st pareto.Stream
		for i, p := range s.Points {
			st.Offer(int64(i), pareto.Point{X: p.EDP(), Y: p.EmbodiedDelay()})
		}
		if got, want := st.EliminatedFraction(), s.EliminatedFraction(); got != want {
			t.Fatalf("seed %d: streaming eliminated %v, batch %v", seed, got, want)
		}

		// Brute-force cross-check: each envelope member is the tCDP optimum
		// at its witness N, in envelope order (lowest E·D ↔ largest N).
		inEnv := make(map[int]bool, len(env))
		for _, i := range env {
			inEnv[i] = true
		}
		for k, n := range witnessInferences(s, env) {
			if got := s.OptimalAt(n); got != env[k] {
				t.Fatalf("seed %d: optimal at witness N=%g is point %d, want envelope member %d",
					seed, n, got, env[k])
			}
		}
		// And no operational time elects a non-member.
		for _, n := range LogSpace(1, 1e15, 31) {
			if got := s.OptimalAt(n); !inEnv[got] {
				t.Fatalf("seed %d: N=%g elected point %d outside the ever-optimal set %v",
					seed, n, got, env)
			}
		}
	}
}

// TestPropStreamOrderInvariance: the streaming envelope is independent of
// arrival order — the property that makes parallel chunked streaming sound.
func TestPropStreamOrderInvariance(t *testing.T) {
	for seed := int64(0); seed < propSpaces; seed++ {
		rng := rand.New(rand.NewSource(1_000_000 + seed))
		s := randomSpace(rng)
		want := streamSpace(s, seqOrder(len(s.Points)))
		for trial := 0; trial < 3; trial++ {
			order := rng.Perm(len(s.Points))
			if got := streamSpace(s, order); !equalInts(got, want) {
				t.Fatalf("seed %d trial %d: order %v kept %v, in-order kept %v",
					seed, trial, order, got, want)
			}
		}
	}
}

// TestPropChunkedStreamInvariance models exactly what the engine does:
// dominance pre-pruning per chunk, then offering survivors — against the
// one-point-at-a-time stream.
func TestPropChunkedStreamInvariance(t *testing.T) {
	for seed := int64(0); seed < propSpaces/4; seed++ {
		rng := rand.New(rand.NewSource(2_000_000 + seed))
		s := randomSpace(rng)
		want := streamSpace(s, seqOrder(len(s.Points)))

		lp := make([]pareto.Point, len(s.Points))
		for i, p := range s.Points {
			lp[i] = pareto.Point{X: p.EDP(), Y: p.EmbodiedDelay()}
		}
		var st pareto.Stream
		chunk := 1 + rng.Intn(7)
		order := rng.Perm((len(s.Points) + chunk - 1) / chunk)
		for _, ch := range order {
			lo := ch * chunk
			hi := lo + chunk
			if hi > len(lp) {
				hi = len(lp)
			}
			sub := lp[lo:hi]
			for _, rel := range pareto.Front(sub) {
				st.Offer(int64(lo+rel), sub[rel])
			}
		}
		ids := st.IDs()
		got := make([]int, len(ids))
		for k, id := range ids {
			got[k] = int(id)
		}
		if !equalInts(got, want) {
			t.Fatalf("seed %d: chunked (size %d) kept %v, pointwise kept %v", seed, chunk, got, want)
		}
	}
}

func seqOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
