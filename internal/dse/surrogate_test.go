package dse

import (
	"context"
	"encoding/json"
	"sync"
	"testing"

	"cordoba/internal/carbon"
)

// refGrid105k is the 10⁵-point reference knob grid (50×30 shapes × 10 V_DD
// × 7 nodes = 105 000 configurations) — the same shape as the repo-level
// streaming benchmark grid, checked in here so the oracle-equivalence bar is
// pinned against a stable space.
func refGrid105k() Grid {
	macs := make([]int, 50)
	for i := range macs {
		macs[i] = 4 * (i + 1)
	}
	sram := make([]float64, 30)
	for i := range sram {
		sram[i] = 1 + 2*float64(i)
	}
	vdd := make([]float64, 10)
	for i := range vdd {
		vdd[i] = 0.55 + 0.05*float64(i)
	}
	return Grid{
		MACArrays: macs,
		SRAMMB:    sram,
		VDDScales: vdd,
		Nodes:     []string{"28nm", "20nm", "14nm", "10nm", "7nm", "5nm", "3nm"},
	}
}

// surrGrid is a mid-size grid (4 200 points) for the fast property tests.
func surrGrid() Grid {
	macs := make([]int, 10)
	for i := range macs {
		macs[i] = 8 * (i + 1)
	}
	sram := make([]float64, 12)
	for i := range sram {
		sram[i] = 1 + float64(i)
	}
	return Grid{
		MACArrays: macs,
		SRAMMB:    sram,
		VDDScales: []float64{0.7, 0.85, 1.0},
		Nodes:     []string{"14nm", "7nm", "3nm"},
		Models:    []string{"act", "chiplet"},
	}
}

// marshalSurrogate renders a result the way determinism is promised: the
// full JSON payload, byte for byte.
func marshalSurrogate(t *testing.T, r *SurrogateResult) []byte {
	t.Helper()
	b, err := json.MarshalIndent(struct {
		IDs       []int64 `json:"ids"`
		Points    []Point `json:"points"`
		Evaluated []int64 `json:"evaluated"`
		Evals     int64   `json:"evals"`
		Gens      int     `json:"gens"`
		Skipped   int64   `json:"skipped"`
		SumEDP    float64 `json:"sum_edp"`
		SumEmbD   float64 `json:"sum_embd"`
	}{r.IDs, r.Space.Points, r.Evaluated, r.Evaluations, r.Generations, r.Skipped, r.SumEDP, r.SumEmbD}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSurrogateEnvelopeIsEvaluatedSubset: every surviving point must be a
// truly evaluated grid point — the surrogate model may steer the search but
// can never place a point in the envelope.
func TestSurrogateEnvelopeIsEvaluatedSubset(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := surrGrid()
	r, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, SurrogateOptions{
		Seed: 7, Budget: 600, StreamOptions: StreamOptions{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Evaluations != int64(len(r.Evaluated)) {
		t.Fatalf("Evaluations = %d but %d evaluated ids", r.Evaluations, len(r.Evaluated))
	}
	if r.Evaluations > 600 {
		t.Fatalf("budget overrun: %d > 600 evaluations", r.Evaluations)
	}
	evaluated := make(map[int64]bool, len(r.Evaluated))
	for i, id := range r.Evaluated {
		if id < 0 || id >= r.GridPoints {
			t.Fatalf("evaluated id %d outside grid [0, %d)", id, r.GridPoints)
		}
		if i > 0 && r.Evaluated[i-1] >= id {
			t.Fatalf("evaluated ids not strictly ascending at %d", i)
		}
		evaluated[id] = true
	}
	if len(r.IDs) == 0 {
		t.Fatal("empty surrogate envelope")
	}
	cg, err := g.compile()
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range r.IDs {
		if !evaluated[id] {
			t.Fatalf("envelope id %d was never evaluated", id)
		}
		// Survivor payloads are bit-identical to a direct evaluation of the
		// same grid index.
		c, cell := cg.at(id)
		want, err := evalPointAcct(task, c, cell.process, carbon.FabCoal, Accounting{Model: cell.model})
		if err != nil {
			t.Fatal(err)
		}
		want.Model = cell.modelName
		if got := r.Space.Points[i]; got != want {
			t.Fatalf("envelope point %d (id %d) drifted from direct evaluation:\n got %+v\nwant %+v", i, id, got, want)
		}
	}
}

// TestSurrogateFixedSeedDeterminism: same seed, same inputs → byte-identical
// results; a different seed explores differently.
func TestSurrogateFixedSeedDeterminism(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := surrGrid()
	run := func(seed uint64, workers int) []byte {
		r, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, SurrogateOptions{
			Seed: seed, Budget: 500, StreamOptions: StreamOptions{Workers: workers},
		})
		if err != nil {
			t.Fatal(err)
		}
		return marshalSurrogate(t, r)
	}
	a, b := run(42, 4), run(42, 1)
	if string(a) != string(b) {
		t.Fatalf("fixed seed 42 not byte-identical across runs/worker counts:\n%s\nvs\n%s", a, b)
	}
	if c := run(43, 4); string(a) == string(c) {
		t.Fatal("different seeds produced identical output — PRNG not wired through")
	}
}

// TestSurrogateCheckpointResume: interrupting the search at a checkpoint and
// resuming lands byte-identically on the uninterrupted result.
func TestSurrogateCheckpointResume(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := surrGrid()
	opts := func() SurrogateOptions {
		return SurrogateOptions{Seed: 11, Budget: 500, StreamOptions: StreamOptions{Workers: 4}}
	}

	full, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, opts())
	if err != nil {
		t.Fatal(err)
	}
	want := marshalSurrogate(t, full)

	var cps []*SurrogateCheckpoint
	o := opts()
	o.Every = 2
	o.OnCheckpoint = func(cp *SurrogateCheckpoint) error {
		// Round-trip through JSON: resumes come from disk in production.
		b, err := json.Marshal(cp)
		if err != nil {
			return err
		}
		var back SurrogateCheckpoint
		if err := json.Unmarshal(b, &back); err != nil {
			return err
		}
		cps = append(cps, &back)
		return nil
	}
	ck, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshalSurrogate(t, ck); string(got) != string(want) {
		t.Fatal("checkpointing perturbed the result")
	}
	if len(cps) == 0 {
		t.Fatal("no checkpoints observed")
	}
	for i, cp := range cps {
		o := opts()
		o.Resume = cp
		resumed, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, o)
		if err != nil {
			t.Fatalf("resume from checkpoint %d (generation %d): %v", i, cp.Generation, err)
		}
		if got := marshalSurrogate(t, resumed); string(got) != string(want) {
			t.Fatalf("resume from generation %d diverged from the uninterrupted run", cp.Generation)
		}
	}
}

// TestSurrogateCheckpointValidation: checkpoints refuse to resume a run with
// different inputs.
func TestSurrogateCheckpointValidation(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := surrGrid()
	var cp *SurrogateCheckpoint
	o := SurrogateOptions{Seed: 3, Budget: 400, Every: 1, StreamOptions: StreamOptions{Workers: 4}}
	o.OnCheckpoint = func(c *SurrogateCheckpoint) error {
		if cp == nil {
			cp = c
		}
		return nil
	}
	if _, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, o); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint observed")
	}
	cases := map[string]SurrogateOptions{
		"different seed":   {Seed: 4, Budget: 400, Resume: cp},
		"different budget": {Seed: 3, Budget: 401, Resume: cp},
		"different pop":    {Seed: 3, Budget: 400, Population: 24, Resume: cp},
	}
	for name, bad := range cases {
		if _, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, bad); err == nil {
			t.Errorf("%s: resume accepted a mismatched checkpoint", name)
		}
	}
	// Different task.
	if _, err := EvaluateSurrogate(context.Background(), paperTask(t, "AI (10 kernels)"), g, carbon.FabCoal, 380, SurrogateOptions{Seed: 3, Budget: 400, Resume: cp}); err == nil {
		t.Error("resume accepted a checkpoint from a different task")
	}
}

// TestSurrogateExhaustiveDegradation: a budget covering the whole grid must
// reproduce the exhaustive envelope exactly — the search degrades to the
// oracle, not an approximation of it.
func TestSurrogateExhaustiveDegradation(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := fig8Grid() // 121 points
	oracle, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, SurrogateOptions{
		Seed: 1, Budget: g.Size(), StreamOptions: StreamOptions{Workers: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Evaluations != g.Size() {
		t.Fatalf("evaluated %d of %d points with a full budget", r.Evaluations, g.Size())
	}
	if len(r.IDs) != len(oracle.IDs) {
		t.Fatalf("envelope sizes differ: surrogate %d, oracle %d", len(r.IDs), len(oracle.IDs))
	}
	for i := range r.IDs {
		if r.IDs[i] != oracle.IDs[i] || r.Space.Points[i] != oracle.Space.Points[i] {
			t.Fatalf("envelope diverges at %d: id %d vs %d", i, r.IDs[i], oracle.IDs[i])
		}
	}
	q := MeasureQuality(r.StreamResult, oracle)
	if q.HypervolumeRatio != 1 || q.Coverage != 1 || q.AdditiveEpsilon > 0 {
		t.Fatalf("full-budget quality not perfect: %+v", q)
	}
}

// TestSurrogateConcurrentWithExhaustive runs the surrogate search and the
// exhaustive stream at the same time over one shared memo cache — the
// server's steady state, where a surrogate job and an exhaustive request
// overlap — and checks both land on the same bytes as isolated runs. Under
// -race this doubles as the data-race proof for the shared profile cache
// and the independent envelope accumulators.
func TestSurrogateConcurrentWithExhaustive(t *testing.T) {
	task := paperTask(t, "All kernels")
	g := surrGrid()

	baseSurr, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, SurrogateOptions{
		Seed: 9, Budget: 400, StreamOptions: StreamOptions{Workers: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	baseOracle, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	memo := NewMemoCache(0)
	var wg sync.WaitGroup
	var surr *SurrogateResult
	var oracle *StreamResult
	var surrErr, oracleErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		surr, surrErr = EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, SurrogateOptions{
			Seed: 9, Budget: 400, StreamOptions: StreamOptions{Workers: 2, Memo: memo},
		})
	}()
	go func() {
		defer wg.Done()
		oracle, oracleErr = EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 2, Memo: memo})
	}()
	wg.Wait()
	if surrErr != nil || oracleErr != nil {
		t.Fatalf("concurrent runs failed: surrogate %v, oracle %v", surrErr, oracleErr)
	}

	if got, want := marshalSurrogate(t, surr), marshalSurrogate(t, baseSurr); string(got) != string(want) {
		t.Fatal("surrogate result changed when run concurrently with the exhaustive engine")
	}
	if len(oracle.IDs) != len(baseOracle.IDs) {
		t.Fatalf("oracle envelope size changed under concurrency: %d vs %d", len(oracle.IDs), len(baseOracle.IDs))
	}
	for i := range oracle.IDs {
		if oracle.IDs[i] != baseOracle.IDs[i] || oracle.Space.Points[i] != baseOracle.Space.Points[i] {
			t.Fatalf("oracle envelope diverges at %d under concurrency", i)
		}
	}
}

// TestSurrogateOracleEquivalence105k is the acceptance bar from ROADMAP
// item 2: on the checked-in 10⁵-point reference grid, the surrogate search
// must reach ≥ 0.99 hypervolume ratio against the exhaustive oracle while
// paying ≤ 5 % (stretch: ≤ 2 %) of its evaluations.
func TestSurrogateOracleEquivalence105k(t *testing.T) {
	if testing.Short() {
		t.Skip("105k-point oracle run in -short mode")
	}
	task := paperTask(t, "All kernels")
	g := refGrid105k()
	memo := NewMemoCache(0)

	oracle, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Memo: memo})
	if err != nil {
		t.Fatal(err)
	}
	r, err := EvaluateSurrogate(context.Background(), task, g, carbon.FabCoal, 380, SurrogateOptions{
		Seed: 1, StreamOptions: StreamOptions{Memo: memo},
	})
	if err != nil {
		t.Fatal(err)
	}

	frac := float64(r.Evaluations) / float64(r.GridPoints)
	if frac > 0.05 {
		t.Fatalf("surrogate paid %.2f%% of the grid, acceptance cap is 5%%", 100*frac)
	}
	if frac > 0.02 {
		t.Logf("note: %.2f%% of the grid evaluated — above the 2%% stretch goal", 100*frac)
	}
	q := MeasureQuality(r.StreamResult, oracle)
	t.Logf("surrogate: %d/%d evals (%.2f%%), %d generations, %d skipped, envelope %d/%d, HV ratio %.5f, ε %.4f, coverage %.3f",
		r.Evaluations, r.GridPoints, 100*frac, r.Generations, r.Skipped, len(r.IDs), len(oracle.IDs), q.HypervolumeRatio, q.AdditiveEpsilon, q.Coverage)
	if q.HypervolumeRatio < 0.99 {
		t.Fatalf("hypervolume ratio %.5f < 0.99 acceptance bar", q.HypervolumeRatio)
	}
	if q.HypervolumeRatio > 1+1e-9 {
		t.Fatalf("hypervolume ratio %.5f > 1: surrogate envelope is not a subset of the space", q.HypervolumeRatio)
	}
}
