// Package dse is CORDOBA's design-space exploration engine (§VI-B/C): it
// evaluates a set of accelerator configurations on a task, sweeps operational
// time (measured in number of inferences, the Fig. 8 x-axis), finds the
// tCDP-optimal design at each operational time, and identifies the
// *ever-optimal* set — the designs that can be tCDP-optimal for some
// operational time.
//
// The engine exploits the linearity identity of DESIGN.md §4: with fixed
// per-inference delay D and energy E,
//
//	tCDP(N) = C_emb·D + CI_use·E·D·N
//
// is a line in N, so the ever-optimal set is exactly the lower convex
// envelope of the points (E·D, C_emb·D), and elimination percentages follow
// without sweeping. A brute-force sweep is provided as a cross-check.
package dse

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/metrics"
	"cordoba/internal/pareto"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// Point is one evaluated design in the space.
type Point struct {
	Config accel.Config

	Delay    units.Time   // task delay per inference, D (eq. IV.2)
	Energy   units.Energy // task energy per inference incl. leakage (eq. IV.4)
	Embodied units.Carbon // manufacturing footprint, C_emb (eq. IV.5)
	Area     units.Area   // total silicon area

	// Model names the embodied-carbon backend that priced the point when
	// one was explicitly selected (an Accounting model or a grid Models
	// knob); empty for the default ACT path.
	Model string
}

// Accounting selects the embodied-carbon backend of an exploration: the
// pricing model and the yield model it derates dies with. The zero value is
// the historical pipeline — ACT with Murphy yield — and evaluates
// bit-identically to the pre-refactor engine.
type Accounting struct {
	Model carbon.Model      // nil selects ACT
	Yield carbon.YieldModel // nil selects Murphy
}

// EDP returns the point's energy-delay product.
func (p Point) EDP() float64 { return p.Energy.Joules() * p.Delay.Seconds() }

// EmbodiedDelay returns C_emb·D, the Lagrange-plane Y coordinate.
func (p Point) EmbodiedDelay() float64 { return p.Embodied.Grams() * p.Delay.Seconds() }

// TCDP returns the point's total-carbon-delay product after n inferences at
// use-phase intensity ci.
func (p Point) TCDP(ci units.CarbonIntensity, n float64) float64 {
	tc := p.Embodied + ci.Of(p.Energy*units.Energy(n))
	return tc.Grams() * p.Delay.Seconds()
}

// Report converts the point into a metrics.Report for an operational time of
// n inferences.
func (p Point) Report(ci units.CarbonIntensity, n float64) metrics.Report {
	return metrics.Report{
		Name:              p.Config.ID,
		Delay:             p.Delay,
		Energy:            p.Energy,
		EmbodiedCarbon:    p.Embodied,
		OperationalCarbon: ci.Of(p.Energy * units.Energy(n)),
		Tasks:             n,
	}
}

// Space is an evaluated design space for one task.
type Space struct {
	Task   workload.Task
	CIUse  units.CarbonIntensity
	Points []Point
}

// Evaluate runs every configuration on the task and computes embodied carbon
// with the given process/fab. ci is the use-phase carbon intensity applied
// during operational-time sweeps.
func Evaluate(task workload.Task, configs []accel.Config, p carbon.Process, fab carbon.Fab, ci units.CarbonIntensity) (*Space, error) {
	return EvaluateWith(task, configs, p, fab, ci, Accounting{})
}

// EvaluateWith is Evaluate under an explicit embodied-carbon accounting: the
// backend (ACT, chiplet, 3D-stacking) and yield model pricing every design.
// The zero-value accounting reproduces Evaluate bit for bit.
func EvaluateWith(task workload.Task, configs []accel.Config, p carbon.Process, fab carbon.Fab, ci units.CarbonIntensity, acct Accounting) (*Space, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("dse: empty design space for task %q", task.Name)
	}
	if ci < 0 {
		return nil, fmt.Errorf("dse: negative CI_use %v", ci)
	}
	s := &Space{Task: task, CIUse: ci, Points: make([]Point, 0, len(configs))}
	for _, c := range configs {
		pt, err := evalPointAcct(task, c, p, fab, acct)
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}

// EvaluateDefault evaluates at the paper's anchor: 7 nm, coal-heavy fab,
// CI_use = 380 g/kWh.
func EvaluateDefault(task workload.Task, configs []accel.Config) (*Space, error) {
	return Evaluate(task, configs, carbon.Process7nm(), carbon.FabCoal, 380)
}

// EvaluateParallel is Evaluate with the per-configuration simulations fanned
// out across `workers` goroutines. Results are identical to Evaluate (points
// stay in configuration order); use it for large design spaces or many
// tasks. workers < 1 selects a sensible default.
func EvaluateParallel(task workload.Task, configs []accel.Config, p carbon.Process, fab carbon.Fab, ci units.CarbonIntensity, workers int) (*Space, error) {
	return EvaluateParallelWith(task, configs, p, fab, ci, workers, Accounting{})
}

// EvaluateParallelWith is EvaluateParallel under an explicit embodied-carbon
// accounting; the zero value reproduces EvaluateParallel exactly.
func EvaluateParallelWith(task workload.Task, configs []accel.Config, p carbon.Process, fab carbon.Fab, ci units.CarbonIntensity, workers int, acct Accounting) (*Space, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("dse: empty design space for task %q", task.Name)
	}
	if ci < 0 {
		return nil, fmt.Errorf("dse: negative CI_use %v", ci)
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}

	s := &Space{Task: task, CIUse: ci, Points: make([]Point, len(configs))}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				pt, err := evalPointAcct(task, configs[i], p, fab, acct)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				s.Points[i] = pt
			}
		}()
	}
	for i := range configs {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return s, nil
}

// TCDPAt returns each design's tCDP after n inferences.
func (s *Space) TCDPAt(n float64) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.TCDP(s.CIUse, n)
	}
	return out
}

// OptimalAt returns the index of the tCDP-optimal design after n inferences.
func (s *Space) OptimalAt(n float64) int {
	best, bestV := -1, math.Inf(1)
	for i, p := range s.Points {
		if v := p.TCDP(s.CIUse, n); v < bestV {
			best, bestV = i, v
		}
	}
	return best
}

// lagrangePoints maps the space onto the (E·D, C_emb·D) plane of §IV-B.
func (s *Space) lagrangePoints() []pareto.Point {
	pts := make([]pareto.Point, len(s.Points))
	for i, p := range s.Points {
		pts[i] = pareto.Point{X: p.EDP(), Y: p.EmbodiedDelay()}
	}
	return pts
}

// EverOptimal returns the indices of designs that are tCDP-optimal for some
// operational time (equivalently, some Lagrange β): the lower convex
// envelope of (E·D, C_emb·D), ordered from the long-operational-time winner
// (lowest E·D) to the short-operational-time winner (lowest C_emb·D).
func (s *Space) EverOptimal() []int {
	return pareto.Envelope(s.lagrangePoints())
}

// ParetoFront returns the (larger) dominance front on (E·D, C_emb·D).
func (s *Space) ParetoFront() []int {
	return pareto.Front(s.lagrangePoints())
}

// EliminatedFraction returns the share of the design space that can never be
// tCDP-optimal — the §VI-B "eliminate up to 98 % of the design space" figure.
func (s *Space) EliminatedFraction() float64 {
	return pareto.EliminatedFraction(s.lagrangePoints())
}

// SweepOptimal brute-force sweeps operational times and returns the optimal
// design index at each. It is the cross-check for EverOptimal.
func (s *Space) SweepOptimal(inferences []float64) []int {
	out := make([]int, len(inferences))
	for i, n := range inferences {
		out[i] = s.OptimalAt(n)
	}
	return out
}

// LogSpace returns k points logarithmically spaced over [lo, hi].
func LogSpace(lo, hi float64, k int) []float64 {
	if k <= 1 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, k)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(k-1))
	}
	return out
}

// NormalizedAt returns tCDP_optimal(n)/tCDP_i(n) for every design — the
// Fig. 9 y-axis, where 1.0 is the per-operational-time optimum and smaller
// values are worse.
func (s *Space) NormalizedAt(n float64) []float64 {
	vals := s.TCDPAt(n)
	best := math.Inf(1)
	for _, v := range vals {
		if v < best {
			best = v
		}
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = best / v
	}
	return out
}

// MeanTCDPAt returns the average tCDP across the space after n inferences —
// the red diamonds of Fig. 8(f).
func (s *Space) MeanTCDPAt(n float64) float64 {
	vals := s.TCDPAt(n)
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// ByID returns the point whose configuration has the given ID.
func (s *Space) ByID(id string) (Point, error) {
	for _, p := range s.Points {
		if p.Config.ID == id {
			return p, nil
		}
	}
	return Point{}, fmt.Errorf("dse: no design %q in the space", id)
}

// IDs maps a list of point indices to configuration IDs.
func (s *Space) IDs(indices []int) []string {
	out := make([]string, len(indices))
	for i, idx := range indices {
		out[i] = s.Points[idx].Config.ID
	}
	return out
}

// BestAverage returns the index of the design with the best (largest) mean
// normalized tCDP across the given operational times — the §VI-C
// "better average tCDP across operational time" robustness criterion.
func (s *Space) BestAverage(inferences []float64) int {
	best, bestV := -1, math.Inf(-1)
	sums := make([]float64, len(s.Points))
	for _, n := range inferences {
		for i, v := range s.NormalizedAt(n) {
			sums[i] += v
		}
	}
	for i, v := range sums {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
