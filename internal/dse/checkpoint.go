package dse

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"cordoba/internal/carbon"
	"cordoba/internal/pareto"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// AccState is a serializable snapshot of one task's accumulator: the envelope
// state, the payloads of the currently surviving points (parallel to
// Envelope.IDs), and the space-wide sufficient statistics. Every field
// round-trips exactly through JSON — encoding/json renders float64 in the
// shortest form that parses back to the same bits — so a restored accumulator
// continues bit-identically to the original.
type AccState struct {
	Envelope  pareto.StreamState `json:"envelope"`
	Survivors []Point            `json:"survivors"`
	SumEDP    float64            `json:"sum_edp"`
	SumEmbD   float64            `json:"sum_embd"`
	Total     int64              `json:"total"`
	PrePruned int64              `json:"pre_pruned"`
}

// snapshot captures the accumulator. Safe to call concurrently with
// offerChunk; in the checkpointed engine only the sequencer mutates, so a
// snapshot is always a consistent contiguous-prefix state.
func (a *taskAcc) snapshot() AccState {
	a.mu.Lock()
	defer a.mu.Unlock()
	env := a.stream.Snapshot()
	surv := make([]Point, len(env.IDs))
	for i, id := range env.IDs {
		surv[i] = a.payload[id]
	}
	return AccState{
		Envelope:  env,
		Survivors: surv,
		SumEDP:    a.sumEDP,
		SumEmbD:   a.sumEmbD,
		Total:     a.total,
		PrePruned: a.prePruned,
	}
}

// restore replaces the accumulator's state with a snapshot. The envelope's
// own Restore validates the geometric invariants; the checks here cover the
// payload/statistics bookkeeping layered on top.
func (a *taskAcc) restore(st AccState) error {
	if len(st.Survivors) != len(st.Envelope.IDs) {
		return fmt.Errorf("dse: snapshot has %d survivors but %d envelope ids", len(st.Survivors), len(st.Envelope.IDs))
	}
	if st.Total < 0 || st.PrePruned < 0 || st.PrePruned > st.Total {
		return fmt.Errorf("dse: snapshot counters corrupt: total %d, pre-pruned %d", st.Total, st.PrePruned)
	}
	if st.Envelope.Offered != st.Total-st.PrePruned {
		return fmt.Errorf("dse: snapshot offered %d != total %d - pre-pruned %d", st.Envelope.Offered, st.Total, st.PrePruned)
	}
	var s pareto.Stream
	if err := s.Restore(st.Envelope); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.stream = s
	a.payload = make(map[int64]Point, len(st.Survivors))
	for i, id := range st.Envelope.IDs {
		a.payload[id] = st.Survivors[i]
	}
	a.sumEDP = st.SumEDP
	a.sumEmbD = st.SumEmbD
	a.total = st.Total
	a.prePruned = st.PrePruned
	return nil
}

// progress reads the accumulator's live counters.
func (a *taskAcc) progress() (streamed, pruned int64, kept int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	kept = a.stream.Len()
	return a.total, a.total - int64(kept), kept
}

// ShardRange selects a contiguous run of shapes for a sharded exploration:
// shapes [First, First+Count) of the grid's shape-major enumeration. Sharding
// at shape granularity keeps every point's global grid index (and therefore
// its "k<N>" ID) identical to an unsharded run, which is what makes shard
// envelopes mergeable back into the single-node result.
type ShardRange struct {
	First int `json:"first"`
	Count int `json:"count"`
}

// StreamCheckpoint is a resumable snapshot of a checkpointed exploration: a
// fingerprint binding it to its inputs, the shape cursor, and one AccState
// per task. Because the engine accumulates in shape order, a checkpoint is
// always the exact state after shapes [FirstShape, NextShape) — resuming
// replays the suffix and lands bit-identically on the uninterrupted result.
// FirstShape is zero for whole-grid runs and the shard's first shape for
// sharded ones; a checkpoint only resumes the shard it was taken on.
type StreamCheckpoint struct {
	Fingerprint string     `json:"fingerprint"`
	Shapes      int        `json:"shapes"`
	FirstShape  int        `json:"first_shape,omitempty"`
	NextShape   int        `json:"next_shape"`
	Accs        []AccState `json:"accs"`
}

// validate checks a checkpoint against the run it is asked to resume, where
// the run covers shapes [lo, hi) of a grid with cg.shapes() shapes total.
func (cp *StreamCheckpoint) validate(fp string, cg *compiledGrid, tasks, lo, hi int) error {
	if cp.Fingerprint != fp {
		return fmt.Errorf("dse: checkpoint fingerprint %.12s does not match this run (%.12s): the task set, grid, fab, CI or yield model changed", cp.Fingerprint, fp)
	}
	if cp.Shapes != cg.shapes() {
		return fmt.Errorf("dse: checkpoint covers %d shapes, grid has %d", cp.Shapes, cg.shapes())
	}
	if cp.FirstShape != lo {
		return fmt.Errorf("dse: checkpoint starts at shape %d, this run's shard starts at %d", cp.FirstShape, lo)
	}
	if cp.NextShape < lo || cp.NextShape > hi {
		return fmt.Errorf("dse: checkpoint cursor %d out of range [%d, %d]", cp.NextShape, lo, hi)
	}
	if len(cp.Accs) != tasks {
		return fmt.Errorf("dse: checkpoint has %d accumulators, run has %d tasks", len(cp.Accs), tasks)
	}
	cells := int64(len(cg.cells))
	first := int64(lo) * cells
	seen := int64(cp.NextShape) * cells
	for i, a := range cp.Accs {
		if a.Total != seen-first {
			return fmt.Errorf("dse: checkpoint task %d counted %d points, cursor %d implies %d", i, a.Total, cp.NextShape, seen-first)
		}
		for _, id := range a.Envelope.IDs {
			if id < first || id >= seen {
				return fmt.Errorf("dse: checkpoint task %d survivor id %d outside evaluated range [%d, %d)", i, id, first, seen)
			}
		}
	}
	return nil
}

// checkpointFingerprint hashes everything the exploration's outcome depends
// on — tasks (names and call counts), the normalized grid, the fab, CI_use,
// and the yield model — so a checkpoint can never silently resume a
// different run. JSON marshaling sorts map keys, so the hash is stable.
func checkpointFingerprint(tasks []workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity, yield carbon.YieldModel) string {
	type fabKey struct {
		Name          string  `json:"name"`
		CI            float64 `json:"ci"`
		DefectDensity float64 `json:"defect_density"`
	}
	type taskKey struct {
		Name  string             `json:"name"`
		Calls map[string]float64 `json:"calls"`
	}
	tk := make([]taskKey, len(tasks))
	for i, t := range tasks {
		calls := make(map[string]float64, len(t.Calls))
		for id, n := range t.Calls {
			calls[string(id)] = n
		}
		tk[i] = taskKey{Name: t.Name, Calls: calls}
	}
	yname := ""
	if yield != nil {
		yname = yield.Name()
	}
	g = g.normalized()
	b, err := json.Marshal(struct {
		Tasks []taskKey `json:"tasks"`
		Grid  Grid      `json:"grid"`
		Fab   fabKey    `json:"fab"`
		CI    float64   `json:"ci"`
		Yield string    `json:"yield"`
	}{tk, g, fabKey{fab.Name, float64(fab.CI), fab.DefectDensity}, float64(ci), yname})
	if err != nil {
		// Every field above is a plain value; Marshal cannot fail. Guard
		// anyway so a future field addition cannot silently alias runs.
		panic(fmt.Sprintf("dse: fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// StreamProgress is a live view of a checkpointed exploration, reported
// after every accumulated shape. Point counters follow the first task (all
// tasks see the same stream volume).
type StreamProgress struct {
	ShapesDone  int   // shapes accumulated so far, including a resumed prefix (shard-local for sharded runs)
	ShapesTotal int   // shapes in the run's range: the whole grid, or the shard
	Streamed    int64 // points evaluated and offered downstream
	Pruned      int64 // points eliminated (dominance pre-prune + envelope)
	Kept        int   // current ever-optimal survivor count
}

// CheckpointOptions extends StreamOptions with resume/checkpoint hooks.
type CheckpointOptions struct {
	StreamOptions

	// Shard restricts the exploration to a contiguous shape range; nil runs
	// the whole grid. Survivor IDs stay global (the shard's points keep their
	// whole-grid indices), so shard results merge with MergeShardResults into
	// exactly the unsharded envelope.
	Shard *ShardRange

	// Resume continues from a previous checkpoint instead of the shard's
	// first shape. The checkpoint must carry this run's fingerprint and, for
	// sharded runs, this shard's range.
	Resume *StreamCheckpoint

	// Every is the checkpoint cadence in shapes; <= 0 disables checkpoints.
	Every int

	// OnCheckpoint receives a consistent snapshot every Every shapes. It runs
	// on the accumulation goroutine — the engine does not advance while it
	// persists. A returned error aborts the exploration.
	OnCheckpoint func(*StreamCheckpoint) error

	// OnProgress, when set, observes progress after every accumulated shape.
	OnProgress func(StreamProgress)
}

// EvaluateStreamCheckpointed runs a single-task checkpointed exploration.
// See EvaluateStreamCheckpointedTasks.
func EvaluateStreamCheckpointed(ctx context.Context, task workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity, opt CheckpointOptions) (*StreamResult, error) {
	rs, err := EvaluateStreamCheckpointedTasks(ctx, []workload.Task{task}, g, fab, ci, opt)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// EvaluateStreamCheckpointedTasks is the checkpointed core of the streaming
// engine. Workers evaluate shapes in parallel exactly as before, but a
// sequencer accumulates completed shapes strictly in shape-index order
// through a reorder buffer, which makes the floating-point sums — and
// therefore every checkpoint and the final SumEDP/SumEmbD — deterministic
// for a given grid. A checkpoint taken after shape k and resumed later
// replays shapes [k, shapes) and produces the same survivor set, Total,
// SumEDP and SumEmbD as an uninterrupted run, bit for bit.
func EvaluateStreamCheckpointedTasks(ctx context.Context, tasks []workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity, opt CheckpointOptions) ([]*StreamResult, error) {
	if len(tasks) == 0 {
		return nil, fmt.Errorf("dse: no tasks to stream")
	}
	if ci < 0 {
		return nil, fmt.Errorf("dse: negative CI_use %v", ci)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cg, err := g.compile()
	if err != nil {
		return nil, err
	}
	memo := opt.Memo
	if memo == nil {
		memo = NewMemoCache(0)
	}

	shapes := cg.shapes()
	cells := int64(len(cg.cells))
	fp := checkpointFingerprint(tasks, g, fab, ci, opt.Yield)

	lo, hi := 0, shapes
	if sh := opt.Shard; sh != nil {
		if sh.Count < 1 || sh.First < 0 || sh.First+sh.Count > shapes {
			return nil, fmt.Errorf("dse: shard [%d, %d) outside grid's %d shapes", sh.First, sh.First+sh.Count, shapes)
		}
		lo, hi = sh.First, sh.First+sh.Count
	}

	accs := make([]*taskAcc, len(tasks))
	for i := range accs {
		accs[i] = &taskAcc{payload: make(map[int64]Point)}
	}
	start := lo
	if cp := opt.Resume; cp != nil {
		if err := cp.validate(fp, cg, len(tasks), lo, hi); err != nil {
			return nil, err
		}
		for i := range accs {
			if err := accs[i].restore(cp.Accs[i]); err != nil {
				return nil, fmt.Errorf("dse: checkpoint task %d: %w", i, err)
			}
		}
		start = cp.NextShape
	}

	kernels := kernelUnion(tasks)
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if remaining := hi - start; workers > remaining {
		workers = remaining
	}

	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		failed.Store(true)
	}

	// Workers evaluate shapes and hand chunks to the sequencer; the feeder
	// goroutine closes chunkCh once every worker has drained, so the
	// sequencer loop below always terminates.
	type chunk struct {
		si      int
		buffers [][]Point
	}
	shapeCh := make(chan int)
	chunkCh := make(chan chunk, workers)
	// freeBufs recycles chunk buffers from the sequencer back to the workers:
	// offerChunk copies everything it keeps, so a buffer set is reusable the
	// moment its shape is accumulated. In-flight sets are bounded by the
	// workers' hands plus chunkCh plus the reorder buffer, so after a short
	// warm-up the pool satisfies every request and the engine stops
	// allocating chunk storage entirely.
	freeBufs := make(chan [][]Point, 2*workers+1)
	newBuffers := func() [][]Point {
		buffers := make([][]Point, len(tasks))
		for ti := range buffers {
			buffers[ti] = make([]Point, 0, cells)
		}
		return buffers
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newEvalScratch(cg, kernels)
			for si := range shapeCh {
				if ctx.Err() != nil || failed.Load() {
					continue // drain the channel without evaluating
				}
				var buffers [][]Point
				select {
				case buffers = <-freeBufs:
				default:
					buffers = newBuffers()
				}
				if err := evalShape(cg, si, kernels, tasks, memo, fab, opt.Yield, sc, buffers); err != nil {
					fail(err)
					continue
				}
				chunkCh <- chunk{si: si, buffers: buffers}
			}
		}()
	}
	go func() {
		for si := start; si < hi; si++ {
			shapeCh <- si
		}
		close(shapeCh)
		wg.Wait()
		close(chunkCh)
	}()

	// The sequencer: hold out-of-order chunks in a reorder buffer and offer
	// them to the accumulators strictly by shape index. Accumulation order —
	// hence floating-point summation order — no longer depends on worker
	// scheduling, and a checkpoint is always a contiguous-prefix state.
	pending := make(map[int][][]Point, workers)
	next := start
	accumulated := 0
	for c := range chunkCh {
		if failed.Load() {
			continue // drain so workers never block on chunkCh
		}
		pending[c.si] = c.buffers
		for {
			bufs, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			base := int64(next) * cells
			for ti := range tasks {
				accs[ti].offerChunk(base, bufs[ti])
			}
			select {
			case freeBufs <- bufs:
			default: // pool full — let the set be collected
			}
			next++
			accumulated++
			if opt.OnProgress != nil {
				streamed, pruned, kept := accs[0].progress()
				opt.OnProgress(StreamProgress{
					ShapesDone:  next - lo,
					ShapesTotal: hi - lo,
					Streamed:    streamed,
					Pruned:      pruned,
					Kept:        kept,
				})
			}
			if opt.Every > 0 && opt.OnCheckpoint != nil && next < hi && accumulated%opt.Every == 0 {
				cp := &StreamCheckpoint{Fingerprint: fp, Shapes: shapes, FirstShape: lo, NextShape: next, Accs: make([]AccState, len(accs))}
				for i, a := range accs {
					cp.Accs[i] = a.snapshot()
				}
				if err := opt.OnCheckpoint(cp); err != nil {
					fail(fmt.Errorf("dse: checkpoint callback: %w", err))
				}
			}
		}
	}

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dse: streaming exploration aborted: %w", err)
	}
	out := make([]*StreamResult, len(tasks))
	for i, a := range accs {
		out[i] = a.result(tasks[i], ci)
	}
	return out, nil
}
