package dse

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cordoba/internal/carbon"
)

// runShard explores one contiguous shape range of g.
func runShard(t *testing.T, g Grid, first, count int, opt CheckpointOptions) *StreamResult {
	t.Helper()
	task := paperTask(t, "All kernels")
	opt.Shard = &ShardRange{First: first, Count: count}
	r, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, opt)
	if err != nil {
		t.Fatalf("shard [%d,%d): %v", first, first+count, err)
	}
	return r
}

// closeSums allows the last-ULPs drift re-summing per-shard partial sums can
// introduce (float addition is not associative); everything else is exact.
func closeSums(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// sameMerged checks a merged shard result against the unsharded run: exact
// envelope (points and global IDs), exact integer counters, sums to within
// re-association tolerance.
func sameMerged(t *testing.T, label string, got, want *StreamResult) {
	t.Helper()
	if !reflect.DeepEqual(got.Space.Points, want.Space.Points) {
		t.Fatalf("%s: survivor points differ: got %d, want %d", label, len(got.Space.Points), len(want.Space.Points))
	}
	if !reflect.DeepEqual(got.IDs, want.IDs) {
		t.Fatalf("%s: survivor ids differ: got %v, want %v", label, got.IDs, want.IDs)
	}
	if got.Total != want.Total || got.PrePruned != want.PrePruned || got.Offered != want.Offered {
		t.Fatalf("%s: counters differ: got (%d, %d, %d), want (%d, %d, %d)",
			label, got.Total, got.PrePruned, got.Offered, want.Total, want.PrePruned, want.Offered)
	}
	if !closeSums(got.SumEDP, want.SumEDP) || !closeSums(got.SumEmbD, want.SumEmbD) {
		t.Fatalf("%s: sums differ beyond tolerance: got (%v, %v), want (%v, %v)",
			label, got.SumEDP, got.SumEmbD, want.SumEDP, want.SumEmbD)
	}
}

// TestShardPartitionsMatchUnsharded is the distributed-DSE algebra end to
// end: any contiguous partition of the shape range — balanced, heavily
// skewed, or one shape per shard — explored shard-by-shard and merged equals
// the single-node streaming run.
func TestShardPartitionsMatchUnsharded(t *testing.T) {
	g := ckptGrid()
	shapes := 12 // 4 MAC arrays × 3 SRAM sizes
	task := paperTask(t, "All kernels")
	want, err := EvaluateStream(context.Background(), task, g, carbon.FabCoal, 380, StreamOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	partitions := [][]int{
		{12},                                 // degenerate: one shard is the whole grid
		{6, 6},                               // balanced
		{1, 11},                              // heavily skewed
		{11, 1},                              // skewed the other way
		{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, // one shape per shard
		{5, 3, 4},
	}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(7000 + seed))
		var sizes []int
		for left := shapes; left > 0; {
			n := 1 + rng.Intn(left)
			sizes = append(sizes, n)
			left -= n
		}
		partitions = append(partitions, sizes)
	}

	for _, sizes := range partitions {
		results := make([]*StreamResult, len(sizes))
		first := 0
		for i, n := range sizes {
			results[i] = runShard(t, g, first, n, CheckpointOptions{StreamOptions: StreamOptions{Workers: 2}})
			first += n
		}
		// Merge order must not matter beyond the sorted-by-ID normalization:
		// shuffle before merging.
		rand.New(rand.NewSource(int64(len(sizes)))).Shuffle(len(results), func(i, j int) {
			results[i], results[j] = results[j], results[i]
		})
		merged, err := MergeShardResults(results)
		if err != nil {
			t.Fatalf("partition %v: %v", sizes, err)
		}
		sameMerged(t, "partition", merged, want)
	}
}

// TestShardResumeBitIdentical interrupts a shard at a checkpoint and resumes
// it; the resumed shard must be bit-identical to an uninterrupted one,
// including the shard-local floating-point sums.
func TestShardResumeBitIdentical(t *testing.T) {
	g := ckptGrid()
	uninterrupted := runShard(t, g, 3, 7, CheckpointOptions{StreamOptions: StreamOptions{Workers: 2}})

	var cp *StreamCheckpoint
	stop := errors.New("stop after second checkpoint")
	task := paperTask(t, "All kernels")
	_, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		StreamOptions: StreamOptions{Workers: 2},
		Shard:         &ShardRange{First: 3, Count: 7},
		Every:         2,
		OnCheckpoint: func(c *StreamCheckpoint) error {
			// Round-trip through JSON, the way a worker persists it.
			b, err := json.Marshal(c)
			if err != nil {
				return err
			}
			cp = new(StreamCheckpoint)
			if err := json.Unmarshal(b, cp); err != nil {
				return err
			}
			if c.NextShape >= 7 {
				return stop
			}
			return nil
		},
	})
	if err == nil || !errors.Is(err, stop) {
		t.Fatalf("expected injected stop, got %v", err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	if cp.FirstShape != 3 {
		t.Fatalf("checkpoint FirstShape = %d, want 3", cp.FirstShape)
	}
	resumed := runShard(t, g, 3, 7, CheckpointOptions{StreamOptions: StreamOptions{Workers: 2}, Resume: cp})
	sameStreamResult(t, "resumed shard vs uninterrupted", resumed, uninterrupted)
	if !reflect.DeepEqual(resumed.IDs, uninterrupted.IDs) {
		t.Fatalf("resumed shard ids differ")
	}
}

// TestShardValidation pins the error surface: out-of-range shards and
// checkpoints bound to a different shard are rejected.
func TestShardValidation(t *testing.T) {
	g := ckptGrid()
	task := paperTask(t, "All kernels")
	for _, bad := range []ShardRange{{First: -1, Count: 2}, {First: 0, Count: 0}, {First: 10, Count: 3}, {First: 12, Count: 1}} {
		_, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{Shard: &bad})
		if err == nil || !strings.Contains(err.Error(), "shard") {
			t.Fatalf("shard %+v: expected range error, got %v", bad, err)
		}
	}

	// Capture a checkpoint on shard [3, 10) …
	var cp *StreamCheckpoint
	_, err := EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		Shard: &ShardRange{First: 3, Count: 7},
		Every: 2,
		OnCheckpoint: func(c *StreamCheckpoint) error {
			if cp == nil {
				cp = c
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	// … and try to resume a different shard with it.
	_, err = EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{
		Shard:  &ShardRange{First: 4, Count: 6},
		Resume: cp,
	})
	if err == nil || !strings.Contains(err.Error(), "starts at shape") {
		t.Fatalf("expected shard-binding error, got %v", err)
	}
	// A shard checkpoint must not resume a whole-grid run either.
	_, err = EvaluateStreamCheckpointed(context.Background(), task, g, carbon.FabCoal, 380, CheckpointOptions{Resume: cp})
	if err == nil || !strings.Contains(err.Error(), "starts at shape") {
		t.Fatalf("expected shard-binding error for whole-grid resume, got %v", err)
	}
}

// TestMergeShardResultsErrors pins the merge preconditions.
func TestMergeShardResultsErrors(t *testing.T) {
	if _, err := MergeShardResults(nil); err == nil {
		t.Fatal("expected error for empty merge")
	}
	g := ckptGrid()
	a := runShard(t, g, 0, 6, CheckpointOptions{})
	b := runShard(t, g, 0, 6, CheckpointOptions{}) // same range: duplicate ids
	if _, err := MergeShardResults([]*StreamResult{a, b}); err == nil || !strings.Contains(err.Error(), "disjoint") {
		t.Fatalf("expected duplicate-id error, got %v", err)
	}
}
