package dse

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"cordoba/internal/carbon"
	"cordoba/internal/nn"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// The surrogate search finds the tCDP Pareto envelope of a knob grid with a
// small fraction of the evaluations the exhaustive engine pays. It is a
// stdlib-only multi-objective lattice search in the THRAM/cgra-dse mold:
//
//   - the knob lattice is seeded with every corner of the axes plus a
//     Latin-hypercube-like stratified sample, so both objective extremes are
//     anchored before any adaptive step;
//   - each generation performs NSGA-II-style selection — non-dominated sort
//     with crowding-distance tie-breaks — then breeds offspring by per-axis
//     crossover and reflected local mutation on the knob indices;
//   - an optional cheap RBF surrogate (multiquadric interpolation over the
//     normalized knob coordinates, fit to the current population) ranks the
//     offspring so only the most promising fraction pays a real kernel
//     evaluation through the shared MemoCache;
//   - every truly evaluated point streams into the same incremental convex
//     envelope accumulator the exhaustive engine uses, so the result's
//     survivor set is exactly the envelope of the evaluated subset — a
//     surrogate prediction can steer the search but never place a point.
//
// The search is deterministic for a fixed Seed: a serializable splitmix64
// PRNG drives every stochastic choice, parallel evaluations are accumulated
// in sorted candidate order, and checkpoints capture the complete generation
// state, so rerunning — or resuming from any checkpoint — reproduces the
// result byte for byte. Exhaustive remains the oracle; quality.go measures a
// surrogate envelope against it.

// DefaultSurrogatePopulation is the NSGA population size when options leave
// it unset: large enough to hold a stratified sample plus the corners of a
// typical knob lattice (partition-free grids span five non-degenerate axes;
// grids with partition axes may exceed the population and are truncated by
// the budget-capped dedupe), small enough that the O(n²) sort and the RBF
// solve stay trivial.
const DefaultSurrogatePopulation = 48

// sgLegacyAxes is how many leading lattice axes predate the partition axes.
// Variation operators draw RNG for these unconditionally — exactly as the
// historical five-axis implementation did — and for the partition axes only
// when present, so partition-free searches consume the identical RNG stream
// and reproduce historical results byte for byte.
const sgLegacyAxes = 5

// Surrogate budget bounds when SurrogateOptions.Budget is unset: 2 % of the
// grid, floored so small searches still converge and capped so huge grids
// keep sub-linear cost.
const (
	surrogateBudgetFracDenom = 50 // 1/50 = 2 % of the grid
	surrogateMinBudget       = 256
	surrogateMaxBudget       = 8192
)

// DefaultSurrogateBudget returns the evaluation budget used when options
// leave it unset: size/50 (2 %), clamped to [256, 8192] and never above the
// grid itself, nor below four populations' worth of evaluations.
func DefaultSurrogateBudget(size int64, population int) int64 {
	b := size / surrogateBudgetFracDenom
	if min := int64(4 * population); b < min {
		b = min
	}
	if b < surrogateMinBudget {
		b = surrogateMinBudget
	}
	if b > surrogateMaxBudget {
		b = surrogateMaxBudget
	}
	if b > size {
		b = size
	}
	return b
}

// SurrogateOptions tunes the surrogate search. The zero value selects the
// documented defaults (seed 1, auto budget, default population, unlimited
// generations).
type SurrogateOptions struct {
	StreamOptions

	// Seed drives every stochastic choice; runs with equal seed and inputs
	// are byte-identical. 0 selects seed 1.
	Seed uint64

	// Budget caps true evaluations; <= 0 selects DefaultSurrogateBudget.
	Budget int64

	// Population is the NSGA parent-pool size; <= 0 selects
	// DefaultSurrogatePopulation.
	Population int

	// Generations caps the adaptive rounds; <= 0 runs until the budget (or
	// the grid) is exhausted.
	Generations int

	// Resume continues from a previous checkpoint. It must carry this run's
	// fingerprint (task, grid, fab, CI, yield, seed, budget, population).
	Resume *SurrogateCheckpoint

	// Every is the checkpoint cadence in generations; <= 0 disables.
	Every int

	// OnCheckpoint receives a consistent snapshot every Every generations,
	// on the search goroutine. A returned error aborts the search.
	OnCheckpoint func(*SurrogateCheckpoint) error

	// OnProgress, when set, observes progress after every generation.
	OnProgress func(SurrogateProgress)
}

// SurrogateProgress is the live view of a running search.
type SurrogateProgress struct {
	Generation int   // adaptive rounds completed (0 while seeding)
	Evals      int64 // true evaluations paid so far
	Budget     int64 // resolved evaluation budget
	Kept       int   // current envelope size
	GridPoints int64 // full grid size, for context
}

// SurrogateResult is the outcome of a surrogate search. The embedded
// StreamResult holds the envelope of the truly evaluated subset in the same
// form the exhaustive engine produces (Total counts evaluations, and the
// Sum* statistics cover the evaluated sample, not the whole grid).
type SurrogateResult struct {
	*StreamResult

	GridPoints  int64  // configurations the grid enumerates
	Evaluations int64  // true evaluations paid (== StreamResult.Total)
	Generations int    // adaptive rounds run
	Skipped     int64  // offspring ranked out by the surrogate, never evaluated
	Seed        uint64 // resolved seed
	Budget      int64  // resolved budget

	// Evaluated lists every truly evaluated grid index, ascending. The
	// envelope's IDs are always a subset — the property suite pins it.
	Evaluated []int64
}

// SurrogateIndiv is one lattice individual: its knob indices, grid index,
// and evaluated objectives (X = E·D, Y = C_emb·D).
type SurrogateIndiv struct {
	ID  int64       `json:"id"`
	Idx [sgAxes]int `json:"idx"`
	X   float64     `json:"x"`
	Y   float64     `json:"y"`
}

// SurrogateCheckpoint is a resumable snapshot of the search, taken at a
// generation boundary: the generation counter, the PRNG state, the parent
// population, the evaluated-id set, and the archive accumulator. Resuming
// replays the remaining generations bit-identically to an uninterrupted run.
type SurrogateCheckpoint struct {
	Fingerprint string           `json:"fingerprint"`
	GridPoints  int64            `json:"grid_points"`
	Generation  int              `json:"generation"`
	Skipped     int64            `json:"skipped"`
	RNG         uint64           `json:"rng"`
	Population  []SurrogateIndiv `json:"population"`
	Evaluated   []int64          `json:"evaluated"`
	Acc         AccState         `json:"acc"`
}

// validate checks a checkpoint against the run asked to resume it.
func (cp *SurrogateCheckpoint) validate(fp string, size int64) error {
	if cp.Fingerprint != fp {
		return fmt.Errorf("dse: surrogate checkpoint fingerprint %.12s does not match this run (%.12s): the task, grid, fab, CI, yield, seed, budget or population changed", cp.Fingerprint, fp)
	}
	if cp.GridPoints != size {
		return fmt.Errorf("dse: surrogate checkpoint covers a %d-point grid, this grid has %d", cp.GridPoints, size)
	}
	if cp.Generation < 0 || cp.Skipped < 0 {
		return fmt.Errorf("dse: surrogate checkpoint counters corrupt: generation %d, skipped %d", cp.Generation, cp.Skipped)
	}
	if int64(len(cp.Evaluated)) != cp.Acc.Total {
		return fmt.Errorf("dse: surrogate checkpoint lists %d evaluated ids but accumulated %d", len(cp.Evaluated), cp.Acc.Total)
	}
	for i, id := range cp.Evaluated {
		if id < 0 || id >= size {
			return fmt.Errorf("dse: surrogate checkpoint evaluated id %d outside grid [0, %d)", id, size)
		}
		if i > 0 && cp.Evaluated[i-1] >= id {
			return fmt.Errorf("dse: surrogate checkpoint evaluated ids not strictly ascending at %d", i)
		}
	}
	seen := make(map[int64]bool, len(cp.Evaluated))
	for _, id := range cp.Evaluated {
		seen[id] = true
	}
	for i, ind := range cp.Population {
		if !seen[ind.ID] {
			return fmt.Errorf("dse: surrogate checkpoint population member %d (id %d) was never evaluated", i, ind.ID)
		}
	}
	for _, id := range cp.Acc.Envelope.IDs {
		if !seen[id] {
			return fmt.Errorf("dse: surrogate checkpoint envelope id %d was never evaluated", id)
		}
	}
	return nil
}

// surrogateFingerprint binds a checkpoint to everything the search outcome
// depends on: the exhaustive-engine fingerprint (task, grid, fab, CI, yield)
// plus the search's own seed, budget, population and generation cap.
func surrogateFingerprint(task workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity, yield carbon.YieldModel, seed uint64, budget int64, population, generations int) string {
	b, err := json.Marshal(struct {
		Base        string `json:"base"`
		Seed        uint64 `json:"seed"`
		Budget      int64  `json:"budget"`
		Population  int    `json:"population"`
		Generations int    `json:"generations"`
	}{checkpointFingerprint([]workload.Task{task}, g, fab, ci, yield), seed, budget, population, generations})
	if err != nil {
		panic(fmt.Sprintf("dse: surrogate fingerprint marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ---- deterministic PRNG ----

// sgRand is a splitmix64 generator: a single serializable uint64 of state,
// so checkpoints capture it exactly and resumes continue the identical
// stream. Statistical quality is far beyond what lattice sampling needs.
type sgRand struct{ state uint64 }

func newSgRand(seed uint64) *sgRand { return &sgRand{state: seed} }

func (r *sgRand) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n); n must be positive. The modulo bias
// is immaterial at lattice sizes and keeps the draw count fixed per call,
// which the checkpoint determinism contract depends on.
func (r *sgRand) intn(n int) int { return int(r.next() % uint64(n)) }

// float returns a uniform float64 in [0, 1).
func (r *sgRand) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// perm returns a Fisher-Yates permutation of [0, n).
func (r *sgRand) perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// ---- lattice geometry ----

// sgAxes is the knob-lattice dimensionality, in canonical order: MAC
// arrays, SRAM, V_DD, node, model, integration, chiplets, chiplet node.
// Absent axes have length 1 and collapse out of every id computation, so
// partition-free grids keep their historical indices (and old checkpoints,
// whose Idx vectors unmarshal with trailing zeros, resume bit-identically).
const sgAxes = 8

// sgSpace is the knob lattice of a compiled grid: per-axis lengths in the
// canonical order above and the conversion between index vectors and
// shape-major grid indices — the same indices cg.at enumerates, so surrogate
// points keep whole-grid identity.
type sgSpace struct {
	cg    *compiledGrid
	lens  [sgAxes]int
	cells int64
}

func newSgSpace(cg *compiledGrid) *sgSpace {
	g := cg.g
	return &sgSpace{
		cg: cg,
		lens: [sgAxes]int{
			len(g.MACArrays), len(g.SRAMMB), len(g.VDDScales), len(g.Nodes),
			int(axisLen(len(g.Models))), int(axisLen(len(g.Integrations))),
			int(axisLen(len(g.Chiplets))), int(axisLen(len(g.ChipletNodes))),
		},
		cells: int64(len(cg.cells)),
	}
}

// id maps an index vector to its shape-major grid index, matching the
// enumeration order of compiledGrid.at (cells are V_DD-major, then node,
// model, integration, chiplets, with the chiplet node innermost).
func (s *sgSpace) id(idx [sgAxes]int) int64 {
	shape := idx[0]*s.lens[1] + idx[1]
	cell := idx[2]
	for k := 3; k < sgAxes; k++ {
		cell = cell*s.lens[k] + idx[k]
	}
	return int64(shape)*s.cells + int64(cell)
}

// coords maps an index vector to normalized [0,1] coordinates for the RBF
// surrogate; degenerate axes (length 1) collapse to 0.
func (s *sgSpace) coords(idx [sgAxes]int) [sgAxes]float64 {
	var out [sgAxes]float64
	for k, l := range s.lens {
		if l > 1 {
			out[k] = float64(idx[k]) / float64(l-1)
		}
	}
	return out
}

// corners returns every combination of extreme indices (2^(non-degenerate
// axes) vectors, ≤ 2^sgAxes): the anchors of both objective extremes.
func (s *sgSpace) corners() [][sgAxes]int {
	out := [][sgAxes]int{{}}
	for k, l := range s.lens {
		if l <= 1 {
			continue
		}
		next := make([][sgAxes]int, 0, 2*len(out))
		for _, idx := range out {
			lo, hi := idx, idx
			hi[k] = l - 1
			next = append(next, lo, hi)
		}
		out = next
	}
	return out
}

// latin returns n stratified samples: a Latin-hypercube-like design where
// each axis is cut into n strata and every stratum is used exactly once, in
// an independent random permutation per axis.
func (s *sgSpace) latin(rng *sgRand, n int) [][sgAxes]int {
	if n <= 0 {
		return nil
	}
	var perms [sgAxes][]int
	for k, l := range s.lens {
		if l > 1 {
			perms[k] = rng.perm(n)
		}
	}
	out := make([][sgAxes]int, n)
	for j := 0; j < n; j++ {
		var idx [sgAxes]int
		for k, l := range s.lens {
			if l <= 1 {
				continue
			}
			pos := (float64(perms[k][j]) + rng.float()) / float64(n)
			i := int(pos * float64(l))
			if i >= l {
				i = l - 1
			}
			idx[k] = i
		}
		out[j] = idx
	}
	return out
}

// ---- NSGA-II machinery ----

// sgDominates reports strict Pareto dominance of a over b.
func sgDominates(a, b SurrogateIndiv) bool {
	return a.X <= b.X && a.Y <= b.Y && (a.X < b.X || a.Y < b.Y)
}

// sgRank assigns non-domination ranks (0 = the Pareto front of the pool).
// O(n²), fine at population scale.
func sgRank(pop []SurrogateIndiv) []int {
	n := len(pop)
	dominated := make([]int, n) // how many dominate i
	dominates := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case sgDominates(pop[i], pop[j]):
				dominates[i] = append(dominates[i], j)
				dominated[j]++
			case sgDominates(pop[j], pop[i]):
				dominates[j] = append(dominates[j], i)
				dominated[i]++
			}
		}
	}
	rank := make([]int, n)
	var front []int
	for i := 0; i < n; i++ {
		if dominated[i] == 0 {
			front = append(front, i)
		}
	}
	for r := 0; len(front) > 0; r++ {
		var next []int
		for _, i := range front {
			rank[i] = r
			for _, j := range dominates[i] {
				if dominated[j]--; dominated[j] == 0 {
					next = append(next, j)
				}
			}
		}
		front = next
	}
	return rank
}

// sgCrowding computes each individual's crowding distance within its front:
// boundary members get +Inf, interior members the normalized gap between
// their neighbors on both objectives.
func sgCrowding(pop []SurrogateIndiv, rank []int) []float64 {
	crowd := make([]float64, len(pop))
	maxRank := 0
	for _, r := range rank {
		if r > maxRank {
			maxRank = r
		}
	}
	for r := 0; r <= maxRank; r++ {
		var f []int
		for i, ri := range rank {
			if ri == r {
				f = append(f, i)
			}
		}
		if len(f) <= 2 {
			for _, i := range f {
				crowd[i] = math.Inf(1)
			}
			continue
		}
		sort.Slice(f, func(a, b int) bool {
			pa, pb := pop[f[a]], pop[f[b]]
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return pa.ID < pb.ID
		})
		crowd[f[0]], crowd[f[len(f)-1]] = math.Inf(1), math.Inf(1)
		dx := pop[f[len(f)-1]].X - pop[f[0]].X
		dy := math.Abs(pop[f[0]].Y - pop[f[len(f)-1]].Y)
		for k := 1; k < len(f)-1; k++ {
			if dx > 0 {
				crowd[f[k]] += (pop[f[k+1]].X - pop[f[k-1]].X) / dx
			}
			if dy > 0 {
				crowd[f[k]] += math.Abs(pop[f[k-1]].Y-pop[f[k+1]].Y) / dy
			}
		}
	}
	return crowd
}

// sgSelect returns the n best individuals by (rank asc, crowding desc,
// id asc) — NSGA-II environmental selection with a deterministic tie-break.
// The result is freshly allocated and sorted best-first, so binary
// tournaments reduce to "lower index wins".
func sgSelect(pop []SurrogateIndiv, n int) []SurrogateIndiv {
	rank := sgRank(pop)
	crowd := sgCrowding(pop, rank)
	ord := make([]int, len(pop))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ia, ib := ord[a], ord[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		if crowd[ia] != crowd[ib] {
			return crowd[ia] > crowd[ib]
		}
		return pop[ia].ID < pop[ib].ID
	})
	if n > len(ord) {
		n = len(ord)
	}
	out := make([]SurrogateIndiv, n)
	for i := 0; i < n; i++ {
		out[i] = pop[ord[i]]
	}
	return out
}

// ---- variation operators ----

// sgOffspring breeds one child: per-axis uniform crossover between two
// tournament winners, then reflected local mutation on the knob indices —
// mostly ±small steps, with a rare uniform jump for exploration.
func sgOffspring(rng *sgRand, space *sgSpace, pop []SurrogateIndiv) [sgAxes]int {
	// Binary tournaments; pop is sorted best-first, so lower index wins.
	ai, bi := rng.intn(len(pop)), rng.intn(len(pop))
	if bi < ai {
		ai = bi
	}
	ci, di := rng.intn(len(pop)), rng.intn(len(pop))
	if di < ci {
		ci = di
	}
	a, b := pop[ai].Idx, pop[ci].Idx

	var child [sgAxes]int
	for k, l := range space.lens {
		if l <= 1 && k >= sgLegacyAxes {
			continue // absent partition axis: no knob, no RNG draw
		}
		if rng.next()&1 == 0 {
			child[k] = a[k]
		} else {
			child[k] = b[k]
		}
		if l <= 1 {
			continue
		}
		switch r := rng.float(); {
		case r < 0.05:
			child[k] = rng.intn(l) // uniform jump
		case r < 0.45:
			delta := 1
			for rng.float() < 0.4 && delta < l {
				delta++
			}
			if rng.next()&1 == 0 {
				delta = -delta
			}
			v := child[k] + delta
			// Reflect at the lattice edges, then clamp for safety.
			if v < 0 {
				v = -v
			}
			if v > l-1 {
				v = 2*(l-1) - v
			}
			if v < 0 {
				v = 0
			} else if v > l-1 {
				v = l - 1
			}
			child[k] = v
		}
	}
	return child
}

// ---- RBF surrogate model ----

// sgRBF is a multiquadric radial-basis interpolator over normalized knob
// coordinates, fit to the current population's log-objectives. Predictions
// only rank offspring — they never enter the archive — so interpolation
// error costs evaluations, not correctness.
type sgRBF struct {
	centers [][sgAxes]float64
	wx, wy  []float64
}

// sgRBFShape² is the multiquadric shape parameter c² on the unit lattice.
const sgRBFShape2 = 0.09

func sgPhi(r2 float64) float64 { return math.Sqrt(r2 + sgRBFShape2) }

func sgDist2(a, b [sgAxes]float64) float64 {
	var d2 float64
	for k := range a {
		d := a[k] - b[k]
		d2 += d * d
	}
	return d2
}

// sgFitRBF solves the regularized interpolation system for both objectives.
// It returns nil when the system is numerically unusable (the caller then
// evaluates unranked).
func sgFitRBF(space *sgSpace, train []SurrogateIndiv) *sgRBF {
	n := len(train)
	if n < 4 {
		return nil
	}
	m := &sgRBF{centers: make([][sgAxes]float64, n)}
	for i, ind := range train {
		m.centers[i] = space.coords(ind.Idx)
	}
	// Dense system with two right-hand sides, Gaussian elimination with
	// partial pivoting. n is the population size, so this is microseconds.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+2)
		for j := 0; j < n; j++ {
			a[i][j] = sgPhi(sgDist2(m.centers[i], m.centers[j]))
		}
		a[i][i] += 1e-6 // ridge term: tolerate near-duplicate centers
		a[i][n] = math.Log(train[i].X)
		a[i][n+1] = math.Log(train[i].Y)
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		a[col], a[piv] = a[piv], a[col]
		if math.Abs(a[col][col]) < 1e-12 {
			return nil
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			if f == 0 {
				continue
			}
			for j := col; j < n+2; j++ {
				a[r][j] -= f * a[col][j]
			}
		}
	}
	m.wx, m.wy = make([]float64, n), make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sx, sy := a[i][n], a[i][n+1]
		for j := i + 1; j < n; j++ {
			sx -= a[i][j] * m.wx[j]
			sy -= a[i][j] * m.wy[j]
		}
		m.wx[i] = sx / a[i][i]
		m.wy[i] = sy / a[i][i]
	}
	for i := range m.wx {
		if math.IsNaN(m.wx[i]) || math.IsInf(m.wx[i], 0) || math.IsNaN(m.wy[i]) || math.IsInf(m.wy[i], 0) {
			return nil
		}
	}
	return m
}

// predict returns the interpolated log-objectives at an index vector.
// Dominance comparisons on logs equal dominance on the raw objectives.
func (m *sgRBF) predict(space *sgSpace, idx [sgAxes]int) (x, y float64) {
	c := space.coords(idx)
	for i, ctr := range m.centers {
		phi := sgPhi(sgDist2(c, ctr))
		x += m.wx[i] * phi
		y += m.wy[i] * phi
	}
	return x, y
}

// ---- evaluation ----

// sgEval prices one grid point exactly like the exhaustive engine: the
// shape's kernel profiles come from the shared memo (computed on first use)
// and are replayed through the same streamPlatform, so a surrogate-evaluated
// point is bit-identical to its exhaustive twin.
func sgEval(cg *compiledGrid, id int64, kernels []nn.KernelID, task workload.Task, memo *MemoCache, fab carbon.Fab, yield carbon.YieldModel, sc *evalScratch) (Point, error) {
	si := int(id / int64(len(cg.cells)))
	shapeCfg := cg.shapeConfig(si)
	if err := memo.Profiles(shapeCfg, kernels, sc.kprof); err != nil {
		return Point{}, err
	}
	for i, kid := range kernels {
		ki, _ := nn.KernelIndex(kid)
		sc.plat.profiles[ki] = sc.kprof[i]
	}
	cfg, cell := cg.at(id)
	emb, err := cfg.EmbodiedWith(cell.model, yield, cell.process, fab)
	if err != nil {
		return Point{}, err
	}
	sc.plat.reset(cfg)
	cost, err := workload.Evaluate(task, sc.plat)
	if err != nil {
		return Point{}, err
	}
	return Point{
		Config:   cfg,
		Delay:    cost.Delay,
		Energy:   cost.Energy,
		Embodied: emb,
		Area:     cfg.TotalArea(),
		Model:    cell.modelName,
	}, nil
}

// sgEvalBatch evaluates candidate ids in parallel and returns their points
// in input order; callers accumulate sequentially so floating-point order —
// and therefore every checkpoint — is independent of worker scheduling.
func sgEvalBatch(ctx context.Context, cg *compiledGrid, ids []int64, kernels []nn.KernelID, task workload.Task, memo *MemoCache, fab carbon.Fab, yield carbon.YieldModel, workers int) ([]Point, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	pts := make([]Point, len(ids))
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newEvalScratch(cg, kernels)
			for i := range next {
				if ctx.Err() != nil {
					continue
				}
				pt, err := sgEval(cg, ids[i], kernels, task, memo, fab, yield, sc)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					continue
				}
				pts[i] = pt
			}
		}()
	}
	for i := range ids {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("dse: surrogate search aborted: %w", err)
	}
	return pts, nil
}

// EvaluateSurrogate runs the surrogate-guided Pareto search over a knob grid
// for one task. The returned envelope contains only truly evaluated points
// (their grid IDs match the exhaustive enumeration), Evaluations reports the
// budget actually spent, and results are byte-identical across reruns and
// checkpoint/resume for a fixed Seed.
func EvaluateSurrogate(ctx context.Context, task workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity, opt SurrogateOptions) (*SurrogateResult, error) {
	if ci < 0 {
		return nil, fmt.Errorf("dse: negative CI_use %v", ci)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cg, err := g.compile()
	if err != nil {
		return nil, err
	}
	space := newSgSpace(cg)
	size := cg.size()

	seed := opt.Seed
	if seed == 0 {
		seed = 1
	}
	population := opt.Population
	if population <= 0 {
		population = DefaultSurrogatePopulation
	}
	budget := opt.Budget
	if budget <= 0 {
		budget = DefaultSurrogateBudget(size, population)
	}
	if budget > size {
		budget = size
	}
	memo := opt.Memo
	if memo == nil {
		memo = NewMemoCache(0)
	}
	kernels := kernelUnion([]workload.Task{task})
	fp := surrogateFingerprint(task, g, fab, ci, opt.Yield, seed, budget, population, opt.Generations)

	rng := newSgRand(seed)
	acc := &taskAcc{payload: make(map[int64]Point)}
	seen := make(map[int64]bool, budget)
	var evalOrder []int64 // ascending insert per batch; checkpoint stores the sorted union
	var pop []SurrogateIndiv
	gen := 0
	var skipped int64

	// evaluate prices a batch of unseen candidate ids (ascending) and folds
	// them into the archive, the population, and the evaluated set.
	evaluate := func(ids []int64, idxs [][sgAxes]int) error {
		pts, err := sgEvalBatch(ctx, cg, ids, kernels, task, memo, fab, opt.Yield, opt.Workers)
		if err != nil {
			return err
		}
		acc.offerBatch(ids, pts)
		for i, id := range ids {
			seen[id] = true
			evalOrder = append(evalOrder, id)
			pop = append(pop, SurrogateIndiv{
				ID:  id,
				Idx: idxs[i],
				X:   pts[i].EDP(),
				Y:   pts[i].EmbodiedDelay(),
			})
		}
		return nil
	}

	report := func() {
		if opt.OnProgress == nil {
			return
		}
		_, _, kept := acc.progress()
		opt.OnProgress(SurrogateProgress{
			Generation: gen,
			Evals:      int64(len(seen)),
			Budget:     budget,
			Kept:       kept,
			GridPoints: size,
		})
	}

	if cp := opt.Resume; cp != nil {
		if err := cp.validate(fp, size); err != nil {
			return nil, err
		}
		if err := acc.restore(cp.Acc); err != nil {
			return nil, fmt.Errorf("dse: surrogate checkpoint: %w", err)
		}
		for _, id := range cp.Evaluated {
			seen[id] = true
			evalOrder = append(evalOrder, id)
		}
		pop = append([]SurrogateIndiv(nil), cp.Population...)
		gen = cp.Generation
		skipped = cp.Skipped
		rng.state = cp.RNG
	} else {
		// Seed phase: lattice corners anchor the objective extremes, a
		// Latin-hypercube sample spreads the rest of the first population.
		cands := space.corners()
		if extra := population - len(cands); extra > 0 {
			cands = append(cands, space.latin(rng, extra)...)
		}
		ids, idxs := dedupeCandidates(space, cands, seen, budget)
		if err := evaluate(ids, idxs); err != nil {
			return nil, err
		}
		report()
	}

	batch := population / 2
	if batch < 8 {
		batch = 8
	}
	for {
		evals := int64(len(seen))
		if evals >= budget || evals >= size {
			break
		}
		if opt.Generations > 0 && gen >= opt.Generations {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dse: surrogate search aborted: %w", err)
		}
		gen++

		pop = sgSelect(pop, population)
		want := batch
		if remaining := budget - evals; int64(want) > remaining {
			want = int(remaining)
		}

		// Breed up to 4× the evaluation slots; the surrogate ranks them and
		// only the most promising fraction pays a real evaluation.
		target := 4 * want
		raw := make([][sgAxes]int, 0, target)
		local := make(map[int64]bool, target)
		for attempts := 0; len(raw) < target && attempts < 16*target; attempts++ {
			child := sgOffspring(rng, space, pop)
			id := space.id(child)
			if seen[id] || local[id] {
				continue
			}
			local[id] = true
			raw = append(raw, child)
		}
		if len(raw) == 0 {
			// The neighborhood of the front is exhausted (tiny grid or huge
			// budget): fall back to a deterministic sweep of unseen ids so a
			// budget ≥ grid degrades to exhaustive.
			ids, idxs := unseenSweep(space, seen, want)
			if len(ids) == 0 {
				break
			}
			if err := evaluate(ids, idxs); err != nil {
				return nil, err
			}
			report()
			continue
		}

		chosen := raw
		if len(raw) > want {
			chosen = sgRankOffspring(space, pop, raw, want)
			skipped += int64(len(raw) - len(chosen))
		}
		ids, idxs := dedupeCandidates(space, chosen, seen, budget-evals)
		if err := evaluate(ids, idxs); err != nil {
			return nil, err
		}
		report()

		if opt.Every > 0 && opt.OnCheckpoint != nil && gen%opt.Every == 0 {
			if err := opt.OnCheckpoint(snapshotSurrogate(fp, size, gen, skipped, rng, pop, evalOrder, acc)); err != nil {
				return nil, fmt.Errorf("dse: surrogate checkpoint callback: %w", err)
			}
		}
	}

	sortedIDs := append([]int64(nil), evalOrder...)
	sort.Slice(sortedIDs, func(i, j int) bool { return sortedIDs[i] < sortedIDs[j] })
	return &SurrogateResult{
		StreamResult: acc.result(task, ci),
		GridPoints:   size,
		Evaluations:  int64(len(seen)),
		Generations:  gen,
		Skipped:      skipped,
		Seed:         seed,
		Budget:       budget,
		Evaluated:    sortedIDs,
	}, nil
}

// snapshotSurrogate captures the search state at a generation boundary.
func snapshotSurrogate(fp string, size int64, gen int, skipped int64, rng *sgRand, pop []SurrogateIndiv, evalOrder []int64, acc *taskAcc) *SurrogateCheckpoint {
	ids := append([]int64(nil), evalOrder...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return &SurrogateCheckpoint{
		Fingerprint: fp,
		GridPoints:  size,
		Generation:  gen,
		Skipped:     skipped,
		RNG:         rng.state,
		Population:  append([]SurrogateIndiv(nil), pop...),
		Evaluated:   ids,
		Acc:         acc.snapshot(),
	}
}

// sgRankOffspring picks the want most promising offspring: an RBF surrogate
// fit to the parent population predicts each child's objectives, and NSGA
// selection on the predictions keeps a non-dominated, well-spread subset.
// When the fit is unusable the first want children by grid id are taken —
// the search stays correct, just less sample-efficient.
func sgRankOffspring(space *sgSpace, parents []SurrogateIndiv, raw [][sgAxes]int, want int) [][sgAxes]int {
	model := sgFitRBF(space, parents)
	if model == nil {
		byID := append([][sgAxes]int(nil), raw...)
		sort.Slice(byID, func(i, j int) bool { return space.id(byID[i]) < space.id(byID[j]) })
		return byID[:want]
	}
	preds := make([]SurrogateIndiv, len(raw))
	for i, idx := range raw {
		x, y := model.predict(space, idx)
		preds[i] = SurrogateIndiv{ID: space.id(idx), Idx: idx, X: x, Y: y}
	}
	best := sgSelect(preds, want)
	out := make([][sgAxes]int, len(best))
	for i, ind := range best {
		out[i] = ind.Idx
	}
	return out
}

// dedupeCandidates resolves candidate index vectors to unique, unseen grid
// ids, caps them at limit, and returns them sorted ascending by id so
// accumulation order is canonical.
func dedupeCandidates(space *sgSpace, cands [][sgAxes]int, seen map[int64]bool, limit int64) ([]int64, [][sgAxes]int) {
	type c struct {
		id  int64
		idx [sgAxes]int
	}
	uniq := make([]c, 0, len(cands))
	local := make(map[int64]bool, len(cands))
	for _, idx := range cands {
		id := space.id(idx)
		if seen[id] || local[id] {
			continue
		}
		local[id] = true
		uniq = append(uniq, c{id, idx})
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].id < uniq[j].id })
	if limit >= 0 && int64(len(uniq)) > limit {
		uniq = uniq[:limit]
	}
	ids := make([]int64, len(uniq))
	idxs := make([][sgAxes]int, len(uniq))
	for i, u := range uniq {
		ids[i], idxs[i] = u.id, u.idx
	}
	return ids, idxs
}

// unseenSweep returns up to n unseen ids in ascending order — the
// exhaustive-degradation path for budgets that approach the grid size.
func unseenSweep(space *sgSpace, seen map[int64]bool, n int) ([]int64, [][sgAxes]int) {
	var ids []int64
	var idxs [][sgAxes]int
	size := space.cg.size()
	for id := int64(0); id < size && len(ids) < n; id++ {
		if seen[id] {
			continue
		}
		ids = append(ids, id)
		idxs = append(idxs, space.idxOf(id))
	}
	return ids, idxs
}

// idxOf inverts id: the index vector of a shape-major grid index.
func (s *sgSpace) idxOf(id int64) [sgAxes]int {
	shape := int(id / s.cells)
	cell := int(id % s.cells)
	var idx [sgAxes]int
	idx[0], idx[1] = shape/s.lens[1], shape%s.lens[1]
	for k := sgAxes - 1; k >= 3; k-- {
		idx[k] = cell % s.lens[k]
		cell /= s.lens[k]
	}
	idx[2] = cell
	return idx
}
