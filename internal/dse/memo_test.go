package dse

import (
	"testing"

	"cordoba/internal/accel"
	"cordoba/internal/nn"
	"cordoba/internal/units"
)

// memoTestConfigs returns n configurations with n distinct shape keys.
func memoTestConfigs(n int) []accel.Config {
	out := make([]accel.Config, n)
	for i := range out {
		out[i] = accel.New("m", 8+i, 4*units.MiB)
	}
	return out
}

// TestMemoPartialEviction pins the flush-stampede fix: the cache used to
// clear the whole map when an insert found it full, so a working set one
// entry over the bound flushed everything on every cycle — a steady-state
// hit rate of zero exactly when the cache mattered most. Partial eviction
// keeps ~3/4 of the working set resident, so cycling max+1 distinct shapes
// must retain a hit rate well above half.
func TestMemoPartialEviction(t *testing.T) {
	const max = 8
	mc := NewMemoCache(max)
	cfgs := memoTestConfigs(max + 1)

	for round := 0; round < 20; round++ {
		for _, c := range cfgs {
			if _, err := mc.Profile(c, nn.RN18); err != nil {
				t.Fatal(err)
			}
		}
	}
	hits, misses := mc.Stats()
	total := hits + misses
	if rate := float64(hits) / float64(total); rate < 0.5 {
		t.Fatalf("hit rate %.2f (hits %d / %d) with working set max+1; full-map flush regression", rate, hits, total)
	}
	if mc.Evictions() == 0 {
		t.Fatal("no evictions counted despite working set exceeding the bound")
	}
	if n := mc.Len(); n > max {
		t.Fatalf("cache holds %d entries, bound is %d", n, max)
	}
}

// TestMemoEvictionCounter: each capacity eviction drops len/4 (min 1)
// entries and counts every one of them.
func TestMemoEvictionCounter(t *testing.T) {
	const max = 4
	mc := NewMemoCache(max)
	cfgs := memoTestConfigs(max + 1)
	for _, c := range cfgs {
		if _, err := mc.Profile(c, nn.RN18); err != nil {
			t.Fatal(err)
		}
	}
	// The 5th insert found the cache full and dropped max/4 = 1 entry.
	if got := mc.Evictions(); got != 1 {
		t.Fatalf("Evictions() = %d, want 1", got)
	}
	if n := mc.Len(); n != max {
		t.Fatalf("Len() = %d, want %d", n, max)
	}
}

// TestMemoProfilesBatchedLookup: the batched per-shape lookup returns the
// same canonical pointers as the per-kernel path and counts hits/misses
// identically.
func TestMemoProfilesBatchedLookup(t *testing.T) {
	mc := NewMemoCache(0)
	cfg := accel.New("m", 16, 4*units.MiB)
	kernels := []nn.KernelID{nn.RN18, nn.RN50, nn.GN}

	dst := make([]*accel.ShapeProfile, len(kernels))
	if err := mc.Profiles(cfg, kernels, dst); err != nil {
		t.Fatal(err)
	}
	for i, id := range kernels {
		if dst[i] == nil || dst[i].Kernel != id {
			t.Fatalf("dst[%d] = %+v, want profile of %s", i, dst[i], id)
		}
		single, err := mc.Profile(cfg, id)
		if err != nil {
			t.Fatal(err)
		}
		if single != dst[i] {
			t.Fatalf("Profile(%s) returned a different pointer than the batched lookup", id)
		}
	}

	// A second batched pass is a full hit: no new misses, no allocations.
	_, missesBefore := mc.Stats()
	allocs := testing.AllocsPerRun(10, func() {
		if err := mc.Profiles(cfg, kernels, dst); err != nil {
			t.Fatal(err)
		}
	})
	if _, missesAfter := mc.Stats(); missesAfter != missesBefore {
		t.Fatalf("repeat batched lookup missed (%d → %d)", missesBefore, missesAfter)
	}
	if allocs > 0 {
		t.Fatalf("hot batched lookup allocates %.1f objects, want 0", allocs)
	}
}
