package dse

import (
	"fmt"
	"sort"

	"cordoba/internal/pareto"
)

// MergeShardResults folds per-shard streaming results back into the result a
// single-node run over the whole grid would have produced. Shards must come
// from the same exploration (same task, same CI_use) and carry disjoint
// global survivor IDs — which sharded runs guarantee by construction, since
// each shard covers a disjoint shape range.
//
// The survivor envelope merges exactly: rejection is final, so
// envelope(A ∪ B) = envelope(envelope(A) ∪ envelope(B)), and offering shards
// in ascending-ID order reproduces the single-node stream's
// duplicate-coordinate tie-breaks (first offer wins). Survivor points and
// IDs, Total, PrePruned and Offered are therefore identical to the unsharded
// run. SumEDP and SumEmbD are re-summed per shard in ascending-shard order —
// deterministic for a given partition, but floating-point addition is not
// associative, so they can differ from the single-node sums in the last few
// ULPs. The shard property suite pins the envelope equality exactly and the
// sums to within that tolerance.
func MergeShardResults(results []*StreamResult) (*StreamResult, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("dse: no shard results to merge")
	}
	base := results[0]
	for i, r := range results[1:] {
		if r.Space.Task.Name != base.Space.Task.Name {
			return nil, fmt.Errorf("dse: shard %d ran task %q, shard 0 ran %q", i+1, r.Space.Task.Name, base.Space.Task.Name)
		}
		if r.Space.CIUse != base.Space.CIUse {
			return nil, fmt.Errorf("dse: shard %d used CI_use %v, shard 0 used %v", i+1, r.Space.CIUse, base.Space.CIUse)
		}
		if len(r.IDs) != len(r.Space.Points) {
			return nil, fmt.Errorf("dse: shard %d has %d ids for %d survivors", i+1, len(r.IDs), len(r.Space.Points))
		}
	}
	if len(base.IDs) != len(base.Space.Points) {
		return nil, fmt.Errorf("dse: shard 0 has %d ids for %d survivors", len(base.IDs), len(base.Space.Points))
	}

	// Merge in ascending-shard order so duplicate-coordinate tie-breaks
	// resolve exactly as in a single stream that saw the IDs in order. Shards
	// cover disjoint ID ranges, so the minimum survivor ID orders them;
	// survivor-free shards only contribute counters and can merge anywhere.
	sorted := append([]*StreamResult(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if len(a.IDs) == 0 || len(b.IDs) == 0 {
			return len(b.IDs) == 0 && len(a.IDs) > 0
		}
		return minID(a.IDs) < minID(b.IDs)
	})

	var (
		env     pareto.Stream
		payload = make(map[int64]Point)
		merged  = &StreamResult{Space: &Space{Task: base.Space.Task, CIUse: base.Space.CIUse}}
	)
	for _, r := range sorted {
		pts := make([]pareto.Point, len(r.Space.Points))
		for i, p := range r.Space.Points {
			if _, dup := payload[r.IDs[i]]; dup {
				return nil, fmt.Errorf("dse: survivor id %d appears in two shards — shards must cover disjoint ranges", r.IDs[i])
			}
			payload[r.IDs[i]] = p
			pts[i] = pareto.Point{X: p.EDP(), Y: p.EmbodiedDelay()}
		}
		accepted, evicted := env.Merge(pareto.StreamState{Points: pts, IDs: append([]int64(nil), r.IDs...), Offered: r.Offered})
		keep := make(map[int64]bool, len(accepted))
		for _, id := range accepted {
			keep[id] = true
		}
		for _, id := range evicted {
			delete(payload, id)
			delete(keep, id)
		}
		for _, id := range r.IDs {
			if !keep[id] {
				delete(payload, id)
			}
		}
		merged.Total += r.Total
		merged.PrePruned += r.PrePruned
		merged.SumEDP += r.SumEDP
		merged.SumEmbD += r.SumEmbD
	}
	merged.Offered = env.Offered()

	ids := env.IDs()
	points := make([]Point, len(ids))
	for i, id := range ids {
		points[i] = payload[id]
	}
	merged.Space.Points = points
	merged.IDs = ids
	return merged, nil
}

func minID(ids []int64) int64 {
	m := ids[0]
	for _, id := range ids[1:] {
		if id < m {
			m = id
		}
	}
	return m
}
