package dse

import (
	"sync"
	"sync/atomic"

	"cordoba/internal/accel"
	"cordoba/internal/nn"
)

// DefaultMemoEntries bounds the shared shape-profile cache. One entry is a
// kernel's layer shapes for one (MAC arrays, SRAM) pair — a few hundred
// bytes — so the default admits every shape of a Fig. 8-scale grid for all
// fifteen kernels (121 × 15 = 1815 entries) with room for several requests'
// worth of distinct shapes on top.
const DefaultMemoEntries = 8192

// memoKey identifies a cached profile: the (kernel, config-signature) pair
// of the issue spec, with accel.ShapeKey as the signature — the exact set
// of Config fields a kernel's layer shapes depend on.
type memoKey struct {
	kernel nn.KernelID
	key    accel.ShapeKey
}

// MemoCache is the concurrency-safe memoization layer of the streaming DSE
// engine: it caches accel.ShapeProfile values keyed on (kernel, ShapeKey),
// so the dominant per-point cost — walking a kernel's layers — is paid once
// per shape per worker-pool run and replayed across every DVFS/node cell,
// every task sharing the kernel, and every request sharing the cache.
//
// The cache is bounded: when an insert would exceed the limit the whole map
// is flushed (profiles are cheap to recompute and real workloads cycle
// through a bounded shape set, so an LRU chain would buy little here).
type MemoCache struct {
	mu  sync.RWMutex
	max int
	m   map[memoKey]*accel.ShapeProfile

	hits   atomic.Int64
	misses atomic.Int64
}

// NewMemoCache returns a cache bounded to max profiles; max < 1 selects
// DefaultMemoEntries.
func NewMemoCache(max int) *MemoCache {
	if max < 1 {
		max = DefaultMemoEntries
	}
	return &MemoCache{max: max, m: make(map[memoKey]*accel.ShapeProfile)}
}

// Profile returns the shape profile of kernel id on configuration c,
// computing and caching it on first use. The returned profile is shared and
// immutable; callers replay it with ShapeProfile.Cost.
func (mc *MemoCache) Profile(c accel.Config, id nn.KernelID) (*accel.ShapeProfile, error) {
	k := memoKey{kernel: id, key: c.ShapeKey()}
	mc.mu.RLock()
	sp, ok := mc.m[k]
	mc.mu.RUnlock()
	if ok {
		mc.hits.Add(1)
		return sp, nil
	}
	mc.misses.Add(1)
	sp, err := c.ShapeProfile(id)
	if err != nil {
		return nil, err
	}
	mc.mu.Lock()
	if prev, ok := mc.m[k]; ok {
		sp = prev // another worker won the race; keep one canonical profile
	} else {
		if len(mc.m) >= mc.max {
			mc.m = make(map[memoKey]*accel.ShapeProfile)
		}
		mc.m[k] = sp
	}
	mc.mu.Unlock()
	return sp, nil
}

// Len returns the number of cached profiles.
func (mc *MemoCache) Len() int {
	mc.mu.RLock()
	defer mc.mu.RUnlock()
	return len(mc.m)
}

// Stats returns the lifetime hit and miss counters.
func (mc *MemoCache) Stats() (hits, misses int64) {
	return mc.hits.Load(), mc.misses.Load()
}
