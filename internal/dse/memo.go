package dse

import (
	"sync"
	"sync/atomic"

	"cordoba/internal/accel"
	"cordoba/internal/nn"
)

// DefaultMemoEntries bounds the shared shape-profile cache. One entry is a
// kernel's layer shapes for one (MAC arrays, SRAM) pair — a few hundred
// bytes — so the default admits every shape of a Fig. 8-scale grid for all
// fifteen kernels (121 × 15 = 1815 entries) with room for several requests'
// worth of distinct shapes on top.
const DefaultMemoEntries = 8192

// memoEvictFraction is the share of entries dropped when an insert finds the
// cache full. Partial eviction keeps the surviving ~3/4 of the working set
// hot: the historical full-map flush meant a working set one entry over the
// bound forced every worker to recompute every profile — a thundering-herd
// recomputation exactly when the cache was most needed.
const memoEvictFraction = 4 // evict len/memoEvictFraction entries

// memoKey identifies a cached profile: the (kernel, config-signature) pair
// of the issue spec, with accel.ShapeKey as the signature — the exact set
// of Config fields a kernel's layer shapes depend on.
type memoKey struct {
	kernel nn.KernelID
	key    accel.ShapeKey
}

// MemoCache is the concurrency-safe memoization layer of the streaming DSE
// engine: it caches accel.ShapeProfile values keyed on (kernel, ShapeKey),
// so the dominant per-point cost — walking a kernel's layers — is paid once
// per shape per worker-pool run and replayed across every DVFS/node cell,
// every task sharing the kernel, and every request sharing the cache.
//
// The cache is bounded: when an insert would exceed the limit, a random
// ~25% of the entries are evicted under the lock (Go's map iteration order
// is randomized, so walking the map is a cheap random sample). Evictions are
// counted and exported as cordobad_memo_evictions_total.
type MemoCache struct {
	mu  sync.RWMutex
	max int
	m   map[memoKey]*accel.ShapeProfile

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewMemoCache returns a cache bounded to max profiles; max < 1 selects
// DefaultMemoEntries.
func NewMemoCache(max int) *MemoCache {
	if max < 1 {
		max = DefaultMemoEntries
	}
	return &MemoCache{max: max, m: make(map[memoKey]*accel.ShapeProfile)}
}

// evictLocked makes room for one insert by dropping a random fraction of the
// map. Called with mu held for writing and len(m) >= max.
func (mc *MemoCache) evictLocked() {
	drop := len(mc.m) / memoEvictFraction
	if drop < 1 {
		drop = 1
	}
	mc.evictions.Add(int64(drop))
	for k := range mc.m {
		delete(mc.m, k)
		if drop--; drop == 0 {
			break
		}
	}
}

// insertLocked stores sp under k, evicting if full. When another worker
// already inserted the key, the previous profile wins so every caller replays
// one canonical pointer. Returns the canonical profile.
func (mc *MemoCache) insertLocked(k memoKey, sp *accel.ShapeProfile) *accel.ShapeProfile {
	if prev, ok := mc.m[k]; ok {
		return prev
	}
	if len(mc.m) >= mc.max {
		mc.evictLocked()
	}
	mc.m[k] = sp
	return sp
}

// Profile returns the shape profile of kernel id on configuration c,
// computing and caching it on first use. The returned profile is shared and
// immutable; callers replay it with ShapeProfile.Cost.
func (mc *MemoCache) Profile(c accel.Config, id nn.KernelID) (*accel.ShapeProfile, error) {
	k := memoKey{kernel: id, key: c.ShapeKey()}
	mc.mu.RLock()
	sp, ok := mc.m[k]
	mc.mu.RUnlock()
	if ok {
		mc.hits.Add(1)
		return sp, nil
	}
	mc.misses.Add(1)
	sp, err := c.ShapeProfile(id)
	if err != nil {
		return nil, err
	}
	mc.mu.Lock()
	sp = mc.insertLocked(k, sp)
	mc.mu.Unlock()
	return sp, nil
}

// Profiles fills dst (parallel to kernels) with the shape profiles of every
// kernel on configuration c, taking one read-lock round-trip per shape
// instead of one per kernel — the batched lookup the streaming engine's
// per-shape hot path rides. The ShapeKey is computed once; on a full hit the
// call performs no allocations. Missing profiles are computed outside the
// lock and inserted with a single write-lock round-trip.
func (mc *MemoCache) Profiles(c accel.Config, kernels []nn.KernelID, dst []*accel.ShapeProfile) error {
	key := c.ShapeKey()

	missing := 0
	mc.mu.RLock()
	for i, id := range kernels {
		sp, ok := mc.m[memoKey{kernel: id, key: key}]
		dst[i] = sp // nil on miss
		if !ok {
			missing++
		}
	}
	mc.mu.RUnlock()
	mc.hits.Add(int64(len(kernels) - missing))
	if missing == 0 {
		return nil
	}
	mc.misses.Add(int64(missing))

	for i, id := range kernels {
		if dst[i] != nil {
			continue
		}
		sp, err := c.ShapeProfile(id)
		if err != nil {
			return err
		}
		dst[i] = sp
	}
	mc.mu.Lock()
	for i, id := range kernels {
		dst[i] = mc.insertLocked(memoKey{kernel: id, key: key}, dst[i])
	}
	mc.mu.Unlock()
	return nil
}

// Len returns the number of cached profiles.
func (mc *MemoCache) Len() int {
	mc.mu.RLock()
	defer mc.mu.RUnlock()
	return len(mc.m)
}

// Stats returns the lifetime hit and miss counters.
func (mc *MemoCache) Stats() (hits, misses int64) {
	return mc.hits.Load(), mc.misses.Load()
}

// Evictions returns the number of entries dropped by capacity eviction
// (each eviction event drops a random ~25% of the cache). Exported as
// cordobad_memo_evictions_total.
func (mc *MemoCache) Evictions() int64 {
	return mc.evictions.Load()
}
