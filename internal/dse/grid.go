package dse

import (
	"fmt"
	"math"
	"strconv"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/device"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// Grid is a lazy cartesian design-space generator: the v2 request form of
// POST /v1/dse. Instead of materializing a []accel.Config, callers describe
// knob ranges — MAC-array count, activation-SRAM capacity, DVFS supply
// scaling and technology node — and the engine enumerates the product space
// on demand, one configuration at a time. A 10⁶-point grid therefore costs
// four small slices, not a million Config values.
//
// The circuit knobs go through internal/device: each (node, V_DD scale)
// cell is priced by the alpha-power-law model relative to the nominal 7 nm
// design that calibrated accel.DefaultParams, and the resulting clock,
// dynamic-energy, leakage and area ratios rescale the simulator parameters.
// Embodied carbon uses each node's own carbon.Process, so advancing the
// node trades operational energy against fab footprint exactly as §VII's
// Table VI describes.
//
// Enumeration order is shape-major: all (V_DD, node) cells of one
// (MAC arrays, SRAM) pair are contiguous. The streaming engine leans on
// this — a shape's kernel layer profiles (accel.ShapeProfile) are computed
// once and replayed across every cell in the run.
type Grid struct {
	MACArrays []int     // MAC-array axis; required
	SRAMMB    []float64 // activation-SRAM axis in MB; required
	VDDScales []float64 // V_DD as a fraction of nominal; default {1.0}
	Nodes     []string  // technology nodes by name; default {"7nm"}
	// Models lists embodied-carbon backends by carbon.ModelByName name
	// ("act", "chiplet", "stacked-3d"), turning the accounting model itself
	// into a sweep axis. Empty keeps the default ACT pipeline and leaves
	// Point.Model blank, exactly as before the knob existed.
	Models []string
}

// maxGridBits bounds Size() so index arithmetic cannot overflow; real grids
// are far smaller (the server applies its own request-size cap on top).
const maxGridBits = 40

// normalized returns the grid with defaults applied.
func (g Grid) normalized() Grid {
	if len(g.VDDScales) == 0 {
		g.VDDScales = []float64{1.0}
	}
	if len(g.Nodes) == 0 {
		g.Nodes = []string{"7nm"}
	}
	return g
}

// Size returns the number of configurations the grid enumerates, after
// defaults are applied.
func (g Grid) Size() int64 {
	g = g.normalized()
	models := int64(len(g.Models))
	if models == 0 {
		models = 1
	}
	return int64(len(g.MACArrays)) * int64(len(g.SRAMMB)) *
		int64(len(g.VDDScales)) * int64(len(g.Nodes)) * models
}

// gridCell is one compiled (V_DD scale, node, model) combination: the
// parameter ratios relative to the nominal 7 nm calibration point, the node's
// embodied-carbon process, and the accounting backend pricing the cell.
type gridCell struct {
	vddScale float64
	node     string
	process  carbon.Process

	// model prices the cell's embodied carbon; nil means the default ACT
	// pipeline (no Models axis requested) and keeps Point.Model blank.
	model     carbon.Model
	modelName string

	clockR  float64 // max-clock ratio vs nominal 7 nm
	energyR float64 // dynamic energy per cycle ratio
	leakR   float64 // leakage power ratio
	areaR   float64 // area per gate ratio

	// embClass indexes the cell's embodied-carbon equivalence class: cells
	// sharing (node process, accounting model, area ratio) price any given
	// shape to bit-identical embodied carbon, so the streaming engine
	// computes it once per (shape, class) instead of once per cell — V_DD
	// only rescales clock/energy/leakage, never the fab footprint.
	embClass int
}

// compiledGrid is a validated grid with its cells priced by the device
// model, ready for O(1) random access.
type compiledGrid struct {
	g          Grid
	cells      []gridCell
	embClasses int // distinct embodied-carbon classes across cells
}

// compile validates the grid and prices every (V_DD, node) cell.
func (g Grid) compile() (*compiledGrid, error) {
	g = g.normalized()
	if len(g.MACArrays) == 0 {
		return nil, fmt.Errorf("dse: grid needs at least one MAC-array option")
	}
	if len(g.SRAMMB) == 0 {
		return nil, fmt.Errorf("dse: grid needs at least one SRAM option")
	}
	if s := g.Size(); s >= 1<<maxGridBits {
		return nil, fmt.Errorf("dse: grid enumerates %d points, beyond the 2^%d indexing limit", s, maxGridBits)
	}
	for _, a := range g.MACArrays {
		if a <= 0 {
			return nil, fmt.Errorf("dse: grid MAC arrays must be positive, got %d", a)
		}
	}
	for _, mb := range g.SRAMMB {
		if mb <= 0 {
			return nil, fmt.Errorf("dse: grid SRAM must be positive, got %v MB", mb)
		}
	}

	ref := device.NewDesign(device.Node7nm())
	refClock := ref.MaxClock().Hertz()
	refEnergy := ref.DynamicEnergyPerCycle().Joules()
	refLeak := ref.LeakagePower().Watts()
	refArea := ref.Area().CM2()

	// An empty Models axis compiles to one unlabeled cell slot per
	// (V_DD, node) with a nil model — the pre-knob enumeration, cell for
	// cell. Named models are validated here and attached innermost so all
	// backends of one (V_DD, node) pair stay contiguous.
	type modelSlot struct {
		m    carbon.Model
		name string
	}
	slots := []modelSlot{{}}
	if len(g.Models) > 0 {
		slots = slots[:0]
		for _, name := range g.Models {
			m, err := carbon.ModelByName(name)
			if err != nil {
				return nil, fmt.Errorf("dse: grid: %w", err)
			}
			slots = append(slots, modelSlot{m: m, name: m.Name()})
		}
	}

	cg := &compiledGrid{g: g, cells: make([]gridCell, 0, len(g.VDDScales)*len(g.Nodes)*len(slots))}
	for _, vs := range g.VDDScales {
		if vs <= 0 {
			return nil, fmt.Errorf("dse: grid V_DD scale must be positive, got %v", vs)
		}
		for _, name := range g.Nodes {
			node, err := device.NodeByName(name)
			if err != nil {
				return nil, fmt.Errorf("dse: grid: %w", err)
			}
			proc, err := carbon.ProcessByName(name)
			if err != nil {
				return nil, fmt.Errorf("dse: grid: %w", err)
			}
			d := device.DVFSPoint(device.NewDesign(node), vs)
			if err := d.Validate(); err != nil {
				return nil, fmt.Errorf("dse: grid: node %s at %.2f·V_DD: %w", name, vs, err)
			}
			for _, slot := range slots {
				cg.cells = append(cg.cells, gridCell{
					vddScale:  vs,
					node:      name,
					process:   proc,
					model:     slot.m,
					modelName: slot.name,
					clockR:    d.MaxClock().Hertz() / refClock,
					energyR:   d.DynamicEnergyPerCycle().Joules() / refEnergy,
					leakR:     d.LeakagePower().Watts() / refLeak,
					areaR:     d.Area().CM2() / refArea,
				})
			}
		}
	}

	// Partition the cells into embodied-carbon equivalence classes. The
	// footprint of a cell depends only on the shape's area (scaled by areaR),
	// the node's process and the accounting model — identical inputs give
	// bit-identical results, so the class representative's value stands for
	// every member.
	type embKey struct {
		node  string
		model string
		areaR uint64
	}
	classes := make(map[embKey]int)
	for i := range cg.cells {
		c := &cg.cells[i]
		k := embKey{node: c.node, model: c.modelName, areaR: math.Float64bits(c.areaR)}
		id, ok := classes[k]
		if !ok {
			id = len(classes)
			classes[k] = id
		}
		c.embClass = id
	}
	cg.embClasses = len(classes)
	return cg, nil
}

// shapes returns the number of (MAC arrays, SRAM) pairs.
func (cg *compiledGrid) shapes() int { return len(cg.g.MACArrays) * len(cg.g.SRAMMB) }

// size returns the total configuration count.
func (cg *compiledGrid) size() int64 { return int64(cg.shapes()) * int64(len(cg.cells)) }

// shapeConfig returns the configuration of shape index si priced at the
// nominal 7 nm cell — the representative used to compute shape profiles
// (the ShapeKey fields are cell-independent, so any cell would do).
func (cg *compiledGrid) shapeConfig(si int) accel.Config {
	ai, mi := si/len(cg.g.SRAMMB), si%len(cg.g.SRAMMB)
	return accel.New("", cg.g.MACArrays[ai], units.MB(cg.g.SRAMMB[mi]))
}

// at returns configuration i (shape-major: i = shape·cells + cell) with its
// compiled cell — the node's embodied process plus the accounting model.
// IDs are "k1" … "kN" in enumeration order.
func (cg *compiledGrid) at(i int64) (accel.Config, gridCell) {
	c, cell := cg.atNoID(i)
	c.ID = gridPointID(i)
	return c, cell
}

// atNoID is at without materializing the "k<N>" ID string. The streaming
// engine evaluates every grid cell but keeps only envelope survivors, so it
// prices cells anonymously and stamps gridPointID on the handful of points
// that are actually accepted — one string allocation per survivor instead of
// one per cell.
func (cg *compiledGrid) atNoID(i int64) (accel.Config, gridCell) {
	cells := int64(len(cg.cells))
	si, ci := int(i/cells), int(i%cells)
	cell := cg.cells[ci]
	c := cg.shapeConfig(si)
	applyCell(&c, cell)
	return c, cell
}

// gridPointID renders the global grid index as the public point ID.
func gridPointID(i int64) string { return "k" + strconv.FormatInt(i+1, 10) }

// applyCell rescales the simulator parameters to a grid cell. Clock and
// per-op dynamic energies follow the device model's DVFS/node ratios; so do
// leakage and area (area feeds both embodied carbon and, at a fixed node,
// nothing else). DRAM energy and bandwidth stay fixed — LPDDR lives
// off-package and does not scale with the logic node.
func applyCell(c *accel.Config, cell gridCell) {
	c.Params.Clock *= units.Frequency(cell.clockR)
	c.Params.MACEnergy *= units.Energy(cell.energyR)
	c.Params.SRAMEnergyBase *= units.Energy(cell.energyR)
	c.Params.SRAMEnergySlope *= units.Energy(cell.energyR)
	c.Params.BaseLeakage *= units.Power(cell.leakR)
	c.Params.LeakagePerArray *= units.Power(cell.leakR)
	c.Params.LeakagePerMB *= units.Power(cell.leakR)
	c.Params.BaseArea *= units.Area(cell.areaR)
	c.Params.AreaPerArray *= units.Area(cell.areaR)
	c.Params.AreaPerMB *= units.Area(cell.areaR)
}

// Materialize allocates every configuration in the grid, paired with its
// node's embodied-carbon process — the full-allocation path the streaming
// engine is benchmarked and property-tested against.
func (g Grid) Materialize() ([]accel.Config, []carbon.Process, error) {
	cg, err := g.compile()
	if err != nil {
		return nil, nil, err
	}
	n := cg.size()
	configs := make([]accel.Config, n)
	procs := make([]carbon.Process, n)
	for i := int64(0); i < n; i++ {
		c, cell := cg.at(i)
		configs[i], procs[i] = c, cell.process
	}
	return configs, procs, nil
}

// EvaluateGrid is the naive baseline: materialize the whole grid, then
// evaluate every configuration exactly like Evaluate — re-deriving each
// kernel's cost per configuration, holding all points in memory. It exists
// as the reference implementation for the streaming engine's equivalence
// tests and benchmarks.
func EvaluateGrid(task workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity) (*Space, error) {
	if ci < 0 {
		return nil, fmt.Errorf("dse: negative CI_use %v", ci)
	}
	cg, err := g.compile()
	if err != nil {
		return nil, err
	}
	n := cg.size()
	s := &Space{Task: task, CIUse: ci, Points: make([]Point, 0, n)}
	for i := int64(0); i < n; i++ {
		c, cell := cg.at(i)
		pt, err := evalPointAcct(task, c, cell.process, fab, Accounting{Model: cell.model})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}
