package dse

import (
	"fmt"
	"math"
	"strconv"

	"cordoba/internal/accel"
	"cordoba/internal/carbon"
	"cordoba/internal/device"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// Grid is a lazy cartesian design-space generator: the v2 request form of
// POST /v1/dse. Instead of materializing a []accel.Config, callers describe
// knob ranges — MAC-array count, activation-SRAM capacity, DVFS supply
// scaling and technology node — and the engine enumerates the product space
// on demand, one configuration at a time. A 10⁶-point grid therefore costs
// four small slices, not a million Config values.
//
// The circuit knobs go through internal/device: each (node, V_DD scale)
// cell is priced by the alpha-power-law model relative to the nominal 7 nm
// design that calibrated accel.DefaultParams, and the resulting clock,
// dynamic-energy, leakage and area ratios rescale the simulator parameters.
// Embodied carbon uses each node's own carbon.Process, so advancing the
// node trades operational energy against fab footprint exactly as §VII's
// Table VI describes.
//
// Enumeration order is shape-major: all (V_DD, node) cells of one
// (MAC arrays, SRAM) pair are contiguous. The streaming engine leans on
// this — a shape's kernel layer profiles (accel.ShapeProfile) are computed
// once and replayed across every cell in the run.
type Grid struct {
	MACArrays []int     // MAC-array axis; required
	SRAMMB    []float64 // activation-SRAM axis in MB; required
	VDDScales []float64 // V_DD as a fraction of nominal; default {1.0}
	Nodes     []string  // technology nodes by name; default {"7nm"}
	// Models lists embodied-carbon backends by carbon.ModelByName name
	// ("act", "chiplet", "stacked-3d"), turning the accounting model itself
	// into a sweep axis. Empty keeps the default ACT pipeline and leaves
	// Point.Model blank, exactly as before the knob existed.
	Models []string

	// Partition axes (chiplet pathfinding). All default to absent, which
	// keeps every point monolithic and the enumeration bit-identical to the
	// pre-partition grid. The new axes carry `omitempty` JSON tags so
	// checkpoint fingerprints of partition-free grids also stay identical.
	//
	// Integrations sweeps the integration style ("monolithic", "2.5d",
	// "3d"). When Models is empty each style is priced by its natural
	// backend (monolithic → ACT, 2.5d → chiplet, 3d → stacked-3d); an
	// explicit Models axis is crossed with Integrations and every
	// combination must be priceable (carbon.ModelSupportsIntegration).
	Integrations []string `json:",omitempty"`
	// Chiplets sweeps the compute-chiplet count (2.5d) / memory-tier count
	// (3d); values 0 and 1 mean a single compute die or memory tier.
	// Ignored by monolithic cells.
	Chiplets []int `json:",omitempty"`
	// ChipletNodes sweeps the memory chiplet's technology node (mixed-node
	// reuse); "" keeps the logic node. Ignored by monolithic cells.
	ChipletNodes []string `json:",omitempty"`
	// Carrier names the 2.5d carrier technology for every partitioned cell
	// ("rdl-fanout", "silicon-interposer", "emib"); "" keeps the chiplet
	// backend's default.
	Carrier string `json:",omitempty"`
}

// maxGridBits bounds Size() so index arithmetic cannot overflow; real grids
// are far smaller (the server applies its own request-size cap on top).
const maxGridBits = 40

// normalized returns the grid with defaults applied.
func (g Grid) normalized() Grid {
	if len(g.VDDScales) == 0 {
		g.VDDScales = []float64{1.0}
	}
	if len(g.Nodes) == 0 {
		g.Nodes = []string{"7nm"}
	}
	return g
}

// axisLen treats an absent axis as one default slot.
func axisLen(n int) int64 {
	if n == 0 {
		return 1
	}
	return int64(n)
}

// Size returns the number of configurations the grid enumerates, after
// defaults are applied.
func (g Grid) Size() int64 {
	g = g.normalized()
	return int64(len(g.MACArrays)) * int64(len(g.SRAMMB)) *
		int64(len(g.VDDScales)) * int64(len(g.Nodes)) *
		axisLen(len(g.Models)) * axisLen(len(g.Integrations)) *
		axisLen(len(g.Chiplets)) * axisLen(len(g.ChipletNodes))
}

// gridCell is one compiled (V_DD scale, node, model) combination: the
// parameter ratios relative to the nominal 7 nm calibration point, the node's
// embodied-carbon process, and the accounting backend pricing the cell.
type gridCell struct {
	vddScale float64
	node     string
	process  carbon.Process

	// model prices the cell's embodied carbon; nil means the default ACT
	// pipeline (no Models axis requested) and keeps Point.Model blank.
	model     carbon.Model
	modelName string

	clockR  float64 // max-clock ratio vs nominal 7 nm
	energyR float64 // dynamic energy per cycle ratio
	leakR   float64 // leakage power ratio
	areaR   float64 // area per gate ratio

	// partition is the cell's resolved partition spec (zero for monolithic
	// cells — the legacy path, cut for cut). applyCell copies it onto the
	// configuration; MemAreaScale is pre-resolved from the device model's
	// node area ratios.
	partition accel.Partition

	// embClass indexes the cell's embodied-carbon equivalence class: cells
	// sharing (node process, accounting model, area ratio, partition) price
	// any given shape to bit-identical embodied carbon, so the streaming
	// engine computes it once per (shape, class) instead of once per cell —
	// V_DD only rescales clock/energy/leakage, never the fab footprint.
	embClass int
}

// compiledGrid is a validated grid with its cells priced by the device
// model, ready for O(1) random access.
type compiledGrid struct {
	g          Grid
	cells      []gridCell
	embClasses int // distinct embodied-carbon classes across cells
}

// firstDup returns the first value that repeats in xs.
func firstDup[T comparable](xs []T) (T, bool) {
	seen := make(map[T]struct{}, len(xs))
	for _, x := range xs {
		if _, ok := seen[x]; ok {
			return x, true
		}
		seen[x] = struct{}{}
	}
	var zero T
	return zero, false
}

// checkAxisDups rejects repeated values on every axis — a repeated knob
// value silently doubles part of the grid and skews streamed/pruned
// statistics, so it is always a spec mistake.
func (g Grid) checkAxisDups() error {
	if v, ok := firstDup(g.MACArrays); ok {
		return fmt.Errorf("dse: grid mac_arrays axis repeats %d", v)
	}
	if v, ok := firstDup(g.SRAMMB); ok {
		return fmt.Errorf("dse: grid sram_mb axis repeats %v", v)
	}
	if v, ok := firstDup(g.VDDScales); ok {
		return fmt.Errorf("dse: grid vdd_scales axis repeats %v", v)
	}
	if v, ok := firstDup(g.Nodes); ok {
		return fmt.Errorf("dse: grid nodes axis repeats %q", v)
	}
	if v, ok := firstDup(g.Models); ok {
		return fmt.Errorf("dse: grid models axis repeats %q", v)
	}
	if v, ok := firstDup(g.Integrations); ok {
		return fmt.Errorf("dse: grid integrations axis repeats %q", v)
	}
	if v, ok := firstDup(g.Chiplets); ok {
		return fmt.Errorf("dse: grid chiplets axis repeats %d", v)
	}
	if v, ok := firstDup(g.ChipletNodes); ok {
		return fmt.Errorf("dse: grid chiplet_nodes axis repeats %q", v)
	}
	return nil
}

// Validate compiles the grid and reports the first spec error — unknown
// node, model, integration or carrier names, empty or duplicated axis
// values, incompatible model×integration combinations — without evaluating
// anything. The server runs it up front so /v1/dse can answer 400 before a
// stream starts.
func (g Grid) Validate() error {
	_, err := g.compile()
	return err
}

// maxChiplets bounds the chiplets axis; past a handful of compute chiplets
// the D2D model (one cut, one memory die) stops being meaningful.
const maxChiplets = 64

// compile validates the grid and prices every (V_DD, node) cell.
func (g Grid) compile() (*compiledGrid, error) {
	g = g.normalized()
	if len(g.MACArrays) == 0 {
		return nil, fmt.Errorf("dse: grid needs at least one MAC-array option")
	}
	if len(g.SRAMMB) == 0 {
		return nil, fmt.Errorf("dse: grid needs at least one SRAM option")
	}
	if s := g.Size(); s >= 1<<maxGridBits {
		return nil, fmt.Errorf("dse: grid enumerates %d points, beyond the 2^%d indexing limit", s, maxGridBits)
	}
	if err := g.checkAxisDups(); err != nil {
		return nil, err
	}
	for _, a := range g.MACArrays {
		if a <= 0 {
			return nil, fmt.Errorf("dse: grid MAC arrays must be positive, got %d", a)
		}
	}
	for _, mb := range g.SRAMMB {
		if mb <= 0 {
			return nil, fmt.Errorf("dse: grid SRAM must be positive, got %v MB", mb)
		}
	}

	ref := device.NewDesign(device.Node7nm())
	refClock := ref.MaxClock().Hertz()
	refEnergy := ref.DynamicEnergyPerCycle().Joules()
	refLeak := ref.LeakagePower().Watts()
	refArea := ref.Area().CM2()

	// An empty Models axis compiles to one unlabeled cell slot per
	// (V_DD, node) with a nil model — the pre-knob enumeration, cell for
	// cell. Named models are validated here and attached after the node so
	// all backends of one (V_DD, node) pair stay contiguous.
	type modelSlot struct {
		m    carbon.Model
		name string
	}
	slots := []modelSlot{{}}
	if len(g.Models) > 0 {
		slots = slots[:0]
		for _, name := range g.Models {
			m, err := carbon.ModelByName(name)
			if err != nil {
				return nil, fmt.Errorf("dse: grid: %w", err)
			}
			slots = append(slots, modelSlot{m: m, name: m.Name()})
		}
	}

	// Partition axes: validate names up front, normalize "monolithic" to
	// the empty style (the legacy zero-value Partition), and pre-resolve the
	// memory chiplet nodes' area ratios. Absent axes compile to one
	// monolithic slot each, so the cell enumeration — and therefore every
	// grid index and point ID — is unchanged when no partition axis is
	// requested.
	integrations := []string{""}
	partitioned := false
	if len(g.Integrations) > 0 {
		norm := make([]string, len(g.Integrations))
		for i, s := range g.Integrations {
			switch s {
			case "", "monolithic":
				norm[i] = ""
			case accel.Integration25D, accel.Integration3D:
				norm[i] = s
				partitioned = true
			default:
				return nil, fmt.Errorf("dse: grid: unknown integration style %q (want monolithic, 2.5d or 3d)", s)
			}
		}
		if v, ok := firstDup(norm); ok && v == "" {
			return nil, fmt.Errorf("dse: grid integrations axis repeats %q", "monolithic")
		}
		integrations = norm
	}
	if !partitioned && (len(g.Chiplets) > 0 || len(g.ChipletNodes) > 0 || g.Carrier != "") {
		return nil, fmt.Errorf("dse: grid: chiplets/chiplet_nodes/carrier need an integrations axis with a 2.5d or 3d entry")
	}
	chiplets := g.Chiplets
	if len(chiplets) == 0 {
		chiplets = []int{0}
	}
	for _, n := range chiplets {
		if n < 0 || n > maxChiplets {
			return nil, fmt.Errorf("dse: grid chiplet count must be in [0,%d], got %d", maxChiplets, n)
		}
	}
	chipletNodes := g.ChipletNodes
	if len(chipletNodes) == 0 {
		chipletNodes = []string{""}
	}
	memAreaR := make(map[string]float64, len(chipletNodes))
	for _, name := range chipletNodes {
		if name == "" {
			continue // keep the logic node
		}
		node, err := device.NodeByName(name)
		if err != nil {
			return nil, fmt.Errorf("dse: grid chiplet node: %w", err)
		}
		if _, err := carbon.ProcessByName(name); err != nil {
			return nil, fmt.Errorf("dse: grid chiplet node: %w", err)
		}
		// Area is a node property — V_DD scaling moves clock, energy and
		// leakage but not silicon area — so one ratio per node suffices.
		memAreaR[name] = device.NewDesign(node).Area().CM2() / refArea
	}
	if _, err := carbon.CarrierByName(g.Carrier); err != nil {
		return nil, fmt.Errorf("dse: grid: %w", err)
	}
	// Every (model, integration) combination must be priceable. Validated
	// once here so a bad pairing rejects the request instead of erroring
	// mid-stream.
	for _, slot := range slots {
		if slot.m == nil {
			continue // models derived per integration below
		}
		for _, integ := range integrations {
			if !carbon.ModelSupportsIntegration(slot.name, integ) {
				return nil, fmt.Errorf("dse: grid: model %q cannot price %q integration (supported: %v)",
					slot.name, integ, carbon.ModelIntegrations(slot.name))
			}
		}
	}

	perNode := len(slots) * len(integrations) * len(chiplets) * len(chipletNodes)
	cg := &compiledGrid{g: g, cells: make([]gridCell, 0, len(g.VDDScales)*len(g.Nodes)*perNode)}
	for _, vs := range g.VDDScales {
		if vs <= 0 {
			return nil, fmt.Errorf("dse: grid V_DD scale must be positive, got %v", vs)
		}
		for _, name := range g.Nodes {
			node, err := device.NodeByName(name)
			if err != nil {
				return nil, fmt.Errorf("dse: grid: %w", err)
			}
			proc, err := carbon.ProcessByName(name)
			if err != nil {
				return nil, fmt.Errorf("dse: grid: %w", err)
			}
			d := device.DVFSPoint(device.NewDesign(node), vs)
			if err := d.Validate(); err != nil {
				return nil, fmt.Errorf("dse: grid: node %s at %.2f·V_DD: %w", name, vs, err)
			}
			clockR := d.MaxClock().Hertz() / refClock
			energyR := d.DynamicEnergyPerCycle().Joules() / refEnergy
			leakR := d.LeakagePower().Watts() / refLeak
			areaR := d.Area().CM2() / refArea
			for _, slot := range slots {
				for _, integ := range integrations {
					m, mname := slot.m, slot.name
					if slot.m == nil && integ != "" {
						derived, err := carbon.ModelForIntegration(integ)
						if err != nil {
							return nil, fmt.Errorf("dse: grid: %w", err)
						}
						dm, err := carbon.ModelByName(derived)
						if err != nil {
							return nil, fmt.Errorf("dse: grid: %w", err)
						}
						m, mname = dm, derived
					}
					for _, chip := range chiplets {
						for _, cnode := range chipletNodes {
							var part accel.Partition
							if integ != "" {
								part = accel.Partition{
									Chiplets:    chip,
									Integration: integ,
									ChipletNode: cnode,
									Carrier:     g.Carrier,
								}
								if cnode != "" {
									part.MemAreaScale = memAreaR[cnode] / areaR
								}
							}
							cg.cells = append(cg.cells, gridCell{
								vddScale:  vs,
								node:      name,
								process:   proc,
								model:     m,
								modelName: mname,
								clockR:    clockR,
								energyR:   energyR,
								leakR:     leakR,
								areaR:     areaR,
								partition: part,
							})
						}
					}
				}
			}
		}
	}

	// Partition the cells into embodied-carbon equivalence classes. The
	// footprint of a cell depends only on the shape's area (scaled by areaR),
	// the node's process, the accounting model and the partition spec —
	// identical inputs give bit-identical results, so the class
	// representative's value stands for every member. Monolithic cells all
	// share the zero partKey, keeping the class count unchanged when the
	// partition axes are absent.
	type partKey struct {
		integ   string
		chip    int
		cnode   string
		carrier string
		memR    uint64
	}
	type embKey struct {
		node  string
		model string
		areaR uint64
		part  partKey
	}
	classes := make(map[embKey]int)
	for i := range cg.cells {
		c := &cg.cells[i]
		var pk partKey
		if c.partition.Active() {
			pk = partKey{
				integ:   c.partition.Integration,
				chip:    c.partition.Chiplets,
				cnode:   c.partition.ChipletNode,
				carrier: c.partition.Carrier,
				memR:    math.Float64bits(c.partition.MemAreaScale),
			}
		}
		k := embKey{node: c.node, model: c.modelName, areaR: math.Float64bits(c.areaR), part: pk}
		id, ok := classes[k]
		if !ok {
			id = len(classes)
			classes[k] = id
		}
		c.embClass = id
	}
	cg.embClasses = len(classes)
	return cg, nil
}

// shapes returns the number of (MAC arrays, SRAM) pairs.
func (cg *compiledGrid) shapes() int { return len(cg.g.MACArrays) * len(cg.g.SRAMMB) }

// size returns the total configuration count.
func (cg *compiledGrid) size() int64 { return int64(cg.shapes()) * int64(len(cg.cells)) }

// shapeConfig returns the configuration of shape index si priced at the
// nominal 7 nm cell — the representative used to compute shape profiles
// (the ShapeKey fields are cell-independent, so any cell would do).
func (cg *compiledGrid) shapeConfig(si int) accel.Config {
	ai, mi := si/len(cg.g.SRAMMB), si%len(cg.g.SRAMMB)
	return accel.New("", cg.g.MACArrays[ai], units.MB(cg.g.SRAMMB[mi]))
}

// at returns configuration i (shape-major: i = shape·cells + cell) with its
// compiled cell — the node's embodied process plus the accounting model.
// IDs are "k1" … "kN" in enumeration order.
func (cg *compiledGrid) at(i int64) (accel.Config, gridCell) {
	c, cell := cg.atNoID(i)
	c.ID = gridPointID(i)
	return c, cell
}

// atNoID is at without materializing the "k<N>" ID string. The streaming
// engine evaluates every grid cell but keeps only envelope survivors, so it
// prices cells anonymously and stamps gridPointID on the handful of points
// that are actually accepted — one string allocation per survivor instead of
// one per cell.
func (cg *compiledGrid) atNoID(i int64) (accel.Config, gridCell) {
	cells := int64(len(cg.cells))
	si, ci := int(i/cells), int(i%cells)
	cell := cg.cells[ci]
	c := cg.shapeConfig(si)
	applyCell(&c, cell)
	return c, cell
}

// gridPointID renders the global grid index as the public point ID.
func gridPointID(i int64) string { return "k" + strconv.FormatInt(i+1, 10) }

// applyCell rescales the simulator parameters to a grid cell. Clock and
// per-op dynamic energies follow the device model's DVFS/node ratios; so do
// leakage and area (area feeds both embodied carbon and, at a fixed node,
// nothing else). DRAM energy and bandwidth stay fixed — LPDDR lives
// off-package and does not scale with the logic node. The cell's partition
// spec is copied onto the configuration (zero for monolithic cells).
func applyCell(c *accel.Config, cell gridCell) {
	c.Partition = cell.partition
	c.Params.Clock *= units.Frequency(cell.clockR)
	c.Params.MACEnergy *= units.Energy(cell.energyR)
	c.Params.SRAMEnergyBase *= units.Energy(cell.energyR)
	c.Params.SRAMEnergySlope *= units.Energy(cell.energyR)
	c.Params.BaseLeakage *= units.Power(cell.leakR)
	c.Params.LeakagePerArray *= units.Power(cell.leakR)
	c.Params.LeakagePerMB *= units.Power(cell.leakR)
	c.Params.BaseArea *= units.Area(cell.areaR)
	c.Params.AreaPerArray *= units.Area(cell.areaR)
	c.Params.AreaPerMB *= units.Area(cell.areaR)
}

// Materialize allocates every configuration in the grid, paired with its
// node's embodied-carbon process — the full-allocation path the streaming
// engine is benchmarked and property-tested against.
func (g Grid) Materialize() ([]accel.Config, []carbon.Process, error) {
	cg, err := g.compile()
	if err != nil {
		return nil, nil, err
	}
	n := cg.size()
	configs := make([]accel.Config, n)
	procs := make([]carbon.Process, n)
	for i := int64(0); i < n; i++ {
		c, cell := cg.at(i)
		configs[i], procs[i] = c, cell.process
	}
	return configs, procs, nil
}

// EvaluateGrid is the naive baseline: materialize the whole grid, then
// evaluate every configuration exactly like Evaluate — re-deriving each
// kernel's cost per configuration, holding all points in memory. It exists
// as the reference implementation for the streaming engine's equivalence
// tests and benchmarks.
func EvaluateGrid(task workload.Task, g Grid, fab carbon.Fab, ci units.CarbonIntensity) (*Space, error) {
	if ci < 0 {
		return nil, fmt.Errorf("dse: negative CI_use %v", ci)
	}
	cg, err := g.compile()
	if err != nil {
		return nil, err
	}
	n := cg.size()
	s := &Space{Task: task, CIUse: ci, Points: make([]Point, 0, n)}
	for i := int64(0); i < n; i++ {
		c, cell := cg.at(i)
		pt, err := evalPointAcct(task, c, cell.process, fab, Accounting{Model: cell.model})
		if err != nil {
			return nil, err
		}
		s.Points = append(s.Points, pt)
	}
	return s, nil
}
