// Package metrics implements the efficiency metrics that CORDOBA compares:
// task energy, EDP, ED²P for energy-aware design, and total carbon (tC),
// Computational Carbon Intensity (CCI), tCDP and tCD²P for carbon-aware
// design (paper §III).
//
// The central object is Report, the (energy, delay, embodied carbon,
// operational carbon) tuple of one candidate design executing one task. Every
// metric is a pure function of a Report, so design-space exploration code can
// score candidates under several objectives without re-simulating.
package metrics

import (
	"fmt"
	"math"

	"cordoba/internal/units"
)

// Report captures the evaluation of one design on one computing task.
//
// Delay and Energy are per execution of the task. EmbodiedCarbon is the total
// manufacturing footprint attributed to the design over the analysis window;
// OperationalCarbon is the use-phase footprint over the same window. The
// window is whatever the caller chose (a lifetime, an amortized slice, one
// service interval) — the metrics are agnostic.
type Report struct {
	Name string

	Delay  units.Time   // execution time of the task (D)
	Energy units.Energy // energy per task execution (E_task)

	EmbodiedCarbon    units.Carbon // C_embodied over the analysis window
	OperationalCarbon units.Carbon // C_operational over the analysis window

	// Tasks is the number of task executions in the analysis window
	// (N_task). It is required for CCI; zero means "unknown".
	Tasks float64
}

// TotalCarbon returns tC = C_operational + C_embodied (paper §IV-A).
func (r Report) TotalCarbon() units.Carbon {
	return r.EmbodiedCarbon + r.OperationalCarbon
}

// EDP returns the energy-delay product in joule-seconds (equivalently,
// joules per hertz), the paper's chosen quantification of energy efficiency.
func (r Report) EDP() float64 {
	return r.Energy.Joules() * r.Delay.Seconds()
}

// ED2P returns the energy-delay² product (J·s²). §III-A explains why this is
// only meaningful under antiquated square-law MOSFET assumptions; it is
// provided so that experiments can demonstrate exactly that.
func (r Report) ED2P() float64 {
	d := r.Delay.Seconds()
	return r.Energy.Joules() * d * d
}

// TCDP returns the total-carbon-delay product in gCO2e·s (equivalently,
// gCO2e per hertz) — the paper's carbon-efficiency metric.
func (r Report) TCDP() float64 {
	return r.TotalCarbon().Grams() * r.Delay.Seconds()
}

// TCD2P returns the total-carbon-delay² product (gCO2e·s²).
func (r Report) TCD2P() float64 {
	d := r.Delay.Seconds()
	return r.TotalCarbon().Grams() * d * d
}

// CarbonEfficiency returns tCDP⁻¹, the y-axis of Fig. 8 (higher is better).
// It returns 0 when tCDP is zero or not finite.
func (r Report) CarbonEfficiency() float64 {
	t := r.TCDP()
	if t == 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0
	}
	return 1 / t
}

// CCI returns the Computational Carbon Intensity: total carbon divided by the
// number of task executions (gCO2e per task, ref. Junkyard Computing [50]).
// It returns an error when the report does not carry a task count.
func (r Report) CCI() (units.Carbon, error) {
	if r.Tasks <= 0 {
		return 0, fmt.Errorf("metrics: CCI of %q requires a positive task count, got %v", r.Name, r.Tasks)
	}
	return r.TotalCarbon() / units.Carbon(r.Tasks), nil
}

// Objective identifies an optimization target. §III-C stresses that the
// target must be derived from the application scenario; the DSE code
// therefore treats the objective as an input rather than hard-coding tCDP.
type Objective int

// Supported objectives.
const (
	MinEnergy Objective = iota // minimize E_task
	MinEDP                     // minimize energy-delay product
	MinED2P                    // minimize energy-delay² product
	MinDelay                   // minimize execution time
	MinTC                      // minimize total carbon
	MinCCI                     // minimize carbon per task
	MinTCDP                    // minimize total-carbon-delay product
	MinTCD2P                   // minimize total-carbon-delay² product
)

var objectiveNames = map[Objective]string{
	MinEnergy: "min-energy",
	MinEDP:    "min-EDP",
	MinED2P:   "min-ED2P",
	MinDelay:  "min-delay",
	MinTC:     "min-tC",
	MinCCI:    "min-CCI",
	MinTCDP:   "min-tCDP",
	MinTCD2P:  "min-tCD2P",
}

// String returns the objective's name.
func (o Objective) String() string {
	if s, ok := objectiveNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Score returns the scalar value this objective minimizes for report r.
// Lower is always better. CCI falls back to total carbon when the report has
// no task count, matching the paper's tC = N_task·CCI proportionality.
func (o Objective) Score(r Report) float64 {
	switch o {
	case MinEnergy:
		return r.Energy.Joules()
	case MinEDP:
		return r.EDP()
	case MinED2P:
		return r.ED2P()
	case MinDelay:
		return r.Delay.Seconds()
	case MinTC:
		return r.TotalCarbon().Grams()
	case MinCCI:
		if cci, err := r.CCI(); err == nil {
			return cci.Grams()
		}
		return r.TotalCarbon().Grams()
	case MinTCDP:
		return r.TCDP()
	case MinTCD2P:
		return r.TCD2P()
	default:
		return math.NaN()
	}
}

// Best returns the index of the report minimizing objective o, or -1 when
// reports is empty. Ties go to the earliest report, which makes selection
// deterministic for table reproduction.
func Best(o Objective, reports []Report) int {
	best, bestScore := -1, math.Inf(1)
	for i, r := range reports {
		if s := o.Score(r); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Normalize returns score(r)/score(baseline) under objective o — the "×"
// improvement factors quoted throughout §VI are baselines divided by
// optimized values, i.e. Normalize(baseline, optimized).
func Normalize(o Objective, baseline, optimized Report) float64 {
	return o.Score(baseline) / o.Score(optimized)
}
