package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"cordoba/internal/units"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if math.Abs(got) > tol {
			t.Errorf("%s: got %v want 0", name, got)
		}
		return
	}
	if math.Abs(got-want) > tol*math.Abs(want) {
		t.Errorf("%s: got %v want %v (tol %v)", name, got, want, tol)
	}
}

func sampleReport() Report {
	return Report{
		Name:              "sample",
		Delay:             units.Time(2),
		Energy:            units.Energy(3),
		EmbodiedCarbon:    units.Carbon(10),
		OperationalCarbon: units.Carbon(5),
		Tasks:             100,
	}
}

func TestReportDerivedMetrics(t *testing.T) {
	r := sampleReport()
	near(t, "tC", r.TotalCarbon().Grams(), 15, 1e-12)
	near(t, "EDP", r.EDP(), 6, 1e-12)
	near(t, "ED2P", r.ED2P(), 12, 1e-12)
	near(t, "tCDP", r.TCDP(), 30, 1e-12)
	near(t, "tCD2P", r.TCD2P(), 60, 1e-12)
	near(t, "eff", r.CarbonEfficiency(), 1.0/30, 1e-12)
	cci, err := r.CCI()
	if err != nil {
		t.Fatalf("CCI: %v", err)
	}
	near(t, "CCI", cci.Grams(), 0.15, 1e-12)
}

func TestCCIWithoutTaskCount(t *testing.T) {
	r := sampleReport()
	r.Tasks = 0
	if _, err := r.CCI(); err == nil {
		t.Fatal("expected error for CCI with zero task count")
	}
	// Objective score must fall back to tC rather than NaN.
	if s := MinCCI.Score(r); s != 15 {
		t.Fatalf("MinCCI fallback score = %v, want 15", s)
	}
}

func TestCarbonEfficiencyDegenerate(t *testing.T) {
	var r Report
	if e := r.CarbonEfficiency(); e != 0 {
		t.Fatalf("zero report efficiency = %v, want 0", e)
	}
	r.Delay = units.Time(math.Inf(1))
	r.EmbodiedCarbon = 1
	if e := r.CarbonEfficiency(); e != 0 {
		t.Fatalf("inf tCDP efficiency = %v, want 0", e)
	}
}

func TestObjectiveStrings(t *testing.T) {
	for o := MinEnergy; o <= MinTCD2P; o++ {
		if s := o.String(); s == "" || s[0] == 'O' {
			t.Errorf("objective %d has no name: %q", int(o), s)
		}
	}
	if s := Objective(99).String(); s != "Objective(99)" {
		t.Errorf("unknown objective = %q", s)
	}
	if !math.IsNaN(Objective(99).Score(sampleReport())) {
		t.Error("unknown objective should score NaN")
	}
}

func TestBestSelectsMinimum(t *testing.T) {
	rs := []Report{
		{Name: "slow", Delay: 10, Energy: 1, EmbodiedCarbon: 1},
		{Name: "fast", Delay: 1, Energy: 2, EmbodiedCarbon: 5},
		{Name: "mid", Delay: 3, Energy: 1.5, EmbodiedCarbon: 2},
	}
	if i := Best(MinDelay, rs); rs[i].Name != "fast" {
		t.Errorf("MinDelay picked %s", rs[i].Name)
	}
	if i := Best(MinEnergy, rs); rs[i].Name != "slow" {
		t.Errorf("MinEnergy picked %s", rs[i].Name)
	}
	if i := Best(MinTCDP, rs); rs[i].Name != "fast" {
		// tCDP: slow=10, fast=5, mid=6.
		t.Errorf("MinTCDP picked %s", rs[i].Name)
	}
	if Best(MinEDP, nil) != -1 {
		t.Error("Best of empty slice should be -1")
	}
}

func TestNormalize(t *testing.T) {
	base := Report{Delay: 2, Energy: 2}
	opt := Report{Delay: 1, Energy: 1}
	near(t, "normalize", Normalize(MinEDP, base, opt), 4, 1e-12)
}

// ---- Table I ----

func TestTableIReproduction(t *testing.T) {
	s := EnergyScenario{CyclesPerTask: CyclesPerTask, EnergyBudget: 9.5}
	rows := s.Evaluate(PaperICs())
	if len(rows) != 6 {
		t.Fatalf("got %d rows", len(rows))
	}
	wantThroughputOne := []float64{0.2, 2, 4, 8, 16, 32}
	wantICs1000 := []float64{5000, 500, 250, 125, 62.5, 31.25}
	wantPower := []float64{0.038, 0.4, 1, 3.2, 16, 160}
	wantTotalPower := []float64{190, 200, 250, 400, 1000, 5000}
	wantEPT := []float64{0.19, 0.2, 0.25, 0.4, 1, 5}
	wantICsBudget := []float64{50, 47.5, 38, 23.75, 9.5, 1.9}
	wantThroughput := []float64{10, 95, 152, 190, 152, 60.8}
	wantEDP := []float64{0.950, 0.100, 0.063, 0.050, 0.063, 0.156}
	for i, r := range rows {
		near(t, "row4 "+r.IC.Name, r.ThroughputOne, wantThroughputOne[i], 1e-9)
		near(t, "row5 "+r.IC.Name, r.ICsFor1000, wantICs1000[i], 1e-9)
		near(t, "row6 "+r.IC.Name, r.Power.Watts(), wantPower[i], 1e-9)
		near(t, "row7 "+r.IC.Name, r.TotalPower.Watts(), wantTotalPower[i], 1e-9)
		near(t, "row8 "+r.IC.Name, r.EnergyPerTask.Joules(), wantEPT[i], 1e-9)
		near(t, "row9 "+r.IC.Name, r.ICsForBudget, wantICsBudget[i], 1e-9)
		near(t, "row10 "+r.IC.Name, r.Throughput, wantThroughput[i], 1e-9)
		near(t, "row11 "+r.IC.Name, r.EDP, wantEDP[i], 5e-2)
	}
	// IC "A" minimizes power of the 1000 inf/s system; IC "D" has the best
	// EDP and the highest fixed-budget throughput.
	minPower, maxTP, minEDP := 0, 0, 0
	for i, r := range rows {
		if r.TotalPower < rows[minPower].TotalPower {
			minPower = i
		}
		if r.Throughput > rows[maxTP].Throughput {
			maxTP = i
		}
		if r.EDP < rows[minEDP].EDP {
			minEDP = i
		}
	}
	if rows[minPower].IC.Name != "A" {
		t.Errorf("min power = %s, want A", rows[minPower].IC.Name)
	}
	if rows[maxTP].IC.Name != "D" {
		t.Errorf("max throughput = %s, want D", rows[maxTP].IC.Name)
	}
	if rows[minEDP].IC.Name != "D" {
		t.Errorf("min EDP = %s, want D", rows[minEDP].IC.Name)
	}
}

// ---- Table II ----

func TestTableIIReproduction(t *testing.T) {
	s := PaperCarbonScenario()
	rows := s.Evaluate(PaperICs())

	near(t, "carbon budget [C4]", s.CarbonBudget().Grams(), 1.003e-3, 1e-3)
	near(t, "tasks/lifetime [10]", s.TasksPerLifetime(), 1.05e8, 1e-9)

	wantTime := []float64{5, 0.5, 0.25, 0.125, 0.0625, 0.03125}
	wantCCIOp := []float64{2.01e-5, 2.11e-5, 2.64e-5, 4.22e-5, 1.056e-4, 5.28e-4}
	wantCCI := []float64{4.86e-5, 4.96e-5, 5.49e-5, 7.08e-5, 13.4e-5, 55.6e-5}
	wantTC := []float64{5108, 5219, 5774, 7438, 14096, 58480}
	wantTCDP := []float64{25541.2, 2609.6, 1443.5, 929.8, 881.0, 1827.5}
	wantThroughput := []float64{4.1, 40.4, 73.0, 113.4, 119.7, 57.7}
	for i, r := range rows {
		near(t, "time "+r.IC.Name, r.TimePerTask.Seconds(), wantTime[i], 1e-9)
		near(t, "CCIop "+r.IC.Name, r.CCIOperational.Grams(), wantCCIOp[i], 5e-3)
		near(t, "CCIemb "+r.IC.Name, r.CCIEmbodied.Grams(), 2.857e-5, 1e-3)
		near(t, "CCI "+r.IC.Name, r.CCI.Grams(), wantCCI[i], 5e-3)
		near(t, "tC "+r.IC.Name, r.TotalCarbon.Grams(), wantTC[i], 5e-3)
		near(t, "tCDP "+r.IC.Name, r.TCDP, wantTCDP[i], 5e-3)
		near(t, "throughput "+r.IC.Name, r.Throughput, wantThroughput[i], 2e-2)
	}

	// Headline claims: "E" is tCDP-optimal with the highest throughput;
	// "A" has the lowest tC (and CCI) but is the slowest.
	if i := BestCarbonRow(rows); rows[i].IC.Name != "E" {
		t.Errorf("tCDP-optimal = %s, want E", rows[i].IC.Name)
	}
	maxTP, minTC := 0, 0
	for i, r := range rows {
		if r.Throughput > rows[maxTP].Throughput {
			maxTP = i
		}
		if r.TotalCarbon < rows[minTC].TotalCarbon {
			minTC = i
		}
	}
	if rows[maxTP].IC.Name != "E" {
		t.Errorf("max throughput = %s, want E", rows[maxTP].IC.Name)
	}
	if rows[minTC].IC.Name != "A" {
		t.Errorf("min tC = %s, want A", rows[minTC].IC.Name)
	}
}

// §III-B: throughput·tCDP is the same constant for every IC, i.e. throughput
// is exactly proportional to tCDP⁻¹.
func TestThroughputTCDPConstant(t *testing.T) {
	s := PaperCarbonScenario()
	rows := s.Evaluate(PaperICs())
	ref := rows[0].ThroughputTCDPProduct()
	for _, r := range rows[1:] {
		near(t, "product "+r.IC.Name, r.ThroughputTCDPProduct(), ref, 1e-9)
	}
}

// The proportionality is a mathematical identity, not a coincidence of the
// paper's numbers: check it for random scenarios and random ICs.
func TestThroughputTCDPConstantProperty(t *testing.T) {
	f := func(fGHz1, fGHz2, epc1, epc2, emb, budget uint32) bool {
		s := CarbonScenario{
			CyclesPerTask:   1e6,
			CIUse:           380,
			EmbodiedPerIC:   units.Carbon(1 + float64(emb%100000)),
			Lifetime:        units.Time(1e6),
			ServiceInterval: units.Time(0.1),
			EnergyBudget:    units.Energy(0.1 + float64(budget%1000)),
		}
		ics := []IC{
			{"x", units.GHz(0.01 + float64(fGHz1%400)/100), units.Energy(1e-9 * (1 + float64(epc1%100)))},
			{"y", units.GHz(0.01 + float64(fGHz2%400)/100), units.Energy(1e-9 * (1 + float64(epc2%100)))},
		}
		rows := s.Evaluate(ics)
		a, b := rows[0].ThroughputTCDPProduct(), rows[1].ThroughputTCDPProduct()
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCarbonRowReport(t *testing.T) {
	s := PaperCarbonScenario()
	rows := s.Evaluate(PaperICs())
	r := rows[4].Report(s) // IC "E"
	near(t, "report tC", r.TotalCarbon().Grams(), rows[4].TotalCarbon.Grams(), 1e-12)
	near(t, "report tCDP", r.TCDP(), rows[4].TCDP, 1e-12)
	cci, err := r.CCI()
	if err != nil {
		t.Fatalf("CCI: %v", err)
	}
	near(t, "report CCI", cci.Grams(), rows[4].CCI.Grams(), 1e-12)
}

// §III-A worked example: "IC A requires ~5% less energy than IC B, but is
// 10× slower".
func TestICAVersusB(t *testing.T) {
	ics := PaperICs()
	a, b := ics[0], ics[1]
	ratioE := a.EnergyPerTask(CyclesPerTask).Joules() / b.EnergyPerTask(CyclesPerTask).Joules()
	near(t, "energy ratio", ratioE, 0.95, 1e-9)
	ratioD := a.TimePerTask(CyclesPerTask).Seconds() / b.TimePerTask(CyclesPerTask).Seconds()
	near(t, "delay ratio", ratioD, 10, 1e-9)
}

func TestICPowerIdentity(t *testing.T) {
	// Power must equal energy-per-task divided by time-per-task.
	for _, ic := range PaperICs() {
		p := ic.EnergyPerTask(CyclesPerTask).DividedBy(ic.TimePerTask(CyclesPerTask))
		near(t, "power "+ic.Name, ic.Power().Watts(), p.Watts(), 1e-9)
	}
}
