package metrics

import (
	"math"

	"cordoba/internal/units"
)

// IC is one of the candidate integrated circuits of paper Tables I–II and
// Figs. 2–3: a design characterized entirely by its clock frequency and its
// average energy per clock cycle.
type IC struct {
	Name           string
	Clock          units.Frequency
	EnergyPerCycle units.Energy
}

// CyclesPerTask is the fixed work per inference assumed in §III: 100 million
// clock cycles.
const CyclesPerTask = 100e6

// PaperICs returns the six candidate ICs "A" through "F" from Table I.
func PaperICs() []IC {
	return []IC{
		{"A", units.GHz(0.02), units.Energy(1.9e-9)},
		{"B", units.GHz(0.20), units.Energy(2.0e-9)},
		{"C", units.GHz(0.40), units.Energy(2.5e-9)},
		{"D", units.GHz(0.80), units.Energy(4.0e-9)},
		{"E", units.GHz(1.6), units.Energy(10e-9)},
		{"F", units.GHz(3.2), units.Energy(50e-9)},
	}
}

// TimePerTask returns the execution time of one task of `cycles` cycles
// (Table II row [4]).
func (ic IC) TimePerTask(cycles float64) units.Time {
	return units.Time(cycles / ic.Clock.Hertz())
}

// EnergyPerTask returns the energy of one task of `cycles` cycles
// (Table I row [8]).
func (ic IC) EnergyPerTask(cycles float64) units.Energy {
	return ic.EnergyPerCycle * units.Energy(cycles)
}

// Power returns the IC's power draw while running (Table I row [6]).
func (ic IC) Power() units.Power {
	return units.Power(ic.EnergyPerCycle.Joules() * ic.Clock.Hertz())
}

// Throughput returns tasks per second for one IC instance (Table I row [4]).
func (ic IC) Throughput(cycles float64) float64 {
	return ic.Clock.Hertz() / cycles
}

// EDP returns energy-delay product for one task (Table I row [11]).
func (ic IC) EDP(cycles float64) float64 {
	return ic.EnergyPerTask(cycles).Joules() * ic.TimePerTask(cycles).Seconds()
}

// EnergyScenario is the §III-A design problem: given a fixed energy budget
// per service interval, choose the IC maximizing task throughput by running
// copies in parallel.
type EnergyScenario struct {
	CyclesPerTask float64
	EnergyBudget  units.Energy // budget per service interval (9.5 J in Table I)
}

// EnergyRow is one column of Table I for a candidate IC.
type EnergyRow struct {
	IC            IC
	ThroughputOne float64      // row [4]: inf/s of one instance
	ICsFor1000    float64      // row [5]: instances to sustain 1000 inf/s
	Power         units.Power  // row [6]
	TotalPower    units.Power  // row [7]: power of the 1000 inf/s system
	EnergyPerTask units.Energy // row [8]
	ICsForBudget  float64      // row [9]: instances affordable under the energy budget
	Throughput    float64      // row [10]: total inf/s of those instances
	EDP           float64      // row [11]
}

// Evaluate computes the full Table I analysis for each candidate.
func (s EnergyScenario) Evaluate(ics []IC) []EnergyRow {
	rows := make([]EnergyRow, len(ics))
	for i, ic := range ics {
		tp := ic.Throughput(s.CyclesPerTask)
		ept := ic.EnergyPerTask(s.CyclesPerTask)
		n := s.EnergyBudget.Joules() / ept.Joules()
		rows[i] = EnergyRow{
			IC:            ic,
			ThroughputOne: tp,
			ICsFor1000:    1000 / tp,
			Power:         ic.Power(),
			TotalPower:    units.Power(1000 / tp * ic.Power().Watts()),
			EnergyPerTask: ept,
			ICsForBudget:  n,
			Throughput:    n * tp,
			EDP:           ic.EDP(s.CyclesPerTask),
		}
	}
	return rows
}

// CarbonScenario is the §III-B design problem: a fixed *carbon* budget is
// allocated per service interval; each IC instance also carries embodied
// carbon amortized over the hardware lifetime. Choose the IC maximizing task
// throughput (Table II).
type CarbonScenario struct {
	CyclesPerTask   float64
	CIUse           units.CarbonIntensity // row [5]: 380 g/kWh
	EmbodiedPerIC   units.Carbon          // row [6]: 3000 g
	Lifetime        units.Time            // row [7]: 1.05e7 s
	ServiceInterval units.Time            // row [C1]: 0.1 s
	EnergyBudget    units.Energy          // row [C2]: 9.5 J per service interval
}

// PaperCarbonScenario returns the exact scenario of Table II.
func PaperCarbonScenario() CarbonScenario {
	return CarbonScenario{
		CyclesPerTask:   CyclesPerTask,
		CIUse:           380,
		EmbodiedPerIC:   3000,
		Lifetime:        units.Time(1.05e7),
		ServiceInterval: units.Time(0.1),
		EnergyBudget:    units.Energy(9.5),
	}
}

// CarbonBudget returns the per-service-interval carbon budget, row [C4]:
// the energy budget converted through CI_use (1.003e-3 g for the paper's
// parameters).
func (s CarbonScenario) CarbonBudget() units.Carbon {
	return s.CIUse.Of(s.EnergyBudget)
}

// TasksPerLifetime returns row [10]: one task per service interval for the
// whole lifetime.
func (s CarbonScenario) TasksPerLifetime() float64 {
	return s.Lifetime.Seconds() / s.ServiceInterval.Seconds()
}

// CarbonRow is one column of Table II for a candidate IC.
type CarbonRow struct {
	IC             IC
	TimePerTask    units.Time   // row [4]
	EnergyPerTask  units.Energy // row [11]
	CCIOperational units.Carbon // row [13]: g CO2e per task, use phase
	CCIEmbodied    units.Carbon // row [14]: g CO2e per task, embodied
	CCI            units.Carbon // row [15]
	ICsForBudget   float64      // row [16] before rounding
	Throughput     float64      // row [17]: tasks per second in a service interval
	TotalCarbon    units.Carbon // row [18]: lifetime tC of one instance
	TCDP           float64      // row [19]: tC·D, gCO2e·s
}

// Report converts the row into a generic metrics.Report over the lifetime
// analysis window of a single IC instance.
func (r CarbonRow) Report(s CarbonScenario) Report {
	return Report{
		Name:              r.IC.Name,
		Delay:             r.TimePerTask,
		Energy:            r.EnergyPerTask,
		EmbodiedCarbon:    s.EmbodiedPerIC,
		OperationalCarbon: r.TotalCarbon - s.EmbodiedPerIC,
		Tasks:             s.TasksPerLifetime(),
	}
}

// Evaluate computes the full Table II analysis for each candidate.
func (s CarbonScenario) Evaluate(ics []IC) []CarbonRow {
	nTasks := s.TasksPerLifetime()
	budget := s.CarbonBudget()
	rows := make([]CarbonRow, len(ics))
	for i, ic := range ics {
		ept := ic.EnergyPerTask(s.CyclesPerTask)
		cciOp := s.CIUse.Of(ept)
		cciEmb := s.EmbodiedPerIC / units.Carbon(nTasks)
		cci := cciOp + cciEmb
		n := budget.Grams() / cci.Grams()
		tpt := ic.TimePerTask(s.CyclesPerTask)
		tc := units.Carbon(nTasks)*cciOp + s.EmbodiedPerIC
		rows[i] = CarbonRow{
			IC:             ic,
			TimePerTask:    tpt,
			EnergyPerTask:  ept,
			CCIOperational: cciOp,
			CCIEmbodied:    cciEmb,
			CCI:            cci,
			ICsForBudget:   n,
			Throughput:     n / tpt.Seconds(),
			TotalCarbon:    tc,
			TCDP:           tc.Grams() * tpt.Seconds(),
		}
	}
	return rows
}

// ThroughputTCDPProduct returns throughput·tCDP for a row. §III-B observes
// this product is the same constant for every IC — relative throughput is
// precisely quantified by relative tCDP (throughput ∝ tCDP⁻¹).
func (r CarbonRow) ThroughputTCDPProduct() float64 {
	return r.Throughput * r.TCDP
}

// BestCarbonRow returns the index of the row with the lowest tCDP, or -1.
func BestCarbonRow(rows []CarbonRow) int {
	best, bestV := -1, math.Inf(1)
	for i, r := range rows {
		if r.TCDP < bestV {
			best, bestV = i, r.TCDP
		}
	}
	return best
}
