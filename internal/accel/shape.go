package accel

import (
	"cordoba/internal/nn"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// ShapeKey identifies the inputs of layerShape: the fields of a Config that
// determine a kernel's layer shapes. Two configurations with equal ShapeKeys
// produce identical layerShape sequences for every kernel — only clocks,
// per-op energies, bandwidth and 3D wiring may differ between them — so a
// ShapeProfile computed under one can be replayed under the other. The DSE
// memo cache (internal/dse.MemoCache) keys on (kernel, ShapeKey), which is
// what lets a knob grid sweeping DVFS points and technology nodes re-derive
// each kernel's layer shapes once per (MAC arrays, SRAM) pair instead of
// once per grid cell.
type ShapeKey struct {
	MACArrays int
	SRAM      units.Bytes

	ConvUtil, DWConvUtil, FCUtil float64
	SaturationScale              float64
	SaturationCap                float64
	TilingPenalty                float64
}

// ShapeKey returns the configuration's shape signature.
func (c Config) ShapeKey() ShapeKey {
	return ShapeKey{
		MACArrays:       c.MACArrays,
		SRAM:            c.SRAM,
		ConvUtil:        c.Params.ConvUtil,
		DWConvUtil:      c.Params.DWConvUtil,
		FCUtil:          c.Params.FCUtil,
		SaturationScale: c.Params.SaturationScale,
		SaturationCap:   c.Params.SaturationCap,
		TilingPenalty:   c.Params.TilingPenalty,
	}
}

// ShapeProfile is a kernel's pre-computed layer shapes for one ShapeKey: the
// knob-invariant half of the simulation, cached once and re-priced under any
// configuration that shares the key. Cost replays through the same
// layerCostOf helper as the direct path, so for a Config c with
// c.ShapeKey() == sp.Key, sp.Cost(c) is bit-identical to c.KernelCost(sp.Kernel).
type ShapeProfile struct {
	Kernel nn.KernelID
	Key    ShapeKey

	layers []layerShape
}

// ShapeProfile pre-computes a kernel's layer shapes on this configuration.
func (c Config) ShapeProfile(id nn.KernelID) (*ShapeProfile, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	net, err := nn.Kernel(id)
	if err != nil {
		return nil, err
	}
	sp := &ShapeProfile{Kernel: id, Key: c.ShapeKey(), layers: make([]layerShape, len(net.Layers))}
	for i, l := range net.Layers {
		sp.layers[i] = c.layerShape(l)
	}
	return sp, nil
}

// Cost prices the profiled kernel under a configuration's clock, energy and
// bandwidth parameters. The caller must ensure c.ShapeKey() equals sp.Key.
//
// The loop below is layerCostOf with the layer-invariant parameters hoisted
// out — every expression keeps layerCostOf's operand grouping, so hoisting
// changes nothing bit-wise (the per-layer accumulation order also matches
// Profile: time, then (MAC + SRAM) + DRAM energy). TestShapeProfileCostBitwise
// holds the two paths equal.
func (sp *ShapeProfile) Cost(c Config) workload.KernelCost {
	var (
		clk    = c.Params.Clock.Hertz()
		macE   = c.Params.MACEnergy
		sramPB = c.sramEnergyPerByte()
		dramPB = c.Params.DRAMEnergyPerByte
		bw     = c.dramBandwidth().BytesPerSecond()
		oh     = c.Params.LayerOverhead
	)
	d2, cut := c.d2d()
	var kc workload.KernelCost
	for _, ls := range sp.layers {
		var ct units.Time
		var macEnergy units.Energy
		if ls.macs > 0 {
			eff := ls.effBase * clk
			ct = units.Time(ls.macs / eff)
			macEnergy = macE * units.Energy(ls.macs)
		}
		sramEnergy := sramPB * units.Energy(ls.sram)
		dramEnergy := dramPB * units.Energy(ls.dram)
		mt := units.Time(float64(ls.dram) / bw)
		var d2dEnergy units.Energy
		var dt units.Time
		if cut {
			d2dEnergy = d2.energyPB * units.Energy(ls.sram)
			dt = units.Time(float64(ls.sram) / d2.bw)
		}
		t := ct
		if mt > t {
			t = mt
		}
		if dt > t {
			t = dt
		}
		t += oh
		if cut {
			t += d2.hop
		}
		kc.Delay += t
		// Grouped exactly as Profile sums LayerCost.Energy():
		// ((MAC + SRAM) + DRAM) + D2D.
		e := macEnergy + sramEnergy + dramEnergy
		if cut {
			e += d2dEnergy
		}
		kc.DynamicEnergy += e
	}
	return kc
}
