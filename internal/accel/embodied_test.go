package accel

import (
	"testing"

	"cordoba/internal/carbon"
	"cordoba/internal/units"
)

// oldEmbodied is the pre-refactor accel.Embodied, kept verbatim (same float
// operation order) as the differential oracle: the ACT backend must reproduce
// it bit-for-bit, not merely within tolerance.
func oldEmbodied(c Config, p carbon.Process, fab carbon.Fab) (units.Carbon, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	model := carbon.MurphyYield{}
	dieCarbon := func(a units.Area) (units.Carbon, error) {
		y := model.Yield(a, fab.DefectDensity)
		return p.EmbodiedDie(fab, a, y)
	}

	total, err := dieCarbon(c.LogicArea())
	if err != nil {
		return 0, err
	}
	dice := 1
	if c.Is3D {
		mem, err := dieCarbon(c.MemDieArea())
		if err != nil {
			return 0, err
		}
		total += mem * units.Carbon(c.MemDies)
		dice += c.MemDies
	}
	pkging := carbon.Packaging{PerDie: c.Params.PackagingPerDie, PerBond: c.Params.PackagingPerBond}
	pkg, err := pkging.Assembly(dice)
	if err != nil {
		return 0, err
	}
	return total + pkg, nil
}

// The refactor's headline invariant: routing the full 121-config grid and the
// 3D designs through the carbon.Model interface must not move any embodied
// value by even one ULP, across every process node and fab.
func TestEmbodiedBitIdenticalToPreRefactor(t *testing.T) {
	configs := append(Grid(), Stacked3D()...)
	for _, p := range carbon.Processes() {
		for _, fab := range carbon.Fabs() {
			for _, c := range configs {
				want, err := oldEmbodied(c, p, fab)
				if err != nil {
					t.Fatalf("%s/%s/%s oracle: %v", c.ID, p.Node, fab.Name, err)
				}
				got, err := c.Embodied(p, fab)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", c.ID, p.Node, fab.Name, err)
				}
				if got != want {
					t.Errorf("%s/%s/%s: Embodied = %v, pre-refactor = %v (diff %g)",
						c.ID, p.Node, fab.Name, got, want, got.Grams()-want.Grams())
				}
				// Explicit ACT/Murphy selection is the same code path as
				// the nil defaults.
				explicit, err := c.EmbodiedWith(carbon.ACTModel{}, carbon.MurphyYield{}, p, fab)
				if err != nil {
					t.Fatalf("%s/%s/%s explicit: %v", c.ID, p.Node, fab.Name, err)
				}
				if explicit != want {
					t.Errorf("%s/%s/%s: explicit ACT = %v, pre-refactor = %v", c.ID, p.Node, fab.Name, explicit, want)
				}
			}
		}
	}
}

func TestEmbodiedBreakdownComponents(t *testing.T) {
	proc := carbon.Process7nm()
	cfg := Grid()[60]
	bd, err := cfg.EmbodiedBreakdown(nil, nil, proc, carbon.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Model != "act" {
		t.Errorf("default backend = %q, want act", bd.Model)
	}
	if bd.Total != bd.Silicon+bd.Packaging+bd.Bonding {
		t.Errorf("breakdown does not sum: %+v", bd)
	}
	if len(bd.Dies) != 1 {
		t.Errorf("2D config should have one die entry, got %d", len(bd.Dies))
	}

	stacked := Stacked3D()[3]
	bd3, err := stacked.EmbodiedBreakdown(nil, nil, proc, carbon.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd3.Dies) != 2 {
		t.Errorf("3D config should have logic+mem die entries, got %d", len(bd3.Dies))
	}
	if bd3.Dies[1].Count != stacked.MemDies {
		t.Errorf("mem die count = %d, want %d", bd3.Dies[1].Count, stacked.MemDies)
	}
}

// Alternative backends must price the same spec differently — that is the
// point of the interface — while staying finite and positive.
func TestEmbodiedBackendsDiverge(t *testing.T) {
	proc := carbon.Process7nm()
	cfg := Grid()[len(Grid())-1] // largest die: backend differences bite hardest
	act, err := cfg.EmbodiedWith(carbon.ACTModel{}, nil, proc, carbon.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []carbon.Model{carbon.ChipletModel{}, carbon.Stacked3DModel{}} {
		got, err := cfg.EmbodiedWith(m, nil, proc, carbon.FabCoal)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got <= 0 {
			t.Errorf("%s: non-positive embodied %v", m.Name(), got)
		}
		if got == act {
			t.Errorf("%s: identical to ACT (%v) — backend not actually plugged in", m.Name(), got)
		}
	}
}

// Yield models are the second pluggable axis: a pessimistic yield model must
// raise the embodied footprint of a large die relative to Murphy.
func TestEmbodiedYieldModelsOrdered(t *testing.T) {
	proc := carbon.Process7nm()
	cfg := Grid()[len(Grid())-1]
	murphy, err := cfg.EmbodiedWith(nil, carbon.MurphyYield{}, proc, carbon.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	be, err := cfg.EmbodiedWith(nil, carbon.BoseEinsteinYield{CriticalLayers: 10}, proc, carbon.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	if be <= murphy {
		t.Errorf("Bose-Einstein (%v) should exceed Murphy (%v) on a large die", be, murphy)
	}
}
