package accel

import (
	"fmt"

	"cordoba/internal/units"
)

// The Fig. 8 design-space grid: 11 MAC-array options × 11 SRAM options = 121
// configurations, identified a1…a121 with index = 11·(macIdx−1) + sramIdx.
// This indexing reproduces the configurations the paper names:
//
//	a1  = 1 array,  1 MB      a12 = 2 arrays, 1 MB
//	a23 = 4 arrays, 1 MB      a37 = 8 arrays, 8 MB
//	a38 = 8 arrays, 16 MB     a48 = 16 arrays, 8 MB
//	a58 = 32 arrays, 4 MB
var (
	gridMACOptions  = []int{1, 2, 4, 8, 16, 32, 64, 96, 128, 192, 256}
	gridSRAMOptions = []float64{1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 192} // MB
)

// GridSize is the number of configurations in the Fig. 8 design space.
const GridSize = 121

// GridOptions returns the MAC-array and SRAM (MB) axes of the grid.
func GridOptions() (macArrays []int, sramMB []float64) {
	return append([]int(nil), gridMACOptions...), append([]float64(nil), gridSRAMOptions...)
}

// GridID returns the configuration ID for 1-based MAC and SRAM indices.
func GridID(macIdx, sramIdx int) string {
	return fmt.Sprintf("a%d", (macIdx-1)*len(gridSRAMOptions)+sramIdx)
}

// Grid enumerates all 121 configurations of the Fig. 8 design space, in ID
// order (a1 … a121).
func Grid() []Config {
	configs := make([]Config, 0, GridSize)
	for mi, arrays := range gridMACOptions {
		for si, mb := range gridSRAMOptions {
			configs = append(configs, New(GridID(mi+1, si+1), arrays, units.MB(mb)))
		}
	}
	return configs
}

// ByID returns the grid configuration with the given ID (e.g. "a48").
func ByID(id string) (Config, error) {
	for _, c := range Grid() {
		if c.ID == id {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("accel: no grid configuration %q", id)
}

// Fig. 11 / Fig. 12 configuration names (§VI-E).
const (
	Baseline1K1M = "Baseline_1K_1M"
	Stacked1K2M  = "3D_1K_2M"
	Stacked1K4M  = "3D_1K_4M"
	Stacked1K8M  = "3D_1K_8M"
	Stacked2K4M  = "3D_2K_4M"
	Stacked2K8M  = "3D_2K_8M"
	Stacked2K16M = "3D_2K_16M"
)

// Stacked3D enumerates the seven §VI-E configurations: the 2D baseline
// (1K MACs, 1 MB on-die SRAM, derived from [48]) and six 3D-stacked designs.
// Per Fig. 11(a), the activation memory per stacked die is 2 MB for 1K-MAC
// configurations and 4 MB for 2K-MAC configurations.
func Stacked3D() []Config {
	mk3d := func(id string, arrays int, sramMB, perDieMB float64) Config {
		c := New(id, arrays, units.MB(sramMB))
		c.Is3D = true
		c.MemDies = int(sramMB / perDieMB)
		return c
	}
	return []Config{
		New(Baseline1K1M, 16, units.MB(1)), // 16 arrays × 64 = 1K MACs
		mk3d(Stacked1K2M, 16, 2, 2),
		mk3d(Stacked1K4M, 16, 4, 2),
		mk3d(Stacked1K8M, 16, 8, 2),
		mk3d(Stacked2K4M, 32, 4, 4),
		mk3d(Stacked2K8M, 32, 8, 4),
		mk3d(Stacked2K16M, 32, 16, 4),
	}
}
