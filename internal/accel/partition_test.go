package accel

import (
	"testing"

	"cordoba/internal/carbon"
	"cordoba/internal/nn"
	"cordoba/internal/units"
)

// partitioned returns a mid-grid configuration carrying the given partition.
func partitioned(p Partition) Config {
	c := Grid()[60]
	c.Partition = p
	return c
}

// TestPartitionSpecMixedNodeAreas pins the multi-die synthesis of DesignSpec
// against hand-computed die areas, nodes, and counts for both integration
// styles, including the mixed-node memory chiplet.
func TestPartitionSpecMixedNodeAreas(t *testing.T) {
	proc := carbon.Process7nm()
	mem14, err := carbon.ProcessByName("14nm")
	if err != nil {
		t.Fatal(err)
	}

	c := partitioned(Partition{
		Chiplets:     4,
		Integration:  Integration25D,
		ChipletNode:  "14nm",
		Carrier:      "silicon-interposer",
		MemAreaScale: 1.8,
	})
	spec, err := c.DesignSpec(proc, carbon.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Integration != Integration25D || spec.Carrier != "silicon-interposer" {
		t.Fatalf("spec integration/carrier = %q/%q", spec.Integration, spec.Carrier)
	}
	if spec.Stacked {
		t.Fatal("2.5d spec must not be stacked")
	}
	if len(spec.Dies) != 2 {
		t.Fatalf("2.5d spec has %d dies, want compute+mem", len(spec.Dies))
	}
	oh := units.Area(1 + c.Params.D2DAreaOverhead)
	compute, mem := spec.Dies[0], spec.Dies[1]
	if want := c.coreLogicArea() / 4 * oh; compute.Area != want {
		t.Errorf("compute chiplet area = %v, want %v (logic/4 x %.2f)", compute.Area, want, oh)
	}
	if compute.Count != 4 || compute.Process.Node != proc.Node {
		t.Errorf("compute chiplet count/node = %d/%s, want 4/%s", compute.Count, compute.Process.Node, proc.Node)
	}
	if want := c.SRAMArea() * units.Area(1.8) * oh; mem.Area != want {
		t.Errorf("mem chiplet area = %v, want %v (SRAM x scale x %.2f)", mem.Area, want, oh)
	}
	if mem.Process.Node != mem14.Node {
		t.Errorf("mem chiplet node = %s, want 14nm", mem.Process.Node)
	}

	c3 := partitioned(Partition{Chiplets: 3, Integration: Integration3D})
	spec3, err := c3.DesignSpec(proc, carbon.FabCoal)
	if err != nil {
		t.Fatal(err)
	}
	if !spec3.Stacked || len(spec3.Dies) != 2 {
		t.Fatalf("3d spec stacked=%v dies=%d, want stacked logic+mem", spec3.Stacked, len(spec3.Dies))
	}
	tsv := units.Area(1 + c3.Params.TSVAreaOverhead)
	if want := c3.coreLogicArea() * tsv; spec3.Dies[0].Area != want {
		t.Errorf("3d logic tier area = %v, want %v", spec3.Dies[0].Area, want)
	}
	if want := c3.SRAMArea() / 3 * tsv; spec3.Dies[1].Area != want {
		t.Errorf("3d mem tier area = %v, want %v (SRAM/3 x %.2f)", spec3.Dies[1].Area, want, tsv)
	}
	if spec3.Dies[1].Count != 3 {
		t.Errorf("3d mem tier count = %d, want 3", spec3.Dies[1].Count)
	}
}

// TestPartitionPerDieDefectDensities pins the yield side of the split: every
// synthesized die is derated at its own area and node under the fab's defect
// density, so four small chiplets must each yield strictly better than the
// monolithic die they came from, and the breakdown must carry the exact
// Murphy yields of the synthesized areas.
func TestPartitionPerDieDefectDensities(t *testing.T) {
	proc := carbon.Process7nm()
	fab := carbon.FabCoal
	c := partitioned(Partition{Chiplets: 4, Integration: Integration25D})

	spec, err := c.DesignSpec(proc, fab)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := c.EmbodiedBreakdown(carbon.ChipletModel{}, carbon.MurphyYield{}, proc, fab)
	if err != nil {
		t.Fatal(err)
	}
	if len(bd.Dies) != 2 {
		t.Fatalf("breakdown has %d die entries, want 2", len(bd.Dies))
	}
	murphy := carbon.MurphyYield{}
	for i, d := range bd.Dies {
		if want := murphy.Yield(spec.Dies[i].Area, fab.DefectDensity); d.Yield != want {
			t.Errorf("die %q yield = %v, want Murphy(%v) = %v", d.Name, d.Yield, spec.Dies[i].Area, want)
		}
	}
	monoYield := murphy.Yield(c.coreLogicArea(), fab.DefectDensity)
	if bd.Dies[0].Yield <= monoYield {
		t.Errorf("chiplet yield %v should beat monolithic-logic yield %v", bd.Dies[0].Yield, monoYield)
	}
}

// TestPartitionCarrierTerms pins the 2.5d carrier carbon against values
// hand-computed from the documented model: RDL fanout pays 75 gCO2e/cm² over
// 1.10x the silicon area; a silicon interposer pays mature-node (28 nm-class)
// silicon over the same area; EMIB pays 10 % of the interposer rate over a
// 1.05x carrier.
func TestPartitionCarrierTerms(t *testing.T) {
	proc := carbon.Process7nm()
	fab := carbon.FabCoal
	mature := carbon.Processes()[0]

	base := partitioned(Partition{Chiplets: 4, Integration: Integration25D})
	spec, err := base.DesignSpec(proc, fab)
	if err != nil {
		t.Fatal(err)
	}
	var silicon units.Area
	for _, d := range spec.Dies {
		n := d.Count
		if n == 0 {
			n = 1
		}
		silicon += d.Area * units.Area(n)
	}

	perCM2 := map[string]float64{
		"rdl-fanout":         75.0,
		"silicon-interposer": mature.CarbonPerArea(fab).Grams(),
		"emib":               0.10 * mature.CarbonPerArea(fab).Grams(),
	}
	overhead := map[string]float64{"rdl-fanout": 1.10, "silicon-interposer": 1.10, "emib": 1.05}

	pkgOnly, err := carbon.Packaging{
		PerDie:  base.Params.PackagingPerDie,
		PerBond: base.Params.PackagingPerBond,
	}.Assembly(5) // 4 compute chiplets + 1 mem die
	if err != nil {
		t.Fatal(err)
	}
	for name, rate := range perCM2 {
		c := partitioned(Partition{Chiplets: 4, Integration: Integration25D, Carrier: name})
		bd, err := c.EmbodiedBreakdown(carbon.ChipletModel{}, nil, proc, fab)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantCarrier := rate * (silicon * units.Area(overhead[name])).CM2()
		gotCarrier := (bd.Packaging - pkgOnly).Grams()
		if diff := gotCarrier - wantCarrier; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: carrier carbon = %.6f g, hand-computed %.6f g", name, gotCarrier, wantCarrier)
		}
	}
}

// TestPartitionMonolithicBitIdentical is the refactor's safety differential:
// a "monolithic" partition (and the zero value) must route through the exact
// historical code path — identical design spec, embodied carbon, total area,
// and per-layer cost model, to the bit.
func TestPartitionMonolithicBitIdentical(t *testing.T) {
	proc := carbon.Process7nm()
	for _, base := range append(Grid()[:8:8], Stacked3D()...) {
		mono := base
		mono.Partition = Partition{Integration: IntegrationMonolithic, Chiplets: 4, ChipletNode: "14nm"}

		for _, fab := range carbon.Fabs() {
			want, err := base.Embodied(proc, fab)
			if err != nil {
				t.Fatal(err)
			}
			got, err := mono.Embodied(proc, fab)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s/%s: monolithic partition embodied = %v, base = %v", base.ID, fab.Name, got, want)
			}
		}
		if got, want := mono.TotalArea(), base.TotalArea(); got != want {
			t.Fatalf("%s: monolithic partition area = %v, base = %v", base.ID, got, want)
		}
		wantProf, err := base.Profile(nn.RN50)
		if err != nil {
			t.Fatal(err)
		}
		gotProf, err := mono.Profile(nn.RN50)
		if err != nil {
			t.Fatal(err)
		}
		if gotProf != wantProf {
			t.Fatalf("%s: monolithic partition profile = %+v, base = %+v", base.ID, gotProf, wantProf)
		}
		if gotProf.D2DEnergy != 0 {
			t.Fatalf("%s: monolithic profile carries D2D energy %v", base.ID, gotProf.D2DEnergy)
		}
	}
}

// TestPartitionD2DPenalty: an active partition must pay for die-to-die
// traffic — strictly more energy and no less time than the identical
// monolithic design — and a 3d partition must pay less D2D than 2.5d (shorter
// vertical hops).
func TestPartitionD2DPenalty(t *testing.T) {
	base := Grid()[60]
	flat, err := base.Profile(nn.RN50)
	if err != nil {
		t.Fatal(err)
	}

	c25 := partitioned(Partition{Chiplets: 4, Integration: Integration25D})
	p25, err := c25.Profile(nn.RN50)
	if err != nil {
		t.Fatal(err)
	}
	if p25.D2DEnergy <= 0 {
		t.Fatalf("2.5d profile has no D2D energy: %+v", p25)
	}
	if p25.Energy <= flat.Energy {
		t.Errorf("2.5d energy %v should exceed monolithic %v", p25.Energy, flat.Energy)
	}
	if p25.Delay < flat.Delay {
		t.Errorf("2.5d delay %v should be >= monolithic %v", p25.Delay, flat.Delay)
	}

	c3 := partitioned(Partition{Chiplets: 4, Integration: Integration3D})
	p3, err := c3.Profile(nn.RN50)
	if err != nil {
		t.Fatal(err)
	}
	if p3.D2DEnergy <= 0 || p3.D2DEnergy >= p25.D2DEnergy {
		t.Errorf("3d D2D energy %v should be positive and below 2.5d %v", p3.D2DEnergy, p25.D2DEnergy)
	}
}

// TestPartitionValidate covers the partition-spec invariants enforced by
// Config.Validate.
func TestPartitionValidate(t *testing.T) {
	bad := []Partition{
		{Integration: "stacked"},                    // unknown style
		{Integration: Integration25D, Chiplets: -1}, // negative count
		{Integration: Integration25D, MemAreaScale: -0.5},
	}
	for _, p := range bad {
		c := partitioned(p)
		if err := c.Validate(); err == nil {
			t.Errorf("partition %+v should fail validation", p)
		}
	}
	c := Stacked3D()[1]
	c.Partition = Partition{Integration: Integration25D, Chiplets: 2}
	if err := c.Validate(); err == nil {
		t.Error("Is3D with an active partition should fail validation")
	}
	good := partitioned(Partition{Integration: Integration3D, Chiplets: 8})
	if err := good.Validate(); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
}
