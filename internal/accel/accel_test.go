package accel

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cordoba/internal/carbon"
	"cordoba/internal/nn"
	"cordoba/internal/units"
)

func TestGridShape(t *testing.T) {
	grid := Grid()
	if len(grid) != GridSize {
		t.Fatalf("grid size = %d, want %d", len(grid), GridSize)
	}
	macs, srams := GridOptions()
	if len(macs) != 11 || len(srams) != 11 {
		t.Fatalf("axes = %d × %d, want 11 × 11", len(macs), len(srams))
	}
	for _, c := range grid {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.ID, err)
		}
	}
	// No duplicate IDs.
	seen := map[string]bool{}
	for _, c := range grid {
		if seen[c.ID] {
			t.Errorf("duplicate ID %s", c.ID)
		}
		seen[c.ID] = true
	}
}

// The paper names specific configurations; the indexing must reproduce them.
func TestNamedGridConfigs(t *testing.T) {
	want := map[string]struct {
		arrays int
		sramMB float64
	}{
		"a1":  {1, 1},
		"a12": {2, 1},
		"a23": {4, 1},
		"a37": {8, 8},
		"a38": {8, 16},
		"a48": {16, 8},
		"a58": {32, 4},
	}
	for id, w := range want {
		c, err := ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if c.MACArrays != w.arrays || c.SRAM.InMB() != w.sramMB {
			t.Errorf("%s = (%d arrays, %v MB), want (%d, %v)", id, c.MACArrays, c.SRAM.InMB(), w.arrays, w.sramMB)
		}
	}
	if _, err := ByID("a0"); err == nil {
		t.Error("a0 should not exist")
	}
	if _, err := ByID("a122"); err == nil {
		t.Error("a122 should not exist")
	}
}

// Fig. 11(a): 16 arrays ≈ 1K MACs, 32 arrays ≈ 2K MACs.
func TestMACNotation(t *testing.T) {
	c, _ := ByID("a48")
	if got := c.TotalMACs(); got != 1024 {
		t.Errorf("a48 MACs = %d, want 1024 (\"1K\")", got)
	}
	c, _ = ByID("a58")
	if got := c.TotalMACs(); got != 2048 {
		t.Errorf("a58 MACs = %d, want 2048 (\"2K\")", got)
	}
}

func TestValidate(t *testing.T) {
	cases := []Config{
		{ID: "no-arrays", MACArrays: 0, SRAM: units.MB(1), Params: DefaultParams()},
		{ID: "no-sram", MACArrays: 1, SRAM: 0, Params: DefaultParams()},
		{ID: "bad-3d", MACArrays: 1, SRAM: units.MB(1), Is3D: true, Params: DefaultParams()},
		{ID: "no-params", MACArrays: 1, SRAM: units.MB(1)},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("%s should be invalid", c.ID)
		}
	}
}

func TestMoreArraysNeverSlower(t *testing.T) {
	small := New("s", 2, units.MB(4))
	big := New("b", 32, units.MB(4))
	for _, id := range nn.AllKernels() {
		ps, err := small.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := big.Profile(id)
		if err != nil {
			t.Fatal(err)
		}
		if pb.Delay > ps.Delay {
			t.Errorf("%s: 32 arrays slower than 2 (%v > %v)", id, pb.Delay, ps.Delay)
		}
	}
}

func TestArraysSaturate(t *testing.T) {
	// §VI-B: provisioning beyond the saturation point stops paying. The
	// speedup from 1→16 arrays must far exceed the speedup from 16→256.
	c1 := New("c1", 1, units.MB(8))
	c16 := New("c16", 16, units.MB(8))
	c256 := New("c256", 256, units.MB(8))
	p1, _ := c1.Profile(nn.RN50)
	p16, _ := c16.Profile(nn.RN50)
	p256, _ := c256.Profile(nn.RN50)
	gainLow := p1.Delay.Seconds() / p16.Delay.Seconds()
	gainHigh := p16.Delay.Seconds() / p256.Delay.Seconds()
	if gainLow < 1.5 {
		t.Errorf("1→16 arrays should speed RN-50 up meaningfully, got %.2f×", gainLow)
	}
	if gainHigh > 1.15 {
		t.Errorf("16→256 arrays should be nearly flat for RN-50, got %.2f×", gainHigh)
	}
}

func TestMoreSRAMNeverMoreDRAMTraffic(t *testing.T) {
	small := New("s", 16, units.MB(1))
	big := New("b", 16, units.MB(32))
	for _, id := range nn.AllKernels() {
		ps, _ := small.Profile(id)
		pb, _ := big.Profile(id)
		if pb.DRAMTraffic > ps.DRAMTraffic {
			t.Errorf("%s: more SRAM increased DRAM traffic", id)
		}
	}
}

// §V: "increasing the activation SRAM from 2 MB to 32 MB decreases the
// bandwidth requirements" dramatically for high-resolution super-resolution.
func TestSRAMKillsSpillForSR(t *testing.T) {
	c2 := New("c2", 16, units.MB(2))
	c32 := New("c32", 16, units.MB(32))
	p2, _ := c2.Profile(nn.SR512)
	p32, _ := c32.Profile(nn.SR512)
	ratio := float64(p2.DRAMTraffic) / float64(p32.DRAMTraffic)
	if ratio < 10 {
		t.Errorf("SR-512 DRAM traffic ratio 2MB/32MB = %.1f, want ≥ 10", ratio)
	}
}

func TestLeakageGrowsWithProvisioning(t *testing.T) {
	a := New("a", 1, units.MB(1))
	b := New("b", 64, units.MB(64))
	if b.LeakagePower() <= a.LeakagePower() {
		t.Error("leakage should grow with arrays and SRAM")
	}
}

func TestAreaModel(t *testing.T) {
	a1 := New("a1", 1, units.MB(1))
	a48 := New("a48", 16, units.MB(8))
	if a48.TotalArea() <= a1.TotalArea() {
		t.Error("bigger config should have bigger area")
	}
	// 2D: total area equals logic area (SRAM is on-die).
	if a1.TotalArea() != a1.LogicArea() {
		t.Error("2D total area should equal logic area")
	}
	if a1.MemDieArea() != 0 {
		t.Error("2D config has no memory die")
	}
}

func TestLayerCostBreakdown(t *testing.T) {
	c := New("c", 16, units.MB(8))
	net := nn.MustKernel(nn.RN18)
	var total units.Energy
	for _, l := range net.Layers {
		lc := c.LayerCost(l)
		if lc.Time < lc.ComputeTime || lc.Time < lc.MemoryTime {
			t.Fatalf("layer %s: time %v below roofline max(%v, %v)", l.Name, lc.Time, lc.ComputeTime, lc.MemoryTime)
		}
		if lc.Energy() != lc.MACEnergy+lc.SRAMEnergy+lc.DRAMEnergy {
			t.Fatalf("layer %s: energy breakdown inconsistent", l.Name)
		}
		total += lc.Energy()
	}
	p, _ := c.Profile(nn.RN18)
	if math.Abs(total.Joules()-p.Energy.Joules()) > 1e-12*total.Joules() {
		t.Error("profile energy disagrees with layer sum")
	}
}

func TestProfileErrors(t *testing.T) {
	c := New("c", 16, units.MB(8))
	if _, err := c.Profile("bogus"); err == nil {
		t.Error("unknown kernel should error")
	}
	bad := Config{ID: "bad"}
	if _, err := bad.Profile(nn.RN18); err == nil {
		t.Error("invalid config should error")
	}
	if _, err := bad.KernelCost(nn.RN18); err == nil {
		t.Error("invalid config should error through KernelCost")
	}
}

func TestKernelCostMatchesProfile(t *testing.T) {
	c := New("c", 8, units.MB(4))
	p, _ := c.Profile(nn.MN2)
	kc, err := c.KernelCost(nn.MN2)
	if err != nil {
		t.Fatal(err)
	}
	if kc.Delay != p.Delay || kc.DynamicEnergy != p.Energy {
		t.Error("KernelCost should mirror Profile")
	}
}

// ---- 3D stacking ----

func TestStacked3DConfigs(t *testing.T) {
	cfgs := Stacked3D()
	if len(cfgs) != 7 {
		t.Fatalf("expected 7 configs, got %d", len(cfgs))
	}
	byID := map[string]Config{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Fatalf("%s: %v", c.ID, err)
		}
		byID[c.ID] = c
	}
	base := byID[Baseline1K1M]
	if base.Is3D || base.TotalMACs() != 1024 || base.SRAM.InMB() != 1 {
		t.Errorf("baseline misconfigured: %+v", base)
	}
	// Fig. 11(a): memory per die is 2 MB for 1K configs, 4 MB for 2K.
	if c := byID[Stacked1K8M]; c.MemDies != 4 {
		t.Errorf("3D_1K_8M should stack 4 dies, got %d", c.MemDies)
	}
	if c := byID[Stacked2K16M]; c.MemDies != 4 {
		t.Errorf("3D_2K_16M should stack 4 dies, got %d", c.MemDies)
	}
	if c := byID[Stacked2K8M]; c.TotalMACs() != 2048 {
		t.Errorf("3D_2K_8M MACs = %d", c.TotalMACs())
	}
	for id, c := range byID {
		if strings.HasPrefix(id, "3D_") && !c.Is3D {
			t.Errorf("%s should be 3D", id)
		}
	}
}

func TestStackingImprovesMemoryEnergyAndBandwidth(t *testing.T) {
	flat := New("flat", 32, units.MB(8))
	stacked := flat
	stacked.ID = "stacked"
	stacked.Is3D = true
	stacked.MemDies = 2
	if stacked.sramEnergyPerByte() >= flat.sramEnergyPerByte() {
		t.Error("3D SRAM access should be cheaper")
	}
	if stacked.dramBandwidth() <= flat.dramBandwidth() {
		t.Error("3D processor–memory bandwidth should be higher")
	}
	ps, _ := stacked.Profile(nn.SR512)
	pf, _ := flat.Profile(nn.SR512)
	if ps.Energy >= pf.Energy {
		t.Errorf("3D should cut SR-512 energy: %v vs %v", ps.Energy, pf.Energy)
	}
	if ps.Delay > pf.Delay {
		t.Errorf("3D should not be slower: %v vs %v", ps.Delay, pf.Delay)
	}
}

func TestEmbodied(t *testing.T) {
	p7, fab := carbon.Process7nm(), carbon.FabCoal
	a1 := New("a1", 1, units.MB(1))
	a48 := New("a48", 16, units.MB(8))
	e1, err := a1.Embodied(p7, fab)
	if err != nil {
		t.Fatal(err)
	}
	e48, err := a48.Embodied(p7, fab)
	if err != nil {
		t.Fatal(err)
	}
	if e48 <= e1 {
		t.Error("bigger config should have higher embodied carbon")
	}
	// The ratio must be substantial — it is what lets small designs win at
	// short operational times (Fig. 8).
	if ratio := e48.Grams() / e1.Grams(); ratio < 2 {
		t.Errorf("a48/a1 embodied ratio = %.2f, want ≥ 2", ratio)
	}
	// Default helper agrees.
	ed, err := a48.EmbodiedDefault()
	if err != nil || ed != e48 {
		t.Errorf("EmbodiedDefault mismatch: %v, %v", ed, err)
	}
	// Invalid config errors.
	if _, err := (Config{ID: "bad"}).Embodied(p7, fab); err == nil {
		t.Error("invalid config should error")
	}
}

func TestEmbodied3DIncludesAllDice(t *testing.T) {
	cfgs := Stacked3D()
	byID := map[string]Config{}
	for _, c := range cfgs {
		byID[c.ID] = c
	}
	e2, _ := byID[Stacked1K2M].EmbodiedDefault()
	e8, _ := byID[Stacked1K8M].EmbodiedDefault()
	if e8 <= e2 {
		t.Error("more stacked memory dies should cost more embodied carbon")
	}
}

func TestSpillPenaltyGrowsWithDeficit(t *testing.T) {
	// Same working set, shrinking SRAM: DRAM traffic per spilled byte must
	// grow (the deficit-dependent re-read factor).
	layer := nn.MustKernel(nn.SR512).Layers[1] // a big trunk conv
	c8 := New("c8", 16, units.MB(8))
	c1 := New("c1", 16, units.MB(1))
	lc8 := c8.LayerCost(layer)
	lc1 := c1.LayerCost(layer)
	ws := layer.WorkingSet()
	if ws <= c8.SRAM {
		t.Skip("layer fits; pick a bigger one")
	}
	perByte8 := float64(lc8.DRAMTraffic-layer.WeightBytes()) / float64(ws-c8.SRAM)
	perByte1 := float64(lc1.DRAMTraffic-layer.WeightBytes()) / float64(ws-c1.SRAM)
	if perByte1 <= perByte8 {
		t.Errorf("re-read factor should grow with deficit: %v vs %v", perByte1, perByte8)
	}
}

// §V: "as super-resolution kernels scale up in resolution ... their memory
// and bandwidth requirements grow beyond the typical LPDDR4 DRAM 16 GB/s
// peak bandwidth. Therefore, increasing the activation SRAM from 2 MB to
// 32 MB decreases the bandwidth requirements ... within acceptable ranges."
func TestBandwidthRequirementClaim(t *testing.T) {
	lpddr4 := units.GBps(16)
	small := New("c2", 16, units.MB(2))
	big := New("c32", 16, units.MB(32))

	bwSmall, err := small.BandwidthRequirement(nn.SR1024)
	if err != nil {
		t.Fatal(err)
	}
	bwBig, err := big.BandwidthRequirement(nn.SR1024)
	if err != nil {
		t.Fatal(err)
	}
	if bwSmall <= lpddr4 {
		t.Errorf("SR-1024 at 2 MB should exceed LPDDR4: needs %v", bwSmall)
	}
	if bwBig >= lpddr4 {
		t.Errorf("SR-1024 at 32 MB should fit within LPDDR4: needs %v", bwBig)
	}
	// Paper: 89.6×; measured ≈14× — an order-of-magnitude collapse, smaller
	// than the paper's because residual-add working sets still spill at
	// 32 MB in this model.
	ratio := bwSmall.BytesPerSecond() / bwBig.BytesPerSecond()
	if ratio < 10 {
		t.Errorf("bandwidth reduction = %.1f×, want ≥ 10× (paper: 89.6×)", ratio)
	}
}

func TestBandwidthRequirementGrowsWithResolution(t *testing.T) {
	c := New("c", 16, units.MB(2))
	prev := units.Bandwidth(0)
	for _, id := range []nn.KernelID{nn.SR256, nn.SR512, nn.SR1024} {
		bw, err := c.BandwidthRequirement(id)
		if err != nil {
			t.Fatal(err)
		}
		if bw <= prev {
			t.Errorf("%s: bandwidth requirement should grow with resolution", id)
		}
		prev = bw
	}
}

func TestProfileBreakdownConsistency(t *testing.T) {
	c := New("c", 16, units.MB(8))
	p, err := c.Profile(nn.DN)
	if err != nil {
		t.Fatal(err)
	}
	sum := p.MACEnergy + p.SRAMEnergy + p.DRAMEnergy
	if math.Abs(sum.Joules()-p.Energy.Joules()) > 1e-9*p.Energy.Joules() {
		t.Errorf("energy breakdown %v does not sum to %v", sum, p.Energy)
	}
	if p.ComputeTime <= 0 || p.MemoryTime <= 0 {
		t.Error("breakdown times missing")
	}
	if p.Delay < p.ComputeTime && p.Delay < p.MemoryTime {
		t.Error("delay below both roofline components")
	}
}

func TestBandwidthRequirementErrors(t *testing.T) {
	bad := Config{ID: "bad"}
	if _, err := bad.BandwidthRequirement(nn.SR256); err == nil {
		t.Error("invalid config should error")
	}
}

// Property: delay is non-increasing in SRAM capacity (more SRAM can only
// reduce spill traffic) for every kernel, across random capacity pairs.
func TestDelayMonotoneInSRAMProperty(t *testing.T) {
	kernels := nn.AllKernels()
	f := func(a, b uint8, kIdx uint8) bool {
		mb1 := 1 + float64(a%64)
		mb2 := 1 + float64(b%64)
		if mb1 > mb2 {
			mb1, mb2 = mb2, mb1
		}
		id := kernels[int(kIdx)%len(kernels)]
		small := New("s", 8, units.MB(mb1))
		big := New("b", 8, units.MB(mb2))
		ps, err1 := small.Profile(id)
		pb, err2 := big.Profile(id)
		return err1 == nil && err2 == nil && pb.Delay <= ps.Delay+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: embodied carbon is strictly increasing in both grid axes.
func TestEmbodiedMonotoneProperty(t *testing.T) {
	macs, srams := GridOptions()
	f := func(mi, si uint8) bool {
		i := int(mi) % (len(macs) - 1)
		j := int(si) % (len(srams) - 1)
		small := New("s", macs[i], units.MB(srams[j]))
		bigger := New("b", macs[i+1], units.MB(srams[j+1]))
		es, err1 := small.EmbodiedDefault()
		eb, err2 := bigger.EmbodiedDefault()
		return err1 == nil && err2 == nil && eb > es
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
