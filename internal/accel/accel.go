// Package accel is the analytical ML-accelerator simulator of paper Fig. 5:
// a MAC-array + activation-SRAM + LPDDR DRAM architecture in the style of
// the CICC'22 AR/VR accelerator [48] and Simba [44]. Given a neural-network
// kernel (internal/nn) and an accelerator configuration, it reports latency
// and energy per inference — the inputs to CORDOBA's eq. IV.2–IV.6 — plus
// die area and embodied carbon.
//
// The model is a roofline with an activation-spill term: each layer takes
// max(compute time, DRAM time), where DRAM traffic is the streamed weights
// plus the part of the activation working set that does not fit in on-chip
// SRAM (re-read with a tiling penalty). The paper's own simulator is
// cycle-validated against an FPGA; this analytical stand-in preserves the
// properties CORDOBA consumes — latency and energy as monotone, saturating
// functions of MAC count, SRAM capacity and kernel memory footprint
// (see DESIGN.md §2 for the substitution rationale).
package accel

import (
	"fmt"
	"math"

	"cordoba/internal/nn"
	"cordoba/internal/units"
	"cordoba/internal/workload"
)

// MACsPerArray is the number of multipliers in one MAC array; the paper's
// "16 MACs" (Fig. 8) and "1K MACs" (Fig. 11) notations both refer to arrays
// of 64: 16 arrays ≈ 1K multipliers, 32 arrays ≈ 2K.
const MACsPerArray = 64

// Params collects the technology constants of the simulator (7 nm values).
// They are exposed so that studies can recalibrate; Fig. 8/11 reproduction
// uses DefaultParams.
type Params struct {
	Clock  units.Frequency // accelerator clock
	DRAMBW units.Bandwidth // processor–memory bandwidth (LPDDR4: 16 GB/s, §V)

	MACEnergy units.Energy // energy per 8-bit MAC operation

	// SRAMEnergyBase/Slope give the per-byte SRAM access energy:
	// base + slope·√(capacity in MB) — bigger arrays have longer wires.
	SRAMEnergyBase  units.Energy
	SRAMEnergySlope units.Energy

	DRAMEnergyPerByte units.Energy // LPDDR access energy per byte

	// Utilization of the MAC arrays by op kind.
	ConvUtil, DWConvUtil, FCUtil float64

	// SaturationScale scales the per-layer array-count saturation. Each MAC
	// array tiles output pixels (or output channels, whichever is larger),
	// so a layer exposes s = scale·max(OutH·OutW, OutC)/MACsPerArray
	// arrays' worth of parallelism; n arrays then deliver the throughput of
	// n·s/(s+n) fully-utilized arrays. Low-resolution late layers therefore
	// cannot fill large arrays — the over-provisioning effect the DSE
	// explores (and the reason classification backbones favour small
	// accelerators while full-resolution XR kernels keep scaling).
	SaturationScale float64

	// SaturationCap bounds the per-layer saturation (in arrays): even
	// full-resolution layers eventually hit NoC/dataflow limits.
	SaturationCap float64

	// TilingPenalty multiplies spilled activation bytes. The effective
	// re-read factor grows with the capacity deficit —
	// TilingPenalty·(1 + log₂(workingSet/SRAM)) — because smaller tiles
	// force proportionally more halo/weight re-fetches.
	TilingPenalty float64

	// LayerOverhead is the fixed per-layer sequencing cost.
	LayerOverhead units.Time

	// Area model: base die overhead plus per-array and per-MB terms.
	BaseArea     units.Area
	AreaPerArray units.Area
	AreaPerMB    units.Area

	// Leakage model.
	BaseLeakage     units.Power
	LeakagePerArray units.Power
	LeakagePerMB    units.Power

	// PackagingPerDie/PerBond price assembly (see carbon.Packaging).
	PackagingPerDie  units.Carbon
	PackagingPerBond units.Carbon

	// 3D stacking adjustments (§VI-E, [54]): stacked activation memory is
	// reached through hybrid-bonded TSVs — cheaper per byte than long 2D
	// wires — and each die pays an area overhead for the TSV field.
	SRAM3DEnergyScale float64
	TSVAreaOverhead   float64
	DRAM3DBWScale     float64 // processor–memory bandwidth gain of stacking

	// D2D interconnect penalty for partitioned configurations (CarbonPATH /
	// ECO-CHIP style): activation traffic that crosses the die-to-die cut
	// pays link energy per byte, shares the link bandwidth, and each layer
	// pays a hop latency. 3D hybrid bonding is a much shorter wire: it
	// scales the energy and hop latency by D2D3DScale and multiplies the
	// bandwidth by 1/D2D3DScale. Each die also grows by D2DAreaOverhead for
	// the link PHY and redistribution.
	D2DEnergyPerByte   units.Energy
	D2DBandwidth       units.Bandwidth
	D2DLatencyPerLayer units.Time
	D2D3DScale         float64
	D2DAreaOverhead    float64
}

// DefaultParams returns the calibrated 7 nm constants used throughout the
// paper reproduction.
func DefaultParams() Params {
	return Params{
		Clock:  units.MHz(800),
		DRAMBW: units.GBps(16),

		MACEnergy:         0.2e-12,
		SRAMEnergyBase:    0.04e-12,
		SRAMEnergySlope:   0.12e-12,
		DRAMEnergyPerByte: 30e-12,

		ConvUtil:        0.85,
		DWConvUtil:      0.30,
		FCUtil:          0.60,
		SaturationScale: 0.1,
		SaturationCap:   32,

		TilingPenalty: 3.0,
		LayerOverhead: units.Time(2e-6),

		BaseArea:     units.MM2(0.15),
		AreaPerArray: units.MM2(1.0),
		AreaPerMB:    units.MM2(0.25),

		BaseLeakage:     0.005,
		LeakagePerArray: 0.012,
		LeakagePerMB:    0.004,

		PackagingPerDie:  10,
		PackagingPerBond: 10,

		SRAM3DEnergyScale: 0.7,
		TSVAreaOverhead:   0.08,
		DRAM3DBWScale:     4.0,

		// 2.5D organic/RDL links run ≈0.25 pJ/bit over a few hundred GB/s;
		// hybrid bonding cuts the wire an order of magnitude.
		D2DEnergyPerByte:   2e-12,
		D2DBandwidth:       units.GBps(256),
		D2DLatencyPerLayer: units.Time(50e-9),
		D2D3DScale:         0.1,
		D2DAreaOverhead:    0.05,
	}
}

// Integration styles a Partition can request. Monolithic (the zero value)
// keeps everything on one die — the exact legacy cost and carbon path.
const (
	IntegrationMonolithic = "monolithic"
	Integration25D        = "2.5d"
	Integration3D         = "3d"
)

// Integrations lists the valid partition integration styles.
func Integrations() []string {
	return []string{IntegrationMonolithic, Integration25D, Integration3D}
}

// Partition describes how a configuration is cut into dies before packaging
// — the chiplet-pathfinding axis the DSE sweeps. The zero value means
// monolithic: single die, no interconnect penalty, bit-identical to the
// pre-partition pipeline.
type Partition struct {
	// Chiplets is the compute-chiplet count for 2.5d integration (the MAC
	// logic is split into equal chiplets beside one memory chiplet), or the
	// memory-tier count for 3d integration. 0 and 1 mean one compute die /
	// one memory tier.
	Chiplets int

	// Integration selects the assembly: "" or "monolithic" (single die),
	// "2.5d" (chiplets side by side on a carrier), "3d" (stacked tiers).
	Integration string

	// ChipletNode names the technology node the memory chiplet is
	// fabricated on — the mixed-node reuse lever: SRAM barely shrinks past
	// 14 nm, so an older, lower-footprint node often prices better. Empty
	// keeps the logic node.
	ChipletNode string

	// Carrier names the 2.5d carrier technology ("rdl-fanout",
	// "silicon-interposer", "emib"); empty keeps the carbon backend's
	// default. Ignored for monolithic and 3d integration.
	Carrier string

	// MemAreaScale rescales the memory chiplet's silicon area to
	// ChipletNode (the area-per-gate ratio between the memory node and the
	// logic node); 0 keeps the logic node's density. The DSE grid sets it
	// from internal/device's node table; direct users who leave it zero get
	// a same-density approximation.
	MemAreaScale float64
}

// Active reports whether the partition actually cuts the die.
func (p Partition) Active() bool {
	return p.Integration == Integration25D || p.Integration == Integration3D
}

func (p Partition) is3D() bool { return p.Integration == Integration3D }

// count returns the compute-chiplet (2.5d) or memory-tier (3d) count,
// defaulting to 1.
func (p Partition) count() int {
	if p.Chiplets > 1 {
		return p.Chiplets
	}
	return 1
}

// memScale returns the memory-node area ratio, defaulting to 1.
func (p Partition) memScale() float64 {
	if p.MemAreaScale > 0 {
		return p.MemAreaScale
	}
	return 1
}

// validate checks the partition spec in isolation.
func (p Partition) validate() error {
	switch p.Integration {
	case "", IntegrationMonolithic, Integration25D, Integration3D:
	default:
		return fmt.Errorf("unknown integration style %q (want monolithic, 2.5d or 3d)", p.Integration)
	}
	if p.Chiplets < 0 {
		return fmt.Errorf("chiplet count must be non-negative, got %d", p.Chiplets)
	}
	if p.MemAreaScale < 0 {
		return fmt.Errorf("memory area scale must be non-negative, got %v", p.MemAreaScale)
	}
	return nil
}

// Config is one accelerator design point: the (MAC arrays, SRAM capacity)
// pair swept in Fig. 8, optionally 3D-stacked (Fig. 11).
type Config struct {
	ID        string
	MACArrays int
	SRAM      units.Bytes

	// Is3D marks a 3D-stacked configuration: the activation memory lives on
	// MemDies separately fabricated dies hybrid-bonded on top of the logic
	// die [54]. It predates Partition and stays supported for the legacy
	// Fig. 11 path; it cannot be combined with an active Partition.
	Is3D    bool
	MemDies int

	// Partition cuts the design into chiplets or tiers; the zero value is
	// monolithic (see Partition).
	Partition Partition

	Params Params
}

// New returns a 2D configuration with default parameters.
func New(id string, arrays int, sram units.Bytes) Config {
	return Config{ID: id, MACArrays: arrays, SRAM: sram, Params: DefaultParams()}
}

// Validate reports whether the configuration is well-formed.
func (c Config) Validate() error {
	switch {
	case c.MACArrays <= 0:
		return fmt.Errorf("accel: %s: MAC arrays must be positive, got %d", c.ID, c.MACArrays)
	case c.SRAM <= 0:
		return fmt.Errorf("accel: %s: SRAM must be positive, got %v", c.ID, c.SRAM)
	case c.Is3D && c.MemDies < 1:
		return fmt.Errorf("accel: %s: 3D config needs at least one memory die", c.ID)
	case c.Params.Clock <= 0 || c.Params.DRAMBW <= 0:
		return fmt.Errorf("accel: %s: params not initialized (use New or set Params)", c.ID)
	case c.Is3D && c.Partition.Active():
		return fmt.Errorf("accel: %s: legacy Is3D and an active Partition are mutually exclusive", c.ID)
	}
	if err := c.Partition.validate(); err != nil {
		return fmt.Errorf("accel: %s: partition: %v", c.ID, err)
	}
	return nil
}

// TotalMACs returns the number of multipliers.
func (c Config) TotalMACs() int { return c.MACArrays * MACsPerArray }

// sramEnergyPerByte returns the per-byte access energy of the activation
// memory, accounting for capacity and 3D stacking.
func (c Config) sramEnergyPerByte() units.Energy {
	mb := c.SRAM.InMB()
	e := c.Params.SRAMEnergyBase + c.Params.SRAMEnergySlope*units.Energy(math.Sqrt(mb))
	if c.Is3D || c.Partition.is3D() {
		e *= units.Energy(c.Params.SRAM3DEnergyScale)
	}
	return e
}

// dramBandwidth returns the effective processor–memory bandwidth.
func (c Config) dramBandwidth() units.Bandwidth {
	if c.Is3D || c.Partition.is3D() {
		return c.Params.DRAMBW * units.Bandwidth(c.Params.DRAM3DBWScale)
	}
	return c.Params.DRAMBW
}

// d2dCost is a partition's resolved interconnect pricing, hoisted out of the
// per-layer loop so the memoized shape replay (ShapeProfile.Cost) and the
// direct path share it without drift.
type d2dCost struct {
	energyPB units.Energy
	bw       float64 // bytes per second across the cut
	hop      units.Time
}

// d2d resolves the partition's interconnect pricing; ok is false for
// monolithic configurations, which keep the exact legacy cost path.
func (c Config) d2d() (d2dCost, bool) {
	if !c.Partition.Active() {
		return d2dCost{}, false
	}
	d := d2dCost{
		energyPB: c.Params.D2DEnergyPerByte,
		bw:       c.Params.D2DBandwidth.BytesPerSecond(),
		hop:      c.Params.D2DLatencyPerLayer,
	}
	if c.Partition.is3D() {
		s := c.Params.D2D3DScale
		d.energyPB *= units.Energy(s)
		d.bw /= s
		d.hop *= units.Time(s)
	}
	return d, true
}

// LayerCost breaks down the simulation of one layer.
type LayerCost struct {
	ComputeTime units.Time
	MemoryTime  units.Time
	D2DTime     units.Time // die-to-die link transfer (partitioned configs)
	Time        units.Time // max(compute, memory, d2d) + overhead (+ hop)

	MACEnergy  units.Energy
	SRAMEnergy units.Energy
	DRAMEnergy units.Energy
	D2DEnergy  units.Energy // link energy of activation bytes crossing the cut

	DRAMTraffic units.Bytes // weights + spilled activations
}

// Energy returns the layer's total dynamic energy.
func (lc LayerCost) Energy() units.Energy {
	return lc.MACEnergy + lc.SRAMEnergy + lc.DRAMEnergy + lc.D2DEnergy
}

// utilization returns the MAC-array utilization for a layer kind.
func (c Config) utilization(kind nn.OpKind) float64 {
	switch kind {
	case nn.OpConv:
		return c.Params.ConvUtil
	case nn.OpDepthwiseConv:
		return c.Params.DWConvUtil
	case nn.OpFC:
		return c.Params.FCUtil
	default:
		return 1
	}
}

// layerShape holds the knob-invariant quantities of one layer on one
// configuration shape: MAC work, saturated effective throughput (before the
// clock is applied), and the byte counts that move through each level of the
// memory hierarchy. Everything the DVFS/energy knobs can rescale (clock,
// per-op energies) is deliberately absent, so a ShapeProfile built from
// these replays under different knob settings (see shape.go).
type layerShape struct {
	macs    float64     // MAC count; 0 for memory-only layers
	effBase float64     // saturated arrays × MACsPerArray × utilization, clock excluded
	sram    units.Bytes // bytes traversing the activation memory, incl. spill re-reads
	dram    units.Bytes // weights + spilled activations
}

// layerShape computes the knob-invariant part of one layer's simulation.
func (c Config) layerShape(l nn.Layer) layerShape {
	var ls layerShape

	// Compute roofline with per-layer saturation: the layer's exposed
	// parallelism bounds how many arrays it can keep busy.
	ls.macs = l.MACs()
	if ls.macs > 0 {
		n := float64(c.MACArrays)
		par := float64(l.OutH * l.OutW)
		if ch := float64(l.OutC); ch > par {
			par = ch
		}
		s := c.Params.SaturationScale * par / MACsPerArray
		if cap := c.Params.SaturationCap; cap > 0 && s > cap {
			s = cap
		}
		if s > 0 {
			n = n * s / (s + n)
		}
		ls.effBase = n * MACsPerArray * c.utilization(l.Kind)
	}

	// Activation traffic: the whole working set moves through the on-chip
	// memory hierarchy; the part that does not fit spills to DRAM and is
	// re-fetched with a tiling penalty.
	ws := l.WorkingSet()
	ls.sram = ws
	var spill units.Bytes
	if ws > c.SRAM {
		penalty := c.Params.TilingPenalty * (1 + math.Log2(float64(ws/c.SRAM)))
		spill = (ws - c.SRAM) * units.Bytes(penalty)
		ls.sram = c.SRAM + spill // spilled tiles still pass through SRAM
	}
	ls.dram = spill + l.WeightBytes()
	return ls
}

// layerCostOf prices a layer shape under the configuration's clock and
// energy parameters. LayerCost and ShapeProfile.Cost both go through this
// helper so the direct and memoized paths cannot drift — their results are
// bit-identical by construction.
func (c Config) layerCostOf(ls layerShape) LayerCost {
	var lc LayerCost
	if ls.macs > 0 {
		eff := ls.effBase * c.Params.Clock.Hertz()
		lc.ComputeTime = units.Time(ls.macs / eff)
		lc.MACEnergy = c.Params.MACEnergy * units.Energy(ls.macs)
	}
	lc.DRAMTraffic = ls.dram
	lc.SRAMEnergy = c.sramEnergyPerByte() * units.Energy(ls.sram)
	lc.DRAMEnergy = c.Params.DRAMEnergyPerByte * units.Energy(ls.dram)
	lc.MemoryTime = units.Time(float64(ls.dram) / c.dramBandwidth().BytesPerSecond())

	// Partitioned configurations pay for the cut: every activation byte
	// crosses the die-to-die link. Monolithic configs take none of these
	// branches and stay bit-identical to the legacy path.
	d2, cut := c.d2d()
	if cut {
		lc.D2DEnergy = d2.energyPB * units.Energy(ls.sram)
		lc.D2DTime = units.Time(float64(ls.sram) / d2.bw)
	}

	lc.Time = lc.ComputeTime
	if lc.MemoryTime > lc.Time {
		lc.Time = lc.MemoryTime
	}
	if lc.D2DTime > lc.Time {
		lc.Time = lc.D2DTime
	}
	lc.Time += c.Params.LayerOverhead
	if cut {
		lc.Time += d2.hop
	}
	return lc
}

// LayerCost simulates one layer on the configuration.
func (c Config) LayerCost(l nn.Layer) LayerCost {
	return c.layerCostOf(c.layerShape(l))
}

// KernelProfile aggregates a whole network's simulation.
type KernelProfile struct {
	Kernel      nn.KernelID
	Delay       units.Time
	Energy      units.Energy // dynamic only; leakage is added at task level
	DRAMTraffic units.Bytes

	// Breakdown of time and dynamic energy.
	ComputeTime units.Time
	MemoryTime  units.Time
	MACEnergy   units.Energy
	SRAMEnergy  units.Energy
	DRAMEnergy  units.Energy
	D2DEnergy   units.Energy // zero for monolithic configurations
}

// Profile simulates a kernel end-to-end.
func (c Config) Profile(id nn.KernelID) (KernelProfile, error) {
	if err := c.Validate(); err != nil {
		return KernelProfile{}, err
	}
	net, err := nn.Kernel(id)
	if err != nil {
		return KernelProfile{}, err
	}
	p := KernelProfile{Kernel: id}
	for _, l := range net.Layers {
		lc := c.LayerCost(l)
		p.Delay += lc.Time
		p.Energy += lc.Energy()
		p.DRAMTraffic += lc.DRAMTraffic
		p.ComputeTime += lc.ComputeTime
		p.MemoryTime += lc.MemoryTime
		p.MACEnergy += lc.MACEnergy
		p.SRAMEnergy += lc.SRAMEnergy
		p.DRAMEnergy += lc.DRAMEnergy
		p.D2DEnergy += lc.D2DEnergy
	}
	return p, nil
}

// BandwidthRequirement returns the processor–memory bandwidth a kernel needs
// on this configuration to avoid memory stalls: the DRAM traffic per
// inference divided by the pure compute time. §V uses this quantity to show
// that growing the activation SRAM from 2 MB to 32 MB collapses the
// bandwidth demand of high-resolution super-resolution kernels back inside
// LPDDR4's 16 GB/s.
func (c Config) BandwidthRequirement(id nn.KernelID) (units.Bandwidth, error) {
	p, err := c.Profile(id)
	if err != nil {
		return 0, err
	}
	if p.ComputeTime <= 0 {
		return 0, fmt.Errorf("accel: kernel %s has no compute time on %s", id, c.ID)
	}
	return units.Bandwidth(float64(p.DRAMTraffic) / p.ComputeTime.Seconds()), nil
}

// KernelCost implements workload.Platform.
func (c Config) KernelCost(id nn.KernelID) (workload.KernelCost, error) {
	p, err := c.Profile(id)
	if err != nil {
		return workload.KernelCost{}, err
	}
	return workload.KernelCost{Delay: p.Delay, DynamicEnergy: p.Energy}, nil
}

// LeakagePower implements workload.Platform: static power of logic + SRAM.
func (c Config) LeakagePower() units.Power {
	return c.Params.BaseLeakage +
		c.Params.LeakagePerArray*units.Power(c.MACArrays) +
		c.Params.LeakagePerMB*units.Power(c.SRAM.InMB())
}

// LogicArea returns the logic-die area: control plus MAC arrays, plus — for
// 2D designs — the activation SRAM on the same die.
func (c Config) LogicArea() units.Area {
	a := c.coreLogicArea()
	if !c.Is3D {
		a += c.SRAMArea()
	}
	if c.Is3D {
		a *= units.Area(1 + c.Params.TSVAreaOverhead)
	}
	return a
}

// coreLogicArea is the MAC + control logic area, excluding the activation
// SRAM — the part a partition splits across compute chiplets.
func (c Config) coreLogicArea() units.Area {
	return c.Params.BaseArea + c.Params.AreaPerArray*units.Area(c.MACArrays)
}

// SRAMArea returns the silicon area of the activation memory.
func (c Config) SRAMArea() units.Area {
	return c.Params.AreaPerMB * units.Area(c.SRAM.InMB())
}

// MemDieArea returns the area of one stacked memory die (3D configs only):
// an equal share of the SRAM plus the TSV field overhead.
func (c Config) MemDieArea() units.Area {
	if !c.Is3D || c.MemDies == 0 {
		return 0
	}
	per := c.SRAMArea() / units.Area(c.MemDies)
	return per * units.Area(1+c.Params.TSVAreaOverhead)
}

// TotalArea returns the total silicon area across all dies.
func (c Config) TotalArea() units.Area {
	switch {
	case c.Partition.Active():
		return c.partitionArea()
	case c.Is3D:
		return c.LogicArea() + c.MemDieArea()*units.Area(c.MemDies)
	}
	return c.LogicArea()
}

// partitionArea sums the silicon across the dies of a partitioned
// configuration: the compute logic plus the memory chiplet rescaled to its
// node, each inflated by the integration's per-die overhead (TSV field for
// 3d, link PHY for 2.5d). The compute split cancels out of the sum — n
// chiplets of core/n·overhead total core·overhead.
func (c Config) partitionArea() units.Area {
	mem := c.SRAMArea() * units.Area(c.Partition.memScale())
	oh := units.Area(1 + c.Params.D2DAreaOverhead)
	if c.Partition.is3D() {
		oh = units.Area(1 + c.Params.TSVAreaOverhead)
	}
	return (c.coreLogicArea() + mem) * oh
}
