package accel

import (
	"cordoba/internal/carbon"
	"cordoba/internal/units"
)

// Embodied computes the manufacturing footprint of the configuration using
// eq. IV.5 with per-die Murphy yield, die placement on a 300 mm wafer, and
// packaging/bonding overheads.
//
// For 2D designs there is one die; for 3D designs the logic die and each
// memory die are fabricated (and yielded) separately — the yield advantage
// of several small dies over one large die is part of why 3D stacking can
// win on embodied carbon (§VI-E).
func (c Config) Embodied(p carbon.Process, fab carbon.Fab) (units.Carbon, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	model := carbon.MurphyYield{}
	dieCarbon := func(a units.Area) (units.Carbon, error) {
		y := model.Yield(a, fab.DefectDensity)
		return p.EmbodiedDie(fab, a, y)
	}

	total, err := dieCarbon(c.LogicArea())
	if err != nil {
		return 0, err
	}
	dice := 1
	if c.Is3D {
		mem, err := dieCarbon(c.MemDieArea())
		if err != nil {
			return 0, err
		}
		total += mem * units.Carbon(c.MemDies)
		dice += c.MemDies
	}
	pkging := carbon.Packaging{PerDie: c.Params.PackagingPerDie, PerBond: c.Params.PackagingPerBond}
	pkg, err := pkging.Assembly(dice)
	if err != nil {
		return 0, err
	}
	return total + pkg, nil
}

// EmbodiedDefault computes Embodied at the paper's anchor point: the 7 nm
// node in a coal-heavy fab (CI_fab = 820 g/kWh, Table III).
func (c Config) EmbodiedDefault() (units.Carbon, error) {
	return c.Embodied(carbon.Process7nm(), carbon.FabCoal)
}
