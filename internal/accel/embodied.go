package accel

import (
	"fmt"

	"cordoba/internal/carbon"
	"cordoba/internal/units"
)

// DesignSpec lowers the configuration onto the backend-neutral die/bond
// description that carbon.Model backends price: the logic die (for 2D
// designs including the on-die SRAM), the separately fabricated memory dies
// of a 3D stack, and the configuration's packaging constants. Configurations
// with an active Partition synthesize a multi-die, possibly mixed-node spec
// instead (see partitionSpec). The yield model is left unset — callers
// select it (nil means Murphy).
func (c Config) DesignSpec(p carbon.Process, fab carbon.Fab) (carbon.DesignSpec, error) {
	if err := c.Validate(); err != nil {
		return carbon.DesignSpec{}, err
	}
	if c.Partition.Active() {
		return c.partitionSpec(p, fab)
	}
	spec := carbon.DesignSpec{
		Name: c.ID,
		Fab:  fab,
		Dies: []carbon.DieSpec{{Name: "logic", Area: c.LogicArea(), Process: p}},
		Packaging: carbon.Packaging{
			PerDie:  c.Params.PackagingPerDie,
			PerBond: c.Params.PackagingPerBond,
		},
	}
	if c.Is3D {
		spec.Stacked = true
		spec.Dies = append(spec.Dies, carbon.DieSpec{
			Name:    "mem",
			Area:    c.MemDieArea(),
			Process: p,
			Count:   c.MemDies,
		})
	}
	return spec, nil
}

// partitionSpec synthesizes the multi-die carbon.DesignSpec of an explicitly
// partitioned configuration:
//
//   - 2.5d: Chiplets equal compute chiplets (core logic split n ways, each
//     inflated by the D2D PHY overhead) beside one memory chiplet carrying
//     the whole activation SRAM — fabricated on ChipletNode when set, the
//     mixed-node reuse lever. Priced side by side on the spec's Carrier.
//   - 3d: the core logic as the base tier with Chiplets memory tiers stacked
//     on top, every die inflated by the TSV-field overhead.
//
// Each die is yielded separately at its own node, so the split's yield
// advantage (many small dies beat one big die under Murphy/Poisson defect
// models) prices automatically in any backend.
func (c Config) partitionSpec(p carbon.Process, fab carbon.Fab) (carbon.DesignSpec, error) {
	memProc := p
	if n := c.Partition.ChipletNode; n != "" && n != p.Node {
		mp, err := carbon.ProcessByName(n)
		if err != nil {
			return carbon.DesignSpec{}, fmt.Errorf("accel: %s: chiplet node: %v", c.ID, err)
		}
		memProc = mp
	}
	memArea := c.SRAMArea() * units.Area(c.Partition.memScale())
	spec := carbon.DesignSpec{
		Name:        c.ID,
		Fab:         fab,
		Integration: c.Partition.Integration,
		Carrier:     c.Partition.Carrier,
		Packaging: carbon.Packaging{
			PerDie:  c.Params.PackagingPerDie,
			PerBond: c.Params.PackagingPerBond,
		},
	}
	n := c.Partition.count()
	switch c.Partition.Integration {
	case Integration25D:
		oh := units.Area(1 + c.Params.D2DAreaOverhead)
		spec.Dies = []carbon.DieSpec{
			{Name: "compute", Area: c.coreLogicArea() / units.Area(n) * oh, Process: p, Count: n},
			{Name: "mem", Area: memArea * oh, Process: memProc},
		}
	case Integration3D:
		spec.Stacked = true
		tsv := units.Area(1 + c.Params.TSVAreaOverhead)
		spec.Dies = []carbon.DieSpec{
			{Name: "logic", Area: c.coreLogicArea() * tsv, Process: p},
			{Name: "mem", Area: memArea / units.Area(n) * tsv, Process: memProc, Count: n},
		}
	}
	return spec, nil
}

// EmbodiedBreakdown prices the configuration through an embodied-carbon
// backend and yield model, returning the full component breakdown. A nil
// model selects ACT; a nil yield model selects Murphy — together the exact
// pre-refactor pipeline. Selecting carbon.Stacked3DModel gives 3D configs
// the full per-tier bonding treatment; carbon.ChipletModel disaggregates 2D
// dies into chiplets.
func (c Config) EmbodiedBreakdown(m carbon.Model, ym carbon.YieldModel, p carbon.Process, fab carbon.Fab) (carbon.Breakdown, error) {
	spec, err := c.DesignSpec(p, fab)
	if err != nil {
		return carbon.Breakdown{}, err
	}
	spec.Yield = ym
	if m == nil {
		m = carbon.DefaultModel()
	}
	return m.EmbodiedDesign(spec)
}

// EmbodiedWith is EmbodiedBreakdown reduced to the total footprint.
func (c Config) EmbodiedWith(m carbon.Model, ym carbon.YieldModel, p carbon.Process, fab carbon.Fab) (units.Carbon, error) {
	bd, err := c.EmbodiedBreakdown(m, ym, p, fab)
	if err != nil {
		return 0, err
	}
	return bd.Total, nil
}

// Embodied computes the manufacturing footprint of the configuration using
// eq. IV.5 with per-die Murphy yield and packaging/bonding overheads — the
// default ACT backend.
//
// For 2D designs there is one die; for 3D designs the logic die and each
// memory die are fabricated (and yielded) separately — the yield advantage
// of several small dies over one large die is part of why 3D stacking can
// win on embodied carbon (§VI-E).
func (c Config) Embodied(p carbon.Process, fab carbon.Fab) (units.Carbon, error) {
	return c.EmbodiedWith(nil, nil, p, fab)
}

// EmbodiedDefault computes Embodied at the paper's anchor point: the 7 nm
// node in a coal-heavy fab (CI_fab = 820 g/kWh, Table III).
func (c Config) EmbodiedDefault() (units.Carbon, error) {
	return c.Embodied(carbon.Process7nm(), carbon.FabCoal)
}
