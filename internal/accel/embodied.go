package accel

import (
	"cordoba/internal/carbon"
	"cordoba/internal/units"
)

// DesignSpec lowers the configuration onto the backend-neutral die/bond
// description that carbon.Model backends price: the logic die (for 2D
// designs including the on-die SRAM), the separately fabricated memory dies
// of a 3D stack, and the configuration's packaging constants. The yield
// model is left unset — callers select it (nil means Murphy).
func (c Config) DesignSpec(p carbon.Process, fab carbon.Fab) (carbon.DesignSpec, error) {
	if err := c.Validate(); err != nil {
		return carbon.DesignSpec{}, err
	}
	spec := carbon.DesignSpec{
		Name: c.ID,
		Fab:  fab,
		Dies: []carbon.DieSpec{{Name: "logic", Area: c.LogicArea(), Process: p}},
		Packaging: carbon.Packaging{
			PerDie:  c.Params.PackagingPerDie,
			PerBond: c.Params.PackagingPerBond,
		},
	}
	if c.Is3D {
		spec.Stacked = true
		spec.Dies = append(spec.Dies, carbon.DieSpec{
			Name:    "mem",
			Area:    c.MemDieArea(),
			Process: p,
			Count:   c.MemDies,
		})
	}
	return spec, nil
}

// EmbodiedBreakdown prices the configuration through an embodied-carbon
// backend and yield model, returning the full component breakdown. A nil
// model selects ACT; a nil yield model selects Murphy — together the exact
// pre-refactor pipeline. Selecting carbon.Stacked3DModel gives 3D configs
// the full per-tier bonding treatment; carbon.ChipletModel disaggregates 2D
// dies into chiplets.
func (c Config) EmbodiedBreakdown(m carbon.Model, ym carbon.YieldModel, p carbon.Process, fab carbon.Fab) (carbon.Breakdown, error) {
	spec, err := c.DesignSpec(p, fab)
	if err != nil {
		return carbon.Breakdown{}, err
	}
	spec.Yield = ym
	if m == nil {
		m = carbon.DefaultModel()
	}
	return m.EmbodiedDesign(spec)
}

// EmbodiedWith is EmbodiedBreakdown reduced to the total footprint.
func (c Config) EmbodiedWith(m carbon.Model, ym carbon.YieldModel, p carbon.Process, fab carbon.Fab) (units.Carbon, error) {
	bd, err := c.EmbodiedBreakdown(m, ym, p, fab)
	if err != nil {
		return 0, err
	}
	return bd.Total, nil
}

// Embodied computes the manufacturing footprint of the configuration using
// eq. IV.5 with per-die Murphy yield and packaging/bonding overheads — the
// default ACT backend.
//
// For 2D designs there is one die; for 3D designs the logic die and each
// memory die are fabricated (and yielded) separately — the yield advantage
// of several small dies over one large die is part of why 3D stacking can
// win on embodied carbon (§VI-E).
func (c Config) Embodied(p carbon.Process, fab carbon.Fab) (units.Carbon, error) {
	return c.EmbodiedWith(nil, nil, p, fab)
}

// EmbodiedDefault computes Embodied at the paper's anchor point: the 7 nm
// node in a coal-heavy fab (CI_fab = 820 g/kWh, Table III).
func (c Config) EmbodiedDefault() (units.Carbon, error) {
	return c.Embodied(carbon.Process7nm(), carbon.FabCoal)
}
