package accel

import (
	"testing"

	"cordoba/internal/nn"
	"cordoba/internal/units"
)

// TestShapeProfileCostBitwise holds the memoized replay path equal — bit for
// bit — to the direct simulator path, across the whole Fig. 8 grid, the 3D
// configurations, and knob-rescaled parameter sets.
func TestShapeProfileCostBitwise(t *testing.T) {
	configs := append(Grid(), Stacked3D()...)
	// A DVFS/node-style rescaled configuration: slower clock, cheaper ops,
	// different leakage — everything outside the ShapeKey.
	scaled := New("scaled", 48, units.MB(24))
	scaled.Params.Clock *= 0.6321
	scaled.Params.MACEnergy *= 0.7777
	scaled.Params.SRAMEnergyBase *= 0.7777
	scaled.Params.SRAMEnergySlope *= 0.7777
	scaled.Params.BaseLeakage *= 1.3
	configs = append(configs, scaled)

	for _, c := range configs {
		for _, id := range nn.AllKernels() {
			sp, err := c.ShapeProfile(id)
			if err != nil {
				t.Fatal(err)
			}
			if sp.Key != c.ShapeKey() {
				t.Fatalf("%s: profile key %+v != config key %+v", c.ID, sp.Key, c.ShapeKey())
			}
			direct, err := c.KernelCost(id)
			if err != nil {
				t.Fatal(err)
			}
			if replay := sp.Cost(c); replay != direct {
				t.Fatalf("%s/%s: replay %+v != direct %+v", c.ID, id, replay, direct)
			}
		}
	}
}

// TestShapeKeyInvariance: configs differing only in knob-scaled parameters
// share a ShapeKey; configs differing in shape fields do not.
func TestShapeKeyInvariance(t *testing.T) {
	a := New("a", 16, units.MB(8))
	b := New("b", 16, units.MB(8))
	b.Params.Clock *= 0.5
	b.Params.MACEnergy *= 0.5
	b.Params.BaseArea *= 2
	b.Is3D = true
	b.MemDies = 4
	if a.ShapeKey() != b.ShapeKey() {
		t.Error("knob-only differences must not change the ShapeKey")
	}
	c := New("c", 32, units.MB(8))
	if a.ShapeKey() == c.ShapeKey() {
		t.Error("MAC-array count must change the ShapeKey")
	}
	d := New("d", 16, units.MB(16))
	if a.ShapeKey() == d.ShapeKey() {
		t.Error("SRAM capacity must change the ShapeKey")
	}
	e := New("e", 16, units.MB(8))
	e.Params.TilingPenalty *= 2
	if a.ShapeKey() == e.ShapeKey() {
		t.Error("tiling penalty must change the ShapeKey")
	}
}

// TestShapeProfileReplayFasterPath sanity-checks that a 3D config replays
// correctly too: Is3D changes SRAM energy and bandwidth but not the key, so
// a profile computed on the 2D twin replays on the 3D one.
func TestShapeProfileReplayAcross3D(t *testing.T) {
	flat := New("flat", 16, units.MB(8))
	stacked := flat
	stacked.ID = "stacked"
	stacked.Is3D = true
	stacked.MemDies = 4
	for _, id := range nn.AllKernels() {
		sp, err := flat.ShapeProfile(id)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := stacked.KernelCost(id)
		if err != nil {
			t.Fatal(err)
		}
		if replay := sp.Cost(stacked); replay != direct {
			t.Fatalf("%s: 3D replay %+v != direct %+v", id, replay, direct)
		}
	}
}
