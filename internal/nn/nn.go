// Package nn is the neural-network substrate of the accelerator studies:
// a layer-level intermediate representation with shape inference and
// MAC/parameter/activation accounting, plus builders for the fifteen AI and
// XR kernels the paper evaluates (§V, Table IV).
//
// The paper feeds PyTorch models into its accelerator simulator; here the
// same information — per-layer multiply-accumulate counts, weight sizes and
// activation working sets — is derived analytically from the published layer
// configurations. Tensors are assumed quantized to one byte per element
// (INT8), the usual deployment precision of the CICC'22 accelerator [48]
// that Fig. 5's simulator models.
package nn

import (
	"fmt"

	"cordoba/internal/units"
)

// BytesPerElement is the tensor element size (INT8 deployment precision).
const BytesPerElement = 1

// OpKind identifies a layer's operation.
type OpKind int

// Supported layer operations.
const (
	OpConv OpKind = iota
	OpDepthwiseConv
	OpFC
	OpPool
	OpGlobalPool
	OpUpsample
	OpEltwise
)

// String returns the operation name.
func (k OpKind) String() string {
	switch k {
	case OpConv:
		return "conv"
	case OpDepthwiseConv:
		return "dwconv"
	case OpFC:
		return "fc"
	case OpPool:
		return "pool"
	case OpGlobalPool:
		return "gap"
	case OpUpsample:
		return "upsample"
	case OpEltwise:
		return "eltwise"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Layer is one operation with resolved input/output shapes. All spatial
// shapes are (channels, height, width).
type Layer struct {
	Name string
	Kind OpKind

	InC, InH, InW    int
	OutC, OutH, OutW int

	Kernel, Stride, Pad int

	// Inputs is the number of activation operands (2 for eltwise add).
	Inputs int
}

// MACs returns the multiply-accumulate count of the layer.
func (l Layer) MACs() float64 {
	out := float64(l.OutH * l.OutW)
	switch l.Kind {
	case OpConv:
		return float64(l.Kernel*l.Kernel) * float64(l.InC) * float64(l.OutC) * out
	case OpDepthwiseConv:
		return float64(l.Kernel*l.Kernel) * float64(l.OutC) * out
	case OpFC:
		return float64(l.InC) * float64(l.OutC)
	default:
		return 0
	}
}

// Params returns the number of weight parameters of the layer.
func (l Layer) Params() float64 {
	switch l.Kind {
	case OpConv:
		return float64(l.Kernel*l.Kernel)*float64(l.InC)*float64(l.OutC) + float64(l.OutC)
	case OpDepthwiseConv:
		return float64(l.Kernel*l.Kernel)*float64(l.OutC) + float64(l.OutC)
	case OpFC:
		return float64(l.InC)*float64(l.OutC) + float64(l.OutC)
	default:
		return 0
	}
}

// InputBytes returns the total activation bytes read by the layer.
func (l Layer) InputBytes() units.Bytes {
	n := l.Inputs
	if n == 0 {
		n = 1
	}
	return units.Bytes(n * l.InC * l.InH * l.InW * BytesPerElement)
}

// OutputBytes returns the activation bytes produced by the layer.
func (l Layer) OutputBytes() units.Bytes {
	return units.Bytes(l.OutC * l.OutH * l.OutW * BytesPerElement)
}

// WorkingSet returns the activation working set of the layer: inputs plus
// output live at once.
func (l Layer) WorkingSet() units.Bytes {
	return l.InputBytes() + l.OutputBytes()
}

// WeightBytes returns the weight footprint of the layer.
func (l Layer) WeightBytes() units.Bytes {
	return units.Bytes(l.Params() * BytesPerElement)
}

// Network is an ordered list of layers with a fixed input shape.
type Network struct {
	Name                   string
	InputC, InputH, InputW int
	Layers                 []Layer
}

// Stats aggregates a network's compute and memory demands.
type Stats struct {
	MACs              float64     // total multiply-accumulates per inference
	Params            float64     // total weights
	WeightBytes       units.Bytes // weight footprint
	PeakActivation    units.Bytes // largest per-layer working set
	ActivationTraffic units.Bytes // sum of per-layer inputs+outputs
	Layers            int
}

// Stats computes the aggregate statistics of the network.
func (n *Network) Stats() Stats {
	var s Stats
	s.Layers = len(n.Layers)
	for _, l := range n.Layers {
		s.MACs += l.MACs()
		s.Params += l.Params()
		s.WeightBytes += l.WeightBytes()
		if ws := l.WorkingSet(); ws > s.PeakActivation {
			s.PeakActivation = ws
		}
		s.ActivationTraffic += l.WorkingSet()
	}
	return s
}

// Validate checks that layer shapes chain correctly.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("nn: network %q has no layers", n.Name)
	}
	for i, l := range n.Layers {
		if l.InC <= 0 || l.InH <= 0 || l.InW <= 0 || l.OutC <= 0 || l.OutH <= 0 || l.OutW <= 0 {
			return fmt.Errorf("nn: %s layer %d (%s) has non-positive shape %+v", n.Name, i, l.Name, l)
		}
	}
	return nil
}

// convOut computes the output spatial size of a convolution or pool. It
// returns 0 when the kernel does not fit in the padded input (Go's truncated
// division would otherwise round the negative numerator up to a spurious 1).
func convOut(in, kernel, stride, pad int) int {
	span := in + 2*pad - kernel
	if span < 0 {
		return 0
	}
	return span/stride + 1
}

// Builder incrementally constructs a Network, tracking the current tensor
// shape. Builders panic on malformed topologies: builders run at package
// init/test time with fixed inputs, so a malformed model is a programming
// error, not an input error.
type Builder struct {
	net     Network
	c, h, w int
}

// NewBuilder starts a network with the given input shape.
func NewBuilder(name string, c, h, w int) *Builder {
	if c <= 0 || h <= 0 || w <= 0 {
		panic(fmt.Sprintf("nn: invalid input shape %dx%dx%d for %s", c, h, w, name))
	}
	return &Builder{net: Network{Name: name, InputC: c, InputH: h, InputW: w}, c: c, h: h, w: w}
}

// Shape returns the current (channels, height, width).
func (b *Builder) Shape() (c, h, w int) { return b.c, b.h, b.w }

func (b *Builder) push(l Layer) {
	b.net.Layers = append(b.net.Layers, l)
	b.c, b.h, b.w = l.OutC, l.OutH, l.OutW
}

// Conv appends a square convolution.
func (b *Builder) Conv(name string, outC, kernel, stride, pad int) *Builder {
	oh := convOut(b.h, kernel, stride, pad)
	ow := convOut(b.w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: conv %s collapses %dx%d to %dx%d", name, b.h, b.w, oh, ow))
	}
	b.push(Layer{Name: name, Kind: OpConv, InC: b.c, InH: b.h, InW: b.w,
		OutC: outC, OutH: oh, OutW: ow, Kernel: kernel, Stride: stride, Pad: pad})
	return b
}

// DWConv appends a depthwise convolution (channel count preserved).
func (b *Builder) DWConv(name string, kernel, stride, pad int) *Builder {
	oh := convOut(b.h, kernel, stride, pad)
	ow := convOut(b.w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: dwconv %s collapses %dx%d", name, b.h, b.w))
	}
	b.push(Layer{Name: name, Kind: OpDepthwiseConv, InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: oh, OutW: ow, Kernel: kernel, Stride: stride, Pad: pad})
	return b
}

// Pool appends a max/avg pooling layer.
func (b *Builder) Pool(name string, kernel, stride, pad int) *Builder {
	oh := convOut(b.h, kernel, stride, pad)
	ow := convOut(b.w, kernel, stride, pad)
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: pool %s collapses %dx%d", name, b.h, b.w))
	}
	b.push(Layer{Name: name, Kind: OpPool, InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: oh, OutW: ow, Kernel: kernel, Stride: stride, Pad: pad})
	return b
}

// GlobalPool appends global average pooling to 1×1.
func (b *Builder) GlobalPool(name string) *Builder {
	b.push(Layer{Name: name, Kind: OpGlobalPool, InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: 1, OutW: 1, Kernel: b.h, Stride: 1})
	return b
}

// FC appends a fully connected layer over the flattened input.
func (b *Builder) FC(name string, out int) *Builder {
	in := b.c * b.h * b.w
	b.push(Layer{Name: name, Kind: OpFC, InC: in, InH: 1, InW: 1,
		OutC: out, OutH: 1, OutW: 1, Kernel: 1, Stride: 1})
	return b
}

// Upsample appends a nearest-neighbour spatial upsample by the given factor.
func (b *Builder) Upsample(name string, factor int) *Builder {
	b.push(Layer{Name: name, Kind: OpUpsample, InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: b.h * factor, OutW: b.w * factor, Kernel: factor, Stride: 1})
	return b
}

// Residual runs body from the current shape and adds the result back to the
// skip connection (an eltwise add). When the body changes the shape, a 1×1
// projection convolution on the skip path is inserted automatically, as in
// ResNet downsampling blocks.
func (b *Builder) Residual(name string, body func(*Builder)) *Builder {
	skipC, skipH, skipW := b.c, b.h, b.w
	body(b)
	if b.c != skipC || b.h != skipH || b.w != skipW {
		stride := skipH / b.h
		if stride < 1 {
			panic(fmt.Sprintf("nn: residual %s body upsampled the skip path", name))
		}
		proj := Layer{Name: name + ".proj", Kind: OpConv,
			InC: skipC, InH: skipH, InW: skipW,
			OutC: b.c, OutH: b.h, OutW: b.w, Kernel: 1, Stride: stride}
		// Insert the projection without disturbing the main shape.
		b.net.Layers = append(b.net.Layers, proj)
	}
	b.push(Layer{Name: name + ".add", Kind: OpEltwise, InC: b.c, InH: b.h, InW: b.w,
		OutC: b.c, OutH: b.h, OutW: b.w, Kernel: 1, Stride: 1, Inputs: 2})
	return b
}

// Branch runs each body from the current shape and concatenates the results
// along the channel dimension. All bodies must preserve the spatial size or
// reduce it identically.
func (b *Builder) Branch(name string, bodies ...func(*Builder)) *Builder {
	if len(bodies) == 0 {
		panic("nn: Branch needs at least one body")
	}
	startC, startH, startW := b.c, b.h, b.w
	totalC, outH, outW := 0, -1, -1
	for i, body := range bodies {
		b.c, b.h, b.w = startC, startH, startW
		body(b)
		if outH == -1 {
			outH, outW = b.h, b.w
		} else if b.h != outH || b.w != outW {
			panic(fmt.Sprintf("nn: branch %s body %d produced %dx%d, want %dx%d", name, i, b.h, b.w, outH, outW))
		}
		totalC += b.c
	}
	b.c, b.h, b.w = totalC, outH, outW
	return b
}

// Build validates and returns the network.
func (b *Builder) Build() *Network {
	n := b.net
	if err := n.Validate(); err != nil {
		panic(err)
	}
	return &n
}
