package nn

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cordoba/internal/units"
)

// ArithmeticIntensity returns the layer's MACs per byte of activation+weight
// traffic — the roofline x-coordinate that determines whether the layer is
// compute- or memory-bound on a given accelerator.
func (l Layer) ArithmeticIntensity() float64 {
	bytes := float64(l.WorkingSet() + l.WeightBytes())
	if bytes == 0 {
		return 0
	}
	return l.MACs() / bytes
}

// ArithmeticIntensity returns the network-level MACs per byte.
func (s Stats) ArithmeticIntensity() float64 {
	bytes := float64(s.ActivationTraffic + s.WeightBytes)
	if bytes == 0 {
		return 0
	}
	return s.MACs / bytes
}

// Describe writes a per-layer table of the network: shapes, MACs, parameters
// and working sets — the profile view the paper's simulator consumes.
func (n *Network) Describe(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (input %dx%dx%d)\n", n.Name, n.InputC, n.InputH, n.InputW)
	fmt.Fprintf(&b, "%-24s %-8s %-14s %-14s %12s %12s %14s\n",
		"layer", "op", "in", "out", "MMACs", "params", "working set")
	for _, l := range n.Layers {
		fmt.Fprintf(&b, "%-24s %-8s %-14s %-14s %12.2f %12.0f %14s\n",
			truncate(l.Name, 24), l.Kind.String(),
			fmt.Sprintf("%dx%dx%d", l.InC, l.InH, l.InW),
			fmt.Sprintf("%dx%dx%d", l.OutC, l.OutH, l.OutW),
			l.MACs()/1e6, l.Params(), l.WorkingSet().String())
	}
	s := n.Stats()
	fmt.Fprintf(&b, "total: %.2f GMACs, %.2f M params, peak activation %s, intensity %.1f MACs/B\n",
		s.MACs/1e9, s.Params/1e6, s.PeakActivation, s.ArithmeticIntensity())
	_, err := io.WriteString(w, b.String())
	return err
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// HeaviestLayers returns the k layers with the largest working sets, largest
// first — the layers that size the activation SRAM (§V).
func (n *Network) HeaviestLayers(k int) []Layer {
	layers := append([]Layer(nil), n.Layers...)
	// Insertion-sort by working set; layer counts are small.
	for i := 1; i < len(layers); i++ {
		for j := i; j > 0 && layers[j].WorkingSet() > layers[j-1].WorkingSet(); j-- {
			layers[j], layers[j-1] = layers[j-1], layers[j]
		}
	}
	if k > len(layers) {
		k = len(layers)
	}
	return layers[:k]
}

// SRAMToFit returns the smallest activation SRAM (in whole MiB) that
// contains every layer's working set — the §V provisioning question.
func (n *Network) SRAMToFit() units.Bytes {
	peak := n.Stats().PeakActivation
	return units.MB(math.Ceil(peak.InMB()))
}
