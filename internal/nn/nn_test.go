package nn

import (
	"math"
	"strings"
	"testing"

	"cordoba/internal/units"
)

func TestConvLayerAccounting(t *testing.T) {
	b := NewBuilder("t", 3, 224, 224)
	b.Conv("conv1", 64, 7, 2, 3)
	n := b.Build()
	l := n.Layers[0]
	if l.OutH != 112 || l.OutW != 112 {
		t.Fatalf("conv output = %dx%d, want 112x112", l.OutH, l.OutW)
	}
	wantMACs := 7.0 * 7 * 3 * 64 * 112 * 112
	if l.MACs() != wantMACs {
		t.Errorf("MACs = %v, want %v", l.MACs(), wantMACs)
	}
	wantParams := 7.0*7*3*64 + 64
	if l.Params() != wantParams {
		t.Errorf("params = %v, want %v", l.Params(), wantParams)
	}
	if l.InputBytes() != units.Bytes(3*224*224) {
		t.Errorf("input bytes = %v", l.InputBytes())
	}
	if l.OutputBytes() != units.Bytes(64*112*112) {
		t.Errorf("output bytes = %v", l.OutputBytes())
	}
	if l.WorkingSet() != l.InputBytes()+l.OutputBytes() {
		t.Error("working set mismatch")
	}
}

func TestDepthwiseAndFCAccounting(t *testing.T) {
	b := NewBuilder("t", 32, 56, 56)
	b.DWConv("dw", 3, 1, 1).FC("fc", 10)
	n := b.Build()
	dw := n.Layers[0]
	if dw.MACs() != 3*3*32*56*56 {
		t.Errorf("dw MACs = %v", dw.MACs())
	}
	fc := n.Layers[1]
	if fc.InC != 32*56*56 {
		t.Errorf("fc input = %v", fc.InC)
	}
	if fc.MACs() != float64(32*56*56*10) {
		t.Errorf("fc MACs = %v", fc.MACs())
	}
}

func TestPoolUpsampleEltwiseHaveNoMACs(t *testing.T) {
	b := NewBuilder("t", 8, 32, 32)
	b.Pool("p", 2, 2, 0).Upsample("u", 2).GlobalPool("g")
	n := b.Build()
	for _, l := range n.Layers {
		if l.MACs() != 0 || l.Params() != 0 {
			t.Errorf("%s should have no MACs/params", l.Name)
		}
	}
}

func TestResidualInsertsProjection(t *testing.T) {
	b := NewBuilder("t", 64, 56, 56)
	b.Residual("blk", func(b *Builder) {
		b.Conv("c1", 128, 3, 2, 1)
	})
	n := b.Build()
	var haveProj, haveAdd bool
	for _, l := range n.Layers {
		if strings.HasSuffix(l.Name, ".proj") {
			haveProj = true
			if l.Stride != 2 || l.Kernel != 1 || l.OutC != 128 {
				t.Errorf("projection misconfigured: %+v", l)
			}
		}
		if l.Kind == OpEltwise {
			haveAdd = true
			if l.Inputs != 2 {
				t.Errorf("eltwise should have 2 inputs")
			}
		}
	}
	if !haveProj || !haveAdd {
		t.Fatalf("residual with shape change needs proj+add, got %v", n.Layers)
	}
	// Identity residual has no projection.
	b2 := NewBuilder("t2", 64, 56, 56)
	b2.Residual("blk", func(b *Builder) { b.Conv("c1", 64, 3, 1, 1) })
	for _, l := range b2.Build().Layers {
		if strings.HasSuffix(l.Name, ".proj") {
			t.Error("identity residual should not project")
		}
	}
}

func TestBranchConcatenatesChannels(t *testing.T) {
	b := NewBuilder("t", 16, 28, 28)
	b.Branch("inc",
		func(b *Builder) { b.Conv("a", 8, 1, 1, 0) },
		func(b *Builder) { b.Conv("b", 24, 3, 1, 1) },
	)
	c, h, w := b.Shape()
	if c != 32 || h != 28 || w != 28 {
		t.Fatalf("branch output = %d,%d,%d", c, h, w)
	}
}

func TestBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad input", func() { NewBuilder("x", 0, 1, 1) })
	mustPanic("collapsing conv", func() {
		NewBuilder("x", 3, 4, 4).Conv("c", 8, 7, 1, 0)
	})
	mustPanic("collapsing pool", func() {
		NewBuilder("x", 3, 2, 2).Pool("p", 4, 4, 0)
	})
	mustPanic("empty branch", func() {
		NewBuilder("x", 3, 8, 8).Branch("b")
	})
	mustPanic("mismatched branch", func() {
		NewBuilder("x", 3, 8, 8).Branch("b",
			func(b *Builder) { b.Conv("a", 4, 1, 1, 0) },
			func(b *Builder) { b.Pool("p", 2, 2, 0) },
		)
	})
	mustPanic("upsampling residual", func() {
		NewBuilder("x", 3, 8, 8).Residual("r", func(b *Builder) { b.Upsample("u", 2) })
	})
	mustPanic("empty build", func() { NewBuilder("x", 1, 1, 1).Build() })
}

func TestOpKindStrings(t *testing.T) {
	for k := OpConv; k <= OpEltwise; k++ {
		if k.String() == "" {
			t.Errorf("op %d has empty name", int(k))
		}
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Error("unknown op string")
	}
}

// ---- the fifteen kernels ----

func TestAllKernelsBuildAndValidate(t *testing.T) {
	ids := AllKernels()
	if len(ids) != 15 {
		t.Fatalf("expected 15 kernels, got %d", len(ids))
	}
	for _, id := range ids {
		n, err := Kernel(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		s := n.Stats()
		if s.MACs <= 0 || s.Params <= 0 || s.PeakActivation <= 0 {
			t.Errorf("%s: degenerate stats %+v", id, s)
		}
	}
}

func TestKernelCacheAndErrors(t *testing.T) {
	a, _ := Kernel(RN18)
	b, _ := Kernel(RN18)
	if a != b {
		t.Error("kernel cache should return the same instance")
	}
	if _, err := Kernel("nope"); err == nil {
		t.Error("unknown kernel should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustKernel should panic on unknown id")
		}
	}()
	MustKernel("nope")
}

func TestSortedKernelIDs(t *testing.T) {
	ids := SortedKernelIDs()
	for i := 1; i < len(ids); i++ {
		if ids[i] < ids[i-1] {
			t.Fatalf("not sorted at %d", i)
		}
	}
	if len(ids) != 15 {
		t.Fatalf("len = %d", len(ids))
	}
}

// Published MAC counts for the standard backbones at 224²: ResNet-18 ≈1.82 G,
// ResNet-50 ≈4.1 G, ResNet-152 ≈11.6 G, GoogLeNet ≈1.5 G, MobileNet-V2 ≈0.31 G.
// The layer IR should land within 15 % of each.
func TestBackboneMACCounts(t *testing.T) {
	want := map[KernelID]float64{
		RN18:  1.82e9,
		RN50:  4.1e9,
		RN152: 11.6e9,
		GN:    1.5e9,
		MN2:   0.31e9,
	}
	for id, macs := range want {
		got := MustKernel(id).Stats().MACs
		if math.Abs(got-macs) > 0.15*macs {
			t.Errorf("%s: MACs = %.3g, want ≈%.3g", id, got, macs)
		}
	}
}

// Published parameter counts: RN-18 ≈11.7 M, RN-50 ≈25.6 M, RN-152 ≈60 M,
// MN2 ≈3.5 M.
func TestBackboneParamCounts(t *testing.T) {
	want := map[KernelID]float64{
		RN18:  11.7e6,
		RN50:  25.6e6,
		RN152: 60e6,
		MN2:   3.5e6,
	}
	for id, params := range want {
		got := MustKernel(id).Stats().Params
		if math.Abs(got-params) > 0.15*params {
			t.Errorf("%s: params = %.3g, want ≈%.3g", id, got, params)
		}
	}
}

// §V: XR kernels with high activation requirements (depth estimation, image
// denoising, super-resolution) must dwarf the classification backbones.
func TestActivationMemoryCategorization(t *testing.T) {
	peak := func(id KernelID) units.Bytes { return MustKernel(id).Stats().PeakActivation }
	heavy := []KernelID{Agg3D, HRN, DN, UNet, SR512, SR1024}
	light := []KernelID{RN18, RN50, RN152, GN, MN2, ET, JLP}
	minHeavy := units.Bytes(math.Inf(1))
	for _, id := range heavy {
		if p := peak(id); p < minHeavy {
			minHeavy = p
		}
	}
	for _, id := range light {
		if p := peak(id); p >= minHeavy {
			t.Errorf("%s peak activation %v should be below the lightest heavy kernel %v", id, p, minHeavy)
		}
	}
	// Heavy kernels must exceed 2 MB (the paper's small-SRAM threshold).
	for _, id := range heavy {
		if p := peak(id); p < 2*units.MiB {
			t.Errorf("%s peak activation %v should exceed 2 MiB", id, p)
		}
	}
}

// §V: super-resolution working sets grow with resolution; SR-1024 must
// exceed 16 MB so that even large on-chip SRAM barely contains it.
func TestSuperResolutionScaling(t *testing.T) {
	p256 := MustKernel(SR256).Stats().PeakActivation
	p512 := MustKernel(SR512).Stats().PeakActivation
	p1024 := MustKernel(SR1024).Stats().PeakActivation
	if !(p256 < p512 && p512 < p1024) {
		t.Fatalf("SR peaks not increasing: %v %v %v", p256, p512, p1024)
	}
	ratio := float64(p1024) / float64(p256)
	if math.Abs(ratio-16) > 0.5 {
		t.Errorf("SR-1024/SR-256 peak ratio = %v, want ≈16 (quadratic in resolution)", ratio)
	}
	if p1024 < 16*units.MiB {
		t.Errorf("SR-1024 peak = %v, want > 16 MiB", p1024)
	}
}

func TestStatsAggregation(t *testing.T) {
	n := MustKernel(RN18)
	s := n.Stats()
	if s.Layers != len(n.Layers) {
		t.Errorf("layer count mismatch")
	}
	var macs float64
	for _, l := range n.Layers {
		macs += l.MACs()
	}
	if macs != s.MACs {
		t.Errorf("MAC aggregation mismatch")
	}
	if s.WeightBytes != units.Bytes(s.Params*BytesPerElement) {
		t.Errorf("weight bytes = %v, params = %v", s.WeightBytes, s.Params)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	n := &Network{Name: "bad", Layers: []Layer{{Name: "x", InC: 0, InH: 1, InW: 1, OutC: 1, OutH: 1, OutW: 1}}}
	if err := n.Validate(); err == nil {
		t.Error("expected validation error")
	}
	empty := &Network{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty network should be invalid")
	}
}

func TestArithmeticIntensity(t *testing.T) {
	// Depthwise-separable MobileNet-V2 has far less reuse per byte than the
	// dense-convolution ResNet-50.
	rn50 := MustKernel(RN50).Stats().ArithmeticIntensity()
	mn2 := MustKernel(MN2).Stats().ArithmeticIntensity()
	if rn50 <= 0 || mn2 <= 0 {
		t.Fatal("degenerate intensities")
	}
	if mn2 >= rn50 {
		t.Errorf("MN2 intensity (%.1f) should be below RN-50 (%.1f)", mn2, rn50)
	}
	// SR-1024 is capacity-bound, not traffic-bound: high intensity but a
	// working set beyond even large SRAMs.
	sr := MustKernel(SR1024).Stats()
	if sr.ArithmeticIntensity() <= 0 {
		t.Fatal("degenerate SR intensity")
	}
	if float64(sr.PeakActivation) < 20*float64(sr.WeightBytes) {
		t.Errorf("SR-1024 activations (%v) should dwarf its weights (%v)", sr.PeakActivation, sr.WeightBytes)
	}
	// Layer-level: pools have zero MACs, hence zero intensity.
	for _, l := range MustKernel(RN18).Layers {
		if l.Kind == OpPool && l.ArithmeticIntensity() != 0 {
			t.Errorf("pool layer %s has nonzero intensity", l.Name)
		}
	}
	var zero Stats
	if zero.ArithmeticIntensity() != 0 {
		t.Error("zero stats intensity should be 0")
	}
}

func TestDescribe(t *testing.T) {
	var b strings.Builder
	if err := MustKernel(MN2).Describe(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"MN2", "conv1", "GMACs", "dwconv", "working set"} {
		if !strings.Contains(out, want) {
			t.Errorf("describe output missing %q", want)
		}
	}
	// One line per layer plus header/footer lines.
	if lines := strings.Count(out, "\n"); lines != len(MustKernel(MN2).Layers)+3 {
		t.Errorf("describe lines = %d, want %d", lines, len(MustKernel(MN2).Layers)+3)
	}
}

func TestHeaviestLayers(t *testing.T) {
	net := MustKernel(SR512)
	top := net.HeaviestLayers(3)
	if len(top) != 3 {
		t.Fatalf("got %d layers", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].WorkingSet() > top[i-1].WorkingSet() {
			t.Error("heaviest layers not sorted")
		}
	}
	// The heaviest layer bounds the peak activation.
	if top[0].WorkingSet() != net.Stats().PeakActivation {
		t.Error("heaviest layer should equal peak activation")
	}
	if got := net.HeaviestLayers(10_000); len(got) != len(net.Layers) {
		t.Error("overlong k should clamp")
	}
}

func TestSRAMToFit(t *testing.T) {
	for _, id := range AllKernels() {
		net := MustKernel(id)
		fit := net.SRAMToFit()
		if fit < net.Stats().PeakActivation {
			t.Errorf("%s: SRAMToFit %v below peak %v", id, fit, net.Stats().PeakActivation)
		}
		if fit-net.Stats().PeakActivation >= units.MiB+1 {
			t.Errorf("%s: SRAMToFit %v over-rounds peak %v", id, fit, net.Stats().PeakActivation)
		}
	}
}
