package nn

import (
	"fmt"
	"sort"
	"sync"
)

// KernelID names one of the fifteen AI/XR kernels of paper §V.
type KernelID string

// The fifteen kernels of Table IV.
const (
	RN18   KernelID = "RN-18"        // ResNet-18 [23]
	RN50   KernelID = "RN-50"        // ResNet-50 [23]
	RN152  KernelID = "RN-152"       // ResNet-152 [23]
	GN     KernelID = "GN"           // GoogleNet [51]
	MN2    KernelID = "MN2"          // MobileNet-V2 [43]
	ET     KernelID = "ET"           // eye tracking (SegNet) [4]
	Agg3D  KernelID = "3D-Agg"       // depth estimation [30]
	HRN    KernelID = "HRN"          // depth estimation / high-resolution net [49]
	EFAN   KernelID = "E-FAN"        // emotion detection [52]
	JLP    KernelID = "JLP"          // hand tracking [33]
	UNet   KernelID = "UNet"         // image denoising [40]
	DN     KernelID = "DN"           // image denoising [55]
	SR256  KernelID = "SR-256x256"   // super-resolution 256² [5]
	SR512  KernelID = "SR-512x512"   // super-resolution 512² [5]
	SR1024 KernelID = "SR-1024x1024" // super-resolution 1024² [5]
)

// allKernels is the canonical kernel order. AllKernels hands out copies;
// hot paths index it through KernelIndex/NumKernels without allocating.
var allKernels = [...]KernelID{
	RN18, RN50, RN152, GN, MN2, ET, Agg3D, HRN,
	EFAN, JLP, UNet, DN, SR256, SR512, SR1024,
}

var kernelIndex = func() map[KernelID]int {
	m := make(map[KernelID]int, len(allKernels))
	for i, id := range allKernels {
		m[id] = i
	}
	return m
}()

// AllKernels returns every kernel ID in a stable order.
func AllKernels() []KernelID {
	out := make([]KernelID, len(allKernels))
	copy(out, allKernels[:])
	return out
}

// NumKernels returns the size of the canonical kernel set.
func NumKernels() int { return len(allKernels) }

// KernelIndex returns a kernel's position in AllKernels order — the dense
// index the DSE engine keys its per-worker scratch with — and whether the
// kernel is known.
func KernelIndex(id KernelID) (int, bool) {
	i, ok := kernelIndex[id]
	return i, ok
}

// KernelAt returns the kernel at a dense index (the inverse of KernelIndex).
func KernelAt(i int) KernelID { return allKernels[i] }

var (
	kernelMu    sync.Mutex
	kernelCache = map[KernelID]*Network{}
)

// Kernel builds (and caches) the network for a kernel ID.
func Kernel(id KernelID) (*Network, error) {
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if n, ok := kernelCache[id]; ok {
		return n, nil
	}
	builder, ok := kernelBuilders[id]
	if !ok {
		return nil, fmt.Errorf("nn: unknown kernel %q", id)
	}
	n := builder()
	kernelCache[id] = n
	return n, nil
}

// MustKernel is Kernel for static IDs; it panics on unknown IDs.
func MustKernel(id KernelID) *Network {
	n, err := Kernel(id)
	if err != nil {
		panic(err)
	}
	return n
}

var kernelBuilders = map[KernelID]func() *Network{
	RN18:   buildResNet18,
	RN50:   func() *Network { return buildResNetBottleneck("RN-50", []int{3, 4, 6, 3}) },
	RN152:  func() *Network { return buildResNetBottleneck("RN-152", []int{3, 8, 36, 3}) },
	GN:     buildGoogLeNet,
	MN2:    buildMobileNetV2,
	ET:     buildEyeTrackingSegNet,
	Agg3D:  build3DAgg,
	HRN:    buildHRNet,
	EFAN:   buildEFAN,
	JLP:    buildJLP,
	UNet:   buildUNet,
	DN:     buildDN,
	SR256:  func() *Network { return buildSR("SR-256x256", 256) },
	SR512:  func() *Network { return buildSR("SR-512x512", 512) },
	SR1024: func() *Network { return buildSR("SR-1024x1024", 1024) },
}

// SortedKernelIDs returns the kernel IDs sorted lexicographically (useful for
// deterministic table output).
func SortedKernelIDs() []KernelID {
	ids := AllKernels()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ---- classification backbones (the AI kernels) ----

func buildResNet18() *Network {
	b := NewBuilder("RN-18", 3, 224, 224)
	b.Conv("conv1", 64, 7, 2, 3).Pool("maxpool", 3, 2, 1)
	widths := []int{64, 128, 256, 512}
	for si, w := range widths {
		for blk := 0; blk < 2; blk++ {
			stride := 1
			if si > 0 && blk == 0 {
				stride = 2
			}
			name := fmt.Sprintf("layer%d.%d", si+1, blk)
			w := w
			b.Residual(name, func(b *Builder) {
				b.Conv(name+".conv1", w, 3, stride, 1)
				b.Conv(name+".conv2", w, 3, 1, 1)
			})
		}
	}
	b.GlobalPool("avgpool").FC("fc", 1000)
	return b.Build()
}

func buildResNetBottleneck(name string, blocks []int) *Network {
	b := NewBuilder(name, 3, 224, 224)
	b.Conv("conv1", 64, 7, 2, 3).Pool("maxpool", 3, 2, 1)
	widths := []int{64, 128, 256, 512}
	for si, w := range widths {
		for blk := 0; blk < blocks[si]; blk++ {
			stride := 1
			if si > 0 && blk == 0 {
				stride = 2
			}
			bn := fmt.Sprintf("layer%d.%d", si+1, blk)
			w := w
			b.Residual(bn, func(b *Builder) {
				b.Conv(bn+".conv1", w, 1, 1, 0)
				b.Conv(bn+".conv2", w, 3, stride, 1)
				b.Conv(bn+".conv3", 4*w, 1, 1, 0)
			})
		}
	}
	b.GlobalPool("avgpool").FC("fc", 1000)
	return b.Build()
}

// inception appends one GoogLeNet inception module with the standard
// four-branch channel configuration.
func inception(b *Builder, name string, c1, c3r, c3, c5r, c5, pp int) {
	b.Branch(name,
		func(b *Builder) { b.Conv(name+".b1", c1, 1, 1, 0) },
		func(b *Builder) {
			b.Conv(name+".b2r", c3r, 1, 1, 0).Conv(name+".b2", c3, 3, 1, 1)
		},
		func(b *Builder) {
			b.Conv(name+".b3r", c5r, 1, 1, 0).Conv(name+".b3", c5, 5, 1, 2)
		},
		func(b *Builder) {
			b.Pool(name+".b4p", 3, 1, 1).Conv(name+".b4", pp, 1, 1, 0)
		},
	)
}

func buildGoogLeNet() *Network {
	b := NewBuilder("GN", 3, 224, 224)
	b.Conv("conv1", 64, 7, 2, 3).Pool("pool1", 3, 2, 1)
	b.Conv("conv2r", 64, 1, 1, 0).Conv("conv2", 192, 3, 1, 1).Pool("pool2", 3, 2, 1)
	inception(b, "3a", 64, 96, 128, 16, 32, 32)
	inception(b, "3b", 128, 128, 192, 32, 96, 64)
	b.Pool("pool3", 3, 2, 1)
	inception(b, "4a", 192, 96, 208, 16, 48, 64)
	inception(b, "4b", 160, 112, 224, 24, 64, 64)
	inception(b, "4c", 128, 128, 256, 24, 64, 64)
	inception(b, "4d", 112, 144, 288, 32, 64, 64)
	inception(b, "4e", 256, 160, 320, 32, 128, 128)
	b.Pool("pool4", 3, 2, 1)
	inception(b, "5a", 256, 160, 320, 32, 128, 128)
	inception(b, "5b", 384, 192, 384, 48, 128, 128)
	b.GlobalPool("avgpool").FC("fc", 1000)
	return b.Build()
}

func buildMobileNetV2() *Network {
	b := NewBuilder("MN2", 3, 224, 224)
	b.Conv("conv1", 32, 3, 2, 1)
	// Inverted residual settings: expansion t, output c, repeats n, stride s.
	cfg := []struct{ t, c, n, s int }{
		{1, 16, 1, 1}, {6, 24, 2, 2}, {6, 32, 3, 2}, {6, 64, 4, 2},
		{6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
	}
	for gi, g := range cfg {
		for i := 0; i < g.n; i++ {
			stride := 1
			if i == 0 {
				stride = g.s
			}
			inC, _, _ := b.Shape()
			name := fmt.Sprintf("block%d.%d", gi, i)
			body := func(b *Builder) {
				if g.t != 1 {
					b.Conv(name+".expand", g.t*inC, 1, 1, 0)
				}
				b.DWConv(name+".dw", 3, stride, 1)
				b.Conv(name+".project", g.c, 1, 1, 0)
			}
			if stride == 1 && inC == g.c {
				b.Residual(name, body)
			} else {
				body(b)
			}
		}
	}
	b.Conv("conv_last", 1280, 1, 1, 0).GlobalPool("avgpool").FC("fc", 1000)
	return b.Build()
}

// ---- XR kernels ----

// buildEyeTrackingSegNet models the SegNet-style eye-segmentation network
// used for eye tracking: a VGG encoder and a mirrored decoder on a small
// monochrome eye-camera image.
func buildEyeTrackingSegNet() *Network {
	b := NewBuilder("ET", 1, 96, 160)
	// Encoder.
	b.Conv("enc1a", 32, 3, 1, 1).Conv("enc1b", 32, 3, 1, 1).Pool("pool1", 2, 2, 0)
	b.Conv("enc2a", 64, 3, 1, 1).Conv("enc2b", 64, 3, 1, 1).Pool("pool2", 2, 2, 0)
	b.Conv("enc3a", 128, 3, 1, 1).Conv("enc3b", 128, 3, 1, 1).Pool("pool3", 2, 2, 0)
	// Decoder (upsample + conv, mirroring the encoder).
	b.Upsample("up3", 2).Conv("dec3a", 64, 3, 1, 1)
	b.Upsample("up2", 2).Conv("dec2a", 32, 3, 1, 1)
	b.Upsample("up1", 2).Conv("dec1a", 16, 3, 1, 1)
	b.Conv("out", 4, 1, 1, 0) // 4 segmentation classes (pupil/iris/sclera/bg)
	return b.Build()
}

// build3DAgg models the temporally consistent depth-estimation network [30]:
// a stereo encoder, heavy aggregation convolutions at quarter resolution, and
// a decoder back to full resolution — a high-activation-memory kernel.
func build3DAgg() *Network {
	b := NewBuilder("3D-Agg", 3, 480, 640)
	b.Conv("stem1", 32, 3, 2, 1) // 240×320
	b.Conv("stem2", 48, 3, 1, 1)
	b.Conv("down2", 64, 3, 2, 1) // 120×160
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("agg%d", i)
		b.Residual(name, func(b *Builder) {
			b.Conv(name+".c1", 64, 3, 1, 1).Conv(name+".c2", 64, 3, 1, 1)
		})
	}
	b.Upsample("up1", 2).Conv("dec1", 48, 3, 1, 1) // 240×320
	b.Upsample("up0", 2).Conv("dec0", 24, 3, 1, 1) // 480×640
	b.Conv("depth", 1, 3, 1, 1)
	return b.Build()
}

// buildHRNet models a high-resolution network [49] for depth/pose: a branch
// that stays at quarter resolution through the whole network keeps
// activations large.
func buildHRNet() *Network {
	b := NewBuilder("HRN", 3, 512, 512)
	b.Conv("stem1", 64, 3, 2, 1).Conv("stem2", 64, 3, 2, 1) // 128×128
	// Four stages; each stage runs a high-resolution branch (48ch @128²)
	// and a low-resolution branch (96ch @64²), then fuses.
	for stage := 0; stage < 4; stage++ {
		name := fmt.Sprintf("stage%d", stage)
		b.Branch(name,
			func(b *Builder) {
				b.Conv(name+".hr1", 48, 3, 1, 1).Conv(name+".hr2", 48, 3, 1, 1)
			},
			func(b *Builder) {
				b.Conv(name+".lr.down", 96, 3, 2, 1)
				b.Conv(name+".lr1", 96, 3, 1, 1)
				b.Upsample(name+".lr.up", 2)
			},
		)
		b.Conv(name+".fuse", 64, 1, 1, 0)
	}
	b.Conv("head", 32, 3, 1, 1).Conv("out", 1, 1, 1, 0)
	return b.Build()
}

// buildEFAN models the emotion estimation network [52]: a face-alignment
// hourglass trunk with a small regression head for valence/arousal.
func buildEFAN() *Network {
	b := NewBuilder("E-FAN", 3, 256, 256)
	b.Conv("stem", 64, 7, 2, 3).Pool("pool1", 2, 2, 0) // 64×64
	b.Conv("pre", 128, 3, 1, 1)
	// Hourglass: down to 16×16 and back.
	b.Conv("hg.d1", 256, 3, 2, 1) // 32
	b.Conv("hg.d2", 256, 3, 2, 1) // 16
	b.Conv("hg.mid", 256, 3, 1, 1)
	b.Upsample("hg.u2", 2).Conv("hg.uc2", 256, 3, 1, 1)
	b.Upsample("hg.u1", 2).Conv("hg.uc1", 128, 3, 1, 1)
	b.Conv("heatmap", 68, 1, 1, 0) // 68 facial landmarks
	b.GlobalPool("gap").FC("emotion", 2)
	return b.Build()
}

// buildJLP models the hand-tracking joint-location network [33]: a compact
// CNN regressing 21 3-D hand-joint positions from an egocentric crop.
func buildJLP() *Network {
	b := NewBuilder("JLP", 3, 256, 256)
	b.Conv("conv1", 32, 3, 2, 1)                                // 128
	b.Conv("conv2", 64, 3, 2, 1)                                // 64
	b.Conv("conv3a", 128, 3, 2, 1).Conv("conv3b", 128, 3, 1, 1) // 32
	b.Conv("conv4a", 256, 3, 2, 1).Conv("conv4b", 256, 3, 1, 1) // 16
	b.Conv("conv5", 256, 3, 2, 1)                               // 8
	b.GlobalPool("gap").FC("joints", 63)                        // 21 joints × (x,y,z)
	return b.Build()
}

// buildUNet is the classic U-Net [40] at 256×256 for image denoising.
func buildUNet() *Network {
	b := NewBuilder("UNet", 3, 256, 256)
	widths := []int{64, 128, 256, 512}
	for i, w := range widths {
		b.Conv(fmt.Sprintf("enc%da", i), w, 3, 1, 1)
		b.Conv(fmt.Sprintf("enc%db", i), w, 3, 1, 1)
		b.Pool(fmt.Sprintf("pool%d", i), 2, 2, 0)
	}
	b.Conv("mid a", 1024, 3, 1, 1).Conv("mid b", 1024, 3, 1, 1)
	for i := len(widths) - 1; i >= 0; i-- {
		w := widths[i]
		b.Upsample(fmt.Sprintf("up%d", i), 2)
		b.Conv(fmt.Sprintf("dec%da", i), w, 3, 1, 1)
		b.Conv(fmt.Sprintf("dec%db", i), w, 3, 1, 1)
	}
	b.Conv("out", 3, 1, 1, 0)
	return b.Build()
}

// buildDN models the feature-align denoising network [55] at 512×512: a
// shallow network that keeps full-resolution feature maps end-to-end, making
// it activation-memory bound.
func buildDN() *Network {
	b := NewBuilder("DN", 3, 512, 512)
	b.Conv("feat", 32, 3, 1, 1)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("res%d", i)
		b.Residual(name, func(b *Builder) {
			b.Conv(name+".c1", 32, 3, 1, 1).Conv(name+".c2", 32, 3, 1, 1)
		})
	}
	b.Conv("align", 48, 3, 1, 1)
	b.Conv("reduce", 32, 3, 1, 1)
	b.Conv("out", 3, 3, 1, 1)
	return b.Build()
}

// buildSR models deep-burst super-resolution [5] producing an outRes×outRes
// image: an EDSR-style trunk of residual blocks at half the output
// resolution followed by a ×2 upsample. Activation working sets grow with
// the square of the resolution, which is what pushes SR-1024 past small
// SRAMs and LPDDR4 bandwidth (§V).
func buildSR(name string, outRes int) *Network {
	in := outRes / 2
	b := NewBuilder(name, 3, in, in)
	b.Conv("head", 64, 3, 1, 1)
	for i := 0; i < 8; i++ {
		rb := fmt.Sprintf("res%d", i)
		b.Residual(rb, func(b *Builder) {
			b.Conv(rb+".c1", 64, 3, 1, 1).Conv(rb+".c2", 64, 3, 1, 1)
		})
	}
	b.Conv("pre_up", 64, 3, 1, 1)
	b.Upsample("up", 2)
	b.Conv("tail", 3, 3, 1, 1)
	return b.Build()
}
