// Package workload implements the paper's task/kernel formulation
// (§IV-A, eq. IV.2 and IV.4): a task T is a set of kernels K with call
// counts N_{T,K}; task delay is the matrix product of call counts and kernel
// delays, and task energy adds per-kernel dynamic energy plus leakage over
// the whole task.
package workload

import (
	"fmt"

	"cordoba/internal/nn"
	"cordoba/internal/units"
)

// Task is one computing task: a named set of kernels with call counts.
type Task struct {
	Name string
	// Calls maps kernel → N_{T,K}. Absent kernels have N_{T,K} = 0.
	Calls map[nn.KernelID]float64
}

// Kernels returns the kernels with non-zero call counts, in AllKernels order.
func (t Task) Kernels() []nn.KernelID {
	var ids []nn.KernelID
	for _, id := range nn.AllKernels() {
		if t.Calls[id] > 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// uniform builds a task calling each listed kernel once.
func uniform(name string, ids ...nn.KernelID) Task {
	calls := make(map[nn.KernelID]float64, len(ids))
	for _, id := range ids {
		calls[id] = 1
	}
	return Task{Name: name, Calls: calls}
}

// Paper task names (Table IV).
const (
	TaskAllKernels = "All kernels"
	TaskXR10       = "XR (10 kernels)"
	TaskAI10       = "AI (10 kernels)"
	TaskXR5        = "XR (5 kernels)"
	TaskAI5        = "AI (5 kernels)"
)

// PaperTasks returns the five tasks of Table IV in paper order.
func PaperTasks() []Task {
	return []Task{
		uniform(TaskAllKernels, nn.AllKernels()...),
		uniform(TaskXR10, nn.Agg3D, nn.ET, nn.JLP, nn.HRN, nn.UNet,
			nn.EFAN, nn.DN, nn.SR256, nn.SR512, nn.SR1024),
		uniform(TaskAI10, nn.RN18, nn.RN50, nn.RN152, nn.GN, nn.MN2,
			nn.Agg3D, nn.ET, nn.UNet, nn.JLP, nn.HRN),
		uniform(TaskXR5, nn.Agg3D, nn.HRN, nn.DN, nn.SR512, nn.SR1024),
		uniform(TaskAI5, nn.RN18, nn.RN50, nn.RN152, nn.GN, nn.MN2),
	}
}

// PaperTask returns the Table IV task with the given name.
func PaperTask(name string) (Task, error) {
	for _, t := range PaperTasks() {
		if t.Name == name {
			return t, nil
		}
	}
	return Task{}, fmt.Errorf("workload: unknown paper task %q", name)
}

// XRGamingSession models one second of the §IV-A motivating example — "an
// Extended Reality gaming task can include eye-tracking, motion-tracking,
// and gaming kernels" — with per-kernel call rates rather than uniform
// counts: tracking kernels run at camera rate, rendering-adjacent kernels at
// display rate, and super-resolution upscales every displayed frame.
func XRGamingSession() Task {
	return Task{
		Name: "XR gaming session (1 s)",
		Calls: map[nn.KernelID]float64{
			nn.ET:    90, // eye tracking at camera rate
			nn.JLP:   60, // hand tracking per frame
			nn.Agg3D: 30, // depth at half frame rate
			nn.EFAN:  10, // emotion sampling
			nn.SR512: 72, // super-resolve every displayed frame
		},
	}
}

// TotalCalls returns Σ_K N_{T,K}, the 1ᵀN row sum.
func (t Task) TotalCalls() float64 {
	var sum float64
	for _, n := range t.Calls {
		sum += n
	}
	return sum
}

// KernelCost is a hardware platform's per-call cost for one kernel: the
// kernel delay D_K and the dynamic energy P_dyn,K·D_K of eq. IV.4.
type KernelCost struct {
	Delay         units.Time
	DynamicEnergy units.Energy
}

// Platform abstracts the hardware target x: it prices individual kernels and
// exposes its leakage power. The accelerator simulator and the VR SoC model
// both implement it.
type Platform interface {
	// KernelCost returns the per-call delay and dynamic energy of kernel id.
	KernelCost(id nn.KernelID) (KernelCost, error)
	// LeakagePower is P_leak, burned for the whole task duration.
	LeakagePower() units.Power
}

// Cost is a task's evaluated delay and energy on a platform.
type Cost struct {
	Delay  units.Time   // D_T  (eq. IV.2)
	Energy units.Energy // E_T  (eq. IV.4), dynamic + leakage
}

// canonicalKernels caches the canonical kernel order once: Evaluate runs for
// every cell of every DSE grid, and re-materializing the order per call was
// one heap allocation per evaluated point. The slice is read-only.
var canonicalKernels = nn.AllKernels()

// Evaluate computes eq. IV.2 and IV.4 for one task:
//
//	D_T = Σ_K N_{T,K}·D_K
//	E_T = Σ_K N_{T,K}·P_dyn,K·D_K + P_leak·D_T
func Evaluate(t Task, p Platform) (Cost, error) {
	var c Cost
	// Iterate kernels in the canonical order (not map order) so that
	// floating-point accumulation — and therefore every downstream result —
	// is deterministic across runs.
	visited := 0
	for _, id := range canonicalKernels {
		n, ok := t.Calls[id]
		if !ok {
			continue
		}
		visited++
		if n == 0 {
			continue
		}
		if n < 0 {
			return Cost{}, fmt.Errorf("workload: task %q has negative call count for %s", t.Name, id)
		}
		kc, err := p.KernelCost(id)
		if err != nil {
			return Cost{}, fmt.Errorf("workload: task %q: %w", t.Name, err)
		}
		c.Delay += units.Time(n) * kc.Delay
		c.Energy += units.Energy(n) * kc.DynamicEnergy
	}
	if visited != len(t.Calls) {
		return Cost{}, fmt.Errorf("workload: task %q references %d kernels outside the known set", t.Name, len(t.Calls)-visited)
	}
	c.Energy += p.LeakagePower().Over(c.Delay)
	return c, nil
}

// Matrix is the explicit N_{T,K} matrix of eq. IV.2: rows are tasks, columns
// kernels.
type Matrix struct {
	Tasks   []string
	Kernels []nn.KernelID
	N       [][]float64 // N[task][kernel]
}

// NewMatrix builds the call matrix for a set of tasks over a kernel basis.
func NewMatrix(tasks []Task, kernels []nn.KernelID) Matrix {
	m := Matrix{Kernels: kernels}
	for _, t := range tasks {
		m.Tasks = append(m.Tasks, t.Name)
		row := make([]float64, len(kernels))
		for j, k := range kernels {
			row[j] = t.Calls[k]
		}
		m.N = append(m.N, row)
	}
	return m
}

// Delays computes eq. IV.2: the task-delay vector D = N·D_K.
func (m Matrix) Delays(kernelDelays []units.Time) ([]units.Time, error) {
	if len(kernelDelays) != len(m.Kernels) {
		return nil, fmt.Errorf("workload: got %d kernel delays for %d kernels", len(kernelDelays), len(m.Kernels))
	}
	out := make([]units.Time, len(m.N))
	for i, row := range m.N {
		for j, n := range row {
			out[i] += units.Time(n) * kernelDelays[j]
		}
	}
	return out, nil
}

// Energies computes eq. IV.4: E = N·(P_dyn,K·D_K) + P_leak·D.
func (m Matrix) Energies(kernelDelays []units.Time, dynPower []units.Power, leak units.Power) ([]units.Energy, error) {
	if len(dynPower) != len(m.Kernels) {
		return nil, fmt.Errorf("workload: got %d dynamic powers for %d kernels", len(dynPower), len(m.Kernels))
	}
	delays, err := m.Delays(kernelDelays)
	if err != nil {
		return nil, err
	}
	out := make([]units.Energy, len(m.N))
	for i, row := range m.N {
		for j, n := range row {
			out[i] += units.Energy(n) * dynPower[j].Over(kernelDelays[j])
		}
		out[i] += leak.Over(delays[i])
	}
	return out, nil
}

// Total sums a vector of task values weighted by 1 (the paper's 1ᵀ·D and
// 1ᵀ·E reductions).
func Total[T ~float64](v []T) T {
	var sum T
	for _, x := range v {
		sum += x
	}
	return sum
}
