package workload

import (
	"fmt"
	"math"
	"testing"

	"cordoba/internal/nn"
	"cordoba/internal/units"
)

// fakePlatform prices every kernel identically except where overridden.
type fakePlatform struct {
	delay  units.Time
	energy units.Energy
	leak   units.Power
	fail   map[nn.KernelID]bool
}

func (f fakePlatform) KernelCost(id nn.KernelID) (KernelCost, error) {
	if f.fail[id] {
		return KernelCost{}, fmt.Errorf("no profile for %s", id)
	}
	return KernelCost{Delay: f.delay, DynamicEnergy: f.energy}, nil
}

func (f fakePlatform) LeakagePower() units.Power { return f.leak }

func TestPaperTasksMatchTableIV(t *testing.T) {
	tasks := PaperTasks()
	if len(tasks) != 5 {
		t.Fatalf("expected 5 tasks, got %d", len(tasks))
	}
	wantCount := map[string]int{
		TaskAllKernels: 15,
		TaskXR10:       10,
		TaskAI10:       10,
		TaskXR5:        5,
		TaskAI5:        5,
	}
	for _, task := range tasks {
		if got := len(task.Kernels()); got != wantCount[task.Name] {
			t.Errorf("%s: %d kernels, want %d", task.Name, got, wantCount[task.Name])
		}
	}
	// Spot-check Table IV membership.
	xr5, err := PaperTask(TaskXR5)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []nn.KernelID{nn.Agg3D, nn.HRN, nn.DN, nn.SR512, nn.SR1024} {
		if xr5.Calls[id] != 1 {
			t.Errorf("XR5 should include %s", id)
		}
	}
	if xr5.Calls[nn.RN18] != 0 {
		t.Error("XR5 should not include RN-18")
	}
	ai5, _ := PaperTask(TaskAI5)
	for _, id := range []nn.KernelID{nn.RN18, nn.RN50, nn.RN152, nn.GN, nn.MN2} {
		if ai5.Calls[id] != 1 {
			t.Errorf("AI5 should include %s", id)
		}
	}
	if _, err := PaperTask("bogus"); err == nil {
		t.Error("unknown task should error")
	}
}

func TestEvaluateSumsKernels(t *testing.T) {
	p := fakePlatform{delay: 2, energy: 3, leak: 0.5}
	task := uniform("t", nn.RN18, nn.RN50, nn.MN2)
	c, err := Evaluate(task, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 6 {
		t.Errorf("delay = %v, want 6", c.Delay)
	}
	// Energy: 3 kernels × 3 J dynamic + 0.5 W × 6 s leakage = 12 J.
	if c.Energy != 12 {
		t.Errorf("energy = %v, want 12", c.Energy)
	}
}

func TestEvaluateRespectsCallCounts(t *testing.T) {
	p := fakePlatform{delay: 1, energy: 1}
	task := Task{Name: "t", Calls: map[nn.KernelID]float64{nn.RN18: 3, nn.MN2: 0}}
	c, err := Evaluate(task, p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 3 || c.Energy != 3 {
		t.Errorf("cost = %+v, want 3/3", c)
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := fakePlatform{delay: 1, energy: 1, fail: map[nn.KernelID]bool{nn.RN50: true}}
	if _, err := Evaluate(uniform("t", nn.RN50), p); err == nil {
		t.Error("failing kernel should propagate")
	}
	bad := Task{Name: "neg", Calls: map[nn.KernelID]float64{nn.RN18: -1}}
	if _, err := Evaluate(bad, fakePlatform{}); err == nil {
		t.Error("negative call count should error")
	}
}

func TestMatrixDelaysEquationIV2(t *testing.T) {
	tasks := []Task{
		{Name: "t1", Calls: map[nn.KernelID]float64{nn.RN18: 2, nn.MN2: 1}},
		{Name: "t2", Calls: map[nn.KernelID]float64{nn.MN2: 4}},
	}
	m := NewMatrix(tasks, []nn.KernelID{nn.RN18, nn.MN2})
	d, err := m.Delays([]units.Time{10, 1})
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 21 || d[1] != 4 {
		t.Errorf("delays = %v, want [21 4]", d)
	}
	if _, err := m.Delays([]units.Time{1}); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestMatrixEnergiesEquationIV4(t *testing.T) {
	tasks := []Task{{Name: "t", Calls: map[nn.KernelID]float64{nn.RN18: 2, nn.MN2: 3}}}
	m := NewMatrix(tasks, []nn.KernelID{nn.RN18, nn.MN2})
	delays := []units.Time{4, 1}
	powers := []units.Power{2, 5}
	e, err := m.Energies(delays, powers, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic: 2·(2·4) + 3·(5·1) = 31; leakage: 0.5·(2·4+3·1) = 5.5.
	want := 36.5
	if math.Abs(e[0].Joules()-want) > 1e-12 {
		t.Errorf("energy = %v, want %v", e[0], want)
	}
	if _, err := m.Energies(delays, []units.Power{1}, 0); err == nil {
		t.Error("dimension mismatch should error")
	}
	if _, err := m.Energies([]units.Time{1}, powers, 0); err == nil {
		t.Error("delay mismatch should error")
	}
}

// Consistency: Evaluate must agree with the explicit matrix formulation.
func TestEvaluateMatchesMatrix(t *testing.T) {
	p := fakePlatform{delay: 0.25, energy: 1.5, leak: 2}
	task, _ := PaperTask(TaskAI5)
	c, err := Evaluate(task, p)
	if err != nil {
		t.Fatal(err)
	}
	kernels := task.Kernels()
	m := NewMatrix([]Task{task}, kernels)
	delays := make([]units.Time, len(kernels))
	powers := make([]units.Power, len(kernels))
	for i := range kernels {
		delays[i] = p.delay
		powers[i] = units.Power(p.energy.Joules() / p.delay.Seconds())
	}
	d, _ := m.Delays(delays)
	e, _ := m.Energies(delays, powers, p.leak)
	if math.Abs(d[0].Seconds()-c.Delay.Seconds()) > 1e-12 {
		t.Errorf("matrix delay %v vs evaluate %v", d[0], c.Delay)
	}
	if math.Abs(e[0].Joules()-c.Energy.Joules()) > 1e-9 {
		t.Errorf("matrix energy %v vs evaluate %v", e[0], c.Energy)
	}
}

func TestTotal(t *testing.T) {
	if got := Total([]units.Time{1, 2, 3}); got != 6 {
		t.Errorf("total = %v", got)
	}
	if got := Total([]units.Energy(nil)); got != 0 {
		t.Errorf("empty total = %v", got)
	}
}

func TestXRGamingSessionWeights(t *testing.T) {
	session := XRGamingSession()
	if session.TotalCalls() <= 15 {
		t.Fatalf("session should make many calls, got %v", session.TotalCalls())
	}
	// Weighted evaluation scales linearly with call counts.
	p := fakePlatform{delay: 0.001, energy: 0.01}
	c, err := Evaluate(session, p)
	if err != nil {
		t.Fatal(err)
	}
	wantDelay := session.TotalCalls() * 0.001
	if math.Abs(c.Delay.Seconds()-wantDelay) > 1e-9 {
		t.Errorf("delay = %v, want %v", c.Delay, wantDelay)
	}
	// Doubling every call count doubles delay and dynamic energy.
	double := Task{Name: "2x", Calls: map[nn.KernelID]float64{}}
	for k, n := range session.Calls {
		double.Calls[k] = 2 * n
	}
	c2, err := Evaluate(double, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c2.Delay.Seconds()-2*c.Delay.Seconds()) > 1e-9 {
		t.Error("delay should scale linearly with call counts")
	}
	if math.Abs(c2.Energy.Joules()-2*c.Energy.Joules()) > 1e-9 {
		t.Error("energy should scale linearly with call counts")
	}
}

func TestTotalCallsEmpty(t *testing.T) {
	if (Task{}).TotalCalls() != 0 {
		t.Error("empty task should have zero calls")
	}
}

func TestEvaluateRejectsUnknownKernels(t *testing.T) {
	task := Task{Name: "alien", Calls: map[nn.KernelID]float64{"not-a-kernel": 1}}
	if _, err := Evaluate(task, fakePlatform{delay: 1, energy: 1}); err == nil {
		t.Error("unknown kernel should error")
	}
}

// Determinism: repeated evaluation of the same task gives bit-identical
// results (canonical iteration order, not map order).
func TestEvaluateDeterministic(t *testing.T) {
	p := fakePlatform{delay: 0.1234567, energy: 0.7654321, leak: 0.111}
	task, _ := PaperTask(TaskAllKernels)
	first, err := Evaluate(task, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		again, err := Evaluate(task, p)
		if err != nil {
			t.Fatal(err)
		}
		if again != first {
			t.Fatal("evaluation is nondeterministic")
		}
	}
}
