// Carbon-aware launch-window search: given a job's duration and power draw,
// a deadline, and a CI_use(t) trace, find the start time that minimizes
// operational carbon (eq. IV.7 over the execution window). This is the
// temporal-shifting half of carbon-aware scheduling — the complement of the
// spatial core-allocation questions the simulator answers.
package sched

import (
	"fmt"
	"math"

	"cordoba/internal/grid"
	"cordoba/internal/units"
)

// WindowRequest describes a deferrable job to place on the grid timeline.
type WindowRequest struct {
	// Duration is the job's execution length.
	Duration units.Time
	// Power is the job's average power draw while running.
	Power units.Power
	// Deadline is the latest allowed completion time (relative to now = 0).
	Deadline units.Time
	// Step is the candidate start-time granularity. Zero defaults to
	// DefaultWindowStep.
	Step units.Time
}

// DefaultWindowStep is the default start-time granularity: 15 minutes, the
// cadence real grid-intensity feeds publish at.
const DefaultWindowStep = units.Time(15 * 60)

// maxWindowCandidates bounds the search so a tiny step over a long horizon
// cannot run away.
const maxWindowCandidates = 1 << 20

// Window is one candidate execution slot and its operational carbon.
type Window struct {
	Start     units.Time
	End       units.Time
	Carbon    units.Carbon
	AverageCI units.CarbonIntensity
}

// WindowPlan is the outcome of a launch-window search.
type WindowPlan struct {
	// Best is the lowest-carbon window meeting the deadline.
	Best Window
	// Worst is the highest-carbon window — the cost of scheduling blindly
	// at the wrong time.
	Worst Window
	// Immediate is the run-now baseline (start at t=0).
	Immediate Window
	// Candidates is the number of start times examined.
	Candidates int
	// Savings is 1 − Best.Carbon/Immediate.Carbon: the fraction of
	// operational carbon avoided by deferring to the best window.
	Savings float64
}

func (r WindowRequest) validate() (units.Time, error) {
	if r.Duration <= 0 {
		return 0, fmt.Errorf("sched: window duration must be positive, got %v", r.Duration)
	}
	if r.Power <= 0 {
		return 0, fmt.Errorf("sched: window power must be positive, got %v", r.Power)
	}
	if r.Deadline < r.Duration {
		return 0, fmt.Errorf("sched: deadline %v is before the job could finish (duration %v)", r.Deadline, r.Duration)
	}
	step := r.Step
	if step == 0 {
		step = DefaultWindowStep
	}
	if step < 0 {
		return 0, fmt.Errorf("sched: window step must be positive, got %v", r.Step)
	}
	latest := r.Deadline - r.Duration
	if n := latest.Seconds() / step.Seconds(); n > maxWindowCandidates {
		return 0, fmt.Errorf("sched: step %v over slack %v yields %d candidates (max %d)",
			step, latest, int(n), maxWindowCandidates)
	}
	return step, nil
}

// FindWindow searches start times 0, step, 2·step, … ≤ deadline−duration for
// the execution window with the least operational carbon, evaluating each
// candidate as a prefix-integral difference — O(log n) per candidate instead
// of a fresh quadrature pass.
func FindWindow(cum *grid.Cumulative, req WindowRequest) (WindowPlan, error) {
	if cum == nil {
		return WindowPlan{}, fmt.Errorf("sched: nil cumulative trace")
	}
	step, err := req.validate()
	if err != nil {
		return WindowPlan{}, err
	}
	return searchWindows(req, step, func(t0, t1 units.Time) (units.Carbon, error) {
		return cum.OperationalCarbon(req.Power, t0, t1), nil
	})
}

// FindWindowNaive is the pre-engine reference implementation: every
// candidate window is integrated from scratch with composite quadrature.
// It exists for differential tests and the speedup benchmark; use
// FindWindow.
func FindWindowNaive(tr grid.Trace, req WindowRequest, steps int) (WindowPlan, error) {
	if tr == nil {
		return WindowPlan{}, fmt.Errorf("sched: nil trace")
	}
	step, err := req.validate()
	if err != nil {
		return WindowPlan{}, err
	}
	p := grid.ConstantPower(req.Power)
	return searchWindows(req, step, func(t0, t1 units.Time) (units.Carbon, error) {
		whole, err := grid.Integrate(tr, p, t1, steps)
		if err != nil {
			return 0, err
		}
		head, err := grid.Integrate(tr, p, t0, steps)
		if err != nil {
			return 0, err
		}
		return whole - head, nil
	})
}

func searchWindows(req WindowRequest, step units.Time, eval func(t0, t1 units.Time) (units.Carbon, error)) (WindowPlan, error) {
	latest := req.Deadline - req.Duration
	plan := WindowPlan{}
	bestC, worstC := math.Inf(1), math.Inf(-1)
	for i := 0; ; i++ {
		start := units.Time(float64(i) * step.Seconds())
		if start > latest {
			// Always consider the last feasible start so the deadline edge
			// is searched even when the slack is not a step multiple.
			if i == 0 || start-step < latest {
				start = latest
			} else {
				break
			}
		}
		end := start + req.Duration
		c, err := eval(start, end)
		if err != nil {
			return WindowPlan{}, err
		}
		w := Window{
			Start:     start,
			End:       end,
			Carbon:    c,
			AverageCI: units.CarbonIntensity(c.Grams() / req.Power.Over(req.Duration).InKWh()),
		}
		if i == 0 {
			plan.Immediate = w
		}
		if c.Grams() < bestC {
			bestC, plan.Best = c.Grams(), w
		}
		if c.Grams() > worstC {
			worstC, plan.Worst = c.Grams(), w
		}
		plan.Candidates++
		if start == latest {
			break
		}
	}
	if plan.Immediate.Carbon > 0 {
		plan.Savings = 1 - plan.Best.Carbon.Grams()/plan.Immediate.Carbon.Grams()
	}
	return plan, nil
}
