// Package sched is a discrete-event multicore scheduler simulator: the
// substrate standing in for the paper's Perfetto system traces (§V, §VI-D).
//
// The paper derives thread-level parallelism (TLP) and core-count
// sensitivity from traces of production VR workloads. Here, a workload is a
// set of threads, each an alternating sequence of compute bursts and waits;
// the simulator schedules them work-conservingly on n identical cores and
// reports the same quantities Perfetto would: per-thread-count occupancy
// histograms (which feed soc.TLPProfile), measured TLP, and makespan — so
// the analytical slowdown model of internal/soc can be validated against an
// actual scheduler.
package sched

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Segment is one phase of a thread's life.
type Segment struct {
	// Compute is CPU time demanded (seconds).
	Compute float64
	// Wait is time blocked after the burst (I/O, sync, vsync), not using
	// any core.
	Wait float64
}

// Thread is a sequence of segments, started at a given offset.
type Thread struct {
	Name    string
	Start   float64
	Burst   []Segment
	nextIdx int
}

// Workload is a set of threads to schedule.
type Workload struct {
	Name    string
	Threads []Thread
}

// Validate checks the workload is well-formed.
func (w *Workload) Validate() error {
	if len(w.Threads) == 0 {
		return fmt.Errorf("sched: workload %q has no threads", w.Name)
	}
	for _, t := range w.Threads {
		if t.Start < 0 {
			return fmt.Errorf("sched: thread %q starts before 0", t.Name)
		}
		total := 0.0
		for _, s := range t.Burst {
			if s.Compute < 0 || s.Wait < 0 {
				return fmt.Errorf("sched: thread %q has a negative segment", t.Name)
			}
			total += s.Compute
		}
		if total == 0 {
			return fmt.Errorf("sched: thread %q demands no compute", t.Name)
		}
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	Cores    int
	Makespan float64 // completion time of the last thread
	BusyTime float64 // total time during which ≥1 thread was runnable or running
	// Occupancy[k-1] is the fraction of busy time with exactly k threads
	// running (not merely runnable); len = Cores.
	Occupancy []float64
	// RunnableOccupancy[k-1] is the fraction of busy time with exactly k
	// threads *runnable* (running or queued), capped at the histogram
	// length; this is the Perfetto-style TLP view, independent of the core
	// count used for measurement.
	RunnableOccupancy []float64
	// TLP is Σ k·RunnableOccupancy[k-1] — the paper's metric [6], [15].
	TLP float64
}

// maxHistogram bounds the runnable histogram length.
const maxHistogram = 16

// Simulate runs the workload on n identical cores with work-conserving,
// processor-sharing scheduling: at any instant the k runnable threads share
// min(k, n) cores equally, so each makes progress at rate min(1, n/k).
// This matches the fluid limit of a fair scheduler (CFS) and is exact for
// the TLP and slowdown quantities CORDOBA consumes.
func Simulate(w *Workload, n int) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if n < 1 {
		return Result{}, fmt.Errorf("sched: need at least one core, got %d", n)
	}

	type state struct {
		thread *Thread
		// phase: 0 = not started, 1 = computing, 2 = waiting, 3 = done
		phase     int
		remaining float64 // seconds left in the current phase (compute: CPU-seconds)
		idx       int     // current segment
	}
	threads := make([]state, len(w.Threads))
	for i := range w.Threads {
		t := w.Threads[i] // copy; simulation must not mutate the workload
		threads[i] = state{thread: &t, phase: 0, remaining: t.Start}
	}

	res := Result{
		Cores:             n,
		Occupancy:         make([]float64, n),
		RunnableOccupancy: make([]float64, maxHistogram),
	}

	now := 0.0
	for iter := 0; ; iter++ {
		if iter > 10_000_000 {
			return Result{}, fmt.Errorf("sched: simulation of %q did not terminate", w.Name)
		}
		// Count runnable threads and find the next event horizon.
		runnable := 0
		active := 0 // not done
		for i := range threads {
			if threads[i].phase != 3 {
				active++
			}
			if threads[i].phase == 1 {
				runnable++
			}
		}
		if active == 0 {
			break
		}
		rate := 1.0
		if runnable > n {
			rate = float64(n) / float64(runnable)
		}
		// Time until the nearest phase completion.
		dt := math.Inf(1)
		for i := range threads {
			s := &threads[i]
			switch s.phase {
			case 0, 2: // waiting for start or blocked: wall-clock countdown
				if s.remaining < dt {
					dt = s.remaining
				}
			case 1: // computing at `rate`
				if t := s.remaining / rate; t < dt {
					dt = t
				}
			}
		}
		if math.IsInf(dt, 1) {
			break
		}
		// Account the interval.
		if runnable > 0 {
			res.BusyTime += dt
			running := runnable
			if running > n {
				running = n
			}
			res.Occupancy[running-1] += dt
			bucket := runnable
			if bucket > maxHistogram {
				bucket = maxHistogram
			}
			res.RunnableOccupancy[bucket-1] += dt
		}
		now += dt
		// Advance every thread.
		for i := range threads {
			s := &threads[i]
			switch s.phase {
			case 0, 2:
				s.remaining -= dt
			case 1:
				s.remaining -= dt * rate
			case 3:
				continue
			}
			if s.remaining > 1e-12 {
				continue
			}
			// Phase transition(s).
			switch s.phase {
			case 0:
				s.phase = 1
				s.remaining = s.thread.Burst[0].Compute
				s.idx = 0
			case 1:
				wait := s.thread.Burst[s.idx].Wait
				if wait > 0 {
					s.phase = 2
					s.remaining = wait
				} else if s.idx+1 < len(s.thread.Burst) {
					s.idx++
					s.remaining = s.thread.Burst[s.idx].Compute
				} else {
					s.phase = 3
				}
			case 2:
				if s.idx+1 < len(s.thread.Burst) {
					s.idx++
					s.phase = 1
					s.remaining = s.thread.Burst[s.idx].Compute
				} else {
					s.phase = 3
				}
			}
			// Zero-length phases collapse immediately on the next event.
		}
	}
	res.Makespan = now
	if res.BusyTime > 0 {
		for k := range res.Occupancy {
			res.Occupancy[k] /= res.BusyTime
		}
		for k := range res.RunnableOccupancy {
			res.RunnableOccupancy[k] /= res.BusyTime
			res.TLP += float64(k+1) * res.RunnableOccupancy[k]
		}
	}
	return res, nil
}

// Slowdown runs the workload on n and on ref cores and returns
// makespan(n)/makespan(ref) — the measured counterpart of
// soc.TLPProfile.Slowdown.
func Slowdown(w *Workload, n, ref int) (float64, error) {
	rn, err := Simulate(w, n)
	if err != nil {
		return 0, err
	}
	rr, err := Simulate(w, ref)
	if err != nil {
		return 0, err
	}
	if rr.Makespan == 0 {
		return 0, fmt.Errorf("sched: reference makespan is zero")
	}
	return rn.Makespan / rr.Makespan, nil
}

// SyntheticVR generates a VR-style workload: a render thread and a
// compositor with vsync-periodic bursts, plus a pool of worker threads with
// random bursts. The generator is deterministic for a given seed; targetTLP
// steers the worker pool's overlap.
func SyntheticVR(name string, targetTLP float64, frames int, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	const framePeriod = 1.0 / 72 // 72 Hz headset refresh
	w := &Workload{Name: name}

	// Render and compositor threads: one burst per frame.
	mk := func(tname string, busyFrac float64, phase float64) Thread {
		t := Thread{Name: tname, Start: phase}
		for f := 0; f < frames; f++ {
			busy := framePeriod * busyFrac * (0.9 + 0.2*rng.Float64())
			t.Burst = append(t.Burst, Segment{Compute: busy, Wait: framePeriod - busy})
		}
		return t
	}
	w.Threads = append(w.Threads,
		mk("render", 0.75, 0),
		mk("compositor", 0.55, framePeriod/3),
	)

	// Worker pool sized to land near the target TLP: the two frame threads
	// contribute ≈1.3; each worker at duty d contributes ≈d.
	remaining := targetTLP - 1.3
	for i := 0; remaining > 0.05 && i < 12; i++ {
		duty := math.Min(remaining, 0.4+0.3*rng.Float64())
		w.Threads = append(w.Threads, mk(fmt.Sprintf("worker%d", i), duty, rng.Float64()*framePeriod))
		remaining -= duty
	}
	return w
}

// Histogram converts a runnable-occupancy histogram to a fixed length by
// folding overflow into the last bucket (for handing to soc.TLPProfile).
func Histogram(occ []float64, buckets int) []float64 {
	out := make([]float64, buckets)
	for k, f := range occ {
		idx := k
		if idx >= buckets {
			idx = buckets - 1
		}
		out[idx] += f
	}
	return out
}

// TopThreads returns the names of the threads with the largest compute
// demand, most demanding first — the "top tasks account for most of the
// computation" style of analysis in §VI-D.
func TopThreads(w *Workload, k int) []string {
	type demand struct {
		name string
		cpu  float64
	}
	ds := make([]demand, 0, len(w.Threads))
	for _, t := range w.Threads {
		total := 0.0
		for _, s := range t.Burst {
			total += s.Compute
		}
		ds = append(ds, demand{t.Name, total})
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].cpu != ds[j].cpu {
			return ds[i].cpu > ds[j].cpu
		}
		return ds[i].name < ds[j].name
	})
	if k > len(ds) {
		k = len(ds)
	}
	names := make([]string, k)
	for i := 0; i < k; i++ {
		names[i] = ds[i].name
	}
	return names
}
