package sched

import (
	"math"
	"testing"

	"cordoba/internal/grid"
	"cordoba/internal/units"
)

func duckCumulative(t testing.TB) *grid.Cumulative {
	t.Helper()
	cum, err := grid.NewCumulative(grid.CaliforniaDuck(), units.Days(7))
	if err != nil {
		t.Fatal(err)
	}
	return cum
}

func TestFindWindowPrefersSolarValley(t *testing.T) {
	// A 2-hour job with a 24-hour deadline on the duck curve should land in
	// the midday solar valley (samples bottom out around hour 12).
	plan, err := FindWindow(duckCumulative(t), WindowRequest{
		Duration: units.Hours(2),
		Power:    200,
		Deadline: units.Hours(24),
		Step:     units.Hours(0.25),
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := plan.Best.Start.InHours(); h < 9 || h > 13 {
		t.Errorf("best start %.2fh, want midday valley", h)
	}
	// The worst window should straddle the evening ramp peak (hour 19).
	if h := plan.Worst.Start.InHours(); h < 17 || h > 21 {
		t.Errorf("worst start %.2fh, want evening peak", h)
	}
	if plan.Savings <= 0.3 {
		t.Errorf("savings vs immediate = %.3f, duck valley should save >30%%", plan.Savings)
	}
	if plan.Best.Carbon > plan.Immediate.Carbon || plan.Best.Carbon > plan.Worst.Carbon {
		t.Error("best window is not the minimum")
	}
	if plan.Best.End-plan.Best.Start != units.Hours(2) {
		t.Errorf("window length %v, want 2h", plan.Best.End-plan.Best.Start)
	}
}

func TestFindWindowMatchesNaive(t *testing.T) {
	req := WindowRequest{
		Duration: units.Hours(3.5),
		Power:    150,
		Deadline: units.Hours(30),
		Step:     units.Hours(0.5),
	}
	for _, tr := range grid.NamedTraces() {
		cum, err := grid.NewCumulative(tr, units.Days(3))
		if err != nil {
			t.Fatal(err)
		}
		fast, err := FindWindow(cum, req)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := FindWindowNaive(tr, req, 256)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Candidates != naive.Candidates {
			t.Fatalf("%s: candidate counts differ: %d vs %d", tr.Name(), fast.Candidates, naive.Candidates)
		}
		// Ties (flat or symmetric traces) may break differently between the
		// two paths, so compare optimum carbon, not the argmin.
		for _, pair := range [][2]float64{
			{fast.Best.Carbon.Grams(), naive.Best.Carbon.Grams()},
			{fast.Worst.Carbon.Grams(), naive.Worst.Carbon.Grams()},
			{fast.Immediate.Carbon.Grams(), naive.Immediate.Carbon.Grams()},
		} {
			rel := math.Abs(pair[0]-pair[1]) / math.Max(pair[1], 1e-30)
			if rel > 1e-6 {
				t.Errorf("%s: carbon %.9g vs naive %.9g", tr.Name(), pair[0], pair[1])
			}
		}
	}
}

func TestFindWindowZeroSlack(t *testing.T) {
	// Deadline == duration: exactly one candidate, savings 0.
	plan, err := FindWindow(duckCumulative(t), WindowRequest{
		Duration: units.Hours(6),
		Power:    100,
		Deadline: units.Hours(6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Candidates != 1 {
		t.Errorf("candidates = %d, want 1", plan.Candidates)
	}
	if plan.Savings != 0 {
		t.Errorf("savings = %v, want 0", plan.Savings)
	}
	if plan.Best != plan.Worst || plan.Best != plan.Immediate {
		t.Error("single-candidate plan should have best == worst == immediate")
	}
}

func TestFindWindowSearchesDeadlineEdge(t *testing.T) {
	// Slack not a step multiple: the final feasible start must be examined.
	cum, err := grid.NewCumulative(grid.Ramp{Start: 500, End: 100, Span: units.Hours(10)}, units.Days(1))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := FindWindow(cum, WindowRequest{
		Duration: units.Hours(1),
		Power:    100,
		Deadline: units.Hours(10.5), // slack 9.5h, step 1h → last start 9.5h
		Step:     units.Hours(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Best.Start != units.Hours(9.5) {
		t.Errorf("best start %v, want the deadline edge 9.5h on a falling ramp", plan.Best.Start)
	}
}

func TestFindWindowValidation(t *testing.T) {
	cum := duckCumulative(t)
	cases := []WindowRequest{
		{Duration: 0, Power: 10, Deadline: units.Hours(1)},
		{Duration: units.Hours(1), Power: 0, Deadline: units.Hours(2)},
		{Duration: units.Hours(2), Power: 10, Deadline: units.Hours(1)},
		{Duration: units.Hours(1), Power: 10, Deadline: units.Hours(2), Step: -1},
		{Duration: units.Hours(1), Power: 10, Deadline: units.Years(100), Step: units.Time(0.001)},
	}
	for i, req := range cases {
		if _, err := FindWindow(cum, req); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := FindWindow(nil, WindowRequest{Duration: 1, Power: 1, Deadline: 1}); err == nil {
		t.Error("nil cumulative should error")
	}
	if _, err := FindWindowNaive(nil, WindowRequest{Duration: 1, Power: 1, Deadline: 1}, 10); err == nil {
		t.Error("nil trace should error")
	}
}

// BenchmarkScheduleWindow contrasts the cumulative prefix-integral search
// with the repeated-quadrature baseline it replaced; bench-check gates on
// the recorded baseline in testdata/bench_baseline.json.
func BenchmarkScheduleWindow(b *testing.B) {
	req := WindowRequest{
		Duration: units.Hours(2),
		Power:    200,
		Deadline: units.Days(2),
		Step:     units.Hours(0.25),
	}
	tr := grid.CaliforniaDuck()
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FindWindowNaive(tr, req, 256); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cumulative", func(b *testing.B) {
		cum, err := grid.NewCumulative(tr, units.Days(3))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := FindWindow(cum, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}
